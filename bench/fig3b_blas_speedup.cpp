// fig3b_blas_speedup — reproduces paper Figure 3b: speedup of the BLAS
// calls vs FP32 for a 40-atom system at increasing orbital counts
// (Norb = 256, 1024, 2048, 4096), per compute mode.  Speedups come from
// the Xe-HPC device model over the Table VII remap_occ shapes; a live
// CPU-emulation column (measured wall time of the bit-faithful kernels at
// a scaled shape) is appended for the numerics side.

#include <chrono>

#include "bench_common.hpp"
#include "dcmesh/blas/blas.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/xehpc/roofline.hpp"

namespace {

using namespace dcmesh;

/// Measured wall seconds of one emulated cgemm at a scaled shape.
double measured_cgemm_seconds(blas::compute_mode mode, blas::blas_int m,
                              blas::blas_int n, blas::blas_int k) {
  using C = std::complex<float>;
  xoshiro256 rng(7);
  std::vector<C> a(static_cast<std::size_t>(k) * m),
      b(static_cast<std::size_t>(k) * n), c(static_cast<std::size_t>(m) * n);
  for (auto& x : a) {
    x = {static_cast<float>(rng.uniform(-1, 1)),
         static_cast<float>(rng.uniform(-1, 1))};
  }
  for (auto& x : b) {
    x = {static_cast<float>(rng.uniform(-1, 1)),
         static_cast<float>(rng.uniform(-1, 1))};
  }
  blas::scoped_compute_mode scope(mode);
  const auto start = std::chrono::steady_clock::now();
  blas::cgemm(blas::transpose::conj_trans, blas::transpose::none, m, n, k,
              C(1), a.data(), k, b.data(), k, C(0), c.data(), m);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int run() {
  bench::banner("Figure 3b",
                "BLAS speedup vs FP32 at increasing Norb (40-atom shapes)");
  const xehpc::device_spec spec;
  const xehpc::calibration cal = xehpc::default_calibration();
  bench::print_calibration(cal);

  std::printf("\nModeled speedup on one Max 1550 stack "
              "(remap_occ GEMM: m=128, n=Norb-128, k=64^3):\n");
  text_table table({"Norb", "BF16", "BF16x2", "BF16x3", "TF32",
                    "Complex_3m", "paper"});
  const char* paper[] = {"least improvement", "-", "-",
                         "greatest (BF16 3.91x)"};
  int row = 0;
  for (blas::blas_int norb : {256, 1024, 2048, 4096}) {
    const xehpc::gemm_shape shape{128, norb - 128, 64LL * 64 * 64, true,
                                  xehpc::gemm_precision::fp32};
    std::vector<std::string> cells{std::to_string(norb)};
    for (blas::compute_mode mode : bench::alternative_modes()) {
      cells.push_back(
          fmt_fixed(xehpc::model_speedup_vs_fp32(spec, cal, shape, mode),
                    2) +
          "x");
    }
    cells.push_back(paper[row++]);
    table.add_row(cells);
  }
  table.print();

  // Live numerics: the CPU emulation cannot reproduce GPU speedups (BF16xN
  // does N-fold extra work on a CPU), so the measured column demonstrates
  // the *cost structure* of the emulation instead, at a scaled shape.
  std::printf(
      "\nHost-emulation wall time at scaled shape (m=64, n=448, k=4096) — "
      "cost grows with component products, as expected for emulation:\n");
  text_table host({"Mode", "seconds", "vs FP32"});
  const double t_ref =
      measured_cgemm_seconds(blas::compute_mode::standard, 64, 448, 4096);
  host.add_row({"FP32", fmt(t_ref, 3), "1.00x"});
  for (blas::compute_mode mode : bench::alternative_modes()) {
    const double t = measured_cgemm_seconds(mode, 64, 448, 4096);
    host.add_row({std::string(blas::name(mode)), fmt(t, 3),
                  fmt_fixed(t / t_ref, 2) + "x"});
  }
  host.print();
  return 0;
}

}  // namespace

int main() { return run(); }
