// table3_simparams — reproduces paper Table III: key simulation parameters
// of the paper systems, read from the run configuration (not hard-coded in
// the bench: the preset is the same object the driver consumes).

#include "bench_common.hpp"
#include "dcmesh/core/presets.hpp"

namespace {

using namespace dcmesh;

int run() {
  bench::banner("Table III", "Key simulation parameters");
  const core::run_config config = core::preset(core::paper_system::pto135);

  text_table table({"Simulation Variable", "Value", "paper"});
  table.add_row({"Timestep (QD, a.t.u.)", fmt(config.dt, 3), "0.02"});
  table.add_row({"Total Number of QD Steps",
                 std::to_string(config.total_qd_steps()), "21,000"});
  table.add_row({"Total Simulation Time (fs)",
                 fmt_fixed(config.total_time_fs(), 2), "10"});
  table.add_row({"QD Steps per Series (SCF cadence)",
                 std::to_string(config.qd_steps_per_series), "500"});
  table.print();
  return 0;
}

}  // namespace

int main() { return run(); }
