// table6_speedup — reproduces paper Table VI: maximum observed speedup of
// BLAS routines per compute mode, compared with the theoretical maximum.
// "Observed" here means the Xe-HPC device model evaluated over the full
// Fig-3b shape sweep (the paper's maximum also occurred at the largest
// remap_occ shape); the substitution is documented in DESIGN.md.

#include <algorithm>

#include "bench_common.hpp"
#include "dcmesh/xehpc/roofline.hpp"

namespace {

using namespace dcmesh;

int run() {
  bench::banner("Table VI",
                "Maximum observed vs theoretical BLAS speedup per mode");
  const xehpc::device_spec spec;
  const xehpc::calibration cal = xehpc::default_calibration();
  bench::print_calibration(cal);
  std::printf("\n");

  // Sweep the Table VII / Fig 3b shapes (40-atom remap_occ GEMM).
  const std::vector<blas::blas_int> norbs{256, 1024, 2048, 4096};

  text_table table({"Compute Mode", "Max Observed (model)", "At Norb",
                    "Peak Theoretical", "% of theoretical", "paper"});
  const char* paper[] = {"3.91x (max observed)", "-", "-", "-", "-"};
  int row = 0;
  for (blas::compute_mode mode : bench::alternative_modes()) {
    double best = 0.0;
    blas::blas_int best_norb = 0;
    for (blas::blas_int norb : norbs) {
      const xehpc::gemm_shape shape{128, norb - 128, 64LL * 64 * 64, true,
                                    xehpc::gemm_precision::fp32};
      const double s = xehpc::model_speedup_vs_fp32(spec, cal, shape, mode);
      if (s > best) {
        best = s;
        best_norb = norb;
      }
    }
    const double theoretical = xehpc::peak_theoretical_speedup(spec, mode);
    table.add_row({std::string(blas::name(mode)), fmt_fixed(best, 2) + "x",
                   std::to_string(best_norb),
                   fmt_fixed(theoretical, 2) + "x",
                   fmt_fixed(100.0 * best / theoretical, 1) + "%",
                   paper[row++]});
  }
  table.print();
  std::printf(
      "\npaper: \"The maximum speedup we achieved was 3.91x when using the "
      "BF16 compute mode, despite the peak theoretical speedup for a BF16 "
      "BLAS routine being 16x\" — limited by memory/cache bandwidth, the "
      "small m = 128 dimension, and power.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
