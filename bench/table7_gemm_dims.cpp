// table7_gemm_dims — reproduces paper Table VII: the m, n, k indices of the
// remap_occ GEMM for the 40-atom system at increasing orbital counts.  The
// paper reads these from MKL_VERBOSE output; we do the same — the shapes
// are taken from a live remap_occ call through the minimkl verbose log at a
// scaled mesh, then scaled-checked against the paper-size canonical list.

#include "bench_common.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/lfd/remap_occ.hpp"

namespace {

using namespace dcmesh;

/// Live verification: run the real remap_occ at a scaled mesh and read the
/// GEMM dims from the call log, exactly like reading MKL_VERBOSE.
blas::call_record live_remap_dims(std::size_t ngrid, std::size_t norb,
                                  std::size_t nocc) {
  xoshiro256 rng(5);
  matrix<std::complex<float>> psi0(ngrid, norb), psi(ngrid, norb);
  for (std::size_t i = 0; i < psi0.size(); ++i) {
    psi0.data()[i] = {static_cast<float>(rng.uniform(-1, 1)),
                      static_cast<float>(rng.uniform(-1, 1))};
    psi.data()[i] = {static_cast<float>(rng.uniform(-1, 1)),
                     static_cast<float>(rng.uniform(-1, 1))};
  }
  const std::vector<double> occ(norb, 2.0);
  blas::clear_call_log();
  (void)lfd::remap_occ<float>(psi0, psi, occ, nocc, 1.0);
  return blas::recent_calls().front();  // the Table VII GEMM is call 7
}

int run() {
  bench::banner("Table VII",
                "remap_occ GEMM (m, n, k) vs orbital count, 40-atom system");

  text_table table({"Number of Atoms", "Norb", "m", "n", "k", "paper (m,n,k)"});
  const char* paper[] = {"128, 128, 262144", "128, 896, 262144",
                         "128, 1920, 262144",
                         "128, 3978*, 262144  (*3968 = 4096-128)"};
  int row = 0;
  for (blas::blas_int norb : {256, 1024, 2048, 4096}) {
    const xehpc::system_shape sys{64LL * 64 * 64, norb, 128};
    const auto calls =
        xehpc::canonical_qd_step_calls(sys, xehpc::gemm_precision::fp32);
    for (const auto& call : calls) {
      if (call.site == "remap_occ" && call.shape.k == sys.ngrid) {
        table.add_row({"40", std::to_string(norb),
                       std::to_string(call.shape.m),
                       std::to_string(call.shape.n),
                       std::to_string(call.shape.k), paper[row]});
      }
    }
    ++row;
  }
  table.print();

  // Live cross-check at a scaled mesh (16^3): the call-log dims must have
  // exactly the same structure (m = nocc, n = norb - nocc, k = ngrid).
  const auto live = live_remap_dims(16 * 16 * 16, 32, 16);
  std::printf(
      "\nLive MKL_VERBOSE-style check (scaled 16^3 mesh, Norb 32, Nocc 16): "
      "%s m=%lld n=%lld k=%lld  -> structure (nocc, norb-nocc, ngrid) %s\n",
      live.routine.c_str(), static_cast<long long>(live.m),
      static_cast<long long>(live.n), static_cast<long long>(live.k),
      (live.m == 16 && live.n == 16 && live.k == 4096) ? "CONFIRMED"
                                                       : "MISMATCH");
  std::printf(
      "Note: the paper's n = 3978 for Norb = 4096 appears to be a typo for "
      "3968 = 4096 - 128; every other row satisfies n = Norb - 128 "
      "exactly.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
