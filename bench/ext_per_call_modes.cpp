// ext_per_call_modes — the paper's stated future work, implemented:
// "The effects of running different BLAS calls at different levels of
// precision is left to future work."  Using minimkl's scoped_compute_mode,
// each of the three LFD call sites (nlp_prop, calc_energy, remap_occ) is
// run at BF16 while the other two stay FP32, and the accuracy impact of
// each site is isolated.  Real numerics at the scaled system.

#include <cmath>

#include "accuracy_common.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/common/stats.hpp"
#include "dcmesh/lfd/calc_energy.hpp"
#include "dcmesh/lfd/init.hpp"
#include "dcmesh/lfd/nlp_prop.hpp"
#include "dcmesh/lfd/potential.hpp"
#include "dcmesh/lfd/remap_occ.hpp"
#include "dcmesh/mesh/laser.hpp"
#include "dcmesh/qxmd/supercell.hpp"

namespace {

using namespace dcmesh;

/// Which call sites run at the alternative mode.
struct site_mask {
  bool nlp = false;
  bool energy = false;
  bool remap = false;
  const char* label = "";
};

/// A stripped-down QD loop mirroring lfd_engine::qd_step but with per-site
/// scoped modes (the engine itself keeps the paper's all-or-nothing
/// semantics; this harness explores the extension).
struct per_site_runner {
  mesh::grid3d grid;
  lfd::lfd_options options;
  matrix<std::complex<float>> psi0, psi;
  std::vector<double> occ;
  std::size_t nocc;
  lfd::hamiltonian<float> h;
  matrix<std::complex<float>> scratch_term, scratch_h, g;
  double t = 0.0;
  double eband0 = 0.0;

  per_site_runner(const mesh::grid3d& grid_in, lfd::lfd_options opt,
                  const matrix<cdouble>& init, std::vector<double> occ_in,
                  std::size_t nocc_in, std::vector<double> v_loc)
      : grid(grid_in),
        options(opt),
        psi0(init.rows(), init.cols()),
        psi(init.rows(), init.cols()),
        occ(std::move(occ_in)),
        nocc(nocc_in),
        h(grid_in, opt.order, std::move(v_loc),
          opt.pulse.polarization_axis),
        scratch_term(init.rows(), init.cols()),
        scratch_h(init.rows(), init.cols()),
        g(init.cols(), init.cols()) {
    for (std::size_t i = 0; i < psi.size(); ++i) {
      const cdouble v = init.data()[i];
      psi.data()[i] = {static_cast<float>(v.real()),
                       static_cast<float>(v.imag())};
      psi0.data()[i] = psi.data()[i];
    }
    auto nlp = lfd::nlp_prop<float>(psi0, psi, {0, 0}, grid.dv());
    g = std::move(nlp.g);
    h.set_field(options.pulse.a(0));
    eband0 = lfd::calc_energy<float>(h, psi, g, options.v_nl, occ, grid.dv())
                 .eband();
  }

  void taylor(double a_mid) {
    using C = std::complex<float>;
    h.set_field(a_mid);
    for (std::size_t i = 0; i < psi.size(); ++i) {
      scratch_term.data()[i] = psi.data()[i];
    }
    for (int n = 1; n <= options.taylor_order; ++n) {
      h.apply(scratch_term.view(), scratch_h.view());
      const C coeff(0, static_cast<float>(-options.dt / n));
      for (std::size_t i = 0; i < psi.size(); ++i) {
        scratch_term.data()[i] = coeff * scratch_h.data()[i];
        psi.data()[i] += scratch_term.data()[i];
      }
    }
  }

  lfd::qd_record step(const site_mask& mask, blas::compute_mode alt) {
    taylor(options.pulse.a(t + 0.5 * options.dt));
    {
      blas::scoped_compute_mode scope(mask.nlp ? alt
                                               : blas::compute_mode::standard);
      auto nlp = lfd::nlp_prop<float>(
          psi0, psi, {0.0, -options.dt * options.v_nl}, grid.dv());
      g = std::move(nlp.g);
    }
    t += options.dt;
    h.set_field(options.pulse.a(t));
    lfd::qd_record rec;
    rec.t = t;
    {
      blas::scoped_compute_mode scope(
          mask.energy ? alt : blas::compute_mode::standard);
      const auto e =
          lfd::calc_energy<float>(h, psi, g, options.v_nl, occ, grid.dv());
      rec.ekin = e.ekin;
      rec.etot = e.eband();
      rec.eexc = e.eband() - eband0;
    }
    {
      blas::scoped_compute_mode scope(
          mask.remap ? alt : blas::compute_mode::standard);
      rec.nexc = lfd::remap_occ<float>(psi0, psi, occ, nocc, grid.dv()).nexc;
    }
    return rec;
  }
};

int run(int argc, char** argv) {
  const int steps = dcmesh::bench::parse_steps(argc, argv, 150);
  bench::banner("Extension (paper future work)",
                "Per-call-site BLAS precision: which site drives the error?");

  const auto atoms = qxmd::build_pto_supercell(2, qxmd::kPtoLatticeBohr,
                                               0.05, 1234);
  const mesh::grid3d grid = mesh::grid3d::cubic(12, 2 * 7.37 / 12.0);
  const auto init = lfd::initialize_ground_state(grid, atoms, 24, 12,
                                                 mesh::fd_order::fourth);
  lfd::lfd_options options;
  options.pulse.e0 = 0.3;
  options.pulse.omega = 0.3;
  options.pulse.t_center = 1.5;
  options.pulse.sigma = 0.6;
  auto v_loc = lfd::build_local_potential(grid, atoms);

  const site_mask masks[] = {
      {false, false, false, "all FP32 (reference)"},
      {true, false, false, "nlp_prop @ BF16"},
      {false, true, false, "calc_energy @ BF16"},
      {false, false, true, "remap_occ @ BF16"},
      {true, true, true, "all three @ BF16"},
  };

  std::vector<std::vector<lfd::qd_record>> runs;
  for (const auto& mask : masks) {
    std::fprintf(stderr, "  running %s...\n", mask.label);
    per_site_runner runner(grid, options, init.psi, init.occupations, 12,
                           v_loc);
    std::vector<lfd::qd_record> records;
    for (int s = 0; s < steps; ++s) {
      records.push_back(runner.step(mask, blas::compute_mode::float_to_bf16));
    }
    runs.push_back(std::move(records));
  }

  const auto column = [&](std::size_t run, const char* col) {
    return core::extract_column(runs[run], col);
  };
  text_table table({"Configuration", "max dev ekin", "max dev nexc"});
  for (std::size_t r = 1; r < std::size(masks); ++r) {
    table.add_row({masks[r].label,
                   fmt_sci(max_abs_deviation(column(r, "ekin"),
                                             column(0, "ekin"))),
                   fmt_sci(max_abs_deviation(column(r, "nexc"),
                                             column(0, "nexc")))});
  }
  table.print();
  std::printf(
      "\nReading: each observable is most sensitive to its own call site "
      "(calc_energy@BF16 dominates the ekin error, remap_occ@BF16 the nexc "
      "error, and each leaves the other observable untouched), while "
      "nlp_prop@BF16 feeds the propagated state back into itself and so "
      "contaminates BOTH observables — more slowly per step, but it is the "
      "only site whose error compounds along the trajectory.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
