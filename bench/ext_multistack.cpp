// ext_multistack — the paper's other future-work item: "continue our work
// with DCMESH in the analysis of how alternative BLAS precision modes
// impact accuracy and performance in multi-stack and multi-node runs."
// This bench runs the xehpc scaling model for the 135-atom system.

#include "bench_common.hpp"
#include "dcmesh/xehpc/scaling.hpp"

namespace {

using namespace dcmesh;

int run() {
  bench::banner("Extension (paper future work)",
                "Multi-stack / multi-node scaling of the 135-atom system");
  const xehpc::device_spec spec;
  const xehpc::calibration cal = xehpc::default_calibration();
  const xehpc::fabric_spec fabric;
  const auto sys = bench::pto135_shape();

  for (const auto& [label, precision] :
       std::vector<std::pair<const char*, xehpc::lfd_precision>>{
           {"FP32", {xehpc::gemm_precision::fp32,
                     blas::compute_mode::standard}},
           {"BF16", {xehpc::gemm_precision::fp32,
                     blas::compute_mode::float_to_bf16}}}) {
    std::printf("\n%s LFD, 500 QD steps (4 stacks per node):\n", label);
    text_table table({"Stacks", "Series (s)", "Comm (s)", "Speedup",
                      "Parallel eff."});
    const double single =
        xehpc::model_series_seconds(spec, cal, sys, precision, 500);
    for (int stacks : {1, 2, 4, 8, 16}) {
      const auto scaled = xehpc::model_multi_stack_series(
          spec, cal, fabric, sys, precision, stacks, 4, 500);
      table.add_row({std::to_string(stacks),
                     fmt_fixed(scaled.series_seconds, 1),
                     fmt_fixed(scaled.communication_seconds, 2),
                     fmt_fixed(single / scaled.series_seconds, 2) + "x",
                     fmt_fixed(scaled.parallel_efficiency * 100.0, 1) + "%"});
    }
    table.print();
  }
  std::printf(
      "\nReading: BF16 scales slightly worse than FP32 — its per-stack "
      "GEMMs are shorter, so the (precision-independent) all-reduce of the "
      "Norb x Norb overlap weighs more.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
