// ext_step_overlap — per-phase QD-step timing, serial vs pooled.
//
// The step scheduler (DCMESH_SCHED=pool) runs one QD step as a task graph
// on the persistent work-stealing pool: remap_occ's B panel is prepacked
// concurrently with nlp_prop's compute, independent mesh kernels and the
// remap moments run on idle workers, and the checkpoint sealer is double
// buffered off the critical path.  This bench times each phase at the
// Table VII remap_occ shape (m = nocc, n = norb - nocc, k = ngrid at the
// scaled 16^3 mesh) and the whole step end to end under both schedulers,
// emitting BENCH_step.json rows (bench_json schema v2; the sched mode and
// per-op milliseconds ride in each row's note).
//
// All rows are honest measurements on the machine at hand: on a single
// hardware thread the pooled step pays the graph overhead without the
// parallel win — the speedup column is only meaningful on multi-core.

#include <algorithm>
#include <chrono>
#include <complex>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "dcmesh/blas/prepack.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/common/matrix.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/core/checkpoint.hpp"
#include "dcmesh/core/driver.hpp"
#include "dcmesh/core/presets.hpp"
#include "dcmesh/lfd/hamiltonian.hpp"
#include "dcmesh/lfd/remap_occ.hpp"
#include "dcmesh/mesh/grid.hpp"
#include "dcmesh/sched/config.hpp"

namespace {

using namespace dcmesh;
using C = std::complex<float>;

constexpr const char* kStepJsonDefaultPath = "BENCH_step.json";

// Table VII structure at the scaled mesh: (nocc, norb - nocc, ngrid).
constexpr std::size_t kMesh = 16;
constexpr std::size_t kNgrid = kMesh * kMesh * kMesh;
constexpr std::size_t kNorb = 32;
constexpr std::size_t kNocc = 16;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Time `op` repeatedly until ~80 ms have elapsed; returns ms per call.
template <typename Fn>
double time_ms(Fn&& op) {
  op();  // warm (first-touch allocations, pool spin-up)
  int reps = 0;
  const double start = now_s();
  double elapsed = 0.0;
  do {
    op();
    ++reps;
    elapsed = now_s() - start;
  } while (elapsed < 0.08 && reps < 1000);
  return elapsed * 1e3 / reps;
}

matrix<C> random_matrix(std::size_t rows, std::size_t cols,
                        std::uint64_t seed) {
  xoshiro256 rng(seed);
  matrix<C> m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = {static_cast<float>(rng.uniform(-1, 1)),
                   static_cast<float>(rng.uniform(-1, 1))};
  }
  return m;
}

const char* sched_label(bool pooled) { return pooled ? "pool:3" : "serial"; }

void use_sched(bool pooled) {
  if (pooled) {
    sched::configure(sched::sched_mode::pool, 3);
  } else {
    sched::configure(sched::sched_mode::serial);
  }
}

bench::bench_gemm_row phase_row(const char* phase, long long m, long long n,
                                long long k, bool pooled, double ms) {
  bench::bench_gemm_row row;
  row.routine = phase;
  row.m = m;
  row.n = n;
  row.k = k;
  row.mode = "STANDARD";
  row.err_ulp = 0.0;
  row.source = "measured";
  char note[96];
  std::snprintf(note, sizeof(note), "sched=%s ms=%.4f", sched_label(pooled),
                ms);
  row.note = note;
  return row;
}

}  // namespace

int main() {
  // This bench's artifact is the step breakdown, not the GEMM table:
  // default to BENCH_step.json unless the caller overrides.
  if (!env_get(bench::kBenchJsonEnvVar)) {
    env_set(bench::kBenchJsonEnvVar, kStepJsonDefaultPath);
  }
  bench::bench_json_writer writer("ext_step_overlap");

  std::printf("ext_step_overlap — QD-step phase timing, serial vs pooled\n");
  std::printf("remap_occ shape (Table VII structure): m=%zu n=%zu k=%zu\n\n",
              kNocc, kNorb - kNocc, kNgrid);

  const matrix<C> psi0 = random_matrix(kNgrid, kNorb, 0xA1);
  const matrix<C> psi = random_matrix(kNgrid, kNorb, 0xB2);
  const std::vector<double> occ(kNorb, 1.0);
  const double dv = 1.0 / static_cast<double>(kNgrid);
  const std::size_t nunocc = kNorb - kNocc;

  // --- phase: pack_b — prepacking remap_occ's B panel (the work the
  // pooled step overlaps with nlp_prop's compute).
  for (const bool pooled : {false, true}) {
    use_sched(pooled);
    const double ms = time_ms([&] {
      blas::clear_prepacked();
      blas::prepack_b<C>(blas::transpose::none, kNgrid, nunocc,
                         psi0.data() + kNocc * kNgrid, kNgrid);
    });
    blas::clear_prepacked();
    std::printf("  pack_b        %-8s %8.4f ms\n", sched_label(pooled), ms);
    writer.add(phase_row("pack_b", (long long)kNocc, (long long)nunocc,
                         (long long)kNgrid, pooled, ms));
  }

  // --- phase: compute — the remap_occ overlap GEMM itself, cold pack vs
  // consuming a prepacked panel (the per-call saving the overlap buys).
  {
    matrix<C> s(kNocc, nunocc);
    use_sched(false);
    const double cold_ms = time_ms([&] {
      blas::clear_prepacked();
      lfd::remap_overlap<float>(psi0, psi, kNocc, dv, s);
    });
    const double packed_ms = time_ms([&] {
      blas::prepack_b<C>(blas::transpose::none, kNgrid, nunocc,
                         psi0.data() + kNocc * kNgrid, kNgrid);
      lfd::remap_overlap<float>(psi0, psi, kNocc, dv, s);
    });
    blas::clear_prepacked();
    std::printf("  remap_overlap cold    %8.4f ms   prepack+gemm %8.4f ms\n",
                cold_ms, packed_ms);
    auto cold = phase_row("remap_overlap", (long long)kNocc,
                          (long long)nunocc, (long long)kNgrid, false,
                          cold_ms);
    cold.note += " pack=cold";
    writer.add(cold);
    auto packed = phase_row("remap_overlap", (long long)kNocc,
                            (long long)nunocc, (long long)kNgrid, false,
                            packed_ms);
    packed.note += " pack=prepacked";
    writer.add(packed);
  }

  // --- phase: mesh — the kinetic stencil over all orbitals (the column
  // loop rides the scheduler's injected worker team).
  {
    const mesh::grid3d grid = mesh::grid3d::cubic(kMesh, 1.0);
    std::vector<double> v_loc(kNgrid, 0.1);
    const lfd::hamiltonian<float> h(grid, mesh::fd_order::fourth,
                                    std::move(v_loc), 0);
    matrix<C> out(kNgrid, kNorb);
    for (const bool pooled : {false, true}) {
      use_sched(pooled);
      const double ms =
          time_ms([&] { h.apply_kinetic(psi.view(), out.view()); });
      std::printf("  apply_kinetic %-8s %8.4f ms\n", sched_label(pooled),
                  ms);
      writer.add(phase_row("apply_kinetic", (long long)kNgrid,
                           (long long)kNorb, 0, pooled, ms));
    }
  }

  // --- phase: checkpoint — payload serialization (always synchronous)
  // and the seal (checksum + framing; the part the pool double-buffers).
  {
    use_sched(false);
    core::driver d(core::preset(core::paper_system::tiny));
    std::string payload;
    const double ser_ms =
        time_ms([&] { payload = core::serialize_checkpoint_payload(d); });
    std::string blob;
    const double seal_ms =
        time_ms([&] { blob = core::seal_checkpoint(payload); });
    std::printf("  checkpoint    serialize %8.4f ms   seal %8.4f ms\n",
                ser_ms, seal_ms);
    auto ser = phase_row("checkpoint_serialize", (long long)payload.size(),
                         0, 0, false, ser_ms);
    writer.add(ser);
    auto seal = phase_row("checkpoint_seal", (long long)blob.size(), 0, 0,
                          false, seal_ms);
    seal.note += " double-buffered-under-pool";
    writer.add(seal);
  }

  // --- whole step: tiny-preset driver, serial oracle vs pooled graph.
  double serial_ms = 0.0, pooled_ms = 0.0;
  for (const bool pooled : {false, true}) {
    use_sched(pooled);
    core::driver d(core::preset(core::paper_system::tiny));
    const double ms = time_ms([&] { (void)d.qd_step(); });
    (pooled ? pooled_ms : serial_ms) = ms;
    std::printf("  qd_step       %-8s %8.4f ms\n", sched_label(pooled), ms);
    auto row = phase_row("qd_step", 0, 0, 0, pooled, ms);
    row.gflops = 1e3 / ms;  // steps per second
    writer.add(row);
  }
  std::printf("\nwhole-step pooled/serial ratio: %.3f "
              "(<1 means the pooled step is faster; expect >=1 on a single "
              "hardware thread)\n",
              pooled_ms / serial_ms);

  sched::reset_for_testing();
  writer.write();
  return 0;
}
