// fig2_current_log — reproduces paper Figure 2: log10 of the deviation of
// the current density (javg) from FP32 over the simulation per compute
// mode.  Real numerics at the scaled system size; --quick/--full adjust
// the step count (default 250).

#include <cmath>

#include "accuracy_common.hpp"
#include "dcmesh/common/stats.hpp"

namespace {

using namespace dcmesh;

int run(int argc, char** argv) {
  const int steps = bench::parse_steps(argc, argv, 250);
  bench::banner("Figure 2",
                "log10 deviation of current density from FP32 per mode");
  const core::run_config config = bench::accuracy_config(steps, 1);
  std::printf("Scaled system: %d atoms, %lld^3 mesh, Norb=%zu, %d QD steps\n\n",
              config.atom_count(), static_cast<long long>(config.mesh_n),
              config.norb, config.total_qd_steps());

  const auto results = bench::run_all_modes(config);
  const auto ref = core::extract_column(
      results.at(blas::compute_mode::standard), "javg");

  text_table table({"t (a.t.u.)", "BF16", "BF16x2", "BF16x3", "TF32",
                    "Complex_3m"});
  const int stride = std::max(1, steps / 12);
  std::map<blas::compute_mode, std::vector<double>> logs;
  for (blas::compute_mode mode : bench::alternative_modes()) {
    logs[mode] = log10_deviation_series(
        core::extract_column(results.at(mode), "javg"), ref);
  }
  const auto& reference = results.at(blas::compute_mode::standard);
  for (std::size_t i = stride - 1; i < ref.size();
       i += static_cast<std::size_t>(stride)) {
    std::vector<std::string> row{fmt(reference[i].t, 4)};
    for (blas::compute_mode mode : bench::alternative_modes()) {
      row.push_back(fmt_fixed(logs[mode][i], 2));
    }
    table.add_row(row);
  }
  table.print();

  // Fig 2's qualitative claims: BF16, TF32 and BF16x3 track closely (no
  // divergence over the run) and stay well separated from the signal.
  double signal = 0.0;
  for (double j : ref) signal = std::max(signal, std::abs(j));
  std::printf("\nlog10 max |javg| signal: %.2f\n", std::log10(signal));
  for (blas::compute_mode mode : bench::alternative_modes()) {
    running_stats s;
    for (double v : logs[mode]) s.add(v);
    std::printf("  %-10s log10 deviation: mean %.2f, max %.2f\n",
                std::string(blas::name(mode)).c_str(), s.mean(), s.max());
  }
  std::printf(
      "\npaper (qualitative): BF16, TF32, and BF16x3 track closely with one "
      "another and show no signs of divergence over the simulation.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
