// table5_systems — reproduces paper Table V: the system sizes studied, and
// checks the capacity claim (the 135-atom system is the largest fitting the
// 64 GB of one GPU stack).

#include "bench_common.hpp"
#include "dcmesh/core/presets.hpp"
#include "dcmesh/qxmd/supercell.hpp"

namespace {

using namespace dcmesh;

int run() {
  bench::banner("Table V", "System sizes studied");

  text_table table({"Number of Atoms", "Mesh Grid Size", "Norb", "Nocc",
                    "FP32 state (GB)", "paper"});
  for (const auto& [system, paper] :
       std::vector<std::pair<core::paper_system, const char*>>{
           {core::paper_system::pto40, "40 / 64x64x64 / 256"},
           {core::paper_system::pto135, "135 / 96x96x96 / 1024"}}) {
    const core::run_config c = core::preset(system);
    const xehpc::system_shape shape{
        c.ngrid(), static_cast<blas::blas_int>(c.norb),
        static_cast<blas::blas_int>(c.nocc)};
    table.add_row(
        {std::to_string(c.atom_count()),
         std::to_string(c.mesh_n) + "x" + std::to_string(c.mesh_n) + "x" +
             std::to_string(c.mesh_n),
         std::to_string(c.norb), std::to_string(c.nocc),
         fmt(xehpc::wavefunction_bytes(shape, xehpc::gemm_precision::fp32) /
                 1e9,
             3),
         paper});
  }
  table.print();

  // Capacity check: ~4x the wave-function block must fit in 64 GB for the
  // 135-atom system (propagation scratch + reference copy), and a 320-atom
  // (4x4x4 cells) system must not.
  const auto s135 = bench::pto135_shape();
  const double bytes135 =
      4.0 * xehpc::wavefunction_bytes(s135, xehpc::gemm_precision::fp32);
  const xehpc::system_shape s320{128LL * 128 * 128, 2432, 1024};
  const double bytes320 =
      4.0 * xehpc::wavefunction_bytes(s320, xehpc::gemm_precision::fp32);
  std::printf(
      "\nCapacity (64 GB/stack): 135-atom needs ~%.1f GB (fits: %s); "
      "next size up (320-atom) needs ~%.1f GB (fits: %s)\n",
      bytes135 / 1e9, bytes135 < 64e9 ? "yes" : "NO", bytes320 / 1e9,
      bytes320 < 64e9 ? "yes" : "NO");
  std::printf("paper: \"largest system that can fit within the 64GB memory "
              "of a single GPU stack is [the] 135 atom\" system\n");

  // The supercell builder agrees with the atom counts.
  std::printf("\nSupercell builder: 2x2x2 -> %zu atoms, 3x3x3 -> %zu atoms\n",
              qxmd::build_pto_supercell(2).size(),
              qxmd::build_pto_supercell(3).size());
  return 0;
}

}  // namespace

int main() { return run(); }
