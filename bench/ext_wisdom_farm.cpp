// ext_wisdom_farm — what the shared wisdom store buys a campaign fleet.
//
// A precision campaign fans N worker processes over the same system, and
// every worker needs the same tuned decisions.  With private wisdom
// caches each worker pays the full calibration cold start; with the
// campaign's ONE flock-merged store the fleet pays it once — the first
// worker to reach a key calibrates it under the store lock, everyone
// else adopts the published decision.  This bench forks real worker
// fleets through the tune::autotuner in all three regimes and reports
// fleet-wide calibration counts and wall time:
//
//   private   N workers, one store each      (N x keys calibrations)
//   shared    N workers, one merged store    (keys calibrations)
//   warm      N workers, pre-warmed store    (0 calibrations)

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dcmesh/tune/autotuner.hpp"
#include "dcmesh/tune/wisdom.hpp"

namespace {

using namespace dcmesh;

constexpr int kWorkers = 8;
constexpr int kKeys = 4;

blas::auto_tune_request request(const std::string& site, int k) {
  return {site, "SGEMM", 128, 128,
          static_cast<blas::blas_int>(64 + 64 * k),
          /*is_complex=*/false, /*is_fp64=*/false, /*ulp_budget=*/0.0};
}

struct fleet_outcome {
  std::uint64_t calibrations = 0;  ///< Summed over all workers.
  double seconds = 0.0;            ///< Fleet wall time.
};

/// Fork kWorkers processes, each resolving all kKeys sites against its
/// assigned store path; collect summed calibration counts.
fleet_outcome run_fleet(const std::string& store_base, bool shared) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<pid_t> children;
  for (int w = 0; w < kWorkers; ++w) {
    const pid_t pid = fork();
    if (pid < 0) std::abort();
    if (pid == 0) {
      const std::string store =
          shared ? store_base : store_base + "." + std::to_string(w);
      tune::autotuner tuner{store};
      for (int i = 0; i < kKeys; ++i) {
        const int k = (w + i) % kKeys;  // different first key per worker
        (void)tuner.resolve(request("farm/key" + std::to_string(k), k));
      }
      std::ofstream out(store_base + ".stats" + std::to_string(w),
                        std::ios::trunc);
      out << tuner.stats().calibrations << "\n";
      out.close();
      _exit(0);
    }
    children.push_back(pid);
  }
  fleet_outcome outcome;
  for (const pid_t pid : children) {
    int status = 0;
    (void)waitpid(pid, &status, 0);
  }
  outcome.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (int w = 0; w < kWorkers; ++w) {
    const std::string stats = store_base + ".stats" + std::to_string(w);
    std::ifstream in(stats);
    std::uint64_t calibrations = 0;
    in >> calibrations;
    outcome.calibrations += calibrations;
    std::remove(stats.c_str());
  }
  return outcome;
}

void cleanup(const std::string& base) {
  std::remove(base.c_str());
  std::remove((base + ".lock").c_str());
  for (int w = 0; w < kWorkers; ++w) {
    const std::string private_store = base + "." + std::to_string(w);
    std::remove(private_store.c_str());
    std::remove((private_store + ".lock").c_str());
  }
}

int run() {
  bench::banner("Extension (campaign farm)",
                "Fleet-wide calibration cost: private vs shared vs warm "
                "wisdom stores");
  std::printf("workers=%d, distinct keys=%d, every worker resolves every "
              "key\n\n", kWorkers, kKeys);

  const std::string base = "/tmp/dcmesh_bench_wisdom_farm.jsonl";
  cleanup(base);

  const fleet_outcome private_stores = run_fleet(base, /*shared=*/false);
  cleanup(base);
  const fleet_outcome shared_cold = run_fleet(base, /*shared=*/true);
  // Keep the now-warm shared store for the third regime.
  const fleet_outcome shared_warm = run_fleet(base, /*shared=*/true);
  const std::uint64_t store_entries =
      tune::load_wisdom(base).entries.size();
  cleanup(base);

  text_table table({"store regime", "fleet calibrations", "expected",
                    "fleet seconds"});
  const auto row = [&](const char* name, const fleet_outcome& outcome,
                       std::uint64_t expected) {
    char calibrations[32], seconds[32];
    std::snprintf(calibrations, sizeof calibrations, "%llu",
                  static_cast<unsigned long long>(outcome.calibrations));
    std::snprintf(seconds, sizeof seconds, "%.3f", outcome.seconds);
    table.add_row({name, calibrations, std::to_string(expected), seconds});
  };
  row("private (one per worker)", private_stores,
      static_cast<std::uint64_t>(kWorkers) * kKeys);
  row("shared, cold", shared_cold, kKeys);
  row("shared, warm", shared_warm, 0);
  table.print();

  std::printf("\nshared store entries after the campaign: %llu "
              "(one per key)\n",
              static_cast<unsigned long long>(store_entries));
  const bool pass =
      private_stores.calibrations ==
          static_cast<std::uint64_t>(kWorkers) * kKeys &&
      shared_cold.calibrations == static_cast<std::uint64_t>(kKeys) &&
      shared_warm.calibrations == 0 && store_entries == kKeys;
  std::printf("contract %s: shared cold start paid once per key, warm "
              "fleet calibration-free\n", pass ? "HOLDS" : "VIOLATED");
  return pass ? 0 : 1;
}

}  // namespace

int main() { return run(); }
