// ext_energy — energy-to-solution per precision mode (extension).
//
// The paper explains the observed-vs-theoretical speedup gap partly by
// power limits; this bench turns the same model around and asks what each
// compute mode costs in Joules for the 135-atom, 500-QD-step series.

#include "bench_common.hpp"
#include "dcmesh/xehpc/energy.hpp"

namespace {

using namespace dcmesh;

int run() {
  bench::banner("Extension", "Energy to solution, 135-atom, 500 QD steps");
  const xehpc::device_spec spec;
  const xehpc::calibration cal = xehpc::default_calibration();
  const xehpc::power_spec power;
  const auto sys = bench::pto135_shape();

  std::printf(
      "[power model] idle=%.0fW vector+=%.0fW matrix+=%.0fW hbm+=%.0fW\n\n",
      power.idle_w, power.vector_active_w, power.matrix_active_w,
      power.hbm_active_w);

  const auto fp32 = xehpc::model_series_energy(
      spec, cal, power, sys,
      {xehpc::gemm_precision::fp32, blas::compute_mode::standard});

  text_table table({"Precision", "Time (s)", "Energy (kJ)", "Avg power (W)",
                    "Energy vs FP32"});
  for (const auto& [label, precision] : bench::fig3a_rows()) {
    const auto e =
        xehpc::model_series_energy(spec, cal, power, sys, precision);
    table.add_row({label, fmt_fixed(e.seconds, 1),
                   fmt_fixed(e.joules / 1e3, 1),
                   fmt_fixed(e.average_watts(), 0),
                   fmt_fixed(100.0 * e.joules / fp32.joules, 1) + "%"});
  }
  table.print();
  std::printf(
      "\nReading: BF16 saves even more energy than time — the XMX phase is "
      "shorter AND the run spends more of its life bandwidth-bound at "
      "lower draw.  (Model estimate; the paper reports no energy "
      "numbers.)\n");
  return 0;
}

}  // namespace

int main() { return run(); }
