#pragma once
// bench_json.hpp — machine-readable bench output.
//
// The text tables the benches print are for humans reading EXPERIMENTS.md;
// CI and plotting scripts want one stable artifact instead.  Any bench can
// collect (routine, shape, mode, GFLOP/s, error) rows into a
// bench_json_writer and flush them as a single JSON document — by default
// BENCH_gemm.json in the working directory, overridable with
// DCMESH_BENCH_JSON.  An unwritable path warns once and is otherwise
// ignored; emitting the artifact must never fail a bench run.
//
// Schema (version-tagged so downstream scripts can detect drift):
//   {"schema":"dcmesh-bench-gemm/2","bench":"<binary>","rows":[
//     {"routine":"SGEMM","m":128,"n":128,"k":128,"mode":"STANDARD",
//      "gflops":12.3,"err_ulp":10.2,"source":"measured"}, ...]}
// Version 2 adds an optional "note" string per row (omitted when empty),
// used for engine-path annotations like fused-vs-legacy speedups and the
// pack/compute phase breakdown of the split engine.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/trace/tracer.hpp"

namespace dcmesh::bench {

/// Overrides the default BENCH_gemm.json output path.
inline constexpr std::string_view kBenchJsonEnvVar = "DCMESH_BENCH_JSON";
inline constexpr const char* kBenchJsonDefaultPath = "BENCH_gemm.json";
inline constexpr std::string_view kBenchJsonSchema = "dcmesh-bench-gemm/2";

/// One benchmark result row.
struct bench_gemm_row {
  std::string routine;  ///< "SGEMM", "CGEMM", ... or a derived label.
  long long m = 0, n = 0, k = 0;
  std::string mode;       ///< Compute-mode token or policy label.
  double gflops = 0.0;    ///< Measured throughput (0 = not timed).
  double err_ulp = 0.0;   ///< Error metric (storage ULPs, or a deviation).
  std::string source;     ///< How the row was produced ("measured", ...).
  std::string note;       ///< Optional annotation (schema v2; "" = omitted).
};

/// Collects rows and writes them as one JSON document.
class bench_json_writer {
 public:
  explicit bench_json_writer(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void add(bench_gemm_row row) { rows_.push_back(std::move(row)); }

  [[nodiscard]] const std::vector<bench_gemm_row>& rows() const {
    return rows_;
  }

  /// Write to DCMESH_BENCH_JSON (default BENCH_gemm.json).  Returns false
  /// — after one stderr warning — when the path cannot be written; never
  /// throws, so benches cannot be failed by a bad artifact path.
  bool write() const {
    const std::string path =
        env_get(kBenchJsonEnvVar).value_or(kBenchJsonDefaultPath);
    std::ofstream os(path, std::ios::trunc);
    if (os) {
      os << render();
      os.flush();
    }
    if (!os) {
      std::fprintf(stderr,
                   "dcmesh: cannot write bench JSON file \"%s\"; results "
                   "were printed but not archived\n",
                   path.c_str());
      return false;
    }
    std::printf("[bench-json] wrote %zu row(s) to %s\n", rows_.size(),
                path.c_str());
    return true;
  }

  [[nodiscard]] std::string render() const {
    std::string out = "{\"schema\":\"";
    out += kBenchJsonSchema;
    out += "\",\"bench\":\"";
    trace::append_json_escaped(out, bench_name_);
    out += "\",\"rows\":[";
    char buffer[128];
    bool first = true;
    for (const auto& row : rows_) {
      if (!first) out += ',';
      first = false;
      out += "\n{\"routine\":\"";
      trace::append_json_escaped(out, row.routine);
      std::snprintf(buffer, sizeof(buffer),
                    "\",\"m\":%lld,\"n\":%lld,\"k\":%lld,\"mode\":\"",
                    row.m, row.n, row.k);
      out += buffer;
      trace::append_json_escaped(out, row.mode);
      std::snprintf(buffer, sizeof(buffer),
                    "\",\"gflops\":%.6g,\"err_ulp\":%.6g,\"source\":\"",
                    row.gflops, row.err_ulp);
      out += buffer;
      trace::append_json_escaped(out, row.source);
      out += '"';
      if (!row.note.empty()) {
        out += ",\"note\":\"";
        trace::append_json_escaped(out, row.note);
        out += '"';
      }
      out += '}';
    }
    out += "\n]}\n";
    return out;
  }

 private:
  std::string bench_name_;
  std::vector<bench_gemm_row> rows_;
};

namespace detail {

inline double bench_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename T>
inline void bench_fill(std::vector<T>& v, xoshiro256& rng) {
  for (auto& x : v) {
    if constexpr (std::is_floating_point_v<T>) {
      x = static_cast<T>(rng.uniform(-1.0, 1.0));
    } else {
      x = {static_cast<typename T::value_type>(rng.uniform(-1.0, 1.0)),
           static_cast<typename T::value_type>(rng.uniform(-1.0, 1.0))};
    }
  }
}

}  // namespace detail

/// Measure one (routine, shape, mode) cell on random operands: GFLOP/s
/// from repeated runs, error as the worst componentwise deviation from an
/// FP64 triple-loop reference in storage ULPs (per-component magnitude
/// floored at a tenth of the largest, as the autotuner measures it).
template <typename T>
bench_gemm_row measure_gemm_row(std::string_view routine, blas::blas_int m,
                                blas::blas_int n, blas::blas_int k,
                                blas::compute_mode mode) {
  constexpr bool is_cplx = !std::is_floating_point_v<T>;
  using ref_t = std::conditional_t<is_cplx, std::complex<double>, double>;

  xoshiro256 rng(0x42u ^ static_cast<std::uint64_t>(m * 73856093ll) ^
                 static_cast<std::uint64_t>(k * 19349663ll));
  std::vector<T> a(static_cast<std::size_t>(m) * k);
  std::vector<T> b(static_cast<std::size_t>(k) * n);
  std::vector<T> c(static_cast<std::size_t>(m) * n);
  detail::bench_fill(a, rng);
  detail::bench_fill(b, rng);

  std::vector<ref_t> ref(c.size(), ref_t(0));
  for (blas::blas_int j = 0; j < n; ++j) {
    for (blas::blas_int p = 0; p < k; ++p) {
      const ref_t bpj = ref_t(b[static_cast<std::size_t>(j) * k + p]);
      for (blas::blas_int i = 0; i < m; ++i) {
        ref[static_cast<std::size_t>(j) * m + i] +=
            ref_t(a[static_cast<std::size_t>(p) * m + i]) * bpj;
      }
    }
  }

  blas::gemm_call<T> call;
  call.m = m;
  call.n = n;
  call.k = k;
  call.a = a.data();
  call.lda = m;
  call.b = b.data();
  call.ldb = k;
  call.c = c.data();
  call.ldc = m;
  call.mode = mode;

  const double probe_start = detail::bench_now();
  blas::run(call);
  const double probe = std::max(detail::bench_now() - probe_start, 1e-9);

  double max_abs = 0.0;
  for (const auto& r : ref) {
    if constexpr (is_cplx) {
      max_abs = std::max({max_abs, std::abs(r.real()), std::abs(r.imag())});
    } else {
      max_abs = std::max(max_abs, std::abs(r));
    }
  }
  const double floor = std::max(0.1 * max_abs, 1e-300);
  const double eps = std::is_same_v<T, float> ||
                             std::is_same_v<T, std::complex<float>>
                         ? 0x1.0p-23
                         : 0x1.0p-52;
  double err = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if constexpr (is_cplx) {
      err = std::max(
          {err,
           std::abs(double(c[i].real()) - ref[i].real()) /
               (eps * std::max(std::abs(ref[i].real()), floor)),
           std::abs(double(c[i].imag()) - ref[i].imag()) /
               (eps * std::max(std::abs(ref[i].imag()), floor))});
    } else {
      err = std::max(err, std::abs(double(c[i]) - ref[i]) /
                              (eps * std::max(std::abs(ref[i]), floor)));
    }
  }

  const int reps =
      std::clamp(static_cast<int>(2e-3 / probe), 1, 32);
  const double start = detail::bench_now();
  for (int r = 0; r < reps; ++r) blas::run(call);
  const double elapsed = std::max(detail::bench_now() - start, 1e-9);
  const double flops =
      (is_cplx ? 8.0 : 2.0) * double(m) * double(n) * double(k);

  bench_gemm_row row;
  row.routine = std::string(routine);
  row.m = m;
  row.n = n;
  row.k = k;
  row.mode = std::string(blas::info(mode).env_token);
  row.gflops = flops * reps / elapsed / 1e9;
  row.err_ulp = err;
  row.source = "measured";
  return row;
}

}  // namespace dcmesh::bench
