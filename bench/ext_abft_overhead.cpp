// ext_abft_overhead — what does the checksummed-GEMM guard cost?
//
// The ABFT tier (README "Resilience", DESIGN §15) runs every protected
// real GEMM on Huang–Abraham-augmented operands — one extra checksum row
// on A, one extra checksum column on B — and verifies the result's
// row/column sums against per-mode residual thresholds.  The overhead
// claim ("one extra row/column of work plus an O(mn + mk + kn) pack and
// verify sweep") should be a recorded number, not prose: this bench
// times abft=off / detect / correct across the compute-mode grid at the
// paper's Table VII remap_occ shape (m = Nocc = 128, n = Norb - Nocc =
// 128, k = Ngrid = 262144 — the long-k occupied-subspace remap that
// dominates the QD step) and archives BENCH_gemm.json rows.
//
//   ./ext_abft_overhead          # full Table VII k = 262144
//   ./ext_abft_overhead 65536    # reduced k (CI-friendly)
//
// detect and correct cost the same on a clean run — correction work only
// happens after a detection — so their columns should agree to noise.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/resil/abft.hpp"

namespace {

using namespace dcmesh;

constexpr blas::blas_int kM = 128;
constexpr blas::blas_int kN = 128;

/// Median-of-reps wall time for one descriptor execution.
double time_call(blas::gemm_call<float>& call) {
  const auto once = [&] {
    const auto start = std::chrono::steady_clock::now();
    blas::run(call);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const double warm = once();
  int reps = warm > 0.0 ? static_cast<int>(0.3 / warm) : 8;
  reps = reps < 1 ? 1 : (reps > 8 ? 8 : reps);
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) times.push_back(once());
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

int run(int argc, char** argv) {
  blas::blas_int k = 262144;
  if (argc > 1) {
    const long parsed = std::strtol(argv[1], nullptr, 10);
    if (parsed > 0) k = static_cast<blas::blas_int>(parsed);
  }
  bench::banner("Extension (resilience)",
                "ABFT checksummed-GEMM overhead at the Table VII "
                "remap_occ shape");
  std::printf("shape: m=%lld n=%lld k=%lld (SGEMM)\n\n",
              static_cast<long long>(kM), static_cast<long long>(kN),
              static_cast<long long>(k));

  const std::size_t mk = static_cast<std::size_t>(kM) * k;
  const std::size_t kn = static_cast<std::size_t>(k) * kN;
  const std::size_t mn = static_cast<std::size_t>(kM) * kN;
  std::vector<float> a(mk), b(kn), c(mn);
  xoshiro256 rng(7);
  for (auto& x : a) x = static_cast<float>(rng.uniform(-0.5, 0.5));
  for (auto& x : b) x = static_cast<float>(rng.uniform(-0.5, 0.5));

  const blas::compute_mode modes[] = {
      blas::compute_mode::standard,
      blas::compute_mode::float_to_bf16x2,
      blas::compute_mode::float_to_bf16x3,
      blas::compute_mode::float_to_tf32,
  };
  const resil::abft_mode tiers[] = {resil::abft_mode::off,
                                    resil::abft_mode::detect,
                                    resil::abft_mode::correct};

  bench::bench_json_writer json("ext_abft_overhead");
  text_table table({"Mode", "off GFLOP/s", "detect GFLOP/s",
                    "correct GFLOP/s", "detect ovh", "correct ovh"});
  const double flops = blas::gemm_flops(false, kM, kN, k);

  for (const auto mode : modes) {
    double gflops[3] = {0.0, 0.0, 0.0};
    for (std::size_t t = 0; t < std::size(tiers); ++t) {
      blas::gemm_call<float> call;
      call.m = kM;
      call.n = kN;
      call.k = k;
      call.a = a.data();
      call.lda = kM;
      call.b = b.data();
      call.ldb = k;
      call.c = c.data();
      call.ldc = kM;
      call.call_site = "bench/abft_overhead";
      call.mode = mode;
      call.abft = tiers[t];
      const double seconds = time_call(call);
      gflops[t] = seconds > 0.0 ? flops / seconds * 1e-9 : 0.0;
      json.add({"SGEMM", kM, kN, k, std::string(blas::name(mode)),
                gflops[t], 0.0, "measured",
                "abft=" + std::string(resil::name(tiers[t]))});
    }
    const auto overhead = [&](double tier) {
      return tier > 0.0 && gflops[0] > 0.0
                 ? fmt_fixed((gflops[0] / tier - 1.0) * 100.0, 1) + "%"
                 : std::string("n/a");
    };
    table.add_row({std::string(blas::name(mode)), fmt_fixed(gflops[0], 2),
                   fmt_fixed(gflops[1], 2), fmt_fixed(gflops[2], 2),
                   overhead(gflops[1]), overhead(gflops[2])});
  }
  table.print();
  json.write();
  std::printf(
      "\nReading: the extra checksum row/column is sub-percent "
      "arithmetic ((m+n+1)/(m*n)), but the guard also MATERIALIZES the "
      "augmented operands — an O(mk + kn) copy that at this long-k, "
      "small-mn shape rivals the GEMM's own memory traffic — plus the "
      "O(mn) verify sweep, so expect tens of percent here and a shrinking "
      "share as m and n grow.  detect and correct coincide to noise on "
      "clean runs because correction work only starts after a "
      "detection.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
