// micro_gemm — google-benchmark microbenchmarks of the minimkl kernels on
// this host.  These measure the CPU emulation (correctness substrate), not
// the GPU: useful for tracking kernel regressions and for seeing the
// component-product cost structure of the split modes directly.

#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "bench_json.hpp"
#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/common/rng.hpp"

namespace {

using namespace dcmesh;

template <typename T>
std::vector<T> random_data(std::size_t n, unsigned seed) {
  xoshiro256 rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) {
    if constexpr (std::is_floating_point_v<T>) {
      x = static_cast<T>(rng.uniform(-1, 1));
    } else {
      x = {static_cast<typename T::value_type>(rng.uniform(-1, 1)),
           static_cast<typename T::value_type>(rng.uniform(-1, 1))};
    }
  }
  return v;
}

void BM_sgemm(benchmark::State& state) {
  const auto n = static_cast<blas::blas_int>(state.range(0));
  const auto a = random_data<float>(n * n, 1);
  const auto b = random_data<float>(n * n, 2);
  std::vector<float> c(n * n);
  blas::clear_compute_mode();
  for (auto _ : state) {
    blas::sgemm(blas::transpose::none, blas::transpose::none, n, n, n, 1.0f,
                a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemm_flops(false, n, n, n) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_sgemm)->Arg(64)->Arg(128)->Arg(256);

void BM_dgemm(benchmark::State& state) {
  const auto n = static_cast<blas::blas_int>(state.range(0));
  const auto a = random_data<double>(n * n, 3);
  const auto b = random_data<double>(n * n, 4);
  std::vector<double> c(n * n);
  for (auto _ : state) {
    blas::dgemm(blas::transpose::none, blas::transpose::none, n, n, n, 1.0,
                a.data(), n, b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemm_flops(false, n, n, n) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_dgemm)->Arg(64)->Arg(128);

void BM_cgemm_mode(benchmark::State& state) {
  using C = std::complex<float>;
  const blas::blas_int m = 32, n = 32, k = 4096;  // DCMESH-like skinny shape
  const auto mode = static_cast<blas::compute_mode>(state.range(0));
  const auto a = random_data<C>(k * m, 5);
  const auto b = random_data<C>(k * n, 6);
  std::vector<C> c(m * n);
  blas::scoped_compute_mode scope(mode);
  for (auto _ : state) {
    blas::cgemm(blas::transpose::conj_trans, blas::transpose::none, m, n, k,
                C(1), a.data(), k, b.data(), k, C(0), c.data(), m);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(std::string(blas::name(mode)));
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemm_flops(true, m, n, k) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_cgemm_mode)
    ->Arg(static_cast<int>(blas::compute_mode::standard))
    ->Arg(static_cast<int>(blas::compute_mode::float_to_bf16))
    ->Arg(static_cast<int>(blas::compute_mode::float_to_bf16x2))
    ->Arg(static_cast<int>(blas::compute_mode::float_to_bf16x3))
    ->Arg(static_cast<int>(blas::compute_mode::float_to_tf32))
    ->Arg(static_cast<int>(blas::compute_mode::complex_3m));

void BM_sgemm_split(benchmark::State& state) {
  const blas::blas_int n = 128;
  const auto mode = static_cast<blas::compute_mode>(state.range(0));
  const auto a = random_data<float>(n * n, 7);
  const auto b = random_data<float>(n * n, 8);
  std::vector<float> c(n * n);
  blas::scoped_compute_mode scope(mode);
  for (auto _ : state) {
    blas::sgemm(blas::transpose::none, blas::transpose::none, n, n, n, 1.0f,
                a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(std::string(blas::name(mode)));
}
BENCHMARK(BM_sgemm_split)
    ->Arg(static_cast<int>(blas::compute_mode::standard))
    ->Arg(static_cast<int>(blas::compute_mode::float_to_bf16))
    ->Arg(static_cast<int>(blas::compute_mode::float_to_bf16x3))
    ->Arg(static_cast<int>(blas::compute_mode::float_to_tf32));

/// The BENCH_gemm.json sweep: every compute mode on the two shapes the
/// google-benchmark cases cover (square SGEMM, DCMESH-skinny CGEMM), each
/// row carrying measured GFLOP/s AND measured error — the (speed, error)
/// pairs the paper's tables juxtapose, in one machine-readable artifact.
void emit_bench_json() {
  using blas::compute_mode;
  bench::bench_json_writer json("micro_gemm");
  for (const auto mode :
       {compute_mode::standard, compute_mode::float_to_bf16,
        compute_mode::float_to_bf16x2, compute_mode::float_to_bf16x3,
        compute_mode::float_to_tf32}) {
    json.add(bench::measure_gemm_row<float>("SGEMM", 128, 128, 128, mode));
  }
  for (const auto mode :
       {compute_mode::standard, compute_mode::float_to_bf16,
        compute_mode::float_to_bf16x2, compute_mode::float_to_bf16x3,
        compute_mode::float_to_tf32, compute_mode::complex_3m}) {
    json.add(bench::measure_gemm_row<std::complex<float>>("CGEMM", 32, 32,
                                                          1024, mode));
  }
  json.write();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  emit_bench_json();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
