// micro_gemm — google-benchmark microbenchmarks of the minimkl kernels on
// this host.  These measure the CPU emulation (correctness substrate), not
// the GPU: useful for tracking kernel regressions and for seeing the
// component-product cost structure of the split modes directly.

#include <benchmark/benchmark.h>

#include <complex>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/common/rng.hpp"
// Internal engine headers: the fused-vs-legacy comparison times the two
// split implementations directly, and the JSON rows carry the fused
// engine's pack/compute phase breakdown and active kernel ISA.
#include "gemm_kernel.hpp"
#include "kernel_isa.hpp"
#include "split.hpp"

namespace {

using namespace dcmesh;

template <typename T>
std::vector<T> random_data(std::size_t n, unsigned seed) {
  xoshiro256 rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) {
    if constexpr (std::is_floating_point_v<T>) {
      x = static_cast<T>(rng.uniform(-1, 1));
    } else {
      x = {static_cast<typename T::value_type>(rng.uniform(-1, 1)),
           static_cast<typename T::value_type>(rng.uniform(-1, 1))};
    }
  }
  return v;
}

void BM_sgemm(benchmark::State& state) {
  const auto n = static_cast<blas::blas_int>(state.range(0));
  const auto a = random_data<float>(n * n, 1);
  const auto b = random_data<float>(n * n, 2);
  std::vector<float> c(n * n);
  blas::clear_compute_mode();
  for (auto _ : state) {
    blas::sgemm(blas::transpose::none, blas::transpose::none, n, n, n, 1.0f,
                a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemm_flops(false, n, n, n) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_sgemm)->Arg(64)->Arg(128)->Arg(256);

void BM_dgemm(benchmark::State& state) {
  const auto n = static_cast<blas::blas_int>(state.range(0));
  const auto a = random_data<double>(n * n, 3);
  const auto b = random_data<double>(n * n, 4);
  std::vector<double> c(n * n);
  for (auto _ : state) {
    blas::dgemm(blas::transpose::none, blas::transpose::none, n, n, n, 1.0,
                a.data(), n, b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemm_flops(false, n, n, n) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_dgemm)->Arg(64)->Arg(128);

void BM_cgemm_mode(benchmark::State& state) {
  using C = std::complex<float>;
  const blas::blas_int m = 32, n = 32, k = 4096;  // DCMESH-like skinny shape
  const auto mode = static_cast<blas::compute_mode>(state.range(0));
  const auto a = random_data<C>(k * m, 5);
  const auto b = random_data<C>(k * n, 6);
  std::vector<C> c(m * n);
  blas::scoped_compute_mode scope(mode);
  for (auto _ : state) {
    blas::cgemm(blas::transpose::conj_trans, blas::transpose::none, m, n, k,
                C(1), a.data(), k, b.data(), k, C(0), c.data(), m);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(std::string(blas::name(mode)));
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemm_flops(true, m, n, k) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_cgemm_mode)
    ->Arg(static_cast<int>(blas::compute_mode::standard))
    ->Arg(static_cast<int>(blas::compute_mode::float_to_bf16))
    ->Arg(static_cast<int>(blas::compute_mode::float_to_bf16x2))
    ->Arg(static_cast<int>(blas::compute_mode::float_to_bf16x3))
    ->Arg(static_cast<int>(blas::compute_mode::float_to_tf32))
    ->Arg(static_cast<int>(blas::compute_mode::complex_3m));

void BM_sgemm_split(benchmark::State& state) {
  const blas::blas_int n = 128;
  const auto mode = static_cast<blas::compute_mode>(state.range(0));
  const auto a = random_data<float>(n * n, 7);
  const auto b = random_data<float>(n * n, 8);
  std::vector<float> c(n * n);
  blas::scoped_compute_mode scope(mode);
  for (auto _ : state) {
    blas::sgemm(blas::transpose::none, blas::transpose::none, n, n, n, 1.0f,
                a.data(), n, b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(std::string(blas::name(mode)));
}
BENCHMARK(BM_sgemm_split)
    ->Arg(static_cast<int>(blas::compute_mode::standard))
    ->Arg(static_cast<int>(blas::compute_mode::float_to_bf16))
    ->Arg(static_cast<int>(blas::compute_mode::float_to_bf16x3))
    ->Arg(static_cast<int>(blas::compute_mode::float_to_tf32));

/// Fused engine vs the pre-fusion reference on a DCMESH-skinny shape
/// (small m, n; deep k) — where the legacy path's dense component copies
/// and per-product repacking dominate.  arg0 selects the mode, arg1 the
/// implementation (0 = fused sgemm_split, 1 = legacy reference).
void BM_sgemm_split_skinny(benchmark::State& state) {
  const blas::blas_int m = 64, n = 64, k = 8192;
  const auto mode = static_cast<blas::compute_mode>(state.range(0));
  const bool legacy = state.range(1) != 0;
  const auto a = random_data<float>(k * m, 9);
  const auto b = random_data<float>(k * n, 10);
  std::vector<float> c(m * n);
  for (auto _ : state) {
    if (legacy) {
      blas::detail::sgemm_split_reference(
          mode, blas::transpose::trans, blas::transpose::none, m, n, k, 1.0f,
          a.data(), k, b.data(), k, 0.0f, c.data(), m);
    } else {
      blas::detail::sgemm_split(mode, blas::transpose::trans,
                                blas::transpose::none, m, n, k, 1.0f,
                                a.data(), k, b.data(), k, 0.0f, c.data(), m);
    }
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(std::string(blas::name(mode)) +
                 (legacy ? "/legacy" : "/fused"));
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemm_flops(false, m, n, k) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_sgemm_split_skinny)
    ->Args({static_cast<int>(blas::compute_mode::float_to_bf16x2), 0})
    ->Args({static_cast<int>(blas::compute_mode::float_to_bf16x2), 1})
    ->Args({static_cast<int>(blas::compute_mode::float_to_bf16x3), 0})
    ->Args({static_cast<int>(blas::compute_mode::float_to_bf16x3), 1});

/// Time `calls` of the fused or legacy split path, best-of-`reps` seconds.
double time_split(bool legacy, blas::compute_mode mode, blas::blas_int m,
                  blas::blas_int n, blas::blas_int k, const float* a,
                  const float* b, float* c, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    if (legacy) {
      blas::detail::sgemm_split_reference(
          mode, blas::transpose::trans, blas::transpose::none, m, n, k, 1.0f,
          a, k, b, k, 0.0f, c, m);
    } else {
      blas::detail::sgemm_split(mode, blas::transpose::trans,
                                blas::transpose::none, m, n, k, 1.0f, a, k,
                                b, k, 0.0f, c, m);
    }
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    if (s < best) best = s;
  }
  return best;
}

/// Fused-vs-legacy rows at the paper's Table VII remap_occ shape
/// (Norb = 256 row: m = Nocc = 128, n = Norb - Nocc = 128, k = 64^3),
/// with the fused engine's pack/compute phase breakdown in the note.
void emit_table7_split_rows(bench::bench_json_writer& json) {
  using blas::compute_mode;
  const blas::blas_int m = 128, n = 128, k = 64 * 64 * 64;
  const auto a = random_data<float>(static_cast<std::size_t>(k) * m, 11);
  const auto b = random_data<float>(static_cast<std::size_t>(k) * n, 12);
  std::vector<float> c(static_cast<std::size_t>(m) * n);
  const double flops = blas::gemm_flops(false, m, n, k);
  for (const auto mode :
       {compute_mode::float_to_bf16x2, compute_mode::float_to_bf16x3}) {
    const double legacy_s = time_split(true, mode, m, n, k, a.data(),
                                       b.data(), c.data(), 2);
    blas::detail::reset_split_profile();
    blas::detail::set_split_profiling(true);
    const double fused_s = time_split(false, mode, m, n, k, a.data(),
                                      b.data(), c.data(), 2);
    blas::detail::set_split_profiling(false);
    const auto prof = blas::detail::split_profile_snapshot();
    const double prof_total = std::max(
        prof.pack_a_seconds + prof.pack_b_seconds + prof.compute_seconds,
        1e-12);

    bench::bench_gemm_row legacy_row;
    legacy_row.routine = "SGEMM_T7";
    legacy_row.m = m;
    legacy_row.n = n;
    legacy_row.k = k;
    legacy_row.mode = std::string(blas::info(mode).env_token);
    legacy_row.gflops = flops / legacy_s / 1e9;
    legacy_row.source = "measured-legacy";
    legacy_row.note = "pre-fusion path: dense split_operand + per-product repack";
    json.add(legacy_row);

    bench::bench_gemm_row fused_row = legacy_row;
    fused_row.gflops = flops / fused_s / 1e9;
    fused_row.source = "measured-fused";
    char note[160];
    std::snprintf(note, sizeof(note),
                  "fused engine %.2fx vs legacy; pack_a %.0f%% pack_b %.0f%% "
                  "compute %.0f%%; isa=%s",
                  legacy_s / fused_s, 100 * prof.pack_a_seconds / prof_total,
                  100 * prof.pack_b_seconds / prof_total,
                  100 * prof.compute_seconds / prof_total,
                  std::string(blas::detail::kernel_isa_name(
                                  blas::detail::active_kernel_isa()))
                      .c_str());
    fused_row.note = note;
    json.add(fused_row);
  }
}

/// Per-kernel-tier rows at the Table VII shape (128 x 128 x 64^3): every
/// available ISA tier x {FP32 standard, BF16X2, BF16X3}, best-of-2, with
/// the fused engine's pack/compute phase breakdown for the split modes.
/// This is the artifact the avx512-tier acceptance reads: the avx512 rows
/// must beat the avx2 rows at this shape.
void emit_kernel_tier_rows(bench::bench_json_writer& json) {
  using blas::compute_mode;
  namespace bd = blas::detail;
  const blas::blas_int m = 128, n = 128, k = 64 * 64 * 64;
  const auto a = random_data<float>(static_cast<std::size_t>(k) * m, 13);
  const auto b = random_data<float>(static_cast<std::size_t>(k) * n, 14);
  std::vector<float> c(static_cast<std::size_t>(m) * n);
  const double flops = blas::gemm_flops(false, m, n, k);

  for (const auto isa :
       {bd::kernel_isa::scalar, bd::kernel_isa::avx2,
        bd::kernel_isa::avx512}) {
    if (isa == bd::kernel_isa::avx2 && !bd::avx2_kernels_available()) {
      continue;
    }
    if (isa == bd::kernel_isa::avx512 && !bd::avx512_kernels_available()) {
      continue;
    }
    bd::set_kernel_isa(isa);
    const std::string isa_name(bd::kernel_isa_name(isa));
    for (const auto mode :
         {compute_mode::standard, compute_mode::float_to_bf16x2,
          compute_mode::float_to_bf16x3}) {
      bench::bench_gemm_row row;
      row.routine = "SGEMM_TIER";
      row.m = m;
      row.n = n;
      row.k = k;
      row.mode = std::string(blas::info(mode).env_token);
      row.source = "measured-" + isa_name;
      char note[160];
      if (mode == compute_mode::standard) {
        double best = 1e300;
        for (int r = 0; r < 2; ++r) {
          const auto t0 = std::chrono::steady_clock::now();
          bd::gemm_blocked(blas::transpose::trans, blas::transpose::none, m,
                           n, k, 1.0f, a.data(), k, b.data(), k, 0.0f,
                           c.data(), m);
          const double s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
          if (s < best) best = s;
        }
        row.gflops = flops / best / 1e9;
        std::snprintf(note, sizeof(note), "blocked core; isa=%s",
                      isa_name.c_str());
      } else {
        bd::reset_split_profile();
        bd::set_split_profiling(true);
        const double best = time_split(false, mode, m, n, k, a.data(),
                                       b.data(), c.data(), 2);
        bd::set_split_profiling(false);
        const auto prof = bd::split_profile_snapshot();
        const double prof_total =
            std::max(prof.pack_a_seconds + prof.pack_b_seconds +
                         prof.compute_seconds,
                     1e-12);
        row.gflops = flops / best / 1e9;
        std::snprintf(note, sizeof(note),
                      "pack_a %.0f%% pack_b %.0f%% compute %.0f%%; isa=%s; "
                      "bf16=%s",
                      100 * prof.pack_a_seconds / prof_total,
                      100 * prof.pack_b_seconds / prof_total,
                      100 * prof.compute_seconds / prof_total,
                      isa_name.c_str(),
                      bd::bf16_native_active() ? "native" : "software");
      }
      row.note = note;
      json.add(row);
    }
  }
  bd::set_kernel_isa(std::nullopt);
}

/// The BENCH_gemm.json sweep: every compute mode on the two shapes the
/// google-benchmark cases cover (square SGEMM, DCMESH-skinny CGEMM), each
/// row carrying measured GFLOP/s AND measured error — the (speed, error)
/// pairs the paper's tables juxtapose, in one machine-readable artifact.
/// Plus the Table VII fused-vs-legacy split-engine rows.
void emit_bench_json() {
  using blas::compute_mode;
  bench::bench_json_writer json("micro_gemm");
  for (const auto mode :
       {compute_mode::standard, compute_mode::float_to_bf16,
        compute_mode::float_to_bf16x2, compute_mode::float_to_bf16x3,
        compute_mode::float_to_tf32}) {
    json.add(bench::measure_gemm_row<float>("SGEMM", 128, 128, 128, mode));
  }
  for (const auto mode :
       {compute_mode::standard, compute_mode::float_to_bf16,
        compute_mode::float_to_bf16x2, compute_mode::float_to_bf16x3,
        compute_mode::float_to_tf32, compute_mode::complex_3m}) {
    json.add(bench::measure_gemm_row<std::complex<float>>("CGEMM", 32, 32,
                                                          1024, mode));
  }
  emit_table7_split_rows(json);
  emit_kernel_tier_rows(json);
  json.write();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  emit_bench_json();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
