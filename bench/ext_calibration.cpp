// ext_calibration — sensitivity of the reproduced performance anchors to
// the device-model calibration constants (ablation).
//
// The model has a handful of fitted constants (DESIGN.md).  This bench
// perturbs each by +-20% and reports how the three paper anchors move —
// showing which conclusions are robust (orderings, shapes) and which
// numbers genuinely depend on the fit (absolute seconds).

#include <functional>

#include "bench_common.hpp"
#include "dcmesh/xehpc/app_model.hpp"
#include "dcmesh/xehpc/roofline.hpp"

namespace {

using namespace dcmesh;

struct anchors {
  double bf16_max_speedup;   // Table VI: 3.91x
  double t135_fp32;          // Fig 3a: 1472 s
  double t135_bf16;          // Fig 3a: 972 s
  bool ordering_holds;       // artifact precision ordering
};

anchors evaluate(const xehpc::calibration& cal) {
  const xehpc::device_spec spec;
  const auto sys135 = bench::pto135_shape();
  anchors a{};
  a.bf16_max_speedup = xehpc::model_speedup_vs_fp32(
      spec, cal, {128, 4096 - 128, 64LL * 64 * 64, true,
                  xehpc::gemm_precision::fp32},
      blas::compute_mode::float_to_bf16);
  const auto t = [&](blas::compute_mode mode, bool fp64 = false) {
    return xehpc::model_series_seconds(
        spec, cal, sys135,
        {fp64 ? xehpc::gemm_precision::fp64 : xehpc::gemm_precision::fp32,
         mode},
        500);
  };
  a.t135_fp32 = t(blas::compute_mode::standard);
  a.t135_bf16 = t(blas::compute_mode::float_to_bf16);
  const double bf16 = a.t135_bf16;
  const double tf32 = t(blas::compute_mode::float_to_tf32);
  const double x2 = t(blas::compute_mode::float_to_bf16x2);
  const double x3 = t(blas::compute_mode::float_to_bf16x3);
  const double m3 = t(blas::compute_mode::complex_3m);
  const double fp64 = t(blas::compute_mode::standard, true);
  a.ordering_holds = bf16 < tf32 && tf32 < x2 && x2 < x3 && x3 < m3 &&
                     m3 < a.t135_fp32 && a.t135_fp32 < fp64;
  return a;
}

int run() {
  bench::banner("Extension (ablation)",
                "Anchor sensitivity to the calibration constants (+-20%)");
  const xehpc::calibration base = xehpc::default_calibration();

  struct knob {
    const char* name;
    std::function<void(xehpc::calibration&, double)> scale;
  };
  const knob knobs[] = {
      {"vector_sustained",
       [](xehpc::calibration& c, double f) { c.vector_sustained *= f; }},
      {"matrix_sustained",
       [](xehpc::calibration& c, double f) { c.matrix_sustained *= f; }},
      {"matrix_m_half",
       [](xehpc::calibration& c, double f) { c.matrix_m_half *= f; }},
      {"matrix_n_half",
       [](xehpc::calibration& c, double f) { c.matrix_n_half *= f; }},
      {"component_marginal_cost",
       [](xehpc::calibration& c, double f) {
         c.component_marginal_cost *= f;
       }},
      {"hbm_efficiency",
       [](xehpc::calibration& c, double f) { c.hbm_efficiency *= f; }},
      {"mesh_sweeps_per_qd_step",
       [](xehpc::calibration& c, double f) {
         c.mesh_sweeps_per_qd_step *= f;
       }},
  };

  const anchors ref = evaluate(base);
  std::printf("baseline: BF16 max %.2fx (paper 3.91x), 135-atom FP32 %.0fs "
              "(1472s), BF16 %.0fs (972s), ordering %s\n\n",
              ref.bf16_max_speedup, ref.t135_fp32, ref.t135_bf16,
              ref.ordering_holds ? "holds" : "BROKEN");

  text_table table({"Knob", "Scale", "BF16 max", "FP32 (s)", "BF16 (s)",
                    "Ordering"});
  for (const knob& k : knobs) {
    for (double factor : {0.8, 1.2}) {
      xehpc::calibration cal = base;
      k.scale(cal, factor);
      const anchors a = evaluate(cal);
      table.add_row({k.name, fmt_fixed(factor, 1),
                     fmt_fixed(a.bf16_max_speedup, 2) + "x",
                     fmt_fixed(a.t135_fp32, 0), fmt_fixed(a.t135_bf16, 0),
                     a.ordering_holds ? "holds" : "BREAKS"});
    }
  }
  table.print();
  std::printf(
      "\nReading: the headline results (BF16 fastest by a wide margin, max "
      "BLAS speedup ~4x, FP64 slowest) survive every perturbation; where "
      "\"Ordering BREAKS\" it is the thin BF16x3-vs-Complex_3m gap — the "
      "two slowest alternative modes, ~1.5%% apart at baseline — that "
      "flips, which matches the paper's own observation that both deliver "
      "only marginal speedups.  Absolute seconds move with the fit, as "
      "expected for a calibrated model.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
