// table2_modes — reproduces paper Table II: the available BLAS compute
// modes, their controlling environment-variable values, and the peak
// theoretical speedup vs FP32 (both the registry's closed-form value and
// the one derived from the device peaks).

#include "bench_common.hpp"
#include "dcmesh/xehpc/roofline.hpp"

namespace {

using namespace dcmesh;

int run() {
  bench::banner("Table II",
                "Available BLAS compute modes (peak speedup vs FP32)");
  const xehpc::device_spec spec;

  text_table table({"Compute Mode", "Environment Variable", "Products",
                    "Peak Theoretical", "From device peaks", "paper"});
  const char* paper[] = {"16x", "(16/3)x", "(8/3)x", "8x", "4/3x"};
  int i = 0;
  for (blas::compute_mode mode : bench::alternative_modes()) {
    const auto& info = blas::info(mode);
    table.add_row({std::string(info.name), std::string(info.env_token),
                   std::to_string(info.component_products),
                   fmt(info.peak_theoretical_speedup, 4) + "x",
                   fmt(xehpc::peak_theoretical_speedup(spec, mode), 4) + "x",
                   paper[i++]});
  }
  table.print();
  std::printf(
      "\nNote: modes are selected with MKL_BLAS_COMPUTE_MODE — no source\n"
      "changes — exactly as in the paper's methodology.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
