// fig3a_time_to_solution — reproduces paper Figure 3a: time to completion
// of 500 quantum-dynamical steps for the 40- and 135-atom systems at each
// precision level.  Times come from the Xe-HPC device performance model
// (no Max 1550 is available here; substitution documented in DESIGN.md),
// whose calibration anchors are printed alongside.

#include <cmath>

#include "bench_common.hpp"
#include "dcmesh/xehpc/app_model.hpp"

namespace {

using namespace dcmesh;

int run() {
  bench::banner("Figure 3a",
                "Time for 500 QD steps, 40 & 135 atom systems (modeled)");
  const xehpc::device_spec spec;
  const xehpc::calibration cal = xehpc::default_calibration();
  bench::print_calibration(cal);
  std::printf("\n");

  const auto s40 = bench::pto40_shape();
  const auto s135 = bench::pto135_shape();

  text_table table({"Precision", "40-atom (s)", "log10", "135-atom (s)",
                    "log10", "paper (135-atom)"});
  const char* paper[] = {"over 2800 s", "1472 s", "972 s (fastest)",
                         "-", "-", "-", "-"};
  int row = 0;
  double t135_fp32 = 0.0, t135_bf16 = 0.0;
  for (const auto& [label, precision] : bench::fig3a_rows()) {
    const double t40 =
        xehpc::model_series_seconds(spec, cal, s40, precision, 500);
    const double t135 =
        xehpc::model_series_seconds(spec, cal, s135, precision, 500);
    if (label == "FP32") t135_fp32 = t135;
    if (label == "BF16") t135_bf16 = t135;
    table.add_row({label, fmt_fixed(t40, 1), fmt_fixed(std::log10(t40), 2),
                   fmt_fixed(t135, 1), fmt_fixed(std::log10(t135), 2),
                   paper[row++]});
  }
  table.print();

  std::printf(
      "\nEnd-to-end FP32 -> BF16 speedup (135-atom): %.2fx "
      "(paper abstract: 1.35x; paper Sec. V-C times imply 1472/972 = "
      "1.51x — see EXPERIMENTS.md)\n",
      t135_fp32 / t135_bf16);
  std::printf(
      "paper (qualitative): 40-atom shows very little change across "
      "compute modes; only FP64 vs FP32 differs significantly.  135-atom "
      "ordering fastest-to-slowest: BF16, TF32, BF16x2, BF16x3, "
      "Complex_3m, FP32, FP64.\n");
  return 0;
}

}  // namespace

int main() { return run(); }
