#pragma once
// bench_common.hpp — shared helpers for the table/figure reproduction
// binaries.  Every bench prints the rows the paper reports plus a "paper="
// annotation wherever the paper states a number, so EXPERIMENTS.md can be
// filled in mechanically from bench output.

#include <cstdio>
#include <string>
#include <vector>

#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/common/table.hpp"
#include "dcmesh/xehpc/app_model.hpp"
#include "dcmesh/xehpc/calibration.hpp"
#include "dcmesh/xehpc/device.hpp"

namespace dcmesh::bench {

/// The five alternative modes in the paper's order (Table II).
inline std::vector<blas::compute_mode> alternative_modes() {
  return {blas::compute_mode::float_to_bf16,
          blas::compute_mode::float_to_bf16x2,
          blas::compute_mode::float_to_bf16x3,
          blas::compute_mode::float_to_tf32,
          blas::compute_mode::complex_3m};
}

/// All LFD precision configurations of Figure 3a, fastest-last ordering
/// left to the data: FP64, FP32, then the five alternative modes.
struct precision_row {
  std::string label;
  xehpc::lfd_precision precision;
};

inline std::vector<precision_row> fig3a_rows() {
  using blas::compute_mode;
  using xehpc::gemm_precision;
  return {
      {"FP64", {gemm_precision::fp64, compute_mode::standard}},
      {"FP32", {gemm_precision::fp32, compute_mode::standard}},
      {"BF16", {gemm_precision::fp32, compute_mode::float_to_bf16}},
      {"BF16x2", {gemm_precision::fp32, compute_mode::float_to_bf16x2}},
      {"BF16x3", {gemm_precision::fp32, compute_mode::float_to_bf16x3}},
      {"TF32", {gemm_precision::fp32, compute_mode::float_to_tf32}},
      {"Complex_3m", {gemm_precision::fp32, compute_mode::complex_3m}},
  };
}

/// Paper Table V systems as xehpc shapes.
inline xehpc::system_shape pto40_shape() { return {64LL * 64 * 64, 256, 128}; }
inline xehpc::system_shape pto135_shape() {
  return {96LL * 96 * 96, 1024, 432};
}

/// Banner used by every bench.
inline void banner(const char* experiment, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment, description);
  std::printf("==============================================================\n");
}

/// Print the calibration constants so modeled numbers stay auditable.
inline void print_calibration(const xehpc::calibration& cal) {
  std::printf(
      "[device-model calibration] vector_sustained=%.2f "
      "matrix_sustained=%.2f matrix_m_half=%.0f matrix_n=%.2f*n/(n+%.0f) "
      "marginal_product=%.2f hbm_eff=%.2f mesh_sweeps=%.0f\n",
      cal.vector_sustained, cal.matrix_sustained, cal.matrix_m_half,
      cal.matrix_n_scale, cal.matrix_n_half, cal.component_marginal_cost,
      cal.hbm_efficiency, cal.mesh_sweeps_per_qd_step);
}

}  // namespace dcmesh::bench
