// table1_peaks — reproduces paper Table I: theoretical peak throughput for
// a single stack of the Intel Data Center GPU Max 1550, per precision.

#include "bench_common.hpp"

namespace {

using namespace dcmesh;

int run() {
  bench::banner("Table I", "Theoretical peak throughput for a single stack");
  const xehpc::device_spec spec;
  std::printf("Device: %s (%d EUs @ %.1f GHz)\n\n",
              std::string(spec.name).c_str(), spec.execution_units,
              spec.frequency_ghz);

  text_table table({"Precision", "Theoretical Peak", "Engines",
                    "ops/clk/EU", "paper"});
  const struct {
    xehpc::peak_precision p;
    const char* paper;
  } rows[] = {
      {xehpc::peak_precision::fp64, "26 TFLOP/s, Vector"},
      {xehpc::peak_precision::fp32, "26 TFLOP/s, Vector"},
      {xehpc::peak_precision::tf32, "209 TFLOP/s, Matrix"},
      {xehpc::peak_precision::bf16, "419 TFLOP/s, Matrix"},
      {xehpc::peak_precision::fp16, "419 TFLOP/s, Matrix"},
      {xehpc::peak_precision::int8, "839 TOP/s, Matrix"},
  };
  for (const auto& row : rows) {
    const double peak = xehpc::theoretical_peak_tflops(spec, row.p);
    const bool is_int = row.p == xehpc::peak_precision::int8;
    table.add_row({std::string(xehpc::precision_name(row.p)),
                   fmt(peak, 4) + (is_int ? " TOP/s" : " TFLOP/s"),
                   xehpc::peak_engine(row.p) == xehpc::engine::vector
                       ? "Vector"
                       : "Matrix",
                   fmt(xehpc::ops_per_clock_per_eu(spec, row.p), 4),
                   row.paper});
  }
  table.print();
  return 0;
}

}  // namespace

int main() { return run(); }
