// table4_formats — reproduces paper Table IV: exponent and mantissa bits of
// each precision format studied, taken from the value types the split GEMM
// machinery actually uses (not a hand-written table).

#include "bench_common.hpp"
#include "dcmesh/common/bf16.hpp"
#include "dcmesh/common/format_traits.hpp"
#include "dcmesh/common/tf32.hpp"

namespace {

using namespace dcmesh;

int run() {
  bench::banner("Table IV", "Exponent and mantissa bits per format");

  text_table table(
      {"Precision", "Exponent Bits", "Mantissa Bits", "paper (exp/mant)"});
  const char* paper[] = {"11/52", "8/23", "8/10", "8/7"};
  int i = 0;
  for (const auto& f : table4_formats()) {
    table.add_row({std::string(f.name), std::to_string(f.exponent_bits),
                   std::to_string(f.mantissa_bits), paper[i++]});
  }
  table.print();

  // Consistency between the table and the live value types.
  std::printf("\nLive value types: bf16 = %d/%d, tf32 = %d/%d\n",
              bf16::exponent_bits, bf16::mantissa_bits, tf32::exponent_bits,
              tf32::mantissa_bits);
  std::printf(
      "Half-ULP relative rounding bound (Sec. V-B): BF16 %.3e, TF32 %.3e, "
      "FP32 %.3e\n",
      rounding_half_ulp(7), rounding_half_ulp(10), rounding_half_ulp(23));
  return 0;
}

}  // namespace

int main() { return run(); }
