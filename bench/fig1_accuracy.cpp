// fig1_accuracy — reproduces paper Figure 1: deviation from FP32 of the
// three output metrics (nexc, javg, ekin) over the simulation for each
// alternative BLAS compute mode.  These are REAL numerics: the full
// QXMD+LFD simulation runs once per mode with bit-faithful emulation of
// the oneMKL compute modes, at the scaled system size documented in
// DESIGN.md.  Flags: --quick (200 QD steps), --full (1000), default 500.

#include <cmath>

#include "accuracy_common.hpp"
#include "dcmesh/common/stats.hpp"

namespace {

using namespace dcmesh;

int run(int argc, char** argv) {
  const int steps = bench::parse_steps(argc, argv, 500);
  bench::banner("Figure 1",
                "Deviation from FP32 of nexc, javg, ekin per compute mode");
  const core::run_config config = bench::accuracy_config(steps, 2);
  std::printf(
      "Scaled system: %d atoms, %lld^3 mesh, Norb=%zu, Nocc=%zu, %d QD "
      "steps, SCF every %d (paper: 135 atoms, 96^3, 1024 orbitals, ~10 fs; "
      "scaling argument in DESIGN.md)\n\n",
      config.atom_count(), static_cast<long long>(config.mesh_n),
      config.norb, config.nocc, config.total_qd_steps(),
      config.qd_steps_per_series);

  const auto results = bench::run_all_modes(config);
  const auto& reference = results.at(blas::compute_mode::standard);

  for (const char* column : {"nexc", "javg", "ekin"}) {
    const auto ref = core::extract_column(reference, column);
    std::printf("\n--- deviation of %s from FP32 (sampled every %d steps) "
                "---\n",
                column, std::max(1, steps / 10));
    text_table table({"t (a.t.u.)", "BF16", "BF16x2", "BF16x3", "TF32",
                      "Complex_3m"});
    const int stride = std::max(1, steps / 10);
    for (std::size_t i = stride - 1; i < ref.size();
         i += static_cast<std::size_t>(stride)) {
      std::vector<std::string> row{fmt(reference[i].t, 4)};
      for (blas::compute_mode mode : bench::alternative_modes()) {
        const auto alt = core::extract_column(results.at(mode), column);
        row.push_back(fmt_sci(alt[i] - ref[i], 2));
      }
      table.add_row(row);
    }
    table.print();

    // Summary: max |deviation| and max relative deviation per mode.
    double scale = 0.0;
    for (double v : ref) scale = std::max(scale, std::abs(v));
    std::printf("max |%s| in FP32 run: %s\n", column, fmt_sci(scale).c_str());
    for (blas::compute_mode mode : bench::alternative_modes()) {
      const auto alt = core::extract_column(results.at(mode), column);
      const double dev = max_abs_deviation(alt, ref);
      std::printf("  %-10s max deviation %-10s (%.3f%% of signal)\n",
                  std::string(blas::name(mode)).c_str(),
                  fmt_sci(dev).c_str(),
                  scale > 0 ? 100.0 * dev / scale : 0.0);
    }
  }

  std::printf(
      "\npaper (qualitative): deviation grows over the simulation and is "
      "largest for the BF16 family, BF16x3 most accurate of the three; "
      "relative deviations are ~1%% or less; current density deviation is "
      "negligible (1e-5 a.u. order).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
