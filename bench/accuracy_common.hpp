#pragma once
// accuracy_common.hpp — shared machinery for the Fig 1 / Fig 2 accuracy
// reproductions: run the scaled 135-atom-analogue simulation once per
// compute mode (identical trajectories, only BLAS arithmetic differs) and
// hand back the observable series.

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dcmesh/core/driver.hpp"
#include "dcmesh/core/output.hpp"
#include "dcmesh/core/presets.hpp"

namespace dcmesh::bench {

/// The scaled accuracy configuration (see DESIGN.md: accuracy transfers
/// across scale because the BLAS relative error is size-independent,
/// paper Sec. V-B).  `steps` total QD steps, SCF every `steps / series`.
inline core::run_config accuracy_config(int steps, int series) {
  core::run_config config = core::preset(core::paper_system::pto40_scaled);
  config.series = series;
  config.qd_steps_per_series = steps / series;
  return config;
}

/// Parse --quick / --full from argv: returns total QD steps.
inline int parse_steps(int argc, char** argv, int dflt) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return 200;
    if (std::strcmp(argv[i], "--full") == 0) return 1000;
  }
  return dflt;
}

/// Run the simulation under one compute mode; returns all QD records.
inline std::vector<lfd::qd_record> run_mode(const core::run_config& config,
                                            blas::compute_mode mode) {
  blas::scoped_compute_mode scope(mode);
  core::driver sim(config);
  sim.run();
  return sim.records();
}

/// Records per mode, FP32 reference included under compute_mode::standard.
inline std::map<blas::compute_mode, std::vector<lfd::qd_record>>
run_all_modes(const core::run_config& config) {
  std::map<blas::compute_mode, std::vector<lfd::qd_record>> results;
  results[blas::compute_mode::standard] =
      run_mode(config, blas::compute_mode::standard);
  for (blas::compute_mode mode : alternative_modes()) {
    std::fprintf(stderr, "  running %s...\n",
                 std::string(blas::name(mode)).c_str());
    results[mode] = run_mode(config, mode);
  }
  return results;
}

}  // namespace dcmesh::bench
