// ext_policy_sweep — the Table-6-style per-call-mode experiment, redone
// through the precision-policy engine.  ext_per_call_modes needed a
// hand-rolled QD loop with scoped_compute_mode around each site; here the
// REAL driver runs unmodified and DCMESH_BLAS_POLICY alone selects which
// of the tagged LFD call sites (lfd/nlp_prop/*, lfd/calc_energy/*,
// lfd/remap_occ/*) drop to BF16 — the paper's "no source changes, only
// environment variables" property extended to per-call granularity.
//
// Three parts:
//   1. the sweep: one policy per site family, deviations vs the FP32 run;
//   2. JSONL audit: MKL_VERBOSE_JSON proves only the targeted sites ran
//      at the alternative mode;
//   3. guarded demo: a blanket guarded BF16 policy with a tight tolerance
//      shows the accuracy-guarded fallback promoting call sites.

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "accuracy_common.hpp"
#include "bench_json.hpp"
#include "dcmesh/blas/precision_policy.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/common/stats.hpp"
#include "dcmesh/trace/metrics.hpp"

namespace {

using namespace dcmesh;

/// Run the real driver under one DCMESH_BLAS_POLICY value (empty = none).
std::vector<lfd::qd_record> run_policy(const core::run_config& config,
                                       const std::string& policy) {
  if (policy.empty()) {
    env_unset(blas::kPolicyEnvVar);
  } else {
    env_set(blas::kPolicyEnvVar, policy);
  }
  core::driver sim(config);
  sim.run();
  env_unset(blas::kPolicyEnvVar);
  return sim.records();
}

/// Part 2: rerun the remap_occ policy with the JSONL sink attached and
/// count, per site family and mode, what actually executed.
void audit_with_json(const core::run_config& config) {
  const std::string path = "ext_policy_sweep_audit.jsonl";
  std::remove(path.c_str());
  env_set(blas::kVerboseJsonEnvVar, path);
  run_policy(config, "lfd/remap_occ/*=FLOAT_TO_BF16");
  env_unset(blas::kVerboseJsonEnvVar);

  std::ifstream in(path);
  std::map<std::string, std::size_t> counts;  // "family @ mode" -> calls
  for (std::string line; std::getline(in, line);) {
    const auto site_pos = line.find("\"site\":\"");
    const auto mode_pos = line.find("\"mode\":\"");
    if (site_pos == std::string::npos || mode_pos == std::string::npos) {
      continue;
    }
    std::string site = line.substr(site_pos + 8);
    site = site.substr(0, site.find('"'));
    std::string mode = line.substr(mode_pos + 8);
    mode = mode.substr(0, mode.find('"'));
    // Collapse "lfd/remap_occ/overlap" -> "lfd/remap_occ/*".
    const auto last_slash = site.rfind('/');
    const std::string family =
        site.empty() ? "(untagged)"
                     : site.substr(0, last_slash) + "/*";
    ++counts[family + " @ " + mode];
  }
  std::remove(path.c_str());

  std::printf("\nJSONL audit of the lfd/remap_occ/*=FLOAT_TO_BF16 run\n");
  std::printf("(every BLAS call in the run, grouped by site family):\n\n");
  text_table table({"Site family @ executed mode", "Calls"});
  for (const auto& [key, n] : counts) {
    table.add_row({key, std::to_string(n)});
  }
  table.print();
  std::printf(
      "\nOnly lfd/remap_occ/* appears at FLOAT_TO_BF16; every other call "
      "— including the FP64 SCF path — kept standard arithmetic.\n");
}

/// Part 3: blanket guarded BF16 over all LFD sites with a tight tolerance;
/// the guard promotes the sites whose sampled residual exceeds it.
void guarded_demo(const core::run_config& config) {
  blas::clear_fallback_stats();
  run_policy(config, "lfd/*=FLOAT_TO_BF16:tol=1e-4");

  std::printf("\nGuarded fallback: lfd/*=FLOAT_TO_BF16:tol=1e-4\n\n");
  text_table table({"Site", "Guarded calls", "Promotions", "Final mode",
                    "Last residual"});
  for (const auto& [site, stats] : blas::fallback_stats()) {
    table.add_row({site, std::to_string(stats.guarded_calls),
                   std::to_string(stats.promotions),
                   std::string(blas::name(stats.last_mode)),
                   fmt_sci(stats.last_residual)});
  }
  table.print();
  std::printf(
      "\nSites whose BF16 residual beat the tolerance stayed at BF16; the "
      "rest were transparently re-run up the ladder (BF16 -> TF32 -> "
      "BF16x2 -> BF16x3 -> FP32) until they passed.\n");
  blas::clear_fallback_stats();
}

int run(int argc, char** argv) {
  const int steps = bench::parse_steps(argc, argv, 100);
  bench::banner("Extension (policy engine)",
                "Per-call-site precision via DCMESH_BLAS_POLICY alone");

  auto config = bench::accuracy_config(steps, 1);

  struct sweep_case {
    const char* label;
    std::string policy;
  };
  const sweep_case cases[] = {
      {"all FP32 (reference)", ""},
      {"lfd/nlp_prop/* @ BF16", "lfd/nlp_prop/*=FLOAT_TO_BF16"},
      {"lfd/calc_energy/* @ BF16", "lfd/calc_energy/*=FLOAT_TO_BF16"},
      {"lfd/remap_occ/* @ BF16", "lfd/remap_occ/*=FLOAT_TO_BF16"},
      {"lfd/* @ BF16", "lfd/*=FLOAT_TO_BF16"},
  };

  // Aggregate BLAS throughput per case from the metrics registry (delta
  // across the run), for the machine-readable artifact.
  const auto metrics_totals = [] {
    std::pair<double, double> t{0.0, 0.0};  // flops, seconds
    for (const auto& [site, counters] : trace::gemm_metrics()) {
      t.first += counters.flops;
      t.second += counters.seconds;
    }
    return t;
  };

  std::vector<std::vector<lfd::qd_record>> runs;
  std::vector<double> case_gflops;
  for (const auto& c : cases) {
    std::fprintf(stderr, "  running %s...\n", c.label);
    const auto before = metrics_totals();
    runs.push_back(run_policy(config, c.policy));
    const auto after = metrics_totals();
    case_gflops.push_back(
        (after.first - before.first) /
        std::max(after.second - before.second, 1e-12) / 1e9);
  }

  const auto column = [&](std::size_t r, const char* col) {
    return core::extract_column(runs[r], col);
  };
  text_table table({"Policy", "max dev ekin", "max dev nexc"});
  for (std::size_t r = 1; r < std::size(cases); ++r) {
    table.add_row({cases[r].label,
                   fmt_sci(max_abs_deviation(column(r, "ekin"),
                                             column(0, "ekin"))),
                   fmt_sci(max_abs_deviation(column(r, "nexc"),
                                             column(0, "nexc")))});
  }
  table.print();
  std::printf(
      "\nReading: same physics as ext_per_call_modes, but the selection is "
      "made by the policy engine against the engine's own tagged calls — "
      "no harness code, just DCMESH_BLAS_POLICY.\n");

  // Machine-readable artifact: one row per policy case — aggregate BLAS
  // GFLOP/s across the run, and the max ekin deviation vs the FP32
  // reference as the error column (a physics deviation, not ULPs; the
  // source tag says so).
  {
    bench::bench_json_writer json("ext_policy_sweep");
    for (std::size_t r = 0; r < std::size(cases); ++r) {
      bench::bench_gemm_row row;
      row.routine = "QD-DRIVER";
      row.mode = cases[r].label;
      row.gflops = case_gflops[r];
      row.err_ulp = r == 0 ? 0.0
                           : max_abs_deviation(column(r, "ekin"),
                                               column(0, "ekin"));
      row.source = "driver-policy-sweep (err = max |dev ekin|)";
      json.add(row);
    }
    json.write();
  }

  audit_with_json(config);
  guarded_demo(config);

  std::printf("\nPer-site GEMM counters (whole sweep):\n%s",
              trace::gemm_metrics_report().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run(argc, argv); }
