#ifndef DCMESH_DCMESH_BLAS_H
#define DCMESH_DCMESH_BLAS_H
/* dcmesh_blas.h — the stable, versioned public C API of the dcmesh BLAS
 * engine.
 *
 * This is the ONE installed header.  Everything a consumer needs — the
 * descriptor-based GEMM entry point with per-call-site precision control,
 * the strided batch variant, process-wide policy/mode switches, and the
 * introspection surface the interposition shim and tests rely on — is
 * declared here with C linkage and a frozen ABI.  The in-tree C++ headers
 * under src/<module>/include/dcmesh/ are the engine's INTERNAL surface:
 * richer (templates, std::string_view, std::optional) but free to change
 * between releases.  Third-party code should bind to this header, or to
 * the standard BLAS symbols via libdcmesh_intercept.so, never to the
 * internal headers.
 *
 * API-stability policy
 * --------------------
 *  * DCMESH_API_VERSION only ever grows.  Within one major version,
 *    functions are never removed or re-typed; new functionality arrives as
 *    new functions.  dcmesh_api_version() returns the version the library
 *    was BUILT with, so a dlopen() consumer can verify compatibility at
 *    run time before calling anything else.
 *  * The descriptor is opaque on purpose: fields can be added behind
 *    dcmesh_gemm_desc_set_*() accessors without an ABI break.
 *
 * Ownership and threading contract
 * --------------------------------
 *  * Matrix buffers are caller-owned and must stay valid for the duration
 *    of the execute call; the library never retains pointers to them.
 *  * Strings passed in (site tags, mode tokens, policy text) are COPIED;
 *    the caller may free them as soon as the call returns.
 *  * A dcmesh_gemm_desc is NOT thread-safe: build and execute it from one
 *    thread at a time.  Distinct descriptors may execute concurrently;
 *    the engine underneath (policy resolution, verbose log, metrics,
 *    autotuner) is fully thread-safe.
 *  * dcmesh_last_error() is thread-local: it describes the most recent
 *    failure on the CALLING thread only.
 *
 * Error model: every function that can fail returns a dcmesh_status
 * (0 = success, negative = failure) and never throws across the C
 * boundary.  On failure, dcmesh_last_error() holds a human-readable
 * explanation until the next failing call on the same thread.
 */

#include <stddef.h>
#include <stdint.h>

/* Version of this API surface: major * 1000 + minor.  Bump minor when
 * functions are added, major (never yet) on an incompatible change. */
#define DCMESH_API_VERSION_MAJOR 1
#define DCMESH_API_VERSION_MINOR 0
#define DCMESH_API_VERSION \
  (DCMESH_API_VERSION_MAJOR * 1000 + DCMESH_API_VERSION_MINOR)

/* Exported-symbol annotation: the shared interposition library is built
 * with -fvisibility=hidden, so only DCMESH_PUBLIC symbols (plus the
 * standard BLAS names its version script lists) appear in its dynamic
 * symbol table. */
#if defined(__GNUC__) || defined(__clang__)
#define DCMESH_PUBLIC __attribute__((visibility("default")))
#else
#define DCMESH_PUBLIC
#endif

#ifdef __cplusplus
extern "C" {
#endif

/* ---------------------------------------------------------------- status */

typedef enum dcmesh_status {
  DCMESH_OK = 0,
  /* A malformed argument contract (bad dims/ld, null buffer, bad
   * transpose char) — mirrors the std::invalid_argument the C++ engine
   * throws, caught at this boundary. */
  DCMESH_ERR_INVALID_ARGUMENT = -1,
  /* Element type char was not one of 's', 'd', 'c', 'z'. */
  DCMESH_ERR_BAD_TYPE = -2,
  /* Mode token named no known MKL_BLAS_COMPUTE_MODE value. */
  DCMESH_ERR_BAD_MODE = -3,
  /* Policy text failed to parse (the offending rule is in last_error). */
  DCMESH_ERR_BAD_POLICY = -4,
  /* Descriptor executed before shape/operands were set. */
  DCMESH_ERR_INCOMPLETE = -5,
  /* Output buffer too small (introspection copy-out calls). */
  DCMESH_ERR_TRUNCATED = -6,
  /* Unexpected internal failure (never expected in practice). */
  DCMESH_ERR_INTERNAL = -7
} dcmesh_status;

/* Version the library was built with (== DCMESH_API_VERSION of its
 * build); check this first after dlopen(). */
DCMESH_PUBLIC int dcmesh_api_version(void);

/* "major.minor" form, e.g. "1.0". */
DCMESH_PUBLIC const char* dcmesh_api_version_string(void);

/* Thread-local description of the most recent failure on this thread;
 * "" when no call has failed yet.  Valid until the next failing call. */
DCMESH_PUBLIC const char* dcmesh_last_error(void);

/* ---------------------------------------------------------- one-shot API */

/* Memory layout of the matrix operands (CBLAS numbering). */
typedef enum dcmesh_layout {
  DCMESH_LAYOUT_ROW_MAJOR = 101,
  DCMESH_LAYOUT_COL_MAJOR = 102
} dcmesh_layout;

/* C <- alpha*op(A)*op(B) + beta*C in one call.
 *  type   : element type, one of 's' (float), 'd' (double), 'c'
 *           (complex float), 'z' (complex double).
 *  transa/transb : 'N', 'T' or 'C' (case-insensitive).
 *  alpha/beta    : point at ONE scalar of the element type ({re, im}
 *                  pairs for 'c'/'z'), never NULL.
 *  site   : stable call-site tag for the per-site precision policy
 *           engine, e.g. "myapp/solver/normal_eq"; NULL or "" = untagged.
 *  mode   : per-call compute-mode override (an MKL_BLAS_COMPUTE_MODE
 *           token, e.g. "FLOAT_TO_BF16X2"); NULL = let the policy
 *           resolution decide.  The override is the strongest layer of
 *           the resolution order.
 * Row-major calls are forwarded through the standard transpose identity,
 * so both layouts share one engine path. */
DCMESH_PUBLIC int dcmesh_gemm(char type, dcmesh_layout layout, char transa,
                              char transb, int64_t m, int64_t n, int64_t k,
                              const void* alpha, const void* a, int64_t lda,
                              const void* b, int64_t ldb, const void* beta,
                              void* c, int64_t ldc, const char* site,
                              const char* mode);

/* Strided batched GEMM: problem i uses X + i*stride_x for X in {a,b,c}.
 * Stride 0 is allowed for A or B (shared operand), not for C.  The
 * policy (including an AUTO rule's tuner resolution) is consulted once
 * for the whole batch. */
DCMESH_PUBLIC int dcmesh_gemm_batch_strided(
    char type, dcmesh_layout layout, char transa, char transb, int64_t m,
    int64_t n, int64_t k, const void* alpha, const void* a, int64_t lda,
    int64_t stride_a, const void* b, int64_t ldb, int64_t stride_b,
    const void* beta, void* c, int64_t ldc, int64_t stride_c, int64_t batch,
    const char* site, const char* mode);

/* --------------------------------------------------------- descriptor API */

/* Opaque GEMM descriptor: build it incrementally, execute it any number
 * of times.  Create/destroy are the only lifetime calls; all setters
 * validate eagerly and return a status. */
typedef struct dcmesh_gemm_desc dcmesh_gemm_desc;

/* Allocate a descriptor for element type 's'/'d'/'c'/'z' with the
 * defaults transa=transb='N', layout=column-major, alpha=1, beta=0, no
 * site, no mode override.  NULL on bad type (see dcmesh_last_error()).
 * Destroy with dcmesh_gemm_desc_destroy(); never free() it. */
DCMESH_PUBLIC dcmesh_gemm_desc* dcmesh_gemm_desc_create(char type);
DCMESH_PUBLIC void dcmesh_gemm_desc_destroy(dcmesh_gemm_desc* desc);

DCMESH_PUBLIC int dcmesh_gemm_desc_set_layout(dcmesh_gemm_desc* desc,
                                              dcmesh_layout layout);
DCMESH_PUBLIC int dcmesh_gemm_desc_set_transpose(dcmesh_gemm_desc* desc,
                                                 char transa, char transb);
DCMESH_PUBLIC int dcmesh_gemm_desc_set_shape(dcmesh_gemm_desc* desc,
                                             int64_t m, int64_t n, int64_t k);
/* alpha/beta point at one scalar of the descriptor's element type; the
 * VALUES are copied. */
DCMESH_PUBLIC int dcmesh_gemm_desc_set_scalars(dcmesh_gemm_desc* desc,
                                               const void* alpha,
                                               const void* beta);
/* Operand pointers are retained until overwritten; buffers stay
 * caller-owned and must outlive every execute. */
DCMESH_PUBLIC int dcmesh_gemm_desc_set_operands(dcmesh_gemm_desc* desc,
                                                const void* a, int64_t lda,
                                                const void* b, int64_t ldb,
                                                void* c, int64_t ldc);
/* Site tag (copied); NULL or "" = untagged. */
DCMESH_PUBLIC int dcmesh_gemm_desc_set_site(dcmesh_gemm_desc* desc,
                                            const char* site);
/* Per-call compute-mode override token; NULL clears the override. */
DCMESH_PUBLIC int dcmesh_gemm_desc_set_mode(dcmesh_gemm_desc* desc,
                                            const char* mode);

/* Run the descriptor through the engine: policy resolution, optional
 * autotuner, fused split-mode kernels, accuracy guard, fault sentinel,
 * verbose record, metrics, trace span — the same chokepoint every
 * in-tree call uses.  DCMESH_ERR_INCOMPLETE when shape or operands were
 * never set. */
DCMESH_PUBLIC int dcmesh_gemm_execute(const dcmesh_gemm_desc* desc);

/* --------------------------------------------------- process-wide control */

/* Install a precision policy (the DCMESH_BLAS_POLICY grammar, e.g.
 * "myapp/hot_loop=FLOAT_TO_BF16X2:guarded;*=auto:ulp=1024").  Overrides the
 * environment variable until cleared.  NULL or "" clears back to the
 * environment.  DCMESH_ERR_BAD_POLICY (with the offending rule in
 * last_error) on parse failure, in which case the previous policy is
 * kept. */
DCMESH_PUBLIC int dcmesh_set_policy(const char* policy_text);

/* Process-wide compute mode (an MKL_BLAS_COMPUTE_MODE token); overrides
 * the environment variable.  NULL clears. */
DCMESH_PUBLIC int dcmesh_set_compute_mode(const char* mode);

/* OpenMP threads the engine may use (0 = library default). */
DCMESH_PUBLIC int dcmesh_set_num_threads(int threads);

/* Install the accuracy-aware autotuner behind AUTO policy rules (wisdom
 * cache per DCMESH_TUNE_CACHE).  Idempotent.  The interposition shim and
 * the in-tree driver both call this; embedders using AUTO rules directly
 * against this API must too. */
DCMESH_PUBLIC int dcmesh_install_autotuner(void);

/* ----------------------------------------------------------- introspection */

/* Level-3 calls recorded since process start (or the last engine-side
 * clear).  Monotonic across threads. */
DCMESH_PUBLIC uint64_t dcmesh_call_count(void);

/* Copy the most recent call's site tag / resolved-mode token into buf
 * (NUL-terminated).  Returns the full length (excluding NUL), which may
 * exceed cap-1 (DCMESH_ERR_TRUNCATED is NOT raised; compare yourself),
 * or DCMESH_ERR_INVALID_ARGUMENT when no call was recorded yet or buf is
 * NULL/cap 0. */
DCMESH_PUBLIC int dcmesh_last_call_site(char* buf, size_t cap);
DCMESH_PUBLIC int dcmesh_last_call_mode(char* buf, size_t cap);

/* Copy the per-site metrics report (human-readable table) into buf.
 * Same length/truncation contract as dcmesh_last_call_site(). */
DCMESH_PUBLIC int dcmesh_metrics_report(char* buf, size_t cap);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* DCMESH_DCMESH_BLAS_H */
