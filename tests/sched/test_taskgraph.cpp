// Scheduler test tier: the persistent work-stealing pool, the task-graph
// step executor, and the DCMESH_SCHED selector.
//
//  * DAG correctness — topological execution for diamond/fan-out shapes,
//    exception propagation (failed graph, skipped dependents, pool
//    immediately reusable), one-shot semantics, cycle prevention.
//  * Pool lifecycle — one pool reused across 100 step graphs with zero
//    thread churn (the worker-id set never grows past worker_count).
//  * Work-stealing stress — thousands of tiny unbalanced tasks across
//    pool widths 2..32; no deadlock, nothing lost.
//  * Pooled driver acceptance — a 10-step tiny-preset trajectory under
//    DCMESH_SCHED=pool is bit-identical to the serial oracle.
//  * Resilience under concurrency — a scale fault during pooled steps
//    rolls back, quiesces in-flight tasks, and converges exactly as the
//    serial resilient path does.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/blas/precision_policy.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/core/driver.hpp"
#include "dcmesh/core/presets.hpp"
#include "dcmesh/resil/fault_plan.hpp"
#include "dcmesh/resil/health.hpp"
#include "dcmesh/resil/promotion.hpp"
#include "dcmesh/sched/config.hpp"
#include "dcmesh/sched/pool.hpp"
#include "dcmesh/sched/task_graph.hpp"
#include "dcmesh/trace/metrics.hpp"

namespace dcmesh::sched {
namespace {

// ---------------------------------------------------------------------------
// DCMESH_SCHED grammar

TEST(ParseSched, AcceptsTheDocumentedGrammar) {
  bool ok = false;
  sched_config cfg = parse_sched("serial", &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(cfg.mode, sched_mode::serial);

  cfg = parse_sched("  SERIAL  ", &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(cfg.mode, sched_mode::serial);

  cfg = parse_sched("", &ok);  // empty = default = serial
  EXPECT_TRUE(ok);
  EXPECT_EQ(cfg.mode, sched_mode::serial);

  cfg = parse_sched("pool", &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(cfg.mode, sched_mode::pool);
  EXPECT_EQ(cfg.workers, 0);  // 0 = hardware_concurrency

  cfg = parse_sched("Pool:8", &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(cfg.mode, sched_mode::pool);
  EXPECT_EQ(cfg.workers, 8);

  cfg = parse_sched(" pool:1 ", &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(cfg.workers, 1);

  cfg = parse_sched("pool:256", &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(cfg.workers, thread_pool::kMaxWorkers);
}

TEST(ParseSched, MalformedValuesFallBackToSerialWithoutThrowing) {
  const char* bad[] = {"pol",     "pool:",    "pool:0",  "pool:257",
                       "pool:-3", "pool:2x",  "pool:x2", "threads",
                       "pool 4",  "serial:2", "pool::4", "1"};
  for (const char* text : bad) {
    bool ok = true;
    const sched_config cfg = parse_sched(text, &ok);
    EXPECT_FALSE(ok) << "accepted \"" << text << '"';
    EXPECT_EQ(cfg.mode, sched_mode::serial) << text;
    EXPECT_EQ(cfg.workers, 0) << text;
  }
}

// ---------------------------------------------------------------------------
// Raw pool services

TEST(ThreadPool, SubmitRunsTheTaskAndWaitJoinsIt) {
  thread_pool pool(2);
  std::atomic<int> ran{0};
  job j = pool.submit([&] { ran.fetch_add(1); });
  ASSERT_TRUE(j.valid());
  j.wait();
  EXPECT_TRUE(j.done());
  EXPECT_EQ(ran.load(), 1);
  j.wait();  // repeat waits are fine
}

TEST(ThreadPool, SubmitExceptionIsRethrownByWaitOnce) {
  thread_pool pool(2);
  job j = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(j.wait(), std::runtime_error);
  j.wait();  // second wait returns normally (exception consumed)
  EXPECT_TRUE(j.done());
  // The pool survives a throwing task.
  job j2 = pool.submit([] {});
  j2.wait();
  EXPECT_TRUE(j2.done());
}

TEST(ThreadPool, DefaultConstructedJobIsAlreadyDone) {
  job j;
  EXPECT_FALSE(j.valid());
  EXPECT_TRUE(j.done());
  j.wait();  // no-op, must not block or throw
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  thread_pool pool(4);
  constexpr long kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](long i) { hits[(std::size_t)i].fetch_add(1); });
  for (long i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[(std::size_t)i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForRethrowsTheFirstBodyException) {
  thread_pool pool(3);
  std::atomic<long> executed{0};
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](long i) {
                                   executed.fetch_add(1);
                                   if (i == 17) {
                                     throw std::runtime_error("chunk 17");
                                   }
                                 }),
               std::runtime_error);
  // No cancellation: the sweep drains fully (that is what makes the
  // failure path hang-free), so every index still executed.
  EXPECT_EQ(executed.load(), 64);
  // And the pool is immediately reusable.
  std::atomic<long> after{0};
  pool.parallel_for(16, [&](long) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 16);
}

TEST(ThreadPool, QuiesceDrainsAllSubmittedTasks) {
  thread_pool pool(4);
  std::atomic<int> done{0};
  constexpr int kTasks = 500;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] { done.fetch_add(1); });
  }
  pool.quiesce();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, WorkerIdIsStableAndForeignersGetMinusOne) {
  thread_pool pool(2);
  EXPECT_EQ(pool.current_worker_id(), -1);  // test thread is foreign
  std::atomic<int> seen_id{-2};
  pool.submit([&] { seen_id.store(pool.current_worker_id()); }).wait();
  EXPECT_GE(seen_id.load(), 0);
  EXPECT_LT(seen_id.load(), 2);
}

// ---------------------------------------------------------------------------
// Task graph

TEST(TaskGraph, DiamondExecutesInTopologicalOrder) {
  // a -> {b, c} -> d, serial and pooled: record completion stamps and
  // assert every edge ordered writer before reader.
  for (const int workers : {0, 3}) {
    thread_pool* pool = nullptr;
    std::unique_ptr<thread_pool> owned;
    if (workers > 0) {
      owned = std::make_unique<thread_pool>(workers);
      pool = owned.get();
    }
    std::atomic<int> clock{0};
    int stamp_a = -1, stamp_b = -1, stamp_c = -1, stamp_d = -1;
    task_graph g("diamond");
    const auto a = g.add("a", [&] { stamp_a = clock.fetch_add(1); });
    const auto b = g.add("b", [&] { stamp_b = clock.fetch_add(1); }, {a});
    const auto c = g.add("c", [&] { stamp_c = clock.fetch_add(1); }, {a});
    g.add("d", [&] { stamp_d = clock.fetch_add(1); }, {b, c});
    g.run(pool);
    EXPECT_FALSE(g.failed());
    EXPECT_EQ(g.skipped(), 0u);
    EXPECT_LT(stamp_a, stamp_b);
    EXPECT_LT(stamp_a, stamp_c);
    EXPECT_GT(stamp_d, stamp_b);
    EXPECT_GT(stamp_d, stamp_c);
  }
}

TEST(TaskGraph, FanOutRunsEveryIndependentNode) {
  thread_pool pool(4);
  task_graph g("fanout");
  std::atomic<int> ran{0};
  const auto root = g.add("root", [&] { ran.fetch_add(1); });
  for (int i = 0; i < 32; ++i) {
    g.add("leaf" + std::to_string(i), [&] { ran.fetch_add(1); }, {root});
  }
  g.run(&pool);
  EXPECT_EQ(ran.load(), 33);
  EXPECT_EQ(g.node_count(), 33u);
}

TEST(TaskGraph, DependencyOnUnknownNodeThrows) {
  task_graph g;
  const auto a = g.add("a", [] {});
  (void)a;
  EXPECT_THROW(g.add("b", [] {}, {static_cast<task_graph::node_id>(7)}),
               std::invalid_argument);
}

TEST(TaskGraph, RunningTwiceThrows) {
  task_graph g;
  g.add("only", [] {});
  g.run(nullptr);
  EXPECT_THROW(g.run(nullptr), std::logic_error);
}

TEST(TaskGraph, ExceptionMarksFailedSkipsDependentsAndPoolSurvives) {
  thread_pool pool(3);
  for (const bool pooled : {false, true}) {
    task_graph g("failing");
    std::atomic<int> ran{0};
    const auto a = g.add("a", [&] { ran.fetch_add(1); });
    const auto bad =
        g.add("bad", [] { throw std::runtime_error("node failure"); }, {a});
    g.add("child-of-bad", [&] { ran.fetch_add(1); }, {bad});
    g.add("grandchild", [&] { ran.fetch_add(1); },
          {static_cast<task_graph::node_id>(2)});
    // Sibling branch unaffected by the failure: must still run (drain).
    g.add("sibling", [&] { ran.fetch_add(1); }, {a});
    EXPECT_THROW(g.run(pooled ? &pool : nullptr), std::runtime_error);
    EXPECT_TRUE(g.failed());
    EXPECT_EQ(g.skipped(), 2u) << (pooled ? "pooled" : "serial");
    EXPECT_EQ(ran.load(), 2) << (pooled ? "pooled" : "serial");
  }
  // The pool took no damage: a fresh graph runs clean.
  task_graph ok("after-failure");
  std::atomic<int> n{0};
  const auto r = ok.add("r", [&] { n.fetch_add(1); });
  ok.add("s", [&] { n.fetch_add(1); }, {r});
  ok.run(&pool);
  EXPECT_FALSE(ok.failed());
  EXPECT_EQ(n.load(), 2);
}

// ---------------------------------------------------------------------------
// Pool lifecycle: persistence and zero thread churn

TEST(PoolLifecycle, HundredStepGraphsReuseTheSameWorkers) {
  constexpr int kWorkers = 4;
  thread_pool pool(kWorkers);

  // Warm up: make sure every worker has executed at least once.
  pool.parallel_for(256, [](long) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  });
  const std::vector<std::uint64_t> warm_ids = pool.worker_thread_ids();
  EXPECT_LE(warm_ids.size(), static_cast<std::size_t>(kWorkers));

  std::atomic<long> total{0};
  for (int step = 0; step < 100; ++step) {
    task_graph g("step" + std::to_string(step));
    const auto a = g.add("pack", [&] { total.fetch_add(1); });
    const auto b = g.add("compute", [&] { total.fetch_add(1); }, {a});
    const auto c = g.add("mesh", [&] { total.fetch_add(1); }, {a});
    g.add("reduce", [&] { total.fetch_add(1); }, {b, c});
    g.run(&pool);
  }
  EXPECT_EQ(total.load(), 400);

  // Zero thread churn: after 100 graphs the set of OS threads that ever
  // ran a task is still bounded by the construction-time worker count,
  // and no warm worker was replaced.
  const std::vector<std::uint64_t> final_ids = pool.worker_thread_ids();
  EXPECT_LE(final_ids.size(), static_cast<std::size_t>(kWorkers));
  const std::set<std::uint64_t> final_set(final_ids.begin(), final_ids.end());
  for (const std::uint64_t id : warm_ids) {
    EXPECT_TRUE(final_set.count(id)) << "warm worker disappeared (churn)";
  }
  EXPECT_GT(pool.tasks_executed(), 0u);
}

// ---------------------------------------------------------------------------
// Work-stealing stress

TEST(StealStress, ThousandsOfTinyUnbalancedTasksAcrossPoolWidths) {
  for (const int workers : {2, 4, 8, 16, 32}) {
    thread_pool pool(workers);
    constexpr long kTasks = 4000;
    std::atomic<long> sum{0};
    // Deliberately unbalanced: index-dependent spin so early chunks are
    // ~100x heavier than late ones — the shape that forces stealing.
    pool.parallel_for(kTasks, [&](long i) {
      const long spin = (i % 97 == 0) ? 2000 : 20;
      for (long s = 0; s < spin; ++s) {
        asm volatile("" : : "r"(s));  // keep the spin from folding away
      }
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), kTasks * (kTasks + 1) / 2) << workers << " workers";

    // Nested shape: graph nodes that themselves submit; quiesce drains
    // everything without deadlock.
    std::atomic<long> nested{0};
    for (int outer = 0; outer < 64; ++outer) {
      pool.submit([&, outer] {
        for (int inner = 0; inner < 8; ++inner) {
          pool.submit([&] { nested.fetch_add(1, std::memory_order_relaxed); });
        }
        (void)outer;
      });
    }
    pool.quiesce();
    EXPECT_EQ(nested.load(), 64 * 8) << workers << " workers";
  }
}

// ---------------------------------------------------------------------------
// team_parallel_for routing (the injected worker team)

class SchedConfigTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_unset(kSchedEnvVar);
    reset_for_testing();
  }
  void TearDown() override {
    env_unset(kSchedEnvVar);
    reset_for_testing();
  }
};

TEST_F(SchedConfigTest, DefaultIsSerialAndEnvSelectsThePool) {
  EXPECT_EQ(active_mode(), sched_mode::serial);
  EXPECT_EQ(active_pool(), nullptr);
  EXPECT_EQ(describe_active(), "serial");

  reset_for_testing();
  env_set(kSchedEnvVar, "pool:3");
  EXPECT_EQ(active_mode(), sched_mode::pool);
  thread_pool* pool = active_pool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->worker_count(), 3);
  EXPECT_EQ(describe_active(), "pool:3");
  // The pool is persistent: the same instance on every call.
  EXPECT_EQ(active_pool(), pool);
}

TEST_F(SchedConfigTest, MalformedEnvFallsBackToSerialWithoutThrowing) {
  env_set(kSchedEnvVar, "pool:zillion");
  EXPECT_NO_THROW({
    EXPECT_EQ(active_mode(), sched_mode::serial);
    EXPECT_EQ(active_pool(), nullptr);
  });
}

TEST_F(SchedConfigTest, ConfigureKeepsAMatchingPoolAlive) {
  configure(sched_mode::pool, 2);
  thread_pool* first = active_pool();
  ASSERT_NE(first, nullptr);
  configure(sched_mode::pool, 2);  // same size: no respawn
  EXPECT_EQ(active_pool(), first);
  configure(sched_mode::pool, 4);  // size change: respawn
  thread_pool* second = active_pool();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->worker_count(), 4);
  configure(sched_mode::serial);
  EXPECT_EQ(active_pool(), nullptr);
}

TEST_F(SchedConfigTest, TeamParallelForIsBitRouteInvariant) {
  // Same body, serial team vs pooled team: outputs must be identical
  // because chunk -> output mapping is keyed by index, not by thread.
  constexpr long kN = 513;
  std::vector<double> serial_out(kN), pooled_out(kN);
  const auto body = [](long i) {
    return std::sin(static_cast<double>(i) * 0.73) * 1.000000119;
  };

  configure(sched_mode::serial);
  team_parallel_for(kN, true,
                    [&](long i) { serial_out[(std::size_t)i] = body(i); });
  configure(sched_mode::pool, 4);
  team_parallel_for(kN, true,
                    [&](long i) { pooled_out[(std::size_t)i] = body(i); });
  for (long i = 0; i < kN; ++i) {
    ASSERT_EQ(serial_out[(std::size_t)i], pooled_out[(std::size_t)i]);
  }
}

}  // namespace
}  // namespace dcmesh::sched

// ---------------------------------------------------------------------------
// Pooled driver acceptance + resilience under concurrency

namespace dcmesh::core {
namespace {

class PooledDriverTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    env_unset(blas::kPolicyEnvVar);
    env_unset("MKL_BLAS_COMPUTE_MODE");
    env_unset(sched::kSchedEnvVar);
    env_unset(resil::kFaultPlanEnvVar);
    env_unset(resil::kHealthEnvVar);
    blas::clear_compute_mode();
    blas::clear_policy();
    resil::set_fault_plan(std::nullopt);
    resil::reset_fault_state();
    resil::set_health_level(std::nullopt);
    resil::clear_promotions();
    trace::clear_health_counters();
    trace::clear_sched_counters();
    sched::reset_for_testing();
  }
};

TEST_F(PooledDriverTest, TenStepTrajectoryIsBitIdenticalToSerial) {
  // Serial oracle.
  sched::configure(sched::sched_mode::serial);
  driver serial(preset(paper_system::tiny));
  std::vector<lfd::qd_record> want;
  for (int step = 0; step < 10; ++step) want.push_back(serial.qd_step());

  // Pooled run of the exact same deck.
  sched::configure(sched::sched_mode::pool, 3);
  driver pooled(preset(paper_system::tiny));
  for (int step = 0; step < 10; ++step) {
    const lfd::qd_record got = pooled.qd_step();
    const lfd::qd_record& ref = want[(std::size_t)step];
    // Bit identity, not tolerance: every graph node writes disjoint
    // outputs and every edge orders writer before reader, so the pooled
    // schedule must reproduce the serial arithmetic exactly.
    EXPECT_EQ(got.ekin, ref.ekin) << "step " << step + 1;
    EXPECT_EQ(got.epot, ref.epot) << "step " << step + 1;
    EXPECT_EQ(got.etot, ref.etot) << "step " << step + 1;
    EXPECT_EQ(got.eexc, ref.eexc) << "step " << step + 1;
    EXPECT_EQ(got.nexc, ref.nexc) << "step " << step + 1;
    EXPECT_EQ(got.javg, ref.javg) << "step " << step + 1;
    EXPECT_EQ(got.t, ref.t) << "step " << step + 1;
  }

  // The pooled steps actually ran on the graph executor.
  EXPECT_GE(trace::sched_counter("graphs"), 10u);
  EXPECT_GE(trace::sched_counter("nodes"), 100u);
}

TEST_F(PooledDriverTest, ScaleFaultUnderPoolRollsBackQuiescesAndConverges) {
  // The PR-5 resilience drill, now with the step graphs and the
  // checkpoint sealer on the pool: the rollback path must join the
  // in-flight sealer and quiesce the workers before restoring.
  blas::set_compute_mode(blas::compute_mode::float_to_bf16);
  resil::set_health_level(resil::health_level::full);
  sched::configure(sched::sched_mode::pool, 3);

  run_config config = preset(paper_system::tiny);
  config.qd_steps_per_series = 5;
  config.series = 2;

  driver reference(config);
  reference.run();
  const double clean_final_ekin = reference.records().back().ekin;
  EXPECT_EQ(reference.resilience().rollbacks, 0u);
  trace::clear_health_counters();

  resil::fault_plan plan;
  plan.rules.push_back(
      {"lfd/calc_energy/kinetic", 2, resil::fault_kind::scale, 1e5});
  resil::set_fault_plan(plan);

  driver faulty(config);
  const auto reports = faulty.run();
  resil::set_fault_plan(std::nullopt);

  const resilience_stats& stats = faulty.resilience();
  EXPECT_EQ(stats.violations, 1u);
  EXPECT_EQ(stats.rollbacks, 1u) << stats.last_violation;
  EXPECT_EQ(stats.checkpoints, 2u);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].replays, 1);
  EXPECT_EQ(reports[1].replays, 0);

  // Converged: contiguous, finite observable log ending near the
  // fault-free pooled trajectory (replay ran precision-promoted).
  const auto& got = faulty.records();
  ASSERT_EQ(got.size(), 10u);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_TRUE(std::isfinite(got[i].ekin));
    EXPECT_GT(got[i].t, got[i - 1].t);
  }
  EXPECT_NEAR(got.back().ekin, clean_final_ekin, 5e-3);
}

TEST_F(PooledDriverTest, MetricsReportCarriesTheSchedSection) {
  sched::configure(sched::sched_mode::pool, 2);
  driver d(preset(paper_system::tiny));
  d.qd_step();
  const std::string report = trace::gemm_metrics_report();
  EXPECT_NE(report.find("sched="), std::string::npos) << report;
  EXPECT_NE(report.find("graphs:"), std::string::npos) << report;
}

}  // namespace
}  // namespace dcmesh::core
