// Tests for the PbTiO3 supercell builder (the paper's Table V systems).

#include "dcmesh/qxmd/supercell.hpp"

#include <gtest/gtest.h>

#include <map>

namespace dcmesh::qxmd {
namespace {

TEST(Supercell, PaperSystemSizes) {
  // 2x2x2 cells -> 40 atoms; 3x3x3 -> 135 atoms (Table V).
  EXPECT_EQ(build_pto_supercell(2).size(), 40u);
  EXPECT_EQ(build_pto_supercell(3).size(), 135u);
  EXPECT_EQ(build_pto_supercell(1).size(), 5u);
}

TEST(Supercell, StoichiometryIsPbTiO3) {
  const auto system = build_pto_supercell(2);
  std::map<species, int> counts;
  for (const auto& a : system.atoms) ++counts[a.kind];
  EXPECT_EQ(counts[species::pb], 8);
  EXPECT_EQ(counts[species::ti], 8);
  EXPECT_EQ(counts[species::o], 24);
}

TEST(Supercell, BoxMatchesLattice) {
  const auto system = build_pto_supercell(3, 7.37);
  EXPECT_DOUBLE_EQ(system.box[0], 3 * 7.37);
  EXPECT_DOUBLE_EQ(system.box[1], 3 * 7.37);
  EXPECT_DOUBLE_EQ(system.box[2], 3 * 7.37);
}

TEST(Supercell, AllAtomsInsideBox) {
  const auto system = build_pto_supercell(2);
  for (const auto& a : system.atoms) {
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_GE(a.position[axis], 0.0);
      EXPECT_LT(a.position[axis], system.box[axis]);
    }
  }
}

TEST(Supercell, DeterministicForSameSeed) {
  const auto a = build_pto_supercell(2, 7.37, 0.05, 7);
  const auto b = build_pto_supercell(2, 7.37, 0.05, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.atoms[i].position, b.atoms[i].position);
  }
  const auto c = build_pto_supercell(2, 7.37, 0.05, 8);
  bool any_different = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.atoms[i].position != c.atoms[i].position) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(Supercell, ZeroDisplacementGivesIdealLattice) {
  const auto system = build_pto_supercell(1, 8.0, 0.0);
  // Pb at the corner.
  EXPECT_DOUBLE_EQ(system.atoms[0].position[0], 0.0);
  // Ti at the body centre.
  EXPECT_DOUBLE_EQ(system.atoms[1].position[0], 4.0);
  EXPECT_DOUBLE_EQ(system.atoms[1].position[1], 4.0);
  EXPECT_DOUBLE_EQ(system.atoms[1].position[2], 4.0);
}

TEST(Supercell, ValenceElectronCount) {
  // Pb 4 + Ti 4 + 3 O * 6 = 26 electrons per formula unit.
  const auto system = build_pto_supercell(2);
  EXPECT_DOUBLE_EQ(valence_electrons(system), 8 * 26.0);
}

TEST(Supercell, KineticEnergyAfterSeeding) {
  auto system = build_pto_supercell(2);
  seed_velocities(system, 300.0, 99);
  // Equipartition: E_kin ~ (3/2) N kB T (loose bracket; small N).
  const double expected = 1.5 * 40 * 3.166811563e-6 * 300.0;
  EXPECT_GT(system.kinetic_energy(), 0.3 * expected);
  EXPECT_LT(system.kinetic_energy(), 3.0 * expected);

  // Centre-of-mass momentum removed.
  double px = 0.0;
  for (const auto& a : system.atoms) {
    px += info(a.kind).mass * a.velocity[0];
  }
  EXPECT_NEAR(px, 0.0, 1e-9);
}

TEST(Supercell, MinImageWraps) {
  auto system = build_pto_supercell(1, 10.0, 0.0);
  const auto d = system.min_image({0.5, 0.0, 0.0}, {9.5, 0.0, 0.0});
  EXPECT_NEAR(d[0], -1.0, 1e-12);
}

}  // namespace
}  // namespace dcmesh::qxmd
