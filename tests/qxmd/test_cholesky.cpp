// Tests for the Cholesky factorization and level-3 orthonormalization.

#include "dcmesh/qxmd/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dcmesh/common/rng.hpp"
#include "dcmesh/qxmd/scf.hpp"

namespace dcmesh::qxmd {
namespace {

matrix<cdouble> random_columns(std::size_t rows, std::size_t cols,
                               unsigned seed) {
  xoshiro256 rng(seed);
  matrix<cdouble> m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  return m;
}

TEST(Cholesky, FactorizesKnownSpdMatrix) {
  // A = [[4, 2], [2, 3]] = L L^T with L = [[2, 0], [1, sqrt(2)]].
  matrix<cdouble> a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  ASSERT_TRUE(cholesky_lower(a));
  EXPECT_NEAR(a(0, 0).real(), 2.0, 1e-14);
  EXPECT_NEAR(a(1, 0).real(), 1.0, 1e-14);
  EXPECT_NEAR(a(1, 1).real(), std::sqrt(2.0), 1e-14);
  EXPECT_EQ(a(0, 1), cdouble(0.0));  // upper zeroed
}

TEST(Cholesky, ReconstructsRandomHermitianPd) {
  // Build A = B^H B + n*I (guaranteed PD), factor, check L L^H = A.
  const std::size_t n = 10;
  const auto b = random_columns(20, n, 5);
  matrix<cdouble> a(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      cdouble sum = i == j ? cdouble(double(n)) : cdouble(0);
      for (std::size_t p = 0; p < 20; ++p) {
        sum += std::conj(b(p, i)) * b(p, j);
      }
      a(i, j) = sum;
    }
  }
  matrix<cdouble> l(n, n);
  for (std::size_t i = 0; i < a.size(); ++i) l.data()[i] = a.data()[i];
  ASSERT_TRUE(cholesky_lower(l));
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      cdouble sum{};
      for (std::size_t p = 0; p <= std::min(i, j); ++p) {
        sum += l(i, p) * std::conj(l(j, p));
      }
      ASSERT_NEAR(std::abs(sum - a(i, j)), 0.0, 1e-10)
          << i << "," << j;
    }
  }
}

TEST(Cholesky, IndefiniteMatrixReturnsFalse) {
  matrix<cdouble> a(2, 2);
  a(0, 0) = 1.0;
  a(1, 0) = 5.0;
  a(1, 1) = 1.0;  // 1 - 25 < 0 at the second pivot
  EXPECT_FALSE(cholesky_lower(a));
  matrix<cdouble> not_square(2, 3);
  EXPECT_THROW((void)cholesky_lower(not_square), std::invalid_argument);
}

TEST(CholeskyOrtho, ProducesOrthonormalColumns) {
  const double dv = 0.3;
  auto psi = random_columns(400, 8, 7);
  ASSERT_TRUE(orthonormalize_cholesky(psi, dv));
  for (std::size_t x = 0; x < 8; ++x) {
    for (std::size_t y = 0; y < 8; ++y) {
      cdouble dot{};
      for (std::size_t i = 0; i < 400; ++i) {
        dot += std::conj(psi(i, x)) * psi(i, y);
      }
      const double expected = x == y ? 1.0 : 0.0;
      ASSERT_NEAR(std::abs(dot * dv), expected, 1e-10) << x << "," << y;
    }
  }
}

TEST(CholeskyOrtho, MatchesGramSchmidtUpToRounding) {
  // Cholesky-QR and Gram-Schmidt produce the same Q in exact arithmetic
  // (both triangular orthogonalizations of the same column order).
  const double dv = 1.0;
  auto chol = random_columns(200, 5, 9);
  auto mgs = random_columns(200, 5, 9);  // same seed -> same data
  ASSERT_TRUE(orthonormalize_cholesky(chol, dv));
  orthonormalize(mgs, dv);
  for (std::size_t i = 0; i < chol.size(); ++i) {
    ASSERT_NEAR(std::abs(chol.data()[i] - mgs.data()[i]), 0.0, 1e-9) << i;
  }
}

TEST(CholeskyOrtho, DegenerateColumnsFallBack) {
  // Two identical columns: the overlap is singular; the routine must
  // report failure rather than produce garbage.
  matrix<cdouble> psi(50, 2);
  xoshiro256 rng(11);
  for (std::size_t i = 0; i < 50; ++i) {
    psi(i, 0) = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    psi(i, 1) = psi(i, 0);
  }
  EXPECT_FALSE(orthonormalize_cholesky(psi, 1.0));
}

TEST(CholeskyOrtho, IdempotentOnOrthonormalInput) {
  const double dv = 0.5;
  auto psi = random_columns(300, 6, 13);
  ASSERT_TRUE(orthonormalize_cholesky(psi, dv));
  matrix<cdouble> copy(300, 6);
  for (std::size_t i = 0; i < psi.size(); ++i) copy.data()[i] = psi.data()[i];
  ASSERT_TRUE(orthonormalize_cholesky(psi, dv));
  for (std::size_t i = 0; i < psi.size(); ++i) {
    ASSERT_NEAR(std::abs(psi.data()[i] - copy.data()[i]), 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace dcmesh::qxmd
