// Tests for the Berendsen thermostat and temperature measurement.

#include "dcmesh/qxmd/thermostat.hpp"

#include <gtest/gtest.h>

#include "dcmesh/qxmd/supercell.hpp"
#include "dcmesh/qxmd/verlet.hpp"

namespace dcmesh::qxmd {
namespace {

TEST(Thermostat, TemperatureMeasurementMatchesSeeding) {
  auto system = build_pto_supercell(3);  // 135 atoms: good statistics
  seed_velocities(system, 300.0, 1);
  const double t = instantaneous_temperature(system);
  EXPECT_GT(t, 150.0);
  EXPECT_LT(t, 450.0);
}

TEST(Thermostat, ZeroForTinySystems) {
  atom_system system;
  EXPECT_EQ(instantaneous_temperature(system), 0.0);
  system.atoms.push_back(atom{});
  EXPECT_EQ(instantaneous_temperature(system), 0.0);
}

TEST(Thermostat, CoolsHotSystemTowardTarget) {
  auto system = build_pto_supercell(2);
  seed_velocities(system, 1200.0, 2);
  const berendsen_thermostat thermostat(300.0, 20.0);
  const double t0 = instantaneous_temperature(system);
  for (int i = 0; i < 200; ++i) thermostat.apply(system, 2.0);
  const double t1 = instantaneous_temperature(system);
  EXPECT_LT(t1, t0);
  EXPECT_NEAR(t1, 300.0, 60.0);
}

TEST(Thermostat, HeatsColdSystemTowardTarget) {
  auto system = build_pto_supercell(2);
  seed_velocities(system, 50.0, 3);
  const berendsen_thermostat thermostat(300.0, 20.0);
  for (int i = 0; i < 300; ++i) thermostat.apply(system, 2.0);
  EXPECT_NEAR(instantaneous_temperature(system), 300.0, 60.0);
}

TEST(Thermostat, StationaryAtTarget) {
  auto system = build_pto_supercell(2);
  seed_velocities(system, 300.0, 4);
  const double before = instantaneous_temperature(system);
  berendsen_thermostat thermostat(before, 10.0);  // target = current
  thermostat.apply(system, 1.0);
  EXPECT_NEAR(instantaneous_temperature(system), before, 1e-9);
}

TEST(Thermostat, FrozenSystemIsLeftAlone) {
  auto system = build_pto_supercell(1);  // zero velocities
  const berendsen_thermostat thermostat(300.0, 10.0);
  thermostat.apply(system, 1.0);
  EXPECT_EQ(system.kinetic_energy(), 0.0);
}

TEST(Thermostat, EquilibratesUnderDynamics) {
  // Thermostatted Verlet: the kinetic temperature settles near the target
  // despite energy exchange with the potential.
  auto system = build_pto_supercell(2);
  seed_velocities(system, 900.0, 5);
  verlet_integrator integrator(pair_potential{}, 2.0);
  integrator.initialize(system);
  const berendsen_thermostat thermostat(300.0, 40.0);
  for (int i = 0; i < 150; ++i) {
    integrator.step(system);
    thermostat.apply(system, integrator.dt());
  }
  EXPECT_NEAR(instantaneous_temperature(system), 300.0, 150.0);
}

TEST(Thermostat, InvalidParametersThrow) {
  EXPECT_THROW(berendsen_thermostat(-1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(berendsen_thermostat(300.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace dcmesh::qxmd
