// Tests for extended-XYZ trajectory I/O.

#include "dcmesh/qxmd/xyz.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "dcmesh/qxmd/supercell.hpp"

namespace dcmesh::qxmd {
namespace {

TEST(Xyz, RoundTripPreservesState) {
  auto original = build_pto_supercell(2);
  seed_velocities(original, 300.0, 1);
  std::stringstream stream;
  write_xyz_frame(stream, original, 12.5);

  atom_system restored;
  double time = 0.0;
  ASSERT_TRUE(read_xyz_frame(stream, restored, time));
  EXPECT_DOUBLE_EQ(time, 12.5);
  ASSERT_EQ(restored.size(), original.size());
  for (int axis = 0; axis < 3; ++axis) {
    EXPECT_NEAR(restored.box[axis], original.box[axis], 1e-9);
  }
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored.atoms[i].kind, original.atoms[i].kind);
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_NEAR(restored.atoms[i].position[axis],
                  original.atoms[i].position[axis], 1e-9);
      EXPECT_NEAR(restored.atoms[i].velocity[axis],
                  original.atoms[i].velocity[axis], 1e-9);
    }
  }
}

TEST(Xyz, MultipleFramesStream) {
  auto system = build_pto_supercell(1);
  std::stringstream stream;
  write_xyz_frame(stream, system, 0.0);
  system.atoms[0].position[0] += 0.5;
  write_xyz_frame(stream, system, 1.0);

  atom_system frame;
  double time = 0.0;
  ASSERT_TRUE(read_xyz_frame(stream, frame, time));
  EXPECT_DOUBLE_EQ(time, 0.0);
  ASSERT_TRUE(read_xyz_frame(stream, frame, time));
  EXPECT_DOUBLE_EQ(time, 1.0);
  EXPECT_FALSE(read_xyz_frame(stream, frame, time));  // clean end
}

TEST(Xyz, FormatIsStandardXyz) {
  auto system = build_pto_supercell(1);
  std::stringstream stream;
  write_xyz_frame(stream, system, 0.0);
  std::string first_line;
  std::getline(stream, first_line);
  EXPECT_EQ(first_line, "5");  // atom count leads the frame
  std::string comment;
  std::getline(stream, comment);
  EXPECT_NE(comment.find("Lattice="), std::string::npos);
  EXPECT_NE(comment.find("Time=0"), std::string::npos);
  std::string atom_line;
  std::getline(stream, atom_line);
  EXPECT_EQ(atom_line.substr(0, 3), "Pb ");  // basis atom 0
}

TEST(Xyz, MalformedInputThrows) {
  atom_system frame;
  double time = 0.0;
  std::stringstream bad_count("abc\ncomment\n");
  EXPECT_THROW((void)read_xyz_frame(bad_count, frame, time),
               std::runtime_error);
  std::stringstream truncated("3\nLattice=\"1 0 0 0 1 0 0 0 1\"\nO 0 0 0 0 0 0\n");
  EXPECT_THROW((void)read_xyz_frame(truncated, frame, time),
               std::runtime_error);
  std::stringstream bad_species(
      "1\nLattice=\"1 0 0 0 1 0 0 0 1\"\nXx 0 0 0 0 0 0\n");
  EXPECT_THROW((void)read_xyz_frame(bad_species, frame, time),
               std::runtime_error);
  std::stringstream no_lattice("1\nTime=0\nO 0 0 0 0 0 0\n");
  EXPECT_THROW((void)read_xyz_frame(no_lattice, frame, time),
               std::runtime_error);
}

}  // namespace
}  // namespace dcmesh::qxmd
