// Tests for the Hermitian Jacobi eigensolver.

#include "dcmesh/qxmd/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dcmesh/common/rng.hpp"

namespace dcmesh::qxmd {
namespace {

matrix<cdouble> random_hermitian(std::size_t n, unsigned seed) {
  xoshiro256 rng(seed);
  matrix<cdouble> h(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    h(j, j) = rng.uniform(-2, 2);
    for (std::size_t i = 0; i < j; ++i) {
      const cdouble v{rng.uniform(-1, 1), rng.uniform(-1, 1)};
      h(i, j) = v;
      h(j, i) = std::conj(v);
    }
  }
  return h;
}

TEST(Eigen, DiagonalMatrix) {
  matrix<cdouble> h(3, 3);
  h(0, 0) = 3.0;
  h(1, 1) = -1.0;
  h(2, 2) = 2.0;
  const auto result = hermitian_eigen(h);
  ASSERT_EQ(result.values.size(), 3u);
  EXPECT_NEAR(result.values[0], -1.0, 1e-12);
  EXPECT_NEAR(result.values[1], 2.0, 1e-12);
  EXPECT_NEAR(result.values[2], 3.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[1, i], [-i, 1]] has eigenvalues 0 and 2.
  matrix<cdouble> h(2, 2);
  h(0, 0) = 1.0;
  h(1, 1) = 1.0;
  h(0, 1) = cdouble(0, 1);
  h(1, 0) = cdouble(0, -1);
  const auto result = hermitian_eigen(h);
  EXPECT_NEAR(result.values[0], 0.0, 1e-12);
  EXPECT_NEAR(result.values[1], 2.0, 1e-12);
}

class EigenRandom : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigenRandom, ResidualAndOrthonormality) {
  const std::size_t n = GetParam();
  const auto h = random_hermitian(n, 17 + static_cast<unsigned>(n));
  const auto result = hermitian_eigen(h);
  ASSERT_EQ(result.values.size(), n);

  // Eigenvalues ascending.
  for (std::size_t j = 1; j < n; ++j) {
    EXPECT_LE(result.values[j - 1], result.values[j] + 1e-12);
  }

  // ||H v - lambda v|| small for every pair.
  for (std::size_t j = 0; j < n; ++j) {
    double residual = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      cdouble hv{};
      for (std::size_t p = 0; p < n; ++p) {
        hv += h(i, p) * result.vectors(p, j);
      }
      residual += std::norm(hv - result.values[j] * result.vectors(i, j));
    }
    EXPECT_LT(std::sqrt(residual), 1e-9) << "column " << j;
  }

  // V^H V = I.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      cdouble dot{};
      for (std::size_t i = 0; i < n; ++i) {
        dot += std::conj(result.vectors(i, a)) * result.vectors(i, b);
      }
      const double expected = a == b ? 1.0 : 0.0;
      EXPECT_NEAR(std::abs(dot), expected, 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenRandom,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32));

TEST(Eigen, TraceAndSumOfEigenvaluesAgree) {
  const auto h = random_hermitian(12, 31);
  const auto result = hermitian_eigen(h);
  double trace = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < 12; ++i) {
    trace += h(i, i).real();
    sum += result.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-10);
}

TEST(Eigen, NonSquareThrows) {
  matrix<cdouble> h(2, 3);
  EXPECT_THROW(hermitian_eigen(h), std::invalid_argument);
}

TEST(Eigen, ConvergesQuickly) {
  const auto h = random_hermitian(16, 41);
  const auto result = hermitian_eigen(h);
  EXPECT_LE(result.sweeps, 20);
  EXPECT_LT(result.off_norm, 1e-10);
}

}  // namespace
}  // namespace dcmesh::qxmd
