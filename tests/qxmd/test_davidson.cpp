// Tests for the block Davidson eigensolver.

#include "dcmesh/qxmd/davidson.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dcmesh/common/rng.hpp"
#include "dcmesh/lfd/hamiltonian.hpp"
#include "dcmesh/lfd/init.hpp"
#include "dcmesh/lfd/potential.hpp"
#include "dcmesh/mesh/stencil.hpp"
#include "dcmesh/qxmd/eigen.hpp"
#include "dcmesh/qxmd/supercell.hpp"

namespace dcmesh::qxmd {
namespace {

/// Diagonal test operator: H = diag(0, 1, 2, ...).
apply_h_fn diagonal_operator() {
  return [](const_matrix_view<cdouble> in, matrix_view<cdouble> out) {
    for (std::size_t j = 0; j < in.cols; ++j) {
      for (std::size_t i = 0; i < in.rows; ++i) {
        out(i, j) = static_cast<double>(i) * in(i, j);
      }
    }
  };
}

TEST(Davidson, DiagonalOperatorExact) {
  const std::size_t dim = 60;
  std::vector<double> diag(dim);
  for (std::size_t i = 0; i < dim; ++i) diag[i] = static_cast<double>(i);
  davidson_options options;
  options.n_eigen = 4;
  const auto result =
      davidson(diagonal_operator(), dim, 1.0, diag, options);
  ASSERT_TRUE(result.converged) << "residual " << result.max_residual;
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(result.values[j], static_cast<double>(j), 1e-7) << j;
  }
}

TEST(Davidson, MatchesDenseSolverOnRandomHermitian) {
  const std::size_t n = 48;
  xoshiro256 rng(13);
  matrix<cdouble> hmat(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    hmat(j, j) = 2.0 * static_cast<double>(j) + rng.uniform(-0.1, 0.1);
    for (std::size_t i = 0; i < j; ++i) {
      // Off-diagonal decay keeps the diagonal a usable preconditioner.
      const double scale = 0.5 / (1.0 + std::abs(double(i) - double(j)));
      const cdouble v{scale * rng.uniform(-1, 1),
                      scale * rng.uniform(-1, 1)};
      hmat(i, j) = v;
      hmat(j, i) = std::conj(v);
    }
  }
  const apply_h_fn apply = [&hmat](const_matrix_view<cdouble> in,
                                   matrix_view<cdouble> out) {
    for (std::size_t j = 0; j < in.cols; ++j) {
      for (std::size_t i = 0; i < in.rows; ++i) {
        cdouble sum{};
        for (std::size_t p = 0; p < in.rows; ++p) {
          sum += hmat(i, p) * in(p, j);
        }
        out(i, j) = sum;
      }
    }
  };
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = hmat(i, i).real();

  davidson_options options;
  options.n_eigen = 3;
  options.tolerance = 1e-9;
  const auto iterative = davidson(apply, n, 1.0, diag, options);
  ASSERT_TRUE(iterative.converged);

  const auto dense = hermitian_eigen(hmat);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(iterative.values[j], dense.values[j], 1e-7) << j;
  }
}

TEST(Davidson, EigenvectorsAreOrthonormalAndResidualSmall) {
  const std::size_t dim = 50;
  std::vector<double> diag(dim);
  for (std::size_t i = 0; i < dim; ++i) diag[i] = static_cast<double>(i);
  davidson_options options;
  options.n_eigen = 3;
  const double dv = 0.25;  // mesh-weighted inner product
  const auto result = davidson(diagonal_operator(), dim, dv, diag, options);
  ASSERT_TRUE(result.converged);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      cdouble dot{};
      for (std::size_t i = 0; i < dim; ++i) {
        dot += std::conj(result.vectors(i, a)) * result.vectors(i, b);
      }
      EXPECT_NEAR(std::abs(dot * dv), a == b ? 1.0 : 0.0, 1e-7);
    }
  }
  EXPECT_LT(result.max_residual, options.tolerance);
}

TEST(Davidson, MeshHamiltonianMatchesRayleighRitzGroundState) {
  // The real use case: the lowest states of the FP64 LFD Hamiltonian.
  const auto atoms = qxmd::build_pto_supercell(1, 7.37, 0.05, 3);
  const mesh::grid3d grid = mesh::grid3d::cubic(8, 7.37 / 8.0);
  lfd::hamiltonian<double> h(grid, mesh::fd_order::fourth,
                             lfd::build_local_potential(grid, atoms));
  const apply_h_fn apply = [&h](const_matrix_view<cdouble> in,
                                matrix_view<cdouble> out) {
    h.apply(in, out);
  };
  // Diagonal of H on the mesh: V(r) plus the 4th-order kinetic stencil
  // centre coefficient 0.5 * 3 * (5/2) / h^2.
  const double center = 0.5 * 3.0 * 2.5 / (grid.spacing * grid.spacing);
  std::vector<double> diag(static_cast<std::size_t>(grid.size()));
  const std::span<const double> v = h.potential();
  for (std::size_t i = 0; i < diag.size(); ++i) diag[i] = v[i] + center;

  davidson_options options;
  options.n_eigen = 3;
  // The plain diagonal preconditioner is weak against the kinetic term,
  // so ask for a residual that still pins the eigenvalues to ~1e-7
  // (eigenvalue error ~ residual^2 / gap).
  options.tolerance = 5e-4;
  options.max_iterations = 400;
  options.max_subspace = 24;
  const auto result =
      davidson(apply, diag.size(), grid.dv(), diag, options);
  ASSERT_TRUE(result.converged) << "residual " << result.max_residual;

  // Davidson converges in the full mesh space; the plane-wave Rayleigh-
  // Ritz values are variational upper bounds, so Davidson must sit at or
  // below them for each of the lowest states.
  const auto rr = lfd::initialize_ground_state(grid, atoms, 6, 3,
                                               mesh::fd_order::fourth);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_LE(result.values[j], rr.band_energies[j] + 1e-6) << j;
  }
}

TEST(Davidson, InvalidArgumentsThrow) {
  std::vector<double> diag(10, 0.0);
  davidson_options options;
  options.n_eigen = 0;
  EXPECT_THROW((void)davidson(diagonal_operator(), 10, 1.0, diag, options),
               std::invalid_argument);
  options.n_eigen = 4;
  EXPECT_THROW((void)davidson(diagonal_operator(), 10, 1.0,
                              std::vector<double>(3, 0.0), options),
               std::invalid_argument);
  options.max_subspace = 5;  // < 2 * n_eigen
  EXPECT_THROW((void)davidson(diagonal_operator(), 10, 1.0, diag, options),
               std::invalid_argument);
}

TEST(Davidson, WarmStartConvergesFaster) {
  const std::size_t dim = 60;
  std::vector<double> diag(dim);
  for (std::size_t i = 0; i < dim; ++i) diag[i] = static_cast<double>(i);
  davidson_options options;
  options.n_eigen = 2;
  const auto cold = davidson(diagonal_operator(), dim, 1.0, diag, options);
  ASSERT_TRUE(cold.converged);
  // Warm start from the converged vectors: should converge immediately.
  const auto warm = davidson(diagonal_operator(), dim, 1.0, diag, options,
                             &cold.vectors);
  ASSERT_TRUE(warm.converged);
  EXPECT_LE(warm.iterations, 2);
}

}  // namespace
}  // namespace dcmesh::qxmd
