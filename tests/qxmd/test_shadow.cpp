// Tests for the shadow-dynamics transfer ledger.

#include "dcmesh/qxmd/shadow.hpp"

#include <gtest/gtest.h>

namespace dcmesh::qxmd {
namespace {

TEST(Shadow, StartsSynchronized) {
  shadow_ledger ledger;
  ledger.register_quantity("psi", 1024, 0.1);
  EXPECT_FALSE(ledger.needs_transfer("psi"));
  EXPECT_EQ(ledger.drift("psi"), 0.0);
}

TEST(Shadow, DriftAccumulatesAndTriggersTransfer) {
  shadow_ledger ledger;
  ledger.register_quantity("psi", 1000, 0.1);
  ledger.record_gpu_update("psi", 0.04);
  EXPECT_FALSE(ledger.needs_transfer("psi"));
  ledger.record_gpu_update("psi", 0.04);
  EXPECT_FALSE(ledger.needs_transfer("psi"));
  ledger.record_gpu_update("psi", 0.04);
  EXPECT_TRUE(ledger.needs_transfer("psi"));  // 0.12 > 0.1

  EXPECT_TRUE(ledger.sync("psi"));
  EXPECT_EQ(ledger.transfers_performed(), 1u);
  EXPECT_EQ(ledger.bytes_transferred(), 1000u);
  EXPECT_EQ(ledger.drift("psi"), 0.0);
}

TEST(Shadow, SyncBelowToleranceIsAvoided) {
  // The whole point of shadow dynamics: transfers that are not needed are
  // skipped and counted as avoided.
  shadow_ledger ledger;
  ledger.register_quantity("psi", 4096, 1.0);
  ledger.record_gpu_update("psi", 0.5);
  EXPECT_FALSE(ledger.sync("psi"));
  EXPECT_EQ(ledger.transfers_performed(), 0u);
  EXPECT_EQ(ledger.transfers_avoided(), 1u);
  EXPECT_EQ(ledger.bytes_transferred(), 0u);
  // Drift survives an avoided sync.
  EXPECT_EQ(ledger.drift("psi"), 0.5);
}

TEST(Shadow, ForcedSyncAlwaysTransfers) {
  shadow_ledger ledger;
  ledger.register_quantity("forces", 96, 10.0);
  EXPECT_TRUE(ledger.sync("forces", /*force=*/true));
  EXPECT_EQ(ledger.transfers_performed(), 1u);
  EXPECT_EQ(ledger.bytes_transferred(), 96u);
}

TEST(Shadow, MultipleQuantitiesIndependent) {
  shadow_ledger ledger;
  ledger.register_quantity("a", 10, 0.1);
  ledger.register_quantity("b", 20, 0.1);
  ledger.record_gpu_update("a", 1.0);
  EXPECT_TRUE(ledger.needs_transfer("a"));
  EXPECT_FALSE(ledger.needs_transfer("b"));
  ledger.sync("a");
  ledger.sync("b");
  EXPECT_EQ(ledger.transfers_performed(), 1u);
  EXPECT_EQ(ledger.transfers_avoided(), 1u);
  EXPECT_EQ(ledger.bytes_transferred(), 10u);
}

TEST(Shadow, UnknownQuantityThrows) {
  shadow_ledger ledger;
  EXPECT_THROW(ledger.record_gpu_update("nope", 1.0),
               std::invalid_argument);
  EXPECT_THROW(ledger.sync("nope"), std::invalid_argument);
  EXPECT_THROW((void)ledger.needs_transfer("nope"), std::invalid_argument);
  EXPECT_THROW((void)ledger.drift("nope"), std::invalid_argument);
}

TEST(Shadow, ReregistrationResets) {
  shadow_ledger ledger;
  ledger.register_quantity("x", 8, 0.1);
  ledger.record_gpu_update("x", 5.0);
  ledger.register_quantity("x", 16, 0.2);
  EXPECT_EQ(ledger.drift("x"), 0.0);
  EXPECT_FALSE(ledger.needs_transfer("x"));
}

}  // namespace
}  // namespace dcmesh::qxmd
