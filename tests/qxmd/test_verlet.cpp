// Tests for the velocity-Verlet ionic integrator.

#include "dcmesh/qxmd/verlet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dcmesh/qxmd/supercell.hpp"

namespace dcmesh::qxmd {
namespace {

TEST(Verlet, StepBeforeInitializeThrows) {
  auto system = build_pto_supercell(1);
  verlet_integrator integrator(pair_potential{}, 1.0);
  EXPECT_THROW(integrator.step(system), std::logic_error);
}

TEST(Verlet, EnergyConservation) {
  auto system = build_pto_supercell(2);
  seed_velocities(system, 150.0, 5);
  verlet_integrator integrator(pair_potential{}, 2.0);  // ~0.05 fs
  double e_pot = integrator.initialize(system);
  const double e0 = e_pot + system.kinetic_energy();
  double max_drift = 0.0;
  for (int step = 0; step < 100; ++step) {
    e_pot = integrator.step(system);
    const double e = e_pot + system.kinetic_energy();
    max_drift = std::max(max_drift, std::abs(e - e0));
  }
  // Verlet conserves energy to O(dt^2) per period; demand < 0.5% of the
  // (order-Hartree) kinetic scale.
  EXPECT_LT(max_drift, 5e-3 * std::max(1.0, std::abs(e0)));
}

TEST(Verlet, MomentumConserved) {
  auto system = build_pto_supercell(2);
  seed_velocities(system, 300.0, 6);
  verlet_integrator integrator(pair_potential{}, 2.0);
  integrator.initialize(system);
  for (int step = 0; step < 20; ++step) integrator.step(system);
  double p[3] = {0, 0, 0};
  for (const auto& a : system.atoms) {
    const double m = info(a.kind).mass;
    for (int axis = 0; axis < 3; ++axis) p[axis] += m * a.velocity[axis];
  }
  for (int axis = 0; axis < 3; ++axis) EXPECT_NEAR(p[axis], 0.0, 1e-6);
}

TEST(Verlet, AtomsStayInBox) {
  auto system = build_pto_supercell(2);
  seed_velocities(system, 600.0, 7);
  verlet_integrator integrator(pair_potential{}, 4.0);
  integrator.initialize(system);
  for (int step = 0; step < 50; ++step) integrator.step(system);
  for (const auto& a : system.atoms) {
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_GE(a.position[axis], 0.0);
      EXPECT_LT(a.position[axis], system.box[axis]);
    }
  }
}

TEST(Verlet, ExtraForceHookIsApplied) {
  auto system = build_pto_supercell(1, 8.0, 0.0);
  // Freeze initial velocities at zero; apply a uniform +x kick through the
  // hook and check the atoms accelerate along +x.
  verlet_integrator integrator(pair_potential{}, 1.0);
  const extra_force_fn kick = [](atom_system& s) {
    for (auto& a : s.atoms) a.force[0] += 1.0e-2;
  };
  integrator.initialize(system, kick);
  for (int step = 0; step < 5; ++step) integrator.step(system, kick);
  double vx = 0.0;
  for (const auto& a : system.atoms) vx += a.velocity[0];
  EXPECT_GT(vx, 0.0);
}

TEST(Verlet, ColdIdealLatticeStaysPut) {
  // Perfect lattice at T = 0: forces are symmetric, atoms should barely
  // move over a few steps.
  auto system = build_pto_supercell(2, 7.37, 0.0);
  const auto reference = system.atoms;
  verlet_integrator integrator(pair_potential{}, 1.0);
  integrator.initialize(system);
  for (int step = 0; step < 10; ++step) integrator.step(system);
  for (std::size_t i = 0; i < system.size(); ++i) {
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_NEAR(system.atoms[i].position[axis],
                  reference[i].position[axis], 0.05);
    }
  }
}

}  // namespace
}  // namespace dcmesh::qxmd
