// Tests for the Buckingham pair potential and its forces.

#include "dcmesh/qxmd/pair_potential.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dcmesh/qxmd/supercell.hpp"

namespace dcmesh::qxmd {
namespace {

TEST(PairPotential, SymmetricParameters) {
  const pair_potential pot;
  EXPECT_EQ(pot.params(species::pb, species::o).a,
            pot.params(species::o, species::pb).a);
  EXPECT_EQ(pot.params(species::ti, species::o).rho,
            pot.params(species::o, species::ti).rho);
}

TEST(PairPotential, EnergyZeroAtAndBeyondCutoff) {
  const pair_potential pot(10.0);
  EXPECT_DOUBLE_EQ(pot.pair_energy(species::o, species::o, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(pot.pair_energy(species::o, species::o, 15.0), 0.0);
  // Continuity: just inside the cutoff the energy is tiny.
  EXPECT_NEAR(pot.pair_energy(species::o, species::o, 9.999), 0.0, 1e-4);
}

TEST(PairPotential, RepulsiveAtShortRange) {
  const pair_potential pot;
  EXPECT_GT(pot.pair_energy(species::ti, species::o, 1.0), 0.0);
  // Energy decreases moving outward in the repulsive core.
  EXPECT_GT(pot.pair_energy(species::ti, species::o, 1.0),
            pot.pair_energy(species::ti, species::o, 2.0));
}

TEST(PairPotential, AttractiveWellForCationAnion) {
  // Ti-O should have a negative (bound) region at typical bond lengths.
  const pair_potential pot;
  double min_e = 1e30;
  for (double r = 2.5; r < 8.0; r += 0.05) {
    min_e = std::min(min_e, pot.pair_energy(species::ti, species::o, r));
  }
  EXPECT_LT(min_e, 0.0);
}

TEST(PairPotential, TotalEnergyFiniteOnSupercell) {
  auto system = build_pto_supercell(2);
  const pair_potential pot;
  const double e = pot.energy(system);
  EXPECT_TRUE(std::isfinite(e));
}

TEST(PairPotential, ForcesMatchNumericalGradient) {
  auto system = build_pto_supercell(1, 8.0, 0.1, 3);
  const pair_potential pot;
  pot.compute_forces(system);
  const auto forces = system.atoms;

  const double h = 1e-5;
  for (std::size_t i = 0; i < system.size(); ++i) {
    for (int axis = 0; axis < 3; ++axis) {
      auto plus = system;
      plus.atoms[i].position[axis] += h;
      auto minus = system;
      minus.atoms[i].position[axis] -= h;
      const double numeric =
          -(pot.energy(plus) - pot.energy(minus)) / (2 * h);
      EXPECT_NEAR(forces[i].force[axis], numeric,
                  1e-4 * std::max(1.0, std::abs(numeric)))
          << "atom " << i << " axis " << axis;
    }
  }
}

TEST(PairPotential, NewtonsThirdLawNetForceZero) {
  auto system = build_pto_supercell(2);
  const pair_potential pot;
  pot.compute_forces(system);
  double net[3] = {0, 0, 0};
  for (const auto& a : system.atoms) {
    for (int axis = 0; axis < 3; ++axis) net[axis] += a.force[axis];
  }
  for (int axis = 0; axis < 3; ++axis) {
    EXPECT_NEAR(net[axis], 0.0, 1e-9);
  }
}

TEST(PairPotential, ComputeForcesReturnsEnergy) {
  auto system = build_pto_supercell(2);
  const pair_potential pot;
  const double from_forces = pot.compute_forces(system);
  EXPECT_NEAR(from_forces, pot.energy(system), 1e-12);
}

TEST(PairPotential, SetParamsOverrides) {
  pair_potential pot;
  pot.set_params(species::o, species::o, {1.0, 2.0, 3.0});
  EXPECT_EQ(pot.params(species::o, species::o).a, 1.0);
  EXPECT_EQ(pot.params(species::o, species::o).rho, 2.0);
  EXPECT_EQ(pot.params(species::o, species::o).c, 3.0);
}

}  // namespace
}  // namespace dcmesh::qxmd
