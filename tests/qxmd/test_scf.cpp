// Tests for the FP64 SCF substrate: orthonormalization, Rayleigh-Ritz, and
// the periodic refresh that makes reduced-precision BLAS viable.

#include "dcmesh/qxmd/scf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dcmesh/common/rng.hpp"

namespace dcmesh::qxmd {
namespace {

matrix<cdouble> random_columns(std::size_t rows, std::size_t cols,
                               unsigned seed) {
  xoshiro256 rng(seed);
  matrix<cdouble> m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  return m;
}

cdouble col_dot(const matrix<cdouble>& m, std::size_t a, std::size_t b,
                double dv) {
  cdouble sum{};
  for (std::size_t i = 0; i < m.rows(); ++i) {
    sum += std::conj(m(i, a)) * m(i, b);
  }
  return sum * dv;
}

TEST(Orthonormalize, ProducesOrthonormalColumns) {
  const double dv = 0.125;
  auto psi = random_columns(200, 8, 1);
  orthonormalize(psi, dv);
  for (std::size_t a = 0; a < 8; ++a) {
    for (std::size_t b = 0; b < 8; ++b) {
      const double expected = a == b ? 1.0 : 0.0;
      EXPECT_NEAR(std::abs(col_dot(psi, a, b, dv)), expected, 1e-12)
          << a << "," << b;
    }
  }
}

TEST(Orthonormalize, PreservesSpan) {
  // The first column only gets normalized — same direction.
  const double dv = 1.0;
  auto psi = random_columns(50, 3, 2);
  const auto original = random_columns(50, 3, 2);
  orthonormalize(psi, dv);
  cdouble overlap{};
  double norm0 = 0.0;
  for (std::size_t i = 0; i < 50; ++i) {
    overlap += std::conj(psi(i, 0)) * original(i, 0);
    norm0 += std::norm(original(i, 0));
  }
  EXPECT_NEAR(std::abs(overlap), std::sqrt(norm0), 1e-9);
}

TEST(Orthonormalize, DegenerateColumnThrows) {
  matrix<cdouble> psi(10, 2);
  for (std::size_t i = 0; i < 10; ++i) {
    psi(i, 0) = 1.0;
    psi(i, 1) = 1.0;  // same as column 0 -> collapses
  }
  EXPECT_THROW(orthonormalize(psi, 1.0), std::runtime_error);
}

TEST(RayleighRitz, DiagonalOperatorRecovered) {
  // H multiplies row i by i (diagonal in the coordinate basis).  The
  // Rayleigh-Ritz values over a full-rank subspace of C^n must lie within
  // the operator's spectrum and come out ascending.
  const std::size_t n = 12, norb = 4;
  auto psi = random_columns(n, norb, 3);
  const apply_h_fn h = [](const_matrix_view<cdouble> in,
                          matrix_view<cdouble> out) {
    for (std::size_t j = 0; j < in.cols; ++j) {
      for (std::size_t i = 0; i < in.rows; ++i) {
        out(i, j) = static_cast<double>(i) * in(i, j);
      }
    }
  };
  const auto values = rayleigh_ritz(psi, h, 1.0);
  ASSERT_EQ(values.size(), norb);
  for (std::size_t j = 0; j < norb; ++j) {
    EXPECT_GE(values[j], 0.0 - 1e-9);
    EXPECT_LE(values[j], double(n - 1) + 1e-9);
    if (j > 0) {
      EXPECT_LE(values[j - 1], values[j] + 1e-12);
    }
  }
  // Result columns are orthonormal and are approximate eigenvectors:
  // Rayleigh quotient of column j equals values[j].
  matrix<cdouble> hpsi(n, norb);
  h(psi.view(), hpsi.view());
  for (std::size_t j = 0; j < norb; ++j) {
    cdouble rq{};
    for (std::size_t i = 0; i < n; ++i) {
      rq += std::conj(psi(i, j)) * hpsi(i, j);
    }
    EXPECT_NEAR(rq.real(), values[j], 1e-9);
  }
}

TEST(ScfRefresh, RepairsFp32Drift) {
  // Build an orthonormal FP64 set, convert to FP32, apply many noisy
  // rotations to simulate reduced-precision drift, then refresh.
  const double dv = 0.5;
  auto psi64 = random_columns(300, 6, 4);
  orthonormalize(psi64, dv);

  matrix<std::complex<float>> psi32(300, 6);
  xoshiro256 rng(5);
  for (std::size_t i = 0; i < psi64.size(); ++i) {
    // Inject ~1e-3 relative perturbation (typical of BF16-mode drift).
    const double noise = 1.0 + 1e-3 * rng.normal();
    psi32.data()[i] = {static_cast<float>(psi64.data()[i].real() * noise),
                       static_cast<float>(psi64.data()[i].imag() * noise)};
  }

  const scf_report report = scf_refresh<float>(psi32, dv);
  EXPECT_GT(report.max_norm_drift, 1e-5);  // drift was detected

  // After the refresh the columns are orthonormal to FP32 accuracy.
  matrix<cdouble> check(300, 6);
  for (std::size_t i = 0; i < check.size(); ++i) {
    check.data()[i] = {psi32.data()[i].real(), psi32.data()[i].imag()};
  }
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = 0; b < 6; ++b) {
      const double expected = a == b ? 1.0 : 0.0;
      EXPECT_NEAR(std::abs(col_dot(check, a, b, dv)), expected, 1e-5);
    }
  }
}

TEST(ScfRefresh, NoOpOnCleanState) {
  const double dv = 1.0;
  auto psi = random_columns(100, 4, 6);
  orthonormalize(psi, dv);
  matrix<cdouble> copy(100, 4);
  for (std::size_t i = 0; i < psi.size(); ++i) copy.data()[i] = psi.data()[i];
  const scf_report report = scf_refresh<double>(psi, dv);
  EXPECT_LT(report.max_norm_drift, 1e-12);
  for (std::size_t i = 0; i < psi.size(); ++i) {
    EXPECT_NEAR(std::abs(psi.data()[i] - copy.data()[i]), 0.0, 1e-12);
  }
}

}  // namespace
}  // namespace dcmesh::qxmd
