// Signal-flush last-gasp test: a process killed by SIGTERM must still
// leave a valid Chrome trace on disk when DCMESH_TRACE_FLUSH_ON_SIGNAL
// opted in.  The kill is observed from a forked child so the test binary
// itself survives.

#include "dcmesh/trace/signal_flush.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include "dcmesh/common/env.hpp"
#include "dcmesh/trace/tracer.hpp"

namespace dcmesh::trace {
namespace {

TEST(SignalFlush, EnvGateParsesRobustly) {
  env_unset(kTraceFlushOnSignalEnvVar);
  EXPECT_FALSE(install_signal_flush_from_env());
  env_set(kTraceFlushOnSignalEnvVar, "0");
  EXPECT_FALSE(install_signal_flush_from_env());
  // Malformed values read as "off" — never throw (env-robustness
  // contract shared with the fault plan and the health sentinel).
  env_set(kTraceFlushOnSignalEnvVar, "banana");
  EXPECT_FALSE(install_signal_flush_from_env());
  env_unset(kTraceFlushOnSignalEnvVar);
}

TEST(SignalFlush, SigtermStillProducesATrace) {
  const std::string path =
      testing::TempDir() + "dcmesh_signal_flush_trace.json";
  std::remove(path.c_str());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: enable tracing, install the handlers, emit a span, die by
    // SIGTERM.  _exit codes mark the failure points for the parent.
    env_set(kTraceJsonEnvVar, path);
    tracer::instance().set_enabled(true);
    install_signal_flush();
    if (!signal_flush_installed()) _exit(41);
    {
      span s("signal-flush-span", "test");
      if (!s.active()) _exit(43);
    }
    raise(SIGTERM);
    _exit(42);  // unreachable: the handler re-raises with SIG_DFL
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  // The handler restores the default disposition and re-raises, so the
  // child must have died BY the signal (scheduler-visible exit status).
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited normally with code "
      << (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
  EXPECT_EQ(WTERMSIG(status), SIGTERM);

  // ... and the last-gasp trace is on disk, non-empty, and mentions the
  // span the child opened.
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no trace file written by the dying child";
  const std::string content{std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>()};
  EXPECT_NE(content.find("signal-flush-span"), std::string::npos);
  EXPECT_NE(content.find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dcmesh::trace
