// Tests for the span tracer: concurrent recording from many threads, the
// Chrome trace-event export (parsed back with a real JSON parser — no
// interleaving corruption, monotonically consistent timestamps), the
// per-site GEMM counter registry, and the end-to-end acceptance run: a
// 10-step driver with DCMESH_TRACE_JSON set emits a trace with >= 1 span
// per tagged GEMM site whose flop counters match the analytic counts.

#include "dcmesh/trace/tracer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <variant>
#include <vector>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/common/matrix.hpp"
#include "dcmesh/core/driver.hpp"
#include "dcmesh/core/presets.hpp"
#include "dcmesh/trace/metrics.hpp"

namespace dcmesh::trace {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser.  Strict enough that any torn or
// interleaved write from the concurrent export produces a parse failure.

struct json_value;
using json_object = std::map<std::string, json_value>;
using json_array = std::vector<json_value>;

struct json_value {
  std::variant<std::nullptr_t, bool, double, std::string, json_array,
               json_object>
      v;
  [[nodiscard]] const json_object& obj() const {
    return std::get<json_object>(v);
  }
  [[nodiscard]] const json_array& arr() const {
    return std::get<json_array>(v);
  }
  [[nodiscard]] double num() const { return std::get<double>(v); }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
};

class json_parser {
 public:
  explicit json_parser(std::string_view text) : text_(text) {}

  json_value parse() {
    const json_value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }
  json_value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return {parse_string()};
      case 't': parse_literal("true"); return {true};
      case 'f': parse_literal("false"); return {false};
      case 'n': parse_literal("null"); return {nullptr};
      default: return {parse_number()};
    }
  }
  void parse_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) fail("bad literal");
    pos_ += literal.size();
  }
  json_value parse_object() {
    expect('{');
    json_object members;
    skip_ws();
    if (peek() == '}') { ++pos_; return {std::move(members)}; }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return {std::move(members)};
    }
  }
  json_value parse_array() {
    expect('[');
    json_array items;
    skip_ws();
    if (peek() == ']') { ++pos_; return {std::move(items)}; }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return {std::move(items)};
    }
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char ch = peek();
      ++pos_;
      if (ch == '"') return out;
      if (ch == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::stoul(std::string(text_.substr(pos_, 4)), nullptr, 16));
            pos_ += 4;
            out += static_cast<char>(code & 0x7f);  // ASCII control bytes
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += ch;
      }
    }
  }
  double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return std::stod(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Parse a Chrome trace document and return its traceEvents array.
json_array parse_trace_events(const std::string& text) {
  const json_value doc = json_parser(text).parse();
  const auto it = doc.obj().find("traceEvents");
  if (it == doc.obj().end()) throw std::runtime_error("no traceEvents");
  return it->second.arr();
}

/// Scoped force-enable that restores the disabled state on destruction.
struct tracing_enabled {
  tracing_enabled() {
    tracer::instance().clear();
    tracer::instance().set_enabled(true);
  }
  ~tracing_enabled() {
    tracer::instance().set_enabled(false);
    tracer::instance().clear();
  }
};

TEST(Tracer, SpanRecordsCompleteEventWithArgs) {
  tracing_enabled guard;
  {
    span s("kernel \"a\"\n", "cat");
    s.arg("site", "lfd/nlp_prop");
    s.arg("flops", 1.5e9);
    s.arg("m", std::int64_t{128});
  }
  const auto events = tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "kernel \"a\"\n");
  EXPECT_EQ(events[0].category, "cat");

  // The export must survive the hostile name above and round-trip the args.
  const auto parsed =
      parse_trace_events(tracer::instance().to_chrome_json());
  ASSERT_EQ(parsed.size(), 1u);
  const json_object& event = parsed[0].obj();
  EXPECT_EQ(event.at("name").str(), "kernel \"a\"\n");
  EXPECT_EQ(event.at("ph").str(), "X");
  const json_object& args = event.at("args").obj();
  EXPECT_EQ(args.at("site").str(), "lfd/nlp_prop");
  EXPECT_DOUBLE_EQ(args.at("flops").num(), 1.5e9);
  EXPECT_DOUBLE_EQ(args.at("m").num(), 128.0);
}

TEST(Tracer, DisabledSpansAreInert) {
  tracer::instance().set_enabled(false);
  tracer::instance().clear();
  const std::size_t before = tracer::instance().event_count();
  {
    span s("ignored");
    EXPECT_FALSE(s.active());
    s.arg("k", 1.0);
  }
  EXPECT_EQ(tracer::instance().event_count(), before);
}

TEST(Tracer, ConcurrentSpansFromEightThreadsExportValidTrace) {
  tracing_enabled guard;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        span s("worker" + std::to_string(t), "concurrency");
        s.arg("iteration", static_cast<std::int64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Parse the export back: a torn/interleaved event would break the JSON.
  const std::string json = tracer::instance().to_chrome_json();
  json_array events;
  ASSERT_NO_THROW(events = parse_trace_events(json));
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(tracer::instance().dropped_count(), 0u);

  // Monotonic consistency: per-thread event order must be preserved (each
  // thread's spans are sequential, so both ts and the iteration arg are
  // non-decreasing within one tid), every duration is non-negative, and
  // each logical worker maps to exactly one tid.
  std::map<double, std::pair<double, double>> last_by_tid;  // ts, iter
  std::map<std::string, double> tid_by_name;
  for (const auto& value : events) {
    const json_object& event = value.obj();
    const double tid = event.at("tid").num();
    const double ts = event.at("ts").num();
    const double iteration = event.at("args").obj().at("iteration").num();
    EXPECT_GE(event.at("dur").num(), 0.0);
    EXPECT_GE(ts, 0.0);
    const std::string& name = event.at("name").str();
    const auto [it, inserted] = tid_by_name.emplace(name, tid);
    if (!inserted) {
      EXPECT_EQ(it->second, tid) << name << " hopped threads";
    }
    const auto last = last_by_tid.find(tid);
    if (last != last_by_tid.end()) {
      EXPECT_GE(ts, last->second.first) << "ts regressed within tid";
      EXPECT_GT(iteration, last->second.second) << "order lost within tid";
    }
    last_by_tid[tid] = {ts, iteration};
  }
  EXPECT_EQ(tid_by_name.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(last_by_tid.size(), static_cast<std::size_t>(kThreads));
}

TEST(Tracer, ClearDropsBufferedEvents) {
  tracing_enabled guard;
  { span s("x"); }
  EXPECT_GE(tracer::instance().event_count(), 1u);
  tracer::instance().clear();
  EXPECT_EQ(tracer::instance().event_count(), 0u);
  EXPECT_EQ(parse_trace_events(tracer::instance().to_chrome_json()).size(),
            0u);
}

TEST(Tracer, GemmTimeModelHook) {
  set_gemm_time_model([](const gemm_model_query& q) {
    return static_cast<double>(q.m + q.n + q.k);
  });
  EXPECT_DOUBLE_EQ(predicted_gemm_seconds({1, 2, 3, false, false, "X"}),
                   6.0);
  set_gemm_time_model({});
  EXPECT_LT(predicted_gemm_seconds({1, 2, 3, false, false, "X"}), 0.0);
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(GemmMetrics, PerSiteFlopCountersMatchAnalyticCountsExactly) {
  clear_gemm_metrics();
  blas::clear_compute_mode();

  const struct { blas::blas_int m, n, k; } shapes[] = {
      {7, 5, 3}, {16, 16, 16}, {33, 2, 129}};
  double expected_flops = 0.0;
  std::uint64_t expected_calls = 0;
  for (const auto& shape : shapes) {
    matrix<float> a(shape.m, shape.k), b(shape.k, shape.n),
        c(shape.m, shape.n);
    for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = 1.0f;
    for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = 1.0f;
    blas::gemm<float>(blas::transpose::none, blas::transpose::none, 1.0f,
                      a.view(), b.view(), 0.0f, c.view(),
                      "test/metrics/site_a");
    expected_flops += 2.0 * shape.m * shape.n * shape.k;
    ++expected_calls;
  }

  const gemm_site_counters counters =
      gemm_metrics_for("test/metrics/site_a");
  EXPECT_EQ(counters.calls, expected_calls);
  EXPECT_EQ(counters.flops, expected_flops);  // exact: sums of exact doubles
  EXPECT_EQ(counters.fallback_promotions, 0u);
  ASSERT_EQ(counters.mode_calls.size(), 1u);
  EXPECT_EQ(counters.mode_calls.begin()->first, "STANDARD");
  EXPECT_EQ(counters.mode_calls.begin()->second, expected_calls);
  EXPECT_GT(counters.bytes, 0.0);
}

TEST(GemmMetrics, UntaggedCallsKeyByRoutineAndModesAreCounted) {
  clear_gemm_metrics();
  matrix<float> a(4, 4), b(4, 4), c(4, 4);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = 0.5f;
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = 0.5f;
  {
    blas::scoped_compute_mode scope(blas::compute_mode::float_to_bf16);
    blas::gemm<float>(blas::transpose::none, blas::transpose::none, 1.0f,
                      a.view(), b.view(), 0.0f, c.view());
  }
  blas::gemm<float>(blas::transpose::none, blas::transpose::none, 1.0f,
                    a.view(), b.view(), 0.0f, c.view());

  const gemm_site_counters counters = gemm_metrics_for("untagged/SGEMM");
  EXPECT_EQ(counters.calls, 2u);
  EXPECT_EQ(counters.mode_calls.at("FLOAT_TO_BF16"), 1u);
  EXPECT_EQ(counters.mode_calls.at("STANDARD"), 1u);

  const std::string report = gemm_metrics_report();
  EXPECT_NE(report.find("untagged/SGEMM"), std::string::npos);
  EXPECT_NE(report.find("FLOAT_TO_BF16:1"), std::string::npos);

  clear_gemm_metrics();
  EXPECT_EQ(gemm_metrics_for("untagged/SGEMM").calls, 0u);
}

TEST(Tracer, UnwritableTraceJsonPathFailsCleanly) {
  // An unwritable DCMESH_TRACE_JSON must never throw or abort — the flush
  // (which also runs atexit) reports failure and the process goes on.
  env_set(kTraceJsonEnvVar, "/nonexistent-dcmesh-dir/sub/trace.json");
  tracer::instance().clear();
  { span s("robustness_probe", "test"); }
  EXPECT_FALSE(tracer::instance().flush_to_env_path());
  env_unset(kTraceJsonEnvVar);
  tracer::instance().clear();
}

// ---------------------------------------------------------------------------
// Acceptance: 10-step driver run with DCMESH_TRACE_JSON set.

TEST(TracePipeline, TenStepDriverRunEmitsValidatedChromeTrace) {
  const std::string path = ::testing::TempDir() + "dcmesh_trace_test.json";
  std::remove(path.c_str());
  env_set(kTraceJsonEnvVar, path);
  tracer::instance().clear();
  clear_gemm_metrics();
  blas::clear_compute_mode();

  {
    core::driver driver(core::preset(core::paper_system::tiny));
    for (int step = 0; step < 10; ++step) driver.qd_step();
  }
  ASSERT_TRUE(tracer::instance().flush_to_env_path());
  env_unset(kTraceJsonEnvVar);
  tracer::instance().clear();

  std::ifstream is(path);
  ASSERT_TRUE(is.good()) << "trace file missing: " << path;
  std::stringstream buffer;
  buffer << is.rdbuf();
  json_array events;
  ASSERT_NO_THROW(events = parse_trace_events(buffer.str()));
  ASSERT_FALSE(events.empty());

  // >= 1 gemm span per tagged LFD site exercised by a QD step, with flop
  // counts matching the analytic complex-GEMM formula and a roofline
  // prediction attached (the driver installs the model hook).
  const char* const kSites[] = {
      "lfd/nlp_prop/overlap",    "lfd/nlp_prop/project",
      "lfd/nlp_prop/subspace",   "lfd/calc_energy/kinetic",
      "lfd/calc_energy/nonlocal", "lfd/calc_energy/band_rot",
      "lfd/remap_occ/overlap",   "lfd/remap_occ/moment1",
      "lfd/remap_occ/moment2"};
  std::map<std::string, int> gemm_spans;
  for (const auto& value : events) {
    const json_object& event = value.obj();
    if (event.at("cat").str() != "gemm") continue;
    ++gemm_spans[event.at("name").str()];
    const json_object& args = event.at("args").obj();
    EXPECT_EQ(args.at("flops").num(),
              blas::gemm_flops(args.at("routine").str() == "CGEMM" ||
                                   args.at("routine").str() == "ZGEMM",
                               static_cast<blas::blas_int>(args.at("m").num()),
                               static_cast<blas::blas_int>(args.at("n").num()),
                               static_cast<blas::blas_int>(
                                   args.at("k").num())));
    EXPECT_GT(args.at("predicted_us").num(), 0.0);
  }
  for (const char* site : kSites) {
    EXPECT_GE(gemm_spans[site], 10) << "missing gemm spans for " << site;
  }

  // The per-site counter registry agrees with the analytic flop count for
  // a known shape: nlp_prop/subspace is norb x norb with k = norb.
  const auto counters = gemm_metrics_for("lfd/nlp_prop/subspace");
  EXPECT_GE(counters.calls, 10u);
  const double norb = 8.0;  // tiny preset
  EXPECT_EQ(counters.flops,
            static_cast<double>(counters.calls) * 8.0 * norb * norb * norb);

  // Step scopes from the driver's unitrace view are on the timeline too.
  bool saw_step = false;
  for (const auto& value : events) {
    if (value.obj().at("cat").str() == "step" &&
        value.obj().at("name").str() == "lfd.qd_step") {
      saw_step = true;
      break;
    }
  }
  EXPECT_TRUE(saw_step);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dcmesh::trace
