// Tests for the application-level timing model behind Figure 3a, including
// the paper's published 135-atom anchors and the 9-BLAS-call contract.

#include "dcmesh/xehpc/app_model.hpp"

#include <gtest/gtest.h>

namespace dcmesh::xehpc {
namespace {

using blas::compute_mode;

const device_spec kSpec{};
const calibration kCal = default_calibration();

const system_shape kSys40{64LL * 64 * 64, 256, 128};
const system_shape kSys135{96LL * 96 * 96, 1024, 432};

lfd_precision fp32_mode(compute_mode mode) {
  return {gemm_precision::fp32, mode};
}
const lfd_precision kFp64{gemm_precision::fp64, compute_mode::standard};
const lfd_precision kFp32 = fp32_mode(compute_mode::standard);

TEST(AppModel, NineCallsPerQdStep) {
  // Artifact appendix: "Each QD step contains 9 BLAS calls".
  const auto calls = canonical_qd_step_calls(kSys40, gemm_precision::fp32);
  EXPECT_EQ(calls.size(), 9u);
}

TEST(AppModel, CallSitesMatchThePaper) {
  // nlp_prop, calc_energy, remap_occ are "the three primary functions
  // which contain BLAS calls" — three calls each.
  const auto calls = canonical_qd_step_calls(kSys40, gemm_precision::fp32);
  int nlp = 0, energy = 0, remap = 0;
  for (const auto& call : calls) {
    if (call.site == "nlp_prop") ++nlp;
    if (call.site == "calc_energy") ++energy;
    if (call.site == "remap_occ") ++remap;
  }
  EXPECT_EQ(nlp, 3);
  EXPECT_EQ(energy, 3);
  EXPECT_EQ(remap, 3);
}

TEST(AppModel, Table7RemapShape) {
  // Table VII: the remap_occ GEMM for the 40-atom system has m = 128,
  // n = Norb - 128, k = 64^3 = 262144.
  const auto calls = canonical_qd_step_calls(kSys40, gemm_precision::fp32);
  bool found = false;
  for (const auto& call : calls) {
    if (call.site == "remap_occ" && call.shape.k == 262144) {
      EXPECT_EQ(call.shape.m, 128);
      EXPECT_EQ(call.shape.n, 128);  // 256 - 128
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AppModel, Table7ShapeSweepsWithNorb) {
  // Table VII rows: Norb 256 -> n 128; 1024 -> 896; 2048 -> 1920;
  // 4096 -> 3968 (the paper prints 3978, an arithmetic slip; see
  // EXPERIMENTS.md).  m and k stay fixed.
  for (const auto& [norb, expected_n] :
       std::vector<std::pair<blas::blas_int, blas::blas_int>>{
           {256, 128}, {1024, 896}, {2048, 1920}, {4096, 3968}}) {
    const system_shape sys{64LL * 64 * 64, norb, 128};
    const auto calls = canonical_qd_step_calls(sys, gemm_precision::fp32);
    bool found = false;
    for (const auto& call : calls) {
      if (call.site == "remap_occ" && call.shape.k == 262144) {
        EXPECT_EQ(call.shape.m, 128) << norb;
        EXPECT_EQ(call.shape.n, expected_n) << norb;
        found = true;
      }
    }
    EXPECT_TRUE(found) << norb;
  }
}

TEST(AppModel, Fig3a135AtomAnchors) {
  // Paper Sec. V-C: "the time to complete 500 QD steps is over 2800
  // seconds at FP64 precision, 1472 seconds at FP32, and 972 seconds when
  // using the BF16 compute mode."  The model must land within ~10%.
  const double t64 = model_series_seconds(kSpec, kCal, kSys135, kFp64, 500);
  const double t32 = model_series_seconds(kSpec, kCal, kSys135, kFp32, 500);
  const double t16 = model_series_seconds(
      kSpec, kCal, kSys135, fp32_mode(compute_mode::float_to_bf16), 500);
  EXPECT_NEAR(t64, 2800.0, 280.0);
  EXPECT_NEAR(t32, 1472.0, 150.0);
  EXPECT_NEAR(t16, 972.0, 100.0);
  EXPECT_GT(t64, 2800.0 * 0.9);  // "over 2800 seconds"
}

TEST(AppModel, ArtifactPrecisionOrdering135) {
  // "the fastest simulation is for the case when BLAS precision is BF16,
  // followed by TF32, BF16X2, BF16X3, Complex 3M, FP32, and then FP64."
  const double bf16 = model_series_seconds(
      kSpec, kCal, kSys135, fp32_mode(compute_mode::float_to_bf16), 500);
  const double tf32 = model_series_seconds(
      kSpec, kCal, kSys135, fp32_mode(compute_mode::float_to_tf32), 500);
  const double x2 = model_series_seconds(
      kSpec, kCal, kSys135, fp32_mode(compute_mode::float_to_bf16x2), 500);
  const double x3 = model_series_seconds(
      kSpec, kCal, kSys135, fp32_mode(compute_mode::float_to_bf16x3), 500);
  const double m3 = model_series_seconds(
      kSpec, kCal, kSys135, fp32_mode(compute_mode::complex_3m), 500);
  const double fp32 = model_series_seconds(kSpec, kCal, kSys135, kFp32, 500);
  const double fp64 = model_series_seconds(kSpec, kCal, kSys135, kFp64, 500);
  EXPECT_LT(bf16, tf32);
  EXPECT_LT(tf32, x2);
  EXPECT_LT(x2, x3);
  EXPECT_LT(x3, m3);
  EXPECT_LT(m3, fp32);
  EXPECT_LT(fp32, fp64);
}

TEST(AppModel, FortyAtomShowsLittleModeSpread) {
  // "In the 40 atom system, very little performance change is observed
  // between FP32 and the runs with different BLAS compute modes. Indeed,
  // only between the runs with FP64 and FP32 precisions do we observe any
  // significant change."
  const double fp32 = model_series_seconds(kSpec, kCal, kSys40, kFp32, 500);
  const double fp64 = model_series_seconds(kSpec, kCal, kSys40, kFp64, 500);
  EXPECT_GT(fp64 / fp32, 1.6);  // the FP64:FP32 gap is significant
  for (compute_mode mode :
       {compute_mode::float_to_bf16, compute_mode::float_to_tf32,
        compute_mode::float_to_bf16x2, compute_mode::complex_3m}) {
    const double t =
        model_series_seconds(kSpec, kCal, kSys40, fp32_mode(mode), 500);
    EXPECT_LT(std::abs(t - fp32) / fp32, 0.25)
        << blas::name(mode) << " deviates too much at 40 atoms";
  }
}

TEST(AppModel, EndToEndSpeedupNearPaperHeadline) {
  // Abstract: "we are able to achieve a speedup of 1.35x" (FP32 -> BF16
  // whole-application; the Sec. V-C times give ~1.51x — see
  // EXPERIMENTS.md).  Accept the bracket [1.3, 1.6].
  const double fp32 = model_series_seconds(kSpec, kCal, kSys135, kFp32, 500);
  const double bf16 = model_series_seconds(
      kSpec, kCal, kSys135, fp32_mode(compute_mode::float_to_bf16), 500);
  const double speedup = fp32 / bf16;
  EXPECT_GT(speedup, 1.3);
  EXPECT_LT(speedup, 1.6);
}

TEST(AppModel, CapacityTable5) {
  // Table V: the 135-atom system is the largest that fits in the 64 GB of
  // a single stack.  The FP32 wave function plus its propagation scratch
  // (~4x the state) must fit; the next size up (4x4x4 cells, 128^3 mesh,
  // ~2430 orbitals) must not.
  const double state135 = wavefunction_bytes(kSys135, gemm_precision::fp32);
  EXPECT_LT(4.0 * state135, 64e9);
  const system_shape sys320{128LL * 128 * 128, 2432, 1024};
  const double state320 = wavefunction_bytes(sys320, gemm_precision::fp32);
  EXPECT_GT(4.0 * state320, 64e9);
}

TEST(AppModel, MeshTimeScalesWithState) {
  const double t40 =
      model_qd_step_mesh_seconds(kSpec, kCal, kSys40, kFp32);
  const double t135 =
      model_qd_step_mesh_seconds(kSpec, kCal, kSys135, kFp32);
  const double ratio = (wavefunction_bytes(kSys135, gemm_precision::fp32)) /
                       (wavefunction_bytes(kSys40, gemm_precision::fp32));
  EXPECT_NEAR(t135 / t40, ratio, ratio * 0.1);  // ~linear in state bytes
}

}  // namespace
}  // namespace dcmesh::xehpc
