// Tests for the energy-to-solution model extension.

#include "dcmesh/xehpc/energy.hpp"

#include <gtest/gtest.h>

namespace dcmesh::xehpc {
namespace {

const device_spec kSpec{};
const calibration kCal = default_calibration();
const power_spec kPower{};
const system_shape kSys135{96LL * 96 * 96, 1024, 432};

lfd_precision fp32_mode(blas::compute_mode mode) {
  return {gemm_precision::fp32, mode};
}

TEST(Energy, PositiveAndConsistentWithTime) {
  const auto e = model_series_energy(kSpec, kCal, kPower, kSys135,
                                     fp32_mode(blas::compute_mode::standard));
  EXPECT_GT(e.joules, 0.0);
  EXPECT_NEAR(e.seconds,
              model_series_seconds(kSpec, kCal, kSys135,
                                   fp32_mode(blas::compute_mode::standard),
                                   500),
              1e-6);
  // Average draw bounded by idle and idle + all active contributions.
  EXPECT_GT(e.average_watts(), kPower.idle_w);
  EXPECT_LT(e.average_watts(), kPower.idle_w + kPower.vector_active_w +
                                   kPower.matrix_active_w +
                                   kPower.hbm_active_w);
}

TEST(Energy, Bf16SavesEnergyOverFp32) {
  // Less time at comparable (or lower) average power: BF16 must cost
  // fewer Joules per series.
  const auto fp32 = model_series_energy(
      kSpec, kCal, kPower, kSys135, fp32_mode(blas::compute_mode::standard));
  const auto bf16 = model_series_energy(
      kSpec, kCal, kPower, kSys135,
      fp32_mode(blas::compute_mode::float_to_bf16));
  EXPECT_LT(bf16.joules, fp32.joules);
  // Energy saving at least as large as ~2/3 of the time saving.
  const double time_ratio = fp32.seconds / bf16.seconds;
  const double energy_ratio = fp32.joules / bf16.joules;
  EXPECT_GT(energy_ratio, 1.0 + 0.66 * (time_ratio - 1.0) * 0.5);
}

TEST(Energy, Fp64CostsMostEnergy) {
  const auto fp64 = model_series_energy(
      kSpec, kCal, kPower, kSys135,
      {gemm_precision::fp64, blas::compute_mode::standard});
  const auto fp32 = model_series_energy(
      kSpec, kCal, kPower, kSys135, fp32_mode(blas::compute_mode::standard));
  EXPECT_GT(fp64.joules, fp32.joules);
}

TEST(Energy, GemmEnergyBreakdownUsesEnginePower) {
  const gemm_shape shape{1024, 1024, 262144, true, gemm_precision::fp32};
  const auto std_e = model_gemm_energy(kSpec, kCal, kPower, shape,
                                       blas::compute_mode::standard);
  const auto bf16_e = model_gemm_energy(kSpec, kCal, kPower, shape,
                                        blas::compute_mode::float_to_bf16);
  EXPECT_GT(std_e.joules, 0.0);
  EXPECT_LT(bf16_e.seconds, std_e.seconds);
  EXPECT_LT(bf16_e.joules, std_e.joules);
}

TEST(Energy, WattHoursConversion) {
  energy_estimate e;
  e.seconds = 10.0;
  e.joules = 3600.0;
  EXPECT_DOUBLE_EQ(e.watt_hours(), 1.0);
  EXPECT_DOUBLE_EQ(e.average_watts(), 360.0);
  const energy_estimate zero;
  EXPECT_EQ(zero.average_watts(), 0.0);
}

}  // namespace
}  // namespace dcmesh::xehpc
