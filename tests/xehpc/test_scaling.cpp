// Tests for the multi-stack scaling extension (paper future work).

#include "dcmesh/xehpc/scaling.hpp"

#include <gtest/gtest.h>

namespace dcmesh::xehpc {
namespace {

const device_spec kSpec{};
const calibration kCal = default_calibration();
const fabric_spec kFab{};
const system_shape kSys135{96LL * 96 * 96, 1024, 432};
const lfd_precision kFp32{gemm_precision::fp32,
                          blas::compute_mode::standard};

TEST(Scaling, SingleStackMatchesBaseModel) {
  const auto run =
      model_multi_stack_series(kSpec, kCal, kFab, kSys135, kFp32, 1);
  EXPECT_DOUBLE_EQ(run.communication_seconds, 0.0);
  EXPECT_NEAR(run.series_seconds,
              model_series_seconds(kSpec, kCal, kSys135, kFp32, 500), 1e-6);
  EXPECT_NEAR(run.parallel_efficiency, 1.0, 1e-9);
}

TEST(Scaling, MoreStacksReduceWallTime) {
  double previous = 1e30;
  for (int stacks : {1, 2, 4}) {
    const auto run =
        model_multi_stack_series(kSpec, kCal, kFab, kSys135, kFp32, stacks);
    EXPECT_LT(run.series_seconds, previous) << stacks;
    previous = run.series_seconds;
  }
}

TEST(Scaling, EfficiencyBelowUnityAndDecreasing) {
  double previous = 1.1;
  for (int stacks : {2, 4, 8}) {
    const auto run =
        model_multi_stack_series(kSpec, kCal, kFab, kSys135, kFp32, stacks);
    EXPECT_LE(run.parallel_efficiency, 1.0) << stacks;
    EXPECT_LT(run.parallel_efficiency, previous) << stacks;
    previous = run.parallel_efficiency;
  }
}

TEST(Scaling, CrossingNodeBoundaryHurts) {
  // 8 stacks within one node vs 8 stacks across nodes (4 per node).
  const auto intra = model_multi_stack_series(kSpec, kCal, kFab, kSys135,
                                              kFp32, 8, /*per_node=*/8);
  const auto inter = model_multi_stack_series(kSpec, kCal, kFab, kSys135,
                                              kFp32, 8, /*per_node=*/4);
  EXPECT_GT(inter.communication_seconds, intra.communication_seconds);
}

TEST(Scaling, InvalidArgumentsThrow) {
  EXPECT_THROW(
      (void)model_multi_stack_series(kSpec, kCal, kFab, kSys135, kFp32, 0),
      std::invalid_argument);
  EXPECT_THROW((void)model_multi_stack_series(kSpec, kCal, kFab, kSys135,
                                              kFp32, 2, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcmesh::xehpc
