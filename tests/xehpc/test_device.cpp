// Unit tests for the Max 1550 device spec (paper Table I).

#include "dcmesh/xehpc/device.hpp"

#include <gtest/gtest.h>

namespace dcmesh::xehpc {
namespace {

TEST(Device, Table1Peaks) {
  const device_spec spec;
  EXPECT_DOUBLE_EQ(theoretical_peak_tflops(spec, peak_precision::fp64), 26.0);
  EXPECT_DOUBLE_EQ(theoretical_peak_tflops(spec, peak_precision::fp32), 26.0);
  EXPECT_DOUBLE_EQ(theoretical_peak_tflops(spec, peak_precision::tf32),
                   209.0);
  EXPECT_DOUBLE_EQ(theoretical_peak_tflops(spec, peak_precision::bf16),
                   419.0);
  EXPECT_DOUBLE_EQ(theoretical_peak_tflops(spec, peak_precision::fp16),
                   419.0);
  EXPECT_DOUBLE_EQ(theoretical_peak_tflops(spec, peak_precision::int8),
                   839.0);
}

TEST(Device, Table1Engines) {
  EXPECT_EQ(peak_engine(peak_precision::fp64), engine::vector);
  EXPECT_EQ(peak_engine(peak_precision::fp32), engine::vector);
  EXPECT_EQ(peak_engine(peak_precision::tf32), engine::matrix);
  EXPECT_EQ(peak_engine(peak_precision::bf16), engine::matrix);
  EXPECT_EQ(peak_engine(peak_precision::fp16), engine::matrix);
  EXPECT_EQ(peak_engine(peak_precision::int8), engine::matrix);
}

TEST(Device, ArchitectureFields) {
  // Paper Sec. IV-A: 448 EUs per stack at up to 1.6 GHz; 64 GB per stack
  // (Table V caption); each Xe core has 8 vector + 8 matrix engines.
  const device_spec spec;
  EXPECT_EQ(spec.execution_units, 448);
  EXPECT_DOUBLE_EQ(spec.frequency_ghz, 1.6);
  EXPECT_DOUBLE_EQ(spec.hbm_capacity_gb, 64.0);
  EXPECT_EQ(spec.vector_engines_per_core, 8);
  EXPECT_EQ(spec.matrix_engines_per_core, 8);
  EXPECT_EQ(spec.xe_cores * spec.vector_engines_per_core,
            spec.execution_units);
}

TEST(Device, PrecisionNames) {
  EXPECT_EQ(precision_name(peak_precision::fp64), "FP64");
  EXPECT_EQ(precision_name(peak_precision::int8), "INT8");
}

TEST(Device, OpsPerClockConsistency) {
  // peak = EUs * GHz * ops_per_clock must hold by construction, and BF16
  // ops/clock should be ~16x the FP64 value (matrix vs vector engines).
  const device_spec spec;
  for (peak_precision p :
       {peak_precision::fp64, peak_precision::fp32, peak_precision::tf32,
        peak_precision::bf16}) {
    const double ops = ops_per_clock_per_eu(spec, p);
    EXPECT_NEAR(ops * spec.execution_units * spec.frequency_ghz * 1e9,
                theoretical_peak_tflops(spec, p) * 1e12, 1e6);
  }
  EXPECT_NEAR(ops_per_clock_per_eu(spec, peak_precision::bf16) /
                  ops_per_clock_per_eu(spec, peak_precision::fp64),
              419.0 / 26.0, 1e-9);
}

}  // namespace
}  // namespace dcmesh::xehpc
