// Tests for the GEMM roofline model: Table II peak ratios, the paper's
// Table VI / Fig 3b anchors, and structural properties (monotonicity,
// ordering) that must hold for the reproduction to be meaningful.

#include "dcmesh/xehpc/roofline.hpp"

#include <gtest/gtest.h>

namespace dcmesh::xehpc {
namespace {

using blas::compute_mode;

const device_spec kSpec{};
const calibration kCal = default_calibration();

/// Table VII / Fig 3b shape for a 40-atom system with norb orbitals.
gemm_shape remap_shape(blas::blas_int norb) {
  return {128, norb - 128, 64LL * 64 * 64, /*is_complex=*/true,
          gemm_precision::fp32};
}

TEST(Roofline, PeakTheoreticalSpeedupsMatchTable2) {
  EXPECT_NEAR(peak_theoretical_speedup(kSpec, compute_mode::float_to_bf16),
              16.0, 0.15);  // 419/26 = 16.1
  EXPECT_NEAR(peak_theoretical_speedup(kSpec, compute_mode::float_to_bf16x2),
              16.0 / 3.0, 0.1);
  EXPECT_NEAR(peak_theoretical_speedup(kSpec, compute_mode::float_to_bf16x3),
              8.0 / 3.0, 0.05);
  EXPECT_NEAR(peak_theoretical_speedup(kSpec, compute_mode::float_to_tf32),
              8.0, 0.05);
  EXPECT_DOUBLE_EQ(peak_theoretical_speedup(kSpec, compute_mode::complex_3m),
                   4.0 / 3.0);
  EXPECT_DOUBLE_EQ(peak_theoretical_speedup(kSpec, compute_mode::standard),
                   1.0);
}

TEST(Roofline, Table6MaxBf16SpeedupAnchor) {
  // Paper: "The maximum speedup we achieved was 3.91x when using the BF16
  // compute mode" at the largest Fig 3b size (Norb = 4096).
  const double speedup = model_speedup_vs_fp32(
      kSpec, kCal, remap_shape(4096), compute_mode::float_to_bf16);
  EXPECT_NEAR(speedup, 3.91, 0.25);
}

TEST(Roofline, ObservedWellBelowTheoretical) {
  // "Actual speedups are more modest, limited by power and bandwidth
  // considerations" — observed BF16 must be far below the 16x peak.
  const double speedup = model_speedup_vs_fp32(
      kSpec, kCal, remap_shape(4096), compute_mode::float_to_bf16);
  EXPECT_LT(speedup, 8.0);
  EXPECT_GT(speedup, 2.0);
}

TEST(Roofline, Fig3bSpeedupGrowsWithOrbitalCount) {
  // "The case with the smallest number of orbitals provides the least
  // degree of improvement while the largest case translates into the
  // greatest speedup."
  double previous = 0.0;
  for (blas::blas_int norb : {256, 1024, 2048, 4096}) {
    const double s = model_speedup_vs_fp32(kSpec, kCal, remap_shape(norb),
                                           compute_mode::float_to_bf16);
    EXPECT_GT(s, previous) << "norb=" << norb;
    previous = s;
  }
}

TEST(Roofline, ModeOrderingAtLargeSize) {
  // Artifact ordering of BLAS speed: BF16 > TF32 > BF16x2 > BF16x3 and 3M
  // modest but > 1.
  const gemm_shape shape = remap_shape(4096);
  const double bf16 =
      model_speedup_vs_fp32(kSpec, kCal, shape, compute_mode::float_to_bf16);
  const double tf32 =
      model_speedup_vs_fp32(kSpec, kCal, shape, compute_mode::float_to_tf32);
  const double x2 = model_speedup_vs_fp32(kSpec, kCal, shape,
                                          compute_mode::float_to_bf16x2);
  const double x3 = model_speedup_vs_fp32(kSpec, kCal, shape,
                                          compute_mode::float_to_bf16x3);
  const double m3 =
      model_speedup_vs_fp32(kSpec, kCal, shape, compute_mode::complex_3m);
  EXPECT_GT(bf16, tf32);
  EXPECT_GT(tf32, x2);
  EXPECT_GT(x2, x3);
  EXPECT_GT(x3, 1.0);
  EXPECT_GT(m3, 1.0);
  EXPECT_LT(m3, 4.0 / 3.0);  // below its own theoretical peak
}

TEST(Roofline, StandardModeSpeedupIsUnity) {
  EXPECT_DOUBLE_EQ(model_speedup_vs_fp32(kSpec, kCal, remap_shape(1024),
                                         compute_mode::standard),
                   1.0);
}

TEST(Roofline, Fp64DataIgnoresComputeModes) {
  gemm_shape shape = remap_shape(1024);
  shape.precision = gemm_precision::fp64;
  const double std_time =
      model_gemm(kSpec, kCal, shape, compute_mode::standard).total_s();
  const double bf16_time =
      model_gemm(kSpec, kCal, shape, compute_mode::float_to_bf16).total_s();
  EXPECT_DOUBLE_EQ(std_time, bf16_time);
}

TEST(Roofline, TimeBreakdownIsPositiveAndAdditive) {
  const auto t = model_gemm(kSpec, kCal, remap_shape(1024),
                            compute_mode::float_to_bf16);
  EXPECT_GT(t.launch_s, 0.0);
  EXPECT_GT(t.memory_s, 0.0);
  EXPECT_GT(t.compute_s, 0.0);
  EXPECT_DOUBLE_EQ(t.total_s(), t.launch_s + t.memory_s + t.compute_s);
}

TEST(Roofline, EmptyShapeCostsOnlyLaunch) {
  const auto t = model_gemm(kSpec, kCal, gemm_shape{0, 0, 0, true},
                            compute_mode::standard);
  EXPECT_DOUBLE_EQ(t.total_s(), kCal.kernel_launch_s);
}

TEST(Roofline, TimeMonotoneInEveryDimension) {
  const gemm_shape base{64, 64, 4096, true, gemm_precision::fp32};
  const double t0 =
      model_gemm(kSpec, kCal, base, compute_mode::standard).total_s();
  for (int dim = 0; dim < 3; ++dim) {
    gemm_shape bigger = base;
    if (dim == 0) bigger.m *= 2;
    if (dim == 1) bigger.n *= 2;
    if (dim == 2) bigger.k *= 2;
    EXPECT_GT(model_gemm(kSpec, kCal, bigger, compute_mode::standard)
                  .total_s(),
              t0);
  }
}

TEST(Roofline, Complex3mReducesComputeButAddsTraffic) {
  const gemm_shape shape{1024, 1024, 262144, true, gemm_precision::fp32};
  const auto std_t = model_gemm(kSpec, kCal, shape, compute_mode::standard);
  const auto m3_t = model_gemm(kSpec, kCal, shape, compute_mode::complex_3m);
  EXPECT_NEAR(m3_t.compute_s / std_t.compute_s, 0.75, 1e-9);
  EXPECT_GT(m3_t.memory_s, std_t.memory_s);
}

}  // namespace
}  // namespace dcmesh::xehpc
