// Tests for libdcmesh_intercept.so, the LD_PRELOAD interposition shim.
//
// The shim is examined the way its consumers meet it: dlopen'd as a
// foreign shared object (never linked), its symbols resolved by name and
// by version node, and finally exercised end to end by re-running the
// intercept_demo binary under LD_PRELOAD in a subprocess.
//
// ctest passes the artifact locations through the environment:
//   DCMESH_TEST_SHIM — absolute path to libdcmesh_intercept.so
//   DCMESH_TEST_DEMO — absolute path to the intercept_demo executable
//
// NOTE on dlopen'd state: this test binary links the engine statically,
// and the shim carries its OWN statically linked copy.  Introspection of
// shim-routed calls (dcmesh_last_call_site etc.) must therefore go
// through function pointers resolved from the shim handle — the test's
// own dcmesh_* symbols observe a different, untouched engine instance.

#include <gtest/gtest.h>

#include <dlfcn.h>
#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

const char* shim_path() {
  const char* p = std::getenv("DCMESH_TEST_SHIM");
  return p != nullptr ? p : "";
}

const char* demo_path() {
  const char* p = std::getenv("DCMESH_TEST_DEMO");
  return p != nullptr ? p : "";
}

/// dlopen the shim once for the whole suite (RTLD_LOCAL so its symbols
/// never shadow the test's own engine).
void* shim_handle() {
  static void* handle = [] {
    void* h = dlopen(shim_path(), RTLD_NOW | RTLD_LOCAL);
    if (h == nullptr) {
      std::fprintf(stderr, "dlopen(%s): %s\n", shim_path(), dlerror());
    }
    return h;
  }();
  return handle;
}

using sgemm_fn = void (*)(int, int, int, int, int, int, float,
                          const float*, int, const float*, int, float,
                          float*, int);
using dtrsm_fn = void (*)(int, int, int, int, int, int, int, double,
                          const double*, int, double*, int);
using dsyrk_fn = void (*)(int, int, int, int, int, double, const double*,
                          int, double, double*, int);
using dgemv_fn = void (*)(int, int, int, int, double, const double*, int,
                          const double*, int, double, double*, int);
using dgemv_f77_fn = void (*)(const char*, const int*, const int*,
                              const double*, const double*, const int*,
                              const double*, const int*, const double*,
                              double*, const int*);
using last_site_fn = int (*)(char*, unsigned long);
using call_count_fn = unsigned long long (*)(void);
using str_fn = const char* (*)(void);
using int_fn = int (*)(void);

template <typename Fn>
Fn shim_sym(const char* name) {
  return reinterpret_cast<Fn>(dlsym(shim_handle(), name));
}

/// Run a shell command, capture combined stdout+stderr and exit status.
struct run_result {
  int status = -1;
  std::string output;
};

run_result run(const std::string& cmd) {
  run_result r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf;
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) {
    r.output += buf.data();
  }
  const int rc = pclose(pipe);
  r.status = (rc >= 0 && WIFEXITED(rc)) ? WEXITSTATUS(rc) : -1;
  return r;
}

std::string slurp(const std::string& path) {
  std::string text;
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return text;
  std::array<char, 4096> buf;
  size_t got;
  while ((got = std::fread(buf.data(), 1, buf.size(), f)) > 0) {
    text.append(buf.data(), got);
  }
  std::fclose(f);
  return text;
}

// Two PHYSICALLY distinct call sites into the shim's cblas_sgemm, kept
// noinline so each has its own return address.  A 1x1x1 GEMM keeps the
// engine work negligible.
__attribute__((noinline)) void poke_site_a(sgemm_fn gemm) {
  float a = 1.0f, b = 2.0f, c = 0.0f;
  gemm(102, 111, 111, 1, 1, 1, 1.0f, &a, 1, &b, 1, 0.0f, &c, 1);
  ASSERT_FLOAT_EQ(c, 2.0f);
}

__attribute__((noinline)) void poke_site_b(sgemm_fn gemm) {
  float a = 3.0f, b = 5.0f, c = 0.0f;
  gemm(102, 111, 111, 1, 1, 1, 1.0f, &a, 1, &b, 1, 0.0f, &c, 1);
  ASSERT_FLOAT_EQ(c, 15.0f);
}

std::string shim_last_site() {
  auto last_site = shim_sym<last_site_fn>("dcmesh_last_call_site");
  char buf[256] = {0};
  const int n = last_site(buf, sizeof buf);
  EXPECT_GE(n, 0);
  return std::string(buf);
}

}  // namespace

TEST(Intercept, ShimLoadsAndExportsEveryPublicSymbol) {
  ASSERT_NE(shim_handle(), nullptr) << dlerror();
  const char* names[] = {
      // interposed BLAS
      "cblas_sgemm", "cblas_dgemm", "cblas_cgemm", "cblas_zgemm",
      "cblas_sgemm_batch_strided", "cblas_dgemm_batch_strided",
      "cblas_cgemm_batch_strided", "cblas_zgemm_batch_strided",
      "sgemm_", "dgemm_", "cgemm_", "zgemm_",
      // interposed BLAS added in v1.1
      "cblas_strsm", "cblas_dtrsm", "cblas_ssyrk", "cblas_dsyrk",
      // interposed BLAS added in v1.2
      "cblas_sgemv", "cblas_dgemv", "sgemv_", "dgemv_",
      // public C API re-exported through the shim
      "dcmesh_api_version", "dcmesh_api_version_string",
      "dcmesh_last_error", "dcmesh_gemm", "dcmesh_gemm_batch_strided",
      "dcmesh_gemm_desc_create", "dcmesh_gemm_desc_destroy",
      "dcmesh_gemm_desc_set_layout", "dcmesh_gemm_desc_set_transpose",
      "dcmesh_gemm_desc_set_shape", "dcmesh_gemm_desc_set_scalars",
      "dcmesh_gemm_desc_set_operands", "dcmesh_gemm_desc_set_site",
      "dcmesh_gemm_desc_set_mode", "dcmesh_gemm_execute",
      "dcmesh_set_policy", "dcmesh_set_compute_mode",
      "dcmesh_set_num_threads", "dcmesh_install_autotuner",
      "dcmesh_call_count", "dcmesh_last_call_site", "dcmesh_last_call_mode",
      "dcmesh_metrics_report",
      // shim introspection
      "dcmesh_intercept_site_mode", "dcmesh_intercept_autotune",
      "dcmesh_intercept_chain",
  };
  for (const char* name : names) {
    EXPECT_NE(dlsym(shim_handle(), name), nullptr) << name;
  }
}

TEST(Intercept, SymbolsCarryTheVersionNode) {
  ASSERT_NE(shim_handle(), nullptr);
  // dlvsym resolves only when the symbol is tagged with the exact
  // version — proof the version script is in force.
  EXPECT_NE(dlvsym(shim_handle(), "cblas_sgemm", "DCMESH_1.0"), nullptr);
  EXPECT_NE(dlvsym(shim_handle(), "dgemm_", "DCMESH_1.0"), nullptr);
  EXPECT_NE(dlvsym(shim_handle(), "dcmesh_gemm", "DCMESH_1.0"), nullptr);
  EXPECT_EQ(dlvsym(shim_handle(), "cblas_sgemm", "DCMESH_9.9"), nullptr);
  // The v1.1 additions live in their own node: they resolve at 1.1, not
  // at 1.0 — and the original set stays pinned to 1.0.
  EXPECT_NE(dlvsym(shim_handle(), "cblas_strsm", "DCMESH_1.1"), nullptr);
  EXPECT_NE(dlvsym(shim_handle(), "cblas_dsyrk", "DCMESH_1.1"), nullptr);
  EXPECT_EQ(dlvsym(shim_handle(), "cblas_strsm", "DCMESH_1.0"), nullptr);
  EXPECT_EQ(dlvsym(shim_handle(), "cblas_sgemm", "DCMESH_1.1"), nullptr);
  // And the v1.2 gemv surface in ITS own node, invisible at 1.1.
  EXPECT_NE(dlvsym(shim_handle(), "cblas_sgemv", "DCMESH_1.2"), nullptr);
  EXPECT_NE(dlvsym(shim_handle(), "dgemv_", "DCMESH_1.2"), nullptr);
  EXPECT_EQ(dlvsym(shim_handle(), "cblas_sgemv", "DCMESH_1.1"), nullptr);
  EXPECT_EQ(dlvsym(shim_handle(), "cblas_strsm", "DCMESH_1.2"), nullptr);
}

TEST(Intercept, TrsmAndSyrkRouteThroughTheEngine) {
  ASSERT_NE(shim_handle(), nullptr);
  auto trsm = shim_sym<dtrsm_fn>("cblas_dtrsm");
  auto syrk = shim_sym<dsyrk_fn>("cblas_dsyrk");
  ASSERT_NE(trsm, nullptr);
  ASSERT_NE(syrk, nullptr);

  // Solve L X = B with L = [[2,0],[1,4]], X = [[1,2],[3,4]].
  const double a_col[] = {2.0, 1.0, 0.0, 4.0};   // L, col-major
  double b_col[] = {2.0, 13.0, 4.0, 18.0};       // B = L X, col-major
  trsm(102, 141, 122, 111, 131, 2, 2, 1.0, a_col, 2, b_col, 2);
  EXPECT_DOUBLE_EQ(b_col[0], 1.0);
  EXPECT_DOUBLE_EQ(b_col[1], 3.0);
  EXPECT_DOUBLE_EQ(b_col[2], 2.0);
  EXPECT_DOUBLE_EQ(b_col[3], 4.0);

  // The same solve through the row-major entry (flips side/uplo and
  // swaps m/n internally) must give the same X.
  const double a_row[] = {2.0, 0.0, 1.0, 4.0};   // L, row-major
  double b_row[] = {2.0, 4.0, 13.0, 18.0};       // B, row-major
  trsm(101, 141, 122, 111, 131, 2, 2, 1.0, a_row, 2, b_row, 2);
  EXPECT_DOUBLE_EQ(b_row[0], 1.0);
  EXPECT_DOUBLE_EQ(b_row[1], 2.0);
  EXPECT_DOUBLE_EQ(b_row[2], 3.0);
  EXPECT_DOUBLE_EQ(b_row[3], 4.0);

  // C = A A^T with A = [1,2]^T: C = [[1,2],[2,4]], written full.
  const double a_vec[] = {1.0, 2.0};
  double c_col[] = {0.0, 0.0, 0.0, 0.0};
  syrk(102, 121, 111, 2, 1, 1.0, a_vec, 2, 0.0, c_col, 2);
  EXPECT_DOUBLE_EQ(c_col[0], 1.0);
  EXPECT_DOUBLE_EQ(c_col[1], 2.0);
  EXPECT_DOUBLE_EQ(c_col[2], 2.0);
  EXPECT_DOUBLE_EQ(c_col[3], 4.0);

  double c_row[] = {0.0, 0.0, 0.0, 0.0};
  syrk(101, 121, 111, 2, 1, 1.0, a_vec, 1, 0.0, c_row, 2);
  EXPECT_DOUBLE_EQ(c_row[0], 1.0);
  EXPECT_DOUBLE_EQ(c_row[1], 2.0);
  EXPECT_DOUBLE_EQ(c_row[2], 2.0);
  EXPECT_DOUBLE_EQ(c_row[3], 4.0);

  // Malformed arguments are dropped xerbla-style: B stays untouched.
  double b_bad[] = {7.0, 7.0, 7.0, 7.0};
  trsm(102, 999, 122, 111, 131, 2, 2, 1.0, a_col, 2, b_bad, 2);
  EXPECT_DOUBLE_EQ(b_bad[0], 7.0);
  EXPECT_DOUBLE_EQ(b_bad[3], 7.0);
}

TEST(Intercept, GemvRoutesThroughTheEngine) {
  ASSERT_NE(shim_handle(), nullptr);
  auto gemv = shim_sym<dgemv_fn>("cblas_dgemv");
  auto gemv_f = shim_sym<dgemv_f77_fn>("dgemv_");
  ASSERT_NE(gemv, nullptr);
  ASSERT_NE(gemv_f, nullptr);

  // y = A x with A = [[1,2],[3,4]], x = [1,1]: y = [3,7].
  const double a_col[] = {1.0, 3.0, 2.0, 4.0};  // A, col-major
  const double x[] = {1.0, 1.0};
  double y_col[] = {0.0, 0.0};
  gemv(102, 111, 2, 2, 1.0, a_col, 2, x, 1, 0.0, y_col, 1);
  EXPECT_DOUBLE_EQ(y_col[0], 3.0);
  EXPECT_DOUBLE_EQ(y_col[1], 7.0);

  // The same product through the row-major entry (swaps m/n and flips
  // the transpose internally) must agree.
  const double a_row[] = {1.0, 2.0, 3.0, 4.0};  // A, row-major
  double y_row[] = {0.0, 0.0};
  gemv(101, 111, 2, 2, 1.0, a_row, 2, x, 1, 0.0, y_row, 1);
  EXPECT_DOUBLE_EQ(y_row[0], 3.0);
  EXPECT_DOUBLE_EQ(y_row[1], 7.0);

  // ConjTrans on the real entry behaves as Trans: y = A^T x = [4,6].
  double y_ct[] = {0.0, 0.0};
  gemv(102, 113, 2, 2, 1.0, a_col, 2, x, 1, 0.0, y_ct, 1);
  EXPECT_DOUBLE_EQ(y_ct[0], 4.0);
  EXPECT_DOUBLE_EQ(y_ct[1], 6.0);

  // Fortran spelling: column-major by definition, args by reference.
  const int two = 2, one = 1;
  const double alpha = 1.0, beta = 0.0;
  double y_f[] = {0.0, 0.0};
  gemv_f("N", &two, &two, &alpha, a_col, &two, x, &one, &beta, y_f, &one);
  EXPECT_DOUBLE_EQ(y_f[0], 3.0);
  EXPECT_DOUBLE_EQ(y_f[1], 7.0);

  // Malformed arguments are dropped xerbla-style: y stays untouched.
  double y_bad[] = {7.0, 7.0};
  gemv(102, 999, 2, 2, 1.0, a_col, 2, x, 1, 0.0, y_bad, 1);
  EXPECT_DOUBLE_EQ(y_bad[0], 7.0);
  EXPECT_DOUBLE_EQ(y_bad[1], 7.0);
}

TEST(Intercept, InternalEngineSymbolsStayHidden) {
  ASSERT_NE(shim_handle(), nullptr);
  // A C++ engine symbol that IS present in the shim's static code but
  // must not leak through `local: *`.
  EXPECT_EQ(dlsym(shim_handle(), "_ZN6dcmesh4blas14clear_call_logEv"),
            nullptr);
  // Level-3 names the shim does not (yet) interpose must not resolve
  // either — an application's own ssyrk_ has to reach the system BLAS.
  // (cblas_ssyrk graduated to an export in v1.1; the Fortran spellings
  // and the triangular multiply are still pass-through.)
  EXPECT_EQ(dlsym(shim_handle(), "ssyrk_"), nullptr);
  EXPECT_EQ(dlsym(shim_handle(), "strsm_"), nullptr);
  EXPECT_EQ(dlsym(shim_handle(), "cblas_strmm"), nullptr);
}

TEST(Intercept, ApiVersionThroughTheShim) {
  ASSERT_NE(shim_handle(), nullptr);
  auto version = shim_sym<int_fn>("dcmesh_api_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version(), 1000);  // 1.0
}

TEST(Intercept, SiteIdentityStableAndDistinct) {
  ASSERT_NE(shim_handle(), nullptr);
  auto gemm = shim_sym<sgemm_fn>("cblas_sgemm");
  ASSERT_NE(gemm, nullptr);

  poke_site_a(gemm);
  const std::string site_a1 = shim_last_site();
  poke_site_b(gemm);
  const std::string site_b = shim_last_site();
  poke_site_a(gemm);
  const std::string site_a2 = shim_last_site();

  EXPECT_EQ(site_a1.rfind("intercept/", 0), 0u) << site_a1;
  EXPECT_EQ(site_b.rfind("intercept/", 0), 0u) << site_b;
  // Repeated calls from the same physical site: identical tag (this is
  // what keeps wisdom warm).  Distinct sites: distinct tags.
  EXPECT_EQ(site_a1, site_a2);
  EXPECT_NE(site_a1, site_b);
  // Default addr mode encodes a module-relative offset.
  EXPECT_NE(site_a1.find("+0x"), std::string::npos) << site_a1;
}

TEST(Intercept, SingleSiteModeCollapsesAllSites) {
  ASSERT_NE(shim_handle(), nullptr);
  auto gemm = shim_sym<sgemm_fn>("cblas_sgemm");
  auto mode = shim_sym<str_fn>("dcmesh_intercept_site_mode");
  ASSERT_NE(gemm, nullptr);
  ASSERT_NE(mode, nullptr);

  ::setenv("DCMESH_INTERCEPT_SITE_MODE", "single", 1);
  EXPECT_STREQ(mode(), "single");
  poke_site_a(gemm);
  const std::string site_a = shim_last_site();
  poke_site_b(gemm);
  const std::string site_b = shim_last_site();
  EXPECT_EQ(site_a, "intercept/app");
  EXPECT_EQ(site_b, "intercept/app");
  ::unsetenv("DCMESH_INTERCEPT_SITE_MODE");
}

TEST(Intercept, SymbolSiteModeNamesTheCaller) {
  ASSERT_NE(shim_handle(), nullptr);
  auto gemm = shim_sym<sgemm_fn>("cblas_sgemm");
  ASSERT_NE(gemm, nullptr);

  ::setenv("DCMESH_INTERCEPT_SITE_MODE", "symbol", 1);
  poke_site_a(gemm);
  const std::string site = shim_last_site();
  ::unsetenv("DCMESH_INTERCEPT_SITE_MODE");
  EXPECT_EQ(site.rfind("intercept/", 0), 0u) << site;
  // The caller is a static function in this binary: with -rdynamic off,
  // dladdr may or may not find a name, but the tag must still be a
  // module-scoped identity, never empty and never the raw-pointer form
  // used when dladdr fails entirely.
  EXPECT_GT(site.size(), std::string("intercept/").size());
}

TEST(Intercept, MalformedEnvWarnsOnceAndFallsBack) {
  ASSERT_NE(shim_handle(), nullptr);
  auto mode = shim_sym<str_fn>("dcmesh_intercept_site_mode");
  auto autotune = shim_sym<int_fn>("dcmesh_intercept_autotune");
  ASSERT_NE(mode, nullptr);
  ASSERT_NE(autotune, nullptr);

  // Malformed values never throw and resolve to the documented default.
  ::setenv("DCMESH_INTERCEPT_SITE_MODE", "bogus-mode", 1);
  EXPECT_STREQ(mode(), "addr");
  EXPECT_STREQ(mode(), "addr");  // second read: cached, no second warning
  ::setenv("DCMESH_INTERCEPT_AUTOTUNE", "banana", 1);
  EXPECT_EQ(autotune(), 1);

  // Case-insensitive well-formed values are honored.
  ::setenv("DCMESH_INTERCEPT_SITE_MODE", "SYMBOL", 1);
  EXPECT_STREQ(mode(), "symbol");
  ::setenv("DCMESH_INTERCEPT_AUTOTUNE", "off", 1);
  EXPECT_EQ(autotune(), 0);

  // Empty string means "unset": defaults again.
  ::setenv("DCMESH_INTERCEPT_SITE_MODE", "", 1);
  EXPECT_STREQ(mode(), "addr");
  ::setenv("DCMESH_INTERCEPT_AUTOTUNE", "", 1);
  EXPECT_EQ(autotune(), 1);

  ::unsetenv("DCMESH_INTERCEPT_SITE_MODE");
  ::unsetenv("DCMESH_INTERCEPT_AUTOTUNE");
}

TEST(Intercept, ShimCallsLandInTheShimEngineOnly) {
  ASSERT_NE(shim_handle(), nullptr);
  auto gemm = shim_sym<sgemm_fn>("cblas_sgemm");
  auto count = shim_sym<call_count_fn>("dcmesh_call_count");
  ASSERT_NE(gemm, nullptr);
  ASSERT_NE(count, nullptr);

  const unsigned long long before = count();
  poke_site_a(gemm);
  EXPECT_EQ(count(), before + 1);
}

TEST(Intercept, ChainFlagParsesLikeEveryOtherSwitch) {
  ASSERT_NE(shim_handle(), nullptr);
  auto chain = shim_sym<int_fn>("dcmesh_intercept_chain");
  ASSERT_NE(chain, nullptr);

  // Default off — the opposite of autotune, because chaining silently
  // changes which BLAS executes.
  ::unsetenv("DCMESH_INTERCEPT_CHAIN");
  EXPECT_EQ(chain(), 0);
  ::setenv("DCMESH_INTERCEPT_CHAIN", "on", 1);
  EXPECT_EQ(chain(), 1);
  ::setenv("DCMESH_INTERCEPT_CHAIN", "banana", 1);
  EXPECT_EQ(chain(), 0);  // malformed: warn once, default off
  ::setenv("DCMESH_INTERCEPT_CHAIN", "", 1);
  EXPECT_EQ(chain(), 0);
  ::unsetenv("DCMESH_INTERCEPT_CHAIN");
}

TEST(Intercept, ChainWithoutNextBlasFallsBackToEngine) {
  ASSERT_NE(shim_handle(), nullptr);
  auto gemm = shim_sym<sgemm_fn>("cblas_sgemm");
  auto count = shim_sym<call_count_fn>("dcmesh_call_count");
  ASSERT_NE(gemm, nullptr);
  ASSERT_NE(count, nullptr);

  // The shim was dlopen'd LAST, so dlsym(RTLD_NEXT, "cblas_sgemm") from
  // inside it finds nothing: the chain must fall back to the engine and
  // the call must still compute correctly.
  ::setenv("DCMESH_INTERCEPT_CHAIN", "1", 1);
  const unsigned long long before = count();
  poke_site_a(gemm);
  EXPECT_EQ(count(), before + 1);
  ::unsetenv("DCMESH_INTERCEPT_CHAIN");
}

// ---------------------------------------------------------------------
// End-to-end: LD_PRELOAD the shim under the demo binary, which links
// only the naive stand-in BLAS and knows nothing about dcmesh.

TEST(InterceptEndToEnd, PreloadRoutesDemoThroughEngine) {
  ASSERT_STRNE(shim_path(), "");
  ASSERT_STRNE(demo_path(), "");
  const std::string wisdom =
      ::testing::TempDir() + "/intercept_wisdom.jsonl";
  const std::string trace = ::testing::TempDir() + "/intercept_trace.json";
  std::remove(wisdom.c_str());
  std::remove(trace.c_str());

  const std::string base = "LD_PRELOAD='" + std::string(shim_path()) +
                           "' MKL_VERBOSE=1 DCMESH_TUNE_CACHE='" + wisdom +
                           "' DCMESH_TRACE_JSON='" + trace +
                           "' DCMESH_BLAS_POLICY='intercept/*=auto' '" +
                           demo_path() + "'";

  // Cold: accuracy checks pass, verbose records carry intercept/ sites,
  // AUTO rules calibrate, wisdom lands on disk.
  const run_result cold = run(base);
  EXPECT_EQ(cold.status, 0) << cold.output;
  EXPECT_NE(cold.output.find("intercept_demo: status=ok"),
            std::string::npos) << cold.output;
  EXPECT_NE(cold.output.find("site:intercept/"), std::string::npos)
      << cold.output;
  EXPECT_NE(cold.output.find("tune/calibrate"), std::string::npos)
      << cold.output;
  const std::string cache = slurp(wisdom);
  EXPECT_NE(cache.find("dcmesh_wisdom"), std::string::npos) << cache;
  EXPECT_NE(cache.find("intercept/"), std::string::npos) << cache;
  // The tracer's atexit flush fires inside the preloaded engine too:
  // Chrome-trace spans named after the interposed sites.
  const std::string spans = slurp(trace);
  EXPECT_NE(spans.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(spans.find("intercept/"), std::string::npos);

  // Warm: same command, zero recalibration, answers still good.
  const run_result warm = run(base);
  EXPECT_EQ(warm.status, 0) << warm.output;
  EXPECT_NE(warm.output.find("intercept_demo: status=ok"),
            std::string::npos) << warm.output;
  EXPECT_EQ(warm.output.find("tune/calibrate"), std::string::npos)
      << warm.output;
  EXPECT_NE(warm.output.find("tune:cached"), std::string::npos)
      << warm.output;
}

TEST(InterceptEndToEnd, ChainPreloadHandsCallsBackToTheRealBlas) {
  ASSERT_STRNE(shim_path(), "");
  ASSERT_STRNE(demo_path(), "");
  const std::string wisdom =
      ::testing::TempDir() + "/intercept_chain_wisdom.jsonl";
  std::remove(wisdom.c_str());

  // DCMESH_INTERCEPT_CHAIN=1: the preloaded shim forwards every GEMM to
  // the next cblas_* in the link chain — the demo's own stand-in BLAS —
  // so the dcmesh engine must see NOTHING: no verbose records, no
  // calibration, no wisdom file, yet the demo's answers stay correct.
  const run_result chained = run(
      "LD_PRELOAD='" + std::string(shim_path()) +
      "' MKL_VERBOSE=1 DCMESH_INTERCEPT_CHAIN=1 DCMESH_TUNE_CACHE='" +
      wisdom + "' DCMESH_BLAS_POLICY='intercept/*=auto' '" + demo_path() +
      "'");
  EXPECT_EQ(chained.status, 0) << chained.output;
  EXPECT_NE(chained.output.find("intercept_demo: status=ok"),
            std::string::npos) << chained.output;
  EXPECT_EQ(chained.output.find("MKL_VERBOSE"), std::string::npos)
      << chained.output;
  EXPECT_EQ(chained.output.find("tune/calibrate"), std::string::npos)
      << chained.output;
  EXPECT_EQ(slurp(wisdom), "") << "chained run must not write wisdom";
}

TEST(InterceptEndToEnd, DemoStandsAloneWithoutPreload) {
  ASSERT_STRNE(demo_path(), "");
  // Sanity of the harness itself: the demo must also pass on the naive
  // stand-in BLAS, and must NOT emit dcmesh verbose records.
  const run_result plain =
      run("MKL_VERBOSE=1 '" + std::string(demo_path()) + "'");
  EXPECT_EQ(plain.status, 0) << plain.output;
  EXPECT_NE(plain.output.find("intercept_demo: status=ok"),
            std::string::npos) << plain.output;
  EXPECT_EQ(plain.output.find("MKL_VERBOSE"), std::string::npos)
      << plain.output;
}
