// Unit tests for aligned buffers and column-major matrices/views.

#include "dcmesh/common/matrix.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <utility>

namespace dcmesh {
namespace {

TEST(AlignedBuffer, AlignmentAndZeroInit) {
  aligned_buffer<double> buf(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes,
            0u);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], 0.0);
  }
}

TEST(AlignedBuffer, MoveSemantics) {
  aligned_buffer<int> a(10);
  a[3] = 42;
  aligned_buffer<int> b(std::move(a));
  EXPECT_EQ(b[3], 42);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move) — spec'd
  EXPECT_EQ(a.data(), nullptr);

  aligned_buffer<int> c;
  c = std::move(b);
  EXPECT_EQ(c[3], 42);
}

TEST(AlignedBuffer, EmptyIsValid) {
  aligned_buffer<float> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.begin(), buf.end());
  aligned_buffer<float> sized(0);
  EXPECT_TRUE(sized.empty());
}

TEST(AlignedBuffer, SpanCoversAll) {
  aligned_buffer<int> buf(7);
  auto s = buf.span();
  EXPECT_EQ(s.size(), 7u);
  EXPECT_EQ(s.data(), buf.data());
}

TEST(Matrix, ColumnMajorLayout) {
  matrix<double> m(3, 2);
  m(0, 0) = 1;
  m(2, 0) = 3;
  m(0, 1) = 4;
  // Column-major: element (r, c) at data[r + c*rows].
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[2], 3);
  EXPECT_EQ(m.data()[3], 4);
  EXPECT_EQ(m.ld(), 3u);
}

TEST(Matrix, ViewsAliasStorage) {
  matrix<float> m(4, 4);
  auto v = m.view();
  v(1, 2) = 9.0f;
  EXPECT_EQ(m(1, 2), 9.0f);
  const auto& cm = m;
  const_matrix_view<float> cv = cm.view();
  EXPECT_EQ(cv(1, 2), 9.0f);
}

TEST(Matrix, MutableViewConvertsToConst) {
  matrix<double> m(2, 2);
  m(0, 1) = 5.0;
  matrix_view<double> v = m.view();
  const_matrix_view<double> cv = v;  // implicit conversion
  EXPECT_EQ(cv(0, 1), 5.0);
  EXPECT_EQ(cv.ld, v.ld);
}

TEST(Matrix, ColPointers) {
  matrix<int> m(3, 3);
  m(0, 2) = 7;
  EXPECT_EQ(m.view().col(2)[0], 7);
}

TEST(Matrix, ComplexElements) {
  matrix<cfloat> m(2, 2);
  m(0, 0) = {1.0f, -2.0f};
  EXPECT_EQ(m(0, 0).imag(), -2.0f);
  static_assert(std::is_same_v<cdouble, std::complex<double>>);
}

TEST(Matrix, MoveLeavesSourceEmpty) {
  matrix<double> a(5, 5);
  a(4, 4) = 1.5;
  matrix<double> b = std::move(a);
  EXPECT_EQ(b(4, 4), 1.5);
  EXPECT_EQ(b.rows(), 5u);
}

}  // namespace
}  // namespace dcmesh
