// Unit tests for the BF16 value type and rounding (Table IV's 8/7 format).

#include "dcmesh/common/bf16.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "dcmesh/common/rng.hpp"

namespace dcmesh {
namespace {

TEST(Bf16, ExactValuesRoundTrip) {
  // Values with <= 7 mantissa bits are exactly representable.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -3.5f, 1.25f, 255.0f,
                  0.0078125f, -65536.0f}) {
    EXPECT_EQ(round_to_bf16(v), v) << v;
    EXPECT_EQ(bf16(v).to_float(), v) << v;
  }
}

TEST(Bf16, FormatMetadata) {
  EXPECT_EQ(bf16::exponent_bits, 8);
  EXPECT_EQ(bf16::mantissa_bits, 7);
  EXPECT_EQ(sizeof(bf16), 2u);
}

TEST(Bf16, RoundToNearest) {
  // 1 + 2^-8 is exactly between 1.0 and 1 + 2^-7: ties to even -> 1.0.
  EXPECT_EQ(round_to_bf16(1.0f + 0x1.0p-8f), 1.0f);
  // Just above the tie rounds up.
  EXPECT_EQ(round_to_bf16(1.0f + 0x1.2p-8f), 1.0f + 0x1.0p-7f);
  // 1 + 3*2^-8 is between 1+2^-7 and 1+2^-6; tie -> even (1 + 2^-6).
  EXPECT_EQ(round_to_bf16(1.0f + 0x3.0p-8f), 1.0f + 0x1.0p-6f);
}

TEST(Bf16, RelativeErrorBound) {
  // Paper Sec. V-B: rounding to n mantissa bits induces at most 2^-(n+1)
  // relative error (here n = 7 -> 2^-8).
  xoshiro256 rng(99);
  for (int i = 0; i < 20000; ++i) {
    const float x = static_cast<float>(rng.uniform(-1e6, 1e6));
    if (x == 0.0f) continue;
    const float r = round_to_bf16(x);
    EXPECT_LE(std::abs(r - x) / std::abs(x), 0x1.0p-8f * 1.0000001f) << x;
  }
}

TEST(Bf16, SpecialValues) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(round_to_bf16(inf), inf);
  EXPECT_EQ(round_to_bf16(-inf), -inf);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(round_to_bf16(nan)));
  // Signalling-ish NaN payload must stay NaN, not become Inf.
  const float weird_nan = std::bit_cast<float>(0x7f800001u);
  EXPECT_TRUE(std::isnan(round_to_bf16(weird_nan)));
  EXPECT_EQ(round_to_bf16(-0.0f), -0.0f);
  EXPECT_TRUE(std::signbit(round_to_bf16(-0.0f)));
}

TEST(Bf16, LargeValuesOverflowToInfinity) {
  // Max finite BF16 is 0x7f7f = 3.3895e38; values rounding past it
  // overflow to +Inf.
  const float max_bf16 = bf16::from_bits(0x7f7f).to_float();
  EXPECT_TRUE(std::isfinite(max_bf16));
  const float above = std::nextafter(std::numeric_limits<float>::max(), 0.f);
  EXPECT_TRUE(std::isinf(round_to_bf16(above)) ||
              round_to_bf16(above) == max_bf16);
  EXPECT_TRUE(std::isinf(
      round_to_bf16(std::numeric_limits<float>::max())));
}

TEST(Bf16, BitsAccessors) {
  const bf16 one(1.0f);
  EXPECT_EQ(one.bits(), 0x3f80);
  EXPECT_EQ(bf16::from_bits(0x3f80), one);
  EXPECT_EQ(bf16::from_bits(0xbf80).to_float(), -1.0f);
}

TEST(Bf16, IdempotentRounding) {
  xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float x = static_cast<float>(rng.uniform(-100, 100));
    const float once = round_to_bf16(x);
    EXPECT_EQ(round_to_bf16(once), once);
  }
}

// Parameterized sweep: splitting a value into BF16 components (as the
// BF16xN compute modes do) gains ~7-8 bits of accuracy per component.
class Bf16SplitAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(Bf16SplitAccuracy, ResidualShrinksPerComponent) {
  const int components = GetParam();
  xoshiro256 rng(42 + static_cast<unsigned>(components));
  double worst_rel = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const float x = static_cast<float>(rng.uniform(-1000, 1000));
    if (x == 0.0f) continue;
    float residual = x;
    float sum = 0.0f;
    for (int c = 0; c < components; ++c) {
      const float comp = round_to_bf16(residual);
      sum += comp;
      residual -= comp;
    }
    worst_rel = std::max(worst_rel,
                         static_cast<double>(std::abs(x - sum)) /
                             std::abs(x));
  }
  // Each component contributes ~8 bits: bound 2^-(8*components).
  const double bound = std::ldexp(1.0, -8 * components + 1);
  EXPECT_LE(worst_rel, bound) << "components=" << components;
}

INSTANTIATE_TEST_SUITE_P(Components, Bf16SplitAccuracy,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace dcmesh
