// Unit tests for the deviation/statistics helpers behind Figures 1-2.

#include "dcmesh/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dcmesh {
namespace {

TEST(RunningStats, BasicMoments) {
  running_stats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);  // sample variance
  EXPECT_NEAR(s.rms(), std::sqrt(11.0), 1e-12);
}

TEST(RunningStats, EmptyIsSafe) {
  running_stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.rms(), 0.0);
}

TEST(RunningStats, SingleValue) {
  running_stats s;
  s.add(-7.5);
  EXPECT_DOUBLE_EQ(s.mean(), -7.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Deviation, MaxAbs) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.1, 1.8, 3.0};
  EXPECT_NEAR(max_abs_deviation(a, b), 0.2, 1e-12);
}

TEST(Deviation, MaxRel) {
  const std::vector<double> a{10.0, 200.0};
  const std::vector<double> b{11.0, 202.0};
  EXPECT_NEAR(max_rel_deviation(a, b), 1.0 / 11.0, 1e-12);
}

TEST(Deviation, RelWithZeroReferenceUsesFloor) {
  const std::vector<double> a{1e-20};
  const std::vector<double> b{0.0};
  // floor 1e-30 would blow up; default floor keeps it finite.
  EXPECT_TRUE(std::isfinite(max_rel_deviation(a, b, 1e-10)));
}

TEST(Deviation, SeriesShape) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{0.5, 2.5, 3.0};
  const auto d = deviation_series(a, b);
  ASSERT_EQ(d.size(), 3u);  // min length
  EXPECT_DOUBLE_EQ(d[0], 0.5);
  EXPECT_DOUBLE_EQ(d[1], -0.5);
  EXPECT_DOUBLE_EQ(d[2], 0.0);
}

TEST(Deviation, Log10SeriesFloored) {
  const std::vector<double> a{1.0, 1.0};
  const std::vector<double> b{1.0, 1.001};
  const auto d = log10_deviation_series(a, b, 1e-16);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[0], -16.0);  // exact match -> floor
  EXPECT_NEAR(d[1], std::log10(0.001), 1e-9);
}

TEST(Deviation, MismatchedEmpty) {
  const std::vector<double> a;
  const std::vector<double> b{1.0};
  EXPECT_EQ(max_abs_deviation(a, b), 0.0);
  EXPECT_TRUE(deviation_series(a, b).empty());
}

}  // namespace
}  // namespace dcmesh
