// Unit tests for environment-variable helpers (the paper's control plane).

#include "dcmesh/common/env.hpp"

#include <gtest/gtest.h>

namespace dcmesh {
namespace {

TEST(Env, SetGetUnset) {
  env_set("DCMESH_TEST_VAR", "hello");
  const auto v = env_get("DCMESH_TEST_VAR");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "hello");
  env_unset("DCMESH_TEST_VAR");
  EXPECT_FALSE(env_get("DCMESH_TEST_VAR").has_value());
}

TEST(Env, EmptyValueReadsAsUnset) {
  env_set("DCMESH_TEST_EMPTY", "");
  EXPECT_FALSE(env_get("DCMESH_TEST_EMPTY").has_value());
  env_unset("DCMESH_TEST_EMPTY");
}

TEST(Env, IntParsing) {
  env_set("DCMESH_TEST_INT", "2");
  EXPECT_EQ(env_get_int("DCMESH_TEST_INT", 0), 2);
  env_set("DCMESH_TEST_INT", "-7");
  EXPECT_EQ(env_get_int("DCMESH_TEST_INT", 0), -7);
  env_set("DCMESH_TEST_INT", "not_a_number");
  EXPECT_EQ(env_get_int("DCMESH_TEST_INT", 42), 42);
  env_unset("DCMESH_TEST_INT");
  EXPECT_EQ(env_get_int("DCMESH_TEST_INT", 13), 13);
}

TEST(Env, ToUpper) {
  EXPECT_EQ(to_upper("float_to_bf16"), "FLOAT_TO_BF16");
  EXPECT_EQ(to_upper("Complex_3M"), "COMPLEX_3M");
  EXPECT_EQ(to_upper(""), "");
  EXPECT_EQ(to_upper("123abc!"), "123ABC!");
}

TEST(Env, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\nvalue\n"), "value");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no_trim"), "no_trim");
}

}  // namespace
}  // namespace dcmesh
