// Unit tests for TF32 and FP16 rounding plus the format-traits table
// (paper Table IV).

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "dcmesh/common/bf16.hpp"
#include "dcmesh/common/format_traits.hpp"
#include "dcmesh/common/fp16.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/common/tf32.hpp"

namespace dcmesh {
namespace {

TEST(Tf32, ExactValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -2.0f, 1.0009765625f /* 1+2^-10 */,
                  1025.0f /* 2^10*(1+2^-10) */}) {
    EXPECT_EQ(round_to_tf32(v), v) << v;
  }
}

TEST(Tf32, FormatMetadata) {
  EXPECT_EQ(tf32::exponent_bits, 8);
  EXPECT_EQ(tf32::mantissa_bits, 10);
}

TEST(Tf32, RelativeErrorBound) {
  xoshiro256 rng(11);
  for (int i = 0; i < 20000; ++i) {
    const float x = static_cast<float>(rng.uniform(-1e8, 1e8));
    if (x == 0.0f) continue;
    const float r = round_to_tf32(x);
    EXPECT_LE(std::abs(r - x) / std::abs(x), 0x1.0p-11f * 1.0000001f) << x;
  }
}

TEST(Tf32, MoreAccurateThanBf16) {
  // TF32 has 3 more mantissa bits than BF16 -> strictly tighter rounding.
  xoshiro256 rng(5);
  double tf32_worst = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const float x = static_cast<float>(rng.uniform(0.5, 2.0));
    tf32_worst = std::max(
        tf32_worst,
        static_cast<double>(std::abs(round_to_tf32(x) - x)) / x);
  }
  EXPECT_LT(tf32_worst, std::ldexp(1.0, -11) * 1.01);
}

TEST(Tf32, LowBitsAreZero) {
  xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float r = round_to_tf32(static_cast<float>(rng.uniform(-10, 10)));
    const auto bits = std::bit_cast<std::uint32_t>(r);
    EXPECT_EQ(bits & 0x1fffu, 0u);  // 13 low mantissa bits zeroed
  }
}

TEST(Fp16, FormatMetadata) {
  EXPECT_EQ(fp16::exponent_bits, 5);
  EXPECT_EQ(fp16::mantissa_bits, 10);
}

TEST(Fp16, ExactValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.5f, 65504.0f /* max fp16 */, 0.25f}) {
    EXPECT_EQ(round_to_fp16(v), v) << v;
  }
}

TEST(Fp16, OverflowsToInfinityBeyondMax) {
  EXPECT_TRUE(std::isinf(round_to_fp16(70000.0f)));
  EXPECT_TRUE(std::isinf(round_to_fp16(-70000.0f)));
  EXPECT_LT(round_to_fp16(-70000.0f), 0.0f);
}

TEST(Fp16, SubnormalsRepresented) {
  // Smallest subnormal FP16 is 2^-24.
  const float tiny = 0x1.0p-24f;
  EXPECT_EQ(round_to_fp16(tiny), tiny);
  // Half of it rounds to zero (ties-to-even at 2^-25).
  EXPECT_EQ(round_to_fp16(0x1.0p-26f), 0.0f);
}

TEST(Fp16, NormalRangeErrorBound) {
  xoshiro256 rng(17);
  for (int i = 0; i < 10000; ++i) {
    const float x = static_cast<float>(rng.uniform(0.001, 60000.0));
    const float r = round_to_fp16(x);
    EXPECT_LE(std::abs(r - x) / x, 0x1.0p-11f * 1.0000001f) << x;
  }
}

TEST(FormatTraits, Table4Contents) {
  // Paper Table IV: FP64 11/52, FP32 8/23, TF32 8/10, BF16 8/7.
  const auto table = table4_formats();
  ASSERT_EQ(table.size(), 4u);
  EXPECT_EQ(table[0].name, "FP64");
  EXPECT_EQ(table[0].exponent_bits, 11);
  EXPECT_EQ(table[0].mantissa_bits, 52);
  EXPECT_EQ(table[1].name, "FP32");
  EXPECT_EQ(table[1].exponent_bits, 8);
  EXPECT_EQ(table[1].mantissa_bits, 23);
  EXPECT_EQ(table[2].name, "TF32");
  EXPECT_EQ(table[2].exponent_bits, 8);
  EXPECT_EQ(table[2].mantissa_bits, 10);
  EXPECT_EQ(table[3].name, "BF16");
  EXPECT_EQ(table[3].exponent_bits, 8);
  EXPECT_EQ(table[3].mantissa_bits, 7);
}

TEST(FormatTraits, TF32SharesBf16ExponentAndFp16Mantissa) {
  // The paper's observation: "TF32 has the same number of mantissa bits as
  // FP16 but the same exponent range of BF16."
  EXPECT_EQ(tf32::exponent_bits, bf16::exponent_bits);
  EXPECT_EQ(tf32::mantissa_bits, fp16::mantissa_bits);
}

TEST(FormatTraits, EngineAssignments) {
  for (const auto& f : all_formats()) {
    if (f.name == "FP64" || f.name == "FP32") {
      EXPECT_EQ(f.peak_engine, engine_kind::vector) << f.name;
    } else {
      EXPECT_EQ(f.peak_engine, engine_kind::matrix) << f.name;
    }
  }
}

TEST(FormatTraits, HalfUlp) {
  EXPECT_DOUBLE_EQ(rounding_half_ulp(7), std::ldexp(1.0, -8));
  EXPECT_DOUBLE_EQ(rounding_half_ulp(10), std::ldexp(1.0, -11));
  EXPECT_DOUBLE_EQ(rounding_half_ulp(23), std::ldexp(1.0, -24));
}

}  // namespace
}  // namespace dcmesh
