// Unit tests for the deterministic RNG (reproducibility is load-bearing:
// the paper compares modes on "the exact same computations").

#include "dcmesh/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dcmesh {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformInUnitInterval) {
  xoshiro256 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  xoshiro256 rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Rng, NormalMoments) {
  xoshiro256 rng(9);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
    sum3 += x * x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
  EXPECT_NEAR(sum3 / n, 0.0, 0.06);  // symmetry
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<xoshiro256>);
  EXPECT_EQ(xoshiro256::min(), 0u);
  EXPECT_EQ(xoshiro256::max(), ~0ull);
}

TEST(Rng, ZeroSeedStillProducesEntropy) {
  xoshiro256 rng(0);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 16; ++i) values.push_back(rng());
  int distinct = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] != values[0]) ++distinct;
  }
  EXPECT_GE(distinct, 14);
}

}  // namespace
}  // namespace dcmesh
