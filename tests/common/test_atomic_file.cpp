// Tests for the crash-safe whole-file writer: content lands atomically,
// failures never clobber the existing file, and no temp litter survives.

#include "dcmesh/common/atomic_file.hpp"

#include <gtest/gtest.h>

#include <dirent.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

namespace dcmesh {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

bool dir_has_temp_litter(const std::string& dir, const std::string& stem) {
  // The writer names temps "<path>.tmp.<pid>.<n>"; any survivor with the
  // stem prefix and a ".tmp" infix means a failed cleanup.
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return false;
  bool found = false;
  while (dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.rfind(stem, 0) == 0 &&
        name.find(".tmp", stem.size()) != std::string::npos) {
      found = true;
      break;
    }
  }
  ::closedir(handle);
  return found;
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "dcmesh_atomic_file_test.txt";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(AtomicFileTest, WritesTheContent) {
  ASSERT_TRUE(atomic_write_file(path_, [](std::ostream& os) {
    os << "line one\nline two\n";
    return static_cast<bool>(os);
  }));
  EXPECT_EQ(slurp(path_), "line one\nline two\n");
  EXPECT_FALSE(dir_has_temp_litter(testing::TempDir(),
                                   "dcmesh_atomic_file_test.txt"));
}

TEST_F(AtomicFileTest, FailedWriterLeavesTheOldFileUntouched) {
  ASSERT_TRUE(atomic_write_file(path_, [](std::ostream& os) {
    os << "precious";
    return static_cast<bool>(os);
  }));

  EXPECT_FALSE(atomic_write_file(path_, [](std::ostream& os) {
    os << "half-writ";
    return false;  // simulated failure mid-save
  }));
  EXPECT_EQ(slurp(path_), "precious");
  EXPECT_FALSE(dir_has_temp_litter(testing::TempDir(),
                                   "dcmesh_atomic_file_test.txt"));
}

TEST_F(AtomicFileTest, FailedWriterCreatesNothingWhenTargetIsAbsent) {
  EXPECT_FALSE(atomic_write_file(path_, [](std::ostream&) {
    return false;
  }));
  std::ifstream probe(path_);
  EXPECT_FALSE(probe.good());
}

TEST_F(AtomicFileTest, ThrowingWriterCleansUpAndPropagates) {
  ASSERT_TRUE(atomic_write_file(path_, [](std::ostream& os) {
    os << "precious";
    return static_cast<bool>(os);
  }));
  EXPECT_THROW(
      (void)atomic_write_file(
          path_,
          [](std::ostream&) -> bool {
            throw std::runtime_error("boom");
          }),
      std::runtime_error);
  EXPECT_EQ(slurp(path_), "precious");
  EXPECT_FALSE(dir_has_temp_litter(testing::TempDir(),
                                   "dcmesh_atomic_file_test.txt"));
}

TEST_F(AtomicFileTest, EmptyPathFails) {
  EXPECT_FALSE(atomic_write_file("", [](std::ostream& os) {
    os << "x";
    return true;
  }));
}

}  // namespace
}  // namespace dcmesh
