// Tests for the power-spectrum helper (HHG analysis substrate).

#include "dcmesh/common/spectrum.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

namespace dcmesh {
namespace {

std::vector<double> sinusoid(std::size_t n, double dt, double omega,
                             double amplitude = 1.0, double offset = 0.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = offset + amplitude * std::sin(omega * static_cast<double>(i) * dt);
  }
  return x;
}

TEST(Spectrum, PureToneHasPeakAtItsBin) {
  const std::size_t n = 512;
  const double dt = 0.1;
  // Exactly bin 16: omega = 2 pi 16 / (n dt).
  const double omega = bin_angular_frequency(16, dt, n);
  const auto spec = power_spectrum(sinusoid(n, dt, omega), false);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < spec.size(); ++k) {
    if (spec[k] > spec[peak]) peak = k;
  }
  EXPECT_EQ(peak, 16u);
  // On-bin tone without window: energy concentrated in one bin.
  EXPECT_GT(spec[16], 100.0 * spec[15]);
}

TEST(Spectrum, NearestBinInverts) {
  const std::size_t n = 400;
  const double dt = 0.05;
  for (std::size_t k : {std::size_t{1}, std::size_t{7}, std::size_t{99}}) {
    EXPECT_EQ(nearest_bin(bin_angular_frequency(k, dt, n), dt, n), k);
  }
  EXPECT_EQ(nearest_bin(-1.0, dt, n), 0u);
  EXPECT_EQ(nearest_bin(1e9, dt, n), n / 2);
}

TEST(Spectrum, MeanRemovedBeforeTransform) {
  const auto spec = power_spectrum(std::vector<double>(128, 42.0), false);
  for (double v : spec) EXPECT_NEAR(v, 0.0, 1e-18);
}

TEST(Spectrum, HannWindowSuppressesLeakage) {
  // An off-bin tone leaks broadly without a window; Hann confines the
  // skirt several orders of magnitude below the peak a few bins away.
  const std::size_t n = 512;
  const double dt = 0.1;
  const double omega = bin_angular_frequency(16, dt, n) * 1.031;  // off-bin
  const auto raw = power_spectrum(sinusoid(n, dt, omega), false);
  const auto windowed = power_spectrum(sinusoid(n, dt, omega), true);
  const double raw_skirt = raw[40] / raw[16];
  const double win_skirt = windowed[40] / windowed[16];
  EXPECT_LT(win_skirt, raw_skirt * 0.1);
}

TEST(Spectrum, TwoTonesResolved) {
  const std::size_t n = 1024;
  const double dt = 0.05;
  const double w1 = bin_angular_frequency(20, dt, n);
  const double w2 = bin_angular_frequency(60, dt, n);
  auto x = sinusoid(n, dt, w1, 1.0);
  const auto second = sinusoid(n, dt, w2, 0.3);
  for (std::size_t i = 0; i < n; ++i) x[i] += second[i];
  const auto spec = power_spectrum(x, true);
  EXPECT_GT(spec[20], spec[30] * 50);
  EXPECT_GT(spec[60], spec[70] * 50);
  EXPECT_GT(spec[20], spec[60]);  // amplitude ordering preserved
}

TEST(Spectrum, EmptyAndTinyInputs) {
  EXPECT_TRUE(power_spectrum({}).empty());
  const std::vector<double> one{3.0};
  EXPECT_EQ(power_spectrum(one).size(), 1u);
}

}  // namespace
}  // namespace dcmesh
