// Tests for checkpoint/restart: continuation must be bit-exact.

#include "dcmesh/core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/core/presets.hpp"

namespace dcmesh::core {
namespace {

run_config small_config() {
  auto config = preset(paper_system::tiny);
  config.qd_steps_per_series = 8;
  config.series = 4;
  return config;
}

TEST(Checkpoint, BitExactContinuation) {
  blas::clear_compute_mode();
  // Uninterrupted run: 2 series, checkpoint, 2 more series.
  driver reference(small_config());
  reference.run_series();
  reference.run_series();

  std::stringstream stream;
  save_checkpoint(reference, stream);

  reference.run_series();
  reference.run_series();
  const auto tail_expected = reference.records();

  // Restored run continues from the checkpoint.
  driver restored = load_checkpoint(stream);
  EXPECT_EQ(restored.records().size(), 0u);
  EXPECT_DOUBLE_EQ(restored.time(), 16 * 0.02);
  restored.run_series();
  restored.run_series();
  const auto& tail = restored.records();
  ASSERT_EQ(tail.size(), 16u);

  // Compare with the last 16 records of the uninterrupted run: bit-exact.
  for (std::size_t i = 0; i < 16; ++i) {
    const auto& a = tail[i];
    const auto& b = tail_expected[16 + i];
    ASSERT_EQ(a.t, b.t) << i;
    ASSERT_EQ(a.ekin, b.ekin) << i;
    ASSERT_EQ(a.epot, b.epot) << i;
    ASSERT_EQ(a.nexc, b.nexc) << i;
    ASSERT_EQ(a.javg, b.javg) << i;
  }
}

TEST(Checkpoint, PreservesComputeModeSensitivity) {
  // A checkpoint written under FP32 continues identically under FP32;
  // continuing under BF16 diverges (the state is shared, the arithmetic
  // is not).
  blas::clear_compute_mode();
  driver sim(small_config());
  sim.run_series();
  std::stringstream stream;
  save_checkpoint(sim, stream);

  driver fp32 = load_checkpoint(stream);
  fp32.run_series();

  stream.clear();
  stream.seekg(0);
  driver bf16 = load_checkpoint(stream);
  {
    blas::scoped_compute_mode mode(blas::compute_mode::float_to_bf16);
    bf16.run_series();
  }
  ASSERT_EQ(fp32.records().size(), bf16.records().size());
  bool diverged = false;
  for (std::size_t i = 0; i < fp32.records().size(); ++i) {
    if (fp32.records()[i].ekin != bf16.records()[i].ekin) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Checkpoint, AtomStateRoundTrips) {
  driver sim(small_config());
  sim.run_series();
  std::stringstream stream;
  save_checkpoint(sim, stream);
  driver restored = load_checkpoint(stream);
  ASSERT_EQ(restored.atoms().size(), sim.atoms().size());
  for (std::size_t i = 0; i < sim.atoms().size(); ++i) {
    EXPECT_EQ(restored.atoms().atoms[i].position,
              sim.atoms().atoms[i].position);
    EXPECT_EQ(restored.atoms().atoms[i].velocity,
              sim.atoms().atoms[i].velocity);
    EXPECT_EQ(restored.atoms().atoms[i].force, sim.atoms().atoms[i].force);
  }
}

TEST(Checkpoint, RejectsCorruptStreams) {
  std::stringstream empty;
  EXPECT_THROW((void)load_checkpoint(empty), std::runtime_error);

  driver sim(small_config());
  std::stringstream stream;
  save_checkpoint(sim, stream);
  std::string bytes = stream.str();
  bytes[0] ^= 0xff;  // corrupt the magic
  std::stringstream corrupt(bytes);
  EXPECT_THROW((void)load_checkpoint(corrupt), std::runtime_error);

  // Truncation.
  std::stringstream truncated(stream.str().substr(0, 64));
  EXPECT_THROW((void)load_checkpoint(truncated), std::runtime_error);
}

TEST(Checkpoint, FileRoundTrip) {
  driver sim(small_config());
  sim.run_series();
  const std::string path = "/tmp/dcmesh_checkpoint_test.bin";
  save_checkpoint_file(sim, path);
  driver restored = load_checkpoint_file(path);
  EXPECT_DOUBLE_EQ(restored.time(), sim.time());
  EXPECT_THROW((void)load_checkpoint_file("/nonexistent/ck.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace dcmesh::core
