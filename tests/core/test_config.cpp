// Tests for the lfd.in-style config parser.

#include "dcmesh/core/config.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dcmesh::core {
namespace {

TEST(Config, DefaultsValidate) {
  run_config config;
  EXPECT_NO_THROW(config.validate());
}

TEST(Config, ParseFullDeck) {
  std::istringstream deck(R"(
# comment line
cells_per_axis = 3
mesh_n = 18       # trailing comment
norb = 48
nocc = 20
seed = 42
temperature_k = 250
dt = 0.01
qd_steps_per_series = 100
series = 5
lfd_precision = fp64
v_nl = 0.05
fd_order = 2
pulse_e0 = 0.3
pulse_omega = 0.25
pulse_center = 8
pulse_sigma = 2.5
pulse_axis = 1
)");
  const run_config config = parse_config(deck);
  EXPECT_EQ(config.cells_per_axis, 3);
  EXPECT_EQ(config.mesh_n, 18);
  EXPECT_EQ(config.norb, 48u);
  EXPECT_EQ(config.nocc, 20u);
  EXPECT_EQ(config.seed, 42ull);
  EXPECT_DOUBLE_EQ(config.temperature_k, 250.0);
  EXPECT_DOUBLE_EQ(config.dt, 0.01);
  EXPECT_EQ(config.qd_steps_per_series, 100);
  EXPECT_EQ(config.series, 5);
  EXPECT_EQ(config.lfd_precision, lfd_precision_level::fp64);
  EXPECT_DOUBLE_EQ(config.v_nl, 0.05);
  EXPECT_EQ(config.fd_order, 2);
  EXPECT_DOUBLE_EQ(config.pulse.e0, 0.3);
  EXPECT_EQ(config.pulse.polarization_axis, 1);
  EXPECT_EQ(config.atom_count(), 135);
  EXPECT_EQ(config.total_qd_steps(), 500);
}

TEST(Config, EmptyDeckGivesDefaults) {
  std::istringstream deck("\n# nothing here\n");
  const run_config config = parse_config(deck);
  EXPECT_EQ(config.mesh_n, run_config{}.mesh_n);
}

TEST(Config, UnknownKeyThrowsWithLineNumber) {
  std::istringstream deck("mesh_n = 16\nbogus_key = 3\n");
  try {
    (void)parse_config(deck);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("BOGUS_KEY"), std::string::npos);
  }
}

TEST(Config, MalformedLinesThrow) {
  std::istringstream no_eq("mesh_n 16\n");
  EXPECT_THROW((void)parse_config(no_eq), std::runtime_error);
  std::istringstream bad_num("mesh_n = sixteen\n");
  EXPECT_THROW((void)parse_config(bad_num), std::runtime_error);
  std::istringstream frac_int("series = 2.5\n");
  EXPECT_THROW((void)parse_config(frac_int), std::runtime_error);
  std::istringstream bad_prec("lfd_precision = fp16\n");
  EXPECT_THROW((void)parse_config(bad_prec), std::runtime_error);
  std::istringstream empty_val("mesh_n =\n");
  EXPECT_THROW((void)parse_config(empty_val), std::runtime_error);
}

TEST(Config, ValidationCatchesBadRanges) {
  const auto expect_invalid = [](auto&& mutate) {
    run_config config;
    mutate(config);
    EXPECT_THROW(config.validate(), std::invalid_argument);
  };
  expect_invalid([](run_config& c) { c.cells_per_axis = 0; });
  expect_invalid([](run_config& c) { c.mesh_n = 2; });
  expect_invalid([](run_config& c) { c.nocc = c.norb; });
  expect_invalid([](run_config& c) { c.nocc = 0; });
  expect_invalid([](run_config& c) { c.dt = -0.1; });
  expect_invalid([](run_config& c) { c.series = 0; });
  expect_invalid([](run_config& c) { c.fd_order = 3; });
  expect_invalid([](run_config& c) { c.pulse.polarization_axis = 5; });
  expect_invalid([](run_config& c) {
    c.norb = 10000;  // more orbitals than mesh points
    c.mesh_n = 8;
  });
}

TEST(Config, RoundTripThroughDeck) {
  run_config original;
  original.mesh_n = 20;
  original.norb = 30;
  original.nocc = 10;
  original.lfd_precision = lfd_precision_level::fp64;
  original.pulse.e0 = 0.123;
  std::istringstream deck(to_deck(original));
  const run_config parsed = parse_config(deck);
  EXPECT_EQ(parsed.mesh_n, original.mesh_n);
  EXPECT_EQ(parsed.norb, original.norb);
  EXPECT_EQ(parsed.lfd_precision, original.lfd_precision);
  EXPECT_DOUBLE_EQ(parsed.pulse.e0, original.pulse.e0);
}

TEST(Config, TotalTimeMatchesTable3) {
  // Paper Table III: 21000 QD steps at dt 0.02 a.t.u. ~ 10 fs.
  run_config config;
  config.dt = 0.02;
  config.qd_steps_per_series = 500;
  config.series = 42;
  EXPECT_EQ(config.total_qd_steps(), 21000);
  EXPECT_NEAR(config.total_time_fs(), 10.0, 0.2);
}

TEST(Config, MissingFileThrows) {
  EXPECT_THROW((void)parse_config_file("/nonexistent/path/lfd.in"),
               std::runtime_error);
}

}  // namespace
}  // namespace dcmesh::core
