// Tests for the DCMESH driver: multiple time-scale splitting, SCF refresh,
// shadow-dynamics accounting.

#include "dcmesh/core/driver.hpp"

#include <gtest/gtest.h>

#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/core/presets.hpp"

namespace dcmesh::core {
namespace {

run_config tiny_config() {
  auto config = preset(paper_system::tiny);
  config.qd_steps_per_series = 10;
  config.series = 2;
  return config;
}

class DriverTest : public ::testing::Test {
 protected:
  void SetUp() override { blas::clear_compute_mode(); }
  void TearDown() override { blas::clear_compute_mode(); }
};

TEST_F(DriverTest, RunProducesOneRecordPerQdStep) {
  driver sim(tiny_config());
  const auto reports = sim.run();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].qd_steps, 10);
  EXPECT_EQ(sim.records().size(), 20u);
  EXPECT_NEAR(sim.time(), 20 * 0.02, 1e-12);
}

TEST_F(DriverTest, SeriesRunsScfRefresh) {
  driver sim(tiny_config());
  const auto report = sim.run_series();
  // The refresh measured *some* drift (FP32 propagation) and repaired it.
  EXPECT_GE(report.scf.max_norm_drift, 0.0);
  EXPECT_LT(report.scf.max_norm_drift, 1e-2);
}

TEST_F(DriverTest, ShadowSyncsAtSeriesBoundaries) {
  driver sim(tiny_config());
  sim.run();
  // Forced ion-force syncs happen every series; the wave function syncs
  // only when drift warrants.  Nothing transfers mid-series.
  EXPECT_GE(sim.shadow().transfers_performed(), 2u);  // >= forced syncs
  EXPECT_EQ(sim.shadow().transfers_performed() +
                sim.shadow().transfers_avoided(),
            4u);  // 2 series x (wavefunction + ion_forces)
}

TEST_F(DriverTest, IonsMoveBetweenSeries) {
  driver sim(tiny_config());
  const auto p0 = sim.atoms().atoms[0].position;
  sim.run();
  const auto p1 = sim.atoms().atoms[0].position;
  EXPECT_NE(p0, p1);  // MD stepped on the slow time scale
}

TEST_F(DriverTest, TracerSeesKernels) {
  driver sim(tiny_config());
  sim.run_series();
  const auto report = sim.tracer().report();
  bool saw_qd = false, saw_scf = false, saw_md = false;
  for (const auto& [name, stats] : report) {
    if (name == "lfd.qd_step") {
      saw_qd = true;
      EXPECT_EQ(stats.calls, 10u);
    }
    if (name == "qxmd.scf_refresh") saw_scf = true;
    if (name == "qxmd.md_step") saw_md = true;
  }
  EXPECT_TRUE(saw_qd);
  EXPECT_TRUE(saw_scf);
  EXPECT_TRUE(saw_md);
  EXPECT_GT(sim.tracer().total_l0_time_ns(), 0u);
}

TEST_F(DriverTest, Fp64PrecisionLevelRuns) {
  auto config = tiny_config();
  config.lfd_precision = lfd_precision_level::fp64;
  config.series = 1;
  driver sim(config);
  sim.run();
  EXPECT_EQ(sim.records().size(), 10u);
}

TEST_F(DriverTest, InitialBandEnergiesAscending) {
  driver sim(tiny_config());
  const auto& bands = sim.initial_band_energies();
  ASSERT_EQ(bands.size(), tiny_config().norb);
  for (std::size_t j = 1; j < bands.size(); ++j) {
    EXPECT_LE(bands[j - 1], bands[j] + 1e-12);
  }
}

TEST_F(DriverTest, RecordsEvolveInTime) {
  driver sim(tiny_config());
  sim.run();
  const auto& records = sim.records();
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GT(records[i].t, records[i - 1].t);
  }
}

TEST_F(DriverTest, ComputeModeDoesNotChangeRecordCount) {
  // Switching BLAS precision must not alter control flow, only numerics.
  blas::set_compute_mode(blas::compute_mode::float_to_bf16);
  driver sim(tiny_config());
  sim.run();
  EXPECT_EQ(sim.records().size(), 20u);
}

}  // namespace
}  // namespace dcmesh::core
