// Tests for the Hartree mean-field option (Poisson-solved V_H of the
// electron density added to the device potential at SCF boundaries).

#include <gtest/gtest.h>

#include <sstream>

#include "dcmesh/core/driver.hpp"
#include "dcmesh/core/presets.hpp"
#include "dcmesh/lfd/forces.hpp"
#include "dcmesh/lfd/init.hpp"
#include "dcmesh/lfd/potential.hpp"
#include "dcmesh/qxmd/supercell.hpp"

namespace dcmesh::core {
namespace {

run_config hartree_config(double strength) {
  auto config = preset(paper_system::tiny);
  config.qd_steps_per_series = 10;
  config.series = 2;
  config.hartree = strength;
  return config;
}

TEST(Hartree, BuildPotentialIsZeroMeanAndRepulsive) {
  const auto atoms = qxmd::build_pto_supercell(1, 7.37, 0.05, 3);
  const mesh::grid3d grid = mesh::grid3d::cubic(8, 7.37 / 8.0);
  const auto init = lfd::initialize_ground_state(grid, atoms, 8, 3,
                                                 mesh::fd_order::fourth);
  const auto rho = lfd::electron_density(init.psi, init.occupations);
  const auto vh =
      lfd::build_hartree_potential(grid, mesh::fd_order::fourth, rho, 1.0);
  ASSERT_EQ(vh.size(), rho.size());

  double mean = 0.0;
  for (double v : vh) mean += v;
  EXPECT_NEAR(mean / static_cast<double>(vh.size()), 0.0, 1e-10);

  // V_H correlates positively with rho (repulsion where charge piles up).
  double rho_mean = 0.0;
  for (double v : rho) rho_mean += v;
  rho_mean /= static_cast<double>(rho.size());
  double covariance = 0.0;
  for (std::size_t i = 0; i < rho.size(); ++i) {
    covariance += (rho[i] - rho_mean) * vh[i];
  }
  EXPECT_GT(covariance, 0.0);
}

TEST(Hartree, StrengthScalesLinearly) {
  const auto atoms = qxmd::build_pto_supercell(1, 7.37, 0.05, 3);
  const mesh::grid3d grid = mesh::grid3d::cubic(8, 7.37 / 8.0);
  const auto init = lfd::initialize_ground_state(grid, atoms, 8, 3,
                                                 mesh::fd_order::fourth);
  const auto rho = lfd::electron_density(init.psi, init.occupations);
  const auto full =
      lfd::build_hartree_potential(grid, mesh::fd_order::second, rho, 1.0);
  const auto half =
      lfd::build_hartree_potential(grid, mesh::fd_order::second, rho, 0.5);
  for (std::size_t i = 0; i < full.size(); ++i) {
    ASSERT_NEAR(half[i], 0.5 * full[i], 1e-12);
  }
}

TEST(Hartree, ChangesTheDynamics) {
  driver plain(hartree_config(0.0));
  plain.run();
  driver mean_field(hartree_config(0.3));
  mean_field.run();
  ASSERT_EQ(plain.records().size(), mean_field.records().size());
  bool differs = false;
  for (std::size_t i = 0; i < plain.records().size(); ++i) {
    if (plain.records()[i].epot != mean_field.records()[i].epot) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
  // The mean field raises the potential energy where electrons overlap:
  // epot with repulsion should be above the plain run on average.
  double sum_plain = 0.0, sum_mf = 0.0;
  for (std::size_t i = 0; i < plain.records().size(); ++i) {
    sum_plain += plain.records()[i].epot;
    sum_mf += mean_field.records()[i].epot;
  }
  EXPECT_GT(sum_mf, sum_plain);
}

TEST(Hartree, RunStaysStableAndFinite) {
  driver sim(hartree_config(0.5));
  sim.run();
  for (const auto& r : sim.records()) {
    ASSERT_TRUE(std::isfinite(r.etot));
    ASSERT_LT(std::abs(r.etot), 1e3);
    ASSERT_GE(r.nexc, -1e-12);
  }
}

TEST(Hartree, ConfigValidationAndDeckRoundTrip) {
  run_config config;
  config.hartree = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.hartree = -0.1;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config.hartree = 0.25;
  std::istringstream deck(to_deck(config));
  EXPECT_DOUBLE_EQ(parse_config(deck).hartree, 0.25);
}

}  // namespace
}  // namespace dcmesh::core
