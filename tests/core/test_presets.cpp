// Tests for the paper-system presets (Table V + Table III).

#include "dcmesh/core/presets.hpp"

#include <gtest/gtest.h>

namespace dcmesh::core {
namespace {

TEST(Presets, Pto40MatchesTable5) {
  const run_config c = preset(paper_system::pto40);
  EXPECT_EQ(c.atom_count(), 40);
  EXPECT_EQ(c.mesh_n, 64);
  EXPECT_EQ(c.ngrid(), 64LL * 64 * 64);
  EXPECT_EQ(c.norb, 256u);
  EXPECT_EQ(c.nocc, kPto40Nocc);  // Table VII's m = 128
}

TEST(Presets, Pto135MatchesTable5) {
  const run_config c = preset(paper_system::pto135);
  EXPECT_EQ(c.atom_count(), 135);
  EXPECT_EQ(c.mesh_n, 96);
  EXPECT_EQ(c.norb, 1024u);
  EXPECT_LT(c.nocc, c.norb);
}

TEST(Presets, PaperDynamicsMatchTable3) {
  for (paper_system s : {paper_system::pto40, paper_system::pto135}) {
    const run_config c = preset(s);
    EXPECT_DOUBLE_EQ(c.dt, 0.02);
    EXPECT_EQ(c.qd_steps_per_series, 500);
    EXPECT_EQ(c.total_qd_steps(), 21000);
    EXPECT_NEAR(c.total_time_fs(), 10.0, 0.25);
  }
}

TEST(Presets, AllPresetsValidate) {
  for (paper_system s : all_presets()) {
    EXPECT_NO_THROW(preset(s).validate()) << name(s);
  }
}

TEST(Presets, ScaledPresetsAreCpuTractable) {
  for (paper_system s :
       {paper_system::pto40_scaled, paper_system::pto135_scaled,
        paper_system::tiny}) {
    const run_config c = preset(s);
    EXPECT_LE(c.ngrid(), 6000) << name(s);
    EXPECT_LE(c.norb, 64u) << name(s);
  }
}

TEST(Presets, ScaledPreservesSupercellGeometry) {
  // The scaled analogues keep the paper's atom counts.
  EXPECT_EQ(preset(paper_system::pto40_scaled).atom_count(), 40);
  EXPECT_EQ(preset(paper_system::pto135_scaled).atom_count(), 135);
}

TEST(Presets, Names) {
  EXPECT_EQ(name(paper_system::pto40), "pto40");
  EXPECT_EQ(name(paper_system::pto135), "pto135");
  EXPECT_EQ(name(paper_system::tiny), "tiny");
}

}  // namespace
}  // namespace dcmesh::core
