// Tests for the QD-step output format (artifact column order).

#include "dcmesh/core/output.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dcmesh::core {
namespace {

lfd::qd_record sample_record() {
  lfd::qd_record r;
  r.t = 0.02;
  r.ekin = 1.5;
  r.epot = -2.5;
  r.etot = -1.0;
  r.eexc = 0.25;
  r.nexc = 0.125;
  r.aext = 0.35;
  r.javg = -1e-4;
  return r;
}

TEST(Output, ColumnOrderMatchesArtifact) {
  // "In order from left to right, these are ekin, epot, etot, eexc, nexc,
  // Aext, and javg" (preceded by the time column).
  const std::string line = format_qd_record(sample_record());
  std::istringstream is(line);
  double t, ekin, epot, etot, eexc, nexc, aext, javg;
  is >> t >> ekin >> epot >> etot >> eexc >> nexc >> aext >> javg;
  ASSERT_TRUE(static_cast<bool>(is));
  EXPECT_DOUBLE_EQ(t, 0.02);
  EXPECT_DOUBLE_EQ(ekin, 1.5);
  EXPECT_DOUBLE_EQ(epot, -2.5);
  EXPECT_DOUBLE_EQ(etot, -1.0);
  EXPECT_DOUBLE_EQ(eexc, 0.25);
  EXPECT_DOUBLE_EQ(nexc, 0.125);
  EXPECT_DOUBLE_EQ(aext, 0.35);
  EXPECT_DOUBLE_EQ(javg, -1e-4);
}

TEST(Output, WriteLogHasHeaderAndRows) {
  std::vector<lfd::qd_record> records{sample_record(), sample_record()};
  std::ostringstream os;
  write_qd_log(os, records);
  const std::string text = os.str();
  EXPECT_NE(text.find("# t ekin epot etot eexc nexc Aext javg"),
            std::string::npos);
  // Header + 2 rows = 3 lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(Output, ExtractColumns) {
  std::vector<lfd::qd_record> records(3, sample_record());
  records[1].nexc = 0.5;
  const auto nexc = extract_column(records, "nexc");
  ASSERT_EQ(nexc.size(), 3u);
  EXPECT_DOUBLE_EQ(nexc[0], 0.125);
  EXPECT_DOUBLE_EQ(nexc[1], 0.5);
  const auto t = extract_column(records, "t");
  EXPECT_DOUBLE_EQ(t[0], 0.02);
  for (const char* col :
       {"ekin", "epot", "etot", "eexc", "aext", "javg"}) {
    EXPECT_EQ(extract_column(records, col).size(), 3u) << col;
  }
}

TEST(Output, UnknownColumnThrows) {
  std::vector<lfd::qd_record> records{sample_record()};
  EXPECT_THROW((void)extract_column(records, "enthalpy"),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcmesh::core
