// Tests for the unitrace-style profiler.

#include "dcmesh/trace/unitrace.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <thread>

namespace dcmesh::trace {
namespace {

TEST(Unitrace, RecordsAndAggregates) {
  unitrace tracer;
  tracer.record("gemm", 0.010);
  tracer.record("gemm", 0.020);
  tracer.record("stencil", 0.005);
  const auto report = tracer.report();
  ASSERT_EQ(report.size(), 2u);
  // Sorted by descending total time.
  EXPECT_EQ(report[0].first, "gemm");
  EXPECT_EQ(report[0].second.calls, 2u);
  EXPECT_NEAR(report[0].second.total_seconds, 0.030, 1e-12);
  EXPECT_NEAR(report[0].second.min_seconds, 0.010, 1e-12);
  EXPECT_NEAR(report[0].second.max_seconds, 0.020, 1e-12);
  EXPECT_EQ(report[1].first, "stencil");
}

TEST(Unitrace, TotalL0TimeInNanoseconds) {
  unitrace tracer;
  tracer.record("k", 1.5);
  EXPECT_EQ(tracer.total_l0_time_ns(), 1500000000u);
}

TEST(Unitrace, ScopeMeasuresWallTime) {
  unitrace tracer;
  {
    unitrace::scope scope(tracer, "sleepy");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto report = tracer.report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_GE(report[0].second.total_seconds, 0.004);
}

TEST(Unitrace, ClearResets) {
  unitrace tracer;
  tracer.record("x", 1.0);
  tracer.clear();
  EXPECT_EQ(tracer.total_l0_time_ns(), 0u);
  EXPECT_TRUE(tracer.report().empty());
}

// Regression lock for the min/max fold identities: kernel_stats must
// default to {+inf, -inf} so the FIRST record sets min == max == value.
// With zero-initialised extrema, any kernel slower than 0s would report
// min_seconds == 0 forever (and a hypothetical negative duration would
// vanish from max).
TEST(Unitrace, FirstRecordSetsBothExtrema) {
  EXPECT_EQ(kernel_stats{}.min_seconds,
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(kernel_stats{}.max_seconds,
            -std::numeric_limits<double>::infinity());

  unitrace tracer;
  tracer.record("slow_kernel", 123.5);  // large: 0-init min would stick at 0
  const auto report = tracer.report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].second.min_seconds, 123.5);
  EXPECT_EQ(report[0].second.max_seconds, 123.5);

  tracer.record("slow_kernel", 200.0);
  EXPECT_EQ(tracer.report()[0].second.min_seconds, 123.5);
  EXPECT_EQ(tracer.report()[0].second.max_seconds, 200.0);
}

// Byte-exact golden for the legacy report format: the unitrace view is a
// compatibility surface — tools parse this output, so the format may not
// drift even while the unitrace internals route through the span tracer.
TEST(Unitrace, LegacyReportFormatIsByteStable) {
  unitrace tracer;
  tracer.record("a", 0.001);
  EXPECT_EQ(tracer.to_string(),
            "Total L0 Time (ns): 1000000\n"
            "  a  calls=1  total=1ms  avg=1ms\n");
}

TEST(Unitrace, ToStringContainsTotalAndKernels) {
  unitrace tracer;
  tracer.record("lfd.qd_step", 0.25);
  const std::string text = tracer.to_string();
  EXPECT_NE(text.find("Total L0 Time (ns): 250000000"), std::string::npos);
  EXPECT_NE(text.find("lfd.qd_step"), std::string::npos);
  EXPECT_NE(text.find("calls=1"), std::string::npos);
}

}  // namespace
}  // namespace dcmesh::trace
