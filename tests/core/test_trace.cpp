// Tests for the unitrace-style profiler.

#include "dcmesh/trace/unitrace.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace dcmesh::trace {
namespace {

TEST(Unitrace, RecordsAndAggregates) {
  unitrace tracer;
  tracer.record("gemm", 0.010);
  tracer.record("gemm", 0.020);
  tracer.record("stencil", 0.005);
  const auto report = tracer.report();
  ASSERT_EQ(report.size(), 2u);
  // Sorted by descending total time.
  EXPECT_EQ(report[0].first, "gemm");
  EXPECT_EQ(report[0].second.calls, 2u);
  EXPECT_NEAR(report[0].second.total_seconds, 0.030, 1e-12);
  EXPECT_NEAR(report[0].second.min_seconds, 0.010, 1e-12);
  EXPECT_NEAR(report[0].second.max_seconds, 0.020, 1e-12);
  EXPECT_EQ(report[1].first, "stencil");
}

TEST(Unitrace, TotalL0TimeInNanoseconds) {
  unitrace tracer;
  tracer.record("k", 1.5);
  EXPECT_EQ(tracer.total_l0_time_ns(), 1500000000u);
}

TEST(Unitrace, ScopeMeasuresWallTime) {
  unitrace tracer;
  {
    unitrace::scope scope(tracer, "sleepy");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto report = tracer.report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_GE(report[0].second.total_seconds, 0.004);
}

TEST(Unitrace, ClearResets) {
  unitrace tracer;
  tracer.record("x", 1.0);
  tracer.clear();
  EXPECT_EQ(tracer.total_l0_time_ns(), 0u);
  EXPECT_TRUE(tracer.report().empty());
}

TEST(Unitrace, ToStringContainsTotalAndKernels) {
  unitrace tracer;
  tracer.record("lfd.qd_step", 0.25);
  const std::string text = tracer.to_string();
  EXPECT_NE(text.find("Total L0 Time (ns): 250000000"), std::string::npos);
  EXPECT_NE(text.find("lfd.qd_step"), std::string::npos);
  EXPECT_NE(text.find("calls=1"), std::string::npos);
}

}  // namespace
}  // namespace dcmesh::trace
