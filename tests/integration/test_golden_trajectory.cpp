// Golden-trajectory regression lock: the tiny preset deck, 10 QD steps,
// FP32 LFD, standard BLAS arithmetic.  The reference values below were
// produced by this exact configuration and are thread-count invariant
// (verified across OMP_NUM_THREADS = 1/3/4); the tolerances sit ~50x above
// the FP32-vs-FP64 rounding floor (ekin ~4e-7, nexc ~2e-10, javg ~4e-11)
// and well below the smallest physics-visible drift we must catch (BF16
// arithmetic moves ekin by ~1e-4, nexc by ~1e-7, javg by ~5e-9 on this
// deck).  If this test fails, a kernel/tracer/propagator change altered
// the physics — do not widen the tolerances without understanding why.

#include <gtest/gtest.h>

#include <vector>

#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/blas/precision_policy.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/core/driver.hpp"
#include "dcmesh/core/presets.hpp"
#include "dcmesh/sched/config.hpp"

namespace dcmesh::core {
namespace {

struct golden_step {
  double ekin;
  double nexc;
  double javg;
};

// Step-resolved {ekin, nexc, javg} for steps 1..10 of the tiny preset.
constexpr golden_step kGolden[10] = {
    {1.4817880848422647, 2.3265737114641638e-08, 0.00013757483648537289},
    {1.4820198072120547, 1.2656501247043650e-07, 0.00017339429766915034},
    {1.4823869699612260, 3.8587880824003662e-07, 0.00021661483428296409},
    {1.4828890217468143, 9.2281049335340981e-07, 0.00026724559926363860},
    {1.4835259579122066, 1.9190047177986003e-06, 0.00032468591378086219},
    {1.4842958999797702, 3.6296539862590294e-06, 0.00038757851135777949},
    {1.4851985527202487, 6.3860215195887804e-06, 0.00045370722794655066},
    {1.4862315477803349, 1.0588355335627853e-05, 0.00051996673230724475},
    {1.4873944632709026, 1.6672124825589663e-05, 0.00058243098882902213},
    {1.4886859226971865, 2.5050833368567282e-05, 0.00063653647962944059},
};

constexpr double kEkinTol = 2e-5;
constexpr double kNexcTol = 2e-8;
constexpr double kJavgTol = 2e-9;

TEST(GoldenTrajectory, TinyPresetTenStepsFp32) {
  // The lock is only valid under standard arithmetic: neutralize any
  // compute-mode / policy environment leaking into the test process.
  env_unset(blas::kPolicyEnvVar);
  env_unset("MKL_BLAS_COMPUTE_MODE");
  blas::clear_compute_mode();
  blas::clear_policy();

  run_config config = preset(paper_system::tiny);
  ASSERT_EQ(config.lfd_precision, lfd_precision_level::fp32);
  driver d(std::move(config));

  for (int step = 0; step < 10; ++step) {
    const lfd::qd_record record = d.qd_step();
    const golden_step& want = kGolden[step];
    EXPECT_NEAR(record.ekin, want.ekin, kEkinTol)
        << "ekin drift at step " << step + 1;
    EXPECT_NEAR(record.nexc, want.nexc, kNexcTol)
        << "nexc drift at step " << step + 1;
    EXPECT_NEAR(record.javg, want.javg, kJavgTol)
        << "javg drift at step " << step + 1;
  }
}

// The lock must actually be able to fail: BF16 arithmetic on the same
// deck has to land outside the tolerances (otherwise the golden test is
// vacuous and silent precision regressions would pass it).
TEST(GoldenTrajectory, Bf16TrajectoryLandsOutsideTheLock) {
  env_unset(blas::kPolicyEnvVar);
  blas::clear_policy();
  blas::set_compute_mode(blas::compute_mode::float_to_bf16);

  driver d(preset(paper_system::tiny));
  bool escaped = false;
  for (int step = 0; step < 10 && !escaped; ++step) {
    const lfd::qd_record record = d.qd_step();
    const golden_step& want = kGolden[step];
    escaped = std::abs(record.ekin - want.ekin) > kEkinTol ||
              std::abs(record.nexc - want.nexc) > kNexcTol ||
              std::abs(record.javg - want.javg) > kJavgTol;
  }
  blas::clear_compute_mode();
  EXPECT_TRUE(escaped)
      << "BF16 run stayed inside the golden tolerances; the lock is vacuous";
}

// Pooled-vs-serial determinism lock: under DCMESH_SCHED=pool the step
// scheduler runs the QD step as a task graph on the persistent pool with
// pack/compute overlap — and the trajectory must stay BIT-identical to
// the serial oracle for every compute mode.  Any tolerance here would
// hide a scheduling race; exact equality is the contract (each graph
// node writes disjoint outputs, each edge orders writer before reader).
TEST(GoldenTrajectory, PooledTrajectoryIsBitIdenticalToSerialInEveryMode) {
  env_unset(blas::kPolicyEnvVar);
  env_unset("MKL_BLAS_COMPUTE_MODE");
  env_unset(sched::kSchedEnvVar);
  blas::clear_policy();
  sched::reset_for_testing();

  constexpr blas::compute_mode kModes[] = {
      blas::compute_mode::standard,        // FP32
      blas::compute_mode::float_to_bf16x2, // BF16X2
      blas::compute_mode::float_to_bf16x3, // BF16X3
      blas::compute_mode::float_to_tf32,   // TF32
  };
  for (const blas::compute_mode mode : kModes) {
    blas::set_compute_mode(mode);

    sched::configure(sched::sched_mode::serial);
    driver serial(preset(paper_system::tiny));
    std::vector<lfd::qd_record> want;
    for (int step = 0; step < 10; ++step) want.push_back(serial.qd_step());

    sched::configure(sched::sched_mode::pool, 3);
    driver pooled(preset(paper_system::tiny));
    for (int step = 0; step < 10; ++step) {
      const lfd::qd_record got = pooled.qd_step();
      const lfd::qd_record& ref = want[static_cast<std::size_t>(step)];
      const std::string_view name = info(mode).name;
      EXPECT_EQ(got.ekin, ref.ekin) << name << " step " << step + 1;
      EXPECT_EQ(got.epot, ref.epot) << name << " step " << step + 1;
      EXPECT_EQ(got.etot, ref.etot) << name << " step " << step + 1;
      EXPECT_EQ(got.eexc, ref.eexc) << name << " step " << step + 1;
      EXPECT_EQ(got.nexc, ref.nexc) << name << " step " << step + 1;
      EXPECT_EQ(got.javg, ref.javg) << name << " step " << step + 1;
    }
    sched::reset_for_testing();
  }
  blas::clear_compute_mode();
}

}  // namespace
}  // namespace dcmesh::core
