// Integration: a full multi-series run exercising QXMD + LFD + SCF + MD +
// shadow dynamics together, checking the physics stays sane end to end.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/core/config.hpp"
#include "dcmesh/core/driver.hpp"
#include "dcmesh/core/output.hpp"
#include "dcmesh/core/presets.hpp"

namespace dcmesh {
namespace {

TEST(EndToEnd, TinyPresetFullRun) {
  core::driver sim(core::preset(core::paper_system::tiny));
  const auto reports = sim.run();
  ASSERT_EQ(reports.size(), 2u);
  ASSERT_EQ(sim.records().size(), 40u);

  for (const auto& r : sim.records()) {
    ASSERT_TRUE(std::isfinite(r.ekin));
    ASSERT_TRUE(std::isfinite(r.epot));
    ASSERT_TRUE(std::isfinite(r.javg));
    ASSERT_GE(r.nexc, -1e-12);
    ASSERT_LT(r.nexc, 6.0);  // bounded by the occupied population
  }

  // The laser pulse (centred at t = 0.4) excited some electrons by the end.
  EXPECT_GT(sim.records().back().nexc, 1e-9);

  // Energies stay physically bounded (no blow-up through 2 SCF cycles).
  for (const auto& r : sim.records()) {
    ASSERT_LT(std::abs(r.etot), 1e3);
  }
}

TEST(EndToEnd, ConfigDeckDrivesARun) {
  std::istringstream deck(R"(
cells_per_axis = 1
mesh_n = 8
norb = 8
nocc = 3
dt = 0.02
qd_steps_per_series = 5
series = 2
lfd_precision = fp32
pulse_e0 = 0.4
pulse_omega = 1.0
pulse_center = 0.1
pulse_sigma = 0.05
)");
  core::driver sim(core::parse_config(deck));
  sim.run();
  EXPECT_EQ(sim.records().size(), 10u);

  std::ostringstream os;
  core::write_qd_log(os, sim.records());
  const std::string text = os.str();
  // Header + 10 rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 11);
}

TEST(EndToEnd, DeviationGrowsBetweenScfResets) {
  // The paper's Fig 1 mechanism: reduced-precision deviation accumulates
  // over QD steps; the FP64 SCF refresh keeps it from compounding across
  // series.  Compare BF16 vs FP32 deviation at the end of series 1 with
  // the deviation a few steps after the series-boundary refresh.
  auto config = core::preset(core::paper_system::tiny);
  config.qd_steps_per_series = 30;
  config.series = 2;
  config.pulse.e0 = 0.5;
  config.pulse.t_center = 0.3;
  config.pulse.sigma = 0.15;

  const auto run_mode = [&](blas::compute_mode mode) {
    blas::scoped_compute_mode scope(mode);
    core::driver sim(config);
    sim.run();
    return core::extract_column(sim.records(), "ekin");
  };
  const auto ref = run_mode(blas::compute_mode::standard);
  const auto alt = run_mode(blas::compute_mode::float_to_bf16);
  ASSERT_EQ(ref.size(), 60u);

  // Per-step deviations oscillate, so compare series-level maxima: the
  // FP64 refresh between series must keep series 2's deviation within a
  // modest factor of series 1's (no compounding), while the deviation
  // itself stays clearly nonzero (BF16 really differs from FP32).
  double max_s1 = 0.0, max_s2 = 0.0;
  for (std::size_t i = 0; i < 30; ++i) {
    max_s1 = std::max(max_s1, std::abs(alt[i] - ref[i]));
    max_s2 = std::max(max_s2, std::abs(alt[i + 30] - ref[i + 30]));
  }
  EXPECT_GT(max_s1, 0.0);
  EXPECT_GT(max_s2, 0.0);
  EXPECT_LT(max_s2, 50.0 * std::max(max_s1, 1e-12))
      << "deviation compounded across the SCF boundary";
}

TEST(EndToEnd, ShadowAvoidsMidSeriesTransfers) {
  auto config = core::preset(core::paper_system::tiny);
  core::driver sim(config);
  sim.run();
  // The wave function crossed the bus at most once per series.
  EXPECT_LE(sim.shadow().transfers_performed(),
            2u * static_cast<unsigned>(config.series));
}

}  // namespace
}  // namespace dcmesh
