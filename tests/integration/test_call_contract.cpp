// Integration: the real LFD implementation must make exactly the 9 BLAS
// calls per QD step that the xehpc app model assumes — the contract that
// ties the measured numerics to the modeled performance (Fig 3a).

#include <gtest/gtest.h>

#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/core/driver.hpp"
#include "dcmesh/core/presets.hpp"
#include "dcmesh/xehpc/app_model.hpp"

namespace dcmesh {
namespace {

TEST(CallContract, DriverQdStepMatchesCanonicalShapes) {
  auto config = core::preset(core::paper_system::tiny);
  core::driver sim(config);

  blas::clear_call_log();
  sim.qd_step();
  const auto calls = blas::recent_calls();
  ASSERT_EQ(calls.size(), 9u) << "one QD step must issue 9 BLAS calls";

  const xehpc::system_shape shape{
      config.ngrid(), static_cast<blas::blas_int>(config.norb),
      static_cast<blas::blas_int>(config.nocc)};
  const auto expected =
      xehpc::canonical_qd_step_calls(shape, xehpc::gemm_precision::fp32);
  ASSERT_EQ(expected.size(), 9u);

  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(calls[i].m, expected[i].shape.m) << "call " << i;
    EXPECT_EQ(calls[i].n, expected[i].shape.n) << "call " << i;
    EXPECT_EQ(calls[i].k, expected[i].shape.k) << "call " << i;
    EXPECT_EQ(calls[i].routine, "CGEMM") << "call " << i;
  }
}

TEST(CallContract, Fp64DriverUsesZgemm) {
  auto config = core::preset(core::paper_system::tiny);
  config.lfd_precision = core::lfd_precision_level::fp64;
  core::driver sim(config);
  blas::clear_call_log();
  sim.qd_step();
  const auto calls = blas::recent_calls();
  ASSERT_EQ(calls.size(), 9u);
  for (const auto& call : calls) {
    EXPECT_EQ(call.routine, "ZGEMM");
  }
}

TEST(CallContract, ScfRefreshStaysFp64) {
  // The between-series SCF path must never run reduced precision, whatever
  // the compute mode: its inner products are level-1 FP64 operations, and
  // any level-3 call it makes must be FP64 (ZGEMM, or ZTRSM from the
  // Cholesky orthonormalization — trsm always runs standard arithmetic).
  auto config = core::preset(core::paper_system::tiny);
  core::driver sim(config);
  blas::set_compute_mode(blas::compute_mode::float_to_bf16);
  blas::clear_call_log();
  sim.run_series();
  bool saw_low_precision_outside_qd = false;
  std::size_t qd_calls = 0;
  for (const auto& call : blas::recent_calls()) {
    if (call.routine == "CGEMM") {
      ++qd_calls;
    } else if (call.routine != "ZGEMM" && call.routine != "ZTRSM") {
      saw_low_precision_outside_qd = true;
    }
  }
  blas::clear_compute_mode();
  EXPECT_EQ(qd_calls, 9u * 20u);  // tiny preset: 20 QD steps per series
  EXPECT_FALSE(saw_low_precision_outside_qd);
}

TEST(CallContract, ModeledCallListCoversAllSites) {
  const xehpc::system_shape sys{4096, 32, 16};
  const auto calls =
      xehpc::canonical_qd_step_calls(sys, xehpc::gemm_precision::fp32);
  double total_flops = 0.0;
  for (const auto& call : calls) {
    EXPECT_TRUE(call.shape.is_complex);
    total_flops += blas::gemm_flops(true, call.shape.m, call.shape.n,
                                    call.shape.k);
  }
  // The three big (k = ngrid) calls dominate: > 90% of per-step flops.
  double big_flops = 0.0;
  for (const auto& call : calls) {
    if (call.shape.k == 4096 || call.shape.m == 4096) {
      big_flops += blas::gemm_flops(true, call.shape.m, call.shape.n,
                                    call.shape.k);
    }
  }
  EXPECT_GT(big_flops / total_flops, 0.9);
}

}  // namespace
}  // namespace dcmesh
