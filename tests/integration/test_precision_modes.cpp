// Integration: the paper's core claim at system level.  Running the same
// simulation under different MKL_BLAS_COMPUTE_MODE values changes ONLY the
// numerics, deviations from the FP32 reference are small and ordered by
// mode accuracy, and the control really is the environment variable.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <string>

#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/blas/precision_policy.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/common/stats.hpp"
#include "dcmesh/core/driver.hpp"
#include "dcmesh/core/output.hpp"
#include "dcmesh/core/presets.hpp"

namespace dcmesh {
namespace {

core::run_config small_config() {
  auto config = core::preset(core::paper_system::tiny);
  config.mesh_n = 10;
  config.norb = 12;
  config.nocc = 5;
  config.qd_steps_per_series = 40;
  config.series = 1;
  config.pulse.e0 = 0.5;
  config.pulse.omega = 1.0;
  config.pulse.t_center = 0.4;
  config.pulse.sigma = 0.15;
  return config;
}

std::vector<lfd::qd_record> run_with_mode(blas::compute_mode mode) {
  blas::scoped_compute_mode scope(mode);
  core::driver sim(small_config());
  sim.run();
  return sim.records();
}

class PrecisionModes : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }

 private:
  static void reset() {
    blas::clear_compute_mode();
    blas::clear_policy();
    blas::clear_call_log();
    blas::clear_fallback_stats();
    env_unset(blas::kComputeModeEnvVar);
    env_unset(blas::kPolicyEnvVar);
  }
};

TEST_F(PrecisionModes, DeviationLadderAcrossModes) {
  const auto reference = run_with_mode(blas::compute_mode::standard);
  const auto ref_nexc = core::extract_column(reference, "nexc");
  const auto ref_ekin = core::extract_column(reference, "ekin");
  ASSERT_EQ(reference.size(), 40u);

  std::map<blas::compute_mode, double> nexc_dev, ekin_dev;
  for (blas::compute_mode mode :
       {blas::compute_mode::float_to_bf16, blas::compute_mode::float_to_tf32,
        blas::compute_mode::float_to_bf16x3,
        blas::compute_mode::complex_3m}) {
    const auto records = run_with_mode(mode);
    ASSERT_EQ(records.size(), reference.size())
        << "modes must not change control flow";
    nexc_dev[mode] =
        max_abs_deviation(core::extract_column(records, "nexc"), ref_nexc);
    ekin_dev[mode] =
        max_abs_deviation(core::extract_column(records, "ekin"), ref_ekin);
  }

  // BF16 deviates most; BF16x3 deviates least among the BF16 family
  // (Fig 1's qualitative content).
  EXPECT_GT(nexc_dev[blas::compute_mode::float_to_bf16],
            nexc_dev[blas::compute_mode::float_to_bf16x3]);
  EXPECT_GT(ekin_dev[blas::compute_mode::float_to_bf16],
            ekin_dev[blas::compute_mode::float_to_bf16x3]);
  EXPECT_GE(ekin_dev[blas::compute_mode::float_to_bf16],
            ekin_dev[blas::compute_mode::float_to_tf32]);

  // Every mode keeps the observables in the right ballpark (the paper's
  // "retaining accuracy in key output parameters"): relative ekin
  // deviation stays below ~1%.
  double ekin_scale = 0.0;
  for (double e : ref_ekin) ekin_scale = std::max(ekin_scale, std::abs(e));
  for (const auto& [mode, dev] : ekin_dev) {
    EXPECT_LT(dev, 0.01 * ekin_scale) << blas::name(mode);
  }
}

TEST_F(PrecisionModes, EnvironmentVariableControlsTheRun) {
  // The no-source-changes property: flip MKL_BLAS_COMPUTE_MODE only.
  const auto reference = run_with_mode(blas::compute_mode::standard);

  env_set(blas::kComputeModeEnvVar, "FLOAT_TO_BF16");
  core::driver sim(small_config());
  sim.run();
  env_unset(blas::kComputeModeEnvVar);

  const double dev =
      max_abs_deviation(core::extract_column(sim.records(), "ekin"),
                        core::extract_column(reference, "ekin"));
  EXPECT_GT(dev, 0.0) << "env var had no effect";

  // And it matches the API-selected BF16 run exactly (same arithmetic).
  const auto api_run = run_with_mode(blas::compute_mode::float_to_bf16);
  EXPECT_EQ(core::extract_column(sim.records(), "ekin"),
            core::extract_column(api_run, "ekin"));
}

TEST_F(PrecisionModes, IdenticalRunsAreBitIdentical) {
  const auto a = run_with_mode(blas::compute_mode::float_to_bf16);
  const auto b = run_with_mode(blas::compute_mode::float_to_bf16);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].ekin, b[i].ekin);
    ASSERT_EQ(a[i].nexc, b[i].nexc);
    ASSERT_EQ(a[i].javg, b[i].javg);
  }
}

TEST_F(PrecisionModes, CurrentDensityDeviationIsRelativelyTiny) {
  // Paper: current-density deviation is "negligible ... in the order of
  // 1e-5 Atomic Units" — i.e. orders of magnitude below the signal.
  const auto reference = run_with_mode(blas::compute_mode::standard);
  const auto bf16 = run_with_mode(blas::compute_mode::float_to_bf16);
  const auto ref_j = core::extract_column(reference, "javg");
  const auto dev = max_abs_deviation(
      core::extract_column(bf16, "javg"), ref_j);
  double scale = 0.0;
  for (double j : ref_j) scale = std::max(scale, std::abs(j));
  ASSERT_GT(scale, 0.0);
  EXPECT_LT(dev, 0.02 * scale);
}

TEST_F(PrecisionModes, PerSitePolicyIsSurgical) {
  // The PR's headline capability: DCMESH_BLAS_POLICY lowers precision at
  // exactly the named call sites and nowhere else.  remap_occ feeds only
  // the nexc diagnostic, so demoting its three GEMMs to BF16 must change
  // nexc while leaving the propagated state — and hence ekin — untouched.
  const auto reference = run_with_mode(blas::compute_mode::standard);

  env_set(blas::kPolicyEnvVar, "lfd/remap_occ/*=FLOAT_TO_BF16");
  blas::clear_call_log();
  core::driver sim(small_config());
  sim.run();
  const auto calls = blas::recent_calls();
  env_unset(blas::kPolicyEnvVar);

  std::set<std::string> bf16_sites;
  for (const auto& call : calls) {
    const bool is_remap =
        call.call_site.rfind("lfd/remap_occ/", 0) == 0;
    if (is_remap) {
      EXPECT_EQ(call.mode, blas::compute_mode::float_to_bf16)
          << call.call_site;
      EXPECT_EQ(call.source, blas::policy_source::site_policy)
          << call.call_site;
      bf16_sites.insert(call.call_site);
    } else {
      EXPECT_NE(call.mode, blas::compute_mode::float_to_bf16)
          << call.call_site << " (" << call.routine << ")";
    }
  }
  // All three remap_occ sites — and only them — ran BF16.
  EXPECT_EQ(bf16_sites.size(), 3u);

  // nexc (computed by remap_occ) deviates; ekin is bit-identical because
  // the policy never touched the propagation path.
  EXPECT_GT(max_abs_deviation(core::extract_column(sim.records(), "nexc"),
                              core::extract_column(reference, "nexc")),
            0.0);
  EXPECT_EQ(core::extract_column(sim.records(), "ekin"),
            core::extract_column(reference, "ekin"));
}

TEST_F(PrecisionModes, DeckPolicyMatchesEnvPolicy) {
  // The same policy installed through the input deck (blas_policy key)
  // must produce the identical trajectory to the env-var route.
  env_set(blas::kPolicyEnvVar, "lfd/remap_occ/*=FLOAT_TO_BF16");
  core::driver env_sim(small_config());
  env_sim.run();
  env_unset(blas::kPolicyEnvVar);
  blas::clear_policy();

  auto config = small_config();
  config.blas_policy = "lfd/remap_occ/*=FLOAT_TO_BF16";
  core::driver deck_sim(config);
  deck_sim.run();

  EXPECT_EQ(core::extract_column(env_sim.records(), "nexc"),
            core::extract_column(deck_sim.records(), "nexc"));
  EXPECT_EQ(core::extract_column(env_sim.records(), "ekin"),
            core::extract_column(deck_sim.records(), "ekin"));
}

}  // namespace
}  // namespace dcmesh
