// Tests for the campaign farm: sweep-deck parsing and deterministic
// run-matrix expansion, the checksummed resume manifest, and the full
// dcmesh_campaign -> dcehd pipeline run end-to-end in subprocesses —
// including the two acceptance scenarios from the ISSUE: an 8-run
// campaign over a shared wisdom store calibrating each key in at most
// the first worker to reach it, and a kill-one-run-then-reinvoke resume
// that skips completed runs.
//
// The end-to-end tests locate the binaries through DCMESH_TEST_CAMPAIGN
// and DCMESH_TEST_DCEHD (set by ctest; see tests/CMakeLists.txt).

#include <gtest/gtest.h>
#include <sys/wait.h>

#include "dcmesh/tune/wisdom.hpp"

#include <array>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "dcmesh/core/presets.hpp"
#include "dcmesh/farm/manifest.hpp"
#include "dcmesh/farm/runner.hpp"
#include "dcmesh/farm/sweep.hpp"

namespace dcmesh::farm {
namespace {

std::string test_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  (void)std::system(("rm -rf '" + dir + "'").c_str());
  return dir;
}

/// Run a shell command, capture combined stdout+stderr and exit status.
struct run_result {
  int status = -1;
  std::string output;
};

run_result run(const std::string& cmd) {
  run_result r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf;
  while (std::fgets(buf.data(), buf.size(), pipe) != nullptr) {
    r.output += buf.data();
  }
  const int rc = pclose(pipe);
  r.status = (rc >= 0 && WIFEXITED(rc)) ? WEXITSTATUS(rc) : -1;
  return r;
}

std::string slurp(const std::string& path) {
  std::string text;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) text += line + '\n';
  return text;
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

/// Every `"calibration_gemms": N` value in a campaign report, run order.
std::vector<long long> calibration_counts(const std::string& report) {
  std::vector<long long> counts;
  const std::string needle = "\"calibration_gemms\": ";
  for (std::size_t at = report.find(needle); at != std::string::npos;
       at = report.find(needle, at + needle.size())) {
    counts.push_back(std::atoll(report.c_str() + at + needle.size()));
  }
  return counts;
}

/// Path to a driver binary exported by ctest, or "" outside ctest.
std::string test_binary(const char* var) {
  const char* path = std::getenv(var);
  return path != nullptr ? std::string(path) : std::string();
}

#define REQUIRE_CAMPAIGN_BINARIES()                                    \
  const std::string campaign = test_binary("DCMESH_TEST_CAMPAIGN");    \
  const std::string dcehd = test_binary("DCMESH_TEST_DCEHD");          \
  if (campaign.empty() || dcehd.empty()) {                             \
    GTEST_SKIP() << "DCMESH_TEST_CAMPAIGN / DCMESH_TEST_DCEHD not set" \
                    " (run under ctest)";                              \
  }

// -------------------------------------------------------------- sweep ---

TEST(SweepTest, ParsesAxesSpecialKeysAndEnvVsDeckPlacement) {
  std::istringstream deck(
      "preset = tiny\n"
      "workers = 3\n"
      "timeout = 42\n"
      "# precision axes\n"
      "mesh_n = 8, 12\n"
      "MKL_BLAS_COMPUTE_MODE = STANDARD, FLOAT_TO_BF16X2\n"
      "pulse_e0 = 0.05\n");
  const sweep_spec spec = parse_sweep(deck);
  EXPECT_EQ(spec.workers, 3);
  EXPECT_DOUBLE_EQ(spec.timeout_seconds, 42.0);
  ASSERT_EQ(spec.axes.size(), 3u);
  EXPECT_EQ(spec.axes[0].key, "mesh_n");
  EXPECT_FALSE(spec.axes[0].is_env);
  EXPECT_EQ(spec.axes[0].values, (std::vector<std::string>{"8", "12"}));
  EXPECT_EQ(spec.axes[1].key, "MKL_BLAS_COMPUTE_MODE");
  EXPECT_TRUE(spec.axes[1].is_env);
  EXPECT_EQ(spec.axes[2].values, (std::vector<std::string>{"0.05"}));
}

TEST(SweepTest, ExpansionIsDeterministicFirstAxisSlowest) {
  sweep_spec spec;
  spec.base = core::preset(core::paper_system::tiny);
  add_axis(spec, "mesh_n=8,12");
  add_axis(spec, "MKL_BLAS_COMPUTE_MODE=STANDARD,FLOAT_TO_BF16X2");
  const auto runs = expand(spec);
  ASSERT_EQ(runs.size(), 4u);

  // Stable zero-padded ids in declaration order, first axis slowest.
  EXPECT_EQ(runs[0].id, "run-0000");
  EXPECT_EQ(runs[3].id, "run-0003");
  EXPECT_EQ(runs[0].tag, "mesh_n=8,MKL_BLAS_COMPUTE_MODE=STANDARD");
  EXPECT_EQ(runs[1].tag, "mesh_n=8,MKL_BLAS_COMPUTE_MODE=FLOAT_TO_BF16X2");
  EXPECT_EQ(runs[2].tag, "mesh_n=12,MKL_BLAS_COMPUTE_MODE=STANDARD");

  // Deck axes land in the deck text (appended, so last-wins overrides
  // the base); env axes land in the per-run environment, not the deck.
  EXPECT_NE(runs[2].deck.find("mesh_n = 12"), std::string::npos);
  EXPECT_EQ(runs[2].deck.find("MKL_BLAS_COMPUTE_MODE"), std::string::npos);
  ASSERT_EQ(runs[1].env.size(), 1u);
  EXPECT_EQ(runs[1].env[0].first, "MKL_BLAS_COMPUTE_MODE");
  EXPECT_EQ(runs[1].env[0].second, "FLOAT_TO_BF16X2");

  // Same spec, same matrix — the manifest depends on it.
  const auto again = expand(spec);
  ASSERT_EQ(again.size(), runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(again[i].id, runs[i].id);
    EXPECT_EQ(again[i].deck, runs[i].deck);
  }
}

TEST(SweepTest, RejectsUnknownDeckKeysAndMalformedAxes) {
  sweep_spec spec;
  spec.base = core::preset(core::paper_system::tiny);
  EXPECT_THROW(add_axis(spec, "no_equals_sign"), std::runtime_error);
  EXPECT_THROW(add_axis(spec, "=missing_key"), std::runtime_error);

  // An unknown deck key is caught at expansion, when each cell's deck is
  // round-tripped through the run-deck parser — not at spawn time.
  add_axis(spec, "bogus_knob=1,2");
  EXPECT_THROW((void)expand(spec), std::runtime_error);
}

TEST(SweepTest, EnvAxisValuesMayContainEqualsSigns) {
  // A swept precision policy is itself "site=mode" syntax; only the
  // FIRST '=' splits the assignment.
  sweep_spec spec;
  spec.base = core::preset(core::paper_system::tiny);
  add_axis(spec, "DCMESH_BLAS_POLICY=lfd/*=auto");
  const auto runs = expand(spec);
  ASSERT_EQ(runs.size(), 1u);
  ASSERT_EQ(runs[0].env.size(), 1u);
  EXPECT_EQ(runs[0].env[0].second, "lfd/*=auto");
}

// ----------------------------------------------------------- manifest ---

TEST(ManifestTest, LineRoundTripsAndChecksumRejectsTampering) {
  manifest_entry entry;
  entry.run_id = "run-0007";
  entry.status = "timed-out";
  entry.exit_code = -9;
  entry.seconds = 12.25;
  entry.calibration_gemms = 42;

  const std::string line = manifest_line(entry);
  const auto parsed = parse_manifest_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->run_id, "run-0007");
  EXPECT_EQ(parsed->status, "timed-out");
  EXPECT_EQ(parsed->exit_code, -9);
  EXPECT_DOUBLE_EQ(parsed->seconds, 12.25);
  EXPECT_EQ(parsed->calibration_gemms, 42u);
  EXPECT_FALSE(parsed->completed());

  // Flip the recorded status without recomputing the checksum: the line
  // must be rejected — a hand-mangled manifest cannot fake completion.
  std::string tampered = line;
  const auto at = tampered.find("timed-out");
  ASSERT_NE(at, std::string::npos);
  tampered.replace(at, 9, "ok\",\"pad\":\"xxxxxx");
  EXPECT_FALSE(parse_manifest_line(tampered).has_value());
  EXPECT_FALSE(parse_manifest_line("not json at all").has_value());
  EXPECT_FALSE(parse_manifest_line("").has_value());
}

TEST(ManifestTest, RecordLoadResumeSemantics) {
  const std::string path = test_dir("manifest_rr") + ".jsonl";
  std::remove(path.c_str());

  EXPECT_FALSE(load_manifest(path).existed);

  manifest_entry crash;
  crash.run_id = "run-0001";
  crash.status = "crashed";
  crash.exit_code = -9;
  ASSERT_TRUE(record_run(path, crash));

  manifest_entry ok;
  ok.run_id = "run-0000";
  ok.status = "ok";
  ok.seconds = 1.5;
  ASSERT_TRUE(record_run(path, ok));

  // A retry of the crashed run supersedes its entry: last writer wins
  // per run id, and the file holds one entry per run.
  crash.status = "ok";
  crash.exit_code = 0;
  ASSERT_TRUE(record_run(path, crash));

  const auto manifest = load_manifest(path);
  EXPECT_TRUE(manifest.existed);
  EXPECT_TRUE(manifest.version_ok);
  EXPECT_EQ(manifest.rejected_lines, 0u);
  ASSERT_EQ(manifest.entries.size(), 2u);
  const auto* retried = manifest.find("run-0001");
  ASSERT_NE(retried, nullptr);
  EXPECT_TRUE(retried->completed());
  EXPECT_EQ(manifest.find("run-0404"), nullptr);
  std::remove(path.c_str());
}

TEST(ManifestTest, TornLinesAreDroppedIndividually) {
  const std::string path = test_dir("manifest_torn") + ".jsonl";
  manifest_entry good;
  good.run_id = "run-0000";
  good.status = "ok";
  {
    std::ofstream os(path, std::ios::trunc);
    os << manifest_header() << "\n"
       << manifest_line(good) << "\n"
       << "{\"run\":\"run-0001\",\"status\":\"ok\",\"torn";  // no newline
  }
  const auto manifest = load_manifest(path);
  EXPECT_TRUE(manifest.version_ok);
  ASSERT_EQ(manifest.entries.size(), 1u);
  EXPECT_EQ(manifest.entries[0].run_id, "run-0000");
  EXPECT_EQ(manifest.rejected_lines, 1u);
  std::remove(path.c_str());
}

TEST(ManifestTest, ForeignHeaderRejectsWholeFile) {
  const std::string path = test_dir("manifest_foreign") + ".jsonl";
  {
    std::ofstream os(path, std::ios::trunc);
    os << "{\"somebody_elses_manifest\":7}\n";
  }
  const auto manifest = load_manifest(path);
  EXPECT_TRUE(manifest.existed);
  EXPECT_FALSE(manifest.version_ok);
  EXPECT_TRUE(manifest.entries.empty());
  std::remove(path.c_str());
}

// ------------------------------------------------------- end-to-end ---

// The ISSUE acceptance scenario: >= 8 runs over >= 2 workers against one
// shared wisdom store, with an auto policy so every worker needs tuned
// decisions.  All runs share one mesh size (hence one set of GEMM shape
// classes), so calibration must happen in EXACTLY one run — the cold
// scout — and every later run must show zero calibration GEMMs and
// cached tune provenance.
TEST(CampaignEndToEnd, EightRunsTwoWorkersCalibrateOnlyInTheScout) {
  REQUIRE_CAMPAIGN_BINARIES();
  const std::string out = test_dir("campaign_shared");

  const auto result = run(
      campaign + " --driver " + dcehd +
      " --set 'blas_policy=lfd/*=auto'"
      " --set pulse_e0=0.02,0.04,0.06,0.08,0.1,0.12,0.14,0.16"
      " --workers 2 --timeout 120 --out " + out);
  ASSERT_EQ(result.status, 0) << result.output;
  EXPECT_NE(result.output.find("8/8 complete"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("scouting run-0000 alone"), std::string::npos)
      << result.output;

  const std::string report = slurp(out + "/BENCH_campaign.json");
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(count_occurrences(report, "\"status\": \"ok\""), 8u);

  // Calibration GEMMs in the scout ONLY; the seven followers resolve
  // every site from the shared store.
  const auto calibrations = calibration_counts(report);
  ASSERT_EQ(calibrations.size(), 8u);
  EXPECT_GT(calibrations[0], 0) << report;
  for (std::size_t i = 1; i < calibrations.size(); ++i) {
    EXPECT_EQ(calibrations[i], 0) << "run " << i << " recalibrated";
  }
  // The followers' tune= histograms carry cached provenance (shared
  // hits), never calibrated.
  EXPECT_EQ(count_occurrences(report, "\"calibrated\""), 1u);
  EXPECT_EQ(count_occurrences(report, "\"cached\""), 8u);

  // One wisdom store, one generation history, valid header.
  const std::string wisdom = slurp(out + "/wisdom.jsonl");
  EXPECT_NE(wisdom.find("\"dcmesh_wisdom\":" +
                        std::to_string(dcmesh::tune::kWisdomFormatVersion)),
            std::string::npos);
  EXPECT_NE(wisdom.find("\"gen\":"), std::string::npos);
}

// Kill one run mid-campaign through the farm fault plan, then re-invoke
// the identical command without the kill: completed runs are adopted
// from the manifest (resumed, not re-executed) and only the victim runs
// again.
TEST(CampaignEndToEnd, KillOneRunThenReinvokeResumesFromManifest) {
  REQUIRE_CAMPAIGN_BINARIES();
  const std::string out = test_dir("campaign_resume");
  const std::string sweep_args =
      " --set mesh_n=8,12 --set pulse_e0=0.05,0.1"
      " --workers 2 --timeout 120 --out " + out;

  // First invocation: the farm-level fault plan SIGKILLs run-0003 as
  // soon as it spawns.  The campaign must finish the other three runs,
  // record the crash, and exit nonzero.
  const auto first =
      run("DCMESH_FARM_KILL=run-0003 " + campaign + " --driver " + dcehd +
          sweep_args);
  EXPECT_EQ(first.status, 1) << first.output;
  EXPECT_NE(first.output.find("3/4 complete"), std::string::npos)
      << first.output;

  const auto manifest = load_manifest(out + "/manifest.jsonl");
  ASSERT_TRUE(manifest.existed);
  ASSERT_EQ(manifest.entries.size(), 4u);
  const auto* victim = manifest.find("run-0003");
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->status, "crashed");
  EXPECT_EQ(victim->exit_code, -SIGKILL);

  // Second invocation, same command, no kill plan: three runs resume
  // from the manifest, the victim is retried, everything completes.
  const auto second = run(campaign + " --driver " + dcehd + sweep_args);
  ASSERT_EQ(second.status, 0) << second.output;
  EXPECT_NE(second.output.find("4/4 complete (3 resumed"), std::string::npos)
      << second.output;
  EXPECT_NE(second.output.find("already complete (resumed)"),
            std::string::npos)
      << second.output;

  const std::string report = slurp(out + "/BENCH_campaign.json");
  EXPECT_EQ(count_occurrences(report, "\"status\": \"ok\""), 4u);
  EXPECT_EQ(count_occurrences(report, "\"resumed\": true"), 3u);
  EXPECT_EQ(count_occurrences(report, "\"resumed\": false"), 1u);

  const auto after = load_manifest(out + "/manifest.jsonl");
  const auto* retried = after.find("run-0003");
  ASSERT_NE(retried, nullptr);
  EXPECT_TRUE(retried->completed());
}

// A timed-out run is killed, recorded as "timed-out", and retried on the
// next invocation like any other failure.
TEST(CampaignEndToEnd, TimedOutRunIsKilledAndRecorded) {
  REQUIRE_CAMPAIGN_BINARIES();
  const std::string out = test_dir("campaign_timeout");

  // A sub-millisecond budget times out even the tiny preset.
  const auto result = run(campaign + " --driver " + dcehd +
                          " --set mesh_n=8 --workers 1 --timeout 0.001"
                          " --no-scout --out " + out);
  EXPECT_EQ(result.status, 1) << result.output;

  const auto manifest = load_manifest(out + "/manifest.jsonl");
  const auto* entry = manifest.find("run-0000");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->status, "timed-out");
  const std::string report = slurp(out + "/BENCH_campaign.json");
  EXPECT_NE(report.find("\"status\": \"timed-out\""), std::string::npos);
}

// Driver usage errors (a deck the driver rejects at startup) surface as
// "unrecovered", not a hang or a crash of the farm itself.
TEST(CampaignEndToEnd, MissingDriverFailsSetupNotSilently) {
  REQUIRE_CAMPAIGN_BINARIES();
  const std::string out = test_dir("campaign_nodriver");
  const auto result = run(campaign +
                          " --driver /nonexistent-dcmesh/dcehd"
                          " --set mesh_n=8 --out " + out);
  EXPECT_NE(result.status, 0);
}

}  // namespace
}  // namespace dcmesh::farm
