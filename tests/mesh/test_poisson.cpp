// Tests for the periodic Poisson solver.

#include "dcmesh/mesh/poisson.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dcmesh/common/rng.hpp"

namespace dcmesh::mesh {
namespace {

/// Plane-wave density cos(2 pi kx x / Lx): an eigenfunction of the
/// discrete Laplacian, so the solution is known in closed form.
std::vector<double> cosine_density(const grid3d& g, int kx) {
  std::vector<double> rho(static_cast<std::size_t>(g.size()));
  const double two_pi = 2.0 * std::numbers::pi;
  for (std::int64_t iz = 0; iz < g.nz; ++iz) {
    for (std::int64_t iy = 0; iy < g.ny; ++iy) {
      for (std::int64_t ix = 0; ix < g.nx; ++ix) {
        rho[static_cast<std::size_t>(g.index(ix, iy, iz))] =
            std::cos(two_pi * kx * double(ix) / g.nx);
      }
    }
  }
  return rho;
}

/// Discrete -Laplacian eigenvalue of the mode along x.
double lap_eigenvalue(const grid3d& g, fd_order order, int kx) {
  const double theta = 2.0 * std::numbers::pi * kx / double(g.nx);
  const double h2 = g.spacing * g.spacing;
  if (order == fd_order::second) return (2.0 - 2.0 * std::cos(theta)) / h2;
  return (5.0 / 2.0 - (8.0 / 3.0) * std::cos(theta) +
          (1.0 / 6.0) * std::cos(2 * theta)) /
         h2;
}

class PoissonOrder : public ::testing::TestWithParam<fd_order> {};

TEST_P(PoissonOrder, PlaneWaveClosedForm) {
  const fd_order order = GetParam();
  const grid3d g{16, 12, 10, 0.7};
  const auto rho = cosine_density(g, 2);
  const auto result = solve_poisson(g, order, rho, 1e-12, 2000);
  ASSERT_TRUE(result.converged);
  // -lap phi = 4 pi rho with rho an eigenmode: phi = 4 pi rho / lambda.
  const double lambda = lap_eigenvalue(g, order, 2);
  for (std::size_t i = 0; i < rho.size(); ++i) {
    ASSERT_NEAR(result.phi[i], 4.0 * std::numbers::pi * rho[i] / lambda,
                1e-8)
        << i;
  }
}

TEST_P(PoissonOrder, ResidualIsSmall) {
  const fd_order order = GetParam();
  const grid3d g = grid3d::cubic(10, 0.9);
  xoshiro256 rng(3);
  std::vector<double> rho(static_cast<std::size_t>(g.size()));
  for (auto& v : rho) v = rng.uniform(0, 1);
  const auto result = solve_poisson(g, order, rho, 1e-10, 3000);
  ASSERT_TRUE(result.converged);
  // Verify A phi = b directly.
  std::vector<double> b(rho.begin(), rho.end());
  double mean = 0.0;
  for (double& v : b) {
    v *= 4.0 * std::numbers::pi;
  }
  for (double v : b) mean += v;
  mean /= static_cast<double>(b.size());
  std::vector<double> residual(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) residual[i] = b[i] - mean;
  add_laplacian(g, order, result.phi, 1.0, residual);  // r = b - A phi
  for (double v : residual) ASSERT_NEAR(v, 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Orders, PoissonOrder,
                         ::testing::Values(fd_order::second,
                                           fd_order::fourth));

TEST(Poisson, UniformDensityGivesZeroPotential) {
  // A constant rho is pure background: phi = 0 after projection.
  const grid3d g = grid3d::cubic(8, 1.0);
  const std::vector<double> rho(static_cast<std::size_t>(g.size()), 3.0);
  const auto result = solve_poisson(g, fd_order::second, rho);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0);
  for (double v : result.phi) EXPECT_EQ(v, 0.0);
}

TEST(Poisson, SolutionIsZeroMean) {
  const grid3d g = grid3d::cubic(8, 1.0);
  xoshiro256 rng(9);
  std::vector<double> rho(static_cast<std::size_t>(g.size()));
  for (auto& v : rho) v = rng.uniform(0, 2);
  const auto result = solve_poisson(g, fd_order::fourth, rho);
  double mean = 0.0;
  for (double v : result.phi) mean += v;
  EXPECT_NEAR(mean / static_cast<double>(result.phi.size()), 0.0, 1e-12);
}

TEST(Poisson, PointChargeIsPositiveNearby) {
  // phi must peak at a localized positive density (repulsive Hartree).
  const grid3d g = grid3d::cubic(12, 1.0);
  std::vector<double> rho(static_cast<std::size_t>(g.size()), 0.0);
  rho[static_cast<std::size_t>(g.index(6, 6, 6))] = 1.0;
  const auto result = solve_poisson(g, fd_order::second, rho);
  ASSERT_TRUE(result.converged);
  const double at_charge =
      result.phi[static_cast<std::size_t>(g.index(6, 6, 6))];
  const double far =
      result.phi[static_cast<std::size_t>(g.index(0, 0, 0))];
  EXPECT_GT(at_charge, 0.0);
  EXPECT_GT(at_charge, far);
}

TEST(Poisson, WrongSizeThrows) {
  const grid3d g = grid3d::cubic(4, 1.0);
  const std::vector<double> rho(10, 0.0);
  EXPECT_THROW((void)solve_poisson(g, fd_order::second, rho),
               std::invalid_argument);
}

TEST(Poisson, LaplacianOfConstantIsZero) {
  const grid3d g = grid3d::cubic(6, 0.5);
  const std::vector<double> f(static_cast<std::size_t>(g.size()), 7.0);
  std::vector<double> out(f.size(), 0.0);
  add_laplacian(g, fd_order::fourth, f, 1.0, out);
  for (double v : out) EXPECT_NEAR(v, 0.0, 1e-12);
}

}  // namespace
}  // namespace dcmesh::mesh
