// Unit tests for the periodic 3-D mesh.

#include "dcmesh/mesh/grid.hpp"

#include <gtest/gtest.h>

namespace dcmesh::mesh {
namespace {

TEST(Grid, SizesAndVolume) {
  const grid3d g{4, 5, 6, 0.5};
  EXPECT_EQ(g.size(), 120);
  EXPECT_DOUBLE_EQ(g.dv(), 0.125);
  EXPECT_DOUBLE_EQ(g.volume(), 120 * 0.125);
  const auto box = g.box();
  EXPECT_DOUBLE_EQ(box[0], 2.0);
  EXPECT_DOUBLE_EQ(box[1], 2.5);
  EXPECT_DOUBLE_EQ(box[2], 3.0);
}

TEST(Grid, IndexIsXFastest) {
  const grid3d g{4, 3, 2, 1.0};
  EXPECT_EQ(g.index(0, 0, 0), 0);
  EXPECT_EQ(g.index(1, 0, 0), 1);
  EXPECT_EQ(g.index(0, 1, 0), 4);
  EXPECT_EQ(g.index(0, 0, 1), 12);
  EXPECT_EQ(g.index(3, 2, 1), 4 * 3 * 2 - 1);
}

TEST(Grid, WrapHandlesNegativesAndOverflow) {
  EXPECT_EQ(grid3d::wrap(-1, 8), 7);
  EXPECT_EQ(grid3d::wrap(8, 8), 0);
  EXPECT_EQ(grid3d::wrap(17, 8), 1);
  EXPECT_EQ(grid3d::wrap(-9, 8), 7);
  EXPECT_EQ(grid3d::wrap(3, 8), 3);
}

TEST(Grid, PositionsOnLattice) {
  const grid3d g{8, 8, 8, 0.25};
  const auto p = g.position(2, 0, 4);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_DOUBLE_EQ(p[2], 1.0);
}

TEST(Grid, MinImageDistance) {
  const grid3d g{10, 10, 10, 1.0};  // box = 10
  // Points near opposite faces are close through the boundary.
  const double d2 = g.min_image_dist2({0.5, 0.0, 0.0}, {9.5, 0.0, 0.0});
  EXPECT_NEAR(d2, 1.0, 1e-12);
  // Same point -> zero.
  EXPECT_DOUBLE_EQ(g.min_image_dist2({3, 4, 5}, {3, 4, 5}), 0.0);
  // Half-box separation is the maximum along an axis.
  EXPECT_NEAR(g.min_image_dist2({0, 0, 0}, {5, 0, 0}), 25.0, 1e-12);
}

TEST(Grid, CubicHelper) {
  const grid3d g = grid3d::cubic(16, 0.4);
  EXPECT_EQ(g.nx, 16);
  EXPECT_EQ(g.ny, 16);
  EXPECT_EQ(g.nz, 16);
  EXPECT_DOUBLE_EQ(g.spacing, 0.4);
}

}  // namespace
}  // namespace dcmesh::mesh
