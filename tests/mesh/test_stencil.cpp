// Tests for the finite-difference operators: plane waves are
// eigenfunctions of the periodic Laplacian/gradient with known symbols, so
// exact analytic checks are available.

#include "dcmesh/mesh/stencil.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

namespace dcmesh::mesh {
namespace {

using cd = std::complex<double>;

std::vector<cd> plane_wave(const grid3d& g, int kx, int ky, int kz) {
  std::vector<cd> psi(static_cast<std::size_t>(g.size()));
  const double two_pi = 2.0 * std::numbers::pi;
  for (std::int64_t iz = 0; iz < g.nz; ++iz) {
    for (std::int64_t iy = 0; iy < g.ny; ++iy) {
      for (std::int64_t ix = 0; ix < g.nx; ++ix) {
        const double phase = two_pi * (kx * double(ix) / g.nx +
                                       ky * double(iy) / g.ny +
                                       kz * double(iz) / g.nz);
        psi[static_cast<std::size_t>(g.index(ix, iy, iz))] =
            cd(std::cos(phase), std::sin(phase));
      }
    }
  }
  return psi;
}

/// Discrete symbol of (-1/2 d^2/dx^2) for the central-difference stencils,
/// per axis, at angular frequency theta = 2*pi*k/n.
double kinetic_symbol(fd_order order, double theta, double h) {
  if (order == fd_order::second) {
    return 0.5 * (2.0 - 2.0 * std::cos(theta)) / (h * h);
  }
  return 0.5 *
         (5.0 / 2.0 - (8.0 / 3.0) * std::cos(theta) +
          (1.0 / 6.0) * std::cos(2.0 * theta)) /
         (h * h);
}

/// Discrete symbol of d/dx (purely imaginary: i*s).
double gradient_symbol(fd_order order, double theta, double h) {
  if (order == fd_order::second) return std::sin(theta) / h;
  return ((4.0 / 3.0) * std::sin(theta) - (1.0 / 6.0) * std::sin(2.0 * theta)) /
         h;
}

class StencilOrder : public ::testing::TestWithParam<fd_order> {};

TEST_P(StencilOrder, KineticPlaneWaveEigenvalue) {
  const fd_order order = GetParam();
  const grid3d g{12, 10, 8, 0.7};
  const auto psi = plane_wave(g, 2, -1, 3);
  std::vector<cd> out(psi.size(), cd(0));
  add_kinetic<double>(g, order, psi, cd(1), out);

  const double two_pi = 2.0 * std::numbers::pi;
  const double expected =
      kinetic_symbol(order, two_pi * 2 / g.nx, g.spacing) +
      kinetic_symbol(order, two_pi * -1 / g.ny, g.spacing) +
      kinetic_symbol(order, two_pi * 3 / g.nz, g.spacing);
  for (std::size_t i = 0; i < psi.size(); ++i) {
    ASSERT_NEAR(std::abs(out[i] - expected * psi[i]), 0.0, 1e-10) << i;
  }
}

TEST_P(StencilOrder, GradientPlaneWaveEigenvalue) {
  const fd_order order = GetParam();
  const grid3d g{8, 8, 8, 0.5};
  const auto psi = plane_wave(g, 1, 2, 3);
  const double two_pi = 2.0 * std::numbers::pi;
  for (int axis = 0; axis < 3; ++axis) {
    std::vector<cd> out(psi.size(), cd(0));
    add_gradient<double>(g, order, axis, psi, cd(1), out);
    const int k = axis == 0 ? 1 : axis == 1 ? 2 : 3;
    const std::int64_t n = axis == 0 ? g.nx : axis == 1 ? g.ny : g.nz;
    const cd expected =
        cd(0, gradient_symbol(order, two_pi * k / double(n), g.spacing));
    for (std::size_t i = 0; i < psi.size(); ++i) {
      ASSERT_NEAR(std::abs(out[i] - expected * psi[i]), 0.0, 1e-10)
          << "axis=" << axis << " i=" << i;
    }
  }
}

TEST_P(StencilOrder, ConstantFieldHasZeroDerivatives) {
  const fd_order order = GetParam();
  const grid3d g{6, 6, 6, 1.0};
  std::vector<cd> psi(static_cast<std::size_t>(g.size()), cd(2.5, -1.0));
  std::vector<cd> out(psi.size(), cd(0));
  add_kinetic<double>(g, order, psi, cd(1), out);
  for (const cd& v : out) ASSERT_NEAR(std::abs(v), 0.0, 1e-12);
  add_gradient<double>(g, order, 2, psi, cd(1), out);
  for (const cd& v : out) ASSERT_NEAR(std::abs(v), 0.0, 1e-12);
}

TEST_P(StencilOrder, AccumulatesWithCoefficient) {
  const fd_order order = GetParam();
  const grid3d g{4, 4, 4, 1.0};
  const auto psi = plane_wave(g, 1, 0, 0);
  std::vector<cd> out(psi.size(), cd(1.0, 0.0));  // pre-existing content
  add_kinetic<double>(g, order, psi, cd(0), out);  // coeff 0: unchanged
  for (const cd& v : out) ASSERT_EQ(v, cd(1.0, 0.0));
}

INSTANTIATE_TEST_SUITE_P(Orders, StencilOrder,
                         ::testing::Values(fd_order::second,
                                           fd_order::fourth));

TEST(Stencil, FourthOrderMoreAccurateThanSecond) {
  // For a smooth (low-k) mode, compare to the continuum eigenvalue
  // 0.5*|k_cont|^2; 4th order must be closer.
  const grid3d g{32, 32, 32, 0.3};
  const auto psi = plane_wave(g, 1, 1, 1);
  const double two_pi = 2.0 * std::numbers::pi;
  const double k_cont = two_pi / (g.nx * g.spacing);
  const double continuum = 0.5 * 3.0 * k_cont * k_cont;

  for (fd_order order : {fd_order::second, fd_order::fourth}) {
    std::vector<cd> out(psi.size(), cd(0));
    add_kinetic<double>(g, order, psi, cd(1), out);
    const double discrete = (out[0] / psi[0]).real();
    const double err = std::abs(discrete - continuum);
    if (order == fd_order::second) {
      EXPECT_GT(err, 1e-4);
    } else {
      EXPECT_LT(err, 1e-4);
    }
  }
}

TEST(Stencil, SpectralRadiusBoundsActualEigenvalues) {
  const grid3d g{8, 8, 8, 0.6};
  for (fd_order order : {fd_order::second, fd_order::fourth}) {
    const double radius = kinetic_spectral_radius(g, order);
    // The highest mode (Nyquist on each axis) must not exceed the bound.
    const auto psi = plane_wave(g, 4, 4, 4);  // k = n/2 = Nyquist
    std::vector<cd> out(psi.size(), cd(0));
    add_kinetic<double>(g, order, psi, cd(1), out);
    const double eig = (out[0] / psi[0]).real();
    EXPECT_LE(eig, radius * (1.0 + 1e-12));
    EXPECT_GT(eig, 0.5 * radius);  // bound is tight-ish
  }
}

TEST(Stencil, FloatAndDoubleAgree) {
  const grid3d g{6, 6, 6, 0.8};
  const auto psi_d = plane_wave(g, 1, 2, 0);
  std::vector<std::complex<float>> psi_f(psi_d.size());
  for (std::size_t i = 0; i < psi_d.size(); ++i) {
    psi_f[i] = {static_cast<float>(psi_d[i].real()),
                static_cast<float>(psi_d[i].imag())};
  }
  std::vector<cd> out_d(psi_d.size(), cd(0));
  std::vector<std::complex<float>> out_f(psi_f.size(), {0, 0});
  add_kinetic<double>(g, fd_order::fourth, psi_d, cd(1), out_d);
  add_kinetic<float>(g, fd_order::fourth, psi_f, {1, 0}, out_f);
  for (std::size_t i = 0; i < out_d.size(); ++i) {
    ASSERT_NEAR(out_f[i].real(), out_d[i].real(), 2e-4);
    ASSERT_NEAR(out_f[i].imag(), out_d[i].imag(), 2e-4);
  }
}

}  // namespace
}  // namespace dcmesh::mesh
