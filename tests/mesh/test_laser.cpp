// Tests for the laser-pulse vector potential.

#include "dcmesh/mesh/laser.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dcmesh::mesh {
namespace {

TEST(Laser, ZeroFarFromPulse) {
  const laser_pulse pulse{};  // centre 100, sigma 40
  EXPECT_NEAR(pulse.a(100.0 - 10 * 40.0), 0.0, 1e-12);
  EXPECT_NEAR(pulse.a(100.0 + 10 * 40.0), 0.0, 1e-12);
}

TEST(Laser, PeakAmplitudeScale) {
  const laser_pulse pulse{0.02, 0.057, 100.0, 40.0, 2};
  // |A| <= E0/omega everywhere.
  double max_a = 0.0;
  for (double t = 0.0; t < 300.0; t += 0.37) {
    max_a = std::max(max_a, std::abs(pulse.a(t)));
  }
  EXPECT_LE(max_a, 0.02 / 0.057 + 1e-12);
  EXPECT_GT(max_a, 0.5 * 0.02 / 0.057);  // actually reaches a good fraction
}

TEST(Laser, VanishesAtCentre) {
  // sin(omega*(t-t0)) = 0 at t = t0.
  const laser_pulse pulse{};
  EXPECT_DOUBLE_EQ(pulse.a(pulse.t_center), 0.0);
}

TEST(Laser, ElectricFieldIsMinusDaDt) {
  const laser_pulse pulse{0.1, 0.2, 50.0, 10.0, 2};
  const double dt = 1e-6;
  for (double t : {30.0, 45.0, 50.0, 55.0, 80.0}) {
    const double numeric = -(pulse.a(t + dt) - pulse.a(t - dt)) / (2 * dt);
    EXPECT_NEAR(pulse.e(t), numeric, 1e-6 * std::max(1.0, std::abs(numeric)))
        << t;
  }
}

TEST(Laser, PolarizationVector) {
  laser_pulse pulse{};
  pulse.polarization_axis = 1;
  const auto v = pulse.a_vec(pulse.t_center + 10.0);
  EXPECT_EQ(v[0], 0.0);
  EXPECT_EQ(v[2], 0.0);
  EXPECT_EQ(v[1], pulse.a(pulse.t_center + 10.0));
}

}  // namespace
}  // namespace dcmesh::mesh
