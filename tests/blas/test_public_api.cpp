// Tests for the installed public C API (include/dcmesh/dcmesh_blas.h):
// versioning, the one-shot dcmesh_gemm entry, the descriptor object, the
// batch entry, and the never-throw error contract at the C boundary.
// Linked directly (not through the shim) — the shim-side behavior of the
// same functions is covered by tests/intercept/.

#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <string>
#include <vector>

#include "dcmesh/dcmesh_blas.h"

namespace {

// Column-major helpers for tiny reference checks.
std::vector<float> iota(int n) {
  std::vector<float> v(n);
  for (int i = 0; i < n; ++i) v[i] = static_cast<float>(i + 1);
  return v;
}

}  // namespace

TEST(PublicApi, VersionMacrosAndRuntimeAgree) {
  EXPECT_EQ(DCMESH_API_VERSION,
            DCMESH_API_VERSION_MAJOR * 1000 + DCMESH_API_VERSION_MINOR);
  EXPECT_EQ(dcmesh_api_version(), DCMESH_API_VERSION);
  const std::string s = dcmesh_api_version_string();
  EXPECT_NE(s.find('.'), std::string::npos) << s;
}

TEST(PublicApi, OneShotGemmAllTypes) {
  // 2x2: C = A*B with A=[1 3;2 4], B=[5 7;6 8] (column-major).
  const float af[] = {1, 2, 3, 4}, bf[] = {5, 6, 7, 8};
  float cf[4] = {0, 0, 0, 0};
  const float onef = 1.0f, zerof = 0.0f;
  ASSERT_EQ(dcmesh_gemm('s', DCMESH_LAYOUT_COL_MAJOR, 'N', 'N', 2, 2, 2,
                        &onef, af, 2, bf, 2, &zerof, cf, 2, "api/test",
                        nullptr),
            DCMESH_OK);
  EXPECT_FLOAT_EQ(cf[0], 23.0f);
  EXPECT_FLOAT_EQ(cf[1], 34.0f);
  EXPECT_FLOAT_EQ(cf[2], 31.0f);
  EXPECT_FLOAT_EQ(cf[3], 46.0f);

  const double ad[] = {1, 2, 3, 4}, bd[] = {5, 6, 7, 8};
  double cd[4] = {};
  const double oned = 1.0, zerod = 0.0;
  ASSERT_EQ(dcmesh_gemm('d', DCMESH_LAYOUT_COL_MAJOR, 'N', 'N', 2, 2, 2,
                        &oned, ad, 2, bd, 2, &zerod, cd, 2, nullptr,
                        nullptr),
            DCMESH_OK);
  EXPECT_DOUBLE_EQ(cd[0], 23.0);
  EXPECT_DOUBLE_EQ(cd[3], 46.0);

  using Z = std::complex<double>;
  const Z az[] = {{1, 1}, {0, 0}, {0, 0}, {1, -1}};
  const Z bz[] = {{2, 0}, {0, 0}, {0, 0}, {0, 2}};
  Z cz[4] = {};
  const Z onez{1, 0}, zeroz{0, 0};
  ASSERT_EQ(dcmesh_gemm('z', DCMESH_LAYOUT_COL_MAJOR, 'N', 'N', 2, 2, 2,
                        &onez, az, 2, bz, 2, &zeroz, cz, 2, nullptr,
                        nullptr),
            DCMESH_OK);
  EXPECT_DOUBLE_EQ(cz[0].real(), 2.0);
  EXPECT_DOUBLE_EQ(cz[0].imag(), 2.0);
  EXPECT_DOUBLE_EQ(cz[3].real(), 2.0);
  EXPECT_DOUBLE_EQ(cz[3].imag(), 2.0);
}

TEST(PublicApi, RowMajorMatchesColMajor) {
  // Row-major [1 2;3 4]*[5 6;7 8] = [19 22;43 50].
  const float a[] = {1, 2, 3, 4}, b[] = {5, 6, 7, 8};
  float c[4] = {};
  const float one = 1.0f, zero = 0.0f;
  ASSERT_EQ(dcmesh_gemm('s', DCMESH_LAYOUT_ROW_MAJOR, 'N', 'N', 2, 2, 2,
                        &one, a, 2, b, 2, &zero, c, 2, nullptr, nullptr),
            DCMESH_OK);
  EXPECT_FLOAT_EQ(c[0], 19.0f);
  EXPECT_FLOAT_EQ(c[1], 22.0f);
  EXPECT_FLOAT_EQ(c[2], 43.0f);
  EXPECT_FLOAT_EQ(c[3], 50.0f);
}

TEST(PublicApi, ErrorsReturnStatusAndNeverThrow) {
  const float one = 1.0f;
  float x = 0.0f;
  // Bad type char.
  EXPECT_EQ(dcmesh_gemm('q', DCMESH_LAYOUT_COL_MAJOR, 'N', 'N', 1, 1, 1,
                        &one, &x, 1, &x, 1, &one, &x, 1, nullptr, nullptr),
            DCMESH_ERR_BAD_TYPE);
  EXPECT_NE(std::strlen(dcmesh_last_error()), 0u);
  // Bad transpose char.
  EXPECT_EQ(dcmesh_gemm('s', DCMESH_LAYOUT_COL_MAJOR, 'X', 'N', 1, 1, 1,
                        &one, &x, 1, &x, 1, &one, &x, 1, nullptr, nullptr),
            DCMESH_ERR_INVALID_ARGUMENT);
  // Bad layout value.
  EXPECT_EQ(dcmesh_gemm('s', static_cast<dcmesh_layout>(7), 'N', 'N', 1, 1,
                        1, &one, &x, 1, &x, 1, &one, &x, 1, nullptr,
                        nullptr),
            DCMESH_ERR_INVALID_ARGUMENT);
  // Null operand pointers.
  EXPECT_EQ(dcmesh_gemm('s', DCMESH_LAYOUT_COL_MAJOR, 'N', 'N', 1, 1, 1,
                        nullptr, &x, 1, &x, 1, &one, &x, 1, nullptr,
                        nullptr),
            DCMESH_ERR_INVALID_ARGUMENT);
  // Negative dimension: engine rejects, C boundary converts to status.
  EXPECT_EQ(dcmesh_gemm('s', DCMESH_LAYOUT_COL_MAJOR, 'N', 'N', -2, 1, 1,
                        &one, &x, 1, &x, 1, &one, &x, 1, nullptr, nullptr),
            DCMESH_ERR_INVALID_ARGUMENT);
  // Bad mode token.
  EXPECT_EQ(dcmesh_gemm('s', DCMESH_LAYOUT_COL_MAJOR, 'N', 'N', 1, 1, 1,
                        &one, &x, 1, &x, 1, &one, &x, 1, nullptr,
                        "NOT_A_MODE"),
            DCMESH_ERR_BAD_MODE);
}

TEST(PublicApi, DescriptorLifecycle) {
  dcmesh_gemm_desc* d = dcmesh_gemm_desc_create('s');
  ASSERT_NE(d, nullptr);

  // Executing before shape/operands are set is an explicit error.
  EXPECT_EQ(dcmesh_gemm_execute(d), DCMESH_ERR_INCOMPLETE);

  const auto a = iota(4), b = iota(4);
  std::vector<float> c(4, 0.0f);
  ASSERT_EQ(dcmesh_gemm_desc_set_layout(d, DCMESH_LAYOUT_COL_MAJOR),
            DCMESH_OK);
  ASSERT_EQ(dcmesh_gemm_desc_set_transpose(d, 'N', 'N'), DCMESH_OK);
  ASSERT_EQ(dcmesh_gemm_desc_set_shape(d, 2, 2, 2), DCMESH_OK);
  ASSERT_EQ(dcmesh_gemm_desc_set_operands(d, a.data(), 2, b.data(), 2,
                                          c.data(), 2),
            DCMESH_OK);
  ASSERT_EQ(dcmesh_gemm_desc_set_site(d, "api/desc"), DCMESH_OK);
  ASSERT_EQ(dcmesh_gemm_execute(d), DCMESH_OK);
  // [1 3;2 4]*[1 3;2 4] = [7 15;10 22] column-major.
  EXPECT_FLOAT_EQ(c[0], 7.0f);
  EXPECT_FLOAT_EQ(c[1], 10.0f);
  EXPECT_FLOAT_EQ(c[2], 15.0f);
  EXPECT_FLOAT_EQ(c[3], 22.0f);

  // Default scalars are alpha=1, beta=0: re-execute overwrites C.
  ASSERT_EQ(dcmesh_gemm_execute(d), DCMESH_OK);
  EXPECT_FLOAT_EQ(c[0], 7.0f);

  // Explicit scalars: beta=1 accumulates.
  const float one = 1.0f;
  ASSERT_EQ(dcmesh_gemm_desc_set_scalars(d, &one, &one), DCMESH_OK);
  ASSERT_EQ(dcmesh_gemm_execute(d), DCMESH_OK);
  EXPECT_FLOAT_EQ(c[0], 14.0f);

  // The last executed call is visible through introspection.
  char site[64] = {0};
  ASSERT_GE(dcmesh_last_call_site(site, sizeof site), 0);
  EXPECT_STREQ(site, "api/desc");

  dcmesh_gemm_desc_destroy(d);
}

TEST(PublicApi, DescriptorRejectsBadInput) {
  EXPECT_EQ(dcmesh_gemm_desc_create('y'), nullptr);
  dcmesh_gemm_desc* d = dcmesh_gemm_desc_create('d');
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(dcmesh_gemm_desc_set_transpose(d, '!', 'N'),
            DCMESH_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(dcmesh_gemm_desc_set_shape(d, -1, 2, 2),
            DCMESH_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(dcmesh_gemm_desc_set_mode(d, "NOT_A_MODE"),
            DCMESH_ERR_BAD_MODE);
  // Null-descriptor calls are inert errors, not crashes.
  EXPECT_EQ(dcmesh_gemm_desc_set_shape(nullptr, 1, 1, 1),
            DCMESH_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(dcmesh_gemm_execute(nullptr), DCMESH_ERR_INVALID_ARGUMENT);
  dcmesh_gemm_desc_destroy(nullptr);  // no-op by contract
  dcmesh_gemm_desc_destroy(d);
}

TEST(PublicApi, BatchStridedMatchesLoopedGemm) {
  const int n = 3, batch = 4;
  const int stride = n * n;
  std::vector<float> a(stride * batch), b(stride * batch),
      c(stride * batch, 0.0f), expect(stride * batch, 0.0f);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>((i * 7 % 13)) - 6.0f;
    b[i] = static_cast<float>((i * 5 % 11)) - 5.0f;
  }
  const float one = 1.0f, zero = 0.0f;
  for (int q = 0; q < batch; ++q) {
    ASSERT_EQ(dcmesh_gemm('s', DCMESH_LAYOUT_COL_MAJOR, 'N', 'N', n, n, n,
                          &one, a.data() + q * stride, n,
                          b.data() + q * stride, n, &zero,
                          expect.data() + q * stride, n, nullptr, nullptr),
              DCMESH_OK);
  }
  ASSERT_EQ(dcmesh_gemm_batch_strided(
                's', DCMESH_LAYOUT_COL_MAJOR, 'N', 'N', n, n, n, &one,
                a.data(), n, stride, b.data(), n, stride, &zero, c.data(),
                n, stride, batch, "api/batch", nullptr),
            DCMESH_OK);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_FLOAT_EQ(c[i], expect[i]) << i;
  }
}

TEST(PublicApi, BatchModeOverrideApplies) {
  const float a = 1.0f, b = 1.0f;
  float c = 0.0f;
  const float one = 1.0f, zero = 0.0f;
  ASSERT_EQ(dcmesh_gemm_batch_strided(
                's', DCMESH_LAYOUT_COL_MAJOR, 'N', 'N', 1, 1, 1, &one, &a,
                1, 1, &b, 1, 1, &zero, &c, 1, 1, 1, nullptr,
                "FLOAT_TO_BF16"),
            DCMESH_OK);
  char mode[64] = {0};
  ASSERT_GE(dcmesh_last_call_mode(mode, sizeof mode), 0);
  EXPECT_STREQ(mode, "FLOAT_TO_BF16");
  // Malformed token surfaces as a status, not an exception.
  EXPECT_EQ(dcmesh_gemm_batch_strided(
                's', DCMESH_LAYOUT_COL_MAJOR, 'N', 'N', 1, 1, 1, &one, &a,
                1, 1, &b, 1, 1, &zero, &c, 1, 1, 1, nullptr, "GIBBERISH"),
            DCMESH_ERR_BAD_MODE);
}

TEST(PublicApi, CopyOutTruncationContract) {
  const float one = 1.0f;
  float x = 1.0f;
  ASSERT_EQ(dcmesh_gemm('s', DCMESH_LAYOUT_COL_MAJOR, 'N', 'N', 1, 1, 1,
                        &one, &x, 1, &x, 1, &one, &x, 1,
                        "api/truncation-check", nullptr),
            DCMESH_OK);
  // A null/empty output buffer is an explicit error, never a crash.
  EXPECT_LT(dcmesh_last_call_site(nullptr, 0), 0);
  char probe[64] = {0};
  const int full = dcmesh_last_call_site(probe, sizeof probe);
  ASSERT_EQ(full, static_cast<int>(std::strlen("api/truncation-check")));
  // Full length comes back regardless of capacity; what fits is
  // NUL-terminated.
  char tiny[4] = {'x', 'x', 'x', 'x'};
  EXPECT_EQ(dcmesh_last_call_site(tiny, sizeof tiny), full);
  EXPECT_STREQ(tiny, "api");
  char ample[64] = {0};
  EXPECT_EQ(dcmesh_last_call_site(ample, sizeof ample), full);
  EXPECT_STREQ(ample, "api/truncation-check");
}

TEST(PublicApi, GlobalControlsRoundTrip) {
  EXPECT_EQ(dcmesh_set_policy("api/ctl=float_to_bf16"), DCMESH_OK);
  const float one = 1.0f;
  float x = 1.0f;
  ASSERT_EQ(dcmesh_gemm('s', DCMESH_LAYOUT_COL_MAJOR, 'N', 'N', 1, 1, 1,
                        &one, &x, 1, &x, 1, &one, &x, 1, "api/ctl",
                        nullptr),
            DCMESH_OK);
  char mode[64] = {0};
  ASSERT_GE(dcmesh_last_call_mode(mode, sizeof mode), 0);
  EXPECT_STREQ(mode, "FLOAT_TO_BF16");
  EXPECT_EQ(dcmesh_set_policy(""), DCMESH_OK);  // clear

  EXPECT_EQ(dcmesh_set_policy("]]]=[[["), DCMESH_ERR_BAD_POLICY);
  EXPECT_EQ(dcmesh_set_compute_mode("COMPLEX_3M"), DCMESH_OK);
  EXPECT_EQ(dcmesh_set_compute_mode("STANDARD"), DCMESH_OK);
  EXPECT_EQ(dcmesh_set_compute_mode("NOPE"), DCMESH_ERR_BAD_MODE);
  EXPECT_EQ(dcmesh_set_num_threads(1), DCMESH_OK);
  EXPECT_EQ(dcmesh_set_num_threads(-3), DCMESH_ERR_INVALID_ARGUMENT);

  const uint64_t before = dcmesh_call_count();
  ASSERT_EQ(dcmesh_gemm('s', DCMESH_LAYOUT_COL_MAJOR, 'N', 'N', 1, 1, 1,
                        &one, &x, 1, &x, 1, &one, &x, 1, nullptr, nullptr),
            DCMESH_OK);
  EXPECT_EQ(dcmesh_call_count(), before + 1);

  char report[4096] = {0};
  EXPECT_GE(dcmesh_metrics_report(report, sizeof report), 0);
}
