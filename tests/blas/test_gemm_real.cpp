// Correctness tests for sgemm/dgemm against the naive reference, across
// transposes, shapes (including blocking-boundary sizes), and alpha/beta.

#include <gtest/gtest.h>

#include <complex>
#include <tuple>
#include <vector>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/gemm_ref.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/common/rng.hpp"

namespace dcmesh::blas {
namespace {

template <typename T>
std::vector<T> random_data(std::size_t n, unsigned seed) {
  xoshiro256 rng(seed);
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1.0, 1.0));
  return v;
}

struct gemm_case {
  blas_int m, n, k;
  transpose ta, tb;
};

class RealGemm : public ::testing::TestWithParam<gemm_case> {
 protected:
  void SetUp() override { clear_compute_mode(); }
};

TEST_P(RealGemm, SgemmMatchesReference) {
  const auto [m, n, k, ta, tb] = GetParam();
  const auto rows_a = ta == transpose::none ? m : k;
  const auto cols_a = ta == transpose::none ? k : m;
  const auto rows_b = tb == transpose::none ? k : n;
  const auto cols_b = tb == transpose::none ? n : k;

  const auto a = random_data<float>(rows_a * cols_a, 1);
  const auto b = random_data<float>(rows_b * cols_b, 2);
  auto c1 = random_data<float>(m * n, 3);
  auto c2 = c1;

  sgemm(ta, tb, m, n, k, 1.7f, a.data(), rows_a, b.data(), rows_b, -0.3f,
        c1.data(), m);
  detail::gemm_ref<float, double>(ta, tb, m, n, k, 1.7f, a.data(), rows_a,
                                  b.data(), rows_b, -0.3f, c2.data(), m);

  for (blas_int i = 0; i < m * n; ++i) {
    ASSERT_NEAR(c1[i], c2[i], 1e-4f * static_cast<float>(k + 1))
        << "i=" << i;
  }
}

TEST_P(RealGemm, DgemmMatchesReference) {
  const auto [m, n, k, ta, tb] = GetParam();
  const auto rows_a = ta == transpose::none ? m : k;
  const auto cols_a = ta == transpose::none ? k : m;
  const auto rows_b = tb == transpose::none ? k : n;
  const auto cols_b = tb == transpose::none ? n : k;

  const auto a = random_data<double>(rows_a * cols_a, 4);
  const auto b = random_data<double>(rows_b * cols_b, 5);
  auto c1 = random_data<double>(m * n, 6);
  auto c2 = c1;

  dgemm(ta, tb, m, n, k, 0.9, a.data(), rows_a, b.data(), rows_b, 1.1,
        c1.data(), m);
  detail::gemm_ref<double, double>(ta, tb, m, n, k, 0.9, a.data(), rows_a,
                                   b.data(), rows_b, 1.1, c2.data(), m);
  for (blas_int i = 0; i < m * n; ++i) {
    ASSERT_NEAR(c1[i], c2[i], 1e-12 * static_cast<double>(k + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RealGemm,
    ::testing::Values(
        // Tiny and degenerate-ish shapes.
        gemm_case{1, 1, 1, transpose::none, transpose::none},
        gemm_case{3, 5, 7, transpose::none, transpose::none},
        gemm_case{5, 3, 7, transpose::trans, transpose::none},
        gemm_case{5, 3, 7, transpose::none, transpose::trans},
        gemm_case{5, 3, 7, transpose::trans, transpose::trans},
        // Microkernel edges: below/at/above MR=4, NR=16.
        gemm_case{4, 16, 8, transpose::none, transpose::none},
        gemm_case{5, 17, 9, transpose::none, transpose::none},
        gemm_case{3, 15, 3, transpose::trans, transpose::trans},
        // Cache-block boundaries: kBlockM=64, kBlockK=256, kBlockN=512.
        gemm_case{64, 32, 256, transpose::none, transpose::none},
        gemm_case{65, 33, 257, transpose::none, transpose::none},
        gemm_case{63, 513, 31, transpose::none, transpose::none},
        gemm_case{130, 70, 300, transpose::trans, transpose::none},
        // Skinny shapes like DCMESH's (tall k, small m).
        gemm_case{8, 24, 1024, transpose::trans, transpose::none},
        gemm_case{256, 8, 16, transpose::none, transpose::trans}));

TEST(RealGemmEdge, ZeroSizedDimensionsAreNoOps) {
  std::vector<float> c(6, 2.0f);
  // m = 0 / n = 0: nothing happens, C untouched.
  sgemm(transpose::none, transpose::none, 0, 3, 4, 1.0f, nullptr, 1, nullptr,
        4, 0.0f, c.data(), 1);
  EXPECT_EQ(c[0], 2.0f);
  // k = 0: C scaled by beta only.
  sgemm(transpose::none, transpose::none, 2, 3, 0, 1.0f, nullptr, 2, nullptr,
        1, 0.5f, c.data(), 2);
  for (float v : c) EXPECT_EQ(v, 1.0f);
}

TEST(RealGemmEdge, BetaZeroOverwritesGarbage) {
  std::vector<float> a{1.0f}, b{1.0f};
  std::vector<float> c{std::numeric_limits<float>::quiet_NaN()};
  sgemm(transpose::none, transpose::none, 1, 1, 1, 2.0f, a.data(), 1,
        b.data(), 1, 0.0f, c.data(), 1);
  EXPECT_EQ(c[0], 2.0f);  // NaN must not propagate through beta = 0
}

TEST(RealGemmEdge, AlphaZeroSkipsProduct) {
  std::vector<float> c{3.0f};
  sgemm(transpose::none, transpose::none, 1, 1, 1, 0.0f, nullptr, 1, nullptr,
        1, 2.0f, c.data(), 1);
  EXPECT_EQ(c[0], 6.0f);
}

TEST(RealGemmEdge, InvalidArgumentsThrow) {
  std::vector<float> buf(16, 0.0f);
  EXPECT_THROW(sgemm(transpose::none, transpose::none, -1, 1, 1, 1.0f,
                     buf.data(), 1, buf.data(), 1, 0.0f, buf.data(), 1),
               std::invalid_argument);
  // lda smaller than the rows of A.
  EXPECT_THROW(sgemm(transpose::none, transpose::none, 4, 1, 2, 1.0f,
                     buf.data(), 2, buf.data(), 2, 0.0f, buf.data(), 4),
               std::invalid_argument);
  // null C with nonzero output.
  EXPECT_THROW(sgemm(transpose::none, transpose::none, 1, 1, 1, 1.0f,
                     buf.data(), 1, buf.data(), 1, 0.0f, nullptr, 1),
               std::invalid_argument);
}

TEST(RealGemmEdge, StridedLeadingDimensions) {
  // Submatrix GEMM: lda/ldb/ldc larger than the logical rows.
  const blas_int m = 3, n = 2, k = 4, lda = 5, ldb = 6, ldc = 7;
  auto a = random_data<float>(lda * k, 10);
  auto b = random_data<float>(ldb * n, 11);
  std::vector<float> c1(ldc * n, 0.5f), c2 = c1;
  sgemm(transpose::none, transpose::none, m, n, k, 1.0f, a.data(), lda,
        b.data(), ldb, 2.0f, c1.data(), ldc);
  detail::gemm_ref<float, double>(transpose::none, transpose::none, m, n, k,
                                  1.0f, a.data(), lda, b.data(), ldb, 2.0f,
                                  c2.data(), ldc);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    ASSERT_NEAR(c1[i], c2[i], 1e-4f);
  }
  // Padding rows between columns (row index >= m) must be untouched.
  EXPECT_EQ(c1[m], 0.5f);
}

TEST(ViewGemm, DispatchesAndValidates) {
  matrix<double> a(2, 3), b(3, 2), c(2, 2);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = 1.0;
  for (std::size_t i = 0; i < b.size(); ++i) b.data()[i] = 2.0;
  gemm<double>(transpose::none, transpose::none, 1.0, a.view(), b.view(),
               0.0, c.view());
  EXPECT_DOUBLE_EQ(c(0, 0), 6.0);
  // Mismatched inner dimension throws.
  matrix<double> bad(4, 2);
  EXPECT_THROW(gemm<double>(transpose::none, transpose::none, 1.0, a.view(),
                            bad.view(), 0.0, c.view()),
               std::invalid_argument);
  // Wrong C shape throws.
  matrix<double> small_c(1, 1);
  EXPECT_THROW(gemm<double>(transpose::none, transpose::none, 1.0, a.view(),
                            b.view(), 0.0, small_c.view()),
               std::invalid_argument);
}

TEST(Threading, ResultsIndependentOfThreadCount) {
  // Each C tile is owned by one thread and the k-loop order is fixed, so
  // results must be bit-identical across thread counts.
  const blas_int m = 130, n = 70, k = 300;
  const auto a = random_data<float>(m * k, 91);
  const auto b = random_data<float>(k * n, 92);
  std::vector<float> c1(m * n, 0.0f), c4(m * n, 0.0f);
  clear_compute_mode();
  set_num_threads(1);
  sgemm(transpose::none, transpose::none, m, n, k, 1.0f, a.data(), m,
        b.data(), k, 0.0f, c1.data(), m);
  set_num_threads(4);
  sgemm(transpose::none, transpose::none, m, n, k, 1.0f, a.data(), m,
        b.data(), k, 0.0f, c4.data(), m);
  set_num_threads(0);  // restore default
  EXPECT_EQ(c1, c4);
}

TEST(Threading, MklNumThreadsEnvIsHonoured) {
  set_num_threads(0);
  env_set("MKL_NUM_THREADS", "3");
  EXPECT_EQ(get_num_threads(), 3);
  // Explicit API beats the environment.
  set_num_threads(2);
  EXPECT_EQ(get_num_threads(), 2);
  set_num_threads(0);
  env_unset("MKL_NUM_THREADS");
  EXPECT_GE(get_num_threads(), 1);
}

}  // namespace
}  // namespace dcmesh::blas
