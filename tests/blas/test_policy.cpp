// Unit tests for the per-call-site precision policy engine: glob matching,
// policy parsing, the layered resolution order, and the accuracy-guarded
// fallback (promotion ladder + per-site statistics).

#include "dcmesh/blas/precision_policy.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/common/env.hpp"

namespace dcmesh::blas {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    clear_policy();
    clear_compute_mode();
    clear_fallback_stats();
    clear_call_log();
    env_unset(kPolicyEnvVar);
    env_unset(kComputeModeEnvVar);
    env_unset(kGuardThresholdEnvVar);
  }
};

// ---------------------------------------------------------------- glob ---

TEST_F(PolicyTest, GlobMatchesLiterally) {
  EXPECT_TRUE(glob_match("lfd/nlp_prop/overlap", "lfd/nlp_prop/overlap"));
  EXPECT_FALSE(glob_match("lfd/nlp_prop/overlap", "lfd/nlp_prop/project"));
}

TEST_F(PolicyTest, GlobStarCrossesSlashes) {
  EXPECT_TRUE(glob_match("lfd/*", "lfd/remap_occ/overlap"));
  EXPECT_TRUE(glob_match("*", "anything/at/all"));
  EXPECT_TRUE(glob_match("lfd/*/overlap", "lfd/remap_occ/overlap"));
  EXPECT_FALSE(glob_match("lfd/*", "qxmd/scf/hsub"));
}

TEST_F(PolicyTest, GlobQuestionMarkMatchesOneChar) {
  EXPECT_TRUE(glob_match("lfd/remap_occ/moment?", "lfd/remap_occ/moment1"));
  EXPECT_TRUE(glob_match("lfd/remap_occ/moment?", "lfd/remap_occ/moment2"));
  EXPECT_FALSE(glob_match("lfd/remap_occ/moment?", "lfd/remap_occ/moment"));
  EXPECT_FALSE(glob_match("lfd/remap_occ/moment?",
                          "lfd/remap_occ/moment12"));
}

TEST_F(PolicyTest, GlobStarBacktracks) {
  EXPECT_TRUE(glob_match("*overlap", "lfd/remap_occ/overlap"));
  EXPECT_TRUE(glob_match("*occ*", "lfd/remap_occ/overlap"));
  EXPECT_FALSE(glob_match("*overlap", "lfd/remap_occ/moment1"));
}

// --------------------------------------------------------------- parse ---

TEST_F(PolicyTest, ParsesRulesAndFlags) {
  const auto policy = parse_policy(
      "lfd/remap_occ/*=FLOAT_TO_BF16X2; lfd/*=float_to_bf16:guarded,"
      "qxmd/*=FLOAT_TO_TF32:tol=1e-3");
  ASSERT_EQ(policy.rules.size(), 3u);
  EXPECT_EQ(policy.rules[0].pattern, "lfd/remap_occ/*");
  EXPECT_EQ(policy.rules[0].mode, compute_mode::float_to_bf16x2);
  EXPECT_FALSE(policy.rules[0].guarded);
  EXPECT_FALSE(policy.rules[0].tolerance.has_value());
  // Mode tokens are case-insensitive; `guarded` sets the flag alone.
  EXPECT_EQ(policy.rules[1].mode, compute_mode::float_to_bf16);
  EXPECT_TRUE(policy.rules[1].guarded);
  // tol= implies guarded.
  EXPECT_TRUE(policy.rules[2].guarded);
  ASSERT_TRUE(policy.rules[2].tolerance.has_value());
  EXPECT_DOUBLE_EQ(*policy.rules[2].tolerance, 1e-3);
}

TEST_F(PolicyTest, FirstMatchWins) {
  const auto policy =
      parse_policy("lfd/remap_occ/*=FLOAT_TO_BF16;lfd/*=FLOAT_TO_TF32");
  const policy_rule* rule = policy.match("lfd/remap_occ/overlap");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->mode, compute_mode::float_to_bf16);
  rule = policy.match("lfd/nlp_prop/overlap");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->mode, compute_mode::float_to_tf32);
  EXPECT_EQ(policy.match("qxmd/scf/hsub"), nullptr);
}

TEST_F(PolicyTest, ParseRejectsMalformedRules) {
  EXPECT_THROW((void)parse_policy("lfd/no_equals_sign"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_policy("=FLOAT_TO_BF16"), std::invalid_argument);
  EXPECT_THROW((void)parse_policy("lfd/*=NOT_A_MODE"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_policy("lfd/*=FLOAT_TO_BF16:bogus_flag"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_policy("lfd/*=FLOAT_TO_BF16:tol=not_a_number"),
               std::invalid_argument);
}

TEST_F(PolicyTest, EmptyPolicyTextParsesToEmptyPolicy) {
  EXPECT_TRUE(parse_policy("").empty());
  EXPECT_TRUE(parse_policy(" ; , ").empty());
}

// ---------------------------------------------------------- resolution ---

TEST_F(PolicyTest, DefaultResolvesToStandard) {
  const auto res = resolve_compute_mode("lfd/nlp_prop/overlap", {});
  EXPECT_EQ(res.mode, compute_mode::standard);
  EXPECT_EQ(res.source, policy_source::standard_default);
  EXPECT_FALSE(res.guarded);
}

TEST_F(PolicyTest, EnvGlobalAppliesToEveryCall) {
  env_set(kComputeModeEnvVar, "FLOAT_TO_TF32");
  const auto res = resolve_compute_mode("lfd/nlp_prop/overlap", {});
  EXPECT_EQ(res.mode, compute_mode::float_to_tf32);
  EXPECT_EQ(res.source, policy_source::env_global);
  // Untagged calls resolve through the same layer.
  EXPECT_EQ(resolve_compute_mode({}, {}).mode, compute_mode::float_to_tf32);
}

TEST_F(PolicyTest, ApiGlobalBeatsEnvGlobal) {
  env_set(kComputeModeEnvVar, "FLOAT_TO_TF32");
  set_compute_mode(compute_mode::float_to_bf16x2);
  const auto res = resolve_compute_mode("any/site", {});
  EXPECT_EQ(res.mode, compute_mode::float_to_bf16x2);
  EXPECT_EQ(res.source, policy_source::api_global);
}

TEST_F(PolicyTest, SitePolicyBeatsGlobalMode) {
  set_compute_mode(compute_mode::float_to_tf32);
  set_policy(parse_policy("lfd/remap_occ/*=FLOAT_TO_BF16"));
  const auto hit = resolve_compute_mode("lfd/remap_occ/overlap", {});
  EXPECT_EQ(hit.mode, compute_mode::float_to_bf16);
  EXPECT_EQ(hit.source, policy_source::site_policy);
  // A site the policy does not match falls through to the global mode.
  const auto miss = resolve_compute_mode("lfd/nlp_prop/overlap", {});
  EXPECT_EQ(miss.mode, compute_mode::float_to_tf32);
  EXPECT_EQ(miss.source, policy_source::api_global);
}

TEST_F(PolicyTest, EnvPolicyAppliesAndLosesToApiPolicy) {
  env_set(kPolicyEnvVar, "lfd/*=FLOAT_TO_BF16X3");
  auto res = resolve_compute_mode("lfd/nlp_prop/overlap", {});
  EXPECT_EQ(res.mode, compute_mode::float_to_bf16x3);
  EXPECT_EQ(res.source, policy_source::site_policy);

  set_policy(parse_policy("lfd/*=FLOAT_TO_TF32"));
  res = resolve_compute_mode("lfd/nlp_prop/overlap", {});
  EXPECT_EQ(res.mode, compute_mode::float_to_tf32);

  clear_policy();
  res = resolve_compute_mode("lfd/nlp_prop/overlap", {});
  EXPECT_EQ(res.mode, compute_mode::float_to_bf16x3);
}

TEST_F(PolicyTest, MalformedEnvPolicyIsIgnored) {
  env_set(kPolicyEnvVar, "lfd/*=NOT_A_MODE");
  const auto res = resolve_compute_mode("lfd/nlp_prop/overlap", {});
  EXPECT_EQ(res.mode, compute_mode::standard);
  EXPECT_EQ(res.source, policy_source::standard_default);
}

TEST_F(PolicyTest, ScopedModeBeatsSitePolicy) {
  set_policy(parse_policy("lfd/*=FLOAT_TO_BF16"));
  scoped_compute_mode scoped(compute_mode::float_to_bf16x2);
  const auto res = resolve_compute_mode("lfd/nlp_prop/overlap", {});
  EXPECT_EQ(res.mode, compute_mode::float_to_bf16x2);
  EXPECT_EQ(res.source, policy_source::scoped);
}

TEST_F(PolicyTest, CallOverrideBeatsEverything) {
  set_policy(parse_policy("lfd/*=FLOAT_TO_BF16"));
  set_compute_mode(compute_mode::float_to_tf32);
  scoped_compute_mode scoped(compute_mode::float_to_bf16x2);
  const auto res = resolve_compute_mode("lfd/nlp_prop/overlap",
                                        compute_mode::float_to_bf16x3);
  EXPECT_EQ(res.mode, compute_mode::float_to_bf16x3);
  EXPECT_EQ(res.source, policy_source::call_override);
}

TEST_F(PolicyTest, UntaggedCallsNeverMatchSitePolicies) {
  set_policy(parse_policy("*=FLOAT_TO_BF16"));
  const auto res = resolve_compute_mode({}, {});
  EXPECT_EQ(res.mode, compute_mode::standard);
  EXPECT_EQ(res.source, policy_source::standard_default);
}

TEST_F(PolicyTest, GuardToleranceDefaultsAndOverrides) {
  set_policy(parse_policy("a=FLOAT_TO_BF16:guarded;b=FLOAT_TO_BF16:tol=1e-5"));
  EXPECT_DOUBLE_EQ(resolve_compute_mode("a", {}).tolerance,
                   kDefaultGuardThreshold);
  EXPECT_DOUBLE_EQ(resolve_compute_mode("b", {}).tolerance, 1e-5);
  env_set(kGuardThresholdEnvVar, "0.25");
  EXPECT_DOUBLE_EQ(resolve_compute_mode("a", {}).tolerance, 0.25);
  EXPECT_DOUBLE_EQ(resolve_compute_mode("b", {}).tolerance, 1e-5);
}

// ------------------------------------------------------ promotion ladder ---

TEST_F(PolicyTest, PromotionLadderByMantissaBits) {
  EXPECT_EQ(next_higher_mode(compute_mode::float_to_bf16),
            compute_mode::float_to_tf32);
  EXPECT_EQ(next_higher_mode(compute_mode::float_to_tf32),
            compute_mode::float_to_bf16x2);
  EXPECT_EQ(next_higher_mode(compute_mode::float_to_bf16x2),
            compute_mode::float_to_bf16x3);
  EXPECT_EQ(next_higher_mode(compute_mode::float_to_bf16x3),
            compute_mode::standard);
  EXPECT_EQ(next_higher_mode(compute_mode::complex_3m),
            compute_mode::standard);
  EXPECT_EQ(next_higher_mode(compute_mode::standard),
            compute_mode::standard);
}

// ------------------------------------------------------- guarded calls ---

gemm_call<float> make_call(const std::vector<float>& a,
                           const std::vector<float>& b,
                           std::vector<float>& c, blas_int n,
                           std::string_view site) {
  gemm_call<float> call;
  call.m = call.n = call.k = n;
  call.a = a.data();
  call.lda = n;
  call.b = b.data();
  call.ldb = n;
  call.c = c.data();
  call.ldc = n;
  call.call_site = site;
  return call;
}

TEST_F(PolicyTest, GuardedCallPromotesWhenToleranceIsTight) {
  const blas_int n = 48;
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> dist(0.5f, 1.5f);
  std::vector<float> a(n * n), b(n * n), c(n * n, 0.0f);
  for (auto& v : a) v = dist(rng);
  for (auto& v : b) v = dist(rng);

  // BF16 truncation (8 mantissa bits) leaves a relative residual around
  // 1e-2 on this data — far above 1e-5, so the guard must promote.
  set_policy(parse_policy("guarded/site=FLOAT_TO_BF16:tol=1e-5"));
  run(make_call(a, b, c, n, "guarded/site"));

  const auto calls = recent_calls();
  ASSERT_EQ(calls.size(), 1u);
  const auto& record = calls.back();
  EXPECT_EQ(record.routine, "SGEMM");
  EXPECT_EQ(record.call_site, "guarded/site");
  EXPECT_EQ(record.requested_mode, compute_mode::float_to_bf16);
  EXPECT_EQ(record.fallback, fallback_verdict::promoted);
  EXPECT_GE(record.attempts, 2);
  EXPECT_NE(record.mode, compute_mode::float_to_bf16);
  // The final attempt either met the tolerance or reached standard
  // arithmetic (the top of the ladder).
  EXPECT_TRUE(record.guard_residual <= 1e-5 ||
              record.mode == compute_mode::standard);

  const auto stats = fallback_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].first, "guarded/site");
  EXPECT_EQ(stats[0].second.guarded_calls, 1u);
  EXPECT_EQ(stats[0].second.promotions, 1u);
  EXPECT_EQ(stats[0].second.last_mode, record.mode);
}

TEST_F(PolicyTest, GuardedCallPassesWithLooseTolerance) {
  const blas_int n = 32;
  std::mt19937 rng(11);
  std::uniform_real_distribution<float> dist(0.5f, 1.5f);
  std::vector<float> a(n * n), b(n * n), c(n * n, 0.0f);
  for (auto& v : a) v = dist(rng);
  for (auto& v : b) v = dist(rng);

  set_policy(parse_policy("loose/site=FLOAT_TO_BF16:tol=0.5"));
  run(make_call(a, b, c, n, "loose/site"));

  const auto calls = recent_calls();
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls.back().mode, compute_mode::float_to_bf16);
  EXPECT_EQ(calls.back().fallback, fallback_verdict::passed);
  EXPECT_EQ(calls.back().attempts, 1);

  const auto stats = fallback_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].second.guarded_calls, 1u);
  EXPECT_EQ(stats[0].second.promotions, 0u);
}

TEST_F(PolicyTest, UnguardedRuleRunsLowPrecisionUnchecked) {
  const blas_int n = 32;
  std::vector<float> a(n * n, 1.0f), b(n * n, 1.0f), c(n * n, 0.0f);
  set_policy(parse_policy("plain/site=FLOAT_TO_BF16"));
  run(make_call(a, b, c, n, "plain/site"));
  const auto calls = recent_calls();
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls.back().mode, compute_mode::float_to_bf16);
  EXPECT_EQ(calls.back().fallback, fallback_verdict::none);
  EXPECT_TRUE(fallback_stats().empty());
}

TEST_F(PolicyTest, GuardedPromotionProducesStandardQualityResult) {
  // The promoted result must actually be the higher-precision one: compare
  // against an unpoliced standard run.
  const blas_int n = 40;
  std::mt19937 rng(23);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> a(n * n), b(n * n);
  for (auto& v : a) v = dist(rng);
  for (auto& v : b) v = dist(rng);

  std::vector<float> c_ref(n * n, 0.0f);
  run(make_call(a, b, c_ref, n, {}));  // untagged -> standard

  std::vector<float> c_pol(n * n, 0.0f);
  set_policy(parse_policy("promote/me=FLOAT_TO_BF16:tol=1e-7"));
  run(make_call(a, b, c_pol, n, "promote/me"));

  // tol=1e-7 is unreachable below standard, so the ladder must end there
  // and the result must be bit-identical to the unpoliced run.
  const auto calls = recent_calls();
  EXPECT_EQ(calls.back().mode, compute_mode::standard);
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    ASSERT_EQ(c_ref[i], c_pol[i]) << "element " << i;
  }
}

}  // namespace
}  // namespace dcmesh::blas
