// Unit tests for the MKL_VERBOSE-style call log (the measurement channel
// behind Tables VI-VII and Figure 3b).

#include "dcmesh/blas/verbose.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/common/env.hpp"

namespace dcmesh::blas {
namespace {

class VerboseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clear_compute_mode();
    clear_call_log();
    env_unset(kVerboseEnvVar);
  }
  void TearDown() override {
    clear_compute_mode();
    clear_call_log();
    env_unset(kVerboseEnvVar);
  }
};

TEST_F(VerboseTest, CallsAreRecordedWithDimensions) {
  std::vector<float> a(6, 1.0f), b(8, 1.0f), c(12, 0.0f);
  sgemm(transpose::none, transpose::none, 3, 4, 2, 1.0f, a.data(), 3,
        b.data(), 2, 0.0f, c.data(), 3);
  const auto log = recent_calls();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].routine, "SGEMM");
  EXPECT_EQ(log[0].m, 3);
  EXPECT_EQ(log[0].n, 4);
  EXPECT_EQ(log[0].k, 2);
  EXPECT_EQ(log[0].transa, 'N');
  EXPECT_EQ(log[0].transb, 'N');
  EXPECT_EQ(log[0].lda, 3);
  EXPECT_GE(log[0].seconds, 0.0);
  EXPECT_DOUBLE_EQ(log[0].flops, 2.0 * 3 * 4 * 2);
  EXPECT_EQ(log[0].mode, compute_mode::standard);
}

TEST_F(VerboseTest, ActiveModeIsLogged) {
  std::vector<float> a(4, 1.0f), b(4, 1.0f), c(4, 0.0f);
  {
    scoped_compute_mode mode(compute_mode::float_to_tf32);
    sgemm(transpose::none, transpose::none, 2, 2, 2, 1.0f, a.data(), 2,
          b.data(), 2, 0.0f, c.data(), 2);
  }
  ASSERT_EQ(recent_calls().size(), 1u);
  EXPECT_EQ(recent_calls()[0].mode, compute_mode::float_to_tf32);
}

TEST_F(VerboseTest, ComplexCallsLogEightMnkFlops) {
  using C = std::complex<float>;
  std::vector<C> a(4), b(4), c(4);
  cgemm(transpose::conj_trans, transpose::none, 2, 2, 2, C(1), a.data(), 2,
        b.data(), 2, C(0), c.data(), 2);
  ASSERT_EQ(recent_calls().size(), 1u);
  EXPECT_EQ(recent_calls()[0].routine, "CGEMM");
  EXPECT_EQ(recent_calls()[0].transa, 'C');
  EXPECT_DOUBLE_EQ(recent_calls()[0].flops, 8.0 * 2 * 2 * 2);
}

TEST_F(VerboseTest, CountersAccumulateAndClear) {
  std::vector<double> a(1, 1.0), b(1, 1.0), c(1, 0.0);
  for (int i = 0; i < 5; ++i) {
    dgemm(transpose::none, transpose::none, 1, 1, 1, 1.0, a.data(), 1,
          b.data(), 1, 0.0, c.data(), 1);
  }
  EXPECT_EQ(call_count(), 5u);
  EXPECT_GE(total_call_seconds(), 0.0);
  clear_call_log();
  EXPECT_EQ(call_count(), 0u);
  EXPECT_TRUE(recent_calls().empty());
  EXPECT_EQ(total_call_seconds(), 0.0);
}

TEST_F(VerboseTest, LineFormatMatchesMklStyle) {
  call_record record;
  record.routine = "SGEMM";
  record.transa = 'N';
  record.transb = 'T';
  record.m = 128;
  record.n = 896;
  record.k = 262144;
  record.lda = 128;
  record.ldb = 896;
  record.ldc = 128;
  record.seconds = 0.012345;
  record.mode = compute_mode::float_to_bf16;
  const std::string line = record.to_string();
  EXPECT_NE(line.find("MKL_VERBOSE SGEMM(N,T,128,896,262144)"),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("mode:FLOAT_TO_BF16"), std::string::npos) << line;
  EXPECT_NE(line.find("ms"), std::string::npos) << line;
}

TEST_F(VerboseTest, VerboseEnabledFollowsEnv) {
  EXPECT_FALSE(verbose_enabled());
  env_set(kVerboseEnvVar, "2");
  EXPECT_TRUE(verbose_enabled());
  env_set(kVerboseEnvVar, "0");
  EXPECT_FALSE(verbose_enabled());
}

TEST_F(VerboseTest, UntaggedLineHasNoPolicyFields) {
  // Compatibility: untagged, unguarded records must render exactly the
  // pre-policy MKL_VERBOSE line — no site/src/fallback suffix.
  std::vector<float> a(4, 1.0f), b(4, 1.0f), c(4, 0.0f);
  sgemm(transpose::none, transpose::none, 2, 2, 2, 1.0f, a.data(), 2,
        b.data(), 2, 0.0f, c.data(), 2);
  const std::string line = recent_calls()[0].to_string();
  EXPECT_EQ(line.find(" site:"), std::string::npos) << line;
  EXPECT_EQ(line.find(" src:"), std::string::npos) << line;
  EXPECT_EQ(line.find(" fallback:"), std::string::npos) << line;
}

TEST_F(VerboseTest, TaggedLineCarriesSiteSourceAndFallback) {
  call_record record;
  record.routine = "CGEMM";
  record.m = record.n = record.k = 8;
  record.lda = record.ldb = record.ldc = 8;
  record.mode = compute_mode::float_to_tf32;
  record.call_site = "lfd/remap_occ/overlap";
  record.source = policy_source::site_policy;
  record.requested_mode = compute_mode::float_to_bf16;
  record.fallback = fallback_verdict::promoted;
  record.guard_residual = 3.2e-3;
  record.attempts = 2;
  const std::string line = record.to_string();
  EXPECT_NE(line.find("site:lfd/remap_occ/overlap"), std::string::npos)
      << line;
  EXPECT_NE(line.find("src:site_policy"), std::string::npos) << line;
  EXPECT_NE(line.find("fallback:promoted"), std::string::npos) << line;
  EXPECT_NE(line.find("from=FLOAT_TO_BF16"), std::string::npos) << line;
}

TEST_F(VerboseTest, UnwritableJsonSinkWarnsAndKeepsRunning) {
  // An unwritable MKL_VERBOSE_JSON path must not throw, abort, or lose
  // the in-memory call log — the sink is best-effort telemetry.
  env_set(kVerboseJsonEnvVar, "/nonexistent-dcmesh-dir/sub/verbose.jsonl");
  env_set(kVerboseEnvVar, "2");
  std::vector<float> a(4, 1.0f), b(4, 1.0f), c(4, 0.0f);
  EXPECT_NO_THROW(sgemm(transpose::none, transpose::none, 2, 2, 2, 1.0f,
                        a.data(), 2, b.data(), 2, 0.0f, c.data(), 2));
  EXPECT_EQ(recent_calls().size(), 1u);
  env_unset(kVerboseJsonEnvVar);
}

TEST_F(VerboseTest, JsonSinkWritesOneObjectPerCall) {
  const std::string path =
      ::testing::TempDir() + "/dcmesh_verbose_sink_test.jsonl";
  std::remove(path.c_str());
  env_set(kVerboseJsonEnvVar, path);

  std::vector<float> a(6, 1.0f), b(8, 1.0f), c(12, 0.0f);
  sgemm(transpose::none, transpose::none, 3, 4, 2, 1.0f, a.data(), 3,
        b.data(), 2, 0.0f, c.data(), 3);
  std::vector<double> da(1, 1.0), db(1, 1.0), dc(1, 0.0);
  dgemm(transpose::none, transpose::none, 1, 1, 1, 1.0, da.data(), 1,
        db.data(), 1, 0.0, dc.data(), 1);
  env_unset(kVerboseJsonEnvVar);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"routine\":\"SGEMM\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"m\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"mode\":\"STANDARD\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"site\":\"\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"fallback\":\"none\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"routine\":\"DGEMM\""), std::string::npos);
  // Every line is one well-formed JSON object (quick structural check).
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  std::remove(path.c_str());
}

TEST_F(VerboseTest, JsonEscapesSpecialCharacters) {
  call_record record;
  record.routine = "SG\"EMM\\";
  const std::string json = record.to_json();
  EXPECT_NE(json.find("\"routine\":\"SG\\\"EMM\\\\\""), std::string::npos)
      << json;
}

TEST_F(VerboseTest, GemmHelpers) {
  EXPECT_DOUBLE_EQ(gemm_flops(false, 10, 20, 30), 2.0 * 10 * 20 * 30);
  EXPECT_DOUBLE_EQ(gemm_flops(true, 10, 20, 30), 8.0 * 10 * 20 * 30);
  // bytes: A(m*k) + B(k*n) + 2*C(m*n), each elem_bytes.
  EXPECT_DOUBLE_EQ(gemm_bytes(2, 3, 4, 8),
                   (2.0 * 4 + 4.0 * 3 + 2.0 * 2 * 3) * 8);
}

}  // namespace
}  // namespace dcmesh::blas
