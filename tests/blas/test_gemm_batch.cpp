// Tests for the strided batched GEMM.

#include "dcmesh/blas/gemm_batch.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <string>
#include <vector>

#include "dcmesh/blas/autotune_hook.hpp"
#include "dcmesh/blas/gemm_ref.hpp"
#include "dcmesh/blas/precision_policy.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/trace/metrics.hpp"
#include "dcmesh/trace/tracer.hpp"

namespace dcmesh::blas {
namespace {

TEST(GemmBatch, EachSlotMatchesSingleCall) {
  xoshiro256 rng(1);
  const blas_int m = 4, n = 3, k = 5, batch = 7;
  std::vector<double> a(m * k * batch), b(k * n * batch),
      c(m * n * batch, 0.5), c_ref(m * n * batch, 0.5);
  for (auto& x : a) x = rng.uniform(-1, 1);
  for (auto& x : b) x = rng.uniform(-1, 1);
  clear_compute_mode();
  gemm_batch_strided<double>(transpose::none, transpose::none, m, n, k, 1.5,
                             a.data(), m, m * k, b.data(), k, k * n, 2.0,
                             c.data(), m, m * n, batch);
  for (blas_int i = 0; i < batch; ++i) {
    detail::gemm_ref<double, double>(
        transpose::none, transpose::none, m, n, k, 1.5, a.data() + i * m * k,
        m, b.data() + i * k * n, k, 2.0, c_ref.data() + i * m * n, m);
  }
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], c_ref[i], 1e-12) << i;
  }
}

TEST(GemmBatch, SharedOperandViaZeroStride) {
  // One B shared across the batch (stride_b = 0).
  xoshiro256 rng(2);
  const blas_int m = 3, n = 3, k = 4, batch = 5;
  std::vector<float> a(m * k * batch), b(k * n), c(m * n * batch, 0.0f);
  for (auto& x : a) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : b) x = static_cast<float>(rng.uniform(-1, 1));
  clear_compute_mode();
  gemm_batch_strided<float>(transpose::none, transpose::none, m, n, k, 1.0f,
                            a.data(), m, m * k, b.data(), k, 0, 0.0f,
                            c.data(), m, m * n, batch);
  for (blas_int i = 0; i < batch; ++i) {
    std::vector<float> ref(m * n, 0.0f);
    detail::gemm_ref<float, double>(transpose::none, transpose::none, m, n,
                                    k, 1.0f, a.data() + i * m * k, m,
                                    b.data(), k, 0.0f, ref.data(), m);
    for (blas_int j = 0; j < m * n; ++j) {
      ASSERT_NEAR(c[i * m * n + j], ref[j], 1e-4f);
    }
  }
}

TEST(GemmBatch, ComplexHonoursComputeMode) {
  using C = std::complex<float>;
  xoshiro256 rng(3);
  const blas_int m = 6, n = 6, k = 64, batch = 3;
  std::vector<C> a(m * k * batch), b(k * n * batch);
  for (auto& x : a) {
    x = {static_cast<float>(rng.uniform(0.1, 1)),
         static_cast<float>(rng.uniform(0.1, 1))};
  }
  for (auto& x : b) {
    x = {static_cast<float>(rng.uniform(0.1, 1)),
         static_cast<float>(rng.uniform(0.1, 1))};
  }
  std::vector<C> c_std(m * n * batch), c_mode(m * n * batch);
  clear_compute_mode();
  gemm_batch_strided<C>(transpose::none, transpose::none, m, n, k, C(1),
                        a.data(), m, m * k, b.data(), k, k * n, C(0),
                        c_std.data(), m, m * n, batch);
  {
    scoped_compute_mode mode(compute_mode::float_to_bf16);
    gemm_batch_strided<C>(transpose::none, transpose::none, m, n, k, C(1),
                          a.data(), m, m * k, b.data(), k, k * n, C(0),
                          c_mode.data(), m, m * n, batch);
  }
  double max_diff = 0.0;
  for (std::size_t i = 0; i < c_std.size(); ++i) {
    max_diff = std::max(
        max_diff, static_cast<double>(std::abs(c_std[i] - c_mode[i])));
  }
  EXPECT_GT(max_diff, 0.0);
  EXPECT_LT(max_diff, 0.05 * std::abs(c_std[0]));
}

TEST(GemmBatch, ZeroBatchIsNoOp) {
  std::vector<double> c{42.0};
  gemm_batch_strided<double>(transpose::none, transpose::none, 1, 1, 1, 1.0,
                             nullptr, 1, 1, nullptr, 1, 1, 0.0, c.data(), 1,
                             1, 0);
  EXPECT_EQ(c[0], 42.0);
}

TEST(GemmBatch, OneSpanPerBatchedCall) {
  auto& collector = trace::tracer::instance();
  collector.set_enabled(true);
  collector.clear();

  xoshiro256 rng(4);
  const blas_int m = 4, n = 4, k = 4, batch = 5;
  std::vector<float> a(m * k * batch), b(k * n * batch), c(m * n * batch);
  for (auto& x : a) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : b) x = static_cast<float>(rng.uniform(-1, 1));
  clear_compute_mode();
  gemm_batch_strided<float>(transpose::none, transpose::none, m, n, k, 1.0f,
                            a.data(), m, m * k, b.data(), k, k * n, 0.0f,
                            c.data(), m, m * n, batch, "batch/span_site");

  std::size_t batch_spans = 0, per_element_spans = 0;
  for (const auto& event : collector.snapshot()) {
    if (event.category == "gemm_batch") ++batch_spans;
    if (event.category == "gemm") ++per_element_spans;
  }
  collector.set_enabled(false);
  collector.clear();

  // The whole batched call is ONE span (annotated with batch and
  // batch-total flops), not `batch` per-element spans.
  EXPECT_EQ(batch_spans, 1u);
  EXPECT_EQ(per_element_spans, 0u);
}

TEST(GemmBatch, MetricsAccumulateBatchTimesPerProblemFlops) {
  trace::clear_gemm_metrics();
  xoshiro256 rng(5);
  const blas_int m = 6, n = 5, k = 7, batch = 4;
  std::vector<float> a(m * k * batch), b(k * n * batch), c(m * n * batch);
  for (auto& x : a) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : b) x = static_cast<float>(rng.uniform(-1, 1));
  clear_compute_mode();
  gemm_batch_strided<float>(transpose::none, transpose::none, m, n, k, 1.0f,
                            a.data(), m, m * k, b.data(), k, k * n, 0.0f,
                            c.data(), m, m * n, batch, "batch/flops_site");

  const auto counters = trace::gemm_metrics_for("batch/flops_site");
  EXPECT_EQ(counters.calls, static_cast<std::uint64_t>(batch));
  EXPECT_DOUBLE_EQ(counters.flops, batch * 2.0 * m * n * k);
  trace::clear_gemm_metrics();
}

TEST(GemmBatch, AutoPolicyResolvesOncePerBatch) {
  // A counting stand-in for the autotuner: the batched call must consult
  // it exactly once, and every element must run at its answer.
  static int hook_calls;
  hook_calls = 0;
  set_auto_tune_hook([](const auto_tune_request& request)
                         -> std::optional<auto_tune_choice> {
    ++hook_calls;
    EXPECT_EQ(request.routine, "SGEMM");
    return auto_tune_choice{compute_mode::float_to_bf16x3,
                            auto_provenance::calibrated, 1.0};
  });
  set_policy(parse_policy("batch/auto_site=AUTO"));
  trace::clear_gemm_metrics();

  xoshiro256 rng(6);
  const blas_int m = 4, n = 4, k = 8, batch = 6;
  std::vector<float> a(m * k * batch), b(k * n * batch), c(m * n * batch);
  for (auto& x : a) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : b) x = static_cast<float>(rng.uniform(-1, 1));
  gemm_batch_strided<float>(transpose::none, transpose::none, m, n, k, 1.0f,
                            a.data(), m, m * k, b.data(), k, k * n, 0.0f,
                            c.data(), m, m * n, batch, "batch/auto_site");

  EXPECT_EQ(hook_calls, 1);
  const auto counters = trace::gemm_metrics_for("batch/auto_site");
  EXPECT_EQ(counters.calls, static_cast<std::uint64_t>(batch));
  const auto mode_it = counters.mode_calls.find("FLOAT_TO_BF16X3");
  ASSERT_NE(mode_it, counters.mode_calls.end());
  EXPECT_EQ(mode_it->second, static_cast<std::uint64_t>(batch));

  set_auto_tune_hook({});
  clear_policy();
  trace::clear_gemm_metrics();
}

TEST(GemmBatch, OverlapValidation) {
  std::vector<double> buf(64, 0.0);
  // stride_c smaller than one C footprint must throw.
  EXPECT_THROW(gemm_batch_strided<double>(
                   transpose::none, transpose::none, 2, 2, 2, 1.0,
                   buf.data(), 2, 4, buf.data() + 16, 2, 4, 0.0,
                   buf.data() + 32, 2, /*stride_c=*/2, 3),
               std::invalid_argument);
  EXPECT_THROW(gemm_batch_strided<double>(
                   transpose::none, transpose::none, 2, 2, 2, 1.0,
                   buf.data(), 2, /*stride_a=*/1, buf.data() + 16, 2, 4,
                   0.0, buf.data() + 32, 2, 4, 3),
               std::invalid_argument);
  EXPECT_THROW(gemm_batch_strided<double>(
                   transpose::none, transpose::none, 1, 1, 1, 1.0,
                   buf.data(), 1, 1, buf.data(), 1, 1, 0.0, buf.data(), 1,
                   1, -1),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcmesh::blas
