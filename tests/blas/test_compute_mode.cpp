// Unit tests for the compute-mode registry and resolution order
// (paper Table II + the env-var control the methodology depends on).

#include "dcmesh/blas/compute_mode.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "dcmesh/common/env.hpp"

namespace dcmesh::blas {
namespace {

class ComputeModeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clear_compute_mode();
    env_unset(kComputeModeEnvVar);
  }
  void TearDown() override {
    clear_compute_mode();
    env_unset(kComputeModeEnvVar);
  }
};

TEST_F(ComputeModeTest, DefaultIsStandard) {
  EXPECT_EQ(active_compute_mode(), compute_mode::standard);
}

TEST_F(ComputeModeTest, RegistryMatchesTable2) {
  const auto& reg = compute_mode_registry();
  ASSERT_EQ(reg.size(), 6u);
  // Table II rows: env var token and peak theoretical speedup vs FP32.
  EXPECT_EQ(info(compute_mode::float_to_bf16).env_token, "FLOAT_TO_BF16");
  EXPECT_DOUBLE_EQ(info(compute_mode::float_to_bf16).peak_theoretical_speedup,
                   16.0);
  EXPECT_EQ(info(compute_mode::float_to_bf16x2).env_token,
            "FLOAT_TO_BF16X2");
  EXPECT_DOUBLE_EQ(
      info(compute_mode::float_to_bf16x2).peak_theoretical_speedup,
      16.0 / 3.0);
  EXPECT_EQ(info(compute_mode::float_to_bf16x3).env_token,
            "FLOAT_TO_BF16X3");
  EXPECT_DOUBLE_EQ(
      info(compute_mode::float_to_bf16x3).peak_theoretical_speedup,
      8.0 / 3.0);
  EXPECT_EQ(info(compute_mode::float_to_tf32).env_token, "FLOAT_TO_TF32");
  EXPECT_DOUBLE_EQ(info(compute_mode::float_to_tf32).peak_theoretical_speedup,
                   8.0);
  EXPECT_EQ(info(compute_mode::complex_3m).env_token, "COMPLEX_3M");
  EXPECT_DOUBLE_EQ(info(compute_mode::complex_3m).peak_theoretical_speedup,
                   4.0 / 3.0);
}

TEST_F(ComputeModeTest, ComponentProducts) {
  // 1, 3, 6 products explain the 16x, 16/3x, 8/3x ladder.
  EXPECT_EQ(info(compute_mode::float_to_bf16).component_products, 1);
  EXPECT_EQ(info(compute_mode::float_to_bf16x2).component_products, 3);
  EXPECT_EQ(info(compute_mode::float_to_bf16x3).component_products, 6);
  EXPECT_EQ(info(compute_mode::float_to_tf32).component_products, 1);
}

TEST_F(ComputeModeTest, ParseTokens) {
  EXPECT_EQ(parse_compute_mode("FLOAT_TO_BF16"),
            compute_mode::float_to_bf16);
  EXPECT_EQ(parse_compute_mode("float_to_bf16x2"),
            compute_mode::float_to_bf16x2);  // case-insensitive
  EXPECT_EQ(parse_compute_mode("  COMPLEX_3M  "),
            compute_mode::complex_3m);  // trimmed
  EXPECT_EQ(parse_compute_mode("bogus"), std::nullopt);
  EXPECT_EQ(parse_compute_mode(""), std::nullopt);
}

TEST_F(ComputeModeTest, EnvVarSelectsMode) {
  // The paper's whole point: "requires no source code changes (only
  // environment variables)".
  env_set(kComputeModeEnvVar, "FLOAT_TO_TF32");
  EXPECT_EQ(active_compute_mode(), compute_mode::float_to_tf32);
  env_set(kComputeModeEnvVar, "FLOAT_TO_BF16X3");
  EXPECT_EQ(active_compute_mode(), compute_mode::float_to_bf16x3);
}

TEST_F(ComputeModeTest, UnknownEnvValueFallsBackToStandard) {
  env_set(kComputeModeEnvVar, "NOT_A_MODE");
  EXPECT_EQ(active_compute_mode(), compute_mode::standard);
}

TEST_F(ComputeModeTest, ApiOverridesEnv) {
  env_set(kComputeModeEnvVar, "FLOAT_TO_BF16");
  set_compute_mode(compute_mode::complex_3m);
  EXPECT_EQ(active_compute_mode(), compute_mode::complex_3m);
  clear_compute_mode();
  EXPECT_EQ(active_compute_mode(), compute_mode::float_to_bf16);
}

TEST_F(ComputeModeTest, ScopedOverrideNestsAndRestores) {
  set_compute_mode(compute_mode::float_to_bf16);
  {
    scoped_compute_mode outer(compute_mode::float_to_tf32);
    EXPECT_EQ(active_compute_mode(), compute_mode::float_to_tf32);
    {
      scoped_compute_mode inner(compute_mode::standard);
      EXPECT_EQ(active_compute_mode(), compute_mode::standard);
    }
    EXPECT_EQ(active_compute_mode(), compute_mode::float_to_tf32);
  }
  EXPECT_EQ(active_compute_mode(), compute_mode::float_to_bf16);
}

TEST_F(ComputeModeTest, ScopedOverrideIsThreadLocal) {
  // The scoped override must not leak across threads: a worker spawned
  // while an override is live on this thread still sees the process-wide
  // resolution (here: the env-var mode).
  env_set(kComputeModeEnvVar, "FLOAT_TO_BF16");
  scoped_compute_mode scoped(compute_mode::float_to_tf32);
  EXPECT_EQ(active_compute_mode(), compute_mode::float_to_tf32);
  compute_mode seen_on_worker = compute_mode::standard;
  std::thread([&] { seen_on_worker = active_compute_mode(); }).join();
  EXPECT_EQ(seen_on_worker, compute_mode::float_to_bf16);
}

TEST_F(ComputeModeTest, SetComputeModeIsProcessWide) {
  // By contrast, set_compute_mode() is a process-global setting and must
  // be visible from every thread.
  set_compute_mode(compute_mode::float_to_bf16x2);
  compute_mode seen_on_worker = compute_mode::standard;
  std::thread([&] { seen_on_worker = active_compute_mode(); }).join();
  EXPECT_EQ(seen_on_worker, compute_mode::float_to_bf16x2);
}

TEST_F(ComputeModeTest, Names) {
  EXPECT_EQ(name(compute_mode::standard), "FP32");
  EXPECT_EQ(name(compute_mode::float_to_bf16), "BF16");
  EXPECT_EQ(name(compute_mode::float_to_bf16x2), "BF16x2");
  EXPECT_EQ(name(compute_mode::float_to_bf16x3), "BF16x3");
  EXPECT_EQ(name(compute_mode::float_to_tf32), "TF32");
  EXPECT_EQ(name(compute_mode::complex_3m), "Complex_3m");
}

TEST_F(ComputeModeTest, ComponentMantissaBits) {
  EXPECT_EQ(info(compute_mode::float_to_bf16).component_mantissa_bits, 7);
  EXPECT_EQ(info(compute_mode::float_to_tf32).component_mantissa_bits, 10);
  EXPECT_EQ(info(compute_mode::standard).component_mantissa_bits, 23);
}

}  // namespace
}  // namespace dcmesh::blas
