// Unit tests for gemv/ger (level 2) and syrk/herk (rank-k updates).

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "dcmesh/blas/gemm_ref.hpp"
#include "dcmesh/blas/level2.hpp"
#include "dcmesh/blas/rank_k.hpp"
#include "dcmesh/common/rng.hpp"

namespace dcmesh::blas {
namespace {

using cf = std::complex<float>;

TEST(Gemv, NoTranspose) {
  // A = [[1,3],[2,4]] column-major, x = [1,1]: A x = [4, 6].
  std::vector<double> a{1, 2, 3, 4}, x{1, 1}, y{10, 10};
  gemv<double>(transpose::none, 2, 2, 1.0, a.data(), 2, x.data(), 1, 0.5,
               y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 4 + 5);
  EXPECT_DOUBLE_EQ(y[1], 6 + 5);
}

TEST(Gemv, TransposeAndConjugate) {
  std::vector<cf> a{{1, 1}, {0, 0}, {0, 0}, {2, -1}};  // diag(1+i, 2-i)
  std::vector<cf> x{{1, 0}, {1, 0}};
  std::vector<cf> y(2);
  gemv<cf>(transpose::trans, 2, 2, cf(1), a.data(), 2, x.data(), 1, cf(0),
           y.data(), 1);
  EXPECT_EQ(y[0], cf(1, 1));
  gemv<cf>(transpose::conj_trans, 2, 2, cf(1), a.data(), 2, x.data(), 1,
           cf(0), y.data(), 1);
  EXPECT_EQ(y[0], cf(1, -1));
  EXPECT_EQ(y[1], cf(2, 1));
}

TEST(Gemv, MatchesGemmOnRandomData) {
  xoshiro256 rng(3);
  const blas_int m = 7, n = 5;
  std::vector<double> a(m * n), x(n), y1(m, 0.3), y2(m, 0.3);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : x) v = rng.uniform(-1, 1);
  gemv<double>(transpose::none, m, n, 1.5, a.data(), m, x.data(), 1, 2.0,
               y1.data(), 1);
  // gemv == gemm with n = 1.
  detail::gemm_ref<double, double>(transpose::none, transpose::none, m, 1,
                                   n, 1.5, a.data(), m, x.data(), n, 2.0,
                                   y2.data(), m);
  for (blas_int i = 0; i < m; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-13);
}

TEST(Gemv, BetaZeroClearsNaN) {
  std::vector<double> a{1}, x{1};
  std::vector<double> y{std::numeric_limits<double>::quiet_NaN()};
  gemv<double>(transpose::none, 1, 1, 1.0, a.data(), 1, x.data(), 1, 0.0,
               y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
}

TEST(Ger, RankOneUpdate) {
  std::vector<double> a(4, 0.0), x{1, 2}, y{3, 4};
  ger<double>(2, 2, 1.0, x.data(), 1, y.data(), 1, a.data(), 2);
  // A = x y^T: [[3,4],[6,8]] column-major {3,6,4,8}.
  EXPECT_EQ(a, (std::vector<double>{3, 6, 4, 8}));
}

TEST(Gerc, ConjugatesY) {
  std::vector<cf> a(1, cf(0)), x{{0, 1}}, y{{0, 1}};
  gerc<cf>(1, 1, cf(1), x.data(), 1, y.data(), 1, a.data(), 1);
  EXPECT_EQ(a[0], cf(1, 0));  // i * conj(i) = 1
}

TEST(Syrk, MatchesGemmAndIsSymmetric) {
  xoshiro256 rng(5);
  const blas_int n = 6, k = 9;
  std::vector<float> a(n * k);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> c(n * n, 0.0f), ref(n * n, 0.0f);
  clear_compute_mode();
  syrk<float>(uplo::upper, transpose::none, n, k, 1.0f, a.data(), n, 0.0f,
              c.data(), n);
  detail::gemm_ref<float, double>(transpose::none, transpose::trans, n, n,
                                  k, 1.0f, a.data(), n, a.data(), n, 0.0f,
                                  ref.data(), n);
  for (blas_int j = 0; j < n; ++j) {
    for (blas_int i = 0; i < n; ++i) {
      EXPECT_NEAR(c[i + j * n], ref[i + j * n], 1e-4f);
      EXPECT_EQ(c[i + j * n], c[j + i * n]);  // exact symmetry
    }
  }
}

TEST(Herk, HermitianOverlapExactly) {
  xoshiro256 rng(6);
  const blas_int ngrid = 64, norb = 5;
  std::vector<cf> psi(ngrid * norb);
  for (auto& v : psi) {
    v = {static_cast<float>(rng.uniform(-1, 1)),
         static_cast<float>(rng.uniform(-1, 1))};
  }
  std::vector<cf> g(norb * norb);
  clear_compute_mode();
  // G = Psi^H Psi (the LFD overlap) via herk.
  herk<float>(uplo::upper, transpose::conj_trans, norb, ngrid, 1.0f,
              psi.data(), ngrid, 0.0f, g.data(), norb);
  for (blas_int j = 0; j < norb; ++j) {
    EXPECT_EQ(g[j + j * norb].imag(), 0.0f);   // exactly real diagonal
    EXPECT_GT(g[j + j * norb].real(), 0.0f);   // positive definite-ish
    for (blas_int i = 0; i < norb; ++i) {
      EXPECT_EQ(g[i + j * norb], std::conj(g[j + i * norb]));
    }
  }
}

TEST(Herk, HonoursComputeMode) {
  xoshiro256 rng(7);
  const blas_int n = 4, k = 256;
  std::vector<cf> a(n * k);
  for (auto& v : a) {
    v = {static_cast<float>(rng.uniform(0.1, 1)),
         static_cast<float>(rng.uniform(0.1, 1))};
  }
  std::vector<cf> std_c(n * n), bf16_c(n * n);
  clear_compute_mode();
  herk<float>(uplo::upper, transpose::none, n, k, 1.0f, a.data(), n, 0.0f,
              std_c.data(), n);
  {
    scoped_compute_mode mode(compute_mode::float_to_bf16);
    herk<float>(uplo::upper, transpose::none, n, k, 1.0f, a.data(), n, 0.0f,
                bf16_c.data(), n);
  }
  double max_diff = 0.0;
  for (blas_int i = 0; i < n * n; ++i) {
    max_diff = std::max(max_diff,
                        static_cast<double>(std::abs(std_c[i] - bf16_c[i])));
  }
  EXPECT_GT(max_diff, 0.0);   // the mode really changed the arithmetic
  EXPECT_LT(max_diff / std::abs(std_c[0]), 0.05);  // but only slightly
}

TEST(RankK, ValidationThrows) {
  std::vector<double> buf(16, 0.0);
  EXPECT_THROW(syrk<double>(uplo::upper, transpose::none, -1, 1, 1.0,
                            buf.data(), 1, 0.0, buf.data(), 1),
               std::invalid_argument);
  EXPECT_THROW(herk<double>(uplo::lower, transpose::none, 4, 1, 1.0,
                            reinterpret_cast<std::complex<double>*>(
                                buf.data()),
                            2, 0.0,
                            reinterpret_cast<std::complex<double>*>(
                                buf.data()),
                            4),
               std::invalid_argument);
}

TEST(Gemv, ValidationThrows) {
  std::vector<double> buf(4, 0.0);
  EXPECT_THROW(gemv<double>(transpose::none, 2, 2, 1.0, buf.data(), 1,
                            buf.data(), 1, 0.0, buf.data(), 1),
               std::invalid_argument);  // lda < m
  EXPECT_THROW(gemv<double>(transpose::none, 2, 2, 1.0, buf.data(), 2,
                            buf.data(), 0, 0.0, buf.data(), 1),
               std::invalid_argument);  // incx = 0
}

}  // namespace
}  // namespace dcmesh::blas
