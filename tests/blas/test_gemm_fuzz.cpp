// Randomized GEMM conformance sweep: many random shapes, operations,
// leading dimensions, and alpha/beta values for all four precisions and
// all compute modes, each validated against the double-accumulated
// reference.  This is the broad-coverage net behind the targeted tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/gemm_ref.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/sched/config.hpp"

namespace dcmesh::blas {
namespace {

struct fuzz_case {
  unsigned seed;
};

transpose random_op(xoshiro256& rng, bool allow_conj) {
  const double u = rng.uniform();
  if (u < 0.34) return transpose::none;
  if (u < 0.67 || !allow_conj) return transpose::trans;
  return transpose::conj_trans;
}

template <typename T>
T random_scalar(xoshiro256& rng) {
  if constexpr (std::is_floating_point_v<T>) {
    // Mix exact-zero/one special cases with generic values.
    const double u = rng.uniform();
    if (u < 0.15) return T(0);
    if (u < 0.3) return T(1);
    return static_cast<T>(rng.uniform(-2, 2));
  } else {
    using R = typename T::value_type;
    const double u = rng.uniform();
    if (u < 0.15) return T(0);
    if (u < 0.3) return T(1);
    return {static_cast<R>(rng.uniform(-2, 2)),
            static_cast<R>(rng.uniform(-2, 2))};
  }
}

template <typename T>
std::vector<T> random_vec(xoshiro256& rng, std::size_t n) {
  std::vector<T> v(n);
  for (auto& x : v) {
    if constexpr (std::is_floating_point_v<T>) {
      x = static_cast<T>(rng.uniform(-1, 1));
    } else {
      using R = typename T::value_type;
      x = {static_cast<R>(rng.uniform(-1, 1)),
           static_cast<R>(rng.uniform(-1, 1))};
    }
  }
  return v;
}

/// Run one case of explicit shape (m, n, k) and ops for type T under
/// `mode`, validating against the double-accumulated reference with
/// tolerance tol_scale * max|C_ref| * (1 + sqrt(k)).
template <typename T>
void run_shape_case(unsigned seed, compute_mode mode, double tol_scale,
                    blas_int m, blas_int n, blas_int k, transpose ta,
                    transpose tb) {
  xoshiro256 rng(seed);
  const blas_int rows_a = ta == transpose::none ? m : k;
  const blas_int cols_a = ta == transpose::none ? k : m;
  const blas_int rows_b = tb == transpose::none ? k : n;
  const blas_int cols_b = tb == transpose::none ? n : k;
  // ld >= max(1, rows): BLAS requires a positive leading dimension even
  // for zero-row operands.
  const blas_int lda = std::max<blas_int>(rows_a, 1) +
                       static_cast<blas_int>(rng.uniform() * 5);
  const blas_int ldb = std::max<blas_int>(rows_b, 1) +
                       static_cast<blas_int>(rng.uniform() * 5);
  const blas_int ldc =
      std::max<blas_int>(m, 1) + static_cast<blas_int>(rng.uniform() * 5);

  const auto a = random_vec<T>(rng, static_cast<std::size_t>(lda * cols_a));
  const auto b = random_vec<T>(rng, static_cast<std::size_t>(ldb * cols_b));
  auto c = random_vec<T>(rng, static_cast<std::size_t>(ldc * n));
  auto c_ref = c;
  const T alpha = random_scalar<T>(rng);
  const T beta = random_scalar<T>(rng);

  {
    scoped_compute_mode scope(mode);
    gemm<T>(ta, tb, alpha, {a.data(), static_cast<std::size_t>(rows_a),
                            static_cast<std::size_t>(cols_a),
                            static_cast<std::size_t>(lda)},
            {b.data(), static_cast<std::size_t>(rows_b),
             static_cast<std::size_t>(cols_b),
             static_cast<std::size_t>(ldb)},
            beta,
            {c.data(), static_cast<std::size_t>(m),
             static_cast<std::size_t>(n), static_cast<std::size_t>(ldc)});
  }
  if constexpr (std::is_same_v<T, float>) {
    detail::gemm_ref<float, double>(ta, tb, m, n, k, alpha, a.data(), lda,
                                    b.data(), ldb, beta, c_ref.data(), ldc);
  } else if constexpr (std::is_same_v<T, double>) {
    detail::gemm_ref<double, double>(ta, tb, m, n, k, alpha, a.data(), lda,
                                     b.data(), ldb, beta, c_ref.data(),
                                     ldc);
  } else {
    using Z = std::complex<double>;
    detail::gemm_ref<T, Z>(ta, tb, m, n, k, alpha, a.data(), lda, b.data(),
                           ldb, beta, c_ref.data(), ldc);
  }

  double scale = 1.0;
  for (const auto& v : c_ref) scale = std::max(scale, (double)std::abs(v));
  const double tol = tol_scale * scale * (1.0 + std::sqrt((double)k));
  for (blas_int j = 0; j < n; ++j) {
    for (blas_int i = 0; i < m; ++i) {
      const auto idx = static_cast<std::size_t>(i + j * ldc);
      ASSERT_NEAR(std::abs(c[idx] - c_ref[idx]), 0.0, tol)
          << "seed=" << seed << " (" << m << "," << n << "," << k << ") op("
          << static_cast<char>(ta) << "," << static_cast<char>(tb) << ")";
    }
  }
  // Rows ldc > m of each C column are padding and must be untouched.
  for (blas_int j = 0; j < n; ++j) {
    for (blas_int i = m; i < ldc; ++i) {
      const auto idx = static_cast<std::size_t>(i + j * ldc);
      ASSERT_EQ(c[idx], c_ref[idx]) << "padding touched, seed=" << seed;
    }
  }
}

/// Run one random-shape case for type T under `mode`.
template <typename T>
void run_case(unsigned seed, compute_mode mode, double tol_scale) {
  xoshiro256 rng(seed);
  const auto m = static_cast<blas_int>(1 + rng.uniform() * 40);
  const auto n = static_cast<blas_int>(1 + rng.uniform() * 40);
  const auto k = static_cast<blas_int>(1 + rng.uniform() * 150);
  const transpose ta = random_op(rng, !std::is_floating_point_v<T>);
  const transpose tb = random_op(rng, !std::is_floating_point_v<T>);
  run_shape_case<T>(seed + 7919, mode, tol_scale, m, n, k, ta, tb);
}

class GemmFuzz : public ::testing::TestWithParam<fuzz_case> {};

TEST_P(GemmFuzz, AllTypesStandardMode) {
  clear_compute_mode();
  const unsigned seed = GetParam().seed;
  run_case<float>(seed, compute_mode::standard, 1e-5);
  run_case<double>(seed + 1000, compute_mode::standard, 1e-13);
  run_case<std::complex<float>>(seed + 2000, compute_mode::standard, 2e-5);
  run_case<std::complex<double>>(seed + 3000, compute_mode::standard,
                                 1e-13);
}

TEST_P(GemmFuzz, Fp32UnderEveryAlternativeMode) {
  const unsigned seed = GetParam().seed;
  run_case<float>(seed + 100, compute_mode::float_to_bf16, 6e-3);
  run_case<float>(seed + 200, compute_mode::float_to_bf16x2, 1e-4);
  run_case<float>(seed + 300, compute_mode::float_to_bf16x3, 2e-5);
  run_case<float>(seed + 400, compute_mode::float_to_tf32, 8e-4);
  run_case<float>(seed + 500, compute_mode::complex_3m, 1e-5);
  run_case<std::complex<float>>(seed + 600, compute_mode::float_to_bf16,
                                6e-3);
  run_case<std::complex<float>>(seed + 700, compute_mode::complex_3m,
                                4e-5);
  run_case<std::complex<float>>(seed + 800, compute_mode::float_to_bf16x3,
                                4e-5);
}

// ---------------------------------------------------------------------------
// Edge-shape property sweep: every compute mode at the micro-kernel blocking
// boundaries.  The kernel tiles C in mr=2 x nr=4 blocks, so the interesting
// dimensions are 0, 1, MR+-1 (1, 3), NR+-1 (3, 5), and one past a
// cache-block multiple (129).  Tolerances are ULP-style, derived from the
// mode's component mantissa bits rather than hand-tuned per mode.

/// Relative tolerance scale for `mode`: 8 component ULPs of the mode's
/// effective significand (splits recover bits: BF16x2 ~15, BF16x3 ~23)
/// plus a 2^-19 floor for FP32 storage and accumulation of the k-term
/// reduction.  Multiplied by (1 + sqrt(k)) * max|C_ref| in run_shape_case.
double mode_tol_scale(compute_mode mode) {
  const compute_mode_info& mi = info(mode);
  const int splits =
      mi.component_products == 3 ? 2 : mi.component_products == 6 ? 3 : 1;
  const int effective_bits =
      std::min(23, splits * (mi.component_mantissa_bits + 1) - 1);
  return 8.0 * std::ldexp(1.0, -(effective_bits + 1)) +
         std::ldexp(1.0, -19);
}

TEST(GemmEdgeSweep, Fp32EveryModeAtBlockingBoundaries) {
  constexpr blas_int kDims[] = {0, 1, 3, 5, 129};
  constexpr transpose kOps[] = {transpose::none, transpose::trans};
  constexpr compute_mode kModes[] = {
      compute_mode::standard,        compute_mode::float_to_bf16,
      compute_mode::float_to_bf16x2, compute_mode::float_to_bf16x3,
      compute_mode::float_to_tf32,   compute_mode::complex_3m};
  // The blocked core's ic-block sweep and B-panel packing run on the
  // scheduler's injected worker team; the sweep must hold under both the
  // serial team and the shared work-stealing pool (chunk -> output is
  // index-keyed, so the numbers are identical either way).
  for (const bool pooled : {false, true}) {
    if (pooled) {
      sched::configure(sched::sched_mode::pool, 3);
    } else {
      sched::configure(sched::sched_mode::serial);
    }
    unsigned case_index = 0;
    for (const blas_int m : kDims) {
      for (const blas_int n : kDims) {
        for (const blas_int k : kDims) {
          for (const compute_mode mode : kModes) {
            // Cycle the op pair deterministically so every {N,T}^2
            // combination appears across the shape grid.
            const transpose ta = kOps[case_index % 2];
            const transpose tb = kOps[(case_index / 2) % 2];
            run_shape_case<float>(5000 + case_index, mode,
                                  mode_tol_scale(mode), m, n, k, ta, tb);
            ++case_index;
          }
        }
      }
    }
  }
  sched::reset_for_testing();
}

TEST(GemmEdgeSweep, ComplexModesAtBlockingBoundaries) {
  constexpr blas_int kDims[] = {0, 1, 3, 5, 129};
  constexpr transpose kOps[] = {transpose::none, transpose::trans,
                                transpose::conj_trans};
  constexpr compute_mode kModes[] = {compute_mode::standard,
                                     compute_mode::float_to_bf16x3,
                                     compute_mode::complex_3m};
  for (const bool pooled : {false, true}) {
    if (pooled) {
      sched::configure(sched::sched_mode::pool, 3);
    } else {
      sched::configure(sched::sched_mode::serial);
    }
    unsigned case_index = 0;
    for (const blas_int m : kDims) {
      for (const blas_int n : kDims) {
        for (const blas_int k : kDims) {
          for (const compute_mode mode : kModes) {
            const transpose ta = kOps[case_index % 3];
            const transpose tb = kOps[(case_index / 3) % 3];
            run_shape_case<std::complex<float>>(9000 + case_index, mode,
                                                2.0 * mode_tol_scale(mode),
                                                m, n, k, ta, tb);
            ++case_index;
          }
        }
      }
    }
  }
  sched::reset_for_testing();
}

TEST(GemmEdgeSweep, Fp64AtBlockingBoundaries) {
  // FP64 ignores the FP32 split modes; lock the standard path (and the 3M
  // complex path) at the same edge shapes.
  constexpr blas_int kDims[] = {0, 1, 3, 5, 129};
  unsigned case_index = 0;
  for (const blas_int m : kDims) {
    for (const blas_int n : kDims) {
      for (const blas_int k : kDims) {
        const transpose ta =
            case_index % 2 ? transpose::trans : transpose::none;
        const transpose tb =
            (case_index / 2) % 2 ? transpose::trans : transpose::none;
        run_shape_case<double>(13000 + case_index, compute_mode::standard,
                               1e-13, m, n, k, ta, tb);
        run_shape_case<std::complex<double>>(14000 + case_index,
                                             compute_mode::complex_3m, 1e-12,
                                             m, n, k, ta, tb);
        ++case_index;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GemmFuzz,
                         ::testing::Values(fuzz_case{11}, fuzz_case{22},
                                           fuzz_case{33}, fuzz_case{44},
                                           fuzz_case{55}, fuzz_case{66},
                                           fuzz_case{77}, fuzz_case{88},
                                           fuzz_case{99}, fuzz_case{110},
                                           fuzz_case{121}, fuzz_case{132}));

}  // namespace
}  // namespace dcmesh::blas
