// Property tests for GEMM under the alternative compute modes: the paper's
// Section V-B error bound, the accuracy ladder across modes, and the
// size-independence of relative error the paper reports.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/gemm_ref.hpp"
#include "dcmesh/common/rng.hpp"

namespace dcmesh::blas {
namespace {

std::vector<float> positive_random(std::size_t n, unsigned seed) {
  xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(0.1, 1.0));
  return v;
}

std::vector<float> signed_random(std::size_t n, unsigned seed) {
  xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

/// Max relative error of mode-GEMM vs a double-accumulated reference.
double mode_rel_error(compute_mode mode, blas_int m, blas_int n, blas_int k,
                      const std::vector<float>& a,
                      const std::vector<float>& b) {
  std::vector<float> c_mode(m * n), c_ref(m * n);
  {
    scoped_compute_mode scope(mode);
    sgemm(transpose::none, transpose::none, m, n, k, 1.0f, a.data(), m,
          b.data(), k, 0.0f, c_mode.data(), m);
  }
  detail::gemm_ref<float, double>(transpose::none, transpose::none, m, n, k,
                                  1.0f, a.data(), m, b.data(), k, 0.0f,
                                  c_ref.data(), m);
  double worst = 0.0;
  for (blas_int i = 0; i < m * n; ++i) {
    const double ref = c_ref[i];
    if (std::abs(ref) < 1e-12) continue;
    worst = std::max(worst, std::abs(c_mode[i] - ref) / std::abs(ref));
  }
  return worst;
}

TEST(SplitGemm, SectionVBBoundPositiveData) {
  // Paper Sec. V-B: with same-sign products the relative error of the
  // matrix product is bounded by ~2^-n (n component mantissa bits),
  // independent of the data.  Positive inputs realise the same-sign case.
  const blas_int m = 16, n = 16, k = 64;
  const auto a = positive_random(m * k, 1);
  const auto b = positive_random(k * n, 2);

  // BF16: n = 7 -> bound 2^-7 (plus slack for FP32 accumulation).
  EXPECT_LE(mode_rel_error(compute_mode::float_to_bf16, m, n, k, a, b),
            std::ldexp(1.0, -7) * 1.1);
  // TF32: n = 10 -> bound 2^-10.
  EXPECT_LE(mode_rel_error(compute_mode::float_to_tf32, m, n, k, a, b),
            std::ldexp(1.0, -10) * 1.1);
  // BF16x2 ~ 15 bits, BF16x3 ~ FP32.
  EXPECT_LE(mode_rel_error(compute_mode::float_to_bf16x2, m, n, k, a, b),
            std::ldexp(1.0, -14));
  EXPECT_LE(mode_rel_error(compute_mode::float_to_bf16x3, m, n, k, a, b),
            std::ldexp(1.0, -18));
}

TEST(SplitGemm, AccuracyLadderOrdering) {
  // BF16 worst, then TF32, then BF16x2, then BF16x3 ~ 3M ~ standard — the
  // ordering Figures 1-2 rest on.
  const blas_int m = 24, n = 24, k = 96;
  const auto a = signed_random(m * k, 3);
  const auto b = signed_random(k * n, 4);
  const double e_bf16 =
      mode_rel_error(compute_mode::float_to_bf16, m, n, k, a, b);
  const double e_tf32 =
      mode_rel_error(compute_mode::float_to_tf32, m, n, k, a, b);
  const double e_x2 =
      mode_rel_error(compute_mode::float_to_bf16x2, m, n, k, a, b);
  const double e_x3 =
      mode_rel_error(compute_mode::float_to_bf16x3, m, n, k, a, b);
  EXPECT_GT(e_bf16, e_tf32);
  EXPECT_GT(e_tf32, e_x2);
  EXPECT_GT(e_x2, e_x3);
}

class SizeIndependence : public ::testing::TestWithParam<blas_int> {};

TEST_P(SizeIndependence, RelativeErrorFlatAcrossK) {
  // Paper Sec. V-A/V-B: "the relative error of BLAS compute in BF16 ... is
  // independent of matrix size" (random bounded data, no cancellation).
  const blas_int k = GetParam();
  const blas_int m = 8, n = 8;
  const auto a = positive_random(m * k, 5);
  const auto b = positive_random(k * n, 6);
  const double err =
      mode_rel_error(compute_mode::float_to_bf16, m, n, k, a, b);
  // Bounded by the same 2^-7 constant regardless of k.
  // Bounded above by the same 2^-7 constant regardless of k; still clearly
  // nonzero (errors average down slowly with k but never vanish).
  EXPECT_LE(err, std::ldexp(1.0, -7) * 1.1) << "k=" << k;
  EXPECT_GT(err, std::ldexp(1.0, -7) * 0.005) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(KSweep, SizeIndependence,
                         ::testing::Values(8, 32, 128, 512, 2048));

TEST(SplitGemm, Bf16x3CloseToStandardFp32) {
  // "BF16x3 accuracy is comparable to standard single-precision
  // arithmetic" (Sec. III-B).
  const blas_int m = 16, n = 16, k = 256;
  const auto a = signed_random(m * k, 7);
  const auto b = signed_random(k * n, 8);
  std::vector<float> c_std(m * n), c_x3(m * n);
  clear_compute_mode();
  sgemm(transpose::none, transpose::none, m, n, k, 1.0f, a.data(), m,
        b.data(), k, 0.0f, c_std.data(), m);
  {
    scoped_compute_mode scope(compute_mode::float_to_bf16x3);
    sgemm(transpose::none, transpose::none, m, n, k, 1.0f, a.data(), m,
          b.data(), k, 0.0f, c_x3.data(), m);
  }
  for (blas_int i = 0; i < m * n; ++i) {
    const float scale = std::max(1.0f, std::abs(c_std[i]));
    ASSERT_NEAR(c_std[i], c_x3[i], 4e-5f * scale);
  }
}

TEST(SplitGemm, SplitRespectsAlphaBeta) {
  const blas_int m = 8, n = 8, k = 32;
  const auto a = signed_random(m * k, 9);
  const auto b = signed_random(k * n, 10);
  auto c_mode = signed_random(m * n, 11);
  auto c_ref = c_mode;
  {
    scoped_compute_mode scope(compute_mode::float_to_bf16x2);
    sgemm(transpose::none, transpose::none, m, n, k, 2.5f, a.data(), m,
          b.data(), k, -1.5f, c_mode.data(), m);
  }
  detail::gemm_ref<float, double>(transpose::none, transpose::none, m, n, k,
                                  2.5f, a.data(), m, b.data(), k, -1.5f,
                                  c_ref.data(), m);
  for (blas_int i = 0; i < m * n; ++i) {
    const float scale = std::max(1.0f, std::abs(c_ref[i]));
    ASSERT_NEAR(c_mode[i], c_ref[i], 2e-3f * scale);
  }
}

TEST(SplitGemm, SplitHandlesTransposes) {
  const blas_int m = 6, n = 7, k = 40;
  const auto a = signed_random(k * m, 12);  // A^T storage
  const auto b = signed_random(n * k, 13);  // B^T storage
  std::vector<float> c_mode(m * n), c_ref(m * n);
  {
    scoped_compute_mode scope(compute_mode::float_to_bf16);
    sgemm(transpose::trans, transpose::trans, m, n, k, 1.0f, a.data(), k,
          b.data(), n, 0.0f, c_mode.data(), m);
  }
  detail::gemm_ref<float, double>(transpose::trans, transpose::trans, m, n,
                                  k, 1.0f, a.data(), k, b.data(), n, 0.0f,
                                  c_ref.data(), m);
  for (blas_int i = 0; i < m * n; ++i) {
    const float scale = std::max(0.5f, std::abs(c_ref[i]));
    ASSERT_NEAR(c_mode[i], c_ref[i], 2e-2f * scale);
  }
}

TEST(SplitGemm, ComplexSplitAccuracyLadder) {
  // cgemm under the split modes (the calls DCMESH actually makes).
  using C = std::complex<float>;
  const blas_int m = 10, n = 10, k = 120;
  xoshiro256 rng(14);
  std::vector<C> a(m * k), b(k * n);
  for (auto& x : a) {
    x = {static_cast<float>(rng.uniform(-1, 1)),
         static_cast<float>(rng.uniform(-1, 1))};
  }
  for (auto& x : b) {
    x = {static_cast<float>(rng.uniform(-1, 1)),
         static_cast<float>(rng.uniform(-1, 1))};
  }
  std::vector<C> ref(m * n);
  detail::gemm_ref<C, std::complex<double>>(
      transpose::none, transpose::none, m, n, k, C(1), a.data(), m, b.data(),
      k, C(0), ref.data(), m);

  std::map<compute_mode, double> err;
  for (compute_mode mode :
       {compute_mode::float_to_bf16, compute_mode::float_to_tf32,
        compute_mode::float_to_bf16x2, compute_mode::float_to_bf16x3}) {
    scoped_compute_mode scope(mode);
    std::vector<C> c(m * n);
    cgemm(transpose::none, transpose::none, m, n, k, C(1), a.data(), m,
          b.data(), k, C(0), c.data(), m);
    double rms = 0.0, ref_rms = 0.0;
    for (blas_int i = 0; i < m * n; ++i) {
      rms += std::norm(c[i] - ref[i]);
      ref_rms += std::norm(ref[i]);
    }
    err[mode] = std::sqrt(rms / ref_rms);
  }
  EXPECT_GT(err[compute_mode::float_to_bf16],
            err[compute_mode::float_to_tf32]);
  EXPECT_GT(err[compute_mode::float_to_tf32],
            err[compute_mode::float_to_bf16x2]);
  EXPECT_GT(err[compute_mode::float_to_bf16x2],
            err[compute_mode::float_to_bf16x3]);
  // Absolute scale: BF16 RMS error ~2^-8, not wildly off.
  EXPECT_LT(err[compute_mode::float_to_bf16], 0.05);
  EXPECT_GT(err[compute_mode::float_to_bf16], 1e-4);
}

}  // namespace
}  // namespace dcmesh::blas
