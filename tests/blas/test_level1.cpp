// Unit tests for the level-1 BLAS routines.

#include "dcmesh/blas/level1.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace dcmesh::blas {
namespace {

using cf = std::complex<float>;
using cd = std::complex<double>;

TEST(Level1, AxpyContiguous) {
  std::vector<double> x{1, 2, 3}, y{10, 20, 30};
  axpy<double>(3, 2.0, x.data(), 1, y.data(), 1);
  EXPECT_EQ(y, (std::vector<double>{12, 24, 36}));
}

TEST(Level1, AxpyStrided) {
  std::vector<float> x{1, 0, 2, 0, 3};
  std::vector<float> y{1, 1, 1};
  axpy<float>(3, 1.0f, x.data(), 2, y.data(), 1);
  EXPECT_EQ(y, (std::vector<float>{2, 3, 4}));
}

TEST(Level1, AxpyNegativeStrideReverses) {
  // Reference-BLAS semantics: negative incx walks x backwards.
  std::vector<double> x{1, 2, 3}, y{0, 0, 0};
  axpy<double>(3, 1.0, x.data(), -1, y.data(), 1);
  EXPECT_EQ(y, (std::vector<double>{3, 2, 1}));
}

TEST(Level1, AxpyAlphaZeroNoOp) {
  std::vector<double> y{5, 5};
  axpy<double>(2, 0.0, nullptr, 1, y.data(), 1);
  EXPECT_EQ(y[0], 5);
}

TEST(Level1, AxpyComplex) {
  std::vector<cf> x{{1, 1}}, y{{0, 0}};
  axpy<cf>(1, cf(0, 1), x.data(), 1, y.data(), 1);
  EXPECT_EQ(y[0], cf(-1, 1));  // i*(1+i) = -1+i
}

TEST(Level1, ScalAndScalReal) {
  std::vector<cd> x{{1, 2}, {3, 4}};
  scal<cd>(2, cd(2, 0), x.data(), 1);
  EXPECT_EQ(x[0], cd(2, 4));
  scal_real<double>(2, 0.5, x.data(), 1);
  EXPECT_EQ(x[1], cd(3, 4));
}

TEST(Level1, CopyStrided) {
  std::vector<int>::size_type n = 3;
  std::vector<double> x{1, 2, 3};
  std::vector<double> y(5, 0.0);
  copy<double>(static_cast<blas_int>(n), x.data(), 1, y.data(), 2);
  EXPECT_EQ(y, (std::vector<double>{1, 0, 2, 0, 3}));
}

TEST(Level1, Nrm2Basics) {
  std::vector<double> x{3, 4};
  EXPECT_NEAR(nrm2<double>(2, x.data(), 1), 5.0, 1e-14);
  std::vector<cf> z{{3, 4}};
  EXPECT_NEAR(nrm2<cf>(1, z.data(), 1), 5.0, 1e-6);
}

TEST(Level1, Nrm2AvoidsOverflow) {
  // Naive sum-of-squares would overflow FP64 here; the scaled form must
  // not.
  std::vector<double> x{1e200, 1e200};
  EXPECT_NEAR(nrm2<double>(2, x.data(), 1), 1e200 * std::sqrt(2.0), 1e187);
}

TEST(Level1, Nrm2AvoidsUnderflow) {
  std::vector<double> x{1e-200, 1e-200};
  EXPECT_NEAR(nrm2<double>(2, x.data(), 1), 1e-200 * std::sqrt(2.0), 1e-213);
}

TEST(Level1, DotuAndDotc) {
  std::vector<cf> x{{1, 2}}, y{{3, 4}};
  EXPECT_EQ(dotu<cf>(1, x.data(), 1, y.data(), 1),
            cf(-5, 10));  // (1+2i)(3+4i)
  EXPECT_EQ(dotc<cf>(1, x.data(), 1, y.data(), 1),
            cf(11, -2));  // (1-2i)(3+4i)
  std::vector<double> a{1, 2}, b{3, 4};
  EXPECT_EQ(dotu<double>(2, a.data(), 1, b.data(), 1), 11.0);
  EXPECT_EQ(dotc<double>(2, a.data(), 1, b.data(), 1), 11.0);
}

TEST(Level1, AsumConvention) {
  std::vector<cf> z{{3, -4}, {-1, 2}};
  // Reference asum for complex: |re| + |im| per element.
  EXPECT_NEAR(asum<cf>(2, z.data(), 1), 3 + 4 + 1 + 2, 1e-6);
  std::vector<double> x{-1, 2, -3};
  EXPECT_NEAR(asum<double>(3, x.data(), 1), 6.0, 1e-14);
}

TEST(Level1, Iamax) {
  std::vector<double> x{1, -7, 3};
  EXPECT_EQ(iamax<double>(3, x.data(), 1), 1);
  EXPECT_EQ(iamax<double>(0, x.data(), 1), -1);
  // First of equals wins (reference semantics).
  std::vector<double> eq{5, 5};
  EXPECT_EQ(iamax<double>(2, eq.data(), 1), 0);
}

TEST(Level1, ZeroIncrementThrows) {
  std::vector<double> x{1}, y{1};
  EXPECT_THROW(axpy<double>(1, 1.0, x.data(), 0, y.data(), 1),
               std::invalid_argument);
  EXPECT_THROW((void)nrm2<double>(1, x.data(), 0), std::invalid_argument);
  EXPECT_THROW((void)dotc<double>(1, x.data(), 1, y.data(), 0),
               std::invalid_argument);
}

TEST(Level1, EmptyVectorsAreSafe) {
  EXPECT_EQ(nrm2<double>(0, nullptr, 1), 0.0);
  EXPECT_EQ(asum<double>(-3, nullptr, 1), 0.0);
  EXPECT_EQ(dotu<double>(0, nullptr, 1, nullptr, 1), 0.0);
}

}  // namespace
}  // namespace dcmesh::blas
