// Tests for the CBLAS-style C API, including the row-major forwarding
// identity and compute-mode inheritance.

#include "dcmesh/blas/cblas_compat.h"

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/blas/gemm_ref.hpp"
#include "dcmesh/common/rng.hpp"

namespace dcmesh::blas {
namespace {

TEST(CblasCompat, ColMajorSgemmMatchesNative) {
  xoshiro256 rng(1);
  const int m = 5, n = 4, k = 3;
  std::vector<float> a(m * k), b(k * n), c1(m * n, 1.0f), c2(m * n, 1.0f);
  for (auto& x : a) x = static_cast<float>(rng.uniform(-1, 1));
  for (auto& x : b) x = static_cast<float>(rng.uniform(-1, 1));
  clear_compute_mode();
  dcmesh_cblas_sgemm(DcmeshCblasColMajor, DcmeshCblasNoTrans,
                     DcmeshCblasNoTrans, m, n, k, 2.0f, a.data(), m,
                     b.data(), k, 0.5f, c1.data(), m);
  sgemm(transpose::none, transpose::none, m, n, k, 2.0f, a.data(), m,
        b.data(), k, 0.5f, c2.data(), m);
  EXPECT_EQ(c1, c2);  // same code path -> bit identical
}

TEST(CblasCompat, RowMajorEqualsTransposedColMajor) {
  // Row-major A (2x3) and B (3x2): C = A B is 2x2 row-major.
  const std::vector<double> a{1, 2, 3,   //
                              4, 5, 6};  // row-major 2x3
  const std::vector<double> b{7, 8,      //
                              9, 10,     //
                              11, 12};   // row-major 3x2
  std::vector<double> c(4, 0.0);
  dcmesh_cblas_dgemm(DcmeshCblasRowMajor, DcmeshCblasNoTrans,
                     DcmeshCblasNoTrans, 2, 2, 3, 1.0, a.data(), 3,
                     b.data(), 2, 0.0, c.data(), 2);
  // Hand-computed: [ [58, 64], [139, 154] ] row-major.
  EXPECT_DOUBLE_EQ(c[0], 58);
  EXPECT_DOUBLE_EQ(c[1], 64);
  EXPECT_DOUBLE_EQ(c[2], 139);
  EXPECT_DOUBLE_EQ(c[3], 154);
}

TEST(CblasCompat, RowMajorWithTransposes) {
  // C = A^T B in row-major, A is (k x m) = 3x2 row-major.
  const std::vector<double> a{1, 4, 2, 5, 3, 6};       // 3x2 row-major
  const std::vector<double> b{7, 8, 9, 10, 11, 12};    // 3x2 row-major
  std::vector<double> c(4, 0.0);
  dcmesh_cblas_dgemm(DcmeshCblasRowMajor, DcmeshCblasTrans,
                     DcmeshCblasNoTrans, 2, 2, 3, 1.0, a.data(), 2,
                     b.data(), 2, 0.0, c.data(), 2);
  // A^T = [[1,2,3],[4,5,6]] -> same product as above.
  EXPECT_DOUBLE_EQ(c[0], 58);
  EXPECT_DOUBLE_EQ(c[1], 64);
  EXPECT_DOUBLE_EQ(c[2], 139);
  EXPECT_DOUBLE_EQ(c[3], 154);
}

TEST(CblasCompat, ComplexConjTranspose) {
  using C = std::complex<float>;
  const std::vector<C> a{{0, 1}, {1, 0}};  // column vector-ish 2x1
  const std::vector<C> b{{0, 1}, {2, 0}};  // 2x1
  std::vector<C> c(1, C(0));
  const C one(1, 0), zero(0, 0);
  // C = A^H B (1x1): conj(i)*i + conj(1)*2 = 1 + 2 = 3.
  dcmesh_cblas_cgemm(DcmeshCblasColMajor, DcmeshCblasConjTrans,
                     DcmeshCblasNoTrans, 1, 1, 2, &one, a.data(), 2,
                     b.data(), 2, &zero, c.data(), 1);
  EXPECT_EQ(c[0], C(3, 0));
}

TEST(CblasCompat, ZgemmComplexScalars) {
  using Z = std::complex<double>;
  const std::vector<Z> a{{1, 1}};
  const std::vector<Z> b{{2, -1}};
  std::vector<Z> c{{5, 5}};
  const Z alpha(0, 1), beta(2, 0);
  dcmesh_cblas_zgemm(DcmeshCblasColMajor, DcmeshCblasNoTrans,
                     DcmeshCblasNoTrans, 1, 1, 1, &alpha, a.data(), 1,
                     b.data(), 1, &beta, c.data(), 1);
  // alpha*a*b + beta*c = i*(1+i)(2-i) + 2(5+5i) = i*(3+i) + 10+10i
  //                    = (-1+3i) + 10+10i = 9+13i.
  EXPECT_NEAR(std::abs(c[0] - Z(9, 13)), 0.0, 1e-12);
}

TEST(CblasCompat, InheritsComputeMode) {
  xoshiro256 rng(2);
  const int n = 64;
  std::vector<float> a(n * n), b(n * n), c_std(n * n), c_mode(n * n);
  for (auto& x : a) x = static_cast<float>(rng.uniform(0.1, 1));
  for (auto& x : b) x = static_cast<float>(rng.uniform(0.1, 1));
  clear_compute_mode();
  dcmesh_cblas_sgemm(DcmeshCblasColMajor, DcmeshCblasNoTrans,
                     DcmeshCblasNoTrans, n, n, n, 1.0f, a.data(), n,
                     b.data(), n, 0.0f, c_std.data(), n);
  {
    scoped_compute_mode mode(compute_mode::float_to_bf16);
    dcmesh_cblas_sgemm(DcmeshCblasColMajor, DcmeshCblasNoTrans,
                       DcmeshCblasNoTrans, n, n, n, 1.0f, a.data(), n,
                       b.data(), n, 0.0f, c_mode.data(), n);
  }
  EXPECT_NE(c_std, c_mode);  // the C API really switched arithmetic
}

}  // namespace
}  // namespace dcmesh::blas
