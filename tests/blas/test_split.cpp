// Unit tests for the FP32 -> BF16^N / TF32 operand decomposition (internal
// split machinery behind the FLOAT_TO_* compute modes).

#include "split.hpp"  // internal header (src/blas/src)

#include <gtest/gtest.h>

#include <cmath>

#include "dcmesh/common/rng.hpp"

namespace dcmesh::blas::detail {
namespace {

TEST(SplitSpec, ModeProperties) {
  EXPECT_EQ(split_for(compute_mode::float_to_bf16).components, 1);
  EXPECT_EQ(split_for(compute_mode::float_to_bf16x2).components, 2);
  EXPECT_EQ(split_for(compute_mode::float_to_bf16x3).components, 3);
  EXPECT_EQ(split_for(compute_mode::float_to_tf32).components, 1);
  EXPECT_EQ(split_for(compute_mode::standard).components, 0);
  EXPECT_EQ(split_for(compute_mode::complex_3m).components, 0);

  EXPECT_TRUE(is_split_mode(compute_mode::float_to_bf16));
  EXPECT_TRUE(is_split_mode(compute_mode::float_to_tf32));
  EXPECT_FALSE(is_split_mode(compute_mode::standard));
  EXPECT_FALSE(is_split_mode(compute_mode::complex_3m));
}

TEST(RetainedProducts, CountsMatchTable2) {
  EXPECT_EQ(retained_products(1).size(), 1u);
  EXPECT_EQ(retained_products(2).size(), 3u);
  EXPECT_EQ(retained_products(3).size(), 6u);
}

TEST(RetainedProducts, OrderedByTotalOrderDominantFirst) {
  const auto pairs = retained_products(3);
  ASSERT_EQ(pairs.size(), 6u);
  EXPECT_EQ(pairs[0], (std::pair<int, int>{0, 0}));
  // All pairs have i + j <= 2 and are unique.
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    EXPECT_LE(pairs[p].first + pairs[p].second, 2);
    for (std::size_t q = p + 1; q < pairs.size(); ++q) {
      EXPECT_NE(pairs[p], pairs[q]);
    }
  }
  // Non-decreasing total order (dominant contributions accumulate first).
  for (std::size_t p = 1; p < pairs.size(); ++p) {
    EXPECT_GE(pairs[p].first + pairs[p].second,
              pairs[p - 1].first + pairs[p - 1].second);
  }
}

TEST(SplitOperand, FirstComponentIsRounding) {
  xoshiro256 rng(1);
  std::vector<float> x(64);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-10, 10));
  const auto comps =
      split_operand(x.data(), 8, 8, 8, split_for(compute_mode::float_to_bf16));
  ASSERT_EQ(comps.size(), 1u);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(comps[0].data()[i], round_to_bf16(x[i]));
  }
}

class SplitReconstruction : public ::testing::TestWithParam<int> {};

TEST_P(SplitReconstruction, ComponentSumConverges) {
  const int n_comp = GetParam();
  split_spec spec{n_comp, [](float v) { return round_to_bf16(v); }};
  xoshiro256 rng(2);
  std::vector<float> x(256);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-100, 100));
  const auto comps = split_operand(x.data(), 16, 16, 16, spec);
  ASSERT_EQ(comps.size(), static_cast<std::size_t>(n_comp));
  const double bound = std::ldexp(1.0, -8 * n_comp + 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    double sum = 0.0;
    for (const auto& c : comps) sum += c.data()[i];
    EXPECT_LE(std::abs(sum - x[i]), bound * std::abs(x[i]) + 1e-30)
        << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Components, SplitReconstruction,
                         ::testing::Values(1, 2, 3));

TEST(SplitOperand, RespectsLeadingDimension) {
  // 2x2 logical matrix stored with ld = 4; rows 2..3 are padding that must
  // not leak into the components.
  std::vector<float> x{1.0f, 2.0f, 99.0f, 99.0f, 3.0f, 4.0f, 99.0f, 99.0f};
  const auto comps = split_operand(x.data(), 2, 2, 4,
                                   split_for(compute_mode::float_to_bf16));
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0](0, 0), 1.0f);
  EXPECT_EQ(comps[0](1, 0), 2.0f);
  EXPECT_EQ(comps[0](0, 1), 3.0f);
  EXPECT_EQ(comps[0](1, 1), 4.0f);
  EXPECT_EQ(comps[0].rows(), 2u);
}

TEST(SplitOperand, ExactBf16InputsHaveZeroResiduals) {
  std::vector<float> x{1.0f, -0.5f, 2.0f, 0.25f};
  const auto comps = split_operand(x.data(), 2, 2, 2,
                                   split_for(compute_mode::float_to_bf16x3));
  ASSERT_EQ(comps.size(), 3u);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(comps[0].data()[i], x[i]);
    EXPECT_EQ(comps[1].data()[i], 0.0f);
    EXPECT_EQ(comps[2].data()[i], 0.0f);
  }
}

TEST(SplitOperand, Tf32Rounding) {
  xoshiro256 rng(3);
  std::vector<float> x(64);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1, 1));
  const auto comps = split_operand(x.data(), 8, 8, 8,
                                   split_for(compute_mode::float_to_tf32));
  ASSERT_EQ(comps.size(), 1u);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(comps[0].data()[i], round_to_tf32(x[i]));
  }
}

}  // namespace
}  // namespace dcmesh::blas::detail
