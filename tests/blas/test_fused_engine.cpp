// Tests for the fused split-mode GEMM engine: bit-exactness against the
// pre-fusion reference path, scalar-vs-AVX2 microkernel equivalence, the
// zero-allocation packing arena, and DCMESH_KERNEL_ISA handling.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <optional>
#include <thread>
#include <vector>

#include "blocking.hpp"
#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/common/rng.hpp"
#include "gemm_kernel.hpp"
#include "kernel_isa.hpp"
#include "pack_arena.hpp"
#include "split.hpp"

namespace dcmesh::blas {
namespace {

std::vector<float> signed_random(std::size_t n, unsigned seed) {
  xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

/// Restore the launch-environment ISA resolution when a test ends.
struct isa_guard {
  ~isa_guard() {
    detail::set_kernel_isa(std::nullopt);
    detail::set_bf16_native(std::nullopt);
  }
};

// ---------------------------------------------------------------------------
// Bit-exactness: the fused engine must reproduce the pre-fusion reference
// (dense split_operand copies + one blocked pass per retained product)
// bit-for-bit — the fusion moves memory traffic, not arithmetic.

constexpr blas_int kEdgeDims[] = {0, 1, 3, 5, 65, 129};

void expect_fused_matches_reference(compute_mode mode, transpose ta,
                                    transpose tb) {
  int idx = 0;
  for (const blas_int m : kEdgeDims) {
    for (const blas_int n : kEdgeDims) {
      // A sparse sample of k keeps the sweep fast while still crossing the
      // kBlockK boundary (k > 256 via 65*5).
      for (const blas_int k : {blas_int{0}, blas_int{3}, blas_int{65},
                               blas_int{325}}) {
        const blas_int rows_a = ta == transpose::none ? m : k;
        const blas_int cols_a = ta == transpose::none ? k : m;
        const blas_int rows_b = tb == transpose::none ? k : n;
        const blas_int cols_b = tb == transpose::none ? n : k;
        const auto a = signed_random(
            static_cast<std::size_t>(std::max<blas_int>(1, rows_a * cols_a)),
            100 + static_cast<unsigned>(idx));
        const auto b = signed_random(
            static_cast<std::size_t>(std::max<blas_int>(1, rows_b * cols_b)),
            200 + static_cast<unsigned>(idx));
        ++idx;
        // Nonzero initial C plus beta exercises the scale+accumulate
        // epilogue; alpha != 1 exercises the per-update rounding.
        std::vector<float> c_fused(
            static_cast<std::size_t>(std::max<blas_int>(1, m * n)), 0.5f);
        std::vector<float> c_ref = c_fused;
        const float alpha = 1.25f, beta = 0.75f;
        detail::sgemm_split(mode, ta, tb, m, n, k, alpha, a.data(),
                            std::max<blas_int>(1, rows_a), b.data(),
                            std::max<blas_int>(1, rows_b), beta,
                            c_fused.data(), std::max<blas_int>(1, m));
        detail::sgemm_split_reference(mode, ta, tb, m, n, k, alpha, a.data(),
                                      std::max<blas_int>(1, rows_a), b.data(),
                                      std::max<blas_int>(1, rows_b), beta,
                                      c_ref.data(), std::max<blas_int>(1, m));
        for (std::size_t i = 0; i < c_fused.size(); ++i) {
          ASSERT_EQ(c_fused[i], c_ref[i])
              << "mode=" << static_cast<int>(mode) << " ta="
              << static_cast<int>(ta) << " tb=" << static_cast<int>(tb)
              << " m=" << m << " n=" << n << " k=" << k << " elem=" << i;
        }
      }
    }
  }
}

class FusedEngineExactness
    : public ::testing::TestWithParam<std::tuple<compute_mode, transpose>> {};

TEST_P(FusedEngineExactness, MatchesReferenceBitForBit) {
  const auto [mode, op] = GetParam();
  // Vary the operand the op applies to as well as applying it to both.
  expect_fused_matches_reference(mode, op, transpose::none);
  expect_fused_matches_reference(mode, transpose::none, op);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndOps, FusedEngineExactness,
    ::testing::Combine(::testing::Values(compute_mode::float_to_bf16,
                                         compute_mode::float_to_bf16x2,
                                         compute_mode::float_to_bf16x3,
                                         compute_mode::float_to_tf32),
                       ::testing::Values(transpose::none, transpose::trans,
                                         transpose::conj_trans)));

TEST(FusedEngine, StandardModeIsTheBlockedCore) {
  // The fifth compute mode: STANDARD never routes through the split
  // engine — the dispatcher funnels it straight to gemm_blocked.  Lock
  // that equivalence bit-for-bit through the public API.
  for (const blas_int dim : kEdgeDims) {
    const blas_int m = dim, n = dim, k = dim;
    const auto a = signed_random(
        static_cast<std::size_t>(std::max<blas_int>(1, m * k)), 301);
    const auto b = signed_random(
        static_cast<std::size_t>(std::max<blas_int>(1, k * n)), 302);
    std::vector<float> c_api(
        static_cast<std::size_t>(std::max<blas_int>(1, m * n)), 0.25f);
    std::vector<float> c_core = c_api;
    {
      scoped_compute_mode scope(compute_mode::standard);
      sgemm(transpose::none, transpose::none, m, n, k, 1.5f, a.data(),
            std::max<blas_int>(1, m), b.data(), std::max<blas_int>(1, k),
            0.5f, c_api.data(), std::max<blas_int>(1, m));
    }
    detail::gemm_blocked(transpose::none, transpose::none, m, n, k, 1.5f,
                         a.data(), std::max<blas_int>(1, m), b.data(),
                         std::max<blas_int>(1, k), 0.5f, c_core.data(),
                         std::max<blas_int>(1, m));
    for (std::size_t i = 0; i < c_api.size(); ++i) {
      ASSERT_EQ(c_api[i], c_core[i]) << "dim=" << dim << " elem=" << i;
    }
  }
}

TEST(FusedEngine, ExactUnderEveryKernelIsa) {
  // The bit-level contract holds per ISA: fused and reference paths share
  // whatever microkernel is active, so they agree under each.  The native
  // BF16 engine is forced OFF here — it is ULP-equivalent, not
  // bit-identical, and has its own tests below.
  isa_guard guard;
  detail::set_bf16_native(false);
  for (const auto isa :
       {detail::kernel_isa::scalar, detail::kernel_isa::avx2,
        detail::kernel_isa::avx512}) {
    if (isa == detail::kernel_isa::avx2 &&
        !detail::avx2_kernels_available()) {
      continue;
    }
    if (isa == detail::kernel_isa::avx512 &&
        !detail::avx512_kernels_available()) {
      continue;
    }
    detail::set_kernel_isa(isa);
    expect_fused_matches_reference(compute_mode::float_to_bf16x3,
                                   transpose::trans, transpose::none);
    if (isa == detail::kernel_isa::avx512) {
      // The widest tile (14x32) has the most edge/remainder paths; cover
      // a second mode and op combination on it.
      expect_fused_matches_reference(compute_mode::float_to_bf16x2,
                                     transpose::none, transpose::trans);
    }
  }
}

// ---------------------------------------------------------------------------
// Scalar vs AVX2 microkernel equivalence.  The two kernels apply the same
// per-element operation order; they may differ only through FMA
// contraction, so results must agree to a few ULP of the accumulated
// magnitude — not necessarily bit-for-bit.

TEST(KernelIsa, ScalarVsAvx2WithinUlpBound) {
  if (!detail::avx2_kernels_available()) {
    GTEST_SKIP() << "no AVX2+FMA kernels in this build/CPU";
  }
  isa_guard guard;
  for (const blas_int dim : {1, 5, 64, 129, 200}) {
    const blas_int m = dim, n = dim, k = dim + 7;
    const auto a = signed_random(static_cast<std::size_t>(m * k),
                                 31 + static_cast<unsigned>(dim));
    const auto b = signed_random(static_cast<std::size_t>(k * n),
                                 57 + static_cast<unsigned>(dim));
    std::vector<float> c_scalar(static_cast<std::size_t>(m * n));
    std::vector<float> c_avx2 = c_scalar;
    detail::set_kernel_isa(detail::kernel_isa::scalar);
    detail::gemm_blocked(transpose::none, transpose::none, m, n, k, 1.0f,
                         a.data(), m, b.data(), k, 0.0f, c_scalar.data(), m);
    detail::set_kernel_isa(detail::kernel_isa::avx2);
    ASSERT_EQ(detail::active_kernel_isa(), detail::kernel_isa::avx2);
    detail::gemm_blocked(transpose::none, transpose::none, m, n, k, 1.0f,
                         a.data(), m, b.data(), k, 0.0f, c_avx2.data(), m);
    // |a|,|b| <= 1: each element accumulates k products of magnitude <= 1,
    // so a few-ULP contraction drift is bounded by ~8 eps * k.
    const float tol = 8.0f * std::numeric_limits<float>::epsilon() *
                      static_cast<float>(k);
    for (std::size_t i = 0; i < c_scalar.size(); ++i) {
      ASSERT_NEAR(c_scalar[i], c_avx2[i], tol) << "dim=" << dim
                                               << " elem=" << i;
    }
  }
}

TEST(KernelIsa, DoubleScalarVsAvx2WithinUlpBound) {
  if (!detail::avx2_kernels_available()) {
    GTEST_SKIP() << "no AVX2+FMA kernels in this build/CPU";
  }
  isa_guard guard;
  const blas_int m = 96, n = 96, k = 150;
  xoshiro256 rng(7);
  std::vector<double> a(static_cast<std::size_t>(m * k));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  for (auto& x : a) x = rng.uniform(-1.0, 1.0);
  for (auto& x : b) x = rng.uniform(-1.0, 1.0);
  std::vector<double> c_scalar(static_cast<std::size_t>(m * n));
  std::vector<double> c_avx2 = c_scalar;
  detail::set_kernel_isa(detail::kernel_isa::scalar);
  detail::gemm_blocked(transpose::none, transpose::none, m, n, k, 1.0,
                       a.data(), m, b.data(), k, 0.0, c_scalar.data(), m);
  detail::set_kernel_isa(detail::kernel_isa::avx2);
  detail::gemm_blocked(transpose::none, transpose::none, m, n, k, 1.0,
                       a.data(), m, b.data(), k, 0.0, c_avx2.data(), m);
  const double tol =
      8.0 * std::numeric_limits<double>::epsilon() * static_cast<double>(k);
  for (std::size_t i = 0; i < c_scalar.size(); ++i) {
    ASSERT_NEAR(c_scalar[i], c_avx2[i], tol) << "elem=" << i;
  }
}

// ---------------------------------------------------------------------------
// Scalar vs AVX-512 microkernel equivalence — the same FMA-contraction
// bound as the AVX2 pair, now over the 14x32 / 8x16 ZMM tiles.

TEST(KernelIsa, ScalarVsAvx512WithinUlpBound) {
  if (!detail::avx512_kernels_available()) {
    GTEST_SKIP() << "no AVX-512 kernels in this build/CPU";
  }
  isa_guard guard;
  for (const blas_int dim : {1, 5, 13, 64, 129, 200}) {
    const blas_int m = dim, n = dim, k = dim + 7;
    const auto a = signed_random(static_cast<std::size_t>(m * k),
                                 131 + static_cast<unsigned>(dim));
    const auto b = signed_random(static_cast<std::size_t>(k * n),
                                 157 + static_cast<unsigned>(dim));
    std::vector<float> c_scalar(static_cast<std::size_t>(m * n));
    std::vector<float> c_avx512 = c_scalar;
    detail::set_kernel_isa(detail::kernel_isa::scalar);
    detail::gemm_blocked(transpose::none, transpose::none, m, n, k, 1.0f,
                         a.data(), m, b.data(), k, 0.0f, c_scalar.data(), m);
    detail::set_kernel_isa(detail::kernel_isa::avx512);
    ASSERT_EQ(detail::active_kernel_isa(), detail::kernel_isa::avx512);
    detail::gemm_blocked(transpose::none, transpose::none, m, n, k, 1.0f,
                         a.data(), m, b.data(), k, 0.0f, c_avx512.data(), m);
    const float tol = 8.0f * std::numeric_limits<float>::epsilon() *
                      static_cast<float>(k);
    for (std::size_t i = 0; i < c_scalar.size(); ++i) {
      ASSERT_NEAR(c_scalar[i], c_avx512[i], tol) << "dim=" << dim
                                                 << " elem=" << i;
    }
  }
}

TEST(KernelIsa, DoubleScalarVsAvx512WithinUlpBound) {
  if (!detail::avx512_kernels_available()) {
    GTEST_SKIP() << "no AVX-512 kernels in this build/CPU";
  }
  isa_guard guard;
  const blas_int m = 96, n = 96, k = 150;
  xoshiro256 rng(17);
  std::vector<double> a(static_cast<std::size_t>(m * k));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  for (auto& x : a) x = rng.uniform(-1.0, 1.0);
  for (auto& x : b) x = rng.uniform(-1.0, 1.0);
  std::vector<double> c_scalar(static_cast<std::size_t>(m * n));
  std::vector<double> c_avx512 = c_scalar;
  detail::set_kernel_isa(detail::kernel_isa::scalar);
  detail::gemm_blocked(transpose::none, transpose::none, m, n, k, 1.0,
                       a.data(), m, b.data(), k, 0.0, c_scalar.data(), m);
  detail::set_kernel_isa(detail::kernel_isa::avx512);
  detail::gemm_blocked(transpose::none, transpose::none, m, n, k, 1.0,
                       a.data(), m, b.data(), k, 0.0, c_avx512.data(), m);
  const double tol =
      8.0 * std::numeric_limits<double>::epsilon() * static_cast<double>(k);
  for (std::size_t i = 0; i < c_scalar.size(); ++i) {
    ASSERT_NEAR(c_scalar[i], c_avx512[i], tol) << "elem=" << i;
  }
}

// ---------------------------------------------------------------------------
// Native BF16 engine (vcvtne2ps2bf16 packing + vdpbf16ps dot kernels).
// The hardware dot sums each bf16 pair before the FP32 accumulate, so the
// native path is ULP-equivalent — deliberately NOT bit-identical — to the
// software split engine, and switching it off must restore bit-exactness.

TEST(Bf16Native, OffRestoresBitExactness) {
  if (!detail::avx512bf16_kernels_available()) {
    GTEST_SKIP() << "no AVX512-BF16 engine in this build/CPU";
  }
  isa_guard guard;
  detail::set_kernel_isa(detail::kernel_isa::avx512);
  detail::set_bf16_native(false);
  expect_fused_matches_reference(compute_mode::float_to_bf16x2,
                                 transpose::none, transpose::none);
}

TEST(Bf16Native, MatchesSoftwareSplitWithinUlpBound) {
  if (!detail::avx512bf16_kernels_available()) {
    GTEST_SKIP() << "no AVX512-BF16 engine in this build/CPU";
  }
  isa_guard guard;
  detail::set_kernel_isa(detail::kernel_isa::avx512);
  for (const auto mode :
       {compute_mode::float_to_bf16x2, compute_mode::float_to_bf16x3}) {
    for (const auto ta : {transpose::none, transpose::trans}) {
      const blas_int m = 67, n = 129, k = 515;  // crosses kBlockK, ragged
      const auto a = signed_random(static_cast<std::size_t>(m * k), 71);
      const auto b = signed_random(static_cast<std::size_t>(k * n), 72);
      const blas_int lda = ta == transpose::none ? m : k;
      std::vector<float> c_soft(static_cast<std::size_t>(m * n), 0.25f);
      std::vector<float> c_native = c_soft;
      detail::set_bf16_native(false);
      detail::sgemm_split(mode, ta, transpose::none, m, n, k, 1.5f, a.data(),
                          lda, b.data(), k, 0.5f, c_soft.data(), m);
      detail::set_bf16_native(true);
      detail::sgemm_split(mode, ta, transpose::none, m, n, k, 1.5f, a.data(),
                          lda, b.data(), k, 0.5f, c_native.data(), m);
      // Both paths round identically into bf16 components; they differ
      // only in FP32 summation order (hardware pair-sums) and subnormal
      // component flushing.  |a|,|b| <= 1 bounds the drift by a small
      // multiple of eps_f32 * k — far inside the mode's own split error.
      const float tol = 64.0f * std::numeric_limits<float>::epsilon() *
                        static_cast<float>(k);
      for (std::size_t i = 0; i < c_soft.size(); ++i) {
        ASSERT_NEAR(c_soft[i], c_native[i], tol)
            << "mode=" << static_cast<int>(mode)
            << " ta=" << static_cast<int>(ta) << " elem=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cache-blocking identity: MC/NC partition only the OUTPUT, so every legal
// blocking must reproduce the default bit-for-bit.  This is the invariant
// that makes autotuned blockings safe to apply from the wisdom store
// without renumbering golden trajectories.

TEST(Blocking, AnyLegalBlockingIsBitIdentical) {
  isa_guard guard;
  const blas_int m = 300, n = 260, k = 300;  // several blocks each way
  const auto a = signed_random(static_cast<std::size_t>(m * k), 91);
  const auto b = signed_random(static_cast<std::size_t>(k * n), 92);
  for (const auto isa :
       {detail::kernel_isa::scalar, detail::kernel_isa::avx2,
        detail::kernel_isa::avx512}) {
    if (isa == detail::kernel_isa::avx2 &&
        !detail::avx2_kernels_available()) {
      continue;
    }
    if (isa == detail::kernel_isa::avx512 &&
        !detail::avx512_kernels_available()) {
      continue;
    }
    detail::set_kernel_isa(isa);
    const blas_int rq = detail::blocking_row_quantum(isa);
    const blas_int cq = detail::blocking_col_quantum(isa);
    std::vector<float> c_default(static_cast<std::size_t>(m * n), 0.5f);
    detail::gemm_blocked(transpose::none, transpose::none, m, n, k, 1.25f,
                         a.data(), m, b.data(), k, 0.75f, c_default.data(),
                         m);
    for (const auto bl : {detail::gemm_blocking{rq, cq},
                          detail::gemm_blocking{2 * rq, 4 * cq},
                          detail::gemm_blocking{8 * rq, 16 * cq}}) {
      std::vector<float> c_blocked(static_cast<std::size_t>(m * n), 0.5f);
      const detail::scoped_blocking scope(bl.mc, bl.nc);
      detail::gemm_blocked(transpose::none, transpose::none, m, n, k, 1.25f,
                           a.data(), m, b.data(), k, 0.75f, c_blocked.data(),
                           m);
      for (std::size_t i = 0; i < c_default.size(); ++i) {
        ASSERT_EQ(c_default[i], c_blocked[i])
            << "isa=" << detail::kernel_isa_name(isa) << " mc=" << bl.mc
            << " nc=" << bl.nc << " elem=" << i;
      }
    }
  }
}

TEST(Blocking, SplitModesBitIdenticalUnderRetunedBlocking) {
  // The same identity through the fused split engine (including the
  // native BF16 path where available): blocking is a performance knob,
  // never a numerics knob.
  isa_guard guard;
  const blas_int m = 150, n = 140, k = 330;
  const auto a = signed_random(static_cast<std::size_t>(m * k), 93);
  const auto b = signed_random(static_cast<std::size_t>(k * n), 94);
  for (const bool native : {false, true}) {
    if (native && !detail::avx512bf16_kernels_available()) continue;
    if (native) detail::set_kernel_isa(detail::kernel_isa::avx512);
    detail::set_bf16_native(native);
    std::vector<float> c_default(static_cast<std::size_t>(m * n), 0.5f);
    detail::sgemm_split(compute_mode::float_to_bf16x2, transpose::none,
                        transpose::none, m, n, k, 1.0f, a.data(), m, b.data(),
                        k, 1.0f, c_default.data(), m);
    const blas_int rq =
        detail::blocking_row_quantum(detail::active_kernel_isa());
    const blas_int cq =
        detail::blocking_col_quantum(detail::active_kernel_isa());
    for (const auto bl : {detail::gemm_blocking{rq, cq},
                          detail::gemm_blocking{4 * rq, 2 * cq}}) {
      std::vector<float> c_blocked(static_cast<std::size_t>(m * n), 0.5f);
      const detail::scoped_blocking scope(bl.mc, bl.nc);
      detail::sgemm_split(compute_mode::float_to_bf16x2, transpose::none,
                          transpose::none, m, n, k, 1.0f, a.data(), m,
                          b.data(), k, 1.0f, c_blocked.data(), m);
      for (std::size_t i = 0; i < c_default.size(); ++i) {
        ASSERT_EQ(c_default[i], c_blocked[i])
            << "native=" << native << " mc=" << bl.mc << " nc=" << bl.nc
            << " elem=" << i;
      }
    }
  }
}

TEST(Blocking, LegalizeRoundsToQuantaAndDefaults) {
  isa_guard guard;
  detail::set_kernel_isa(detail::kernel_isa::scalar);
  const auto isa = detail::kernel_isa::scalar;
  const blas_int rq = detail::blocking_row_quantum(isa);
  const blas_int cq = detail::blocking_col_quantum(isa);
  const auto def = detail::default_blocking(isa);
  // Non-positive requests resolve to the tier default.
  EXPECT_EQ(detail::legalize_blocking(isa, 0, 0), def);
  EXPECT_EQ(detail::legalize_blocking(isa, -4, -4), def);
  // Arbitrary requests land on quantum multiples, never zero.
  const auto tiny = detail::legalize_blocking(isa, 1, 1);
  EXPECT_EQ(tiny.mc, rq);
  EXPECT_EQ(tiny.nc, cq);
  const auto mid = detail::legalize_blocking(isa, 3 * rq + rq / 2 + 1,
                                             5 * cq + cq / 2 + 1);
  EXPECT_EQ(mid.mc % rq, 0);
  EXPECT_EQ(mid.nc % cq, 0);
  // Oversized requests clamp to the hard caps.
  const auto big = detail::legalize_blocking(isa, 1 << 20, 1 << 20);
  EXPECT_LE(big.mc, detail::kMaxBlockM);
  EXPECT_LE(big.nc, detail::kMaxBlockN);
  // A {0,0} scope is a no-op: effective_blocking stays the default.
  {
    const detail::scoped_blocking noop(0, 0);
    EXPECT_EQ(detail::effective_blocking(), def);
  }
  // Scopes nest and restore.
  {
    const detail::scoped_blocking outer(2 * rq, 2 * cq);
    EXPECT_EQ(detail::effective_blocking(),
              (detail::gemm_blocking{2 * rq, 2 * cq}));
    {
      const detail::scoped_blocking inner(rq, cq);
      EXPECT_EQ(detail::effective_blocking(),
                (detail::gemm_blocking{rq, cq}));
    }
    EXPECT_EQ(detail::effective_blocking(),
              (detail::gemm_blocking{2 * rq, 2 * cq}));
  }
  EXPECT_EQ(detail::effective_blocking(), def);
}

// ---------------------------------------------------------------------------
// Packing arena.

TEST(PackArena, AllocationFreeAfterWarmup) {
  const blas_int m = 96, n = 80, k = 300;
  const auto a = signed_random(static_cast<std::size_t>(m * k), 11);
  const auto b = signed_random(static_cast<std::size_t>(k * n), 12);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  const auto run = [&](compute_mode mode) {
    scoped_compute_mode scope(mode);
    sgemm(transpose::none, transpose::none, m, n, k, 1.0f, a.data(), m,
          b.data(), k, 0.0f, c.data(), m);
  };
  // Warm both the standard and the largest split shape on this thread.
  run(compute_mode::standard);
  run(compute_mode::float_to_bf16x3);
  const std::uint64_t after_warmup = detail::pack_arena::total_allocations();
  for (int rep = 0; rep < 5; ++rep) {
    run(compute_mode::standard);
    run(compute_mode::float_to_bf16x3);
    run(compute_mode::float_to_bf16x2);  // smaller footprint: no regrowth
    run(compute_mode::float_to_tf32);
  }
  EXPECT_EQ(detail::pack_arena::total_allocations(), after_warmup)
      << "hot path allocated after warmup";
}

TEST(PackArena, GrowOnlyAndAlignment) {
  // Run on a fresh thread: its thread_local arena starts empty, so growth
  // behaviour is observable regardless of what earlier tests packed on the
  // main thread.
  std::thread([] {
    auto& arena = detail::pack_arena::for_thread();
    const std::uint64_t before = detail::pack_arena::total_allocations();
    float* small = arena.acquire<float>(detail::kArenaSlotB, 64);
    ASSERT_NE(small, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(small) % kCacheLineBytes, 0u);
    // Growing reallocates; shrinking reuses.
    float* big = arena.acquire<float>(detail::kArenaSlotB, 1 << 16);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % kCacheLineBytes, 0u);
    float* again = arena.acquire<float>(detail::kArenaSlotB, 128);
    EXPECT_EQ(again, big);
    EXPECT_GE(detail::pack_arena::total_allocations(), before + 2);
    const std::uint64_t settled = detail::pack_arena::total_allocations();
    (void)arena.acquire<float>(detail::kArenaSlotB, 1 << 16);
    EXPECT_EQ(detail::pack_arena::total_allocations(), settled);
  }).join();
}

TEST(PackArena, ThreadSafetyAndIndependence) {
  // Concurrent GEMMs on distinct std::threads each use their own arena;
  // results must match a single-threaded run of the same problem.
  const blas_int m = 64, n = 64, k = 128;
  const auto a = signed_random(static_cast<std::size_t>(m * k), 21);
  const auto b = signed_random(static_cast<std::size_t>(k * n), 22);
  std::vector<float> expected(static_cast<std::size_t>(m * n));
  {
    scoped_compute_mode scope(compute_mode::float_to_bf16x2);
    sgemm(transpose::none, transpose::none, m, n, k, 1.0f, a.data(), m,
          b.data(), k, 0.0f, expected.data(), m);
  }
  constexpr int kThreads = 4;
  std::vector<std::vector<float>> results(
      kThreads, std::vector<float>(static_cast<std::size_t>(m * n)));
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      scoped_compute_mode scope(compute_mode::float_to_bf16x2);
      for (int rep = 0; rep < 3; ++rep) {
        sgemm(transpose::none, transpose::none, m, n, k, 1.0f, a.data(), m,
              b.data(), k, 0.0f, results[static_cast<std::size_t>(t)].data(),
              m);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(results[static_cast<std::size_t>(t)][i], expected[i])
          << "thread=" << t << " elem=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// DCMESH_KERNEL_ISA environment handling.  setenv + set_kernel_isa(nullopt)
// re-resolves, so the cached launch value does not mask the test values.

struct env_isa_guard {
  ~env_isa_guard() {
    ::unsetenv("DCMESH_KERNEL_ISA");
    detail::set_kernel_isa(std::nullopt);
  }
};

TEST(KernelIsa, EnvScalarForcesScalar) {
  env_isa_guard guard;
  ::setenv("DCMESH_KERNEL_ISA", "Scalar", 1);  // case-insensitive
  detail::set_kernel_isa(std::nullopt);
  EXPECT_EQ(detail::active_kernel_isa(), detail::kernel_isa::scalar);
}

TEST(KernelIsa, EnvAvx2HonouredOrFallsBack) {
  env_isa_guard guard;
  ::setenv("DCMESH_KERNEL_ISA", "avx2", 1);
  detail::set_kernel_isa(std::nullopt);
  if (detail::avx2_kernels_available()) {
    EXPECT_EQ(detail::active_kernel_isa(), detail::kernel_isa::avx2);
  } else {
    // Unavailable: warn-once + scalar, never a throw.
    EXPECT_EQ(detail::active_kernel_isa(), detail::kernel_isa::scalar);
  }
}

TEST(KernelIsa, EnvAvx512HonouredOrFallsBackDownTheLadder) {
  env_isa_guard guard;
  ::setenv("DCMESH_KERNEL_ISA", "AVX512", 1);  // case-insensitive
  detail::set_kernel_isa(std::nullopt);
  if (detail::avx512_kernels_available()) {
    EXPECT_EQ(detail::active_kernel_isa(), detail::kernel_isa::avx512);
  } else if (detail::avx2_kernels_available()) {
    // Unavailable tiers fall DOWN the ladder, one tier at a time.
    EXPECT_EQ(detail::active_kernel_isa(), detail::kernel_isa::avx2);
  } else {
    EXPECT_EQ(detail::active_kernel_isa(), detail::kernel_isa::scalar);
  }
}

TEST(KernelIsa, MalformedEnvFallsBackToAuto) {
  env_isa_guard guard;
  ::setenv("DCMESH_KERNEL_ISA", "sse9", 1);
  detail::set_kernel_isa(std::nullopt);
  const detail::kernel_isa malformed = detail::active_kernel_isa();
  ::setenv("DCMESH_KERNEL_ISA", "auto", 1);
  detail::set_kernel_isa(std::nullopt);
  EXPECT_EQ(malformed, detail::active_kernel_isa());
}

TEST(KernelIsa, InProcessOverrideWinsOverEnv) {
  env_isa_guard guard;
  ::setenv("DCMESH_KERNEL_ISA", "scalar", 1);
  detail::set_kernel_isa(detail::kernel_isa::scalar);
  EXPECT_EQ(detail::active_kernel_isa(), detail::kernel_isa::scalar);
  EXPECT_EQ(detail::kernel_isa_name(detail::kernel_isa::scalar), "scalar");
  EXPECT_EQ(detail::kernel_isa_name(detail::kernel_isa::avx2), "avx2");
}

}  // namespace
}  // namespace dcmesh::blas
