// Correctness tests for cgemm/zgemm: all transpose/conjugate combinations,
// complex alpha/beta, and the 3M algorithm vs standard arithmetic.

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/gemm_ref.hpp"
#include "dcmesh/common/rng.hpp"

namespace dcmesh::blas {
namespace {

template <typename R>
std::vector<std::complex<R>> random_complex(std::size_t n, unsigned seed) {
  xoshiro256 rng(seed);
  std::vector<std::complex<R>> v(n);
  for (auto& x : v) {
    x = {static_cast<R>(rng.uniform(-1.0, 1.0)),
         static_cast<R>(rng.uniform(-1.0, 1.0))};
  }
  return v;
}

struct cplx_case {
  blas_int m, n, k;
  transpose ta, tb;
};

class ComplexGemm : public ::testing::TestWithParam<cplx_case> {
 protected:
  void SetUp() override { clear_compute_mode(); }
};

TEST_P(ComplexGemm, CgemmMatchesReference) {
  const auto [m, n, k, ta, tb] = GetParam();
  const auto rows_a = ta == transpose::none ? m : k;
  const auto cols_a = ta == transpose::none ? k : m;
  const auto rows_b = tb == transpose::none ? k : n;
  const auto cols_b = tb == transpose::none ? n : k;
  using C = std::complex<float>;

  const auto a = random_complex<float>(rows_a * cols_a, 21);
  const auto b = random_complex<float>(rows_b * cols_b, 22);
  auto c1 = random_complex<float>(m * n, 23);
  auto c2 = c1;
  const C alpha{1.25f, -0.5f}, beta{0.5f, 0.25f};

  cgemm(ta, tb, m, n, k, alpha, a.data(), rows_a, b.data(), rows_b, beta,
        c1.data(), m);
  detail::gemm_ref<C, std::complex<double>>(ta, tb, m, n, k, alpha, a.data(),
                                            rows_a, b.data(), rows_b, beta,
                                            c2.data(), m);
  for (blas_int i = 0; i < m * n; ++i) {
    ASSERT_NEAR(std::abs(c1[i] - c2[i]), 0.0f,
                1e-4f * static_cast<float>(k + 1));
  }
}

TEST_P(ComplexGemm, ZgemmMatchesReference) {
  const auto [m, n, k, ta, tb] = GetParam();
  const auto rows_a = ta == transpose::none ? m : k;
  const auto cols_a = ta == transpose::none ? k : m;
  const auto rows_b = tb == transpose::none ? k : n;
  const auto cols_b = tb == transpose::none ? n : k;
  using Z = std::complex<double>;

  const auto a = random_complex<double>(rows_a * cols_a, 31);
  const auto b = random_complex<double>(rows_b * cols_b, 32);
  auto c1 = random_complex<double>(m * n, 33);
  auto c2 = c1;
  const Z alpha{-0.75, 0.3}, beta{1.0, -1.0};

  zgemm(ta, tb, m, n, k, alpha, a.data(), rows_a, b.data(), rows_b, beta,
        c1.data(), m);
  detail::gemm_ref<Z, Z>(ta, tb, m, n, k, alpha, a.data(), rows_a, b.data(),
                         rows_b, beta, c2.data(), m);
  for (blas_int i = 0; i < m * n; ++i) {
    ASSERT_NEAR(std::abs(c1[i] - c2[i]), 0.0,
                1e-12 * static_cast<double>(k + 1));
  }
}

TEST_P(ComplexGemm, Complex3mMatchesStandardWithinTolerance) {
  // 3M has "accuracy comparable with standard complex arithmetic, but with
  // different numeric cancellation behaviour" (Sec. III-B) — same result
  // up to a modest multiple of FP32 epsilon.
  const auto [m, n, k, ta, tb] = GetParam();
  const auto rows_a = ta == transpose::none ? m : k;
  const auto cols_a = ta == transpose::none ? k : m;
  const auto rows_b = tb == transpose::none ? k : n;
  const auto cols_b = tb == transpose::none ? n : k;
  using C = std::complex<float>;

  const auto a = random_complex<float>(rows_a * cols_a, 41);
  const auto b = random_complex<float>(rows_b * cols_b, 42);
  std::vector<C> c_std(m * n), c_3m(m * n);
  const C alpha{1.0f, 0.0f};

  clear_compute_mode();
  cgemm(ta, tb, m, n, k, alpha, a.data(), rows_a, b.data(), rows_b, C(0),
        c_std.data(), m);
  {
    scoped_compute_mode mode(compute_mode::complex_3m);
    cgemm(ta, tb, m, n, k, alpha, a.data(), rows_a, b.data(), rows_b, C(0),
          c_3m.data(), m);
  }
  for (blas_int i = 0; i < m * n; ++i) {
    ASSERT_NEAR(std::abs(c_std[i] - c_3m[i]), 0.0f,
                2e-4f * static_cast<float>(k + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ComplexGemm,
    ::testing::Values(
        cplx_case{1, 1, 1, transpose::none, transpose::none},
        cplx_case{4, 4, 4, transpose::none, transpose::none},
        cplx_case{7, 9, 11, transpose::none, transpose::none},
        cplx_case{9, 7, 11, transpose::trans, transpose::none},
        cplx_case{9, 7, 11, transpose::conj_trans, transpose::none},
        cplx_case{9, 7, 11, transpose::none, transpose::trans},
        cplx_case{9, 7, 11, transpose::none, transpose::conj_trans},
        cplx_case{6, 6, 8, transpose::conj_trans, transpose::conj_trans},
        cplx_case{6, 6, 8, transpose::trans, transpose::conj_trans},
        cplx_case{5, 70, 260, transpose::none, transpose::none},
        // DCMESH-like: Psi^H Psi overlap shape.
        cplx_case{12, 12, 300, transpose::conj_trans, transpose::none},
        cplx_case{300, 12, 12, transpose::none, transpose::none}));

TEST(ComplexGemmEdge, HermitianOverlapIsHermitian) {
  // G = Psi^H Psi must be Hermitian with real non-negative diagonal.
  using C = std::complex<float>;
  const blas_int ngrid = 200, norb = 8;
  const auto psi = random_complex<float>(ngrid * norb, 55);
  std::vector<C> g(norb * norb);
  clear_compute_mode();
  cgemm(transpose::conj_trans, transpose::none, norb, norb, ngrid, C(1),
        psi.data(), ngrid, psi.data(), ngrid, C(0), g.data(), norb);
  for (blas_int j = 0; j < norb; ++j) {
    EXPECT_NEAR(g[j + j * norb].imag(), 0.0f, 1e-4f);
    EXPECT_GT(g[j + j * norb].real(), 0.0f);
    for (blas_int i = 0; i < norb; ++i) {
      ASSERT_NEAR(std::abs(g[i + j * norb] - std::conj(g[j + i * norb])),
                  0.0f, 1e-3f);
    }
  }
}

TEST(ComplexGemmEdge, Zgemm3mModeApplies) {
  // COMPLEX_3M also covers zgemm (double precision 3M).
  using Z = std::complex<double>;
  const blas_int m = 6, n = 5, k = 40;
  const auto a = random_complex<double>(m * k, 61);
  const auto b = random_complex<double>(k * n, 62);
  std::vector<Z> c_std(m * n), c_3m(m * n);
  clear_compute_mode();
  zgemm(transpose::none, transpose::none, m, n, k, Z(1), a.data(), m,
        b.data(), k, Z(0), c_std.data(), m);
  {
    scoped_compute_mode mode(compute_mode::complex_3m);
    zgemm(transpose::none, transpose::none, m, n, k, Z(1), a.data(), m,
          b.data(), k, Z(0), c_3m.data(), m);
  }
  for (blas_int i = 0; i < m * n; ++i) {
    ASSERT_NEAR(std::abs(c_std[i] - c_3m[i]), 0.0, 1e-12 * (k + 1));
  }
}

TEST(ComplexGemmEdge, SplitModesDoNotApplyToZgemm) {
  // FLOAT_TO_* modes affect single precision only; zgemm must stay exact.
  using Z = std::complex<double>;
  const blas_int m = 5, n = 5, k = 64;
  const auto a = random_complex<double>(m * k, 71);
  const auto b = random_complex<double>(k * n, 72);
  std::vector<Z> c_std(m * n), c_mode(m * n);
  clear_compute_mode();
  zgemm(transpose::none, transpose::none, m, n, k, Z(1), a.data(), m,
        b.data(), k, Z(0), c_std.data(), m);
  {
    scoped_compute_mode mode(compute_mode::float_to_bf16);
    zgemm(transpose::none, transpose::none, m, n, k, Z(1), a.data(), m,
          b.data(), k, Z(0), c_mode.data(), m);
  }
  for (blas_int i = 0; i < m * n; ++i) {
    ASSERT_EQ(c_std[i], c_mode[i]);
  }
}

}  // namespace
}  // namespace dcmesh::blas
