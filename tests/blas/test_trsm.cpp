// Tests for the triangular solver.

#include "dcmesh/blas/trsm.hpp"

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "dcmesh/blas/gemm_ref.hpp"
#include "dcmesh/common/rng.hpp"

namespace dcmesh::blas {
namespace {

/// Random well-conditioned triangular matrix (unit-dominant diagonal).
template <typename T>
std::vector<T> random_triangular(blas_int n, uplo u, unsigned seed) {
  xoshiro256 rng(seed);
  std::vector<T> a(n * n, T(0));
  for (blas_int j = 0; j < n; ++j) {
    for (blas_int i = 0; i < n; ++i) {
      const bool in_triangle = u == uplo::lower ? i >= j : i <= j;
      if (!in_triangle) continue;
      if constexpr (std::is_floating_point_v<T>) {
        a[i + j * n] = i == j ? T(2.0 + rng.uniform())
                              : static_cast<T>(0.3 * rng.uniform(-1, 1));
      } else {
        using R = typename T::value_type;
        a[i + j * n] =
            i == j ? T(static_cast<R>(2.0 + rng.uniform()), R(0))
                   : T(static_cast<R>(0.3 * rng.uniform(-1, 1)),
                       static_cast<R>(0.3 * rng.uniform(-1, 1)));
      }
    }
  }
  return a;
}

/// Verify op(A) X == alpha * B0 (left) or X op(A) == alpha * B0 (right).
template <typename T>
void check_solution(side s, uplo /*u*/, transpose trans, blas_int m,
                    blas_int n, T alpha, const std::vector<T>& a,
                    const std::vector<T>& b0, const std::vector<T>& x,
                    double tol) {
  const blas_int order = s == side::left ? m : n;
  std::vector<T> product(m * n, T(0));
  if (s == side::left) {
    detail::gemm_ref<T, T>(trans, transpose::none, m, n, m, T(1), a.data(),
                           order, x.data(), m, T(0), product.data(), m);
  } else {
    detail::gemm_ref<T, T>(transpose::none, trans, m, n, n, T(1), x.data(),
                           m, a.data(), order, T(0), product.data(), m);
  }
  for (blas_int i = 0; i < m * n; ++i) {
    ASSERT_NEAR(std::abs(product[i] - alpha * b0[i]), 0.0, tol) << i;
  }
}

struct trsm_case {
  side s;
  uplo u;
  transpose trans;
};

class TrsmSweep : public ::testing::TestWithParam<trsm_case> {};

TEST_P(TrsmSweep, ComplexSolveSatisfiesEquation) {
  using C = std::complex<double>;
  const auto [s, u, trans] = GetParam();
  const blas_int m = 7, n = 5;
  const blas_int order = s == side::left ? m : n;
  const auto a = random_triangular<C>(order, u, 3);
  xoshiro256 rng(4);
  std::vector<C> b(m * n);
  for (auto& v : b) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto b0 = b;
  const C alpha{1.5, -0.25};
  trsm<C>(s, u, trans, diag::non_unit, m, n, alpha, a.data(), order,
          b.data(), m);
  check_solution<C>(s, u, trans, m, n, alpha, a, b0, b, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrsmSweep,
    ::testing::Values(
        trsm_case{side::left, uplo::lower, transpose::none},
        trsm_case{side::left, uplo::upper, transpose::none},
        trsm_case{side::left, uplo::lower, transpose::trans},
        trsm_case{side::left, uplo::lower, transpose::conj_trans},
        trsm_case{side::left, uplo::upper, transpose::conj_trans},
        trsm_case{side::right, uplo::lower, transpose::none},
        trsm_case{side::right, uplo::upper, transpose::none},
        trsm_case{side::right, uplo::lower, transpose::conj_trans},
        trsm_case{side::right, uplo::upper, transpose::trans}));

TEST(Trsm, RealUnitDiagonal) {
  // Unit-diagonal: stored diagonal is ignored.
  const blas_int n = 3;
  std::vector<double> a{99.0, 0.5, 0.25, 0.0, 99.0, 0.5, 0.0, 0.0, 99.0};
  std::vector<double> b{1.0, 1.0, 1.0};
  trsm<double>(side::left, uplo::lower, transpose::none, diag::unit, n, 1,
               1.0, a.data(), n, b.data(), n);
  // Forward substitution with ones on the diagonal:
  // x0 = 1; x1 = 1 - 0.5 = 0.5; x2 = 1 - 0.25 - 0.5*0.5 = 0.5.
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 0.5);
  EXPECT_DOUBLE_EQ(b[2], 0.5);
}

TEST(Trsm, AlphaZeroClearsB) {
  std::vector<float> a{1.0f};
  std::vector<float> b{7.0f, 8.0f};
  trsm<float>(side::left, uplo::lower, transpose::none, diag::non_unit, 1,
              2, 0.0f, a.data(), 1, b.data(), 1);
  EXPECT_EQ(b[0], 0.0f);
  EXPECT_EQ(b[1], 0.0f);
}

TEST(Trsm, ZeroPivotThrows) {
  std::vector<double> a{0.0};
  std::vector<double> b{1.0};
  EXPECT_THROW(trsm<double>(side::left, uplo::lower, transpose::none,
                            diag::non_unit, 1, 1, 1.0, a.data(), 1,
                            b.data(), 1),
               std::invalid_argument);
}

TEST(Trsm, ValidationThrows) {
  std::vector<double> buf(16, 1.0);
  EXPECT_THROW(trsm<double>(side::left, uplo::lower, transpose::none,
                            diag::non_unit, -1, 1, 1.0, buf.data(), 1,
                            buf.data(), 1),
               std::invalid_argument);
  EXPECT_THROW(trsm<double>(side::left, uplo::lower, transpose::none,
                            diag::non_unit, 4, 1, 1.0, buf.data(), 2,
                            buf.data(), 4),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcmesh::blas
