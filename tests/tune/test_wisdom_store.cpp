// Tests for the SHARED wisdom store: the flock + merge-on-write protocol
// that lets N worker processes calibrate against one JSONL file without
// losing each other's entries.  Covers the generation counter semantics
// (monotonic stamping, no-change merges not burning a generation,
// last-writer-wins only for republished entries), peek_wisdom_generation,
// held-lock passthrough, a genuinely forked N-writer merge storm, and the
// campaign-farm acceptance contract: eight forked autotuner processes
// sharing one store perform each key's calibration in AT MOST one process.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/common/file_lock.hpp"
#include "dcmesh/trace/metrics.hpp"
#include "dcmesh/tune/autotuner.hpp"
#include "dcmesh/tune/wisdom.hpp"

namespace dcmesh::tune {
namespace {

class WisdomStoreTest : public ::testing::Test {
 protected:
  void SetUp() override { trace::clear_gemm_metrics(); }

  static std::string temp_path(const char* name) {
    return ::testing::TempDir() + name;
  }

  static wisdom_entry entry(std::string site, std::string mode,
                            std::uint64_t generation = 0) {
    wisdom_entry e;
    e.routine = "SGEMM";
    e.site = std::move(site);
    e.cls = classify_shape(128, 128, 128);
    e.ulp_budget = 1024.0;
    e.mode_token = std::move(mode);
    e.err_ulp = 1.0;
    e.gflops = 10.0;
    e.provenance = "calibrated";
    e.generation = generation;
    return e;
  }

  static blas::auto_tune_request sgemm_request(std::string_view site,
                                               blas::blas_int m,
                                               blas::blas_int n,
                                               blas::blas_int k) {
    return {site, "SGEMM", m, n, k, /*is_complex=*/false,
            /*is_fp64=*/false, /*ulp_budget=*/0.0};
  }
};

// -------------------------------------------------- generation counter ---

TEST_F(WisdomStoreTest, MergeStampsMonotonicGenerations) {
  const std::string path = temp_path("store_gen.jsonl");
  std::remove(path.c_str());

  const auto first = merge_wisdom(path, {entry("g/a", "STANDARD")});
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.generation, 1u);
  EXPECT_EQ(first.added, 1u);
  EXPECT_EQ(first.kept, 0u);

  const auto second = merge_wisdom(path, {entry("g/b", "STANDARD")});
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.generation, 2u);

  const auto peeked = peek_wisdom_generation(path);
  ASSERT_TRUE(peeked.has_value());
  EXPECT_EQ(*peeked, 2u);

  // Both entries survived, each stamped with the generation that
  // published it.
  const auto file = load_wisdom(path);
  ASSERT_EQ(file.entries.size(), 2u);
  EXPECT_EQ(file.generation, 2u);
  std::remove(path.c_str());
}

TEST_F(WisdomStoreTest, NoChangeMergeDoesNotBurnAGeneration) {
  const std::string path = temp_path("store_nochange.jsonl");
  std::remove(path.c_str());
  (void)merge_wisdom(path, {entry("g/a", "STANDARD")});

  // Re-merging an already-present fresh (gen-0) entry changes nothing,
  // so the file is not rewritten and the generation does not advance —
  // a warm fleet polling the store sees a quiescent counter.
  const auto again = merge_wisdom(path, {entry("g/a", "FLOAT_TO_BF16X3")});
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.generation, 1u);
  EXPECT_EQ(again.added, 0u);
  EXPECT_EQ(again.kept, 1u);
  EXPECT_EQ(peek_wisdom_generation(path).value_or(99), 1u);
  // ... and the incumbent decision was NOT clobbered.
  const auto file = load_wisdom(path);
  ASSERT_EQ(file.entries.size(), 1u);
  EXPECT_EQ(file.entries[0].mode_token, "STANDARD");
  std::remove(path.c_str());
}

TEST_F(WisdomStoreTest, RepublishedEntryWinsOverIncumbent) {
  const std::string path = temp_path("store_republish.jsonl");
  std::remove(path.c_str());
  (void)merge_wisdom(path, {entry("g/a", "STANDARD")});  // published gen 1

  // An entry republished WITH a generation at least the incumbent's is a
  // deliberate overwrite (last writer wins) and advances the counter.
  const auto merged = merge_wisdom(path, {entry("g/a", "COMPLEX_3M", 1)});
  ASSERT_TRUE(merged.ok);
  EXPECT_EQ(merged.generation, 2u);
  EXPECT_EQ(merged.added, 1u);
  const auto file = load_wisdom(path);
  ASSERT_EQ(file.entries.size(), 1u);
  EXPECT_EQ(file.entries[0].mode_token, "COMPLEX_3M");
  EXPECT_EQ(file.entries[0].generation, 2u);
  std::remove(path.c_str());
}

TEST_F(WisdomStoreTest, BlockingFieldsAreFillOnlyUnderMerge) {
  const std::string path = temp_path("store_blocking.jsonl");
  std::remove(path.c_str());

  // Publish a probed blocking for key g/a.
  wisdom_entry probed = entry("g/a", "STANDARD");
  probed.block_m = 112;
  probed.block_n = 1024;
  probed.block_isa = "scalar";
  ASSERT_TRUE(merge_wisdom(path, {probed}).ok);

  // A sibling republishes the key (mode rewrite, generation observed)
  // WITHOUT blocking — the stored probe result must survive the rewrite.
  const auto rewrite = merge_wisdom(path, {entry("g/a", "COMPLEX_3M", 1)});
  ASSERT_TRUE(rewrite.ok);
  auto file = load_wisdom(path);
  ASSERT_EQ(file.entries.size(), 1u);
  EXPECT_EQ(file.entries[0].mode_token, "COMPLEX_3M");
  EXPECT_EQ(file.entries[0].block_m, 112);
  EXPECT_EQ(file.entries[0].block_n, 1024);
  EXPECT_EQ(file.entries[0].block_isa, "scalar");

  // The other direction: a stored key without blocking gains it from a
  // gen-0 incoming entry (whose mode loses, first-writer-wins) — the
  // probe result is folded in instead of thrown away.
  (void)merge_wisdom(path, {entry("g/b", "STANDARD")});
  wisdom_entry fill = entry("g/b", "FLOAT_TO_BF16X3");
  fill.block_m = 72;
  fill.block_n = 512;
  fill.block_isa = "scalar";
  const auto filled = merge_wisdom(path, {fill});
  ASSERT_TRUE(filled.ok);
  EXPECT_EQ(filled.kept, 1u);
  file = load_wisdom(path);
  ASSERT_EQ(file.entries.size(), 2u);
  for (const auto& e : file.entries) {
    if (e.site != "g/b") continue;
    EXPECT_EQ(e.mode_token, "STANDARD");  // incumbent mode kept
    EXPECT_EQ(e.block_m, 72);             // blocking filled
    EXPECT_EQ(e.block_n, 512);
    EXPECT_EQ(e.block_isa, "scalar");
  }
  std::remove(path.c_str());
}

TEST_F(WisdomStoreTest, V1StoreLoadsAndUpgradesOnMerge) {
  const std::string path = temp_path("store_v1.jsonl");
  std::remove(path.c_str());

  // A file written by the previous release: format version 1, no
  // blocking fields on the entry line.
  std::string v1_header = wisdom_header(3);
  const auto pos = v1_header.find("\"dcmesh_wisdom\":2");
  ASSERT_NE(pos, std::string::npos) << v1_header;
  v1_header.replace(pos, 17, "\"dcmesh_wisdom\":1");
  ASSERT_TRUE(wisdom_header_ok(v1_header));
  {
    std::ofstream os(path, std::ios::trunc);
    os << v1_header << '\n' << entry("g/old", "STANDARD", 3).to_json()
       << '\n';
  }
  const auto file = load_wisdom(path);
  EXPECT_TRUE(file.existed);
  EXPECT_TRUE(file.version_ok);
  ASSERT_EQ(file.entries.size(), 1u);
  EXPECT_EQ(file.entries[0].block_m, 0);  // reads as "never probed"
  EXPECT_TRUE(file.entries[0].block_isa.empty());

  // The first merge rewrites the header at the current format version —
  // the store upgrades in place, keeping the old entries.
  ASSERT_TRUE(merge_wisdom(path, {entry("g/new", "STANDARD")}).ok);
  std::ifstream is(path);
  std::string header_line;
  ASSERT_TRUE(std::getline(is, header_line));
  EXPECT_NE(header_line.find("\"dcmesh_wisdom\":2"), std::string::npos);
  EXPECT_EQ(load_wisdom(path).entries.size(), 2u);
  std::remove(path.c_str());
}

TEST_F(WisdomStoreTest, PeekGenerationHandlesMissingAndGarbageFiles) {
  EXPECT_FALSE(peek_wisdom_generation("").has_value());
  EXPECT_FALSE(
      peek_wisdom_generation("/nonexistent-dcmesh/wisdom.jsonl").has_value());

  const std::string path = temp_path("store_peek_garbage.jsonl");
  {
    std::ofstream os(path, std::ios::trunc);
    os << "not a wisdom header\n";
  }
  EXPECT_FALSE(peek_wisdom_generation(path).has_value());

  // A valid pre-generation header (older writer) reads as generation 0.
  {
    std::ofstream os(path, std::ios::trunc);
    os << wisdom_header() << "\n";
  }
  EXPECT_EQ(peek_wisdom_generation(path).value_or(99), 0u);
  std::remove(path.c_str());
}

TEST_F(WisdomStoreTest, MergeUnderAnAlreadyHeldLockDoesNotDeadlock) {
  const std::string path = temp_path("store_heldlock.jsonl");
  std::remove(path.c_str());

  // flock exclusion is per open file description, so re-locking from the
  // same process would deadlock a naive implementation.  The caller who
  // already holds the store lock passes it through instead.
  const file_lock lock(path);
  ASSERT_TRUE(lock.held());
  const auto merged = merge_wisdom(path, {entry("g/h", "STANDARD")}, &lock);
  ASSERT_TRUE(merged.ok);
  EXPECT_EQ(merged.generation, 1u);
  EXPECT_EQ(load_wisdom(path).entries.size(), 1u);
  std::remove(path.c_str());
}

TEST_F(WisdomStoreTest, CorruptStoreIsRebuiltByMerge) {
  const std::string path = temp_path("store_corrupt.jsonl");
  {
    std::ofstream os(path, std::ios::trunc);
    os << "complete garbage\n{\"also\":\"garbage\"}\n";
  }
  const auto merged = merge_wisdom(path, {entry("g/r", "STANDARD")});
  ASSERT_TRUE(merged.ok);
  EXPECT_EQ(merged.generation, 1u);
  const auto file = load_wisdom(path);
  EXPECT_TRUE(file.version_ok);
  ASSERT_EQ(file.entries.size(), 1u);
  std::remove(path.c_str());
}

// ------------------------------------------------------ forked writers ---

// The satellite regression test: N forked processes race merge_wisdom
// against one store.  Every writer's unique key must survive — the
// read-modify-merge-under-flock write path cannot lose a sibling's
// entries the way clobbering save_wisdom would.
TEST_F(WisdomStoreTest, EightForkedWritersUnionOfKeysSurvives) {
  const std::string path = temp_path("store_forked.jsonl");
  std::remove(path.c_str());
  constexpr int kWriters = 8;
  constexpr int kRounds = 4;

  std::vector<pid_t> children;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: publish kRounds unique keys plus one key contested by
      // every writer, one merge per round to maximise interleaving.
      for (int r = 0; r < kRounds; ++r) {
        const std::string site =
            "w" + std::to_string(w) + "/k" + std::to_string(r);
        const bool ok1 = merge_wisdom(path, {entry(site, "STANDARD")}).ok;
        const bool ok2 =
            merge_wisdom(path, {entry("shared/hot", "STANDARD")}).ok;
        if (!ok1 || !ok2) _exit(1);
      }
      _exit(0);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }

  const auto file = load_wisdom(path);
  EXPECT_TRUE(file.version_ok);
  // Union of keys: every writer's every unique key, plus the contested
  // one exactly once.
  ASSERT_EQ(file.entries.size(),
            static_cast<std::size_t>(kWriters * kRounds + 1));
  for (int w = 0; w < kWriters; ++w) {
    for (int r = 0; r < kRounds; ++r) {
      const std::string site =
          "w" + std::to_string(w) + "/k" + std::to_string(r);
      bool found = false;
      for (const auto& e : file.entries) found |= (e.site == site);
      EXPECT_TRUE(found) << "lost key " << site;
    }
  }
  // Every successful write advanced the counter: at least one write per
  // unique key, and never more than the total merge count.
  EXPECT_GE(file.generation, static_cast<std::uint64_t>(kWriters * kRounds));
  EXPECT_LE(file.generation,
            static_cast<std::uint64_t>(kWriters * kRounds * 2));
  std::remove(path.c_str());
}

// ------------------------------------------- eight-process campaign ---

// The ISSUE acceptance contract, at autotuner level: eight forked worker
// processes share one wisdom store and resolve the same four keys
// concurrently.  The calibrate-under-lock protocol guarantees each key
// is calibrated in AT MOST one process fleet-wide — everyone else takes
// a shared hit — so the summed per-process calibration count equals the
// number of distinct keys.
TEST_F(WisdomStoreTest, EightProcessCampaignCalibratesEachKeyOnce) {
  const std::string path = temp_path("store_campaign.jsonl");
  std::remove(path.c_str());
  constexpr int kWorkers = 8;
  constexpr int kKeys = 4;

  std::vector<pid_t> children;
  for (int w = 0; w < kWorkers; ++w) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child worker: resolve all four keys, starting at a different one
      // per worker so every key has a different first-arriving process.
      autotuner tuner{path};
      for (int i = 0; i < kKeys; ++i) {
        const int k = (w + i) % kKeys;
        const std::string site = "farm/key" + std::to_string(k);
        const auto choice =
            tuner.resolve(sgemm_request(site, 128, 128, 64 + 64 * k));
        if (choice.provenance == blas::auto_provenance::defaulted) _exit(2);
      }
      const auto& stats = tuner.stats();
      std::FILE* out = std::fopen(
          (path + ".stats" + std::to_string(w)).c_str(), "w");
      if (out == nullptr) _exit(3);
      std::fprintf(out, "calibrations=%llu shared_hits=%llu resolves=%llu\n",
                   static_cast<unsigned long long>(stats.calibrations),
                   static_cast<unsigned long long>(stats.shared_hits),
                   static_cast<unsigned long long>(stats.resolutions));
      std::fclose(out);
      _exit(0);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "worker died: status " << status;
  }

  std::uint64_t total_calibrations = 0, total_shared = 0;
  for (int w = 0; w < kWorkers; ++w) {
    const std::string stats_path = path + ".stats" + std::to_string(w);
    std::ifstream in(stats_path);
    ASSERT_TRUE(in.is_open()) << stats_path;
    unsigned long long calibrations = 0, shared = 0, resolves = 0;
    std::string line;
    std::getline(in, line);
    ASSERT_EQ(std::sscanf(line.c_str(),
                          "calibrations=%llu shared_hits=%llu resolves=%llu",
                          &calibrations, &shared, &resolves),
              3);
    total_calibrations += calibrations;
    total_shared += shared;
    std::remove(stats_path.c_str());
  }

  // The headline number: kKeys calibrations across the WHOLE fleet.
  EXPECT_EQ(total_calibrations, static_cast<std::uint64_t>(kKeys));
  // Everyone who lost the per-key race adopted the winner's decision
  // while still inside the store lock.
  EXPECT_GT(total_shared, 0u);

  // The store holds exactly the four keys ...
  const auto file = load_wisdom(path);
  EXPECT_TRUE(file.version_ok);
  EXPECT_EQ(file.entries.size(), static_cast<std::size_t>(kKeys));

  // ... and a ninth, late-starting process performs ZERO calibration
  // GEMMs: the first generation already covered every key.
  trace::clear_gemm_metrics();
  autotuner late{path};
  for (int k = 0; k < kKeys; ++k) {
    const auto choice = late.resolve(
        sgemm_request("farm/key" + std::to_string(k), 128, 128, 64 + 64 * k));
    EXPECT_EQ(choice.provenance, blas::auto_provenance::cached);
  }
  EXPECT_EQ(late.stats().calibrations, 0u);
  EXPECT_EQ(trace::gemm_metrics_for(kCalibrationSite).calls, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dcmesh::tune
