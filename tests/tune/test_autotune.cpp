// Tests for the accuracy-aware autotuning subsystem: the wisdom file
// format (round-trip, stale/corrupt rejection, first-writer-wins dedup),
// the autotuner's calibrate/cache/model decision paths, multi-process
// determinism through a shared wisdom file, env-var robustness, and the
// end-to-end `auto` policy mode — including the headline guarantee that a
// warm wisdom cache performs ZERO calibration GEMMs (asserted via the
// metrics registry).

#include "dcmesh/tune/autotuner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/blas/precision_policy.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/core/driver.hpp"
#include "dcmesh/core/presets.hpp"
#include "dcmesh/trace/metrics.hpp"
#include "dcmesh/tune/wisdom.hpp"

namespace dcmesh::tune {
namespace {

class AutotuneTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    blas::set_auto_tune_hook({});
    blas::clear_policy();
    blas::clear_compute_mode();
    trace::clear_gemm_metrics();
    env_unset(kTuneCacheEnvVar);
    env_unset(kUlpBudgetEnvVar);
    env_unset(blas::kPolicyEnvVar);
    default_tuner().clear();
  }

  static std::string temp_path(const char* name) {
    return ::testing::TempDir() + name;
  }

  static blas::auto_tune_request sgemm_request(std::string_view site,
                                               blas::blas_int m,
                                               blas::blas_int n,
                                               blas::blas_int k) {
    return {site, "SGEMM", m, n, k, /*is_complex=*/false,
            /*is_fp64=*/false, /*ulp_budget=*/0.0};
  }
};

// ------------------------------------------------------------- wisdom ---

TEST_F(AutotuneTest, ShapeClassBucketsByBitWidth) {
  EXPECT_EQ(classify_shape(100, 3, 1000).to_string(), "m7n2k10");
  EXPECT_EQ(classify_shape(1, 1, 1).to_string(), "m1n1k1");
  // Same bucket for nearby shapes, different bucket across a power of two.
  EXPECT_EQ(classify_shape(65, 65, 100), classify_shape(100, 100, 127));
  EXPECT_FALSE(classify_shape(63, 64, 64) == classify_shape(64, 64, 64));
  // Degenerate dims clamp to the smallest bucket instead of misbehaving.
  EXPECT_EQ(classify_shape(0, -5, 1), classify_shape(1, 1, 1));
}

TEST_F(AutotuneTest, WisdomLineRoundTrips) {
  wisdom_entry entry;
  entry.routine = "CGEMM";
  entry.site = "lfd/nlp_prop/\"quoted\"";  // escaping must survive
  entry.cls = classify_shape(48, 48, 512);
  entry.ulp_budget = 1024.0;
  entry.mode_token = "COMPLEX_3M";
  entry.err_ulp = 16.6875;
  entry.gflops = 20.95;
  entry.provenance = "calibrated";

  const auto parsed = parse_wisdom_line(entry.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->routine, entry.routine);
  EXPECT_EQ(parsed->site, entry.site);
  EXPECT_EQ(parsed->cls, entry.cls);
  EXPECT_DOUBLE_EQ(parsed->ulp_budget, entry.ulp_budget);
  EXPECT_EQ(parsed->mode_token, entry.mode_token);
  EXPECT_DOUBLE_EQ(parsed->err_ulp, entry.err_ulp);
  EXPECT_DOUBLE_EQ(parsed->gflops, entry.gflops);
  EXPECT_EQ(parsed->provenance, entry.provenance);
  EXPECT_EQ(parsed->key(), entry.key());
}

TEST_F(AutotuneTest, WisdomBlockingFieldsRoundTrip) {
  wisdom_entry entry;
  entry.routine = "SGEMM";
  entry.site = "t/blk";
  entry.cls = classify_shape(128, 128, 512);
  entry.ulp_budget = 1024.0;
  entry.mode_token = "FLOAT_TO_BF16X2";
  entry.provenance = "calibrated";
  entry.block_m = 224;
  entry.block_n = 1024;
  entry.block_isa = "avx512";

  const std::string json = entry.to_json();
  EXPECT_NE(json.find("\"block_m\":224"), std::string::npos);
  const auto parsed = parse_wisdom_line(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->block_m, 224);
  EXPECT_EQ(parsed->block_n, 1024);
  EXPECT_EQ(parsed->block_isa, "avx512");

  // An unprobed entry emits NO blocking fields (v1-shaped line) and reads
  // back as unprobed.
  entry.block_m = 0;
  entry.block_n = 0;
  entry.block_isa.clear();
  const std::string bare = entry.to_json();
  EXPECT_EQ(bare.find("block_m"), std::string::npos);
  const auto reparsed = parse_wisdom_line(bare);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->block_m, 0);
  EXPECT_TRUE(reparsed->block_isa.empty());
}

TEST_F(AutotuneTest, HeaderValidatesFormatAndKernelVersion) {
  EXPECT_TRUE(wisdom_header_ok(wisdom_header()));
  EXPECT_FALSE(wisdom_header_ok(
      "{\"dcmesh_wisdom\":999,\"kernel\":\"minimkl-blocked-v2\"}"));
  EXPECT_FALSE(wisdom_header_ok(
      "{\"dcmesh_wisdom\":1,\"kernel\":\"some-older-kernel\"}"));
  EXPECT_FALSE(wisdom_header_ok("not json at all"));
  EXPECT_FALSE(parse_wisdom_line("{\"routine\":\"SGEMM\"}").has_value());
}

TEST_F(AutotuneTest, LoadSkipsMalformedLinesAndDedupsFirstWins) {
  const std::string path = temp_path("wisdom_malformed.jsonl");
  wisdom_entry entry;
  entry.routine = "SGEMM";
  entry.site = "a";
  entry.cls = classify_shape(64, 64, 64);
  entry.ulp_budget = 1024.0;
  entry.mode_token = "STANDARD";
  entry.provenance = "calibrated";
  wisdom_entry dup = entry;  // same key, different mode: must lose
  dup.mode_token = "FLOAT_TO_BF16";
  {
    std::ofstream os(path, std::ios::trunc);
    os << wisdom_header() << '\n'
       << entry.to_json() << '\n'
       << "torn wri" << '\n'
       << dup.to_json() << '\n';
  }
  const auto file = load_wisdom(path);
  EXPECT_TRUE(file.existed);
  EXPECT_TRUE(file.version_ok);
  EXPECT_EQ(file.rejected_lines, 1u);
  ASSERT_EQ(file.entries.size(), 1u);
  EXPECT_EQ(file.entries[0].mode_token, "STANDARD");
  std::remove(path.c_str());
}

TEST_F(AutotuneTest, StaleKernelVersionRejectsWholeFile) {
  const std::string path = temp_path("wisdom_stale.jsonl");
  {
    std::ofstream os(path, std::ios::trunc);
    os << "{\"dcmesh_wisdom\":1,\"kernel\":\"minimkl-blocked-v1\"}\n";
    os << "{\"routine\":\"SGEMM\",\"site\":\"a\",\"class\":\"m7n7k7\","
          "\"ulp_budget\":1024,\"mode\":\"STANDARD\",\"err_ulp\":1,"
          "\"gflops\":1,\"provenance\":\"calibrated\"}\n";
  }
  const auto file = load_wisdom(path);
  EXPECT_TRUE(file.existed);
  EXPECT_FALSE(file.version_ok);
  EXPECT_TRUE(file.entries.empty());
  std::remove(path.c_str());
}

// ---------------------------------------------------------- autotuner ---

TEST_F(AutotuneTest, TimedShapeCalibratesWithinBudget) {
  autotuner tuner{std::string{}};  // in-memory only
  const auto choice = tuner.resolve(sgemm_request("t/a", 128, 128, 128));
  EXPECT_EQ(choice.provenance, blas::auto_provenance::calibrated);
  EXPECT_LE(choice.err_ulp, kDefaultUlpBudget);

  const auto decisions = tuner.decisions();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].provenance, "calibrated");
  EXPECT_GT(decisions[0].gflops, 0.0);
  EXPECT_EQ(tuner.stats().calibrations, 1u);

  // The calibration GEMMs ran through the public dispatcher and are
  // visible in the metrics registry under the calibration site tag.
  EXPECT_GT(trace::gemm_metrics_for(kCalibrationSite).calls, 0u);
}

TEST_F(AutotuneTest, SecondResolveHitsMemoryWithZeroCalibrationGemms) {
  autotuner tuner{std::string{}};
  (void)tuner.resolve(sgemm_request("t/a", 128, 128, 128));

  trace::clear_gemm_metrics();
  const auto warm = tuner.resolve(sgemm_request("t/a", 128, 128, 128));
  EXPECT_EQ(warm.provenance, blas::auto_provenance::cached);
  EXPECT_EQ(trace::gemm_metrics_for(kCalibrationSite).calls, 0u);
  EXPECT_EQ(tuner.stats().cache_hits, 1u);
  EXPECT_EQ(tuner.stats().calibrations, 1u);
}

TEST_F(AutotuneTest, ChosenModeIsFastestWithinBudget) {
  autotuner tuner{std::string{}};
  (void)tuner.resolve(sgemm_request("t/fast", 96, 96, 256));
  const auto log = tuner.calibration_log();
  ASSERT_EQ(log.size(), 1u);
  ASSERT_EQ(log[0].decision.provenance, "calibrated");
  for (const auto& meas : log[0].measurements) {
    if (!meas.within_budget) continue;
    // The decision is the max-throughput mode among those within budget —
    // in particular at least as fast as always-BF16x3 (which, carrying
    // enough components to emulate FP32, is always within budget).
    EXPECT_GE(log[0].decision.gflops, meas.gflops)
        << "beaten by " << meas.mode_token;
    if (meas.mode_token == "FLOAT_TO_BF16X3") {
      EXPECT_LE(meas.err_ulp, kDefaultUlpBudget);
    }
  }
}

TEST_F(AutotuneTest, TinyShapeFallsBackToModelRanking) {
  autotuner tuner{std::string{}};
  const auto choice = tuner.resolve(sgemm_request("t/tiny", 8, 8, 8));
  EXPECT_EQ(choice.provenance, blas::auto_provenance::modeled);
  EXPECT_LE(choice.err_ulp, kDefaultUlpBudget);
  EXPECT_EQ(tuner.stats().model_decisions, 1u);
  const auto decisions = tuner.decisions();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].provenance, "modeled");
  EXPECT_EQ(decisions[0].gflops, 0.0);  // nothing was timed
}

TEST_F(AutotuneTest, PlainFp64DefaultsToStandardWithoutCalibration) {
  autotuner tuner{std::string{}};
  const blas::auto_tune_request request{
      "t/d", "DGEMM", 128, 128, 128, false, true, 0.0};
  const auto choice = tuner.resolve(request);
  EXPECT_EQ(choice.mode, blas::compute_mode::standard);
  EXPECT_EQ(choice.provenance, blas::auto_provenance::defaulted);
  EXPECT_TRUE(tuner.decisions().empty());
  EXPECT_EQ(trace::gemm_metrics_for(kCalibrationSite).calls, 0u);
}

TEST_F(AutotuneTest, RequestBudgetOverridesDefaultAndKeysTheDecision) {
  autotuner tuner{std::string{}};
  blas::auto_tune_request request = sgemm_request("t/b", 64, 64, 64);
  request.ulp_budget = 123456.0;
  (void)tuner.resolve(request);
  const auto decisions = tuner.decisions();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_DOUBLE_EQ(decisions[0].ulp_budget, 123456.0);

  // A different budget is a different key: it calibrates separately.
  request.ulp_budget = 0.0;
  (void)tuner.resolve(request);
  EXPECT_EQ(tuner.decisions().size(), 2u);
}

TEST_F(AutotuneTest, BlockingProbedColdOnceThenServedWarm) {
  const std::string path = temp_path("wisdom_blocking.jsonl");
  std::remove(path.c_str());

  // 2*128*128*512 = 16.8 Mflop: big enough to time AND to probe MC/NC.
  autotuner cold{path};
  const auto first = cold.resolve(sgemm_request("t/blk", 128, 128, 512));
  EXPECT_EQ(first.provenance, blas::auto_provenance::calibrated);
  EXPECT_EQ(cold.stats().blocking_probes, 1u);
  // The probed winner reaches both the decision cache and the caller.
  const auto decisions = cold.decisions();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_GT(decisions[0].block_m, 0);
  EXPECT_GT(decisions[0].block_n, 0);
  EXPECT_FALSE(decisions[0].block_isa.empty());
  EXPECT_GT(first.block_m, 0);
  EXPECT_GT(first.block_n, 0);

  // A fresh instance on the same store: the key is served warm with ZERO
  // calibration GEMMs and ZERO blocking probes.
  trace::clear_gemm_metrics();
  autotuner warm{path};
  const auto second = warm.resolve(sgemm_request("t/blk", 128, 128, 512));
  EXPECT_EQ(second.provenance, blas::auto_provenance::cached);
  EXPECT_EQ(warm.stats().blocking_probes, 0u);
  EXPECT_EQ(trace::gemm_metrics_for(kCalibrationSite).calls, 0u);
  EXPECT_EQ(second.block_m, first.block_m);
  EXPECT_EQ(second.block_n, first.block_n);
  std::remove(path.c_str());
}

TEST_F(AutotuneTest, SmallShapesNeverProbeBlocking) {
  autotuner tuner{std::string{}};
  // Timed (>= kMinTimedFlops) but below the blocking-probe floor: the
  // mode is calibrated, the blocking stays at the per-ISA default.
  (void)tuner.resolve(sgemm_request("t/sm", 64, 64, 64));
  // Model-ranked tiny shape: no probe either.
  (void)tuner.resolve(sgemm_request("t/tiny", 8, 8, 8));
  EXPECT_EQ(tuner.stats().blocking_probes, 0u);
  for (const auto& d : tuner.decisions()) {
    EXPECT_EQ(d.block_m, 0) << d.site;
    EXPECT_TRUE(d.block_isa.empty()) << d.site;
  }
}

// ------------------------------------------------- wisdom persistence ---

TEST_F(AutotuneTest, WisdomRoundTripsAcrossInstancesWithZeroRecalibration) {
  const std::string path = temp_path("wisdom_roundtrip.jsonl");
  std::remove(path.c_str());

  autotuner cold{path};
  const auto first = cold.resolve(sgemm_request("t/rt", 128, 128, 128));
  EXPECT_EQ(first.provenance, blas::auto_provenance::calibrated);
  ASSERT_TRUE(cold.flush());

  // A fresh instance (fresh process, in effect) resolves the same key
  // from the file: identical mode, and NOT ONE calibration GEMM.
  trace::clear_gemm_metrics();
  autotuner warm{path};
  const auto second = warm.resolve(sgemm_request("t/rt", 128, 128, 128));
  EXPECT_EQ(second.provenance, blas::auto_provenance::cached);
  EXPECT_EQ(second.mode, first.mode);
  EXPECT_EQ(trace::gemm_metrics_for(kCalibrationSite).calls, 0u);
  EXPECT_EQ(warm.stats().calibrations, 0u);
  EXPECT_EQ(warm.stats().cache_hits, 1u);
  std::remove(path.c_str());
}

TEST_F(AutotuneTest, ClearBehavesLikeAFreshProcess) {
  const std::string path = temp_path("wisdom_clear.jsonl");
  std::remove(path.c_str());
  autotuner tuner{path};
  const auto first = tuner.resolve(sgemm_request("t/c", 128, 128, 128));
  tuner.clear();
  EXPECT_TRUE(tuner.decisions().empty());
  const auto again = tuner.resolve(sgemm_request("t/c", 128, 128, 128));
  EXPECT_EQ(again.provenance, blas::auto_provenance::cached);  // from file
  EXPECT_EQ(again.mode, first.mode);
  std::remove(path.c_str());
}

TEST_F(AutotuneTest, CorruptWisdomFileIsRejectedAndRebuilt) {
  const std::string path = temp_path("wisdom_corrupt.jsonl");
  {
    std::ofstream os(path, std::ios::trunc);
    os << "complete garbage, not even json\nmore garbage\n";
  }
  autotuner tuner{path};
  // The corrupt file must not crash, throw, or poison the decision.
  const auto choice = tuner.resolve(sgemm_request("t/x", 128, 128, 128));
  EXPECT_EQ(choice.provenance, blas::auto_provenance::calibrated);

  // And the file has been rebuilt with a valid header + this decision.
  const auto reloaded = load_wisdom(path);
  EXPECT_TRUE(reloaded.version_ok);
  ASSERT_EQ(reloaded.entries.size(), 1u);
  EXPECT_EQ(reloaded.entries[0].site, "t/x");
  std::remove(path.c_str());
}

TEST_F(AutotuneTest, ProcessesSharingAWisdomFileAgree) {
  const std::string path = temp_path("wisdom_shared.jsonl");
  std::remove(path.c_str());

  // "Process" A calibrates key 1; "process" B, sharing the file, must
  // adopt A's decision for key 1, then contribute key 2; A must adopt
  // B's key-2 decision after a reload.  First writer wins throughout.
  autotuner a{path};
  autotuner b{path};
  const auto a1 = a.resolve(sgemm_request("t/s1", 128, 128, 128));
  const auto b1 = b.resolve(sgemm_request("t/s1", 128, 128, 128));
  EXPECT_EQ(b1.provenance, blas::auto_provenance::cached);
  EXPECT_EQ(b1.mode, a1.mode);

  const auto b2 = b.resolve(sgemm_request("t/s2", 64, 64, 256));
  a.clear();  // reload from the shared file on next resolve
  const auto a2 = a.resolve(sgemm_request("t/s2", 64, 64, 256));
  EXPECT_EQ(a2.provenance, blas::auto_provenance::cached);
  EXPECT_EQ(a2.mode, b2.mode);
  std::remove(path.c_str());
}

// ------------------------------------------------- env-var robustness ---

TEST_F(AutotuneTest, UnwritableCachePathWarnsAndStaysMemoryOnly) {
  autotuner tuner{"/nonexistent-dcmesh-dir/sub/wisdom.jsonl"};
  const auto choice = tuner.resolve(sgemm_request("t/u", 128, 128, 128));
  EXPECT_EQ(choice.provenance, blas::auto_provenance::calibrated);
  const auto warm = tuner.resolve(sgemm_request("t/u", 128, 128, 128));
  EXPECT_EQ(warm.provenance, blas::auto_provenance::cached);
}

TEST_F(AutotuneTest, MalformedUlpBudgetEnvFallsBackToDefault) {
  env_set(kUlpBudgetEnvVar, "not-a-number");
  autotuner tuner{std::string{}};
  (void)tuner.resolve(sgemm_request("t/e", 64, 64, 64));
  const auto decisions = tuner.decisions();
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_DOUBLE_EQ(decisions[0].ulp_budget, kDefaultUlpBudget);

  env_set(kUlpBudgetEnvVar, "4096");
  (void)tuner.resolve(sgemm_request("t/e2", 64, 64, 64));
  bool found = false;
  for (const auto& entry : tuner.decisions()) {
    if (entry.site == "t/e2") {
      EXPECT_DOUBLE_EQ(entry.ulp_budget, 4096.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AutotuneTest, FollowEnvTunerTracksCachePathChanges) {
  const std::string path = temp_path("wisdom_env.jsonl");
  std::remove(path.c_str());
  autotuner tuner;  // follow-env mode
  EXPECT_EQ(tuner.cache_path(), "");

  env_set(kTuneCacheEnvVar, path);
  (void)tuner.resolve(sgemm_request("t/env", 128, 128, 128));
  EXPECT_EQ(tuner.cache_path(), path);
  EXPECT_TRUE(load_wisdom(path).version_ok);
  EXPECT_EQ(load_wisdom(path).entries.size(), 1u);

  env_unset(kTuneCacheEnvVar);
  (void)tuner.resolve(sgemm_request("t/env", 128, 128, 128));
  EXPECT_EQ(tuner.cache_path(), "");
  std::remove(path.c_str());
}

// -------------------------------------------------------- auto policy ---

TEST_F(AutotuneTest, AutoPolicyResolvesThroughInstalledTuner) {
  install_auto_tuner();
  blas::set_policy(blas::parse_policy("e2e/*=auto"));

  const blas::blas_int n = 128;
  std::vector<float> a(n * n, 0.25f), b(n * n, 0.5f), c(n * n);
  blas::gemm_call<float> call;
  call.m = call.n = call.k = n;
  call.a = a.data();
  call.lda = n;
  call.b = b.data();
  call.ldb = n;
  call.c = c.data();
  call.ldc = n;
  call.call_site = "e2e/site";
  blas::run(call);
  blas::run(call);

  const auto counters = trace::gemm_metrics_for("e2e/site");
  EXPECT_EQ(counters.calls, 2u);
  ASSERT_EQ(counters.tune_calls.count("calibrated"), 1u);
  EXPECT_EQ(counters.tune_calls.at("calibrated"), 1u);
  ASSERT_EQ(counters.tune_calls.count("cached"), 1u);
  EXPECT_EQ(counters.tune_calls.at("cached"), 1u);
  EXPECT_GT(trace::gemm_metrics_for(kCalibrationSite).calls, 0u);
}

// The ISSUE acceptance scenario: the real driver on the tiny preset with
// a blanket auto policy.  Cold run calibrates every tagged site within
// budget; a second run against the same wisdom file performs zero
// calibration GEMMs.
TEST_F(AutotuneTest, DriverTinyPresetAutoColdThenWarm) {
  const std::string path = temp_path("wisdom_driver.jsonl");
  std::remove(path.c_str());
  env_set(kTuneCacheEnvVar, path);

  auto config = core::preset(core::paper_system::tiny);
  config.qd_steps_per_series = 5;
  config.series = 1;
  config.blas_policy = "lfd/*=auto";

  {  // cold: every auto-resolved site calibrates within its budget
    core::driver sim(config);
    sim.run();
  }
  EXPECT_GT(trace::gemm_metrics_for(kCalibrationSite).calls, 0u);
  const auto decisions = default_tuner().decisions();
  ASSERT_FALSE(decisions.empty());
  for (const auto& entry : decisions) {
    EXPECT_LE(entry.err_ulp, entry.ulp_budget) << entry.key();
  }
  const std::size_t persisted = load_wisdom(path).entries.size();
  EXPECT_EQ(persisted, decisions.size());

  // warm: fresh tuner state (fresh process, in effect), same wisdom file
  default_tuner().clear();
  trace::clear_gemm_metrics();
  {
    core::driver sim(config);
    sim.run();
  }
  EXPECT_EQ(trace::gemm_metrics_for(kCalibrationSite).calls, 0u);
  EXPECT_EQ(default_tuner().stats().calibrations, 0u);
  EXPECT_GT(default_tuner().stats().cache_hits, 0u);
  // The warm run added no new wisdom.
  EXPECT_EQ(load_wisdom(path).entries.size(), persisted);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dcmesh::tune
