// Tests for the propagator variants (Taylor vs Strang split).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "dcmesh/core/config.hpp"
#include "dcmesh/lfd/engine.hpp"
#include "dcmesh/lfd/init.hpp"
#include "dcmesh/lfd/potential.hpp"
#include "dcmesh/qxmd/supercell.hpp"

namespace dcmesh::lfd {
namespace {

struct setup {
  mesh::grid3d grid;
  qxmd::atom_system atoms;
  init_result init;
  lfd_options options;
};

setup make(propagator_kind kind, double depth_scale = 0.15) {
  setup s{mesh::grid3d::cubic(8, 7.37 / 8.0),
          qxmd::build_pto_supercell(1, 7.37, 0.05, 3),
          {},
          {}};
  s.init = initialize_ground_state(s.grid, s.atoms, 8, 3,
                                   mesh::fd_order::fourth, 11, depth_scale);
  s.options.dt = 0.02;
  s.options.v_nl = 0.08;
  s.options.propagator = kind;
  s.options.pulse.e0 = 0.4;
  s.options.pulse.omega = 1.0;
  s.options.pulse.t_center = 0.4;
  s.options.pulse.sigma = 0.15;
  return s;
}

lfd_engine<double> engine_for(const setup& s, double depth_scale = 0.15) {
  return lfd_engine<double>(s.grid, s.options, s.init.psi,
                            s.init.occupations, 3,
                            build_local_potential(s.grid, s.atoms,
                                                  depth_scale));
}

TEST(Propagators, StrangTracksTaylor) {
  // Both are 2nd-order-accurate-in-dt schemes for the same H: over a short
  // run their observables must agree to O(dt^2) per step.
  auto taylor_setup = make(propagator_kind::taylor);
  auto strang_setup = make(propagator_kind::strang);
  auto taylor = engine_for(taylor_setup);
  auto strang = engine_for(strang_setup);
  for (int i = 0; i < 25; ++i) {
    const auto rt = taylor.qd_step();
    const auto rs = strang.qd_step();
    ASSERT_NEAR(rt.ekin, rs.ekin, 1e-4 * std::abs(rt.ekin) + 1e-6) << i;
    ASSERT_NEAR(rt.nexc, rs.nexc, 1e-4 + 0.05 * std::abs(rt.nexc)) << i;
  }
}

TEST(Propagators, StrangStableWithDeepPotential) {
  // A potential deep enough that the full-H Taylor radius is exceeded at
  // this dt; the Strang variant only expands the stencil part and must
  // keep running (this is its whole point).
  const double deep = 30.0;  // ~200 Ha wells: beyond the full-H Taylor radius
  auto taylor_setup = make(propagator_kind::taylor, deep);
  auto taylor = engine_for(taylor_setup, deep);
  EXPECT_THROW((void)taylor.qd_step(), std::runtime_error);

  auto strang_setup = make(propagator_kind::strang, deep);
  auto strang = engine_for(strang_setup, deep);
  double nexc = 0.0;
  for (int i = 0; i < 10; ++i) nexc = strang.qd_step().nexc;
  EXPECT_TRUE(std::isfinite(nexc));
  EXPECT_LT(strang.last_norm_drift(), 0.3);
}

TEST(Propagators, StrangUnitaryInPotential) {
  // Field-free, kinetic-free limit would be exactly unitary; in practice
  // compare norm drift per step: Strang's must not exceed Taylor's by
  // more than a small factor.
  auto taylor_setup = make(propagator_kind::taylor);
  auto strang_setup = make(propagator_kind::strang);
  taylor_setup.options.pulse.e0 = 0.0;
  strang_setup.options.pulse.e0 = 0.0;
  auto taylor = engine_for(taylor_setup);
  auto strang = engine_for(strang_setup);
  double taylor_drift = 0.0, strang_drift = 0.0;
  for (int i = 0; i < 20; ++i) {
    (void)taylor.qd_step();
    (void)strang.qd_step();
    taylor_drift = std::max(taylor_drift, taylor.last_norm_drift());
    strang_drift = std::max(strang_drift, strang.last_norm_drift());
  }
  EXPECT_LT(strang_drift, 10.0 * taylor_drift + 1e-9);
}

TEST(Propagators, ConfigRoundTrip) {
  core::run_config config;
  config.propagator = core::propagator_choice::strang;
  std::istringstream deck(core::to_deck(config));
  EXPECT_EQ(core::parse_config(deck).propagator,
            core::propagator_choice::strang);

  std::istringstream bad("propagator = verlet\n");
  EXPECT_THROW((void)core::parse_config(bad), std::runtime_error);
}

}  // namespace
}  // namespace dcmesh::lfd
