// Tests for the LFD engine: invariants of the QD step and the precision
// plumbing the paper's methodology rests on.

#include "dcmesh/lfd/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/lfd/init.hpp"
#include "dcmesh/lfd/potential.hpp"
#include "dcmesh/qxmd/supercell.hpp"

namespace dcmesh::lfd {
namespace {

struct test_setup {
  mesh::grid3d grid;
  qxmd::atom_system atoms;
  init_result init;
  lfd_options options;
};

test_setup make_setup(double pulse_e0) {
  test_setup s{mesh::grid3d::cubic(8, 7.37 / 8.0),
               qxmd::build_pto_supercell(1, 7.37, 0.05, 3),
               {},
               {}};
  s.init = initialize_ground_state(s.grid, s.atoms, 8, 3,
                                   mesh::fd_order::fourth, 11);
  s.options.dt = 0.02;
  s.options.v_nl = 0.08;
  s.options.pulse.e0 = pulse_e0;
  s.options.pulse.omega = 1.0;
  s.options.pulse.t_center = 0.4;
  s.options.pulse.sigma = 0.15;
  return s;
}

template <typename R>
lfd_engine<R> make_engine(const test_setup& s) {
  return lfd_engine<R>(s.grid, s.options, s.init.psi, s.init.occupations, 3,
                       build_local_potential(s.grid, s.atoms));
}

TEST(Engine, QdStepMakesExactlyNineBlasCalls) {
  // The artifact appendix's structural fact: 9 BLAS calls per QD step.
  const auto setup = make_setup(0.2);
  auto engine = make_engine<float>(setup);
  blas::clear_call_log();
  (void)engine.qd_step();
  EXPECT_EQ(blas::call_count(), 9u);
}

TEST(Engine, DeterministicAcrossInstances) {
  const auto setup = make_setup(0.2);
  auto a = make_engine<float>(setup);
  auto b = make_engine<float>(setup);
  for (int i = 0; i < 5; ++i) {
    const auto ra = a.qd_step();
    const auto rb = b.qd_step();
    ASSERT_EQ(ra.ekin, rb.ekin);
    ASSERT_EQ(ra.nexc, rb.nexc);
    ASSERT_EQ(ra.javg, rb.javg);
  }
}

TEST(Engine, FieldFreeGroundStateIsStationary) {
  // Without a pulse the SCF ground state barely excites (the nonlocal
  // projector commutes with the initial subspace) and energy is conserved.
  const auto setup = make_setup(0.0);
  auto engine = make_engine<double>(setup);
  qd_record first{}, last{};
  for (int i = 0; i < 25; ++i) {
    last = engine.qd_step();
    if (i == 0) first = last;
  }
  // The RR ground state is an eigenstate of the projected Hamiltonian, not
  // of the full discrete H, so a small residual evolution is genuine; it
  // must stay orders of magnitude below a real excitation (~1e-2).
  EXPECT_LT(last.nexc, 1e-4);
  EXPECT_LT(std::abs(last.etot - first.etot), 5e-3);
  EXPECT_NEAR(last.aext, 0.0, 1e-12);
}

TEST(Engine, PulseExcitesElectrons) {
  const auto setup = make_setup(0.5);
  auto engine = make_engine<double>(setup);
  double nexc = 0.0;
  for (int i = 0; i < 40; ++i) {
    nexc = engine.qd_step().nexc;
  }
  EXPECT_GT(nexc, 1e-8);  // the pulse (centred at t=0.4) did real work
}

TEST(Engine, TimeAdvancesByDt) {
  const auto setup = make_setup(0.1);
  auto engine = make_engine<float>(setup);
  EXPECT_DOUBLE_EQ(engine.time(), 0.0);
  (void)engine.qd_step();
  EXPECT_DOUBLE_EQ(engine.time(), 0.02);
  (void)engine.qd_step();
  EXPECT_DOUBLE_EQ(engine.time(), 0.04);
  EXPECT_EQ(engine.qd_steps_taken(), 2u);
}

TEST(Engine, RecordFieldsConsistent) {
  const auto setup = make_setup(0.3);
  auto engine = make_engine<float>(setup);
  const auto r = engine.qd_step();
  EXPECT_DOUBLE_EQ(r.t, 0.02);
  EXPECT_NEAR(r.etot, r.ekin + r.epot, 1e-10);
  EXPECT_GE(r.aext, 0.0);
  EXPECT_TRUE(std::isfinite(r.javg));
  EXPECT_GE(r.nexc, 0.0);
}

TEST(Engine, ScfRefreshRepairsDriftAndPreservesObservables) {
  const auto setup = make_setup(0.4);
  auto engine = make_engine<float>(setup);
  for (int i = 0; i < 30; ++i) (void)engine.qd_step();
  const double nexc_before = engine.qd_step().nexc;
  const auto report = engine.refresh_scf();
  EXPECT_GE(report.max_norm_drift, 0.0);
  // One more step after the refresh: the observable stays the same order
  // of magnitude (the FP64 re-orthonormalization redistributes a little
  // leaked weight by construction, so exact continuity is not expected).
  const double nexc_after = engine.qd_step().nexc;
  EXPECT_GT(nexc_after, nexc_before / 3.0);
  EXPECT_LT(nexc_after, nexc_before * 3.0);
}

TEST(Engine, Fp32AndFp64TrackEachOther) {
  // The FP64 build is the reference; FP32 must agree to single precision
  // over a short run.
  const auto setup = make_setup(0.3);
  auto e32 = make_engine<float>(setup);
  auto e64 = make_engine<double>(setup);
  for (int i = 0; i < 10; ++i) {
    const auto r32 = e32.qd_step();
    const auto r64 = e64.qd_step();
    ASSERT_NEAR(r32.ekin, r64.ekin, 1e-3 * std::abs(r64.ekin) + 1e-4);
    ASSERT_NEAR(r32.nexc, r64.nexc, 1e-3 * std::abs(r64.nexc) + 1e-5);
  }
}

TEST(Engine, ConstructorValidatesArguments) {
  const auto setup = make_setup(0.1);
  auto v = build_local_potential(setup.grid, setup.atoms);
  // nocc out of range.
  EXPECT_THROW(lfd_engine<float>(setup.grid, setup.options, setup.init.psi,
                                 setup.init.occupations, 0, v),
               std::invalid_argument);
  EXPECT_THROW(lfd_engine<float>(setup.grid, setup.options, setup.init.psi,
                                 setup.init.occupations, 8, v),
               std::invalid_argument);
  // occupation count mismatch.
  EXPECT_THROW(lfd_engine<float>(setup.grid, setup.options, setup.init.psi,
                                 std::vector<double>(3, 2.0), 2, v),
               std::invalid_argument);
}

TEST(Engine, UnstableTimestepIsRejected) {
  auto setup = make_setup(0.1);
  setup.options.dt = 10.0;  // wildly beyond the Taylor stability radius
  auto engine = make_engine<float>(setup);
  EXPECT_THROW((void)engine.qd_step(), std::runtime_error);
}

TEST(Engine, SetPotentialTakesEffect) {
  const auto setup = make_setup(0.0);
  auto engine = make_engine<double>(setup);
  const double epot0 = engine.qd_step().epot;
  // Shift the potential down by 1 Ha everywhere: epot drops by N_el * 1.
  auto v = build_local_potential(setup.grid, setup.atoms);
  for (auto& x : v) x -= 1.0;
  engine.set_potential(std::move(v));
  const double epot1 = engine.qd_step().epot;
  double n_el = 0.0;
  for (double f : setup.init.occupations) n_el += f;
  EXPECT_NEAR(epot1 - epot0, -n_el, 0.05 * n_el);
}

}  // namespace
}  // namespace dcmesh::lfd
