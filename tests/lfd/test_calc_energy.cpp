// Tests for the BLASified energy evaluation.

#include "dcmesh/lfd/calc_energy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/lfd/nlp_prop.hpp"
#include "dcmesh/qxmd/scf.hpp"

namespace dcmesh::lfd {
namespace {

using C = std::complex<double>;

/// Plane-wave orbital with known kinetic energy on the discrete mesh.
matrix<C> plane_wave_orbital(const mesh::grid3d& g, int k) {
  matrix<C> psi(static_cast<std::size_t>(g.size()), 1);
  const double two_pi = 2.0 * std::numbers::pi;
  const double norm = 1.0 / std::sqrt(g.volume());
  for (std::int64_t iz = 0; iz < g.nz; ++iz) {
    for (std::int64_t iy = 0; iy < g.ny; ++iy) {
      for (std::int64_t ix = 0; ix < g.nx; ++ix) {
        const double phase = two_pi * k * double(ix) / g.nx;
        psi(static_cast<std::size_t>(g.index(ix, iy, iz)), 0) =
            C(std::cos(phase) * norm, std::sin(phase) * norm);
      }
    }
  }
  return psi;
}

TEST(CalcEnergy, PlaneWaveKineticEnergy) {
  const mesh::grid3d grid = mesh::grid3d::cubic(10, 0.8);
  hamiltonian<double> h(
      grid, mesh::fd_order::fourth,
      std::vector<double>(static_cast<std::size_t>(grid.size()), 0.0));
  const auto psi = plane_wave_orbital(grid, 1);
  matrix<C> g_mat(1, 1);
  g_mat(0, 0) = 1.0;
  const std::vector<double> occ{2.0};
  const auto report =
      calc_energy<double>(h, psi, g_mat, 0.0, occ, grid.dv());

  // Discrete 4th-order kinetic eigenvalue for k = 1 on a 10-point axis.
  const double theta = 2.0 * std::numbers::pi / 10.0;
  const double eig =
      0.5 *
      (5.0 / 2.0 - (8.0 / 3.0) * std::cos(theta) +
       (1.0 / 6.0) * std::cos(2 * theta)) /
      (grid.spacing * grid.spacing);
  EXPECT_NEAR(report.ekin, 2.0 * eig, 1e-9);
  EXPECT_NEAR(report.epot, 0.0, 1e-12);
}

TEST(CalcEnergy, UniformPotentialEnergy) {
  const mesh::grid3d grid = mesh::grid3d::cubic(8, 1.0);
  hamiltonian<double> h(
      grid, mesh::fd_order::second,
      std::vector<double>(static_cast<std::size_t>(grid.size()), -0.7));
  const auto psi = plane_wave_orbital(grid, 0);  // constant, normalized
  matrix<C> g_mat(1, 1);
  g_mat(0, 0) = 1.0;
  const std::vector<double> occ{2.0};
  const auto report =
      calc_energy<double>(h, psi, g_mat, 0.0, occ, grid.dv());
  EXPECT_NEAR(report.ekin, 0.0, 1e-12);
  // <psi|V|psi> = -0.7 for a normalized state; occupation 2.
  EXPECT_NEAR(report.epot, 2.0 * -0.7, 1e-9);
}

TEST(CalcEnergy, UnoccupiedOrbitalsDoNotContribute) {
  const mesh::grid3d grid = mesh::grid3d::cubic(6, 1.0);
  hamiltonian<double> h(
      grid, mesh::fd_order::second,
      std::vector<double>(static_cast<std::size_t>(grid.size()), -0.5));
  xoshiro256 rng(1);
  matrix<C> psi(static_cast<std::size_t>(grid.size()), 3);
  for (std::size_t i = 0; i < psi.size(); ++i) {
    psi.data()[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  qxmd::orthonormalize(psi, grid.dv());
  matrix<C> g_mat(3, 3);
  for (std::size_t i = 0; i < 3; ++i) g_mat(i, i) = 1.0;

  const std::vector<double> occ_none{0.0, 0.0, 0.0};
  const auto none =
      calc_energy<double>(h, psi, g_mat, 0.1, occ_none, grid.dv());
  EXPECT_EQ(none.ekin, 0.0);
  EXPECT_EQ(none.epot, 0.0);
  EXPECT_EQ(none.enl, 0.0);
  EXPECT_EQ(none.eband_rot, 0.0);

  const std::vector<double> occ_one{2.0, 0.0, 0.0};
  const auto one =
      calc_energy<double>(h, psi, g_mat, 0.1, occ_one, grid.dv());
  EXPECT_NE(one.ekin, 0.0);
}

TEST(CalcEnergy, NonlocalEnergyScalesWithLambda) {
  const mesh::grid3d grid = mesh::grid3d::cubic(6, 1.0);
  hamiltonian<double> h(
      grid, mesh::fd_order::second,
      std::vector<double>(static_cast<std::size_t>(grid.size()), 0.0));
  const auto psi = plane_wave_orbital(grid, 1);
  matrix<C> g_mat(1, 1);
  g_mat(0, 0) = 0.8;
  const std::vector<double> occ{1.0};
  const auto e1 = calc_energy<double>(h, psi, g_mat, 0.1, occ, grid.dv());
  const auto e2 = calc_energy<double>(h, psi, g_mat, 0.2, occ, grid.dv());
  EXPECT_GT(e1.enl, 0.0);
  EXPECT_NEAR(e2.enl, 2.0 * e1.enl, 1e-12);
}

TEST(CalcEnergy, EbandSumsComponents) {
  const mesh::grid3d grid = mesh::grid3d::cubic(6, 0.9);
  std::vector<double> v(static_cast<std::size_t>(grid.size()), -0.3);
  hamiltonian<double> h(grid, mesh::fd_order::fourth, std::move(v));
  const auto psi = plane_wave_orbital(grid, 1);
  matrix<C> g_mat(1, 1);
  g_mat(0, 0) = 1.0;
  const std::vector<double> occ{2.0};
  const auto e = calc_energy<double>(h, psi, g_mat, 0.05, occ, grid.dv());
  EXPECT_DOUBLE_EQ(e.eband(), e.ekin + e.epot + e.enl);
}

TEST(CalcEnergy, MakesExactlyThreeBlasCalls) {
  const mesh::grid3d grid = mesh::grid3d::cubic(5, 1.0);
  hamiltonian<float> h(
      grid, mesh::fd_order::second,
      std::vector<double>(static_cast<std::size_t>(grid.size()), -0.1));
  xoshiro256 rng(3);
  matrix<std::complex<float>> psi(static_cast<std::size_t>(grid.size()), 4);
  for (std::size_t i = 0; i < psi.size(); ++i) {
    psi.data()[i] = {static_cast<float>(rng.uniform(-1, 1)),
                     static_cast<float>(rng.uniform(-1, 1))};
  }
  matrix<std::complex<float>> g_mat(4, 4);
  const std::vector<double> occ{2.0, 2.0, 0.0, 0.0};
  blas::clear_call_log();
  (void)calc_energy<float>(h, psi, g_mat, 0.1, occ, grid.dv());
  const auto calls = blas::recent_calls();
  ASSERT_EQ(calls.size(), 3u);
  // Call 4: T = Psi^H (K Psi): (norb, norb, ngrid).
  EXPECT_EQ(calls[0].m, 4);
  EXPECT_EQ(calls[0].n, 4);
  EXPECT_EQ(calls[0].k, grid.size());
  EXPECT_EQ(calls[0].transa, 'C');
  // Calls 5-6: (norb, norb, norb).
  EXPECT_EQ(calls[1].k, 4);
  EXPECT_EQ(calls[2].k, 4);
}

}  // namespace
}  // namespace dcmesh::lfd
