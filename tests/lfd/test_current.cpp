// Tests for the average current density observable.

#include "dcmesh/lfd/current.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace dcmesh::lfd {
namespace {

using C = std::complex<double>;

/// Normalized plane wave along `axis` with wavenumber index k.
matrix<C> plane_wave(const mesh::grid3d& g, int axis, int k) {
  matrix<C> psi(static_cast<std::size_t>(g.size()), 1);
  const double two_pi = 2.0 * std::numbers::pi;
  const double norm = 1.0 / std::sqrt(g.volume());
  for (std::int64_t iz = 0; iz < g.nz; ++iz) {
    for (std::int64_t iy = 0; iy < g.ny; ++iy) {
      for (std::int64_t ix = 0; ix < g.nx; ++ix) {
        const std::int64_t coord = axis == 0 ? ix : axis == 1 ? iy : iz;
        const std::int64_t n = axis == 0 ? g.nx : axis == 1 ? g.ny : g.nz;
        const double phase = two_pi * k * double(coord) / double(n);
        psi(static_cast<std::size_t>(g.index(ix, iy, iz)), 0) =
            C(std::cos(phase) * norm, std::sin(phase) * norm);
      }
    }
  }
  return psi;
}

TEST(Current, RealStateCarriesNoParamagneticCurrent) {
  const mesh::grid3d g = mesh::grid3d::cubic(8, 1.0);
  matrix<C> psi(static_cast<std::size_t>(g.size()), 1);
  for (std::size_t i = 0; i < psi.size(); ++i) {
    psi.data()[i] = 1.0 / std::sqrt(g.volume());
  }
  const std::vector<double> occ{2.0};
  const double j = current_density<double>(g, mesh::fd_order::fourth, 2,
                                           psi, occ, 0.0, g.dv());
  EXPECT_NEAR(j, 0.0, 1e-12);
}

TEST(Current, PlaneWaveCarriesMomentumCurrent) {
  // j = f * k_discrete / V for one e^{ikz} electron (A = 0).
  const mesh::grid3d g = mesh::grid3d::cubic(10, 0.9);
  const auto psi = plane_wave(g, 2, 1);
  const std::vector<double> occ{1.0};
  const double j = current_density<double>(g, mesh::fd_order::fourth, 2,
                                           psi, occ, 0.0, g.dv());
  // 4th-order discrete momentum for theta = 2 pi/10.
  const double theta = 2.0 * std::numbers::pi / 10.0;
  const double k_disc =
      ((4.0 / 3.0) * std::sin(theta) - (1.0 / 6.0) * std::sin(2 * theta)) /
      g.spacing;
  EXPECT_NEAR(j, k_disc / g.volume(), 1e-10);
}

TEST(Current, DiamagneticTermAddsFieldContribution) {
  const mesh::grid3d g = mesh::grid3d::cubic(8, 1.0);
  matrix<C> psi(static_cast<std::size_t>(g.size()), 1);
  for (std::size_t i = 0; i < psi.size(); ++i) {
    psi.data()[i] = 1.0 / std::sqrt(g.volume());
  }
  const std::vector<double> occ{2.0};
  const double a = 0.15;
  const double j = current_density<double>(g, mesh::fd_order::second, 2,
                                           psi, occ, a, g.dv());
  // j = N_el * A / V with N_el = 2.
  EXPECT_NEAR(j, 2.0 * a / g.volume(), 1e-10);
}

TEST(Current, AxisSelection) {
  // A wave along x produces current along x, none along z.
  const mesh::grid3d g = mesh::grid3d::cubic(8, 1.0);
  const auto psi = plane_wave(g, 0, 1);
  const std::vector<double> occ{1.0};
  const double jx = current_density<double>(g, mesh::fd_order::fourth, 0,
                                            psi, occ, 0.0, g.dv());
  const double jz = current_density<double>(g, mesh::fd_order::fourth, 2,
                                            psi, occ, 0.0, g.dv());
  EXPECT_GT(std::abs(jx), 1e-6);
  EXPECT_NEAR(jz, 0.0, 1e-12);
}

TEST(Current, OccupationWeighting) {
  const mesh::grid3d g = mesh::grid3d::cubic(8, 1.0);
  const auto one = plane_wave(g, 2, 1);
  matrix<C> two(static_cast<std::size_t>(g.size()), 2);
  for (std::size_t i = 0; i < one.size(); ++i) {
    two(i, 0) = one.data()[i];
    two(i, 1) = one.data()[i];
  }
  const std::vector<double> occ1{2.0};
  const std::vector<double> occ2{1.0, 1.0};
  const double j1 = current_density<double>(g, mesh::fd_order::fourth, 2,
                                            one, occ1, 0.0, g.dv());
  const double j2 = current_density<double>(g, mesh::fd_order::fourth, 2,
                                            two, occ2, 0.0, g.dv());
  EXPECT_NEAR(j1, j2, 1e-12);
}

}  // namespace
}  // namespace dcmesh::lfd
