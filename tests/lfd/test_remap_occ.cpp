// Tests for remap_occ — the nexc computation and Table VII's GEMM shape.

#include "dcmesh/lfd/remap_occ.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/qxmd/scf.hpp"

namespace dcmesh::lfd {
namespace {

template <typename R>
matrix<std::complex<R>> orthonormal_set(std::size_t ngrid, std::size_t norb,
                                        double dv, unsigned seed) {
  xoshiro256 rng(seed);
  matrix<cdouble> work(ngrid, norb);
  for (std::size_t i = 0; i < work.size(); ++i) {
    work.data()[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  qxmd::orthonormalize(work, dv);
  matrix<std::complex<R>> out(ngrid, norb);
  for (std::size_t i = 0; i < work.size(); ++i) {
    out.data()[i] = {static_cast<R>(work.data()[i].real()),
                     static_cast<R>(work.data()[i].imag())};
  }
  return out;
}

TEST(RemapOcc, GroundStateHasNoExcitation) {
  const double dv = 0.4;
  auto psi0 = orthonormal_set<double>(300, 6, dv, 1);
  // psi == psi0: nothing has left the occupied manifold.
  matrix<cdouble> psi(300, 6);
  for (std::size_t i = 0; i < psi.size(); ++i) psi.data()[i] = psi0.data()[i];
  const std::vector<double> occ{2, 2, 2, 0, 0, 0};
  const auto report = remap_occ<double>(psi0, psi, occ, 3, dv);
  EXPECT_NEAR(report.nexc, 0.0, 1e-20);
  EXPECT_NEAR(report.nexc_second_order, 0.0, 1e-20);
  for (double p : report.unocc_population) EXPECT_NEAR(p, 0.0, 1e-20);
}

TEST(RemapOcc, FullPromotionCountsWholeOccupation) {
  // Swap an occupied orbital with an unoccupied reference orbital: the
  // whole occupation (f = 2) shows up as excited.
  const double dv = 1.0;
  auto psi0 = orthonormal_set<double>(200, 4, dv, 2);
  matrix<cdouble> psi(200, 4);
  for (std::size_t i = 0; i < psi.size(); ++i) psi.data()[i] = psi0.data()[i];
  // Propagated occupied orbital 0 becomes reference unoccupied orbital 2.
  for (std::size_t i = 0; i < 200; ++i) psi(i, 0) = psi0(i, 2);
  const std::vector<double> occ{2, 2, 0, 0};
  const auto report = remap_occ<double>(psi0, psi, occ, 2, dv);
  EXPECT_NEAR(report.nexc, 2.0, 1e-9);
  // Population landed on unoccupied reference orbital index 0 (= orb 2).
  ASSERT_EQ(report.unocc_population.size(), 2u);
  EXPECT_NEAR(report.unocc_population[0], 2.0, 1e-9);
  EXPECT_NEAR(report.unocc_population[1], 0.0, 1e-9);
  // For a complete promotion the second-order moment equals the first.
  EXPECT_NEAR(report.nexc_second_order, 2.0, 1e-9);
}

TEST(RemapOcc, PartialMixing) {
  // Mix occupied orbital 0 with unoccupied reference orbital 2 by angle
  // theta: leaked population is f * sin^2(theta).
  const double dv = 1.0;
  const double theta = 0.3;
  auto psi0 = orthonormal_set<double>(150, 4, dv, 3);
  matrix<cdouble> psi(150, 4);
  for (std::size_t i = 0; i < psi.size(); ++i) psi.data()[i] = psi0.data()[i];
  for (std::size_t i = 0; i < 150; ++i) {
    psi(i, 0) = std::cos(theta) * psi0(i, 0) + std::sin(theta) * psi0(i, 2);
  }
  const std::vector<double> occ{2, 2, 0, 0};
  const auto report = remap_occ<double>(psi0, psi, occ, 2, dv);
  const double expected = 2.0 * std::sin(theta) * std::sin(theta);
  EXPECT_NEAR(report.nexc, expected, 1e-9);
  // Second order ~ nexc^2 / f for a single leak channel — strictly less
  // than the first-order count for partial mixing.
  EXPECT_LT(report.nexc_second_order, report.nexc);
  EXPECT_NEAR(report.nexc_second_order, expected * expected / 2.0, 1e-9);
}

TEST(RemapOcc, PopulationsSumToNexc) {
  const double dv = 0.7;
  auto psi0 = orthonormal_set<double>(250, 6, dv, 4);
  auto psi = orthonormal_set<double>(250, 6, dv, 5);  // unrelated state
  const std::vector<double> occ{2, 2, 2, 0, 0, 0};
  const auto report = remap_occ<double>(psi0, psi, occ, 3, dv);
  double sum = 0.0;
  for (double p : report.unocc_population) sum += p;
  EXPECT_NEAR(sum, report.nexc, 1e-9);
  EXPECT_GT(report.nexc, 0.0);
  // nexc can never exceed the total occupied population.
  EXPECT_LE(report.nexc, 6.0 + 1e-9);
}

TEST(RemapOcc, Table7GemmShape) {
  // The central GEMM must be (m, n, k) = (nocc, norb - nocc, ngrid) —
  // Table VII's documented shape.
  const double dv = 1.0;
  const std::size_t ngrid = 128, norb = 10, nocc = 4;
  auto psi0 = orthonormal_set<float>(ngrid, norb, dv, 6);
  auto psi = orthonormal_set<float>(ngrid, norb, dv, 7);
  const std::vector<double> occ(norb, 1.0);
  blas::clear_call_log();
  (void)remap_occ<float>(psi0, psi, occ, nocc, dv);
  const auto calls = blas::recent_calls();
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[0].m, static_cast<blas::blas_int>(nocc));
  EXPECT_EQ(calls[0].n, static_cast<blas::blas_int>(norb - nocc));
  EXPECT_EQ(calls[0].k, static_cast<blas::blas_int>(ngrid));
  // Call 8: (nocc, nocc, unocc); call 9: (unocc, nocc, nocc).
  EXPECT_EQ(calls[1].m, static_cast<blas::blas_int>(nocc));
  EXPECT_EQ(calls[1].k, static_cast<blas::blas_int>(norb - nocc));
  EXPECT_EQ(calls[2].m, static_cast<blas::blas_int>(norb - nocc));
  EXPECT_EQ(calls[2].k, static_cast<blas::blas_int>(nocc));
}

TEST(RemapOcc, InvalidOccupationCountThrows) {
  const double dv = 1.0;
  auto psi0 = orthonormal_set<double>(50, 4, dv, 8);
  auto psi = orthonormal_set<double>(50, 4, dv, 9);
  const std::vector<double> occ(4, 1.0);
  EXPECT_THROW((void)remap_occ<double>(psi0, psi, occ, 0, dv),
               std::invalid_argument);
  EXPECT_THROW((void)remap_occ<double>(psi0, psi, occ, 4, dv),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcmesh::lfd
