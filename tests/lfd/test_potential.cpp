// Tests for the local model pseudopotential on the mesh.

#include "dcmesh/lfd/potential.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "dcmesh/qxmd/supercell.hpp"

namespace dcmesh::lfd {
namespace {

TEST(Potential, AttractiveEverywhere) {
  const auto atoms = qxmd::build_pto_supercell(1, 8.0, 0.0);
  const mesh::grid3d grid = mesh::grid3d::cubic(8, 1.0);
  const auto v = build_local_potential(grid, atoms);
  ASSERT_EQ(v.size(), 512u);
  for (double x : v) EXPECT_LE(x, 0.0);
  EXPECT_LT(*std::min_element(v.begin(), v.end()), -0.1);
}

TEST(Potential, DeepestNearNuclei) {
  qxmd::atom_system atoms;
  atoms.box = {8.0, 8.0, 8.0};
  qxmd::atom a;
  a.kind = qxmd::species::o;
  a.position = {4.0, 4.0, 4.0};
  atoms.atoms.push_back(a);
  const mesh::grid3d grid = mesh::grid3d::cubic(8, 1.0);
  const auto v = build_local_potential(grid, atoms);
  // Minimum at the grid point on top of the atom.
  const auto min_it = std::min_element(v.begin(), v.end());
  const std::size_t min_idx =
      static_cast<std::size_t>(std::distance(v.begin(), min_it));
  EXPECT_EQ(min_idx, static_cast<std::size_t>(grid.index(4, 4, 4)));
}

TEST(Potential, PeriodicImages) {
  // An atom at the box corner produces the same well at all 8 corners of
  // the mesh (periodicity through min-image distance).
  qxmd::atom_system atoms;
  atoms.box = {6.0, 6.0, 6.0};
  qxmd::atom a;
  a.kind = qxmd::species::ti;
  a.position = {0.0, 0.0, 0.0};
  atoms.atoms.push_back(a);
  const mesh::grid3d grid = mesh::grid3d::cubic(6, 1.0);
  const auto v = build_local_potential(grid, atoms);
  const double corner = v[static_cast<std::size_t>(grid.index(0, 0, 0))];
  // Point at (5,0,0) is distance 1 through the boundary, same as (1,0,0).
  EXPECT_NEAR(v[static_cast<std::size_t>(grid.index(5, 0, 0))],
              v[static_cast<std::size_t>(grid.index(1, 0, 0))], 1e-12);
  EXPECT_LT(corner, v[static_cast<std::size_t>(grid.index(3, 3, 3))]);
}

TEST(Potential, DepthScaleLinear) {
  const auto atoms = qxmd::build_pto_supercell(1, 8.0, 0.0);
  const mesh::grid3d grid = mesh::grid3d::cubic(8, 1.0);
  const auto v1 = build_local_potential(grid, atoms, 0.1);
  const auto v2 = build_local_potential(grid, atoms, 0.2);
  for (std::size_t i = 0; i < v1.size(); ++i) {
    ASSERT_NEAR(v2[i], 2.0 * v1[i], 1e-12);
  }
}

TEST(Potential, DeeperForMoreValentSpecies) {
  // O (valence 6) digs a deeper well than Pb (valence 4) at equal widths?
  // Widths differ, so compare the total integrated depth instead: more
  // atoms -> more negative integral.
  const mesh::grid3d grid = mesh::grid3d::cubic(8, 1.0);
  const auto one = qxmd::build_pto_supercell(1, 8.0, 0.0);
  qxmd::atom_system empty;
  empty.box = one.box;
  const auto v_full = build_local_potential(grid, one);
  const auto v_empty = build_local_potential(grid, empty);
  double sum_full = 0.0, sum_empty = 0.0;
  for (double x : v_full) sum_full += x;
  for (double x : v_empty) sum_empty += x;
  EXPECT_EQ(sum_empty, 0.0);
  EXPECT_LT(sum_full, -1.0);
}

}  // namespace
}  // namespace dcmesh::lfd
