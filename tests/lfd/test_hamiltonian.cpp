// Tests for the LFD single-particle Hamiltonian.

#include "dcmesh/lfd/hamiltonian.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dcmesh/common/rng.hpp"

namespace dcmesh::lfd {
namespace {

using C = std::complex<double>;

matrix<C> random_state(std::size_t ngrid, std::size_t norb, unsigned seed) {
  xoshiro256 rng(seed);
  matrix<C> m(ngrid, norb);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  return m;
}

hamiltonian<double> make_h(const mesh::grid3d& grid, double a_field = 0.0) {
  std::vector<double> v(static_cast<std::size_t>(grid.size()));
  xoshiro256 rng(77);
  for (auto& x : v) x = rng.uniform(-0.5, 0.0);
  hamiltonian<double> h(grid, mesh::fd_order::fourth, std::move(v));
  h.set_field(a_field);
  return h;
}

TEST(Hamiltonian, IsHermitianWithField) {
  // <a|H b> == conj(<b|H a>) for arbitrary states, including the laser
  // coupling -iA d/dz (anti-Hermitian derivative times -i is Hermitian).
  const mesh::grid3d grid = mesh::grid3d::cubic(6, 0.9);
  auto h = make_h(grid, 0.37);
  const std::size_t n = static_cast<std::size_t>(grid.size());
  const auto a = random_state(n, 1, 1);
  const auto b = random_state(n, 1, 2);
  matrix<C> ha(n, 1), hb(n, 1);
  h.apply(a.view(), ha.view());
  h.apply(b.view(), hb.view());
  C a_hb{}, b_ha{};
  for (std::size_t i = 0; i < n; ++i) {
    a_hb += std::conj(a.data()[i]) * hb.data()[i];
    b_ha += std::conj(b.data()[i]) * ha.data()[i];
  }
  EXPECT_NEAR(std::abs(a_hb - std::conj(b_ha)), 0.0, 1e-10);
}

TEST(Hamiltonian, KineticOnlyOmitsPotentialAndField) {
  const mesh::grid3d grid = mesh::grid3d::cubic(6, 1.0);
  auto h = make_h(grid, 0.5);
  const std::size_t n = static_cast<std::size_t>(grid.size());
  // Constant state: kinetic part is exactly zero; full H gives (V + A^2/2).
  matrix<C> psi(n, 1), out(n, 1);
  for (std::size_t i = 0; i < n; ++i) psi.data()[i] = 1.0;
  h.apply_kinetic(psi.view(), out.view());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(std::abs(out.data()[i]), 0.0, 1e-12);
  }
  h.apply(psi.view(), out.view());
  const std::span<const double> v = h.potential();
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(out.data()[i].real(), v[i] + 0.5 * 0.5 * 0.5, 1e-12);
    ASSERT_NEAR(out.data()[i].imag(), 0.0, 1e-12);
  }
}

TEST(Hamiltonian, FieldFreeMatchesKineticPlusPotential) {
  const mesh::grid3d grid = mesh::grid3d::cubic(5, 0.8);
  auto h = make_h(grid, 0.0);
  const std::size_t n = static_cast<std::size_t>(grid.size());
  const auto psi = random_state(n, 2, 3);
  matrix<C> full(n, 2), kin(n, 2);
  h.apply(psi.view(), full.view());
  h.apply_kinetic(psi.view(), kin.view());
  const std::span<const double> v = h.potential();
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const C expected = kin(i, j) + v[i] * psi(i, j);
      ASSERT_NEAR(std::abs(full(i, j) - expected), 0.0, 1e-12);
    }
  }
}

TEST(Hamiltonian, SpectralBoundDominatesRayleighQuotients) {
  const mesh::grid3d grid = mesh::grid3d::cubic(6, 0.7);
  auto h = make_h(grid, 0.2);
  const double bound = h.spectral_bound();
  const std::size_t n = static_cast<std::size_t>(grid.size());
  for (unsigned seed = 0; seed < 5; ++seed) {
    auto psi = random_state(n, 1, seed + 10);
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) norm += std::norm(psi.data()[i]);
    matrix<C> out(n, 1);
    h.apply(psi.view(), out.view());
    C rq{};
    for (std::size_t i = 0; i < n; ++i) {
      rq += std::conj(psi.data()[i]) * out.data()[i];
    }
    EXPECT_LE(std::abs(rq) / norm, bound);
  }
}

TEST(Hamiltonian, InvalidConstructionThrows) {
  const mesh::grid3d grid = mesh::grid3d::cubic(4, 1.0);
  EXPECT_THROW(hamiltonian<double>(grid, mesh::fd_order::second,
                                   std::vector<double>(7)),  // wrong size
               std::invalid_argument);
  EXPECT_THROW(
      hamiltonian<double>(grid, mesh::fd_order::second,
                          std::vector<double>(64), /*axis=*/3),
      std::invalid_argument);
}

TEST(Hamiltonian, SetPotentialValidatesAndUpdates) {
  const mesh::grid3d grid = mesh::grid3d::cubic(4, 1.0);
  hamiltonian<double> h(grid, mesh::fd_order::second,
                        std::vector<double>(64, -1.0));
  EXPECT_THROW(h.set_potential(std::vector<double>(63)),
               std::invalid_argument);
  h.set_potential(std::vector<double>(64, -2.0));
  EXPECT_EQ(h.potential()[0], -2.0);
}

}  // namespace
}  // namespace dcmesh::lfd
