// Tests for the nonlocal propagation correction (paper Eq. (1)).

#include "dcmesh/lfd/nlp_prop.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/qxmd/scf.hpp"

namespace dcmesh::lfd {
namespace {

template <typename R>
matrix<std::complex<R>> orthonormal_set(std::size_t ngrid, std::size_t norb,
                                        double dv, unsigned seed) {
  xoshiro256 rng(seed);
  matrix<cdouble> work(ngrid, norb);
  for (std::size_t i = 0; i < work.size(); ++i) {
    work.data()[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  qxmd::orthonormalize(work, dv);
  matrix<std::complex<R>> out(ngrid, norb);
  for (std::size_t i = 0; i < work.size(); ++i) {
    out.data()[i] = {static_cast<R>(work.data()[i].real()),
                     static_cast<R>(work.data()[i].imag())};
  }
  return out;
}

TEST(NlpProp, OverlapIsIdentityAtTimeZero) {
  const double dv = 0.3;
  auto psi0 = orthonormal_set<float>(400, 6, dv, 1);
  auto psi = matrix<std::complex<float>>(400, 6);
  for (std::size_t i = 0; i < psi.size(); ++i) {
    psi.data()[i] = psi0.data()[i];
  }
  const auto result =
      nlp_prop<float>(psi0, psi, std::complex<double>(0, 0), dv);
  // G = dv Psi0^H Psi0 ~ identity.
  for (std::size_t j = 0; j < 6; ++j) {
    for (std::size_t i = 0; i < 6; ++i) {
      const double expected = i == j ? 1.0 : 0.0;
      EXPECT_NEAR(std::abs(result.g(i, j)), expected, 1e-4);
    }
    EXPECT_NEAR(result.subspace_weight[j], 1.0, 1e-3);
  }
  EXPECT_LT(result.norm_drift, 1e-4);
}

TEST(NlpProp, ZeroCoefficientLeavesStateUnchangedUpToRenorm) {
  const double dv = 0.5;
  auto psi0 = orthonormal_set<float>(300, 4, dv, 2);
  auto psi = orthonormal_set<float>(300, 4, dv, 3);
  matrix<std::complex<float>> before(300, 4);
  for (std::size_t i = 0; i < psi.size(); ++i) before.data()[i] = psi.data()[i];
  (void)nlp_prop<float>(psi0, psi, std::complex<double>(0, 0), dv);
  for (std::size_t i = 0; i < psi.size(); ++i) {
    ASSERT_NEAR(std::abs(psi.data()[i] - before.data()[i]), 0.0, 1e-5);
  }
}

TEST(NlpProp, CorrectionKeepsColumnsNormalized) {
  const double dv = 0.25;
  auto psi0 = orthonormal_set<float>(500, 5, dv, 4);
  auto psi = orthonormal_set<float>(500, 5, dv, 5);
  (void)nlp_prop<float>(psi0, psi, std::complex<double>(0, -0.01), dv);
  for (std::size_t j = 0; j < 5; ++j) {
    double norm2 = 0.0;
    for (std::size_t i = 0; i < 500; ++i) norm2 += std::norm(psi(i, j));
    EXPECT_NEAR(norm2 * dv, 1.0, 1e-5) << j;
  }
}

TEST(NlpProp, ProjectsTowardInitialSubspace) {
  // Repeated application of the correction with -i dt v_nl rotates phase
  // within the initial subspace; a state orthogonal to Psi0 is untouched.
  const double dv = 1.0;
  const std::size_t ngrid = 64;
  auto both = orthonormal_set<double>(ngrid, 4, dv, 6);
  // psi0 = first 2 columns; psi = last 2 columns (orthogonal to psi0).
  matrix<cdouble> psi0(ngrid, 2), psi(ngrid, 2);
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t i = 0; i < ngrid; ++i) {
      psi0(i, j) = both(i, j);
      psi(i, j) = both(i, j + 2);
    }
  }
  matrix<cdouble> before(ngrid, 2);
  for (std::size_t i = 0; i < psi.size(); ++i) before.data()[i] = psi.data()[i];
  const auto result =
      nlp_prop<double>(psi0, psi, std::complex<double>(0, -0.05), dv);
  // G ~ 0, so psi unchanged and subspace weight ~ 0.
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_NEAR(result.subspace_weight[j], 0.0, 1e-10);
  }
  for (std::size_t i = 0; i < psi.size(); ++i) {
    ASSERT_NEAR(std::abs(psi.data()[i] - before.data()[i]), 0.0, 1e-10);
  }
}

TEST(NlpProp, MakesExactlyThreeBlasCalls) {
  const double dv = 1.0;
  auto psi0 = orthonormal_set<float>(100, 3, dv, 7);
  auto psi = orthonormal_set<float>(100, 3, dv, 8);
  blas::clear_call_log();
  (void)nlp_prop<float>(psi0, psi, std::complex<double>(0, -0.02), dv);
  const auto calls = blas::recent_calls();
  ASSERT_EQ(calls.size(), 3u);
  // Call 1: (norb, norb, ngrid); call 2: (ngrid, norb, norb);
  // call 3: (norb, norb, norb).
  EXPECT_EQ(calls[0].m, 3);
  EXPECT_EQ(calls[0].k, 100);
  EXPECT_EQ(calls[1].m, 100);
  EXPECT_EQ(calls[1].k, 3);
  EXPECT_EQ(calls[2].m, 3);
  EXPECT_EQ(calls[2].k, 3);
}

TEST(NlpProp, DoublePrecisionUsesZgemm) {
  const double dv = 1.0;
  auto psi0 = orthonormal_set<double>(50, 2, dv, 9);
  auto psi = orthonormal_set<double>(50, 2, dv, 10);
  blas::clear_call_log();
  (void)nlp_prop<double>(psi0, psi, std::complex<double>(0, -0.02), dv);
  for (const auto& call : blas::recent_calls()) {
    EXPECT_EQ(call.routine, "ZGEMM");
  }
}

}  // namespace
}  // namespace dcmesh::lfd
