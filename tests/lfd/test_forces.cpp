// Tests for the Ehrenfest (Hellmann-Feynman) forces.

#include "dcmesh/lfd/forces.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dcmesh/common/rng.hpp"
#include "dcmesh/lfd/init.hpp"
#include "dcmesh/qxmd/scf.hpp"
#include "dcmesh/qxmd/supercell.hpp"

namespace dcmesh::lfd {
namespace {

TEST(Density, IntegratesToElectronCount) {
  const auto atoms = qxmd::build_pto_supercell(1, 7.37, 0.05, 3);
  const mesh::grid3d grid = mesh::grid3d::cubic(8, 7.37 / 8.0);
  const auto init = initialize_ground_state(grid, atoms, 8, 3,
                                            mesh::fd_order::fourth);
  const auto rho = electron_density(init.psi, init.occupations);
  // 3 occupied orbitals at f = 2 -> 6 electrons.
  EXPECT_NEAR(integrate_density(grid, rho), 6.0, 1e-8);
  for (double v : rho) EXPECT_GE(v, 0.0);
}

TEST(Density, OccupationMismatchThrows) {
  matrix<std::complex<float>> psi(8, 2);
  const std::vector<double> wrong(3, 1.0);
  EXPECT_THROW((void)electron_density(psi, wrong), std::invalid_argument);
}

TEST(Forces, UniformDensityExertsOnlyHalfBoxArtifact) {
  // A constant density is symmetric around the well except for the one
  // min-image artifact of an even grid: the -L/2 point has no +L/2
  // partner.  The residual force must be (a) tiny relative to the well
  // depth scale, (b) identical on all three axes by symmetry, and
  // (c) suppressed exponentially when the box grows (the artifact sits a
  // half-box away from the atom).
  const auto make = [](double box_edge, std::int64_t n) {
    qxmd::atom_system atoms;
    atoms.box = {box_edge, box_edge, box_edge};
    qxmd::atom a;
    a.kind = qxmd::species::ti;
    a.position = {box_edge / 2, box_edge / 2, box_edge / 2};
    atoms.atoms.push_back(a);
    const mesh::grid3d grid = mesh::grid3d::cubic(n, box_edge / n);
    const std::vector<double> rho(static_cast<std::size_t>(grid.size()),
                                  0.5);
    return ehrenfest_forces(grid, atoms, rho)[0];
  };
  const auto small = make(8.0, 8);
  EXPECT_LT(std::abs(small[0]), 0.05);
  EXPECT_NEAR(small[0], small[1], 1e-9);
  EXPECT_NEAR(small[1], small[2], 1e-9);
  const auto large = make(16.0, 16);
  EXPECT_LT(std::abs(large[0]), 1e-8);  // artifact decays exponentially
}

TEST(Forces, OffCentreDensityPullsIonTowardIt) {
  // Put all the density at a single point +x of the atom: the attractive
  // well means the ion is pulled toward the density (+x force).
  qxmd::atom_system atoms;
  atoms.box = {10.0, 10.0, 10.0};
  qxmd::atom a;
  a.kind = qxmd::species::o;
  a.position = {4.0, 5.0, 5.0};
  atoms.atoms.push_back(a);
  const mesh::grid3d grid = mesh::grid3d::cubic(10, 1.0);
  std::vector<double> rho(static_cast<std::size_t>(grid.size()), 0.0);
  rho[static_cast<std::size_t>(grid.index(6, 5, 5))] = 1.0;  // +2 Bohr in x
  const auto forces = ehrenfest_forces(grid, atoms, rho);
  EXPECT_GT(forces[0][0], 0.0);
  EXPECT_NEAR(forces[0][1], 0.0, 1e-12);
  EXPECT_NEAR(forces[0][2], 0.0, 1e-12);
}

TEST(Forces, MatchesNegativeEnergyGradient) {
  // F_a must equal -d/dR_a of the electron-ion energy (Hellmann-Feynman
  // is exact for this fixed-density functional form).
  const auto atoms0 = qxmd::build_pto_supercell(1, 8.0, 0.1, 9);
  const mesh::grid3d grid = mesh::grid3d::cubic(10, 0.8);
  xoshiro256 rng(4);
  std::vector<double> rho(static_cast<std::size_t>(grid.size()));
  for (auto& v : rho) v = rng.uniform(0.0, 1.0);

  const auto forces = ehrenfest_forces(grid, atoms0, rho);
  const double h = 1e-5;
  for (std::size_t a = 0; a < 2; ++a) {  // first two atoms suffice
    for (int axis = 0; axis < 3; ++axis) {
      auto plus = atoms0;
      plus.atoms[a].position[static_cast<std::size_t>(axis)] += h;
      auto minus = atoms0;
      minus.atoms[a].position[static_cast<std::size_t>(axis)] -= h;
      const double numeric = -(electron_ion_energy(grid, plus, rho) -
                               electron_ion_energy(grid, minus, rho)) /
                             (2 * h);
      EXPECT_NEAR(forces[a][static_cast<std::size_t>(axis)], numeric,
                  1e-6 + 1e-4 * std::abs(numeric))
          << "atom " << a << " axis " << axis;
    }
  }
}

TEST(Forces, PeriodicImagesRespected) {
  // Density just across the boundary pulls through the boundary, not the
  // long way around.
  qxmd::atom_system atoms;
  atoms.box = {10.0, 10.0, 10.0};
  qxmd::atom a;
  a.kind = qxmd::species::pb;
  a.position = {0.5, 5.0, 5.0};
  atoms.atoms.push_back(a);
  const mesh::grid3d grid = mesh::grid3d::cubic(10, 1.0);
  std::vector<double> rho(static_cast<std::size_t>(grid.size()), 0.0);
  rho[static_cast<std::size_t>(grid.index(9, 5, 5))] = 1.0;  // -1.5 via PBC
  const auto forces = ehrenfest_forces(grid, atoms, rho);
  EXPECT_LT(forces[0][0], 0.0);  // pulled in -x through the boundary
}

TEST(Forces, SizeValidation) {
  const auto atoms = qxmd::build_pto_supercell(1, 8.0, 0.0);
  const mesh::grid3d grid = mesh::grid3d::cubic(8, 1.0);
  const std::vector<double> wrong(10, 0.0);
  EXPECT_THROW((void)ehrenfest_forces(grid, atoms, wrong),
               std::invalid_argument);
  EXPECT_THROW((void)electron_ion_energy(grid, atoms, wrong),
               std::invalid_argument);
}

}  // namespace
}  // namespace dcmesh::lfd
