// Tests for the dipole observable and the delta-kick protocol.

#include "dcmesh/lfd/observables.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dcmesh/lfd/engine.hpp"
#include "dcmesh/lfd/forces.hpp"
#include "dcmesh/lfd/init.hpp"
#include "dcmesh/lfd/potential.hpp"
#include "dcmesh/qxmd/supercell.hpp"

namespace dcmesh::lfd {
namespace {

TEST(Dipole, UniformDensityHasZeroDipole) {
  const mesh::grid3d grid = mesh::grid3d::cubic(8, 1.0);
  matrix<cdouble> psi(static_cast<std::size_t>(grid.size()), 1);
  const double norm = 1.0 / std::sqrt(grid.volume());
  for (std::size_t i = 0; i < psi.size(); ++i) psi.data()[i] = norm;
  const std::vector<double> occ{2.0};
  for (int axis = 0; axis < 3; ++axis) {
    EXPECT_NEAR(dipole_moment<double>(grid, axis, psi, occ, grid.dv()), 0.0,
                1e-9)
        << axis;
  }
}

TEST(Dipole, DisplacedDensityHasExpectedSign) {
  const mesh::grid3d grid = mesh::grid3d::cubic(10, 1.0);
  matrix<cdouble> psi(static_cast<std::size_t>(grid.size()), 1);
  // All weight at z index 7: coordinate 7 - 4.5 = +2.5 from the mesh mean.
  psi(static_cast<std::size_t>(grid.index(5, 5, 7)), 0) = 1.0;
  const std::vector<double> occ{1.0};
  const double dz = dipole_moment<double>(grid, 2, psi, occ, grid.dv());
  EXPECT_NEAR(dz, 2.5 * grid.dv(), 1e-12);
  // x index 5 sits at 5 - 4.5 = +0.5 from the mesh mean.
  EXPECT_NEAR(dipole_moment<double>(grid, 0, psi, occ, grid.dv()),
              0.5 * grid.dv(), 1e-12);
}

TEST(Dipole, ValidationThrows) {
  const mesh::grid3d grid = mesh::grid3d::cubic(4, 1.0);
  matrix<cdouble> psi(64, 2);
  const std::vector<double> occ{1.0, 1.0};
  EXPECT_THROW((void)dipole_moment<double>(grid, 3, psi, occ, 1.0),
               std::invalid_argument);
  const std::vector<double> wrong{1.0};
  EXPECT_THROW((void)dipole_moment<double>(grid, 0, psi, wrong, 1.0),
               std::invalid_argument);
}

struct kick_setup {
  mesh::grid3d grid;
  qxmd::atom_system atoms;
  init_result init;
  lfd_options options;
};

kick_setup make_kick_setup() {
  kick_setup s{mesh::grid3d::cubic(8, 7.37 / 8.0),
               qxmd::build_pto_supercell(1, 7.37, 0.05, 3),
               {},
               {}};
  s.init = initialize_ground_state(s.grid, s.atoms, 8, 3,
                                   mesh::fd_order::fourth, 11);
  s.options.dt = 0.02;
  s.options.v_nl = 0.05;
  s.options.pulse.e0 = 0.0;  // field-free: the kick supplies the impulse
  return s;
}

TEST(DeltaKick, PreservesNormAndDensity) {
  auto s = make_kick_setup();
  lfd_engine<double> engine(s.grid, s.options, s.init.psi,
                            s.init.occupations, 3,
                            build_local_potential(s.grid, s.atoms));
  const auto rho_before =
      electron_density(engine.psi(), engine.occupations());
  engine.apply_delta_kick(0.3);
  const auto rho_after =
      electron_density(engine.psi(), engine.occupations());
  for (std::size_t i = 0; i < rho_before.size(); ++i) {
    ASSERT_NEAR(rho_before[i], rho_after[i], 1e-12);  // pure phase
  }
}

TEST(DeltaKick, InducesCurrentAndDipoleResponse) {
  auto s = make_kick_setup();
  lfd_engine<double> engine(s.grid, s.options, s.init.psi,
                            s.init.occupations, 3,
                            build_local_potential(s.grid, s.atoms));
  engine.apply_delta_kick(0.2);
  // The kick gives every electron momentum ~kappa: the very next steps
  // must carry a finite current along the kick axis.
  double max_current = 0.0, max_dipole_change = 0.0;
  const double d0 = dipole_moment<double>(s.grid, 2, engine.psi(),
                                          engine.occupations(), s.grid.dv());
  for (int i = 0; i < 20; ++i) {
    const auto rec = engine.qd_step();
    max_current = std::max(max_current, std::abs(rec.javg));
    const double d = dipole_moment<double>(
        s.grid, 2, engine.psi(), engine.occupations(), s.grid.dv());
    max_dipole_change = std::max(max_dipole_change, std::abs(d - d0));
  }
  EXPECT_GT(max_current, 1e-4);        // ~ kappa * n_el / V scale
  EXPECT_GT(max_dipole_change, 1e-4);  // the charge actually sloshes
}

TEST(DeltaKick, ZeroKickIsIdentity) {
  auto s = make_kick_setup();
  lfd_engine<float> engine(s.grid, s.options, s.init.psi,
                           s.init.occupations, 3,
                           build_local_potential(s.grid, s.atoms));
  const auto before = engine.psi().data()[42];
  engine.apply_delta_kick(0.0);
  EXPECT_EQ(engine.psi().data()[42], before);
}

}  // namespace
}  // namespace dcmesh::lfd
