// Checkpoint robustness across every compute mode: a round-trip must
// continue bit-identically under FP32/BF16/BF16X2/BF16X3/TF32, and a
// corrupted or truncated checkpoint must be rejected with a clear error
// (v2 format: FNV-1a checksum over the payload).

#include "dcmesh/core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/blas/precision_policy.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/core/presets.hpp"

namespace dcmesh::core {
namespace {

run_config small_config() {
  run_config config = preset(paper_system::tiny);
  config.qd_steps_per_series = 4;
  config.series = 2;
  return config;
}

class CheckpointModesTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    env_unset(blas::kPolicyEnvVar);
    env_unset("MKL_BLAS_COMPUTE_MODE");
    blas::clear_compute_mode();
    blas::clear_policy();
  }
};

TEST_F(CheckpointModesTest, RoundTripIsBitExactUnderEveryComputeMode) {
  const blas::compute_mode modes[] = {
      blas::compute_mode::standard,
      blas::compute_mode::float_to_bf16,
      blas::compute_mode::float_to_bf16x2,
      blas::compute_mode::float_to_bf16x3,
      blas::compute_mode::float_to_tf32,
  };
  for (const blas::compute_mode mode : modes) {
    SCOPED_TRACE(std::string(blas::info(mode).env_token));
    blas::set_compute_mode(mode);

    driver reference(small_config());
    reference.run_series();
    std::stringstream stream;
    save_checkpoint(reference, stream);
    reference.run_series();
    const auto expected = reference.records();
    ASSERT_EQ(expected.size(), 8u);

    driver restored = load_checkpoint(stream);
    restored.run_series();
    const auto& tail = restored.records();
    ASSERT_EQ(tail.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      // Bit-exact continuation: same mode, same arithmetic, same state.
      ASSERT_EQ(tail[i].t, expected[4 + i].t) << i;
      ASSERT_EQ(tail[i].ekin, expected[4 + i].ekin) << i;
      ASSERT_EQ(tail[i].nexc, expected[4 + i].nexc) << i;
      ASSERT_EQ(tail[i].javg, expected[4 + i].javg) << i;
    }
    blas::clear_compute_mode();
  }
}

TEST_F(CheckpointModesTest, EveryBitFlipIsRejected) {
  driver sim(small_config());
  sim.run_series();
  std::ostringstream os(std::ios::binary);
  save_checkpoint(sim, os);
  const std::string good = std::move(os).str();

  // Sanity: the unmutated blob restores.
  {
    std::istringstream is(good, std::ios::binary);
    EXPECT_NO_THROW((void)load_checkpoint(is));
  }

  // ~50 seeded single-bit mutations spread over the whole file — header,
  // checksum, deck, atoms, wave function — every one must be rejected.
  xoshiro256 rng(0xC0FFEEull);
  for (int trial = 0; trial < 50; ++trial) {
    std::string bad = good;
    const std::size_t byte = rng() % bad.size();
    const unsigned bit = static_cast<unsigned>(rng() % 8);
    bad[byte] = static_cast<char>(static_cast<unsigned char>(bad[byte]) ^
                                  (1u << bit));
    std::istringstream is(bad, std::ios::binary);
    EXPECT_THROW((void)load_checkpoint(is), std::runtime_error)
        << "flip of bit " << bit << " at byte " << byte
        << " was not detected";
  }
}

TEST_F(CheckpointModesTest, TruncatedFileIsRejected) {
  const std::string path =
      testing::TempDir() + "dcmesh_ckpt_truncated.bin";
  driver sim(small_config());
  sim.run_series();
  save_checkpoint_file(sim, path);

  // The full file restores (and the atomic writer left no temp litter).
  EXPECT_NO_THROW((void)load_checkpoint_file(path));

  std::ifstream is(path, std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  is.close();
  for (const double fraction : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(full.size()) * fraction);
    {
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      os.write(full.data(), static_cast<std::streamsize>(keep));
    }
    EXPECT_THROW((void)load_checkpoint_file(path), std::runtime_error)
        << "truncation to " << keep << " bytes was not detected";
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointModesTest, RestoreInPlaceRequiresMatchingConfig) {
  driver sim(small_config());
  sim.run_series();
  std::ostringstream os(std::ios::binary);
  save_checkpoint(sim, os);
  const std::string blob = std::move(os).str();

  // Same config: in-place restore succeeds and rewinds the state.
  {
    driver other(small_config());
    std::istringstream is(blob, std::ios::binary);
    EXPECT_NO_THROW(restore_checkpoint(other, is));
    EXPECT_DOUBLE_EQ(other.time(), sim.time());
  }
  // Different config: rejected (rollback must never mix decks).
  {
    run_config different = small_config();
    different.qd_steps_per_series = 3;
    driver other(std::move(different));
    std::istringstream is(blob, std::ios::binary);
    EXPECT_THROW(restore_checkpoint(other, is), std::runtime_error);
  }
}

}  // namespace
}  // namespace dcmesh::core
