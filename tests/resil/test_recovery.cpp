// End-to-end resilience: a BF16 LFD trajectory survives injected faults.
//
//  * A NaN injected into a mid-trajectory GEMM is caught by the per-call
//    finite scan and transparently re-run one mantissa-ladder step up;
//    the run completes with observables matching the fault-free BF16 run.
//  * A finite-but-blown scale fault passes the per-call scan, trips the
//    step-level invariants, and is repaired by checkpoint-ring rollback +
//    replay with the LFD sites' precision promoted — and the promotion
//    expires again afterwards (automatic re-escalation).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/blas/precision_policy.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/core/driver.hpp"
#include "dcmesh/core/presets.hpp"
#include "dcmesh/resil/fault_plan.hpp"
#include "dcmesh/resil/health.hpp"
#include "dcmesh/resil/promotion.hpp"
#include "dcmesh/trace/metrics.hpp"

namespace dcmesh::core {
namespace {

// The golden-trajectory tolerances (tests/integration): the recovered run
// must land this close to the fault-free run of the same compute mode.
constexpr double kEkinTol = 2e-5;
constexpr double kNexcTol = 2e-8;
constexpr double kJavgTol = 2e-9;

run_config small_bf16_config() {
  run_config config = preset(paper_system::tiny);
  config.qd_steps_per_series = 5;
  config.series = 2;
  return config;
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    env_unset(blas::kPolicyEnvVar);
    env_unset("MKL_BLAS_COMPUTE_MODE");
    env_unset(resil::kFaultPlanEnvVar);
    env_unset(resil::kHealthEnvVar);
    blas::clear_compute_mode();
    blas::clear_policy();
    blas::clear_call_log();
    resil::set_fault_plan(std::nullopt);
    resil::reset_fault_state();
    resil::set_health_level(std::nullopt);
    resil::clear_promotions();
    trace::clear_health_counters();
  }
};

TEST_F(RecoveryTest, InjectedNanInBf16RunIsDetectedAndRecovered) {
  blas::set_compute_mode(blas::compute_mode::float_to_bf16);
  resil::set_health_level(resil::health_level::full);

  // Fault-free reference: same deck, same mode, same sentinel level.
  driver reference(small_bf16_config());
  reference.run();
  const std::vector<lfd::qd_record> clean = reference.records();
  ASSERT_EQ(clean.size(), 10u);
  EXPECT_EQ(trace::health_counter("detect"), 0u)
      << "fault-free BF16 run must not trip the sentinel";
  EXPECT_EQ(reference.resilience().rollbacks, 0u);

  // Faulty run: NaN into the 5th occurrence of the nonlocal projection —
  // a GEMM that updates the wave function itself, mid-trajectory.
  resil::fault_plan plan;
  plan.rules.push_back(
      {"lfd/nlp_prop/project", 5, resil::fault_kind::nan_value,
       std::nullopt});
  resil::set_fault_plan(plan);

  driver faulty(small_bf16_config());
  const auto reports = faulty.run();

  EXPECT_EQ(resil::injection_count(), 1u);
  resil::set_fault_plan(std::nullopt);
  EXPECT_GE(trace::health_counter("inject"), 1u);
  EXPECT_GE(trace::health_counter("detect"), 1u);
  EXPECT_GE(trace::health_counter("recover"), 1u);
  EXPECT_EQ(trace::health_counter("unrecovered"), 0u);

  // Per-call recovery sufficed: no series needed a rollback.
  for (const series_report& report : reports) {
    EXPECT_EQ(report.replays, 0);
  }

  // A recovered call is visible in the call log with its promoted mode.
  bool saw_recovered = false;
  for (const auto& record : blas::recent_calls()) {
    if (record.health == blas::health_verdict::recovered) {
      saw_recovered = true;
      EXPECT_EQ(record.requested_mode, blas::compute_mode::float_to_bf16);
      EXPECT_NE(record.mode, blas::compute_mode::float_to_bf16);
      EXPECT_GE(record.attempts, 2);
    }
  }
  EXPECT_TRUE(saw_recovered);

  // The trajectory completed and matches the fault-free run within the
  // golden-trajectory tolerances.
  const std::vector<lfd::qd_record>& got = faulty.records();
  ASSERT_EQ(got.size(), clean.size());
  const lfd::qd_record& last = got.back();
  const lfd::qd_record& want = clean.back();
  EXPECT_TRUE(std::isfinite(last.ekin));
  EXPECT_NEAR(last.ekin, want.ekin, kEkinTol);
  EXPECT_NEAR(last.nexc, want.nexc, kNexcTol);
  EXPECT_NEAR(last.javg, want.javg, kJavgTol);
}

TEST_F(RecoveryTest, ScaleFaultRollsBackPromotesAndReEscalates) {
  blas::set_compute_mode(blas::compute_mode::float_to_bf16);
  resil::set_health_level(resil::health_level::full);

  driver reference(small_bf16_config());
  reference.run();
  const double clean_final_ekin = reference.records().back().ekin;
  trace::clear_health_counters();

  // Finite scale blow-up on the step-2 kinetic-energy GEMM: invisible to
  // the per-call finite scan, caught by the step-level invariants.
  resil::fault_plan plan;
  plan.rules.push_back(
      {"lfd/calc_energy/kinetic", 2, resil::fault_kind::scale, 1e5});
  resil::set_fault_plan(plan);

  driver faulty(small_bf16_config());
  const auto reports = faulty.run();

  EXPECT_EQ(resil::injection_count(), 1u);
  resil::set_fault_plan(std::nullopt);
  const resilience_stats& stats = faulty.resilience();
  EXPECT_EQ(stats.violations, 1u);
  EXPECT_EQ(stats.rollbacks, 1u) << stats.last_violation;
  EXPECT_EQ(stats.checkpoints, 2u);  // one per series
  EXPECT_FALSE(stats.last_violation.empty());
  EXPECT_GE(trace::health_counter("step_invariant"), 1u);
  EXPECT_GE(trace::health_counter("rollback"), 1u);
  EXPECT_GE(trace::health_counter("promote"), 1u);

  // Exactly the poisoned series replayed; the replay was fault-free (the
  // occurrence counter had advanced — transient-upset semantics).
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].replays, 1);
  EXPECT_EQ(reports[1].replays, 0);

  // The rollback promotion expired after its TTL: graceful degradation
  // with automatic re-escalation back to the fast mode.
  EXPECT_TRUE(resil::promotion_snapshot().empty());

  // The observable log is contiguous, finite, and ends near the
  // fault-free trajectory (the replayed series ran promoted — TF32-class
  // arithmetic — so exact BF16 equality is not expected).
  const auto& got = faulty.records();
  ASSERT_EQ(got.size(), 10u);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_TRUE(std::isfinite(got[i].ekin));
    EXPECT_GT(got[i].t, got[i - 1].t);
  }
  EXPECT_NEAR(got.back().ekin, clean_final_ekin, 5e-3);
}

TEST_F(RecoveryTest, HealthOffMeansNoCheckpointsAndNoScans) {
  // Sentinel off (the default): the resilient path must stay cold.
  driver d(small_bf16_config());
  d.run_series();
  EXPECT_EQ(d.resilience().checkpoints, 0u);
  EXPECT_EQ(d.resilience().rollbacks, 0u);
  for (const auto& record : blas::recent_calls()) {
    EXPECT_EQ(record.health, blas::health_verdict::none);
  }
}

}  // namespace
}  // namespace dcmesh::core
