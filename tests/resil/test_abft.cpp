// Unit tests for the ABFT checksum guard: mode/env parsing, the τ error
// model, the bitflip snap, and the detect/locate/correct/escalate pipeline
// visible through the GEMM choke point.

#include "dcmesh/resil/abft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/blas/precision_policy.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/resil/fault_plan.hpp"
#include "dcmesh/resil/health.hpp"
#include "dcmesh/trace/metrics.hpp"

namespace dcmesh::resil {
namespace {

using blas::blas_int;

class AbftTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    env_unset(kAbftEnvVar);
    env_unset(kFaultPlanEnvVar);
    env_unset(kFaultSeedEnvVar);
    env_unset(kHealthSampleEnvVar);
    env_unset(blas::kPolicyEnvVar);
    env_unset("MKL_BLAS_COMPUTE_MODE");
    set_abft_mode(std::nullopt);
    set_fault_plan(std::nullopt);
    reset_fault_state();
    set_health_level(std::nullopt);
    reset_health_sampling();
    blas::clear_policy();
    blas::clear_compute_mode();
    blas::clear_call_log();
    trace::clear_health_counters();
  }

  /// Deterministic m x n x k problem; returns C after one run() with the
  /// given per-call mode + abft overrides.
  static std::vector<float> run_gemm(blas_int m, blas_int n, blas_int k,
                                     blas::compute_mode mode,
                                     abft_mode abft, float beta = 0.0f) {
    xoshiro256 rng(42);
    std::vector<float> a(static_cast<std::size_t>(m) * k);
    std::vector<float> b(static_cast<std::size_t>(k) * n);
    std::vector<float> c(static_cast<std::size_t>(m) * n, 1.0f);
    for (auto& v : a) v = float(rng.uniform()) - 0.5f;
    for (auto& v : b) v = float(rng.uniform()) - 0.5f;
    blas::gemm_call<float> call;
    call.m = m;
    call.n = n;
    call.k = k;
    call.a = a.data();
    call.lda = m;
    call.b = b.data();
    call.ldb = k;
    call.beta = beta;
    call.c = c.data();
    call.ldc = m;
    call.mode = mode;
    call.abft = abft;
    blas::run(call);
    return c;
  }
};

TEST_F(AbftTest, ParsesModeTokens) {
  EXPECT_EQ(parse_abft_mode("off"), abft_mode::off);
  EXPECT_EQ(parse_abft_mode("OFF"), abft_mode::off);
  EXPECT_EQ(parse_abft_mode("0"), abft_mode::off);
  EXPECT_EQ(parse_abft_mode("detect"), abft_mode::detect);
  EXPECT_EQ(parse_abft_mode("DETECT"), abft_mode::detect);
  EXPECT_EQ(parse_abft_mode("1"), abft_mode::detect);
  EXPECT_EQ(parse_abft_mode("correct"), abft_mode::correct);
  EXPECT_EQ(parse_abft_mode("2"), abft_mode::correct);
  EXPECT_FALSE(parse_abft_mode("").has_value());
  EXPECT_FALSE(parse_abft_mode("verify").has_value());
  EXPECT_EQ(name(abft_mode::off), "off");
  EXPECT_EQ(name(abft_mode::detect), "detect");
  EXPECT_EQ(name(abft_mode::correct), "correct");
}

TEST_F(AbftTest, EnvDefaultAndProgrammaticOverride) {
  EXPECT_EQ(active_abft_mode(), abft_mode::off);
  env_set(kAbftEnvVar, "detect");
  EXPECT_EQ(active_abft_mode(), abft_mode::detect);
  env_set(kAbftEnvVar, "CORRECT");
  EXPECT_EQ(active_abft_mode(), abft_mode::correct);
  // Warn-once-never-throw on a malformed value: falls back to off.
  env_set(kAbftEnvVar, "bogus");
  EXPECT_EQ(active_abft_mode(), abft_mode::off);
  // Programmatic override beats the env.
  env_set(kAbftEnvVar, "off");
  set_abft_mode(abft_mode::correct);
  EXPECT_EQ(active_abft_mode(), abft_mode::correct);
  set_abft_mode(std::nullopt);
  EXPECT_EQ(active_abft_mode(), abft_mode::off);
}

TEST_F(AbftTest, PolicyGrammarCarriesAbftFlag) {
  const auto policy = blas::parse_policy(
      "lfd/nlp_prop/*=FLOAT_TO_BF16X2:abft=correct;"
      "core/*=STANDARD:abft=detect; other=FLOAT_TO_TF32");
  ASSERT_EQ(policy.rules.size(), 3u);
  ASSERT_TRUE(policy.rules[0].abft.has_value());
  EXPECT_EQ(*policy.rules[0].abft, abft_mode::correct);
  ASSERT_TRUE(policy.rules[1].abft.has_value());
  EXPECT_EQ(*policy.rules[1].abft, abft_mode::detect);
  EXPECT_FALSE(policy.rules[2].abft.has_value());
  EXPECT_THROW((void)blas::parse_policy("a=FLOAT_TO_BF16:abft=maybe"),
               std::invalid_argument);
}

TEST_F(AbftTest, ThresholdsScaleWithPrecisionAndShape) {
  const abft_error_model fine{0x1p-24, 0x1p-24};
  const abft_error_model coarse{0x1p-8, 0x1p-24};
  const auto tight =
      derive_abft_thresholds(fine, 64, 64, 256, 1.0, 1.0, 1.0, 0.0, 0.0);
  const auto loose =
      derive_abft_thresholds(coarse, 64, 64, 256, 1.0, 1.0, 1.0, 0.0, 0.0);
  EXPECT_GT(tight.tau_col, 0.0);
  EXPECT_GT(loose.tau_col, tight.tau_col);
  const auto deeper =
      derive_abft_thresholds(fine, 64, 64, 1024, 1.0, 1.0, 1.0, 0.0, 0.0);
  EXPECT_GT(deeper.tau_col, tight.tau_col);
}

TEST_F(AbftTest, SnapToBitflipRecoversExactBits) {
  const float clean = 3.14159f;
  for (const unsigned bit : {0u, 7u, 20u, 22u, 30u}) {
    std::uint32_t repr;
    std::memcpy(&repr, &clean, sizeof(repr));
    repr ^= std::uint32_t{1} << bit;
    float faulty;
    std::memcpy(&faulty, &repr, sizeof(faulty));
    // Target = faulty - delta where delta is the (noiseless) residual.
    const double target = static_cast<double>(clean);
    const float fixed = snap_to_bitflip(faulty, target, 1e-3);
    EXPECT_EQ(std::memcmp(&fixed, &clean, sizeof(clean)), 0)
        << "bit " << bit;
  }
  // No finite bitflip neighbour within tol: falls back to the rounded
  // target (still finite).
  const float off_target = snap_to_bitflip(1.0f, 7.25, 1e-6);
  EXPECT_FLOAT_EQ(off_target, 7.25f);
}

TEST_F(AbftTest, VerifyChecksumsLocatesASingleElement) {
  // Hand-built 2x2 augmented result: interior + exact checksums, then
  // corrupt (1,0).
  const blas_int ld = 3;
  std::vector<double> caug = {1.0, 2.0, 3.0,   // col 0 + checksum
                              4.0, 5.0, 9.0,   // col 1 + checksum
                              5.0, 7.0, 12.0}; // row-sum col + corner
  caug[1] += 0.5;  // corrupt C(1,0)
  const abft_thresholds tau{1e-9, 1e-9};
  const auto scan = verify_checksums(caug.data(), ld, 2, 2, tau);
  ASSERT_TRUE(scan.single());
  EXPECT_EQ(scan.bad_rows[0], 1);
  EXPECT_EQ(scan.bad_cols[0], 0);
  EXPECT_NEAR(scan.col_delta[0], 0.5, 1e-12);
  // NaN corruption must flag, never pass (NaN-safe comparison).
  caug[1] = std::numeric_limits<double>::quiet_NaN();
  const auto nan_scan = verify_checksums(caug.data(), ld, 2, 2, tau);
  EXPECT_FALSE(nan_scan.clean());
}

TEST_F(AbftTest, AugmentationIsBitNeutralAcrossModes) {
  using blas::compute_mode;
  for (const compute_mode mode :
       {compute_mode::standard, compute_mode::float_to_bf16,
        compute_mode::float_to_tf32, compute_mode::float_to_bf16x2,
        compute_mode::float_to_bf16x3}) {
    trace::clear_health_counters();
    const auto plain = run_gemm(24, 20, 64, mode, abft_mode::off, 0.5f);
    const auto checked = run_gemm(24, 20, 64, mode, abft_mode::detect, 0.5f);
    // The augmented interior is the same blocked arithmetic on the same
    // values: bit-identical result, and a clean run never false-positives.
    EXPECT_EQ(std::memcmp(plain.data(), checked.data(),
                          plain.size() * sizeof(float)),
              0)
        << blas::info(mode).env_token;
    EXPECT_EQ(trace::health_counter("abft_check"), 1u)
        << blas::info(mode).env_token;
    EXPECT_EQ(trace::health_counter("abft_detect"), 0u)
        << blas::info(mode).env_token;
    const auto log = blas::recent_calls();
    ASSERT_FALSE(log.empty());
    EXPECT_EQ(log.back().abft, blas::abft_verdict::checked);
  }
}

TEST_F(AbftTest, CorrectsASingleOutputBitflip) {
  const auto clean = run_gemm(16, 12, 32, blas::compute_mode::standard,
                              abft_mode::off);
  // High-mantissa flip: finite, large enough to clear τ.
  fault_plan plan;
  plan.rules.push_back({"SGEMM", 0, fault_kind::bitflip, 20.0});
  set_fault_plan(plan);
  const auto fixed = run_gemm(16, 12, 32, blas::compute_mode::standard,
                              abft_mode::correct);
  EXPECT_EQ(std::memcmp(clean.data(), fixed.data(),
                        clean.size() * sizeof(float)),
            0);
  EXPECT_EQ(injection_count(), 1u);
  EXPECT_GE(trace::health_counter("abft_detect"), 1u);
  EXPECT_GE(trace::health_counter("abft_correct"), 1u);
  const auto log = blas::recent_calls();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().abft, blas::abft_verdict::corrected);
  EXPECT_TRUE(log.back().fault.rfind("bitflip@", 0) == 0)
      << log.back().fault;
}

TEST_F(AbftTest, DetectModeReportsButKeepsTheCorruptResult) {
  fault_plan plan;
  plan.rules.push_back({"SGEMM", 0, fault_kind::bitflip, 20.0});
  set_fault_plan(plan);
  const auto kept = run_gemm(16, 12, 32, blas::compute_mode::standard,
                             abft_mode::detect);
  set_fault_plan(std::nullopt);
  reset_fault_state();
  const auto clean = run_gemm(16, 12, 32, blas::compute_mode::standard,
                              abft_mode::off);
  EXPECT_NE(std::memcmp(clean.data(), kept.data(),
                        clean.size() * sizeof(float)),
            0);
  EXPECT_EQ(trace::health_counter("abft_detect"), 1u);
  EXPECT_EQ(trace::health_counter("abft_correct"), 0u);
  const auto log = blas::recent_calls();
  EXPECT_EQ(log.front().abft, blas::abft_verdict::detected);
}

TEST_F(AbftTest, InputFaultEscalatesToABitIdenticalRerun) {
  for (const blas::compute_mode mode :
       {blas::compute_mode::standard, blas::compute_mode::float_to_bf16x2,
        blas::compute_mode::float_to_bf16x3,
        blas::compute_mode::float_to_tf32}) {
    reset();
    const auto clean = run_gemm(16, 12, 32, mode, abft_mode::off);
    // A flipped op(A) element corrupts a whole row of C: multi-hit, so
    // the single-element snap cannot apply and the ladder re-runs from
    // the pristine operands — same mode first, hence bit-identical.
    // Bit 30 flips the top exponent bit: for |a| < 1 the element blows
    // up to ~1e38 — finite (invisible to the health sentinel) but far
    // beyond any mode's τ, so detection is guaranteed even at BF16X2's
    // coarse threshold.
    fault_plan plan;
    plan.rules.push_back({"SGEMM", 0, fault_kind::bitflip_a, 30.0});
    set_fault_plan(plan);
    const auto fixed = run_gemm(16, 12, 32, mode, abft_mode::correct);
    EXPECT_EQ(std::memcmp(clean.data(), fixed.data(),
                          clean.size() * sizeof(float)),
              0)
        << blas::info(mode).env_token;
    EXPECT_GE(trace::health_counter("abft_detect"), 1u);
    EXPECT_GE(trace::health_counter("abft_escalate"), 1u);
    const auto log = blas::recent_calls();
    ASSERT_FALSE(log.empty());
    EXPECT_EQ(log.back().abft, blas::abft_verdict::recovered)
        << blas::info(mode).env_token;
    // Same-mode re-run recovered: no ladder promotion needed.
    EXPECT_EQ(log.back().mode, mode) << blas::info(mode).env_token;
    EXPECT_GE(log.back().attempts, 2);
  }
}

TEST_F(AbftTest, TenStepTrajectoryCorrectsBitIdentically) {
  // The abft_drill campaign in unit-test form (so it also runs under the
  // sanitizers): a 10-step chained propagation next = (1/n) A s with a
  // single bit-30 operand flip at step 5 must finish bit-identical to
  // the clean trajectory once abft=correct is on — across the real mode
  // grid the drill's CI loop covers.
  constexpr blas_int n = 24;
  constexpr int steps = 10;
  const auto trajectory = [](blas::compute_mode mode, abft_mode abft) {
    xoshiro256 rng(7);
    std::vector<float> a(static_cast<std::size_t>(n) * n);
    std::vector<float> s(static_cast<std::size_t>(n) * n);
    for (auto& v : a) v = float(rng.uniform()) - 0.5f;
    for (auto& v : s) v = float(rng.uniform()) - 0.5f;
    std::vector<float> next(s.size());
    std::vector<float> out;
    for (int step = 0; step < steps; ++step) {
      blas::gemm_call<float> call;
      call.m = n;
      call.n = n;
      call.k = n;
      call.alpha = 1.0f / n;
      call.a = a.data();
      call.lda = n;
      call.b = s.data();
      call.ldb = n;
      call.c = next.data();
      call.ldc = n;
      call.call_site = "traj/abft";
      call.mode = mode;
      call.abft = abft;
      blas::run(call);
      s.swap(next);
      out.insert(out.end(), s.begin(), s.end());
    }
    return out;
  };
  for (const blas::compute_mode mode :
       {blas::compute_mode::standard, blas::compute_mode::float_to_bf16x2,
        blas::compute_mode::float_to_bf16x3,
        blas::compute_mode::float_to_tf32}) {
    reset();
    const auto clean = trajectory(mode, abft_mode::off);
    fault_plan plan;
    plan.rules.push_back({"traj/*", 5, fault_kind::bitflip_a, 30.0, 1});
    set_fault_plan(plan);
    const auto fixed = trajectory(mode, abft_mode::correct);
    EXPECT_EQ(injection_count(), 1u) << blas::info(mode).env_token;
    EXPECT_EQ(std::memcmp(clean.data(), fixed.data(),
                          clean.size() * sizeof(float)),
              0)
        << blas::info(mode).env_token;
    EXPECT_EQ(trace::health_counter("abft_check"),
              static_cast<std::uint64_t>(steps));
    EXPECT_EQ(trace::health_counter("abft_detect"), 1u);
    // Zero false positives: only the injected step re-ran.
    EXPECT_GE(trace::health_counter("abft_correct") +
                  trace::health_counter("abft_escalate"),
              1u);
  }
}

TEST_F(AbftTest, AntiVacuity_FiniteFlipInvisibleWithoutAbft) {
  // The PR 5 sentinel only scans for non-finite values: a finite
  // mantissa flip sails through with ABFT off...
  fault_plan plan;
  plan.rules.push_back({"SGEMM", 0, fault_kind::bitflip, 20.0});
  set_fault_plan(plan);
  set_health_level(health_level::full);
  (void)run_gemm(16, 12, 32, blas::compute_mode::standard, abft_mode::off);
  EXPECT_EQ(injection_count(), 1u);
  EXPECT_EQ(trace::health_counter("detect"), 0u);
  EXPECT_EQ(trace::health_counter("abft_detect"), 0u);
  {
    const auto log = blas::recent_calls();
    ASSERT_FALSE(log.empty());
    EXPECT_EQ(log.back().health, blas::health_verdict::clean);
    EXPECT_EQ(log.back().abft, blas::abft_verdict::none);
  }
  // ...and the same plan under abft=detect fires exactly once.
  reset_fault_state();
  blas::clear_call_log();
  (void)run_gemm(16, 12, 32, blas::compute_mode::standard,
                 abft_mode::detect);
  EXPECT_EQ(trace::health_counter("abft_detect"), 1u);
  const auto log = blas::recent_calls();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().abft, blas::abft_verdict::detected);
}

TEST_F(AbftTest, PerCallOverrideBeatsPolicyBeatsEnv) {
  env_set(kAbftEnvVar, "correct");
  // Env default reaches an untagged call.
  (void)run_gemm(8, 8, 8, blas::compute_mode::standard, abft_mode::detect);
  {
    const auto log = blas::recent_calls();
    ASSERT_FALSE(log.empty());
    // Per-call detect overrode the env's correct; verdict is checked
    // (clean run) either way, but the counter proves the path ran.
    EXPECT_EQ(log.back().abft, blas::abft_verdict::checked);
  }
  EXPECT_EQ(trace::health_counter("abft_check"), 1u);
  // Policy rule: abft=off for this site disables it despite the env.
  blas::set_policy(blas::parse_policy("quiet/*=standard:abft=off"));
  xoshiro256 rng(7);
  std::vector<float> a(64), b(64), c(64, 0.0f);
  for (auto& v : a) v = float(rng.uniform());
  for (auto& v : b) v = float(rng.uniform());
  blas::gemm_call<float> call;
  call.m = 8;
  call.n = 8;
  call.k = 8;
  call.a = a.data();
  call.lda = 8;
  call.b = b.data();
  call.ldb = 8;
  call.c = c.data();
  call.ldc = 8;
  call.call_site = "quiet/site";
  blas::run(call);
  const auto log = blas::recent_calls();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().abft, blas::abft_verdict::none);
  EXPECT_EQ(trace::health_counter("abft_check"), 1u);  // unchanged
}

TEST_F(AbftTest, ComplexAndGuardedCallsSkipAbft) {
  env_set(kAbftEnvVar, "correct");
  std::vector<std::complex<float>> a(16, {1.0f, 0.0f}), b(16, {1.0f, 0.0f}),
      c(16, {0.0f, 0.0f});
  blas::cgemm(blas::transpose::none, blas::transpose::none, 4, 4, 4,
              {1.0f, 0.0f}, a.data(), 4, b.data(), 4, {0.0f, 0.0f},
              c.data(), 4);
  auto log = blas::recent_calls();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().abft, blas::abft_verdict::none);
  EXPECT_EQ(trace::health_counter("abft_check"), 0u);
  // A guarded rule wins over ABFT (its sampled-reference check subsumes
  // the checksum, and the two would fight over re-runs).
  blas::set_policy(
      blas::parse_policy("g/*=FLOAT_TO_BF16:tol=1e-2:abft=correct"));
  std::vector<float> fa(16, 0.5f), fb(16, 0.25f), fc(16, 0.0f);
  blas::gemm_call<float> call;
  call.m = 4;
  call.n = 4;
  call.k = 4;
  call.a = fa.data();
  call.lda = 4;
  call.b = fb.data();
  call.ldb = 4;
  call.c = fc.data();
  call.ldc = 4;
  call.call_site = "g/site";
  blas::run(call);
  log = blas::recent_calls();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().abft, blas::abft_verdict::none);
  EXPECT_NE(log.back().fallback, blas::fallback_verdict::none);
}

}  // namespace
}  // namespace dcmesh::resil
