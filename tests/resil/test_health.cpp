// Unit tests for the health sentinel plumbing: level parsing and the
// env-robustness contract, limit overrides, structured health events,
// the promotion ledger, and the checkpoint ring.

#include "dcmesh/resil/health.hpp"

#include <gtest/gtest.h>

#include "dcmesh/common/env.hpp"
#include "dcmesh/resil/checkpoint_ring.hpp"
#include "dcmesh/resil/promotion.hpp"
#include "dcmesh/trace/metrics.hpp"

namespace dcmesh::resil {
namespace {

class HealthTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    env_unset(kHealthEnvVar);
    env_unset(kNormDriftEnvVar);
    env_unset(kValueMaxEnvVar);
    env_unset(kEkinJumpEnvVar);
    env_unset(kHealthSampleEnvVar);
    set_health_level(std::nullopt);
    clear_promotions();
    reset_health_sampling();
    trace::clear_health_counters();
  }
};

TEST_F(HealthTest, DefaultsToOff) {
  EXPECT_EQ(active_health_level(), health_level::off);
}

TEST_F(HealthTest, ParsesEveryLevelToken) {
  env_set(kHealthEnvVar, "sample");
  EXPECT_EQ(active_health_level(), health_level::sample);
  env_set(kHealthEnvVar, "FULL");
  EXPECT_EQ(active_health_level(), health_level::full);
  env_set(kHealthEnvVar, "0");
  EXPECT_EQ(active_health_level(), health_level::off);
  env_set(kHealthEnvVar, "1");
  EXPECT_EQ(active_health_level(), health_level::sample);
  env_set(kHealthEnvVar, "2");
  EXPECT_EQ(active_health_level(), health_level::full);
}

TEST_F(HealthTest, MalformedLevelWarnsOnceAndReadsAsOff) {
  env_set(kHealthEnvVar, "paranoid");
  // Never throws; behaves as off (the shared env-robustness contract).
  EXPECT_EQ(active_health_level(), health_level::off);
  EXPECT_EQ(active_health_level(), health_level::off);
}

TEST_F(HealthTest, ProgrammaticOverrideBeatsTheEnvironment) {
  env_set(kHealthEnvVar, "off");
  set_health_level(health_level::full);
  EXPECT_EQ(active_health_level(), health_level::full);
  set_health_level(std::nullopt);
  EXPECT_EQ(active_health_level(), health_level::off);
}

TEST_F(HealthTest, LimitsComeFromTheEnvironment) {
  const invariant_limits defaults = active_limits();
  EXPECT_DOUBLE_EQ(defaults.norm_drift_max, 1e-2);
  EXPECT_DOUBLE_EQ(defaults.value_max, 1e6);
  EXPECT_DOUBLE_EQ(defaults.ekin_jump_rel, 0.5);

  env_set(kNormDriftEnvVar, "1e-4");
  env_set(kValueMaxEnvVar, "100");
  env_set(kEkinJumpEnvVar, "0.25");
  const invariant_limits tuned = active_limits();
  EXPECT_DOUBLE_EQ(tuned.norm_drift_max, 1e-4);
  EXPECT_DOUBLE_EQ(tuned.value_max, 100.0);
  EXPECT_DOUBLE_EQ(tuned.ekin_jump_rel, 0.25);
}

TEST_F(HealthTest, MalformedLimitKeepsTheDefault) {
  env_set(kValueMaxEnvVar, "banana");
  EXPECT_DOUBLE_EQ(active_limits().value_max, 1e6);
  env_set(kValueMaxEnvVar, "-5");
  EXPECT_DOUBLE_EQ(active_limits().value_max, 1e6);
}

TEST_F(HealthTest, EventsBumpTheMetricsCounters) {
  EXPECT_EQ(trace::health_counter("detect"), 0u);
  record_health_event("detect", "lfd/a", "non-finite C(0,0)");
  record_health_event("detect", "lfd/b", "non-finite C(1,2)");
  record_health_event("recover", "lfd/a", "TF32");
  EXPECT_EQ(trace::health_counter("detect"), 2u);
  EXPECT_EQ(trace::health_counter("recover"), 1u);
  EXPECT_EQ(trace::health_counter("rollback"), 0u);
}

TEST_F(HealthTest, SamplePeriodDefaultsToEveryCall) {
  EXPECT_EQ(health_sample_period(), 1u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(health_sample_due());
}

TEST_F(HealthTest, SamplePeriodGatesEveryNthCall) {
  env_set(kHealthSampleEnvVar, "3");
  EXPECT_EQ(health_sample_period(), 3u);
  reset_health_sampling();
  EXPECT_TRUE(health_sample_due());   // tick 0
  EXPECT_FALSE(health_sample_due());  // tick 1
  EXPECT_FALSE(health_sample_due());  // tick 2
  EXPECT_TRUE(health_sample_due());   // tick 3
  EXPECT_FALSE(health_sample_due());
}

TEST_F(HealthTest, MalformedSamplePeriodWarnsAndReadsAsOne) {
  for (const char* bad : {"zero", "0", "-4", "2.5x", ""}) {
    env_set(kHealthSampleEnvVar, bad);
    EXPECT_EQ(health_sample_period(), 1u) << '"' << bad << '"';
  }
}

TEST_F(HealthTest, PromotionLedgerAppliesAndExpires) {
  EXPECT_EQ(promotion_steps("lfd/nlp_prop/overlap"), 0);
  promote_sites("lfd/*", 1, 2);
  EXPECT_EQ(promotion_steps("lfd/nlp_prop/overlap"), 1);
  EXPECT_EQ(promotion_steps("core/scf"), 0);
  EXPECT_EQ(trace::health_counter("promote"), 1u);

  // Strengthening takes the max of levels and refreshes the TTL.
  promote_sites("lfd/*", 2, 1);
  EXPECT_EQ(promotion_steps("lfd/anything"), 2);

  tick_promotions();  // series 1 of 2
  EXPECT_EQ(promotion_steps("lfd/anything"), 2);
  tick_promotions();  // TTL exhausted: automatic re-escalation
  EXPECT_EQ(promotion_steps("lfd/anything"), 0);
  EXPECT_TRUE(promotion_snapshot().empty());
}

TEST_F(HealthTest, PromotionsTakeTheMaxOverMatchingEntries) {
  promote_sites("lfd/*", 1, 3);
  promote_sites("lfd/nlp_prop/*", 2, 3);
  EXPECT_EQ(promotion_steps("lfd/nlp_prop/overlap"), 2);
  EXPECT_EQ(promotion_steps("lfd/calc_energy/kinetic"), 1);
}

TEST(CheckpointRing, PushLatestAndEviction) {
  checkpoint_ring ring(2);
  EXPECT_EQ(ring.latest(), nullptr);
  EXPECT_EQ(ring.size(), 0u);

  ring.push(1, 10, "one");
  ring.push(2, 20, "two");
  ASSERT_NE(ring.latest(), nullptr);
  EXPECT_EQ(ring.latest()->label, 2u);
  EXPECT_EQ(ring.size(), 2u);

  ring.push(3, 30, "three");  // evicts "one"
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.latest()->label, 3u);
  EXPECT_EQ(ring.latest()->aux, 30u);
  EXPECT_EQ(ring.latest()->blob, "three");
  EXPECT_EQ(ring.bytes(), 3u + 5u);

  ring.drop_latest();  // fall back to the older slot
  ASSERT_NE(ring.latest(), nullptr);
  EXPECT_EQ(ring.latest()->label, 2u);
  ring.drop_latest();
  EXPECT_EQ(ring.latest(), nullptr);
  ring.drop_latest();  // no-op on empty
  EXPECT_EQ(ring.size(), 0u);

  ring.push(4, 40, "four");
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.bytes(), 0u);
}

}  // namespace
}  // namespace dcmesh::resil
