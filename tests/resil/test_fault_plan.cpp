// Unit tests for the deterministic fault-injection engine: the plan
// grammar, the occurrence semantics, the env-robustness contract, and the
// injection + ladder recovery visible through the GEMM choke point.

#include "dcmesh/resil/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/resil/health.hpp"

namespace dcmesh::resil {
namespace {

class FaultPlanTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    env_unset(kFaultPlanEnvVar);
    env_unset(kFaultSeedEnvVar);
    set_fault_plan(std::nullopt);
    reset_fault_state();
    set_health_level(std::nullopt);
    blas::clear_call_log();
  }
};

TEST_F(FaultPlanTest, ParsesTheGrammar) {
  const fault_plan plan = parse_fault_plan(
      "lfd/calc_energy/*:5:nan; lfd/remap_occ/?verlap:2:bitflip:12,"
      "SGEMM:*:scale:1e3");
  ASSERT_EQ(plan.rules.size(), 3u);
  EXPECT_EQ(plan.rules[0].pattern, "lfd/calc_energy/*");
  EXPECT_EQ(plan.rules[0].call_index, 5);
  EXPECT_EQ(plan.rules[0].kind, fault_kind::nan_value);
  EXPECT_FALSE(plan.rules[0].param.has_value());
  EXPECT_EQ(plan.rules[1].kind, fault_kind::bitflip);
  ASSERT_TRUE(plan.rules[1].param.has_value());
  EXPECT_DOUBLE_EQ(*plan.rules[1].param, 12.0);
  EXPECT_EQ(plan.rules[2].call_index, -1);  // '*' = every matching call
  EXPECT_EQ(plan.rules[2].kind, fault_kind::scale);
  EXPECT_DOUBLE_EQ(*plan.rules[2].param, 1e3);
}

TEST_F(FaultPlanTest, RejectsMalformedRules) {
  EXPECT_THROW((void)parse_fault_plan("just-a-site"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("site:0:warp"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("site:-3:nan"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("site:x:nan"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("site:0:scale:huge"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan(":0:nan"), std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("a:0:nan:1:2:3"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_fault_plan("a:0:bitflip_a:20:0"),
               std::invalid_argument);  // hit count must be >= 1
  EXPECT_THROW((void)parse_fault_plan("a:0:bitflip_a:20:x"),
               std::invalid_argument);
}

TEST_F(FaultPlanTest, ParsesInputKindsAndHitCounts) {
  const fault_plan plan = parse_fault_plan(
      "lfd/*:0:bitflip_a:20; SGEMM:1:bitflip_b:22:3, core/*:2:nan::2");
  ASSERT_EQ(plan.rules.size(), 3u);
  EXPECT_EQ(plan.rules[0].kind, fault_kind::bitflip_a);
  ASSERT_TRUE(plan.rules[0].param.has_value());
  EXPECT_DOUBLE_EQ(*plan.rules[0].param, 20.0);
  EXPECT_EQ(plan.rules[0].hits, 1);
  EXPECT_EQ(plan.rules[1].kind, fault_kind::bitflip_b);
  EXPECT_EQ(plan.rules[1].hits, 3);
  // Empty param with a hits field: draw the bit, flip two elements.
  EXPECT_EQ(plan.rules[2].kind, fault_kind::nan_value);
  EXPECT_FALSE(plan.rules[2].param.has_value());
  EXPECT_EQ(plan.rules[2].hits, 2);
  EXPECT_TRUE(is_input_fault(fault_kind::bitflip_a));
  EXPECT_TRUE(is_input_fault(fault_kind::bitflip_b));
  EXPECT_FALSE(is_input_fault(fault_kind::bitflip));
}

TEST_F(FaultPlanTest, EmptyAndSeparatorOnlyPlansAreInert) {
  EXPECT_TRUE(parse_fault_plan("").empty());
  EXPECT_TRUE(parse_fault_plan(" ;; , ").empty());
}

TEST_F(FaultPlanTest, GlobMatchSemantics) {
  EXPECT_TRUE(glob_match("*", "lfd/nlp_prop/overlap"));
  EXPECT_TRUE(glob_match("lfd/*", "lfd/nlp_prop/overlap"));
  EXPECT_TRUE(glob_match("lfd/*/overlap", "lfd/remap_occ/overlap"));
  EXPECT_TRUE(glob_match("?GEMM", "SGEMM"));
  EXPECT_FALSE(glob_match("lfd/*", "core/scf"));
  EXPECT_FALSE(glob_match("SGEMM", "CGEMM"));
}

TEST_F(FaultPlanTest, FiresOnTheNthMatchingCallOnly) {
  fault_plan plan;
  plan.rules.push_back({"lfd/*", 2, fault_kind::nan_value, std::nullopt});
  set_fault_plan(plan);

  EXPECT_FALSE(next_fault("lfd/a").has_value());  // occurrence 0
  EXPECT_FALSE(next_fault("core/x").has_value()); // not matching
  EXPECT_FALSE(next_fault("lfd/b").has_value());  // occurrence 1
  const auto hit = next_fault("lfd/c");           // occurrence 2 -> fires
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, fault_kind::nan_value);
  EXPECT_EQ(hit->occurrence, 2);
  EXPECT_FALSE(next_fault("lfd/d").has_value());  // one-shot
  EXPECT_EQ(injection_count(), 1u);
}

TEST_F(FaultPlanTest, DrawsAreDeterministicAcrossResets) {
  fault_plan plan;
  plan.rules.push_back({"*", 0, fault_kind::bitflip, std::nullopt});
  set_fault_plan(plan);
  const auto first = next_fault("site");
  ASSERT_TRUE(first.has_value());

  reset_fault_state();
  const auto second = next_fault("site");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->pick0, second->pick0);
  EXPECT_EQ(first->pick1, second->pick1);
}

TEST_F(FaultPlanTest, FirstFiringRuleWinsButAllCountersAdvance) {
  fault_plan plan;
  plan.rules.push_back({"lfd/*", 1, fault_kind::nan_value, std::nullopt});
  plan.rules.push_back({"*", 1, fault_kind::inf_value, std::nullopt});
  set_fault_plan(plan);

  EXPECT_FALSE(next_fault("lfd/a").has_value());  // both at occurrence 0
  const auto hit = next_fault("lfd/b");           // both fire; rule 0 wins
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rule, 0);
  EXPECT_EQ(hit->kind, fault_kind::nan_value);
  // Rule 1's counter advanced past its index too: nothing left to fire.
  EXPECT_FALSE(next_fault("other").has_value());
}

TEST_F(FaultPlanTest, MalformedEnvPlanWarnsAndDisables) {
  env_set(kFaultPlanEnvVar, "not a plan at all");
  reset_fault_state();
  // Never throws from the query path; injection is simply off.
  EXPECT_FALSE(next_fault("lfd/a").has_value());
  EXPECT_EQ(injection_count(), 0u);
}

TEST_F(FaultPlanTest, EnvPlanInjectsNanIntoUntaggedGemm) {
  // Untagged calls match by routine name.
  env_set(kFaultPlanEnvVar, "SGEMM:0:nan");
  reset_fault_state();

  std::vector<float> a(4, 1.0f), b(4, 1.0f), c(4, 0.0f);
  blas::sgemm(blas::transpose::none, blas::transpose::none, 2, 2, 2, 1.0f,
              a.data(), 2, b.data(), 2, 0.0f, c.data(), 2);
  bool found_nan = false;
  for (const float v : c) found_nan = found_nan || std::isnan(v);
  EXPECT_TRUE(found_nan);
  EXPECT_EQ(injection_count(), 1u);

  const auto log = blas::recent_calls();
  ASSERT_FALSE(log.empty());
  EXPECT_TRUE(log.back().fault.rfind("nan@", 0) == 0) << log.back().fault;
  // Health off: the fault is recorded but nothing scanned or recovered.
  EXPECT_EQ(log.back().health, blas::health_verdict::none);
}

TEST_F(FaultPlanTest, SentinelRecoversAnInjectedNan) {
  fault_plan plan;
  plan.rules.push_back({"SGEMM", 0, fault_kind::nan_value, std::nullopt});
  set_fault_plan(plan);
  set_health_level(health_level::full);
  blas::set_compute_mode(blas::compute_mode::float_to_bf16);

  std::vector<float> a(16, 0.5f), b(16, 0.25f), c(16, 1.0f);
  blas::sgemm(blas::transpose::none, blas::transpose::none, 4, 4, 4, 1.0f,
              a.data(), 4, b.data(), 4, 1.0f, c.data(), 4);
  blas::clear_compute_mode();

  for (const float v : c) EXPECT_TRUE(std::isfinite(v));
  const auto log = blas::recent_calls();
  ASSERT_FALSE(log.empty());
  const auto& rec = log.back();
  EXPECT_EQ(rec.health, blas::health_verdict::recovered);
  EXPECT_FALSE(rec.fault.empty());
  EXPECT_GE(rec.attempts, 2);
  // The re-run climbed the ladder: BF16 -> TF32.
  EXPECT_EQ(rec.requested_mode, blas::compute_mode::float_to_bf16);
  EXPECT_EQ(rec.mode, blas::compute_mode::float_to_tf32);
  // beta = 1 path: the pre-call C was restored before the re-run, so the
  // result matches the exact TF32 evaluation, not a double accumulation.
  for (const float v : c) EXPECT_NEAR(v, 1.0f + 4 * 0.5f * 0.25f, 1e-3f);
}

TEST_F(FaultPlanTest, InfFaultOnStandardModeRetriesSameMode) {
  fault_plan plan;
  plan.rules.push_back({"DGEMM", 0, fault_kind::inf_value, std::nullopt});
  set_fault_plan(plan);
  set_health_level(health_level::full);

  std::vector<double> a(4, 1.0), b(4, 1.0), c(4, 0.0);
  blas::dgemm(blas::transpose::none, blas::transpose::none, 2, 2, 2, 1.0,
              a.data(), 2, b.data(), 2, 0.0, c.data(), 2);
  for (const double v : c) EXPECT_DOUBLE_EQ(v, 2.0);
  const auto log = blas::recent_calls();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().health, blas::health_verdict::recovered);
  EXPECT_EQ(log.back().attempts, 2);  // one same-mode retry
}

TEST_F(FaultPlanTest, ScaleFaultStaysFiniteAndPassesTheScan) {
  fault_plan plan;
  plan.rules.push_back({"SGEMM", 0, fault_kind::scale, 1024.0});
  set_fault_plan(plan);
  set_health_level(health_level::full);

  std::vector<float> a(4, 1.0f), b(4, 1.0f), c(4, 0.0f);
  blas::sgemm(blas::transpose::none, blas::transpose::none, 2, 2, 2, 1.0f,
              a.data(), 2, b.data(), 2, 0.0f, c.data(), 2);
  // All of C scaled, still finite: per-call scan reports clean — the
  // step-level invariants (driver) are the layer that catches this one.
  for (const float v : c) EXPECT_FLOAT_EQ(v, 2.0f * 1024.0f);
  const auto log = blas::recent_calls();
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().health, blas::health_verdict::clean);
  EXPECT_EQ(log.back().fault, "scale*1024");
}

}  // namespace
}  // namespace dcmesh::resil
