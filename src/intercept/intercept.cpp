// intercept.cpp — libdcmesh_intercept.so: transparent BLAS interposition.
//
// Exports the STANDARD level-3 symbols — CBLAS (cblas_sgemm, ...,
// cblas_*gemm_batch_strided) and Fortran (sgemm_, dgemm_, cgemm_,
// zgemm_) — so that
//
//   LD_PRELOAD=libdcmesh_intercept.so ./any_blas_binary
//
// routes every GEMM of an UNMODIFIED application through the dcmesh
// descriptor engine: per-site precision policies (DCMESH_BLAS_POLICY),
// the accuracy-aware autotuner and wisdom cache (AUTO rules,
// DCMESH_TUNE_CACHE), fused split-mode kernels, the accuracy guard, the
// fault sentinel, MKL_VERBOSE records, per-site metrics, and trace
// spans.  This is the automatic-offloading design of the TACC tunable-
// precision line of work, minus any code change in the application.
//
// Call-site identity comes from __builtin_return_address(0), captured in
// each exported function and symbolized/cached by site_identity.cpp —
// module-relative in the default `addr` mode, so policies match and
// wisdom stays warm across runs despite ASLR.
//
// Every entry is a thin forward to the public C API (dcmesh_gemm /
// dcmesh_gemm_batch_strided in include/dcmesh/dcmesh_blas.h); no
// dispatch logic lives here.  A BLAS signature has no status channel, so
// a failed call (malformed dimensions, etc.) prints one stderr line and
// returns with C untouched — the moral equivalent of xerbla.
//
// The first intercepted call installs the autotuner (unless
// DCMESH_INTERCEPT_AUTOTUNE=0), because under pure LD_PRELOAD no driver
// exists to do it and AUTO policy rules would otherwise silently resolve
// to standard arithmetic.  Installation is deliberately lazy rather than
// in an ELF constructor: a constructor in this TU would run before the
// static initializers of the engine's archive-member TUs (.init_array
// order follows link order), and touching the tuner's registries that
// early crashes.  A function-local static sidesteps the ordering problem
// entirely and is thread-safe.
//
// Exports are controlled twice: the shim compiles with
// -fvisibility=hidden, and intercept.map (a linker version script) pins
// the exact exported set under the DCMESH_1.0 version node — CI diffs
// `nm -D` output against tests/intercept/exported_symbols.txt so the
// public ABI cannot drift silently.
//
// DCMESH_INTERCEPT_CHAIN=1 turns the shim into a pure pass-through:
// each entry forwards to the NEXT definition of its own symbol in the
// link chain (dlsym(RTLD_NEXT) — the system BLAS behind the preload)
// instead of the dcmesh engine.  That gives a zero-rebuild A/B baseline:
// the same preloaded binary runs once against dcmesh and once against
// the real BLAS, switched by one env var.  A symbol with no next
// definition warns once and falls back to the engine, so a binary that
// links no BLAS at all still works with the flag set.

#ifndef _GNU_SOURCE
#define _GNU_SOURCE 1
#endif
#include <dlfcn.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

#include "dcmesh/blas/level2.hpp"
#include "dcmesh/blas/rank_k.hpp"
#include "dcmesh/blas/trsm.hpp"
#include "dcmesh/dcmesh_blas.h"
#include "site_identity.hpp"

namespace {

/// CBLAS transpose enum (111/112/113) to the API's trans char; anything
/// else maps to an invalid char the API rejects.
char cblas_trans(int t) {
  switch (t) {
    case 111: return 'N';
    case 112: return 'T';
    case 113: return 'C';
  }
  return '?';
}

/// Fortran TRANSA/TRANSB string (first char, case-insensitive).
char fortran_trans(const char* t) {
  return (t == nullptr || *t == '\0') ? '?' : *t;
}

// CBLAS enum ints to the C++ engine's enums, for the routines (trsm,
// syrk) that have no public C API and forward to the engine directly.
// Out-of-range values throw std::invalid_argument, caught by the same
// xerbla-style handler as engine-side validation failures.

dcmesh::blas::transpose engine_trans(int t) {
  switch (t) {
    case 111: return dcmesh::blas::transpose::none;
    case 112: return dcmesh::blas::transpose::trans;
    case 113: return dcmesh::blas::transpose::conj_trans;
  }
  throw std::invalid_argument("CBLAS trans must be 111/112/113");
}

/// Fortran TRANS character to the engine enum, for the Fortran entries
/// (gemv) that forward to the engine directly.
dcmesh::blas::transpose engine_trans(const char* t) {
  switch (fortran_trans(t)) {
    case 'N': case 'n': return dcmesh::blas::transpose::none;
    case 'T': case 't': return dcmesh::blas::transpose::trans;
    case 'C': case 'c': return dcmesh::blas::transpose::conj_trans;
  }
  throw std::invalid_argument("Fortran TRANS must be N/T/C");
}

dcmesh::blas::side engine_side(int s) {
  switch (s) {
    case 141: return dcmesh::blas::side::left;
    case 142: return dcmesh::blas::side::right;
  }
  throw std::invalid_argument("CBLAS side must be 141/142");
}

dcmesh::blas::uplo engine_uplo(int u) {
  switch (u) {
    case 121: return dcmesh::blas::uplo::upper;
    case 122: return dcmesh::blas::uplo::lower;
  }
  throw std::invalid_argument("CBLAS uplo must be 121/122");
}

dcmesh::blas::diag engine_diag(int d) {
  switch (d) {
    case 131: return dcmesh::blas::diag::non_unit;
    case 132: return dcmesh::blas::diag::unit;
  }
  throw std::invalid_argument("CBLAS diag must be 131/132");
}

void require_layout(int layout) {
  if (layout != 101 && layout != 102) {
    throw std::invalid_argument("CBLAS layout must be 101/102");
  }
}

dcmesh::blas::side flip(dcmesh::blas::side s) {
  return s == dcmesh::blas::side::left ? dcmesh::blas::side::right
                                       : dcmesh::blas::side::left;
}

dcmesh::blas::uplo flip(dcmesh::blas::uplo u) {
  return u == dcmesh::blas::uplo::upper ? dcmesh::blas::uplo::lower
                                        : dcmesh::blas::uplo::upper;
}

/// The engine's trsm/syrk throw instead of returning a status; a dropped
/// call prints the same one-line xerbla-style record as report().
void report_exception(const std::exception& e) {
  std::fprintf(stderr, "dcmesh-intercept: dropped call: %s\n", e.what());
}

void report(int status) {
  if (status != DCMESH_OK) {
    std::fprintf(stderr, "dcmesh-intercept: dropped call: %s\n",
                 dcmesh_last_error());
  }
}

/// One-time arming of the autotuner, run on the first intercepted call
/// (NOT from an ELF constructor — see the header comment).
void ensure_armed() {
  static const bool armed = [] {
    if (dcmesh::intercept::autotune_enabled()) {
      dcmesh_install_autotuner();
    }
    return true;
  }();
  (void)armed;
}

/// Next definition of `name` behind the shim, or nullptr (warning once
/// per symbol — the lookup runs inside a function-local static
/// initializer, so each symbol resolves and warns at most once).
void* chain_next(const char* name) {
  void* fn = ::dlsym(RTLD_NEXT, name);
  if (fn == nullptr) {
    std::fprintf(stderr,
                 "dcmesh-intercept: %s=1 but no \"%s\" behind the shim; "
                 "using the dcmesh engine\n",
                 std::string(dcmesh::intercept::kChainEnvVar).c_str(),
                 name);
  }
  return fn;
}

}  // namespace

/// Pass-through hook, placed at the top of every interposed entry: when
/// chaining is on and the real symbol exists, call it and return.  The
/// dlsym lookup is lazy (first chained call) and cached for the process.
#define DCMESH_TRY_CHAIN(name, ...)                                   \
  if (dcmesh::intercept::chain_enabled()) {                           \
    static auto* const next =                                         \
        reinterpret_cast<decltype(&name)>(chain_next(#name));         \
    if (next != nullptr) {                                            \
      next(__VA_ARGS__);                                              \
      return;                                                         \
    }                                                                 \
  }

extern "C" {

// Shim-specific introspection (exported; used by tests and debuggers).
DCMESH_PUBLIC const char* dcmesh_intercept_site_mode(void) {
  return dcmesh::intercept::name(dcmesh::intercept::active_site_mode());
}

DCMESH_PUBLIC int dcmesh_intercept_autotune(void) {
  return dcmesh::intercept::autotune_enabled() ? 1 : 0;
}

DCMESH_PUBLIC int dcmesh_intercept_chain(void) {
  return dcmesh::intercept::chain_enabled() ? 1 : 0;
}

// ------------------------------------------------------------- CBLAS

DCMESH_PUBLIC void cblas_sgemm(int layout, int transa, int transb, int m,
                               int n, int k, float alpha, const float* a,
                               int lda, const float* b, int ldb, float beta,
                               float* c, int ldc) {
  ensure_armed();
  DCMESH_TRY_CHAIN(cblas_sgemm, layout, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                   c, ldc)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  report(dcmesh_gemm('s', static_cast<dcmesh_layout>(layout),
                     cblas_trans(transa), cblas_trans(transb), m, n, k,
                     &alpha, a, lda, b, ldb, &beta, c, ldc, site, nullptr));
}

DCMESH_PUBLIC void cblas_dgemm(int layout, int transa, int transb, int m,
                               int n, int k, double alpha, const double* a,
                               int lda, const double* b, int ldb,
                               double beta, double* c, int ldc) {
  ensure_armed();
  DCMESH_TRY_CHAIN(cblas_dgemm, layout, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                   c, ldc)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  report(dcmesh_gemm('d', static_cast<dcmesh_layout>(layout),
                     cblas_trans(transa), cblas_trans(transb), m, n, k,
                     &alpha, a, lda, b, ldb, &beta, c, ldc, site, nullptr));
}

DCMESH_PUBLIC void cblas_cgemm(int layout, int transa, int transb, int m,
                               int n, int k, const void* alpha,
                               const void* a, int lda, const void* b,
                               int ldb, const void* beta, void* c, int ldc) {
  ensure_armed();
  DCMESH_TRY_CHAIN(cblas_cgemm, layout, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                   c, ldc)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  report(dcmesh_gemm('c', static_cast<dcmesh_layout>(layout),
                     cblas_trans(transa), cblas_trans(transb), m, n, k,
                     alpha, a, lda, b, ldb, beta, c, ldc, site, nullptr));
}

DCMESH_PUBLIC void cblas_zgemm(int layout, int transa, int transb, int m,
                               int n, int k, const void* alpha,
                               const void* a, int lda, const void* b,
                               int ldb, const void* beta, void* c, int ldc) {
  ensure_armed();
  DCMESH_TRY_CHAIN(cblas_zgemm, layout, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta,
                   c, ldc)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  report(dcmesh_gemm('z', static_cast<dcmesh_layout>(layout),
                     cblas_trans(transa), cblas_trans(transb), m, n, k,
                     alpha, a, lda, b, ldb, beta, c, ldc, site, nullptr));
}

// ----------------------------------------------- CBLAS strided batch

DCMESH_PUBLIC void cblas_sgemm_batch_strided(
    int layout, int transa, int transb, int m, int n, int k, float alpha,
    const float* a, int lda, int stride_a, const float* b, int ldb,
    int stride_b, float beta, float* c, int ldc, int stride_c, int batch) {
  ensure_armed();
  DCMESH_TRY_CHAIN(cblas_sgemm_batch_strided, layout, transa, transb, m, n, k, alpha, a, lda, stride_a, b, ldb,
                   stride_b, beta, c, ldc, stride_c, batch)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  report(dcmesh_gemm_batch_strided(
      's', static_cast<dcmesh_layout>(layout), cblas_trans(transa),
      cblas_trans(transb), m, n, k, &alpha, a, lda, stride_a, b, ldb,
      stride_b, &beta, c, ldc, stride_c, batch, site, nullptr));
}

DCMESH_PUBLIC void cblas_dgemm_batch_strided(
    int layout, int transa, int transb, int m, int n, int k, double alpha,
    const double* a, int lda, int stride_a, const double* b, int ldb,
    int stride_b, double beta, double* c, int ldc, int stride_c,
    int batch) {
  ensure_armed();
  DCMESH_TRY_CHAIN(cblas_dgemm_batch_strided, layout, transa, transb, m, n, k, alpha, a, lda, stride_a, b, ldb,
                   stride_b, beta, c, ldc, stride_c, batch)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  report(dcmesh_gemm_batch_strided(
      'd', static_cast<dcmesh_layout>(layout), cblas_trans(transa),
      cblas_trans(transb), m, n, k, &alpha, a, lda, stride_a, b, ldb,
      stride_b, &beta, c, ldc, stride_c, batch, site, nullptr));
}

DCMESH_PUBLIC void cblas_cgemm_batch_strided(
    int layout, int transa, int transb, int m, int n, int k,
    const void* alpha, const void* a, int lda, int stride_a, const void* b,
    int ldb, int stride_b, const void* beta, void* c, int ldc, int stride_c,
    int batch) {
  ensure_armed();
  DCMESH_TRY_CHAIN(cblas_cgemm_batch_strided, layout, transa, transb, m, n, k, alpha, a, lda, stride_a, b, ldb,
                   stride_b, beta, c, ldc, stride_c, batch)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  report(dcmesh_gemm_batch_strided(
      'c', static_cast<dcmesh_layout>(layout), cblas_trans(transa),
      cblas_trans(transb), m, n, k, alpha, a, lda, stride_a, b, ldb,
      stride_b, beta, c, ldc, stride_c, batch, site, nullptr));
}

DCMESH_PUBLIC void cblas_zgemm_batch_strided(
    int layout, int transa, int transb, int m, int n, int k,
    const void* alpha, const void* a, int lda, int stride_a, const void* b,
    int ldb, int stride_b, const void* beta, void* c, int ldc, int stride_c,
    int batch) {
  ensure_armed();
  DCMESH_TRY_CHAIN(cblas_zgemm_batch_strided, layout, transa, transb, m, n, k, alpha, a, lda, stride_a, b, ldb,
                   stride_b, beta, c, ldc, stride_c, batch)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  report(dcmesh_gemm_batch_strided(
      'z', static_cast<dcmesh_layout>(layout), cblas_trans(transa),
      cblas_trans(transb), m, n, k, alpha, a, lda, stride_a, b, ldb,
      stride_b, beta, c, ldc, stride_c, batch, site, nullptr));
}

// ----------------------------------------- CBLAS trsm / syrk (v1.1)
// No public C API exists for these; they forward straight to the C++
// engine (statically linked into the shim).  The engine is column-major
// only, so CblasRowMajor maps through the transpose identities:
//   trsm: op(A)X = aB row-major  ==  X^T op(A)^T = aB^T col-major
//         -> flip side, flip uplo, swap m/n (op and diag unchanged);
//   syrk: C = a op(A)op(A)^T + bC row-major == its transpose col-major
//         -> flip uplo, flip trans (N <-> T).
// A failed call prints one stderr line and leaves B/C untouched, the
// same xerbla-style contract as the gemm entries.

DCMESH_PUBLIC void cblas_strsm(int layout, int side_v, int uplo_v,
                               int transa, int diag_v, int m, int n,
                               float alpha, const float* a, int lda,
                               float* b, int ldb) {
  ensure_armed();
  DCMESH_TRY_CHAIN(cblas_strsm, layout, side_v, uplo_v, transa, diag_v, m, n, alpha, a, lda, b,
                   ldb)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  try {
    require_layout(layout);
    auto s = engine_side(side_v);
    auto u = engine_uplo(uplo_v);
    const auto t = engine_trans(transa);
    const auto d = engine_diag(diag_v);
    int mm = m;
    int nn = n;
    if (layout == 101) {
      s = flip(s);
      u = flip(u);
      std::swap(mm, nn);
    }
    dcmesh::blas::trsm<float>(s, u, t, d, mm, nn, alpha, a, lda, b, ldb,
                              site);
  } catch (const std::exception& e) {
    report_exception(e);
  }
}

DCMESH_PUBLIC void cblas_dtrsm(int layout, int side_v, int uplo_v,
                               int transa, int diag_v, int m, int n,
                               double alpha, const double* a, int lda,
                               double* b, int ldb) {
  ensure_armed();
  DCMESH_TRY_CHAIN(cblas_dtrsm, layout, side_v, uplo_v, transa, diag_v, m, n, alpha, a, lda, b,
                   ldb)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  try {
    require_layout(layout);
    auto s = engine_side(side_v);
    auto u = engine_uplo(uplo_v);
    const auto t = engine_trans(transa);
    const auto d = engine_diag(diag_v);
    int mm = m;
    int nn = n;
    if (layout == 101) {
      s = flip(s);
      u = flip(u);
      std::swap(mm, nn);
    }
    dcmesh::blas::trsm<double>(s, u, t, d, mm, nn, alpha, a, lda, b, ldb,
                               site);
  } catch (const std::exception& e) {
    report_exception(e);
  }
}

DCMESH_PUBLIC void cblas_ssyrk(int layout, int uplo_v, int transa, int n,
                               int k, float alpha, const float* a, int lda,
                               float beta, float* c, int ldc) {
  ensure_armed();
  DCMESH_TRY_CHAIN(cblas_ssyrk, layout, uplo_v, transa, n, k, alpha, a, lda, beta, c, ldc)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  try {
    require_layout(layout);
    auto u = engine_uplo(uplo_v);
    // Real syrk: CblasConjTrans is the same operation as CblasTrans.
    auto t = engine_trans(transa) == dcmesh::blas::transpose::none
                 ? dcmesh::blas::transpose::none
                 : dcmesh::blas::transpose::trans;
    if (layout == 101) {
      u = flip(u);
      t = t == dcmesh::blas::transpose::none
              ? dcmesh::blas::transpose::trans
              : dcmesh::blas::transpose::none;
    }
    dcmesh::blas::syrk<float>(u, t, n, k, alpha, a, lda, beta, c, ldc,
                              site);
  } catch (const std::exception& e) {
    report_exception(e);
  }
}

DCMESH_PUBLIC void cblas_dsyrk(int layout, int uplo_v, int transa, int n,
                               int k, double alpha, const double* a,
                               int lda, double beta, double* c, int ldc) {
  ensure_armed();
  DCMESH_TRY_CHAIN(cblas_dsyrk, layout, uplo_v, transa, n, k, alpha, a, lda, beta, c, ldc)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  try {
    require_layout(layout);
    auto u = engine_uplo(uplo_v);
    auto t = engine_trans(transa) == dcmesh::blas::transpose::none
                 ? dcmesh::blas::transpose::none
                 : dcmesh::blas::transpose::trans;
    if (layout == 101) {
      u = flip(u);
      t = t == dcmesh::blas::transpose::none
              ? dcmesh::blas::transpose::trans
              : dcmesh::blas::transpose::none;
    }
    dcmesh::blas::syrk<double>(u, t, n, k, alpha, a, lda, beta, c, ldc,
                               site);
  } catch (const std::exception& e) {
    report_exception(e);
  }
}

// ------------------------------------------------ CBLAS gemv (v1.2)
// The level-2 matrix-vector surface, forwarded to the engine like
// trsm/syrk (no public C API).  The engine is column-major only, so
// CblasRowMajor maps through the transpose identity: a row-major m x n
// A is the column-major n x m A^T with the same lda, hence
//   op=N  ->  y = A x   = (A^T)^T x  ->  swap m/n, trans
//   op=T  ->  y = A^T x = (A^T)   x  ->  swap m/n, none
// ConjTrans equals Trans for the real types exported here.

DCMESH_PUBLIC void cblas_sgemv(int layout, int transa, int m, int n,
                               float alpha, const float* a, int lda,
                               const float* x, int incx, float beta,
                               float* y, int incy) {
  ensure_armed();
  DCMESH_TRY_CHAIN(cblas_sgemv, layout, transa, m, n, alpha, a, lda, x, incx, beta, y, incy)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  try {
    require_layout(layout);
    auto t = engine_trans(transa) == dcmesh::blas::transpose::none
                 ? dcmesh::blas::transpose::none
                 : dcmesh::blas::transpose::trans;
    int mm = m;
    int nn = n;
    if (layout == 101) {
      t = t == dcmesh::blas::transpose::none
              ? dcmesh::blas::transpose::trans
              : dcmesh::blas::transpose::none;
      std::swap(mm, nn);
    }
    dcmesh::blas::gemv<float>(t, mm, nn, alpha, a, lda, x, incx, beta, y,
                              incy, site);
  } catch (const std::exception& e) {
    report_exception(e);
  }
}

DCMESH_PUBLIC void cblas_dgemv(int layout, int transa, int m, int n,
                               double alpha, const double* a, int lda,
                               const double* x, int incx, double beta,
                               double* y, int incy) {
  ensure_armed();
  DCMESH_TRY_CHAIN(cblas_dgemv, layout, transa, m, n, alpha, a, lda, x, incx, beta, y, incy)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  try {
    require_layout(layout);
    auto t = engine_trans(transa) == dcmesh::blas::transpose::none
                 ? dcmesh::blas::transpose::none
                 : dcmesh::blas::transpose::trans;
    int mm = m;
    int nn = n;
    if (layout == 101) {
      t = t == dcmesh::blas::transpose::none
              ? dcmesh::blas::transpose::trans
              : dcmesh::blas::transpose::none;
      std::swap(mm, nn);
    }
    dcmesh::blas::gemv<double>(t, mm, nn, alpha, a, lda, x, incx, beta, y,
                               incy, site);
  } catch (const std::exception& e) {
    report_exception(e);
  }
}

// ---------------------------------------------------------- Fortran
// Column-major by definition; INTEGER arguments arrive by reference.

DCMESH_PUBLIC void sgemm_(const char* transa, const char* transb,
                          const int* m, const int* n, const int* k,
                          const float* alpha, const float* a,
                          const int* lda, const float* b, const int* ldb,
                          const float* beta, float* c, const int* ldc) {
  ensure_armed();
  DCMESH_TRY_CHAIN(sgemm_, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  report(dcmesh_gemm('s', DCMESH_LAYOUT_COL_MAJOR, fortran_trans(transa),
                     fortran_trans(transb), *m, *n, *k, alpha, a, *lda, b,
                     *ldb, beta, c, *ldc, site, nullptr));
}

DCMESH_PUBLIC void dgemm_(const char* transa, const char* transb,
                          const int* m, const int* n, const int* k,
                          const double* alpha, const double* a,
                          const int* lda, const double* b, const int* ldb,
                          const double* beta, double* c, const int* ldc) {
  ensure_armed();
  DCMESH_TRY_CHAIN(dgemm_, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  report(dcmesh_gemm('d', DCMESH_LAYOUT_COL_MAJOR, fortran_trans(transa),
                     fortran_trans(transb), *m, *n, *k, alpha, a, *lda, b,
                     *ldb, beta, c, *ldc, site, nullptr));
}

DCMESH_PUBLIC void cgemm_(const char* transa, const char* transb,
                          const int* m, const int* n, const int* k,
                          const void* alpha, const void* a, const int* lda,
                          const void* b, const int* ldb, const void* beta,
                          void* c, const int* ldc) {
  ensure_armed();
  DCMESH_TRY_CHAIN(cgemm_, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  report(dcmesh_gemm('c', DCMESH_LAYOUT_COL_MAJOR, fortran_trans(transa),
                     fortran_trans(transb), *m, *n, *k, alpha, a, *lda, b,
                     *ldb, beta, c, *ldc, site, nullptr));
}

DCMESH_PUBLIC void zgemm_(const char* transa, const char* transb,
                          const int* m, const int* n, const int* k,
                          const void* alpha, const void* a, const int* lda,
                          const void* b, const int* ldb, const void* beta,
                          void* c, const int* ldc) {
  ensure_armed();
  DCMESH_TRY_CHAIN(zgemm_, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  report(dcmesh_gemm('z', DCMESH_LAYOUT_COL_MAJOR, fortran_trans(transa),
                     fortran_trans(transb), *m, *n, *k, alpha, a, *lda, b,
                     *ldb, beta, c, *ldc, site, nullptr));
}

DCMESH_PUBLIC void sgemv_(const char* trans, const int* m, const int* n,
                          const float* alpha, const float* a,
                          const int* lda, const float* x, const int* incx,
                          const float* beta, float* y, const int* incy) {
  ensure_armed();
  DCMESH_TRY_CHAIN(sgemv_, trans, m, n, alpha, a, lda, x, incx, beta, y, incy)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  try {
    // Real gemv: 'C' is the same operation as 'T'.
    const auto t = engine_trans(trans) == dcmesh::blas::transpose::none
                       ? dcmesh::blas::transpose::none
                       : dcmesh::blas::transpose::trans;
    dcmesh::blas::gemv<float>(t, *m, *n, *alpha, a, *lda, x, *incx, *beta,
                              y, *incy, site);
  } catch (const std::exception& e) {
    report_exception(e);
  }
}

DCMESH_PUBLIC void dgemv_(const char* trans, const int* m, const int* n,
                          const double* alpha, const double* a,
                          const int* lda, const double* x, const int* incx,
                          const double* beta, double* y, const int* incy) {
  ensure_armed();
  DCMESH_TRY_CHAIN(dgemv_, trans, m, n, alpha, a, lda, x, incx, beta, y, incy)
  const char* site =
      dcmesh::intercept::site_for(__builtin_return_address(0));
  try {
    const auto t = engine_trans(trans) == dcmesh::blas::transpose::none
                       ? dcmesh::blas::transpose::none
                       : dcmesh::blas::transpose::trans;
    dcmesh::blas::gemv<double>(t, *m, *n, *alpha, a, *lda, x, *incx, *beta,
                               y, *incy, site);
  } catch (const std::exception& e) {
    report_exception(e);
  }
}

}  // extern "C"
