#pragma once
// site_identity.hpp — return-address call-site naming for the
// interposition shim.
//
// The policy engine, metrics registry, and wisdom cache all key on a
// call-site tag, which in-tree callers provide by hand.  An unmodified
// third-party binary cannot: its identity must be DERIVED.  Each
// interposed entry point captures __builtin_return_address(0) — the
// instruction after the call in the application — and this module turns
// that address into a stable, cached tag:
//
//   addr   (default)  "intercept/<module>+0x<offset>"  — the return
//                     address relative to its module's load base
//                     (dladdr), so the tag survives ASLR and is identical
//                     run to run: wisdom stays warm across processes.
//   symbol            "intercept/<module>:<function>" — all call sites
//                     inside one function share a tag (dladdr
//                     symbolization; falls back to addr form when the
//                     symbol is not exported).
//   single            "intercept/app" — one tag for the whole process,
//                     the coarse "just give everything one policy" knob.
//
// selected by DCMESH_INTERCEPT_SITE_MODE.  Parsing follows the repo's
// env-var convention: malformed values warn ONCE per value to stderr and
// fall back to the default; nothing ever throws on the interposed path.

#include <string_view>

namespace dcmesh::intercept {

enum class site_mode { addr, symbol, single };

/// Display name: "addr", "symbol", "single".
[[nodiscard]] const char* name(site_mode mode) noexcept;

/// Mode requested by DCMESH_INTERCEPT_SITE_MODE (re-read on every query,
/// cached on the raw text; malformed values warn once and yield addr).
[[nodiscard]] site_mode active_site_mode();

/// Stable site tag for `return_address` under the active mode.  The
/// returned pointer stays valid for the process lifetime (entries are
/// cached and never evicted), so it can be handed to the descriptor API
/// as a borrowed string.  Thread-safe.
[[nodiscard]] const char* site_for(void* return_address);

/// DCMESH_INTERCEPT_AUTOTUNE: install the autotuner at shim load so AUTO
/// policy rules work under pure LD_PRELOAD (default on).  Accepts
/// 0/1/on/off/true/false/yes/no, case-insensitive; malformed values warn
/// once and yield the default.
[[nodiscard]] bool autotune_enabled();

/// DCMESH_INTERCEPT_CHAIN: forward interposed calls to the next BLAS in
/// the link chain (dlsym(RTLD_NEXT)) instead of the dcmesh engine —
/// the zero-rebuild baseline for A/B runs against the system BLAS
/// (default off).  Same 0/1/on/off/... parsing as autotune_enabled().
[[nodiscard]] bool chain_enabled();

inline constexpr std::string_view kSiteModeEnvVar =
    "DCMESH_INTERCEPT_SITE_MODE";
inline constexpr std::string_view kAutotuneEnvVar =
    "DCMESH_INTERCEPT_AUTOTUNE";
inline constexpr std::string_view kChainEnvVar =
    "DCMESH_INTERCEPT_CHAIN";

/// Every derived tag starts with this, so one glob ("intercept/*")
/// addresses all interposed calls in a policy.
inline constexpr std::string_view kSitePrefix = "intercept/";

}  // namespace dcmesh::intercept
