#include "site_identity.hpp"

#ifndef _GNU_SOURCE
#define _GNU_SOURCE 1
#endif
#include <dlfcn.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>

#include "dcmesh/common/env.hpp"

namespace dcmesh::intercept {
namespace {

// All state behind one mutex: the env caches (reparsed only when the raw
// text changes, warning once per malformed value) and the address->tag
// cache.  Map values are never erased, so the returned c_str() pointers
// stay valid for the process lifetime (unordered_map is node-based:
// rehashing moves no values).
std::mutex g_mutex;

struct env_cache {
  bool initialized = false;
  std::string text;
};

env_cache g_mode_cache;           // guarded
site_mode g_mode = site_mode::addr;  // guarded

env_cache g_autotune_cache;       // guarded
bool g_autotune = true;           // guarded

env_cache g_chain_cache;          // guarded
bool g_chain = false;             // guarded

std::unordered_map<std::uint64_t, std::string> g_sites;  // guarded

site_mode parse_site_mode_locked(const std::string& text) {
  const std::string token = to_upper(trim(text));
  if (token.empty() || token == "ADDR") return site_mode::addr;
  if (token == "SYMBOL") return site_mode::symbol;
  if (token == "SINGLE") return site_mode::single;
  std::fprintf(stderr,
               "dcmesh-intercept: ignoring malformed %s=\"%s\" "
               "(expected addr|symbol|single); using addr\n",
               std::string(kSiteModeEnvVar).c_str(), text.c_str());
  return site_mode::addr;
}

bool parse_switch_locked(const std::string& text, std::string_view var,
                         bool fallback) {
  const std::string token = to_upper(trim(text));
  if (token.empty()) return fallback;
  if (token == "1" || token == "ON" || token == "TRUE" || token == "YES") {
    return true;
  }
  if (token == "0" || token == "OFF" || token == "FALSE" || token == "NO") {
    return false;
  }
  std::fprintf(stderr,
               "dcmesh-intercept: ignoring malformed %s=\"%s\" "
               "(expected 0|1|on|off|true|false|yes|no); using %s\n",
               std::string(var).c_str(), text.c_str(),
               fallback ? "on" : "off");
  return fallback;
}

site_mode active_site_mode_locked() {
  const std::string text = env_get(kSiteModeEnvVar).value_or("");
  if (!g_mode_cache.initialized || text != g_mode_cache.text) {
    g_mode_cache.initialized = true;
    g_mode_cache.text = text;
    g_mode = parse_site_mode_locked(text);
  }
  return g_mode;
}

std::string basename_of(const char* path) {
  if (path == nullptr || *path == '\0') return "anon";
  const std::string_view s(path);
  const auto slash = s.find_last_of('/');
  const std::string_view base =
      slash == std::string_view::npos ? s : s.substr(slash + 1);
  return base.empty() ? std::string("anon") : std::string(base);
}

std::string derive_site(void* return_address, site_mode mode) {
  if (mode == site_mode::single) {
    return std::string(kSitePrefix) + "app";
  }
  Dl_info info{};
  const bool resolved = ::dladdr(return_address, &info) != 0;
  char buf[64];
  if (!resolved || info.dli_fbase == nullptr) {
    // No module info: fall back to the absolute address (not ASLR-stable,
    // but still distinct and consistent within one run).
    std::snprintf(buf, sizeof buf, "0x%" PRIxPTR,
                  reinterpret_cast<std::uintptr_t>(return_address));
    return std::string(kSitePrefix) + buf;
  }
  const std::string module = basename_of(info.dli_fname);
  if (mode == site_mode::symbol && info.dli_sname != nullptr) {
    return std::string(kSitePrefix) + module + ":" + info.dli_sname;
  }
  // addr mode (and the symbol-not-found fallback): module-relative
  // offset, stable across runs under ASLR.
  const auto offset = reinterpret_cast<std::uintptr_t>(return_address) -
                      reinterpret_cast<std::uintptr_t>(info.dli_fbase);
  std::snprintf(buf, sizeof buf, "+0x%" PRIxPTR, offset);
  return std::string(kSitePrefix) + module + buf;
}

}  // namespace

const char* name(site_mode mode) noexcept {
  switch (mode) {
    case site_mode::addr: return "addr";
    case site_mode::symbol: return "symbol";
    case site_mode::single: return "single";
  }
  return "addr";
}

site_mode active_site_mode() {
  std::lock_guard lock(g_mutex);
  return active_site_mode_locked();
}

const char* site_for(void* return_address) {
  std::lock_guard lock(g_mutex);
  const site_mode mode = active_site_mode_locked();
  const auto key =
      (static_cast<std::uint64_t>(
           reinterpret_cast<std::uintptr_t>(return_address))
       << 2) |
      static_cast<std::uint64_t>(mode);
  auto it = g_sites.find(key);
  if (it == g_sites.end()) {
    it = g_sites.emplace(key, derive_site(return_address, mode)).first;
  }
  return it->second.c_str();
}

bool autotune_enabled() {
  std::lock_guard lock(g_mutex);
  const std::string text = env_get(kAutotuneEnvVar).value_or("");
  if (!g_autotune_cache.initialized || text != g_autotune_cache.text) {
    g_autotune_cache.initialized = true;
    g_autotune_cache.text = text;
    g_autotune = parse_switch_locked(text, kAutotuneEnvVar, true);
  }
  return g_autotune;
}

bool chain_enabled() {
  std::lock_guard lock(g_mutex);
  const std::string text = env_get(kChainEnvVar).value_or("");
  if (!g_chain_cache.initialized || text != g_chain_cache.text) {
    g_chain_cache.initialized = true;
    g_chain_cache.text = text;
    g_chain = parse_switch_locked(text, kChainEnvVar, false);
  }
  return g_chain;
}

}  // namespace dcmesh::intercept
