#pragma once
// output.hpp — QD-step output records in the DCMESH log format.
//
// The artifact appendix: "In order from left to right, these are ekin,
// epot, etot, eexc, nexc, Aext, and javg."  These helpers render qd_record
// rows in that column order so downstream analysis matches the paper's.

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "dcmesh/lfd/engine.hpp"

namespace dcmesh::core {

/// One formatted output line: "t ekin epot etot eexc nexc Aext javg".
[[nodiscard]] std::string format_qd_record(const lfd::qd_record& record);

/// Column header matching format_qd_record.
[[nodiscard]] std::string qd_header();

/// Write header + all records to a stream.
void write_qd_log(std::ostream& os, std::span<const lfd::qd_record> records);

/// Extract one observable column by name ("ekin", "epot", "etot", "eexc",
/// "nexc", "aext", "javg", "t"); throws std::invalid_argument otherwise.
[[nodiscard]] std::vector<double> extract_column(
    std::span<const lfd::qd_record> records, const std::string& column);

}  // namespace dcmesh::core
