#pragma once
// checkpoint.hpp — save/restore a running simulation.
//
// Long DCMESH campaigns (the paper's accuracy runs take ~2 days per mode
// on real hardware) need restart capability.  A checkpoint holds the run
// configuration (as a deck), the ionic state, and the engine's propagation
// state; restoring reproduces the continuation bit-for-bit under the same
// compute mode.
//
// Format v2 prefixes the payload with its size and an FNV-1a-64 checksum:
// any corruption (bit flip, truncation) is rejected at load time.  File
// saves are crash-safe — temp file + fsync + atomic rename — so a crash
// mid-save never destroys the previous checkpoint.

#include <iosfwd>
#include <string>

#include "dcmesh/core/driver.hpp"

namespace dcmesh::core {

/// Serialize the checkpoint payload (config deck, ionic state, engine
/// propagation state) WITHOUT the v2 framing.  This is the part that must
/// read the live simulation state, so it runs synchronously on the
/// driver's thread; the framing (seal_checkpoint) is pure on the payload
/// bytes and may run on a pool worker, off the step critical path.
[[nodiscard]] std::string serialize_checkpoint_payload(const driver& sim);

/// Frame a payload into a complete v2 checkpoint blob: magic, version,
/// size, FNV-1a-64 checksum, then the payload.  Pure function of the
/// bytes — safe to call from any thread.
[[nodiscard]] std::string seal_checkpoint(const std::string& payload);

/// Write a checkpoint of `sim` to a binary stream
/// (serialize_checkpoint_payload + seal_checkpoint, synchronously).
void save_checkpoint(const driver& sim, std::ostream& os);

/// Write a checkpoint to a file; throws std::runtime_error on I/O failure.
void save_checkpoint_file(const driver& sim, const std::string& path);

/// Reconstruct a driver from a checkpoint stream: the config deck is
/// parsed, the driver constructed (including its deterministic FP64 SCF
/// initialization), and then the ionic and electronic state are replaced
/// by the checkpointed ones.  Throws std::runtime_error on malformed
/// input.
[[nodiscard]] driver load_checkpoint(std::istream& is);

/// Load a checkpoint from a file.
[[nodiscard]] driver load_checkpoint_file(const std::string& path);

/// Restore a checkpoint *into an existing driver* (in place): verifies
/// the checksum and that the checkpoint's config deck matches `sim`'s,
/// then replaces the ionic and electronic state.  This is the rollback
/// path of the resilience subsystem — the driver replays a series from
/// its in-memory checkpoint ring without reconstructing itself.  Throws
/// std::runtime_error on corruption or config mismatch.
void restore_checkpoint(driver& sim, std::istream& is);

}  // namespace dcmesh::core
