#pragma once
// driver.hpp — the DCMESH driver: QXMD (CPU, FP64) + LFD (device, FP32/64)
// with multiple time-scale splitting.
//
// One MD step = one *series* of QD steps on the fast electronic time scale,
// followed by the FP64 SCF wave-function refresh, the ionic velocity-Verlet
// step, and a shadow-dynamics synchronization.  This is the paper's
// structure: "after every series of 500 quantum dynamical steps (LFD
// portion at FP32), we execute Self-Consistent Field (SCF) at FP64 to
// update the wave function and then proceed to the next series".

#include <iosfwd>
#include <memory>
#include <variant>
#include <vector>

#include "dcmesh/core/config.hpp"
#include "dcmesh/lfd/engine.hpp"
#include "dcmesh/qxmd/shadow.hpp"
#include "dcmesh/qxmd/verlet.hpp"
#include "dcmesh/trace/unitrace.hpp"

namespace dcmesh::core {

/// Summary of one completed series (MD step).
struct series_report {
  int qd_steps = 0;
  qxmd::scf_report scf;          ///< Drift repaired by the FP64 refresh.
  double ion_potential_energy = 0.0;
  double ion_kinetic_energy = 0.0;
  bool wavefunction_transferred = false;  ///< Shadow-dynamics sync result.
};

/// Owns the full simulation state and advances it.
class driver {
 public:
  explicit driver(run_config config);

  /// Run one series: qd_steps_per_series QD steps, SCF refresh, MD step,
  /// shadow sync.  QD records are appended to records().
  series_report run_series();

  /// Run all configured series.  Returns the per-series reports.
  std::vector<series_report> run();

  /// Advance a single QD step (exposed for fine-grained tests/examples).
  lfd::qd_record qd_step();

  [[nodiscard]] const run_config& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<lfd::qd_record>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] const qxmd::atom_system& atoms() const noexcept {
    return atoms_;
  }
  [[nodiscard]] const qxmd::shadow_ledger& shadow() const noexcept {
    return shadow_;
  }
  [[nodiscard]] trace::unitrace& tracer() noexcept { return tracer_; }
  [[nodiscard]] const std::vector<double>& initial_band_energies()
      const noexcept {
    return band_energies_;
  }
  /// Simulated time in atomic units.
  [[nodiscard]] double time() const noexcept;

  /// Serialize the engine's propagation state (checkpoint support; the
  /// ionic state and config are handled by core::save_checkpoint).
  void save_propagation_state(std::ostream& os) const;

  /// Restore ionic + electronic state from a checkpoint; rebuilds the
  /// local potential the device Hamiltonian sees and clears records().
  void restore_propagation_state(const qxmd::atom_system& atoms,
                                 std::istream& is);

 private:
  template <typename R>
  lfd::lfd_engine<R>& engine();

  /// Rebuild the device-side local potential: ionic wells plus (when
  /// config.hartree > 0) the Poisson-solved mean field of the current
  /// electron density.
  void rebuild_device_potential();

  run_config config_;
  mesh::grid3d grid_;
  qxmd::atom_system atoms_;
  qxmd::verlet_integrator integrator_;
  qxmd::shadow_ledger shadow_;
  trace::unitrace tracer_;
  std::vector<double> band_energies_;
  // One of the two LFD precision builds, selected by config.
  std::variant<std::unique_ptr<lfd::lfd_engine<float>>,
               std::unique_ptr<lfd::lfd_engine<double>>>
      engine_;
  std::vector<lfd::qd_record> records_;
};

}  // namespace dcmesh::core
