#pragma once
// driver.hpp — the DCMESH driver: QXMD (CPU, FP64) + LFD (device, FP32/64)
// with multiple time-scale splitting.
//
// One MD step = one *series* of QD steps on the fast electronic time scale,
// followed by the FP64 SCF wave-function refresh, the ionic velocity-Verlet
// step, and a shadow-dynamics synchronization.  This is the paper's
// structure: "after every series of 500 quantum dynamical steps (LFD
// portion at FP32), we execute Self-Consistent Field (SCF) at FP64 to
// update the wave function and then proceed to the next series".

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "dcmesh/core/config.hpp"
#include "dcmesh/lfd/engine.hpp"
#include "dcmesh/qxmd/shadow.hpp"
#include "dcmesh/qxmd/verlet.hpp"
#include "dcmesh/resil/checkpoint_ring.hpp"
#include "dcmesh/sched/pool.hpp"
#include "dcmesh/trace/unitrace.hpp"

namespace dcmesh::core {

/// Summary of one completed series (MD step).
struct series_report {
  int qd_steps = 0;
  qxmd::scf_report scf;          ///< Drift repaired by the FP64 refresh.
  double ion_potential_energy = 0.0;
  double ion_kinetic_energy = 0.0;
  bool wavefunction_transferred = false;  ///< Shadow-dynamics sync result.
  /// Rollback-and-replay attempts this series needed before its step
  /// invariants held (0 = clean first pass; resilience subsystem).
  int replays = 0;
};

/// Cumulative resilience activity of one driver (DCMESH_HEALTH != off).
struct resilience_stats {
  std::uint64_t checkpoints = 0;  ///< Ring checkpoints taken.
  std::uint64_t violations = 0;   ///< Step-invariant violations observed.
  std::uint64_t rollbacks = 0;    ///< Series rolled back and replayed.
  std::string last_violation;     ///< Detail of the most recent violation.
};

/// Owns the full simulation state and advances it.
class driver {
 public:
  explicit driver(run_config config);

  /// Run one series: qd_steps_per_series QD steps, SCF refresh, MD step,
  /// shadow sync.  QD records are appended to records().
  ///
  /// When DCMESH_HEALTH != off the series is resilient: the state is
  /// checkpointed to an in-memory ring first; a step-invariant violation
  /// (engine norm drift, non-finite/unbounded observables, ekin jump)
  /// rolls the state back and replays the series with the LFD sites'
  /// precision promoted one ladder step per attempt, held for a few
  /// series before the fast mode is re-tried.  Throws std::runtime_error
  /// when replays are exhausted.
  series_report run_series();

  /// Run all configured series.  Returns the per-series reports.
  std::vector<series_report> run();

  /// Advance a single QD step (exposed for fine-grained tests/examples).
  lfd::qd_record qd_step();

  [[nodiscard]] const run_config& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<lfd::qd_record>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] const qxmd::atom_system& atoms() const noexcept {
    return atoms_;
  }
  [[nodiscard]] const qxmd::shadow_ledger& shadow() const noexcept {
    return shadow_;
  }
  [[nodiscard]] trace::unitrace& tracer() noexcept { return tracer_; }
  [[nodiscard]] const std::vector<double>& initial_band_energies()
      const noexcept {
    return band_energies_;
  }
  /// Simulated time in atomic units.
  [[nodiscard]] double time() const noexcept;

  /// Cumulative resilience activity (checkpoints, violations, rollbacks).
  [[nodiscard]] const resilience_stats& resilience() const noexcept {
    return resil_stats_;
  }

  /// Serialize the engine's propagation state (checkpoint support; the
  /// ionic state and config are handled by core::save_checkpoint).
  void save_propagation_state(std::ostream& os) const;

  /// Restore ionic + electronic state from a checkpoint; rebuilds the
  /// local potential the device Hamiltonian sees and clears records().
  void restore_propagation_state(const qxmd::atom_system& atoms,
                                 std::istream& is);

 private:
  template <typename R>
  lfd::lfd_engine<R>& engine();

  /// Rebuild the device-side local potential: ionic wells plus (when
  /// config.hartree > 0) the Poisson-solved mean field of the current
  /// electron density.
  void rebuild_device_potential();

  /// The series body (QD steps + SCF + MD + shadow sync), shared by the
  /// plain and the resilient run_series paths.
  series_report run_series_impl();

  /// Step-invariant verdict for the records appended since
  /// `series_start_record` ("" = healthy): pops the engine's violation
  /// flag, then checks each record for a bounded relative ekin jump.
  [[nodiscard]] std::string check_series_health(
      std::size_t series_start_record);

  /// Restore the newest ring checkpoint in place and truncate records()
  /// back to the checkpoint point.  Quiesces the step scheduler's pool
  /// first: no in-flight task may touch engine state across a restore.
  void rollback_to_ring();

  /// Join the double-buffered checkpoint sealer, if one is in flight.
  /// Must run before any ring_ access and before run_series returns.
  void wait_pending_checkpoint();

  run_config config_;
  mesh::grid3d grid_;
  qxmd::atom_system atoms_;
  qxmd::verlet_integrator integrator_;
  qxmd::shadow_ledger shadow_;
  trace::unitrace tracer_;
  std::vector<double> band_energies_;
  // One of the two LFD precision builds, selected by config.
  std::variant<std::unique_ptr<lfd::lfd_engine<float>>,
               std::unique_ptr<lfd::lfd_engine<double>>>
      engine_;
  std::vector<lfd::qd_record> records_;
  resil::checkpoint_ring ring_{4};  ///< Rollback targets (newest wins).
  /// Double-buffered checkpoint sealer: under DCMESH_SCHED=pool the
  /// checksum/framing of the series checkpoint runs as a pool job
  /// overlapped with the series' QD steps; every ring_ access joins it
  /// first (a default-constructed job is already done).
  sched::job pending_checkpoint_;
  resilience_stats resil_stats_;
  std::uint64_t series_index_ = 0;  ///< Completed series (ring labels).
};

}  // namespace dcmesh::core
