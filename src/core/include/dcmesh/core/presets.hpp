#pragma once
// presets.hpp — the paper's systems plus scaled equivalents.
//
// Table V: 40 atoms / 64^3 mesh / 256 orbitals and 135 atoms / 96^3 mesh /
// 1024 orbitals (the largest fitting one 64 GB stack).  The paper-size
// presets parameterize the *device performance model*; running their
// numerics on a laptop CPU is neither feasible nor needed (DESIGN.md,
// substitution table).  The scaled presets preserve the error mechanism —
// the paper's own Sec. V-B argues relative BLAS error is independent of
// matrix size — at CPU-tractable sizes for the accuracy experiments.

#include <string_view>
#include <vector>

#include "dcmesh/core/config.hpp"

namespace dcmesh::core {

/// Named systems.
enum class paper_system {
  pto40,        ///< Paper: 40 atoms, 64^3, Norb 256, Nocc 128.
  pto135,       ///< Paper: 135 atoms, 96^3, Norb 1024, Nocc 432.
  pto40_scaled, ///< CPU-tractable analogue of pto40 (accuracy benches).
  pto135_scaled,///< CPU-tractable analogue of pto135 (accuracy benches).
  tiny,         ///< Integration-test size (sub-second runs).
};

/// Short name ("pto40", ...).
[[nodiscard]] std::string_view name(paper_system system) noexcept;

/// Full run configuration for a preset (paper Table III dynamics values
/// for the paper systems; proportionally shortened for scaled ones).
[[nodiscard]] run_config preset(paper_system system);

/// All presets (for enumeration in benches/tests).
[[nodiscard]] std::vector<paper_system> all_presets();

/// The occupied-orbital count the paper's Table VII fixes for the 40-atom
/// system (m = 128), reused when sweeping Norb in Fig 3b.
inline constexpr std::size_t kPto40Nocc = 128;

}  // namespace dcmesh::core
