#pragma once
// config.hpp — run configuration and the lfd.in-style deck parser.
//
// DCMESH is configured by small text input decks (PTOquick.dc, CONFIG,
// lfd.in in the paper's artifact).  This reproduction reads an equivalent
// "key = value" deck; every knob also has a programmatic field.  Switching
// BLAS precision modes deliberately does NOT appear here — that is done
// via the MKL_BLAS_COMPUTE_MODE environment variable, preserving the
// paper's "no source code changes" property.

#include <iosfwd>
#include <string>

#include "dcmesh/mesh/laser.hpp"

namespace dcmesh::core {

/// LFD floating-point build variant (the paper's two builds).
enum class lfd_precision_level {
  fp32,  ///< Mixed-precision build: FP32 LFD (+ env-selected BLAS modes).
  fp64,  ///< Double-precision build.
};

/// Local-propagator choice (see lfd::propagator_kind).
enum class propagator_choice {
  taylor,  ///< Order-4 Taylor expansion of the full local Hamiltonian.
  strang,  ///< Strang split: exact potential phase + Taylor stencil part.
};

/// Complete configuration of one DCMESH run.
struct run_config {
  // --- system (PTOquick.dc equivalent) ---
  int cells_per_axis = 2;       ///< PbTiO3 supercell: 5*n^3 atoms.
  std::int64_t mesh_n = 16;     ///< Cubic mesh points per axis.
  std::size_t norb = 24;        ///< Kohn-Sham orbitals.
  std::size_t nocc = 8;         ///< Occupied orbitals.
  unsigned long long seed = 1234;
  double temperature_k = 300.0; ///< Initial ionic temperature.

  // --- dynamics (lfd.in equivalent; defaults scaled from Table III) ---
  double dt = 0.02;             ///< QD step (atomic time units).
  int qd_steps_per_series = 500;///< QD steps between SCF/MD updates.
  int series = 2;               ///< Number of series (MD steps).
  lfd_precision_level lfd_precision = lfd_precision_level::fp32;
  double v_nl = 0.08;           ///< Nonlocal projector strength (Hartree).
  int fd_order = 4;             ///< Finite-difference order (2 or 4).
  /// Hartree mean-field strength: 0 disables (ionic potential only,
  /// the default); > 0 adds that fraction of the Poisson-solved V_H of
  /// the electron density, refreshed at SCF boundaries.
  double hartree = 0.0;
  propagator_choice propagator = propagator_choice::taylor;

  /// Per-call-site BLAS precision policy (see blas/precision_policy.hpp
  /// for the grammar, e.g. "lfd/remap_occ/*=FLOAT_TO_BF16X2;lfd/*=TF32",
  /// or "lfd/*=auto" to let the autotuner pick per site — see
  /// tune/autotuner.hpp).  Empty = no deck-level policy.  Installed
  /// process-wide by the driver
  /// at construction; the DCMESH_BLAS_POLICY environment variable still
  /// applies when this is empty (the deck wins when both are set, matching
  /// the policy engine's set_policy > env precedence).
  std::string blas_policy;

  // --- laser pulse ---
  mesh::laser_pulse pulse;

  /// Total QD steps of the run.
  [[nodiscard]] int total_qd_steps() const noexcept {
    return qd_steps_per_series * series;
  }
  /// Total simulated time in femtoseconds.
  [[nodiscard]] double total_time_fs() const noexcept;
  /// Atom count (5 per PbTiO3 cell).
  [[nodiscard]] int atom_count() const noexcept {
    return 5 * cells_per_axis * cells_per_axis * cells_per_axis;
  }
  /// Mesh points.
  [[nodiscard]] std::int64_t ngrid() const noexcept {
    return mesh_n * mesh_n * mesh_n;
  }

  /// Validate ranges; throws std::invalid_argument with a message naming
  /// the offending field.
  void validate() const;
};

/// Parse a deck from a stream.  Unknown keys and malformed lines throw
/// std::runtime_error with the line number.  Keys (all optional):
///   cells_per_axis, mesh_n, norb, nocc, seed, temperature_k, dt,
///   qd_steps_per_series, series, lfd_precision (fp32|fp64), v_nl,
///   fd_order, pulse_e0, pulse_omega, pulse_center, pulse_sigma,
///   pulse_axis, blas_policy (per-site precision rules; parsed eagerly so
///   a malformed policy fails at deck load, not mid-run).
[[nodiscard]] run_config parse_config(std::istream& in);

/// Parse a deck from a file path.
[[nodiscard]] run_config parse_config_file(const std::string& path);

/// Serialize a config back to deck text (round-trips through parse_config).
[[nodiscard]] std::string to_deck(const run_config& config);

}  // namespace dcmesh::core
