#pragma once
// dcmesh.hpp — umbrella header: the public API of the DCMESH reproduction.
//
// Typical use (see examples/quickstart.cpp):
//
//   #include "dcmesh/core/dcmesh.hpp"
//   auto config = dcmesh::core::preset(dcmesh::core::paper_system::tiny);
//   dcmesh::core::driver sim(config);
//   sim.run();                       // honours MKL_BLAS_COMPUTE_MODE
//   dcmesh::core::write_qd_log(std::cout, sim.records());

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/blas/verbose.hpp"
#include "dcmesh/core/config.hpp"
#include "dcmesh/core/driver.hpp"
#include "dcmesh/core/output.hpp"
#include "dcmesh/core/presets.hpp"
#include "dcmesh/xehpc/app_model.hpp"
#include "dcmesh/xehpc/device.hpp"
#include "dcmesh/xehpc/roofline.hpp"
