#include "dcmesh/core/presets.hpp"

#include <stdexcept>

namespace dcmesh::core {

std::string_view name(paper_system system) noexcept {
  switch (system) {
    case paper_system::pto40: return "pto40";
    case paper_system::pto135: return "pto135";
    case paper_system::pto40_scaled: return "pto40_scaled";
    case paper_system::pto135_scaled: return "pto135_scaled";
    case paper_system::tiny: return "tiny";
  }
  return "?";
}

run_config preset(paper_system system) {
  run_config config;
  // Dynamics defaults shared by the paper systems (Table III): dt = 0.02
  // a.t.u., 500 QD steps per series, 42 series = 21000 QD steps ~ 10 fs.
  config.dt = 0.02;
  config.qd_steps_per_series = 500;
  config.series = 42;

  switch (system) {
    case paper_system::pto40:
      config.cells_per_axis = 2;   // 40 atoms
      config.mesh_n = 64;
      config.norb = 256;
      config.nocc = 128;           // Table VII: m = 128
      break;
    case paper_system::pto135:
      config.cells_per_axis = 3;   // 135 atoms
      config.mesh_n = 96;
      config.norb = 1024;
      config.nocc = 432;           // 128 * 27/8 occupied, scaled by atoms
      break;
    case paper_system::pto40_scaled:
      // Same 2x2x2 supercell; mesh and orbital space shrunk ~4x per axis.
      // The pulse is compressed so the excitation happens within the
      // shortened (1000-step, 20 a.t.u.) run.
      config.cells_per_axis = 2;
      config.mesh_n = 16;
      config.norb = 32;
      config.nocc = 16;
      config.qd_steps_per_series = 250;
      config.series = 4;           // 1000 QD steps
      config.pulse.e0 = 0.30;
      config.pulse.omega = 0.30;
      config.pulse.t_center = 6.0;
      config.pulse.sigma = 2.0;
      break;
    case paper_system::pto135_scaled:
      config.cells_per_axis = 3;
      config.mesh_n = 18;
      config.norb = 48;
      config.nocc = 20;
      config.qd_steps_per_series = 250;
      config.series = 4;
      config.pulse.e0 = 0.30;
      config.pulse.omega = 0.30;
      config.pulse.t_center = 6.0;
      config.pulse.sigma = 2.0;
      break;
    case paper_system::tiny:
      config.cells_per_axis = 1;
      config.mesh_n = 8;
      config.norb = 8;
      config.nocc = 3;
      config.qd_steps_per_series = 20;
      config.series = 2;
      config.pulse.e0 = 0.50;
      config.pulse.omega = 1.0;
      config.pulse.t_center = 0.40;
      config.pulse.sigma = 0.15;
      break;
  }
  config.validate();
  return config;
}

std::vector<paper_system> all_presets() {
  return {paper_system::pto40, paper_system::pto135,
          paper_system::pto40_scaled, paper_system::pto135_scaled,
          paper_system::tiny};
}

}  // namespace dcmesh::core
