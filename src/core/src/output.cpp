#include "dcmesh/core/output.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace dcmesh::core {

std::string format_qd_record(const lfd::qd_record& r) {
  std::ostringstream os;
  os.precision(10);
  os << r.t << ' ' << r.ekin << ' ' << r.epot << ' ' << r.etot << ' '
     << r.eexc << ' ' << r.nexc << ' ' << r.aext << ' ' << r.javg;
  return os.str();
}

std::string qd_header() {
  return "# t ekin epot etot eexc nexc Aext javg";
}

void write_qd_log(std::ostream& os,
                  std::span<const lfd::qd_record> records) {
  os << qd_header() << '\n';
  for (const auto& r : records) os << format_qd_record(r) << '\n';
}

std::vector<double> extract_column(std::span<const lfd::qd_record> records,
                                   const std::string& column) {
  double lfd::qd_record::*field = nullptr;
  if (column == "t") field = &lfd::qd_record::t;
  else if (column == "ekin") field = &lfd::qd_record::ekin;
  else if (column == "epot") field = &lfd::qd_record::epot;
  else if (column == "etot") field = &lfd::qd_record::etot;
  else if (column == "eexc") field = &lfd::qd_record::eexc;
  else if (column == "nexc") field = &lfd::qd_record::nexc;
  else if (column == "aext") field = &lfd::qd_record::aext;
  else if (column == "javg") field = &lfd::qd_record::javg;
  else throw std::invalid_argument("extract_column: unknown column " + column);

  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(r.*field);
  return out;
}

}  // namespace dcmesh::core
