#include "dcmesh/core/config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dcmesh/blas/precision_policy.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/common/units.hpp"

namespace dcmesh::core {

double run_config::total_time_fs() const noexcept {
  return total_qd_steps() * dt * units::atu_in_fs;
}

void run_config::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("run_config: " + what);
  };
  if (cells_per_axis < 1) fail("cells_per_axis must be >= 1");
  if (mesh_n < 4) fail("mesh_n must be >= 4");
  if (norb < 2) fail("norb must be >= 2");
  if (nocc == 0 || nocc >= norb) fail("need 0 < nocc < norb");
  if (static_cast<std::int64_t>(norb) > ngrid()) {
    fail("norb exceeds the number of mesh points");
  }
  if (!(dt > 0.0)) fail("dt must be positive");
  if (qd_steps_per_series < 1) fail("qd_steps_per_series must be >= 1");
  if (series < 1) fail("series must be >= 1");
  if (fd_order != 2 && fd_order != 4) fail("fd_order must be 2 or 4");
  if (!(v_nl >= 0.0)) fail("v_nl must be non-negative");
  if (!(hartree >= 0.0 && hartree <= 1.0)) {
    fail("hartree must be in [0, 1]");
  }
  if (pulse.polarization_axis < 0 || pulse.polarization_axis > 2) {
    fail("pulse_axis must be 0, 1, or 2");
  }
  if (!blas_policy.empty()) {
    try {
      (void)blas::parse_policy(blas_policy);
    } catch (const std::invalid_argument& error) {
      fail(std::string("blas_policy: ") + error.what());
    }
  }
}

run_config parse_config(std::istream& in) {
  run_config config;
  std::string line;
  int line_number = 0;
  const auto fail = [&line_number](const std::string& what) {
    throw std::runtime_error("config line " + std::to_string(line_number) +
                             ": " + what);
  };
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string_view::npos) fail("expected 'key = value'");
    const std::string key = to_upper(trim(trimmed.substr(0, eq)));
    const std::string value{trim(trimmed.substr(eq + 1))};
    if (value.empty()) fail("missing value for " + key);

    const auto as_double = [&]() {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        fail("not a number: " + value);
      }
      return v;
    };
    const auto as_int = [&]() {
      const double v = as_double();
      const long long i = static_cast<long long>(v);
      if (static_cast<double>(i) != v) fail("not an integer: " + value);
      return i;
    };

    if (key == "CELLS_PER_AXIS") {
      config.cells_per_axis = static_cast<int>(as_int());
    } else if (key == "MESH_N") {
      config.mesh_n = as_int();
    } else if (key == "NORB") {
      config.norb = static_cast<std::size_t>(as_int());
    } else if (key == "NOCC") {
      config.nocc = static_cast<std::size_t>(as_int());
    } else if (key == "SEED") {
      config.seed = static_cast<unsigned long long>(as_int());
    } else if (key == "TEMPERATURE_K") {
      config.temperature_k = as_double();
    } else if (key == "DT") {
      config.dt = as_double();
    } else if (key == "QD_STEPS_PER_SERIES") {
      config.qd_steps_per_series = static_cast<int>(as_int());
    } else if (key == "SERIES") {
      config.series = static_cast<int>(as_int());
    } else if (key == "LFD_PRECISION") {
      const std::string mode = to_upper(value);
      if (mode == "FP32") {
        config.lfd_precision = lfd_precision_level::fp32;
      } else if (mode == "FP64") {
        config.lfd_precision = lfd_precision_level::fp64;
      } else {
        fail("lfd_precision must be fp32 or fp64");
      }
    } else if (key == "V_NL") {
      config.v_nl = as_double();
    } else if (key == "HARTREE") {
      config.hartree = as_double();
    } else if (key == "PROPAGATOR") {
      const std::string kind = to_upper(value);
      if (kind == "TAYLOR") {
        config.propagator = propagator_choice::taylor;
      } else if (kind == "STRANG") {
        config.propagator = propagator_choice::strang;
      } else {
        fail("propagator must be taylor or strang");
      }
    } else if (key == "FD_ORDER") {
      config.fd_order = static_cast<int>(as_int());
    } else if (key == "PULSE_E0") {
      config.pulse.e0 = as_double();
    } else if (key == "PULSE_OMEGA") {
      config.pulse.omega = as_double();
    } else if (key == "PULSE_CENTER") {
      config.pulse.t_center = as_double();
    } else if (key == "PULSE_SIGMA") {
      config.pulse.sigma = as_double();
    } else if (key == "PULSE_AXIS") {
      config.pulse.polarization_axis = static_cast<int>(as_int());
    } else if (key == "BLAS_POLICY") {
      // The raw rule string; validate() parse-checks it so malformed
      // policies fail at deck load with the line's context intact.
      config.blas_policy = value;
    } else {
      fail("unknown key: " + key);
    }
  }
  config.validate();
  return config;
}

run_config parse_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open config file: " + path);
  return parse_config(in);
}

std::string to_deck(const run_config& config) {
  std::ostringstream os;
  os << "# DCMESH run deck (lfd.in equivalent)\n"
     << "cells_per_axis = " << config.cells_per_axis << '\n'
     << "mesh_n = " << config.mesh_n << '\n'
     << "norb = " << config.norb << '\n'
     << "nocc = " << config.nocc << '\n'
     << "seed = " << config.seed << '\n'
     << "temperature_k = " << config.temperature_k << '\n'
     << "dt = " << config.dt << '\n'
     << "qd_steps_per_series = " << config.qd_steps_per_series << '\n'
     << "series = " << config.series << '\n'
     << "lfd_precision = "
     << (config.lfd_precision == lfd_precision_level::fp64 ? "fp64" : "fp32")
     << '\n'
     << "v_nl = " << config.v_nl << '\n'
     << "hartree = " << config.hartree << '\n'
     << "propagator = "
     << (config.propagator == propagator_choice::strang ? "strang"
                                                        : "taylor")
     << '\n'
     << "fd_order = " << config.fd_order << '\n'
     << "pulse_e0 = " << config.pulse.e0 << '\n'
     << "pulse_omega = " << config.pulse.omega << '\n'
     << "pulse_center = " << config.pulse.t_center << '\n'
     << "pulse_sigma = " << config.pulse.sigma << '\n'
     << "pulse_axis = " << config.pulse.polarization_axis << '\n';
  if (!config.blas_policy.empty()) {
    os << "blas_policy = " << config.blas_policy << '\n';
  }
  return os.str();
}

}  // namespace dcmesh::core
