#include "dcmesh/core/driver.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "dcmesh/blas/precision_policy.hpp"
#include "dcmesh/core/checkpoint.hpp"
#include "dcmesh/lfd/forces.hpp"
#include "dcmesh/lfd/init.hpp"
#include "dcmesh/lfd/potential.hpp"
#include "dcmesh/qxmd/supercell.hpp"
#include "dcmesh/resil/health.hpp"
#include "dcmesh/resil/promotion.hpp"
#include "dcmesh/sched/config.hpp"
#include "dcmesh/tune/autotuner.hpp"
#include "dcmesh/xehpc/roofline.hpp"

namespace dcmesh::core {
namespace {

mesh::fd_order to_fd_order(int order) {
  return order == 2 ? mesh::fd_order::second : mesh::fd_order::fourth;
}

/// Replay budget per series before the violation becomes fatal.  Each
/// attempt promotes the LFD sites one more mantissa-ladder step, so three
/// attempts walk BF16 all the way to BF16x3 territory.
constexpr int kMaxReplays = 3;

/// Series a rollback promotion stays active before the fast mode is
/// re-tried (graceful degradation with automatic re-escalation).
constexpr int kPromotionSeriesTtl = 2;

/// Relative ekin-jump checks divide by at least this, so a near-zero
/// early-trajectory ekin cannot alias a benign ramp-up into a violation.
constexpr double kEkinJumpFloor = 1e-6;

}  // namespace

driver::driver(run_config config)
    : config_(std::move(config)),
      grid_(mesh::grid3d::cubic(
          config_.mesh_n,
          qxmd::kPtoLatticeBohr * config_.cells_per_axis /
              static_cast<double>(config_.mesh_n))),
      atoms_(qxmd::build_pto_supercell(config_.cells_per_axis,
                                       qxmd::kPtoLatticeBohr, 0.05,
                                       config_.seed)),
      integrator_(qxmd::pair_potential{},
                  config_.dt * config_.qd_steps_per_series) {
  config_.validate();
  // Install the deck's per-site BLAS policy process-wide before any
  // level-3 call; validate() has already parse-checked it.  An empty deck
  // policy leaves whatever is installed (including DCMESH_BLAS_POLICY from
  // the environment) untouched.
  if (!config_.blas_policy.empty()) {
    blas::set_policy(blas::parse_policy(config_.blas_policy));
  }
  // Annotate GEMM spans with the Max 1550 roofline's predicted device
  // time (measured-vs-modeled per kernel).  Idempotent and cheap; uses
  // the default single-stack spec and frozen calibration.
  xehpc::install_trace_gemm_model();
  // Back AUTO policy rules with the process-wide autotuner (wisdom cached
  // under DCMESH_TUNE_CACHE).  Installing after the roofline model means
  // shapes too small to time rank by the roofline, not Table II peaks.
  tune::install_auto_tuner();
  qxmd::seed_velocities(atoms_, config_.temperature_k, config_.seed + 1);
  integrator_.initialize(atoms_);

  // FP64 SCF initialization (QXMD) — identical for every precision run.
  trace::unitrace::scope init_scope(tracer_, "qxmd.scf_init");
  lfd::init_result init = lfd::initialize_ground_state(
      grid_, atoms_, config_.norb, config_.nocc,
      to_fd_order(config_.fd_order), config_.seed);
  band_energies_ = std::move(init.band_energies);

  lfd::lfd_options options;
  options.order = to_fd_order(config_.fd_order);
  options.dt = config_.dt;
  options.v_nl = config_.v_nl;
  options.propagator = config_.propagator == propagator_choice::strang
                           ? lfd::propagator_kind::strang
                           : lfd::propagator_kind::taylor;
  options.pulse = config_.pulse;

  auto v_loc = lfd::build_local_potential(grid_, atoms_);
  // The Hartree mean field (if enabled) is applied after construction via
  // rebuild_device_potential() — it needs the SCF density.
  if (config_.lfd_precision == lfd_precision_level::fp64) {
    engine_ = std::make_unique<lfd::lfd_engine<double>>(
        grid_, options, init.psi, init.occupations, config_.nocc,
        std::move(v_loc));
  } else {
    engine_ = std::make_unique<lfd::lfd_engine<float>>(
        grid_, options, init.psi, init.occupations, config_.nocc,
        std::move(v_loc));
  }

  // Shadow dynamics: the CPU keeps an approximate copy of the device
  // wave function; it only syncs when drift warrants (SCF boundaries).
  const auto elem_bytes =
      config_.lfd_precision == lfd_precision_level::fp64 ? 16ull : 8ull;
  shadow_.register_quantity(
      "wavefunction",
      static_cast<std::uint64_t>(grid_.size()) * config_.norb * elem_bytes,
      /*tolerance=*/1e-4);
  shadow_.register_quantity("ion_forces", atoms_.size() * 3 * 8,
                            /*tolerance=*/0.0);

  if (config_.hartree > 0.0) rebuild_device_potential();
}

void driver::rebuild_device_potential() {
  auto v = lfd::build_local_potential(grid_, atoms_);
  if (config_.hartree > 0.0) {
    const auto rho = std::visit(
        [](auto& e) {
          return lfd::electron_density(e->psi(), e->occupations());
        },
        engine_);
    const auto vh = lfd::build_hartree_potential(
        grid_,
        config_.fd_order == 2 ? mesh::fd_order::second
                              : mesh::fd_order::fourth,
        rho, config_.hartree);
    for (std::size_t i = 0; i < v.size(); ++i) v[i] += vh[i];
  }
  std::visit([&](auto& e) { e->set_potential(std::move(v)); }, engine_);
}

template <typename R>
lfd::lfd_engine<R>& driver::engine() {
  return *std::get<std::unique_ptr<lfd::lfd_engine<R>>>(engine_);
}

double driver::time() const noexcept {
  return std::visit([](const auto& e) { return e->time(); }, engine_);
}

lfd::qd_record driver::qd_step() {
  trace::unitrace::scope scope(tracer_, "lfd.qd_step");
  lfd::qd_record record =
      std::visit([](auto& e) { return e->qd_step(); }, engine_);
  const double drift =
      std::visit([](auto& e) { return e->last_norm_drift(); }, engine_);
  shadow_.record_gpu_update("wavefunction", drift);
  records_.push_back(record);
  return record;
}

series_report driver::run_series() {
  if (resil::active_health_level() == resil::health_level::off) {
    series_report report = run_series_impl();
    ++series_index_;
    return report;
  }

  // Resilient path: checkpoint, run, verify invariants; on violation
  // roll back, promote the LFD sites' precision, replay.
  //
  // Double buffering: reading the live state (serialize) must happen
  // before the first QD step mutates it, but the checksum + framing
  // (seal) is a pure function of the payload bytes — under
  // DCMESH_SCHED=pool it runs as a pool job overlapped with the series'
  // QD steps.  Every path that touches ring_ joins the job first.
  {
    wait_pending_checkpoint();
    std::string payload = serialize_checkpoint_payload(*this);
    const std::uint64_t label = series_index_;
    const std::uint64_t aux = records_.size();
    if (sched::thread_pool* pool = sched::active_pool()) {
      pending_checkpoint_ =
          pool->submit([this, label, aux, payload = std::move(payload)] {
            ring_.push(label, aux, seal_checkpoint(payload));
          });
    } else {
      ring_.push(label, aux, seal_checkpoint(payload));
    }
    ++resil_stats_.checkpoints;
  }
  const std::size_t series_start = records_.size();
  for (int attempt = 0;; ++attempt) {
    series_report report = run_series_impl();
    const std::string violation = check_series_health(series_start);
    if (violation.empty()) {
      report.replays = attempt;
      ++series_index_;
      // Healthy series: age the promotion ledger so a promoted site
      // eventually re-tries its fast mode.  Join the sealer before
      // returning — nothing of this series may outlive run_series.
      resil::tick_promotions();
      wait_pending_checkpoint();
      return report;
    }
    ++resil_stats_.violations;
    resil_stats_.last_violation = violation;
    if (attempt >= kMaxReplays) {
      wait_pending_checkpoint();
      throw std::runtime_error(
          "driver: series " + std::to_string(series_index_) +
          " failed step invariants after " + std::to_string(attempt) +
          " replays: " + violation);
    }
    rollback_to_ring();
    ++resil_stats_.rollbacks;
    char detail[96];
    std::snprintf(detail, sizeof(detail), "series=%llu attempt=%d",
                  static_cast<unsigned long long>(series_index_),
                  attempt + 1);
    resil::record_health_event("rollback", "core/driver", detail);
    // One more ladder step per attempt, held for a bounded number of
    // series.  "lfd/*" covers every tagged LFD GEMM site.
    resil::promote_sites("lfd/*", attempt + 1, kPromotionSeriesTtl);
  }
}

series_report driver::run_series_impl() {
  series_report report;
  for (int step = 0; step < config_.qd_steps_per_series; ++step) {
    qd_step();
    ++report.qd_steps;
  }

  // FP64 SCF refresh (QXMD, CPU) — the paper's truncation-error reset.
  {
    trace::unitrace::scope scope(tracer_, "qxmd.scf_refresh");
    report.scf =
        std::visit([](auto& e) { return e->refresh_scf(); }, engine_);
  }

  // Shadow sync: the CPU needs the wave function at the SCF boundary.
  report.wavefunction_transferred = shadow_.sync("wavefunction");

  // Ionic MD step on the slow time scale with the Ehrenfest back-action of
  // the (just-refreshed) electron density, then rebuild the potential the
  // device Hamiltonian sees.
  {
    trace::unitrace::scope scope(tracer_, "qxmd.md_step");
    const auto rho = std::visit(
        [](auto& e) {
          return lfd::electron_density(e->psi(), e->occupations());
        },
        engine_);
    const auto electronic = lfd::ehrenfest_forces(grid_, atoms_, rho);
    const qxmd::extra_force_fn ehrenfest = [&](qxmd::atom_system& system) {
      for (std::size_t a = 0; a < system.size(); ++a) {
        for (int axis = 0; axis < 3; ++axis) {
          system.atoms[a].force[static_cast<std::size_t>(axis)] +=
              electronic[a][static_cast<std::size_t>(axis)];
        }
      }
    };
    report.ion_potential_energy = integrator_.step(atoms_, ehrenfest);
    report.ion_kinetic_energy = atoms_.kinetic_energy();
    shadow_.sync("ion_forces", /*force=*/true);
  }
  {
    trace::unitrace::scope scope(tracer_, "lfd.update_potential");
    rebuild_device_potential();
  }
  return report;
}

std::string driver::check_series_health(std::size_t series_start_record) {
  // Engine-level invariants (norm conservation, finite/bounded record
  // observables) are checked per QD step; pop the first violation.
  std::string violation = std::visit(
      [](auto& e) { return e->take_health_violation(); }, engine_);
  if (!violation.empty()) return violation;

  // Driver-level invariant: bounded relative ekin change between
  // consecutive QD steps of this series.  A finite-but-blown GEMM result
  // (e.g. an injected scale fault) passes the per-call finite scan and
  // shows up here as a kinetic-energy discontinuity.
  const resil::invariant_limits limits = resil::active_limits();
  for (std::size_t i = series_start_record + 1; i < records_.size(); ++i) {
    const double prev = records_[i - 1].ekin;
    const double cur = records_[i].ekin;
    const double rel =
        std::abs(cur - prev) / std::max(std::abs(prev), kEkinJumpFloor);
    if (rel > limits.ekin_jump_rel) {
      char detail[128];
      std::snprintf(detail, sizeof(detail),
                    "ekin_jump=%.3e max=%.3e t=%.4f", rel,
                    limits.ekin_jump_rel, records_[i].t);
      resil::record_health_event("step_invariant", "core/driver", detail);
      return detail;
    }
  }
  return {};
}

void driver::wait_pending_checkpoint() {
  if (pending_checkpoint_.valid()) {
    pending_checkpoint_.wait();
    pending_checkpoint_ = sched::job{};
  }
}

void driver::rollback_to_ring() {
  // The sealer must have pushed before we read the ring, and no other
  // in-flight task (stray step graph stub, prepack) may touch engine
  // state across the restore — quiesce the pool to a hard barrier.
  wait_pending_checkpoint();
  sched::quiesce_active_pool();
  const resil::ring_slot* slot = ring_.latest();
  if (slot == nullptr) {
    throw std::runtime_error("driver: rollback with empty checkpoint ring");
  }
  // restore_propagation_state clears records(); preserve the history up
  // to the checkpoint point so the observable log stays contiguous.
  std::vector<lfd::qd_record> kept(
      records_.begin(),
      records_.begin() + static_cast<std::ptrdiff_t>(slot->aux));
  std::istringstream is(slot->blob, std::ios::binary);
  restore_checkpoint(*this, is);
  records_ = std::move(kept);
}

std::vector<series_report> driver::run() {
  std::vector<series_report> reports;
  reports.reserve(static_cast<std::size_t>(config_.series));
  for (int s = 0; s < config_.series; ++s) {
    reports.push_back(run_series());
  }
  return reports;
}

void driver::save_propagation_state(std::ostream& os) const {
  std::visit([&os](const auto& e) { e->save_state(os); }, engine_);
}

void driver::restore_propagation_state(const qxmd::atom_system& atoms,
                                       std::istream& is) {
  if (atoms.size() != atoms_.size()) {
    throw std::runtime_error("driver: checkpoint atom count mismatch");
  }
  atoms_ = atoms;  // positions, velocities, AND forces — the integrator's
                   // next half-kick uses the checkpointed forces verbatim,
                   // so continuation is bit-exact.
  std::visit([&is](auto& e) { e->load_state(is); }, engine_);
  rebuild_device_potential();
  records_.clear();
}

template lfd::lfd_engine<float>& driver::engine<float>();
template lfd::lfd_engine<double>& driver::engine<double>();

}  // namespace dcmesh::core
