#include "dcmesh/core/checkpoint.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dcmesh/core/config.hpp"

namespace dcmesh::core {
namespace {

constexpr std::uint64_t kCheckpointMagic = 0x44434d4553484b50ull;  // DCMESHKP
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::istream& is, T& value) {
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("checkpoint: truncated stream");
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod(os, static_cast<std::uint64_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  std::uint64_t size = 0;
  read_pod(is, size);
  if (size > (1u << 20)) {
    throw std::runtime_error("checkpoint: implausible string length");
  }
  std::string s(size, '\0');
  is.read(s.data(), static_cast<std::streamsize>(size));
  if (!is) throw std::runtime_error("checkpoint: truncated stream");
  return s;
}

void write_atoms(std::ostream& os, const qxmd::atom_system& atoms) {
  write_pod(os, static_cast<std::uint64_t>(atoms.size()));
  write_pod(os, atoms.box);
  for (const qxmd::atom& a : atoms.atoms) {
    write_pod(os, static_cast<std::int32_t>(a.kind));
    write_pod(os, a.position);
    write_pod(os, a.velocity);
    write_pod(os, a.force);
  }
}

qxmd::atom_system read_atoms(std::istream& is) {
  qxmd::atom_system atoms;
  std::uint64_t count = 0;
  read_pod(is, count);
  if (count > (1u << 24)) {
    throw std::runtime_error("checkpoint: implausible atom count");
  }
  read_pod(is, atoms.box);
  atoms.atoms.resize(count);
  for (qxmd::atom& a : atoms.atoms) {
    std::int32_t kind = 0;
    read_pod(is, kind);
    if (kind < 0 || kind > 2) {
      throw std::runtime_error("checkpoint: bad species");
    }
    a.kind = static_cast<qxmd::species>(kind);
    read_pod(is, a.position);
    read_pod(is, a.velocity);
    read_pod(is, a.force);
  }
  return atoms;
}

}  // namespace

void save_checkpoint(const driver& sim, std::ostream& os) {
  write_pod(os, kCheckpointMagic);
  write_pod(os, kVersion);
  write_string(os, to_deck(sim.config()));
  write_atoms(os, sim.atoms());
  sim.save_propagation_state(os);
  if (!os) throw std::runtime_error("checkpoint: write failed");
}

void save_checkpoint_file(const driver& sim, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("checkpoint: cannot open " + path);
  save_checkpoint(sim, os);
}

driver load_checkpoint(std::istream& is) {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  read_pod(is, magic);
  if (magic != kCheckpointMagic) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  read_pod(is, version);
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version");
  }
  std::istringstream deck(read_string(is));
  driver sim(parse_config(deck));
  const qxmd::atom_system atoms = read_atoms(is);
  sim.restore_propagation_state(atoms, is);
  return sim;
}

driver load_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  return load_checkpoint(is);
}

}  // namespace dcmesh::core
