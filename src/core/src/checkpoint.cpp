#include "dcmesh/core/checkpoint.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "dcmesh/common/atomic_file.hpp"
#include "dcmesh/core/config.hpp"

namespace dcmesh::core {
namespace {

constexpr std::uint64_t kCheckpointMagic = 0x44434d4553484b50ull;  // DCMESHKP
// v2: the header carries the payload size and an FNV-1a-64 checksum over
// the payload, so any corruption — a single flipped bit anywhere, or a
// truncation — is rejected with a clear error instead of silently
// poisoning a multi-day continuation run.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint64_t kMaxPayloadBytes = 1ull << 31;

std::uint64_t fnv1a(std::string_view data) noexcept {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char ch : data) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ull;
  }
  return hash;
}

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::istream& is, T& value) {
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("checkpoint: truncated stream");
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod(os, static_cast<std::uint64_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  std::uint64_t size = 0;
  read_pod(is, size);
  if (size > (1u << 20)) {
    throw std::runtime_error("checkpoint: implausible string length");
  }
  std::string s(size, '\0');
  is.read(s.data(), static_cast<std::streamsize>(size));
  if (!is) throw std::runtime_error("checkpoint: truncated stream");
  return s;
}

void write_atoms(std::ostream& os, const qxmd::atom_system& atoms) {
  write_pod(os, static_cast<std::uint64_t>(atoms.size()));
  write_pod(os, atoms.box);
  for (const qxmd::atom& a : atoms.atoms) {
    write_pod(os, static_cast<std::int32_t>(a.kind));
    write_pod(os, a.position);
    write_pod(os, a.velocity);
    write_pod(os, a.force);
  }
}

qxmd::atom_system read_atoms(std::istream& is) {
  qxmd::atom_system atoms;
  std::uint64_t count = 0;
  read_pod(is, count);
  if (count > (1u << 24)) {
    throw std::runtime_error("checkpoint: implausible atom count");
  }
  read_pod(is, atoms.box);
  atoms.atoms.resize(count);
  for (qxmd::atom& a : atoms.atoms) {
    std::int32_t kind = 0;
    read_pod(is, kind);
    if (kind < 0 || kind > 2) {
      throw std::runtime_error("checkpoint: bad species");
    }
    a.kind = static_cast<qxmd::species>(kind);
    read_pod(is, a.position);
    read_pod(is, a.velocity);
    read_pod(is, a.force);
  }
  return atoms;
}

/// Read the v2 header, the payload, and verify the checksum.  Throws on
/// any mismatch — a corrupted checkpoint must never restore.
std::string read_verified_payload(std::istream& is) {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  read_pod(is, magic);
  if (magic != kCheckpointMagic) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  read_pod(is, version);
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version");
  }
  std::uint64_t size = 0, checksum = 0;
  read_pod(is, size);
  if (size > kMaxPayloadBytes) {
    throw std::runtime_error("checkpoint: implausible payload size");
  }
  read_pod(is, checksum);
  std::string payload(static_cast<std::size_t>(size), '\0');
  is.read(payload.data(), static_cast<std::streamsize>(size));
  if (!is) throw std::runtime_error("checkpoint: truncated stream");
  if (fnv1a(payload) != checksum) {
    throw std::runtime_error(
        "checkpoint: checksum mismatch (corrupted checkpoint)");
  }
  return payload;
}

}  // namespace

std::string serialize_checkpoint_payload(const driver& sim) {
  // Serialize into a buffer first: the checksum covers the whole payload.
  std::ostringstream payload_os(std::ios::binary);
  write_string(payload_os, to_deck(sim.config()));
  write_atoms(payload_os, sim.atoms());
  sim.save_propagation_state(payload_os);
  if (!payload_os) throw std::runtime_error("checkpoint: serialize failed");
  return std::move(payload_os).str();
}

std::string seal_checkpoint(const std::string& payload) {
  std::ostringstream os(std::ios::binary);
  write_pod(os, kCheckpointMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(payload.size()));
  write_pod(os, fnv1a(payload));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!os) throw std::runtime_error("checkpoint: seal failed");
  return std::move(os).str();
}

void save_checkpoint(const driver& sim, std::ostream& os) {
  const std::string blob = seal_checkpoint(serialize_checkpoint_payload(sim));
  os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  if (!os) throw std::runtime_error("checkpoint: write failed");
}

void save_checkpoint_file(const driver& sim, const std::string& path) {
  // Crash-safe: write to a temp file beside `path`, fsync, atomically
  // rename — a crash mid-save leaves the previous checkpoint intact, and
  // a reader never sees a half-written file.
  const bool ok = atomic_write_file(path, [&](std::ostream& os) {
    save_checkpoint(sim, os);
    return static_cast<bool>(os);
  });
  if (!ok) throw std::runtime_error("checkpoint: cannot write " + path);
}

driver load_checkpoint(std::istream& is) {
  std::istringstream payload(read_verified_payload(is), std::ios::binary);
  std::istringstream deck(read_string(payload));
  driver sim(parse_config(deck));
  const qxmd::atom_system atoms = read_atoms(payload);
  sim.restore_propagation_state(atoms, payload);
  return sim;
}

driver load_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  return load_checkpoint(is);
}

void restore_checkpoint(driver& sim, std::istream& is) {
  std::istringstream payload(read_verified_payload(is), std::ios::binary);
  const std::string deck = read_string(payload);
  if (deck != to_deck(sim.config())) {
    throw std::runtime_error(
        "checkpoint: config mismatch (checkpoint was written by a "
        "different run configuration)");
  }
  const qxmd::atom_system atoms = read_atoms(payload);
  sim.restore_propagation_state(atoms, payload);
}

}  // namespace dcmesh::core
