#pragma once
// signal_flush.hpp — best-effort trace flush on SIGTERM/SIGINT.
//
// Long campaigns killed by a batch scheduler die by SIGTERM, which skips
// the tracer's atexit flush — two days of spans lost.  Opting in with
// DCMESH_TRACE_FLUSH_ON_SIGNAL=1 installs handlers for SIGTERM and SIGINT
// that write the Chrome trace to the DCMESH_TRACE_JSON path, then restore
// the default disposition and re-raise, so the process still dies by the
// signal (exit status preserved for the scheduler).
//
// The flush is deliberately best-effort: writing a file is not
// async-signal-safe, and a signal landing inside a tracer mutex can
// deadlock the dying process — acceptable for an opt-in last-gasp dump,
// never the default.

#include <string_view>

namespace dcmesh::trace {

/// Opt-in environment variable; "1" (or any nonzero integer) installs the
/// handlers when the tracer singleton is first constructed.
inline constexpr std::string_view kTraceFlushOnSignalEnvVar =
    "DCMESH_TRACE_FLUSH_ON_SIGNAL";

/// Install the SIGTERM/SIGINT flush handlers now.  Idempotent; chains
/// nothing (the previous disposition is replaced).
void install_signal_flush();

/// Install the handlers iff DCMESH_TRACE_FLUSH_ON_SIGNAL parses to a
/// nonzero integer.  Returns whether they are installed after the call.
bool install_signal_flush_from_env();

/// True once install_signal_flush() has run in this process.
[[nodiscard]] bool signal_flush_installed() noexcept;

}  // namespace dcmesh::trace
