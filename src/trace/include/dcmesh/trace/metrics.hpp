#pragma once
// metrics.hpp — per-call-site GEMM counter registry.
//
// The verbose layer (src/blas/src/verbose.cpp) forwards every recorded
// level-3 call here, so after any run the registry answers "which tagged
// site ran how many GEMMs, at which resolved compute modes, moving how
// many flops/bytes, promoted by the accuracy guard how often" — the
// per-call interception telemetry the automatic-offloading literature uses
// to decide where reduced precision pays off.
//
// Deliberately blas-agnostic (plain strings and scalars) so dcmesh_trace
// stays dependency-free and dcmesh_blas can link it without a cycle.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dcmesh::trace {

/// Aggregated counters for one call site (or one untagged routine).
struct gemm_site_counters {
  std::uint64_t calls = 0;
  double flops = 0.0;    ///< Nominal standard-arithmetic flops.
  double bytes = 0.0;    ///< Operand + result traffic (A + B + 2C).
  double seconds = 0.0;  ///< Host wall time across all calls.
  std::uint64_t fallback_promotions = 0;  ///< Guard re-ran at higher mode.
  /// Calls per resolved compute-mode token ("STANDARD", "BF16", ...).
  std::map<std::string, std::uint64_t, std::less<>> mode_calls;
  /// Auto-resolved calls per decision provenance ("calibrated", "cached",
  /// "modeled", "defaulted"); empty when the site never ran under `auto`.
  std::map<std::string, std::uint64_t, std::less<>> tune_calls;
};

/// Record one GEMM call for `site` (falls back to "untagged/<routine>"
/// when the site tag is empty).  `tune_token` names the auto-mode decision
/// provenance; empty for calls that were not auto-resolved.  Thread-safe.
void record_gemm_metrics(std::string_view site, std::string_view routine,
                         std::string_view mode_token, double flops,
                         double bytes, double seconds, bool promoted,
                         std::string_view tune_token = {});

/// Snapshot of all per-site counters, sorted by site tag.
[[nodiscard]] std::vector<std::pair<std::string, gemm_site_counters>>
gemm_metrics();

/// Counters for one site; zeroed counters when the site never ran.
[[nodiscard]] gemm_site_counters gemm_metrics_for(std::string_view site);

/// Reset the registry.
void clear_gemm_metrics();

/// Human-readable table of the registry (one line per site: calls, flops,
/// bytes, time, modes, promotions), followed by the health-event counters
/// when any were recorded.
[[nodiscard]] std::string gemm_metrics_report();

// --- structured health events (numerical resilience subsystem) ---
//
// The resilience layer (src/resil) funnels every fault injection,
// sentinel detection, recovery, rollback, and promotion through here as a
// named counter, so a campaign's health history is queryable next to the
// per-site GEMM counters it relates to.

/// Bump the counter for one health-event kind ("inject", "detect",
/// "recover", "unrecovered", "step_invariant", "rollback", "promote").
/// Thread-safe.
void record_health_counter(std::string_view kind);

/// Snapshot of all health counters, sorted by kind.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
health_counters();

/// Counter for one kind; 0 when never recorded.
[[nodiscard]] std::uint64_t health_counter(std::string_view kind);

/// Reset the health counters.
void clear_health_counters();

// --- scheduler counters (task-graph step executor) ---
//
// The sched layer (src/sched) records its aggregate activity here —
// graphs run, nodes executed/skipped, pool steals, queue-wait time — so
// a run's `sched=` line sits next to the per-site GEMM counters in the
// same report.  Counters are additive deltas keyed by kind, e.g.
// "graphs", "nodes", "nodes_skipped", "steals", "queue_wait_ns".

/// Add `delta` to the scheduler counter `kind`.  Thread-safe.
void record_sched_counter(std::string_view kind, std::uint64_t delta = 1);

/// Snapshot of all scheduler counters, sorted by kind.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
sched_counters();

/// Counter for one kind; 0 when never recorded.
[[nodiscard]] std::uint64_t sched_counter(std::string_view kind);

/// Reset the scheduler counters.
void clear_sched_counters();

}  // namespace dcmesh::trace
