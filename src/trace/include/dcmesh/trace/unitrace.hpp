#pragma once
// unitrace.hpp — unitrace/PTI-GPU-style kernel profiler.
//
// The paper measures performance with Intel's unitrace ("record kernel and
// other event timings using GPU-side timers") and reads off the Total L0
// Time.  This is the equivalent facility for the reproduction: scoped
// timers record named kernel intervals; a report aggregates per-kernel
// counts/times and the total, in nanoseconds like the L0 output.
// Simulated device times (from the xehpc model) can be recorded alongside
// measured host times.

#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dcmesh/trace/tracer.hpp"

namespace dcmesh::trace {

/// Aggregated statistics for one kernel name.  min/max are identities of
/// their fold (+inf / -inf), so record() and merges never need a
/// first-call special case and a default-constructed stats merges as a
/// neutral element.
struct kernel_stats {
  std::uint64_t calls = 0;
  double total_seconds = 0.0;
  double min_seconds = std::numeric_limits<double>::infinity();
  double max_seconds = -std::numeric_limits<double>::infinity();
};

/// A unitrace-like collector.  Since the span tracer (tracer.hpp) became
/// the real observability subsystem this is a thin compatibility view:
/// the aggregation and the "Total L0 Time" report are unchanged (and
/// byte-for-byte identical when tracing is disabled), while every scope
/// additionally emits a span into the process tracer when it is enabled.
/// The aggregate itself is still not thread-safe by design (one collector
/// per driver); create separate collectors for concurrent use.
class unitrace {
 public:
  /// Record an interval for `kernel` (seconds).
  void record(const std::string& kernel, double seconds);

  /// Total recorded time in nanoseconds — the "Total L0 Time" the paper's
  /// artifact analysis reads at the top of the unitrace output.
  [[nodiscard]] std::uint64_t total_l0_time_ns() const noexcept;

  /// Per-kernel aggregation, ordered by descending total time.
  [[nodiscard]] std::vector<std::pair<std::string, kernel_stats>> report()
      const;

  /// Render the report as text (one line per kernel + the total).
  [[nodiscard]] std::string to_string() const;

  void clear();

  /// RAII wall-clock timer recording into a collector on destruction.
  /// Also emits the interval as a span (category "step") into the process
  /// tracer when tracing is enabled, so driver step scopes show up on the
  /// Chrome trace timeline without separate instrumentation.
  class scope {
   public:
    scope(unitrace& sink, std::string kernel)
        : sink_(sink),
          kernel_(std::move(kernel)),
          start_(std::chrono::steady_clock::now()) {
      if (tracer::instance().enabled()) span_.emplace(kernel_, "step");
    }
    ~scope() {
      const auto stop = std::chrono::steady_clock::now();
      sink_.record(kernel_,
                   std::chrono::duration<double>(stop - start_).count());
    }
    scope(const scope&) = delete;
    scope& operator=(const scope&) = delete;

   private:
    unitrace& sink_;
    std::string kernel_;
    std::chrono::steady_clock::time_point start_;
    std::optional<span> span_;  // destroyed after record(): same interval
  };

 private:
  std::map<std::string, kernel_stats> kernels_;
  double total_seconds_ = 0.0;
};

}  // namespace dcmesh::trace
