#pragma once
// tracer.hpp — thread-safe span tracer with Chrome trace-event export.
//
// The paper reads its whole-application numbers off unitrace's per-kernel
// timeline; this is the reproduction's equivalent observability layer.  A
// `span` is an RAII interval: construction stamps the start, destruction
// stamps the duration and appends one complete ("ph":"X") event to the
// calling thread's buffer.  Buffers are strictly per-thread (the owning
// thread appends under an uncontended mutex; only a flush from another
// thread ever contends), so tracing adds no cross-thread synchronization
// to hot paths.  A flush merges all buffers into the Chrome trace-event
// JSON format that about:tracing and Perfetto load directly.
//
// Activation: the tracer is on when the DCMESH_TRACE_JSON environment
// variable names an output file (an atexit hook then writes the trace
// there) or after set_enabled(true).  When off, spans are no-ops — the
// only cost is one enabled() check — so the legacy unitrace report is
// byte-for-byte what it was before this subsystem existed.
//
// Spans may be annotated with args (rendered into the event's "args"
// object).  GEMM spans additionally carry the xehpc roofline model's
// predicted device time when a model has been installed through
// set_gemm_time_model() — trace cannot depend on xehpc (or blas), so the
// model arrives as an opaque callback over plain scalars.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace dcmesh::trace {

/// Environment variable naming the Chrome trace output file.  When set,
/// tracing is enabled and the trace is written there at process exit (and
/// on explicit flush_to_env_path()).
inline constexpr std::string_view kTraceJsonEnvVar = "DCMESH_TRACE_JSON";

/// One completed span, ready for export.
struct trace_event {
  std::string name;        ///< Event name (kernel / call-site tag).
  std::string category;    ///< Chrome "cat" field ("step", "gemm", ...).
  std::uint64_t ts_ns = 0;   ///< Start, nanoseconds since tracer epoch.
  std::uint64_t dur_ns = 0;  ///< Duration in nanoseconds.
  std::uint32_t tid = 0;     ///< Stable per-thread id (registration order).
  /// Pre-rendered JSON members for the "args" object, comma-separated,
  /// without the surrounding braces; empty = no args.
  std::string args_json;
};

/// The process-wide trace collector.  All methods are thread-safe.
class tracer {
 public:
  /// The singleton.  First call fixes the trace epoch.
  static tracer& instance();

  /// True when DCMESH_TRACE_JSON is set or set_enabled(true) was called.
  [[nodiscard]] bool enabled() const;

  /// Programmatically force tracing on/off (tests; overrides nothing —
  /// the env var keeps enabling independently).
  void set_enabled(bool on);

  /// Monotonic nanoseconds since the tracer epoch.
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Append one completed event to the calling thread's buffer.
  void record(trace_event event);

  /// Merged copy of all buffers (per-thread order preserved).
  [[nodiscard]] std::vector<trace_event> snapshot() const;

  /// Number of buffered events across all threads.
  [[nodiscard]] std::size_t event_count() const;

  /// Events dropped because a thread buffer hit its cap.
  [[nodiscard]] std::uint64_t dropped_count() const;

  /// Render the Chrome trace-event JSON document ("traceEvents" array of
  /// "ph":"X" complete events; ts/dur in microseconds).
  [[nodiscard]] std::string to_chrome_json() const;

  /// Write to_chrome_json() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Write the trace to the file DCMESH_TRACE_JSON names; false when the
  /// variable is unset or the write fails.
  bool flush_to_env_path() const;

  /// Drop all buffered events (buffers stay registered).
  void clear();

 private:
  tracer();
  struct impl;
  impl* impl_;
};

/// RAII span: records one complete event on destruction.  A span created
/// while the tracer is disabled is inert (no allocation beyond the name).
class span {
 public:
  explicit span(std::string name, std::string category = "dcmesh");
  ~span();
  span(const span&) = delete;
  span& operator=(const span&) = delete;

  /// True when this span will record (tracer was enabled at creation).
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Attach an arg (shown under "args" in the trace viewer).
  void arg(std::string_view key, std::string_view value);
  void arg(std::string_view key, double value);
  void arg(std::string_view key, std::int64_t value);

 private:
  bool active_;
  trace_event event_;
};

/// Shape/precision of one GEMM call as seen by the time-model hook.
struct gemm_model_query {
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t k = 0;
  bool is_complex = false;
  bool is_fp64 = false;
  std::string_view mode_token;  ///< MKL_BLAS_COMPUTE_MODE token.
};

/// Install the predicted-device-time model GEMM spans are annotated with
/// (seconds; negative = no prediction).  xehpc::install_trace_gemm_model()
/// points this at the roofline model.  An empty function uninstalls.
void set_gemm_time_model(std::function<double(const gemm_model_query&)> fn);

/// Evaluate the installed model; negative when none is installed.
[[nodiscard]] double predicted_gemm_seconds(const gemm_model_query& query);

/// Append `s` to `out` with JSON string escaping (no surrounding quotes).
void append_json_escaped(std::string& out, std::string_view s);

}  // namespace dcmesh::trace
