#include "dcmesh/trace/signal_flush.hpp"

#include <atomic>
#include <csignal>
#include <cstdlib>

#include "dcmesh/trace/tracer.hpp"

namespace dcmesh::trace {
namespace {

std::atomic<bool> g_installed{false};

extern "C" void dcmesh_trace_signal_handler(int sig) {
  // Best-effort: flush whatever is buffered, then die by the signal so
  // the parent/scheduler still sees a signal exit.
  tracer::instance().flush_to_env_path();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void install_signal_flush() {
  if (g_installed.exchange(true)) return;
  std::signal(SIGTERM, &dcmesh_trace_signal_handler);
  std::signal(SIGINT, &dcmesh_trace_signal_handler);
}

bool install_signal_flush_from_env() {
  const char* raw =
      std::getenv("DCMESH_TRACE_FLUSH_ON_SIGNAL");
  if (raw != nullptr && raw[0] != '\0' && std::atol(raw) != 0) {
    install_signal_flush();
  }
  return signal_flush_installed();
}

bool signal_flush_installed() noexcept {
  return g_installed.load(std::memory_order_relaxed);
}

}  // namespace dcmesh::trace
