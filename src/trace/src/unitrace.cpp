#include "dcmesh/trace/unitrace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dcmesh::trace {

void unitrace::record(const std::string& kernel, double seconds) {
  kernel_stats& stats = kernels_[kernel];
  stats.min_seconds = std::min(stats.min_seconds, seconds);
  stats.max_seconds = std::max(stats.max_seconds, seconds);
  ++stats.calls;
  stats.total_seconds += seconds;
  total_seconds_ += seconds;
}

std::uint64_t unitrace::total_l0_time_ns() const noexcept {
  return static_cast<std::uint64_t>(std::llround(total_seconds_ * 1e9));
}

std::vector<std::pair<std::string, kernel_stats>> unitrace::report() const {
  std::vector<std::pair<std::string, kernel_stats>> rows(kernels_.begin(),
                                                         kernels_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_seconds > b.second.total_seconds;
  });
  return rows;
}

std::string unitrace::to_string() const {
  std::ostringstream os;
  os << "Total L0 Time (ns): " << total_l0_time_ns() << '\n';
  for (const auto& [name, stats] : report()) {
    os << "  " << name << "  calls=" << stats.calls
       << "  total=" << stats.total_seconds * 1e3 << "ms"
       << "  avg=" << stats.total_seconds * 1e3 / stats.calls << "ms\n";
  }
  return os.str();
}

void unitrace::clear() {
  kernels_.clear();
  total_seconds_ = 0.0;
}

}  // namespace dcmesh::trace
