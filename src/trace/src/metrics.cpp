#include "dcmesh/trace/metrics.hpp"

#include <cstdio>
#include <mutex>
#include <sstream>

namespace dcmesh::trace {
namespace {

std::mutex g_mutex;
std::map<std::string, gemm_site_counters, std::less<>> g_sites;

std::mutex g_health_mutex;
std::map<std::string, std::uint64_t, std::less<>> g_health;

std::mutex g_sched_mutex;
std::map<std::string, std::uint64_t, std::less<>> g_sched;

}  // namespace

void record_gemm_metrics(std::string_view site, std::string_view routine,
                         std::string_view mode_token, double flops,
                         double bytes, double seconds, bool promoted,
                         std::string_view tune_token) {
  std::string key;
  if (site.empty()) {
    key = "untagged/";
    key += routine;
  } else {
    key = site;
  }
  std::lock_guard lock(g_mutex);
  gemm_site_counters& counters = g_sites[key];
  ++counters.calls;
  counters.flops += flops;
  counters.bytes += bytes;
  counters.seconds += seconds;
  if (promoted) ++counters.fallback_promotions;
  auto it = counters.mode_calls.find(mode_token);
  if (it == counters.mode_calls.end()) {
    counters.mode_calls.emplace(std::string(mode_token), 1);
  } else {
    ++it->second;
  }
  if (!tune_token.empty()) {
    auto tune_it = counters.tune_calls.find(tune_token);
    if (tune_it == counters.tune_calls.end()) {
      counters.tune_calls.emplace(std::string(tune_token), 1);
    } else {
      ++tune_it->second;
    }
  }
}

std::vector<std::pair<std::string, gemm_site_counters>> gemm_metrics() {
  std::lock_guard lock(g_mutex);
  return {g_sites.begin(), g_sites.end()};
}

gemm_site_counters gemm_metrics_for(std::string_view site) {
  std::lock_guard lock(g_mutex);
  const auto it = g_sites.find(site);
  return it == g_sites.end() ? gemm_site_counters{} : it->second;
}

void clear_gemm_metrics() {
  std::lock_guard lock(g_mutex);
  g_sites.clear();
}

std::string gemm_metrics_report() {
  const auto sites = gemm_metrics();
  std::ostringstream os;
  os << "GEMM site counters (" << sites.size() << " sites)\n";
  char buffer[160];
  for (const auto& [site, c] : sites) {
    std::snprintf(buffer, sizeof(buffer),
                  "  %-32s calls=%llu  gflop=%.3f  GB=%.3f  time=%.3fms"
                  "  promotions=%llu  modes=",
                  site.c_str(), static_cast<unsigned long long>(c.calls),
                  c.flops * 1e-9, c.bytes * 1e-9, c.seconds * 1e3,
                  static_cast<unsigned long long>(c.fallback_promotions));
    os << buffer;
    bool first = true;
    for (const auto& [mode, calls] : c.mode_calls) {
      if (!first) os << ',';
      first = false;
      os << mode << ':' << calls;
    }
    if (!c.tune_calls.empty()) {
      os << "  tune=";
      first = true;
      for (const auto& [provenance, calls] : c.tune_calls) {
        if (!first) os << ',';
        first = false;
        os << provenance << ':' << calls;
      }
    }
    os << '\n';
  }
  const auto health = health_counters();
  if (!health.empty()) {
    os << "  health:";
    for (const auto& [kind, count] : health) {
      os << ' ' << kind << '=' << count;
    }
    os << '\n';
  }
  const auto sched = sched_counters();
  if (!sched.empty()) {
    os << "  sched=";
    bool first = true;
    for (const auto& [kind, count] : sched) {
      if (!first) os << ' ';
      first = false;
      os << kind << ':' << count;
    }
    os << '\n';
  }
  return os.str();
}

void record_health_counter(std::string_view kind) {
  std::lock_guard lock(g_health_mutex);
  auto it = g_health.find(kind);
  if (it == g_health.end()) {
    g_health.emplace(std::string(kind), 1);
  } else {
    ++it->second;
  }
}

std::vector<std::pair<std::string, std::uint64_t>> health_counters() {
  std::lock_guard lock(g_health_mutex);
  return {g_health.begin(), g_health.end()};
}

std::uint64_t health_counter(std::string_view kind) {
  std::lock_guard lock(g_health_mutex);
  const auto it = g_health.find(kind);
  return it == g_health.end() ? 0 : it->second;
}

void clear_health_counters() {
  std::lock_guard lock(g_health_mutex);
  g_health.clear();
}

void record_sched_counter(std::string_view kind, std::uint64_t delta) {
  std::lock_guard lock(g_sched_mutex);
  auto it = g_sched.find(kind);
  if (it == g_sched.end()) {
    g_sched.emplace(std::string(kind), delta);
  } else {
    it->second += delta;
  }
}

std::vector<std::pair<std::string, std::uint64_t>> sched_counters() {
  std::lock_guard lock(g_sched_mutex);
  return {g_sched.begin(), g_sched.end()};
}

std::uint64_t sched_counter(std::string_view kind) {
  std::lock_guard lock(g_sched_mutex);
  const auto it = g_sched.find(kind);
  return it == g_sched.end() ? 0 : it->second;
}

void clear_sched_counters() {
  std::lock_guard lock(g_sched_mutex);
  g_sched.clear();
}

}  // namespace dcmesh::trace
