#include "dcmesh/trace/tracer.hpp"

#include "dcmesh/trace/signal_flush.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>

namespace dcmesh::trace {
namespace {

/// Per-thread cap: a 10-step driver run on the large preset emits a few
/// hundred thousand GEMM spans at most; beyond this the thread drops
/// (counted) rather than growing without bound.
constexpr std::size_t kMaxEventsPerThread = 1 << 20;

struct thread_buffer {
  mutable std::mutex mutex;          // owner append vs. flusher snapshot
  std::vector<trace_event> events;   // guarded by mutex
  std::uint32_t tid = 0;
};

double ns_to_us(std::uint64_t ns) {
  return static_cast<double>(ns) * 1e-3;
}

/// DCMESH_TRACE_JSON value; nullptr when unset/empty.  Re-read on every
/// call (tests flip it at run time).  The name must be a plain literal:
/// this runs from an atexit handler, after any static std::string would
/// already have been destroyed.
const char* trace_env_path() {
  const char* path = std::getenv("DCMESH_TRACE_JSON");
  return (path != nullptr && path[0] != '\0') ? path : nullptr;
}

std::mutex g_model_mutex;
std::function<double(const gemm_model_query&)> g_model;  // guarded above

}  // namespace

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", ch);
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
}

struct tracer::impl {
  std::chrono::steady_clock::time_point epoch;
  std::atomic<bool> forced{false};
  std::atomic<std::uint64_t> dropped{0};

  std::mutex registry_mutex;
  // shared_ptr keeps a buffer alive past its owning thread's exit so the
  // events survive until flush.
  std::vector<std::shared_ptr<thread_buffer>> buffers;  // guarded above

  std::shared_ptr<thread_buffer>& local_buffer() {
    thread_local std::shared_ptr<thread_buffer> buffer;
    if (!buffer) {
      buffer = std::make_shared<thread_buffer>();
      std::lock_guard lock(registry_mutex);
      buffer->tid = static_cast<std::uint32_t>(buffers.size() + 1);
      buffers.push_back(buffer);
    }
    return buffer;
  }
};

tracer::tracer() : impl_(new impl) {
  impl_->epoch = std::chrono::steady_clock::now();
  // Real runs (examples, the driver) get their trace without any explicit
  // flush call: write whatever is buffered when the process exits.
  std::atexit([] { tracer::instance().flush_to_env_path(); });
  // Opt-in last-gasp dump when a scheduler kills the run (SIGTERM/SIGINT
  // skip atexit); see signal_flush.hpp.
  install_signal_flush_from_env();
}

tracer& tracer::instance() {
  static tracer the_tracer;
  return the_tracer;
}

bool tracer::enabled() const {
  if (impl_->forced.load(std::memory_order_relaxed)) return true;
  return trace_env_path() != nullptr;
}

void tracer::set_enabled(bool on) {
  impl_->forced.store(on, std::memory_order_relaxed);
}

std::uint64_t tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - impl_->epoch)
          .count());
}

void tracer::record(trace_event event) {
  auto& buffer = impl_->local_buffer();
  std::lock_guard lock(buffer->mutex);
  if (buffer->events.size() >= kMaxEventsPerThread) {
    impl_->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  event.tid = buffer->tid;
  buffer->events.push_back(std::move(event));
}

std::vector<trace_event> tracer::snapshot() const {
  std::vector<std::shared_ptr<thread_buffer>> buffers;
  {
    std::lock_guard lock(impl_->registry_mutex);
    buffers = impl_->buffers;
  }
  std::vector<trace_event> merged;
  for (const auto& buffer : buffers) {
    std::lock_guard lock(buffer->mutex);
    merged.insert(merged.end(), buffer->events.begin(),
                  buffer->events.end());
  }
  return merged;
}

std::size_t tracer::event_count() const {
  std::size_t count = 0;
  std::lock_guard lock(impl_->registry_mutex);
  for (const auto& buffer : impl_->buffers) {
    std::lock_guard buffer_lock(buffer->mutex);
    count += buffer->events.size();
  }
  return count;
}

std::uint64_t tracer::dropped_count() const {
  return impl_->dropped.load(std::memory_order_relaxed);
}

std::string tracer::to_chrome_json() const {
  const auto events = snapshot();
  std::string out = "{\"traceEvents\":[";
  char buffer[128];
  bool first = true;
  for (const auto& event : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, event.name);
    out += "\",\"cat\":\"";
    append_json_escaped(out, event.category);
    std::snprintf(buffer, sizeof(buffer),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%u",
                  ns_to_us(event.ts_ns), ns_to_us(event.dur_ns), event.tid);
    out += buffer;
    if (!event.args_json.empty()) {
      out += ",\"args\":{";
      out += event.args_json;
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

bool tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  os << to_chrome_json() << '\n';
  return static_cast<bool>(os);
}

bool tracer::flush_to_env_path() const {
  const char* path = trace_env_path();
  if (path == nullptr) return false;
  const bool ok = write_chrome_trace(path);
  if (!ok) {
    // An unwritable DCMESH_TRACE_JSON must not abort the run (this is
    // reached from an atexit handler): one clear warning, trace dropped.
    std::fprintf(stderr,
                 "dcmesh: cannot write DCMESH_TRACE_JSON file \"%s\"; "
                 "trace discarded\n",
                 path);
  }
  return ok;
}

void tracer::clear() {
  std::lock_guard lock(impl_->registry_mutex);
  for (const auto& buffer : impl_->buffers) {
    std::lock_guard buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

span::span(std::string name, std::string category)
    : active_(tracer::instance().enabled()) {
  if (!active_) return;
  event_.name = std::move(name);
  event_.category = std::move(category);
  event_.ts_ns = tracer::instance().now_ns();
}

span::~span() {
  if (!active_) return;
  auto& sink = tracer::instance();
  const std::uint64_t now = sink.now_ns();
  event_.dur_ns = now > event_.ts_ns ? now - event_.ts_ns : 0;
  sink.record(std::move(event_));
}

void span::arg(std::string_view key, std::string_view value) {
  if (!active_) return;
  if (!event_.args_json.empty()) event_.args_json += ',';
  event_.args_json += '"';
  append_json_escaped(event_.args_json, key);
  event_.args_json += "\":\"";
  append_json_escaped(event_.args_json, value);
  event_.args_json += '"';
}

void span::arg(std::string_view key, double value) {
  if (!active_) return;
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  if (!event_.args_json.empty()) event_.args_json += ',';
  event_.args_json += '"';
  append_json_escaped(event_.args_json, key);
  event_.args_json += "\":";
  event_.args_json += buffer;
}

void span::arg(std::string_view key, std::int64_t value) {
  if (!active_) return;
  if (!event_.args_json.empty()) event_.args_json += ',';
  event_.args_json += '"';
  append_json_escaped(event_.args_json, key);
  event_.args_json += "\":";
  event_.args_json += std::to_string(value);
}

void set_gemm_time_model(
    std::function<double(const gemm_model_query&)> fn) {
  std::lock_guard lock(g_model_mutex);
  g_model = std::move(fn);
}

double predicted_gemm_seconds(const gemm_model_query& query) {
  std::function<double(const gemm_model_query&)> model;
  {
    std::lock_guard lock(g_model_mutex);
    model = g_model;
  }
  if (!model) return -1.0;
  return model(query);
}

}  // namespace dcmesh::trace
