#include "dcmesh/resil/fault_plan.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <stdexcept>

#include "dcmesh/common/env.hpp"
#include "dcmesh/common/rng.hpp"

namespace dcmesh::resil {
namespace {

/// Active plan plus its per-rule occurrence counters.
struct plan_state {
  fault_plan plan;
  std::vector<std::int64_t> matched;  ///< Matching calls seen, per rule.
  std::uint64_t seed = 0;
};

std::mutex g_mutex;
// All guarded by g_mutex:
std::optional<fault_plan> g_programmatic;
plan_state g_state;
std::string g_env_cache;     ///< Raw env text the state was parsed from.
bool g_env_cache_valid = false;
bool g_env_warned = false;

// Lock-free fast path: true while a programmatic plan is installed (the
// env fast path is the getenv itself).
std::atomic<bool> g_have_programmatic{false};
std::atomic<std::uint64_t> g_injections{0};

void rearm(plan_state& state, fault_plan plan) {
  state.plan = std::move(plan);
  state.matched.assign(state.plan.rules.size(), 0);
  state.seed = static_cast<std::uint64_t>(
      env_get_int(kFaultSeedEnvVar, 0x5eed));
}

/// Re-parse the environment plan when its text changed.  Malformed text
/// warns once and leaves an empty (disabled) plan installed — the
/// env-robustness contract: never throw from the GEMM hot path.
void refresh_from_env_locked() {
  const auto raw = env_get(kFaultPlanEnvVar);
  const std::string text = raw.value_or("");
  if (g_env_cache_valid && text == g_env_cache) return;
  g_env_cache = text;
  g_env_cache_valid = true;
  try {
    rearm(g_state, text.empty() ? fault_plan{} : parse_fault_plan(text));
  } catch (const std::invalid_argument& error) {
    if (!g_env_warned) {
      std::fprintf(stderr,
                   "dcmesh: malformed %s \"%s\" (%s); fault injection "
                   "disabled\n",
                   std::string(kFaultPlanEnvVar).c_str(), text.c_str(),
                   error.what());
      g_env_warned = true;
    }
    rearm(g_state, fault_plan{});
  }
}

}  // namespace

std::string_view name(fault_kind kind) noexcept {
  switch (kind) {
    case fault_kind::bitflip: return "bitflip";
    case fault_kind::bitflip_a: return "bitflip_a";
    case fault_kind::bitflip_b: return "bitflip_b";
    case fault_kind::nan_value: return "nan";
    case fault_kind::inf_value: return "inf";
    case fault_kind::scale: return "scale";
  }
  return "?";
}

bool glob_match(std::string_view pattern, std::string_view text) noexcept {
  // Iterative '*' backtracking (same semantics as blas::glob_match).
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

fault_plan parse_fault_plan(std::string_view text) {
  fault_plan plan;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find_first_of(";,", begin);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view rule_text = trim(text.substr(begin, end - begin));
    begin = end + 1;
    if (rule_text.empty()) {
      if (end == text.size()) break;
      continue;
    }

    // site-glob ':' call# ':' kind [':' param [':' hits]] — split on ':'.
    std::vector<std::string_view> fields;
    std::size_t field_begin = 0;
    while (field_begin <= rule_text.size()) {
      std::size_t field_end = rule_text.find(':', field_begin);
      if (field_end == std::string_view::npos) field_end = rule_text.size();
      fields.push_back(
          trim(rule_text.substr(field_begin, field_end - field_begin)));
      if (field_end == rule_text.size()) break;
      field_begin = field_end + 1;
    }
    const std::string context = "fault rule \"" + std::string(rule_text) +
                                "\"";
    if (fields.size() < 3 || fields.size() > 5) {
      throw std::invalid_argument(
          context + ": expected site-glob:call#:kind[:param[:hits]]");
    }
    fault_rule rule;
    rule.pattern = std::string(fields[0]);
    if (rule.pattern.empty()) {
      throw std::invalid_argument(context + ": empty site glob");
    }

    if (fields[1] == "*") {
      rule.call_index = -1;
    } else {
      char* parse_end = nullptr;
      const std::string index_text(fields[1]);
      const long long parsed =
          std::strtoll(index_text.c_str(), &parse_end, 10);
      if (index_text.empty() || parse_end != index_text.c_str() +
                                    index_text.size() ||
          parsed < 0) {
        throw std::invalid_argument(context + ": bad call index \"" +
                                    index_text + "\"");
      }
      rule.call_index = parsed;
    }

    const std::string kind_token = to_upper(fields[2]);
    if (kind_token == "BITFLIP") {
      rule.kind = fault_kind::bitflip;
    } else if (kind_token == "BITFLIP_A") {
      rule.kind = fault_kind::bitflip_a;
    } else if (kind_token == "BITFLIP_B") {
      rule.kind = fault_kind::bitflip_b;
    } else if (kind_token == "NAN") {
      rule.kind = fault_kind::nan_value;
    } else if (kind_token == "INF") {
      rule.kind = fault_kind::inf_value;
    } else if (kind_token == "SCALE") {
      rule.kind = fault_kind::scale;
    } else {
      throw std::invalid_argument(context + ": unknown fault kind \"" +
                                  std::string(fields[2]) + "\"");
    }

    if (fields.size() >= 4) {
      const std::string param_text(fields[3]);
      // An empty param is allowed when a hits field follows
      // ("site:0:bitflip_a::3" — random bit, three elements).
      if (!param_text.empty() || fields.size() == 4) {
        char* parse_end = nullptr;
        const double parsed = std::strtod(param_text.c_str(), &parse_end);
        if (param_text.empty() ||
            parse_end != param_text.c_str() + param_text.size()) {
          throw std::invalid_argument(context + ": bad param \"" +
                                      param_text + "\"");
        }
        rule.param = parsed;
      }
    }
    if (fields.size() == 5) {
      char* parse_end = nullptr;
      const std::string hits_text(fields[4]);
      const long long parsed =
          std::strtoll(hits_text.c_str(), &parse_end, 10);
      if (hits_text.empty() ||
          parse_end != hits_text.c_str() + hits_text.size() || parsed < 1) {
        throw std::invalid_argument(context + ": bad hit count \"" +
                                    hits_text + "\"");
      }
      rule.hits = parsed;
    }
    plan.rules.push_back(std::move(rule));
    if (end == text.size()) break;
  }
  return plan;
}

std::optional<fault_hit> next_fault(std::string_view site) {
  // Fast path: no programmatic plan and no env text -> inert.
  if (!g_have_programmatic.load(std::memory_order_relaxed)) {
    const char* raw =
        std::getenv(std::string(kFaultPlanEnvVar).c_str());
    if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  }

  std::lock_guard lock(g_mutex);
  if (g_programmatic) {
    // nothing to refresh — counters live in g_state already
  } else {
    refresh_from_env_locked();
  }
  if (g_state.plan.empty()) return std::nullopt;

  std::optional<fault_hit> hit;
  for (std::size_t r = 0; r < g_state.plan.rules.size(); ++r) {
    const fault_rule& rule = g_state.plan.rules[r];
    if (!glob_match(rule.pattern, site)) continue;
    const std::int64_t occurrence = g_state.matched[r]++;
    if (hit) continue;  // first firing rule wins, but counters still run
    if (rule.call_index >= 0 && rule.call_index != occurrence) continue;
    // Deterministic draws: one xoshiro stream per (seed, rule, occurrence).
    const std::uint64_t stream =
        g_state.seed +
        0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(r) +
        0xd1b54a32d192ed03ull * static_cast<std::uint64_t>(occurrence);
    xoshiro256 rng(stream);
    fault_hit h;
    h.kind = rule.kind;
    h.param = rule.param;
    h.pick0 = rng();
    h.pick1 = rng();
    h.rule = static_cast<int>(r);
    h.occurrence = occurrence;
    h.hits = rule.hits;
    h.draw_seed = stream;
    hit = h;
  }
  if (hit) g_injections.fetch_add(1, std::memory_order_relaxed);
  return hit;
}

void set_fault_plan(std::optional<fault_plan> plan) {
  std::lock_guard lock(g_mutex);
  g_programmatic = std::move(plan);
  g_have_programmatic.store(g_programmatic.has_value(),
                            std::memory_order_relaxed);
  if (g_programmatic) {
    rearm(g_state, *g_programmatic);
  } else {
    g_env_cache_valid = false;  // re-read the env on the next query
    rearm(g_state, fault_plan{});
  }
  g_injections.store(0, std::memory_order_relaxed);
}

void reset_fault_state() {
  std::lock_guard lock(g_mutex);
  if (g_programmatic) {
    rearm(g_state, *g_programmatic);
  } else {
    g_env_cache_valid = false;
    g_env_warned = false;
    rearm(g_state, fault_plan{});
  }
  g_injections.store(0, std::memory_order_relaxed);
}

std::uint64_t injection_count() {
  return g_injections.load(std::memory_order_relaxed);
}

}  // namespace dcmesh::resil
