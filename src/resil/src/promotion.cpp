#include "dcmesh/resil/promotion.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>

#include "dcmesh/resil/fault_plan.hpp"  // glob_match
#include "dcmesh/resil/health.hpp"

namespace dcmesh::resil {
namespace {

std::mutex g_mutex;
std::vector<promotion_entry> g_entries;      // guarded by g_mutex
std::atomic<std::size_t> g_entry_count{0};   // mirrors g_entries.size()

}  // namespace

void promote_sites(std::string_view pattern, int levels, int series_ttl) {
  levels = std::max(1, levels);
  series_ttl = std::max(1, series_ttl);
  {
    std::lock_guard lock(g_mutex);
    auto it = std::find_if(
        g_entries.begin(), g_entries.end(),
        [&](const promotion_entry& e) { return e.pattern == pattern; });
    if (it != g_entries.end()) {
      it->levels = std::max(it->levels, levels);
      it->series_left = std::max(it->series_left, series_ttl);
    } else {
      g_entries.push_back(
          {std::string(pattern), levels, series_ttl});
    }
    g_entry_count.store(g_entries.size(), std::memory_order_release);
  }
  char detail[96];
  std::snprintf(detail, sizeof(detail), "levels=%d series=%d", levels,
                series_ttl);
  record_health_event("promote", pattern, detail);
}

int promotion_steps(std::string_view site) {
  if (g_entry_count.load(std::memory_order_acquire) == 0) return 0;
  std::lock_guard lock(g_mutex);
  int steps = 0;
  for (const promotion_entry& entry : g_entries) {
    if (glob_match(entry.pattern, site)) {
      steps = std::max(steps, entry.levels);
    }
  }
  return steps;
}

void tick_promotions() {
  if (g_entry_count.load(std::memory_order_acquire) == 0) return;
  std::lock_guard lock(g_mutex);
  for (auto it = g_entries.begin(); it != g_entries.end();) {
    if (--it->series_left <= 0) {
      it = g_entries.erase(it);
    } else {
      ++it;
    }
  }
  g_entry_count.store(g_entries.size(), std::memory_order_release);
}

void clear_promotions() {
  std::lock_guard lock(g_mutex);
  g_entries.clear();
  g_entry_count.store(0, std::memory_order_release);
}

std::vector<promotion_entry> promotion_snapshot() {
  std::lock_guard lock(g_mutex);
  return g_entries;
}

}  // namespace dcmesh::resil
