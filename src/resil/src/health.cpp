#include "dcmesh/resil/health.hpp"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include "dcmesh/common/env.hpp"
#include "dcmesh/trace/metrics.hpp"
#include "dcmesh/trace/tracer.hpp"

namespace dcmesh::resil {
namespace {

std::mutex g_mutex;
// Lock-free fast path flag mirroring g_forced.has_value().
std::atomic<bool> g_have_forced{false};
// Guarded by g_mutex:
std::optional<health_level> g_forced;
std::string g_env_cache;
bool g_env_cache_valid = false;
health_level g_env_level = health_level::off;
bool g_level_warned = false;

/// Parse one DCMESH_HEALTH token; nullopt when unrecognised.
std::optional<health_level> parse_level(std::string_view token) {
  const std::string upper = to_upper(trim(token));
  if (upper == "OFF" || upper == "0") return health_level::off;
  if (upper == "SAMPLE" || upper == "1") return health_level::sample;
  if (upper == "FULL" || upper == "2") return health_level::full;
  return std::nullopt;
}

/// Env double with warn-once fallback (shared by the limit knobs).
double env_limit(std::string_view var, double fallback) {
  const auto raw = env_get(var);
  if (!raw) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(raw->c_str(), &end);
  if (end != raw->c_str() + raw->size() || !(parsed > 0.0)) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "dcmesh: malformed health limit %s=\"%s\" (want a "
                   "positive number); using the default\n",
                   std::string(var).c_str(), raw->c_str());
    }
    return fallback;
  }
  return parsed;
}

// Sample-cadence call counter (process-wide, advanced by
// health_sample_due).
std::atomic<std::uint64_t> g_sample_counter{0};

}  // namespace

std::string_view name(health_level level) noexcept {
  switch (level) {
    case health_level::off: return "off";
    case health_level::sample: return "sample";
    case health_level::full: return "full";
  }
  return "off";
}

health_level active_health_level() {
  // Fast path: nothing forced, nothing in the environment — one getenv,
  // no lock (the GEMM hot path runs this per call).
  const char* raw = std::getenv(std::string(kHealthEnvVar).c_str());
  if ((raw == nullptr || raw[0] == '\0') &&
      !g_have_forced.load(std::memory_order_relaxed)) {
    return health_level::off;
  }
  std::lock_guard lock(g_mutex);
  if (g_forced) return *g_forced;
  const std::string text = (raw != nullptr) ? raw : "";
  if (g_env_cache_valid && text == g_env_cache) return g_env_level;
  g_env_cache = text;
  g_env_cache_valid = true;
  if (text.empty()) {
    g_env_level = health_level::off;
    return g_env_level;
  }
  const auto parsed = parse_level(text);
  if (!parsed) {
    // Malformed: warn once, disable the feature — never throw.
    if (!g_level_warned) {
      std::fprintf(stderr,
                   "dcmesh: unrecognised %s value \"%s\" (expected "
                   "off|sample|full); health sentinel disabled\n",
                   std::string(kHealthEnvVar).c_str(), text.c_str());
      g_level_warned = true;
    }
    g_env_level = health_level::off;
  } else {
    g_env_level = *parsed;
  }
  return g_env_level;
}

void set_health_level(std::optional<health_level> level) {
  std::lock_guard lock(g_mutex);
  g_forced = level;
  g_have_forced.store(level.has_value(), std::memory_order_relaxed);
  g_env_cache_valid = false;  // re-read (and re-warn-check) the env later
  g_level_warned = false;
}

invariant_limits active_limits() {
  invariant_limits limits;
  limits.norm_drift_max = env_limit(kNormDriftEnvVar, limits.norm_drift_max);
  limits.value_max = env_limit(kValueMaxEnvVar, limits.value_max);
  limits.ekin_jump_rel = env_limit(kEkinJumpEnvVar, limits.ekin_jump_rel);
  return limits;
}

std::uint64_t health_sample_period() {
  const auto raw = env_get(kHealthSampleEnvVar);
  if (!raw) return 1;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw->c_str(), &end, 10);
  if (end != raw->c_str() + raw->size() || parsed <= 0) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "dcmesh: malformed %s=\"%s\" (want a positive "
                   "integer); scanning every call\n",
                   std::string(kHealthSampleEnvVar).c_str(), raw->c_str());
    }
    return 1;
  }
  return static_cast<std::uint64_t>(parsed);
}

bool health_sample_due() {
  const std::uint64_t period = health_sample_period();
  const std::uint64_t tick =
      g_sample_counter.fetch_add(1, std::memory_order_relaxed);
  return period <= 1 || tick % period == 0;
}

void reset_health_sampling() {
  g_sample_counter.store(0, std::memory_order_relaxed);
}

void record_health_event(std::string_view kind, std::string_view site,
                         std::string_view detail) {
  trace::record_health_counter(kind);
  auto& collector = trace::tracer::instance();
  if (collector.enabled()) {
    trace::trace_event event;
    event.name = std::string(kind);
    event.category = "health";
    event.ts_ns = collector.now_ns();
    event.dur_ns = 0;
    event.args_json = "\"site\":\"";
    trace::append_json_escaped(event.args_json, site);
    event.args_json += "\",\"detail\":\"";
    trace::append_json_escaped(event.args_json, detail);
    event.args_json += "\"";
    collector.record(std::move(event));
  }
  if (env_get_int("MKL_VERBOSE", 0) >= 1) {
    std::fprintf(stderr, "DCMESH_RESIL %s site=%s %s\n",
                 std::string(kind).c_str(), std::string(site).c_str(),
                 std::string(detail).c_str());
  }
}

}  // namespace dcmesh::resil
