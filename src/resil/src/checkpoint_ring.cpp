#include "dcmesh/resil/checkpoint_ring.hpp"

#include <algorithm>

namespace dcmesh::resil {

checkpoint_ring::checkpoint_ring(std::size_t capacity)
    : slots_(std::max<std::size_t>(1, capacity)) {}

void checkpoint_ring::push(std::uint64_t label, std::uint64_t aux,
                           std::string blob) {
  ring_slot& slot = slots_[next_];
  slot.label = label;
  slot.aux = aux;
  slot.blob = std::move(blob);
  next_ = (next_ + 1) % slots_.size();
  count_ = std::min(count_ + 1, slots_.size());
}

const ring_slot* checkpoint_ring::latest() const noexcept {
  if (count_ == 0) return nullptr;
  const std::size_t last = (next_ + slots_.size() - 1) % slots_.size();
  return &slots_[last];
}

void checkpoint_ring::drop_latest() noexcept {
  if (count_ == 0) return;
  next_ = (next_ + slots_.size() - 1) % slots_.size();
  slots_[next_].blob.clear();
  slots_[next_].blob.shrink_to_fit();
  --count_;
}

std::size_t checkpoint_ring::bytes() const noexcept {
  std::size_t total = 0;
  for (const ring_slot& slot : slots_) total += slot.blob.size();
  return total;
}

void checkpoint_ring::clear() noexcept {
  for (ring_slot& slot : slots_) {
    slot.blob.clear();
    slot.blob.shrink_to_fit();
  }
  next_ = 0;
  count_ = 0;
}

}  // namespace dcmesh::resil
