#include "dcmesh/resil/abft.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <limits>
#include <mutex>
#include <string>

#include "dcmesh/common/env.hpp"

namespace dcmesh::resil {
namespace {

std::mutex g_mutex;
// Lock-free fast path flag mirroring g_forced.has_value().
std::atomic<bool> g_have_forced{false};
// Guarded by g_mutex:
std::optional<abft_mode> g_forced;
std::string g_env_cache;
bool g_env_cache_valid = false;
abft_mode g_env_mode = abft_mode::off;
bool g_mode_warned = false;

template <typename T, typename Bits>
T snap_impl(T faulty, double target, double tol) noexcept {
  static_assert(sizeof(T) == sizeof(Bits));
  Bits bits;
  std::memcpy(&bits, &faulty, sizeof(T));
  T best{};
  double best_dist = std::numeric_limits<double>::infinity();
  for (unsigned bit = 0; bit < 8 * sizeof(T); ++bit) {
    const Bits cand_bits = bits ^ (Bits{1} << bit);
    T cand;
    std::memcpy(&cand, &cand_bits, sizeof(T));
    if (!std::isfinite(cand)) continue;
    const double dist = std::abs(static_cast<double>(cand) - target);
    if (dist < best_dist) {
      best = cand;
      best_dist = dist;
    }
  }
  if (best_dist <= tol) return best;
  const T rounded = static_cast<T>(target);
  return std::isfinite(rounded) ? rounded : faulty;
}

}  // namespace

std::string_view name(abft_mode mode) noexcept {
  switch (mode) {
    case abft_mode::off: return "off";
    case abft_mode::detect: return "detect";
    case abft_mode::correct: return "correct";
  }
  return "off";
}

std::optional<abft_mode> parse_abft_mode(std::string_view token) {
  const std::string upper = to_upper(trim(token));
  if (upper == "OFF" || upper == "0") return abft_mode::off;
  if (upper == "DETECT" || upper == "1") return abft_mode::detect;
  if (upper == "CORRECT" || upper == "2") return abft_mode::correct;
  return std::nullopt;
}

abft_mode active_abft_mode() {
  // Fast path: nothing forced, nothing in the environment — one getenv,
  // no lock (the GEMM hot path runs this per call).
  const char* raw = std::getenv(std::string(kAbftEnvVar).c_str());
  if ((raw == nullptr || raw[0] == '\0') &&
      !g_have_forced.load(std::memory_order_relaxed)) {
    return abft_mode::off;
  }
  std::lock_guard lock(g_mutex);
  if (g_forced) return *g_forced;
  const std::string text = (raw != nullptr) ? raw : "";
  if (g_env_cache_valid && text == g_env_cache) return g_env_mode;
  g_env_cache = text;
  g_env_cache_valid = true;
  if (text.empty()) {
    g_env_mode = abft_mode::off;
    return g_env_mode;
  }
  const auto parsed = parse_abft_mode(text);
  if (!parsed) {
    // Malformed: warn once, disable the feature — never throw.
    if (!g_mode_warned) {
      std::fprintf(stderr,
                   "dcmesh: unrecognised %s value \"%s\" (expected "
                   "off|detect|correct); ABFT disabled\n",
                   std::string(kAbftEnvVar).c_str(), text.c_str());
      g_mode_warned = true;
    }
    g_env_mode = abft_mode::off;
  } else {
    g_env_mode = *parsed;
  }
  return g_env_mode;
}

void set_abft_mode(std::optional<abft_mode> mode) {
  std::lock_guard lock(g_mutex);
  g_forced = mode;
  g_have_forced.store(mode.has_value(), std::memory_order_relaxed);
  g_env_cache_valid = false;  // re-read (and re-warn-check) the env later
  g_mode_warned = false;
}

abft_thresholds derive_abft_thresholds(const abft_error_model& model,
                                       std::int64_t m, std::int64_t n,
                                       std::int64_t k, double abs_alpha,
                                       double amax_a, double amax_b,
                                       double abs_beta, double amax_c) {
  const double kd = static_cast<double>(k);
  // Forward-error bound of one mode-encoded k-length dot product, as an
  // absolute quantity: |α|·amax_a·amax_b · k·(2·u_repr + (k+2)·u_acc).
  const double dot_err = abs_alpha * amax_a * amax_b * kd *
                         (2.0 * model.u_repr + (kd + 2.0) * model.u_acc);
  abft_thresholds tau;
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  tau.tau_col =
      kAbftSafety * md *
      (dot_err + abs_beta * amax_c * (md + 2.0) * model.u_acc);
  tau.tau_row =
      kAbftSafety * nd *
      (dot_err + abs_beta * amax_c * (nd + 2.0) * model.u_acc);
  return tau;
}

float snap_to_bitflip(float faulty, double target, double tol) noexcept {
  return snap_impl<float, std::uint32_t>(faulty, target, tol);
}

double snap_to_bitflip(double faulty, double target, double tol) noexcept {
  return snap_impl<double, std::uint64_t>(faulty, target, tol);
}

}  // namespace dcmesh::resil
