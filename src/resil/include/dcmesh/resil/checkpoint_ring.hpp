#pragma once
// checkpoint_ring.hpp — a bounded in-memory ring of checkpoint blobs.
//
// The rollback half of the resilience subsystem: core::driver serializes
// itself (core::save_checkpoint, checksummed format) into a blob at series
// boundaries and pushes it here; when a step-level invariant trips, the
// driver restores the latest slot in place and replays the series.  The
// ring is deliberately generic — it stores opaque byte blobs with two
// integer labels — so resil does not depend on core (blas sits between
// them in the link order).
//
// The ring itself is NOT internally synchronized.  Under DCMESH_SCHED=pool
// the driver's checkpoint sealer pushes from a pool worker while the
// series runs; the driver guarantees exclusivity by joining that one
// in-flight job (and quiescing the pool on rollback) before any other
// ring access — a single asynchronous producer, never two.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dcmesh::resil {

/// One ring slot: an opaque serialized state plus caller-defined labels
/// (the driver uses label = series index, aux = record-log length at the
/// checkpoint, so rollback can truncate its observable history too).
struct ring_slot {
  std::uint64_t label = 0;
  std::uint64_t aux = 0;
  std::string blob;
};

/// Fixed-capacity ring; push evicts the oldest slot once full.
class checkpoint_ring {
 public:
  explicit checkpoint_ring(std::size_t capacity = 4);

  /// Append a checkpoint, evicting the oldest when at capacity.
  void push(std::uint64_t label, std::uint64_t aux, std::string blob);

  /// Most recent slot; nullptr when empty.  Stays valid until the next
  /// push/drop/clear.
  [[nodiscard]] const ring_slot* latest() const noexcept;

  /// Discard the most recent slot (fall back to an older checkpoint when
  /// a restore from the latest one keeps failing).
  void drop_latest() noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }
  /// Total bytes held across all slots.
  [[nodiscard]] std::size_t bytes() const noexcept;

  void clear() noexcept;

 private:
  std::vector<ring_slot> slots_;
  std::size_t next_ = 0;   ///< Slot the next push writes.
  std::size_t count_ = 0;  ///< Populated slots.
};

}  // namespace dcmesh::resil
