#pragma once
// health.hpp — the step-level/per-call numerical health sentinel.
//
// Precision faults in DCMESH manifest as slow observable drift or sudden
// non-finite values, not crashes ("Reducing Numerical Precision
// Requirements in Quantum Chemistry Calculations", PAPERS.md), so
// detection lives at two levels:
//  * per-call: a cheap finite scan of the GEMM result at the dispatch
//    choke point (src/blas/src/gemm_dispatch.cpp), sampled or full;
//  * per-step: physics invariants in lfd::engine / core::driver —
//    wavefunction norm conservation, finite and bounded ekin/nexc/javg,
//    a bounded per-step ekin jump.
//
// DCMESH_HEALTH selects the level: off (default — zero hot-path cost
// beyond one getenv), sample (scan up to kSampleScanElems elements of C,
// deterministically strided), full (scan all of C).  Any non-off level
// also arms the step invariants and the driver's checkpoint-ring
// rollback.  A malformed value warns once and behaves as off — the
// env-robustness contract shared with the policy/ISA/trace variables.
//
// Detections become structured "health" events: a counter in the trace
// metrics registry (trace::health_counters()), a zero-duration "health"
// event in the Chrome trace when tracing is on, and an MKL_VERBOSE-gated
// stderr line — so a 2-day campaign's faults are visible in every sink
// the observability layer already exports.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace dcmesh::resil {

/// Per-call finite-scan intensity.
enum class health_level {
  off,     ///< No scanning, no step invariants (the default).
  sample,  ///< Scan up to kSampleScanElems elements of each result.
  full,    ///< Scan every element of each result.
};

/// Display/env token of a level, e.g. "sample".
[[nodiscard]] std::string_view name(health_level level) noexcept;

/// The active level: the programmatic override if set, else DCMESH_HEALTH
/// (re-read per query; malformed values warn once and read as off).
[[nodiscard]] health_level active_health_level();

/// Force a level programmatically (tests/examples); nullopt falls back to
/// the environment.
void set_health_level(std::optional<health_level> level);

/// Step-invariant tolerances, env-overridable (malformed values warn once
/// and keep the default — never throw).
struct invariant_limits {
  /// Max |norm drift| per QD step before the wavefunction norm-
  /// conservation invariant trips (DCMESH_HEALTH_NORM_DRIFT).
  double norm_drift_max = 1e-2;
  /// Bound on |ekin|, |epot|, |etot|, |nexc|, |javg|; NaN/Inf always trip
  /// (DCMESH_HEALTH_VALUE_MAX).
  double value_max = 1e6;
  /// Max relative ekin change between consecutive QD steps
  /// (DCMESH_HEALTH_EKIN_JUMP).
  double ekin_jump_rel = 0.5;
};

/// The active limits (defaults overlaid with the environment).
[[nodiscard]] invariant_limits active_limits();

/// Record one structured health event: bumps the metrics-registry counter
/// for `kind`, emits a zero-duration "health" trace event (site/detail as
/// args) when tracing is enabled, and prints one stderr line when
/// MKL_VERBOSE >= 1.  Kinds used by the subsystem: "inject", "detect",
/// "recover", "unrecovered", "step_invariant", "rollback", "promote".
void record_health_event(std::string_view kind, std::string_view site,
                         std::string_view detail);

/// Sentinel cadence at level sample: DCMESH_HEALTH_SAMPLE=N scans every
/// Nth GEMM call (default 1 = every call).  Malformed or non-positive
/// values warn once and keep the default — never throw.
[[nodiscard]] std::uint64_t health_sample_period();

/// True when the current call is due a sample-level scan: advances a
/// process-wide call counter and fires on every health_sample_period()-th
/// call (the first call always scans).  Level `full` ignores the cadence.
[[nodiscard]] bool health_sample_due();

/// Reset the sampling call counter (tests).
void reset_health_sampling();

/// Elements scanned per result matrix at level sample.
inline constexpr std::size_t kSampleScanElems = 256;

inline constexpr std::string_view kHealthEnvVar = "DCMESH_HEALTH";
inline constexpr std::string_view kHealthSampleEnvVar =
    "DCMESH_HEALTH_SAMPLE";
inline constexpr std::string_view kNormDriftEnvVar =
    "DCMESH_HEALTH_NORM_DRIFT";
inline constexpr std::string_view kValueMaxEnvVar =
    "DCMESH_HEALTH_VALUE_MAX";
inline constexpr std::string_view kEkinJumpEnvVar =
    "DCMESH_HEALTH_EKIN_JUMP";

}  // namespace dcmesh::resil
