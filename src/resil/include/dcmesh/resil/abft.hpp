#pragma once
// abft.hpp — algorithm-based fault tolerance (Huang–Abraham checksums)
// for the real-GEMM chokepoint.
//
// PR 5's health sentinel only catches *non-finite* damage; a transient
// bitflip landing in a mantissa produces a finite-but-wrong C that sails
// through every finite scan.  ABFT closes that hole algebraically: the
// dispatcher augments op(A) with a column-checksum row (e·A) and op(B)
// with a row-checksum column (B·e), runs the unchanged mode-dispatched
// kernel on the (m+1)×(n+1) problem, and verifies the interior row/column
// sums of C against the checksum row/column.  A corrupted element shows
// up as exactly one bad row × one bad column (locate); the residual delta
// plus a bitflip-snap recovers the clean bits (correct); anything
// ambiguous escalates to a rebuilt re-run and then up the mantissa
// promotion ladder.
//
// The detection threshold is intrinsically a *precision* question — the
// paper's theme: a residual bound that is tight for FP64 is noise for
// BF16X2.  τ is therefore derived per compute mode from the same
// componentwise error model the autotuner's ULP budgets use; the
// dispatcher passes the mode's representation/accumulation rounding units
// in (resil sits below blas in the layering and cannot name compute
// modes).
//
// Knob: DCMESH_ABFT = off|detect|correct (default off), overridable per
// policy rule (`abft=` flag in DCMESH_BLAS_POLICY) and per call.
// Malformed values warn once and read as off — the shared env-robustness
// contract.

#include <cmath>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace dcmesh::resil {

/// What the chokepoint does with a checksum mismatch.
enum class abft_mode {
  off,      ///< No augmentation, no checking (the default).
  detect,   ///< Verify + report; the corrupted result is kept.
  correct,  ///< Verify, locate, correct in place, escalate when ambiguous.
};

/// Display/env token of a mode, e.g. "correct".
[[nodiscard]] std::string_view name(abft_mode mode) noexcept;

/// Parse one abft token (case-insensitive: off|detect|correct|0|1|2);
/// nullopt when unrecognised.
[[nodiscard]] std::optional<abft_mode> parse_abft_mode(
    std::string_view token);

/// The active process-wide default: the programmatic override if set,
/// else DCMESH_ABFT (re-read per query; malformed warns once, reads off).
[[nodiscard]] abft_mode active_abft_mode();

/// Force a mode programmatically (tests/driver); nullopt falls back to
/// the environment.
void set_abft_mode(std::optional<abft_mode> mode);

/// Rounding units of the compute mode under check, supplied by the
/// dispatcher (u = 2^-(p+1) for p effective mantissa bits).
struct abft_error_model {
  double u_repr = 0x1p-24;  ///< Representation unit of the mode's operand
                            ///< encoding (2^-24 FP32/BF16X3, 2^-17 BF16X2,
                            ///< 2^-12 TF32, 2^-9 BF16, 2^-53 FP64).
  double u_acc = 0x1p-24;   ///< Accumulation unit of the kernel's
                            ///< accumulator type (FP32 or FP64).
};

/// Residual acceptance thresholds for the two checksum directions.
struct abft_thresholds {
  double tau_col = 0.0;  ///< Bound on |Σ_i C_ij − checksum_row_j|.
  double tau_row = 0.0;  ///< Bound on |Σ_j C_ij − checksum_col_i|.
};

/// Derive τ(mode, shape, data) from the componentwise error model:
///   τ_col = S · m · ( |α|·amax_a·amax_b · k·(2·u_repr + (k+2)·u_acc)
///                    + |β|·amax_c · (m+2)·u_acc )
/// (τ_row symmetric with m↔n).  The first term bounds the forward error
/// of one k-length mode-encoded dot product, summed over the m interior
/// elements plus the checksum element; the second covers the β·C seed of
/// the checksum row/column.  S = kAbftSafety absorbs the split engines'
/// longer accumulation chains (3k/6k partial products for BF16X2/X3).
[[nodiscard]] abft_thresholds derive_abft_thresholds(
    const abft_error_model& model, std::int64_t m, std::int64_t n,
    std::int64_t k, double abs_alpha, double amax_a, double amax_b,
    double abs_beta, double amax_c);

/// Deterministic safety factor in the τ derivation.
inline constexpr double kAbftSafety = 16.0;

/// Checksum-verification verdict over an augmented result: the flagged
/// rows/columns and their signed residuals (interior sum − checksum).
struct abft_scan {
  std::vector<std::int64_t> bad_rows;
  std::vector<std::int64_t> bad_cols;
  std::vector<double> row_delta;  ///< Aligned with bad_rows.
  std::vector<double> col_delta;  ///< Aligned with bad_cols.

  [[nodiscard]] bool clean() const noexcept {
    return bad_rows.empty() && bad_cols.empty();
  }
  /// Exactly one bad row × one bad column: a locatable single element.
  [[nodiscard]] bool single() const noexcept {
    return bad_rows.size() == 1 && bad_cols.size() == 1;
  }
};

/// Verify an (m+1)×(n+1) column-major augmented result (leading dimension
/// ld ≥ m+1): row m holds the column checksums, column n the row
/// checksums.  All sums run in double; a NaN residual always flags.
template <typename T>
[[nodiscard]] abft_scan verify_checksums(const T* caug, std::int64_t ld,
                                         std::int64_t m, std::int64_t n,
                                         const abft_thresholds& tau) {
  abft_scan scan;
  for (std::int64_t j = 0; j < n; ++j) {
    double sum = 0.0;
    const T* col = caug + j * ld;
    for (std::int64_t i = 0; i < m; ++i) sum += static_cast<double>(col[i]);
    const double delta = sum - static_cast<double>(col[m]);
    if (!(std::abs(delta) <= tau.tau_col)) {
      scan.bad_cols.push_back(j);
      scan.col_delta.push_back(delta);
    }
  }
  for (std::int64_t i = 0; i < m; ++i) {
    double sum = 0.0;
    for (std::int64_t j = 0; j < n; ++j)
      sum += static_cast<double>(caug[i + j * ld]);
    const double delta = sum - static_cast<double>(caug[i + n * ld]);
    if (!(std::abs(delta) <= tau.tau_row)) {
      scan.bad_rows.push_back(i);
      scan.row_delta.push_back(delta);
    }
  }
  return scan;
}

/// Bitflip-snap corrector: among the finite single-bitflip neighbours of
/// `faulty`, return the one nearest to `target` (= faulty − residual
/// delta) when it lands within `tol` of the target — recovering the
/// *exact* clean bits of a flipped element, which plain delta correction
/// cannot do once the checksum noise exceeds half a ulp (every low-
/// precision mode).  Falls back to `target` rounded to T when no
/// neighbour qualifies (non-bitflip corruption), and to `faulty` when
/// even that is non-finite.
[[nodiscard]] float snap_to_bitflip(float faulty, double target,
                                    double tol) noexcept;
[[nodiscard]] double snap_to_bitflip(double faulty, double target,
                                     double tol) noexcept;

inline constexpr std::string_view kAbftEnvVar = "DCMESH_ABFT";

}  // namespace dcmesh::resil
