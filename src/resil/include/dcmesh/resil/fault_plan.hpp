#pragma once
// fault_plan.hpp — deterministic, seeded GEMM fault injection.
//
// The paper's accuracy campaigns run for days with reduced-precision BLAS
// sitting deliberately close to the acceptable-error edge; a single silent
// bit flip or NaN mid-trajectory poisons the whole run.  Before trusting
// the health sentinel (health.hpp) and the rollback-and-promote recovery
// (core::driver) we must be able to *prove* they catch faults — which
// needs reproducible faults.  This engine perturbs GEMM results at the
// dispatch choke point (src/blas/src/gemm_dispatch.cpp) according to a
// plan from the DCMESH_FAULT_PLAN environment variable:
//
//   plan := rule (';' rule)*            (',' is also accepted)
//   rule := site-glob ':' call# ':' kind [':' param [':' hits]]
//   call# := <n>                        the n-th matching call (0-based)
//          | '*'                        every matching call
//   kind  := 'bitflip'                  flip one mantissa/exponent bit of C
//                                       (param = bit index; random if absent)
//          | 'bitflip_a'                flip one bit of one element of op(A)
//          | 'bitflip_b'                flip one bit of one element of op(B)
//                                       (input-space kinds: the corruption
//                                       feeds the kernel, so the damage is
//                                       finite-but-wrong arithmetic — the
//                                       exact fault class only the ABFT
//                                       checksums can see)
//          | 'nan'                      overwrite one element with quiet NaN
//          | 'inf'                      overwrite one element with +infinity
//          | 'scale'                    multiply all of C by param
//                                       (default 1024 — a blown exponent
//                                       that stays finite, exercising the
//                                       step-level invariants rather than
//                                       the per-call finite scan)
//   hits  := <n>                        elements to corrupt per firing
//                                       (default 1; element kinds only)
//
// Example: "lfd/calc_energy/*:5:nan;lfd/remap_occ/*:2:bitflip:12".
// Site globs reuse the policy grammar's '*'/'?' matching.  Element and bit
// choices are drawn from a xoshiro256 stream seeded by (DCMESH_FAULT_SEED,
// rule index, occurrence index), so a plan replays identically across runs
// — and a recovery re-run of the same GEMM is NOT re-perturbed, because
// the rule's occurrence counter has already advanced (one fault per
// matching call, exactly like a transient hardware upset).
//
// A malformed plan warns once to stderr and disables injection (it never
// throws from the hot path); parse_fault_plan() throws for programmatic
// callers who want the error.  With no plan installed the per-call check
// is a single getenv that reduces to a no-op.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dcmesh::resil {

/// What an injected fault does to the GEMM call.
enum class fault_kind {
  bitflip,    ///< XOR one bit of one element of C (real part).
  bitflip_a,  ///< XOR one bit of one element of op(A) before the kernel.
  bitflip_b,  ///< XOR one bit of one element of op(B) before the kernel.
  nan_value,  ///< Overwrite one element of C with a quiet NaN.
  inf_value,  ///< Overwrite one element of C with +infinity.
  scale,      ///< Multiply every element of C by the rule's param.
};

/// Grammar token of a fault kind, e.g. "bitflip".
[[nodiscard]] std::string_view name(fault_kind kind) noexcept;

/// Input-space kinds corrupt the operands the kernel consumes rather
/// than the result it produced.
[[nodiscard]] constexpr bool is_input_fault(fault_kind kind) noexcept {
  return kind == fault_kind::bitflip_a || kind == fault_kind::bitflip_b;
}

/// One parsed plan rule.
struct fault_rule {
  std::string pattern;            ///< Site glob ('*' and '?').
  std::int64_t call_index = 0;    ///< n-th matching call; -1 = every call.
  fault_kind kind = fault_kind::nan_value;
  std::optional<double> param;    ///< bit index (bitflip*) / factor (scale).
  std::int64_t hits = 1;          ///< Elements corrupted per firing.
};

/// An ordered list of rules; the first rule that fires wins for a call.
struct fault_plan {
  std::vector<fault_rule> rules;
  [[nodiscard]] bool empty() const noexcept { return rules.empty(); }
};

/// Parse plan text per the grammar above.  Throws std::invalid_argument
/// naming the offending rule (missing field, unknown kind, bad call#).
[[nodiscard]] fault_plan parse_fault_plan(std::string_view text);

/// A fault that should be applied to the current call.
struct fault_hit {
  fault_kind kind = fault_kind::nan_value;
  std::optional<double> param;    ///< From the rule; kind-specific.
  std::uint64_t pick0 = 0;        ///< Deterministic draw (element choice).
  std::uint64_t pick1 = 0;        ///< Deterministic draw (bit choice).
  int rule = 0;                   ///< Index of the rule that fired.
  std::int64_t occurrence = 0;    ///< Which matching call this was.
  std::int64_t hits = 1;          ///< Elements to corrupt this firing.
  std::uint64_t draw_seed = 0;    ///< Stream seed: re-derive further draws
                                  ///< for multi-hit application (pick0 and
                                  ///< pick1 are the stream's first two).
};

/// Ask whether the active plan injects into this call.  Advances the
/// per-rule occurrence counters for every matching rule (so rules with a
/// fixed call# are one-shot), returns the first rule that fires.  Cheap
/// (one getenv) when no plan is installed.  Thread-safe; deterministic for
/// the serial call order of the driver loop.
[[nodiscard]] std::optional<fault_hit> next_fault(std::string_view site);

/// Install a plan programmatically (overrides DCMESH_FAULT_PLAN until
/// reset with std::nullopt).  Resets the occurrence counters.
void set_fault_plan(std::optional<fault_plan> plan);

/// Zero the occurrence counters and injection tally, and force the next
/// query to re-read DCMESH_FAULT_PLAN (tests flip the env at run time).
void reset_fault_state();

/// Total faults injected (next_fault() hits) since the last reset.
[[nodiscard]] std::uint64_t injection_count();

/// Glob matcher over site tags: '*' any sequence (including '/'), '?' one
/// character.  Same semantics as the BLAS policy engine's matcher (resil
/// sits below blas, so it carries its own copy).
[[nodiscard]] bool glob_match(std::string_view pattern,
                              std::string_view text) noexcept;

/// Environment variable holding the plan text.
inline constexpr std::string_view kFaultPlanEnvVar = "DCMESH_FAULT_PLAN";

/// Environment variable seeding the deterministic draws (default 0x5eed).
inline constexpr std::string_view kFaultSeedEnvVar = "DCMESH_FAULT_SEED";

}  // namespace dcmesh::resil
