#pragma once
// promotion.hpp — the process-wide precision-promotion ledger.
//
// Graceful degradation with automatic re-escalation: after a step-level
// invariant violation the driver rolls back and promotes the affected
// sites' precision for a bounded number of series, then the promotion
// expires and the fast mode is re-tried.  The ledger is the seam between
// the layers: core::driver writes entries ("lfd/* up 1 ladder step for 2
// series"), and the BLAS dispatcher (plan_call) reads them when resolving
// a call's compute mode — each promotion level applies one
// next_higher_mode() step on top of whatever the policy engine resolved
// (tune's auto decisions included), so a promoted BF16 site runs at TF32,
// a promoted TF32 site at BF16x2, and standard stays standard.
//
// The read side is one relaxed atomic load when the ledger is empty, so
// the GEMM hot path pays nothing until a rollback actually happens.

#include <string>
#include <string_view>
#include <vector>

namespace dcmesh::resil {

/// One active promotion: sites matching `pattern` run `levels` ladder
/// steps above their resolved mode for the next `series_left` series.
struct promotion_entry {
  std::string pattern;
  int levels = 1;
  int series_left = 1;
};

/// Add (or strengthen) a promotion.  An existing entry with the same
/// pattern is raised to max(levels) and its TTL refreshed.  Records a
/// "promote" health event.
void promote_sites(std::string_view pattern, int levels, int series_ttl);

/// Ladder steps to promote `site` by: the max over matching entries;
/// 0 (one atomic load) when the ledger is empty.
[[nodiscard]] int promotion_steps(std::string_view site);

/// End-of-series tick: decrement every entry's TTL, dropping expired ones
/// (the automatic re-escalation back to the fast mode).
void tick_promotions();

/// Drop all promotions (tests, run teardown).
void clear_promotions();

/// Copy of the active entries.
[[nodiscard]] std::vector<promotion_entry> promotion_snapshot();

}  // namespace dcmesh::resil
