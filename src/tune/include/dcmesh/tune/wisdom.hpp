#pragma once
// wisdom.hpp — persistent autotuning wisdom (versioned JSONL).
//
// A wisdom file (named by DCMESH_TUNE_CACHE) records every mode decision
// the autotuner has made, one JSON object per line, preceded by a header
// line naming the file-format version and the kernel generation the
// timings were taken on.  A second run loads the file and resolves every
// known (routine, site, shape-class, budget) key with zero recalibration;
// a file written by an older kernel generation — whose timings and error
// profile no longer apply — is rejected whole, cleanly, and rebuilt.
//
// The format is append-friendly on purpose: concurrently calibrating
// processes sharing one wisdom file each append complete lines, and a
// loader simply keeps the first entry per key (first writer wins, so all
// sharers converge on the same decisions).  Individual malformed lines
// (torn writes, hand edits) are skipped and counted, never fatal.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dcmesh::tune {

/// Bump when the wisdom line layout changes incompatibly.
inline constexpr int kWisdomFormatVersion = 1;

/// Identity of the kernel generation decisions are valid for.  Bump when
/// the blocked kernels (or the calibration procedure) change enough that
/// stored timings/errors are no longer comparable.
inline constexpr std::string_view kKernelVersion = "minimkl-blocked-v2";

/// Shape class: each GEMM dimension bucketed to its power-of-two bracket
/// (bit width of the value), so near-identical shapes share one decision
/// and the wisdom file stays small.
struct shape_class {
  int m_bits = 0;
  int n_bits = 0;
  int k_bits = 0;

  /// Compact form used in keys and wisdom lines, e.g. "m4n4k10".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const shape_class& a,
                         const shape_class& b) noexcept {
    return a.m_bits == b.m_bits && a.n_bits == b.n_bits &&
           a.k_bits == b.k_bits;
  }
};

/// Classify a shape (dims clamped to >= 1 before bucketing).
[[nodiscard]] shape_class classify_shape(std::int64_t m, std::int64_t n,
                                         std::int64_t k) noexcept;

/// One wisdom entry: the decision for one (routine, site, class, budget).
struct wisdom_entry {
  std::string routine;      ///< "SGEMM", "CGEMM", ...
  std::string site;         ///< Call-site tag ("" = untagged).
  shape_class cls;
  double ulp_budget = 0.0;  ///< Error budget the decision was made under.
  std::string mode_token;   ///< Chosen mode (MKL_BLAS_COMPUTE_MODE token).
  double err_ulp = 0.0;     ///< Measured componentwise error, storage ULPs.
  double gflops = 0.0;      ///< Measured throughput of the chosen mode
                            ///< (0 = decision was model-ranked, not timed).
  std::string provenance;   ///< "calibrated" or "modeled".

  [[nodiscard]] std::string key() const;      ///< Lookup key (see below).
  [[nodiscard]] std::string to_json() const;  ///< One JSONL line.
};

/// The lookup key entries are deduplicated on.
[[nodiscard]] std::string wisdom_key(std::string_view routine,
                                     std::string_view site, shape_class cls,
                                     double ulp_budget);

/// The header line a valid wisdom file must start with.
[[nodiscard]] std::string wisdom_header();

/// True when `line` is a header this build accepts (format version AND
/// kernel version both match).
[[nodiscard]] bool wisdom_header_ok(std::string_view line);

/// Parse one wisdom line; nullopt on malformed input.
[[nodiscard]] std::optional<wisdom_entry> parse_wisdom_line(
    std::string_view line);

/// Result of loading a wisdom file.
struct wisdom_file {
  std::vector<wisdom_entry> entries;  ///< First entry per key, file order.
  bool existed = false;       ///< File was present and readable.
  bool version_ok = true;     ///< Header matched (false = stale/corrupt;
                              ///< entries is empty in that case).
  std::size_t rejected_lines = 0;  ///< Malformed non-header lines skipped.
};

/// Load `path`; never throws.  A missing file is {existed=false}.
[[nodiscard]] wisdom_file load_wisdom(const std::string& path);

/// Rewrite `path` as header + entries.  False on I/O failure.
bool save_wisdom(const std::string& path,
                 const std::vector<wisdom_entry>& entries);

/// Append one entry to `path`, writing the header first when the file does
/// not yet exist or is empty.  False on I/O failure.
bool append_wisdom(const std::string& path, const wisdom_entry& entry);

}  // namespace dcmesh::tune
