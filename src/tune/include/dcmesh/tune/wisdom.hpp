#pragma once
// wisdom.hpp — persistent autotuning wisdom (versioned JSONL).
//
// A wisdom file (named by DCMESH_TUNE_CACHE) records every mode decision
// the autotuner has made, one JSON object per line, preceded by a header
// line naming the file-format version and the kernel generation the
// timings were taken on.  A second run loads the file and resolves every
// known (routine, site, shape-class, budget) key with zero recalibration;
// a file written by an older kernel generation — whose timings and error
// profile no longer apply — is rejected whole, cleanly, and rebuilt.
//
// Concurrency (the campaign-farm contract): the file is a SHARED store.
// All writes go through merge_wisdom() — a read-modify-merge critical
// section under an advisory flock on a ".lock" sidecar, finished by the
// usual temp+fsync+rename replacement — so N worker processes can write
// without ever losing each other's entries.  The header carries a
// monotonic generation counter that every merge increments, and each
// entry records the generation it was written at; a merge replaces an
// existing key only when the incoming entry carries an equal-or-newer
// generation (i.e. its writer had already observed the published entry
// and deliberately overrides it — last writer in generation time wins).
// A freshly calibrated decision carries generation 0 ("never saw the
// file") and therefore only ever FILLS ABSENT keys: once a key is
// published, every sharer converges on that decision.  Individual
// malformed lines (torn writes, hand edits) are skipped and counted,
// never fatal.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dcmesh {
class file_lock;
}

namespace dcmesh::tune {

/// Bump when the wisdom line layout changes incompatibly.  v2 added the
/// optional per-entry cache-blocking fields (block_m/block_n/block_isa);
/// v1 files parse fine (the fields read as "no tuned blocking"), so the
/// header check accepts both and a v1 store is upgraded in place on the
/// next merge rather than rebuilt.
inline constexpr int kWisdomFormatVersion = 2;

/// Oldest format version load_wisdom still accepts.
inline constexpr int kWisdomFormatVersionMin = 1;

/// Identity of the kernel generation decisions are valid for.  Bump when
/// the blocked kernels (or the calibration procedure) change enough that
/// stored timings/errors are no longer comparable.
inline constexpr std::string_view kKernelVersion = "minimkl-blocked-v2";

/// Shape class: each GEMM dimension bucketed to its power-of-two bracket
/// (bit width of the value), so near-identical shapes share one decision
/// and the wisdom file stays small.
struct shape_class {
  int m_bits = 0;
  int n_bits = 0;
  int k_bits = 0;

  /// Compact form used in keys and wisdom lines, e.g. "m4n4k10".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const shape_class& a,
                         const shape_class& b) noexcept {
    return a.m_bits == b.m_bits && a.n_bits == b.n_bits &&
           a.k_bits == b.k_bits;
  }
};

/// Classify a shape (dims clamped to >= 1 before bucketing).
[[nodiscard]] shape_class classify_shape(std::int64_t m, std::int64_t n,
                                         std::int64_t k) noexcept;

/// One wisdom entry: the decision for one (routine, site, class, budget).
struct wisdom_entry {
  std::string routine;      ///< "SGEMM", "CGEMM", ...
  std::string site;         ///< Call-site tag ("" = untagged).
  shape_class cls;
  double ulp_budget = 0.0;  ///< Error budget the decision was made under.
  std::string mode_token;   ///< Chosen mode (MKL_BLAS_COMPUTE_MODE token).
  double err_ulp = 0.0;     ///< Measured componentwise error, storage ULPs.
  double gflops = 0.0;      ///< Measured throughput of the chosen mode
                            ///< (0 = decision was model-ranked, not timed).
  std::string provenance;   ///< "calibrated" or "modeled".
  /// Tuned cache blocking (MC/NC) for this shape class, measured by the
  /// autotuner's blocking probe; 0 = never probed (per-ISA defaults
  /// apply).  Blocking only partitions the output sweep, so serving a
  /// tuned blocking can never change results — which is why these fields
  /// are FILL-ONLY under merge_wisdom: a probe result fills an absent
  /// blocking but a mode-only rewrite never erases one.  block_isa names
  /// the kernel tier the probe timed ("avx512"/"avx2"/"scalar"); a
  /// consumer on a different active tier ignores the blocking (the tile
  /// quanta differ).
  std::int64_t block_m = 0;
  std::int64_t block_n = 0;
  std::string block_isa;
  /// Measured ABFT (abft=correct) time overhead for this shape class as a
  /// fraction of the plain call (0.15 = +15%).  0 = never measured.
  /// FILL-ONLY under merge_wisdom, exactly like the blocking fields: the
  /// checksum augmentation never changes the interior result, so an
  /// overhead measurement is pure information and must survive mode-only
  /// rewrites.
  double abft_overhead = 0.0;
  /// Store generation this entry was written at.  0 = never published
  /// (a fresh in-memory decision); merge_wisdom stamps the file value.
  std::uint64_t generation = 0;

  [[nodiscard]] std::string key() const;      ///< Lookup key (see below).
  [[nodiscard]] std::string to_json() const;  ///< One JSONL line.
};

/// The lookup key entries are deduplicated on.
[[nodiscard]] std::string wisdom_key(std::string_view routine,
                                     std::string_view site, shape_class cls,
                                     double ulp_budget);

/// The header line a valid wisdom file must start with.  `generation` is
/// the store's monotonic merge counter (0 for a brand-new file).
[[nodiscard]] std::string wisdom_header(std::uint64_t generation = 0);

/// True when `line` is a header this build accepts (format version AND
/// kernel version both match).
[[nodiscard]] bool wisdom_header_ok(std::string_view line);

/// Parse one wisdom line; nullopt on malformed input.
[[nodiscard]] std::optional<wisdom_entry> parse_wisdom_line(
    std::string_view line);

/// Result of loading a wisdom file.
struct wisdom_file {
  std::vector<wisdom_entry> entries;  ///< One entry per key (highest
                                      ///< generation wins), file order.
  std::uint64_t generation = 0;  ///< Store generation from the header.
  bool existed = false;       ///< File was present and readable.
  bool version_ok = true;     ///< Header matched (false = stale/corrupt;
                              ///< entries is empty in that case).
  std::size_t rejected_lines = 0;  ///< Malformed non-header lines skipped.
};

/// Load `path`; never throws.  A missing file is {existed=false}.
[[nodiscard]] wisdom_file load_wisdom(const std::string& path);

/// Rewrite `path` as header + entries.  False on I/O failure.  This is
/// the raw rewrite primitive; concurrent writers must go through
/// merge_wisdom instead.
bool save_wisdom(const std::string& path,
                 const std::vector<wisdom_entry>& entries,
                 std::uint64_t generation = 0);

/// Read just the store generation from `path`'s header without parsing
/// the entries — the cheap "did a sibling publish since I last looked?"
/// probe.  nullopt when the file is missing or its header is not ours.
[[nodiscard]] std::optional<std::uint64_t> peek_wisdom_generation(
    const std::string& path);

/// Outcome of one merge_wisdom critical section.
struct merge_result {
  bool ok = false;           ///< Final file state reflects the merge.
  std::uint64_t generation = 0;  ///< Store generation after the merge.
  std::size_t added = 0;     ///< Incoming entries that won their key.
  std::size_t kept = 0;      ///< Incoming entries dropped because the
                             ///< store already had a same-or-newer entry.
};

/// The ONE write path for shared wisdom stores: under an exclusive flock
/// on `path` + ".lock", reload the file, fold `incoming` in (an entry
/// replaces an existing key only when its generation is >= the stored
/// one and nonzero; generation-0 entries fill absent keys only), bump
/// the store generation, and atomically rewrite.  A stale or corrupt
/// file is treated as empty and rebuilt.  When the caller already holds
/// the lock (e.g. it calibrated under it), pass it as `held` to avoid
/// self-deadlock on a second acquisition.  Never throws.
merge_result merge_wisdom(const std::string& path,
                          const std::vector<wisdom_entry>& incoming,
                          const file_lock* held = nullptr);

}  // namespace dcmesh::tune
