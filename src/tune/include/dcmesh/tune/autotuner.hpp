#pragma once
// autotuner.hpp — the accuracy-aware autotuner behind the `auto` mode.
//
// The paper's central result is that the best BLAS compute mode depends on
// matrix shape and accuracy budget; its artifact picks modes by hand.  The
// autotuner makes the system pick them itself, by measurement: for each
// (call-site, routine, shape-class) key it
//
//  1. runs every eligible compute mode once on deterministic sample
//     operands and measures the componentwise error of each against an
//     FP64 reference (in ULPs of the storage precision);
//  2. discards modes whose error exceeds the site's ULP budget
//     (rule flag `ulp=`, else DCMESH_TUNE_ULP_BUDGET, else
//     kDefaultUlpBudget);
//  3. ranks the survivors: by measured wall time on the real blocked
//     kernels when the shape is big enough to time reliably, otherwise by
//     the installed cost model (the xehpc roofline arrives through
//     trace::set_gemm_time_model — the same hook that annotates spans);
//  4. records the winner in a thread-safe in-memory cache AND merges it
//     into the shared on-disk wisdom store named by DCMESH_TUNE_CACHE, so
//     the next process resolves the key with zero calibration GEMMs.
//
// The store is safe under N concurrent worker processes (the campaign
// farm): a cache miss takes the store's advisory flock, re-reads the
// header generation, refreshes in-memory decisions when a sibling has
// published since (resolving the miss with ZERO calibration GEMMs when
// the sibling already covered the key), and otherwise calibrates while
// still holding the lock before merging the new entry in.  Cold-start is
// therefore paid at most once per key across the whole fleet.
//
// Calibration GEMMs run through the ordinary descriptor dispatcher under
// the "tune/calibrate" site tag with an explicit per-call mode override —
// they are visible in the verbose log and the metrics registry (which is
// how tests assert a warm cache performs none), and the override keeps
// them out of the policy engine, so the tuner can never recurse into
// itself.
//
// Decisions reach the dispatcher through blas::set_auto_tune_hook (see
// autotune_hook.hpp); install_auto_tuner() wires the process-wide tuner
// in, and core::driver installs it at construction.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "dcmesh/blas/autotune_hook.hpp"
#include "dcmesh/blas/compute_mode.hpp"
#include "dcmesh/tune/wisdom.hpp"

namespace dcmesh::tune {

/// Environment variable naming the persistent wisdom file.  Unset = the
/// tuner still works, in-memory only.
inline constexpr std::string_view kTuneCacheEnvVar = "DCMESH_TUNE_CACHE";

/// Environment variable overriding kDefaultUlpBudget.
inline constexpr std::string_view kUlpBudgetEnvVar =
    "DCMESH_TUNE_ULP_BUDGET";

/// Default componentwise error budget, in ULPs of the storage precision.
/// On the calibration operands the modes land roughly at standard ~10,
/// BF16x3 ~5, 3M ~15, BF16x2 ~100-300, TF32 ~1e4, BF16 ~1e5 ULP; 1024
/// admits the multi-component splits and 3M and rejects single-component
/// BF16 and TF32 with an order of magnitude to spare either way — the
/// paper's Table IV accuracy ladder.
inline constexpr double kDefaultUlpBudget = 1024.0;

/// Below this nominal flop count (2mnk, x4 complex) one call is too short
/// to time reliably on the host; ranking falls back to the cost model.
inline constexpr double kMinTimedFlops = 65536.0;

/// The call-site tag calibration GEMMs run under.
inline constexpr std::string_view kCalibrationSite = "tune/calibrate";

/// One mode's calibration measurements for one key.
struct mode_measurement {
  std::string mode_token;
  double err_ulp = 0.0;        ///< Measured componentwise error.
  double gflops = 0.0;         ///< Measured throughput (0 = not timed).
  bool within_budget = false;  ///< err_ulp <= the key's budget.
};

/// Everything measured while resolving one key (kept for benches/tests).
struct calibration_record {
  std::string key;
  wisdom_entry decision;
  std::vector<mode_measurement> measurements;
};

/// Counters for one tuner instance.
struct tuner_stats {
  std::uint64_t resolutions = 0;     ///< resolve() calls.
  std::uint64_t cache_hits = 0;      ///< Served from memory (incl. file).
  std::uint64_t calibrations = 0;    ///< Keys resolved by timing kernels.
  std::uint64_t model_decisions = 0; ///< Keys resolved by the cost model.
  std::uint64_t refreshes = 0;       ///< Store reloads after a sibling
                                     ///< process published a generation.
  std::uint64_t shared_hits = 0;     ///< Misses resolved under the store
                                     ///< lock by a sibling's fresh entry
                                     ///< (counted in cache_hits too).
  std::uint64_t blocking_probes = 0; ///< Keys whose MC/NC blocking was
                                     ///< measured (cold, timed keys only;
                                     ///< warm stores must stay at 0).
};

/// An online autotuner with an in-memory decision cache fronting an
/// optional on-disk wisdom file.  All methods are thread-safe; one
/// resolve (including its calibration) runs under the instance lock.
class autotuner {
 public:
  /// Follow DCMESH_TUNE_CACHE: the path is re-read on every resolve, and
  /// a changed value resets and reloads the instance (tests and multi-run
  /// processes repoint it freely).
  autotuner();

  /// Fixed wisdom path ("" = in-memory only, no persistence).
  explicit autotuner(std::string cache_path);

  /// Decide the compute mode for one auto-resolved call.
  [[nodiscard]] blas::auto_tune_choice resolve(
      const blas::auto_tune_request& request);

  /// Snapshot of all in-memory decisions (sorted by key).
  [[nodiscard]] std::vector<wisdom_entry> decisions() const;

  /// Snapshot of the per-key calibration measurements made by THIS
  /// instance (cache hits measure nothing and do not appear).
  [[nodiscard]] std::vector<calibration_record> calibration_log() const;

  [[nodiscard]] tuner_stats stats() const;

  /// Merge the in-memory decisions into the wisdom store (read-modify-
  /// merge under the store lock — never clobbers entries published by
  /// sibling processes).  False when there is no path or the write fails.
  bool flush();

  /// Drop the in-memory state (decisions, calibration log, counters).
  /// The wisdom file is untouched; the next resolve reloads it — i.e.
  /// this makes the instance behave like a fresh process.
  void clear();

  /// The wisdom path currently in effect ("" = none).
  [[nodiscard]] std::string cache_path() const;

 private:
  struct state;
  void reload_if_needed(state& s);
  bool refresh_from_store(state& s);
  blas::auto_tune_choice decide(state& s,
                                const blas::auto_tune_request& request);

  mutable std::mutex mutex_;
  struct state {
    bool follow_env = false;
    std::string path;            // wisdom file ("" = none)
    bool loaded = false;         // file has been read into `decisions`
    bool persist_warned = false; // unwritable-path warning emitted
    std::uint64_t file_generation = 0;  // store generation last seen
    std::map<std::string, wisdom_entry> decisions;
    std::vector<calibration_record> log;
    tuner_stats stats;
  } state_;
};

/// The process-wide tuner (follows DCMESH_TUNE_CACHE).
[[nodiscard]] autotuner& default_tuner();

/// Point blas::set_auto_tune_hook at default_tuner().  Idempotent; called
/// by core::driver at construction so `auto` policies work in any run.
void install_auto_tuner();

}  // namespace dcmesh::tune
