#include "dcmesh/tune/autotuner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>

#include <optional>

#include "dcmesh/blas/gemm_call.hpp"
#include "dcmesh/common/env.hpp"
#include "dcmesh/common/file_lock.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/trace/tracer.hpp"

// Engine-private headers (tune's CMakeLists adds src/blas/src): the
// blocking probe times candidate MC/NC blockings against the active
// kernel tier's quanta.
#include "blocking.hpp"
#include "kernel_isa.hpp"

namespace dcmesh::tune {
namespace {

using blas::blas_int;
using blas::compute_mode;

/// Calibration operands are clamped to these dimensions: big enough that
/// blocking/split overheads show, small enough that the FP64 reference
/// triple loop stays in the tens of milliseconds.
constexpr blas_int kMaxCalibMN = 96;
constexpr blas_int kMaxCalibK = 768;

/// Target wall time per timed mode; repetitions are scaled to reach it.
constexpr double kTimingTargetSeconds = 1e-3;
constexpr int kMaxTimingReps = 16;

/// Blocking probes use larger operands than mode calibration (blocking
/// effects only show once several MC/NC blocks are in play) but skip the
/// FP64 reference entirely — blocking cannot change results, so there is
/// nothing to error-measure.
constexpr blas_int kMaxProbeM = 512;
constexpr blas_int kMaxProbeN = 1024;
constexpr blas_int kMaxProbeK = 512;

/// Below this nominal flop count the per-call blocking is noise; don't
/// spend probe GEMMs (or a wisdom field) on it.  128 x 128 x 512 FP32.
constexpr double kMinBlockingProbeFlops = 16.0 * 1024.0 * 1024.0;

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ull;
  }
  return h;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename T>
struct scalar_traits {
  using ref_type = double;
  static constexpr bool is_complex = false;
};
template <typename R>
struct scalar_traits<std::complex<R>> {
  using ref_type = std::complex<double>;
  static constexpr bool is_complex = true;
};

template <typename T>
void fill_uniform(std::vector<T>& v, xoshiro256& rng) {
  for (auto& x : v) {
    if constexpr (scalar_traits<T>::is_complex) {
      x = T(static_cast<typename T::value_type>(rng.uniform(-1.0, 1.0)),
            static_cast<typename T::value_type>(rng.uniform(-1.0, 1.0)));
    } else {
      x = static_cast<T>(rng.uniform(-1.0, 1.0));
    }
  }
}

/// FP64 (or complex-FP64) triple-loop reference for C = A*B on the
/// calibration operands (column-major, no transposes, alpha=1, beta=0).
template <typename T>
std::vector<typename scalar_traits<T>::ref_type> reference_product(
    const std::vector<T>& a, const std::vector<T>& b, blas_int m,
    blas_int n, blas_int k) {
  using ref_t = typename scalar_traits<T>::ref_type;
  std::vector<ref_t> c(static_cast<std::size_t>(m) * n, ref_t(0));
  for (blas_int j = 0; j < n; ++j) {
    for (blas_int p = 0; p < k; ++p) {
      const ref_t bpj = ref_t(b[static_cast<std::size_t>(j) * k + p]);
      for (blas_int i = 0; i < m; ++i) {
        c[static_cast<std::size_t>(j) * m + i] +=
            ref_t(a[static_cast<std::size_t>(p) * m + i]) * bpj;
      }
    }
  }
  return c;
}

/// Largest componentwise deviation of `got` from `ref`, in ULPs of the
/// storage precision.  Each component's deviation is normalised by its own
/// reference magnitude, floored at a tenth of the largest magnitude:
/// without the floor a single near-cancelled component dominates the
/// metric by orders of magnitude and no mode — not even standard — stays
/// inside a useful budget.
template <typename T>
double componentwise_error_ulp(
    const std::vector<T>& got,
    const std::vector<typename scalar_traits<T>::ref_type>& ref,
    double storage_eps) {
  double max_abs = 0.0;
  for (const auto& r : ref) {
    if constexpr (scalar_traits<T>::is_complex) {
      max_abs = std::max({max_abs, std::abs(r.real()), std::abs(r.imag())});
    } else {
      max_abs = std::max(max_abs, std::abs(r));
    }
  }
  const double floor = std::max(0.1 * max_abs, 1e-300);
  double worst = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if constexpr (scalar_traits<T>::is_complex) {
      const double dre = std::abs(double(got[i].real()) - ref[i].real());
      const double dim = std::abs(double(got[i].imag()) - ref[i].imag());
      const double nre = std::max(std::abs(ref[i].real()), floor);
      const double nim = std::max(std::abs(ref[i].imag()), floor);
      worst = std::max({worst, dre / (storage_eps * nre),
                        dim / (storage_eps * nim)});
    } else {
      const double d = std::abs(double(got[i]) - ref[i]);
      const double n = std::max(std::abs(ref[i]), floor);
      worst = std::max(worst, d / (storage_eps * n));
    }
  }
  return worst;
}

/// Run every eligible mode once (or repeatedly, when `timed`) on
/// deterministic sample operands and measure error + throughput.
/// The GEMMs dispatch through the public descriptor path under the
/// kCalibrationSite tag with an explicit mode override — visible to
/// verbose/metrics, invisible to the policy engine (no recursion).
template <typename T>
std::vector<mode_measurement> calibrate_key(
    const std::vector<compute_mode>& modes, blas_int m, blas_int n,
    blas_int k, bool timed, double ulp_budget, std::uint64_t seed) {
  const blas_int cm = std::clamp<blas_int>(m, 1, kMaxCalibMN);
  const blas_int cn = std::clamp<blas_int>(n, 1, kMaxCalibMN);
  const blas_int ck = std::clamp<blas_int>(k, 1, kMaxCalibK);

  xoshiro256 rng(seed);
  std::vector<T> a(static_cast<std::size_t>(cm) * ck);
  std::vector<T> b(static_cast<std::size_t>(ck) * cn);
  std::vector<T> c(static_cast<std::size_t>(cm) * cn);
  fill_uniform(a, rng);
  fill_uniform(b, rng);
  const auto ref = reference_product(a, b, cm, cn, ck);

  const double storage_eps =
      sizeof(typename scalar_traits<T>::ref_type) == sizeof(T)
          ? 0x1.0p-52   // FP64 storage (ZGEMM)
          : 0x1.0p-23;  // FP32 storage (SGEMM/CGEMM)
  const double flops = (scalar_traits<T>::is_complex ? 8.0 : 2.0) *
                       double(cm) * double(cn) * double(ck);

  std::vector<mode_measurement> out;
  out.reserve(modes.size());
  for (const compute_mode mode : modes) {
    blas::gemm_call<T> call;
    call.m = cm;
    call.n = cn;
    call.k = ck;
    call.a = a.data();
    call.lda = cm;
    call.b = b.data();
    call.ldb = ck;
    call.c = c.data();
    call.ldc = cm;
    call.call_site = kCalibrationSite;
    call.mode = mode;
    // Calibration times the bare kernel: a process-wide DCMESH_ABFT
    // default must not leak checksum overhead into the mode ranking.
    call.abft = resil::abft_mode::off;

    mode_measurement meas;
    meas.mode_token = std::string(blas::info(mode).env_token);

    // Probe run: produces the result we measure error on, and (when
    // timing) warms caches + sizes the repetition count.
    const double probe_start = now_seconds();
    blas::run(call);
    const double probe = std::max(now_seconds() - probe_start, 1e-9);
    meas.err_ulp = componentwise_error_ulp(c, ref, storage_eps);
    meas.within_budget = meas.err_ulp <= ulp_budget;

    if (timed) {
      const int reps = std::clamp(
          static_cast<int>(kTimingTargetSeconds / probe), 1, kMaxTimingReps);
      const double start = now_seconds();
      for (int r = 0; r < reps; ++r) blas::run(call);
      const double elapsed = std::max(now_seconds() - start, 1e-9);
      meas.gflops = flops * reps / elapsed / 1e9;
    }
    out.push_back(std::move(meas));
  }
  return out;
}

std::vector<compute_mode> eligible_modes(bool is_complex, bool is_fp64) {
  if (is_fp64) {
    // ZGEMM: only 3M applies; DGEMM never reaches calibration.
    return {compute_mode::standard, compute_mode::complex_3m};
  }
  std::vector<compute_mode> modes = {
      compute_mode::standard, compute_mode::float_to_bf16,
      compute_mode::float_to_tf32, compute_mode::float_to_bf16x2,
      compute_mode::float_to_bf16x3};
  if (is_complex) modes.push_back(compute_mode::complex_3m);
  return modes;
}

/// The effective budget: the policy rule's `ulp=` flag, else
/// DCMESH_TUNE_ULP_BUDGET, else the default.  A malformed env value warns
/// once and falls back to the default — never throws.
double effective_budget(double request_budget) {
  if (request_budget > 0.0) return request_budget;
  const auto env = env_get(kUlpBudgetEnvVar);
  if (!env) return kDefaultUlpBudget;
  char* end = nullptr;
  const double value = std::strtod(env->c_str(), &end);
  if (end == env->c_str() || !trim(std::string_view(end)).empty() ||
      !(value > 0.0) || !std::isfinite(value)) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "dcmesh: ignoring invalid %s value \"%s\"; using the "
                   "default budget of %g ULP\n",
                   std::string(kUlpBudgetEnvVar).c_str(), env->c_str(),
                   kDefaultUlpBudget);
    }
    return kDefaultUlpBudget;
  }
  return value;
}

/// Time candidate MC/NC blockings for the decided mode on real blocked
/// kernels and record the winner in the entry.  Candidates are halvings/
/// doublings of the active tier's default, legalized to the tile quanta.
/// Probe GEMMs run through the ordinary dispatcher under the calibration
/// site tag with explicit mode + blocking overrides, so they are visible
/// to verbose/metrics and can never recurse into the tuner.
void probe_blocking(wisdom_entry& entry,
                    const blas::auto_tune_request& req, compute_mode mode,
                    std::uint64_t seed) {
  namespace bd = blas::detail;
  const bd::kernel_isa isa = bd::active_kernel_isa();
  const bd::gemm_blocking def = bd::default_blocking(isa);
  const blas_int pm = std::clamp<blas_int>(req.m, 1, kMaxProbeM);
  const blas_int pn = std::clamp<blas_int>(req.n, 1, kMaxProbeN);
  const blas_int pk = std::clamp<blas_int>(req.k, 1, kMaxProbeK);

  xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<float> a(static_cast<std::size_t>(pm) * pk);
  std::vector<float> b(static_cast<std::size_t>(pk) * pn);
  std::vector<float> c(static_cast<std::size_t>(pm) * pn);
  fill_uniform(a, rng);
  fill_uniform(b, rng);

  std::vector<bd::gemm_blocking> candidates;
  for (const blas_int mc : {def.mc / 2, def.mc, def.mc * 2}) {
    for (const blas_int nc : {def.nc / 2, def.nc, def.nc * 2}) {
      const bd::gemm_blocking cand = bd::legalize_blocking(isa, mc, nc);
      if (std::find(candidates.begin(), candidates.end(), cand) ==
          candidates.end()) {
        candidates.push_back(cand);
      }
    }
  }

  bd::gemm_blocking best = def;
  double best_seconds = -1.0;
  for (const bd::gemm_blocking& cand : candidates) {
    blas::gemm_call<float> call;
    call.m = pm;
    call.n = pn;
    call.k = pk;
    call.a = a.data();
    call.lda = pm;
    call.b = b.data();
    call.ldb = pk;
    call.c = c.data();
    call.ldc = pm;
    call.call_site = kCalibrationSite;
    call.mode = mode;
    call.abft = resil::abft_mode::off;
    call.block_m = cand.mc;
    call.block_n = cand.nc;

    // Warm run (packs the arena at this blocking), then a timed batch.
    const double probe_start = now_seconds();
    blas::run(call);
    const double probe = std::max(now_seconds() - probe_start, 1e-9);
    const int reps = std::clamp(
        static_cast<int>(kTimingTargetSeconds / probe), 1, kMaxTimingReps);
    const double start = now_seconds();
    for (int r = 0; r < reps; ++r) blas::run(call);
    const double seconds =
        std::max(now_seconds() - start, 1e-9) / reps;
    if (best_seconds < 0.0 || seconds < best_seconds) {
      best_seconds = seconds;
      best = cand;
    }
  }

  entry.block_m = best.mc;
  entry.block_n = best.nc;
  entry.block_isa = std::string(bd::kernel_isa_name(isa));
}

/// Measure the ABFT checksum overhead for this shape class: time the
/// decided mode plain vs under abft=correct (per-call overrides, so the
/// probes are independent of the process default) and record the
/// fractional slowdown in the entry.  Only called for requests that will
/// actually run under ABFT — the probe costs two timed batches.
void probe_abft_overhead(wisdom_entry& entry,
                         const blas::auto_tune_request& req,
                         compute_mode mode, std::uint64_t seed) {
  const blas_int pm = std::clamp<blas_int>(req.m, 1, kMaxProbeM);
  const blas_int pn = std::clamp<blas_int>(req.n, 1, kMaxProbeN);
  const blas_int pk = std::clamp<blas_int>(req.k, 1, kMaxProbeK);

  xoshiro256 rng(seed ^ 0xd1b54a32d192ed03ull);
  std::vector<float> a(static_cast<std::size_t>(pm) * pk);
  std::vector<float> b(static_cast<std::size_t>(pk) * pn);
  std::vector<float> c(static_cast<std::size_t>(pm) * pn);
  fill_uniform(a, rng);
  fill_uniform(b, rng);

  const auto time_at = [&](resil::abft_mode abft) {
    blas::gemm_call<float> call;
    call.m = pm;
    call.n = pn;
    call.k = pk;
    call.a = a.data();
    call.lda = pm;
    call.b = b.data();
    call.ldb = pk;
    call.c = c.data();
    call.ldc = pm;
    call.call_site = kCalibrationSite;
    call.mode = mode;
    call.abft = abft;

    const double probe_start = now_seconds();
    blas::run(call);
    const double probe = std::max(now_seconds() - probe_start, 1e-9);
    const int reps = std::clamp(
        static_cast<int>(kTimingTargetSeconds / probe), 1, kMaxTimingReps);
    const double start = now_seconds();
    for (int r = 0; r < reps; ++r) blas::run(call);
    return std::max(now_seconds() - start, 1e-9) / reps;
  };

  const double plain = time_at(resil::abft_mode::off);
  const double checked = time_at(resil::abft_mode::correct);
  entry.abft_overhead = std::max(0.0, checked / plain - 1.0);
}

blas::auto_tune_choice make_choice(const wisdom_entry& entry,
                                   blas::auto_provenance provenance) {
  const auto mode = blas::parse_compute_mode(entry.mode_token);
  blas::auto_tune_choice choice{mode.value_or(compute_mode::standard),
                                provenance, entry.err_ulp};
  // Serve the tuned blocking only on the tier it was measured for: the
  // quanta (and the cache economics) differ across tiers, and a mismatch
  // would be legalized into something never measured.
  if (entry.block_m > 0 &&
      entry.block_isa ==
          blas::detail::kernel_isa_name(blas::detail::active_kernel_isa())) {
    choice.block_m = static_cast<blas_int>(entry.block_m);
    choice.block_n = static_cast<blas_int>(entry.block_n);
  }
  choice.abft_overhead = entry.abft_overhead;
  return choice;
}

}  // namespace

autotuner::autotuner() { state_.follow_env = true; }

autotuner::autotuner(std::string cache_path) {
  state_.path = std::move(cache_path);
}

void autotuner::reload_if_needed(state& s) {
  if (s.follow_env) {
    std::string path = env_get(kTuneCacheEnvVar).value_or("");
    if (path != s.path) {
      // Repointed: start over against the new file.
      state fresh;
      fresh.follow_env = true;
      fresh.path = std::move(path);
      s = std::move(fresh);
    }
  }
  if (s.loaded) return;
  s.loaded = true;
  if (s.path.empty()) return;
  const wisdom_file file = load_wisdom(s.path);
  if (file.existed && !file.version_ok) {
    // merge_wisdom rebuilds a stale/corrupt store on the next persist.
    std::fprintf(stderr,
                 "dcmesh: wisdom file \"%s\" has a stale or corrupt header; "
                 "ignoring it (it will be rebuilt)\n",
                 s.path.c_str());
    return;
  }
  s.file_generation = file.generation;
  std::size_t dropped = file.rejected_lines;
  for (const auto& entry : file.entries) {
    // Entries naming modes this build does not know are stale — drop them.
    if (!blas::parse_compute_mode(entry.mode_token)) {
      ++dropped;
      continue;
    }
    s.decisions.emplace(entry.key(), entry);
  }
  if (dropped > 0) {
    std::fprintf(stderr,
                 "dcmesh: skipped %zu malformed line(s) in wisdom file "
                 "\"%s\"\n",
                 dropped, s.path.c_str());
  }
}

bool autotuner::refresh_from_store(state& s) {
  // Cheap probe first: only re-parse the store when its header says a
  // sibling merged since we last looked.
  const auto gen = peek_wisdom_generation(s.path);
  if (!gen || *gen == s.file_generation) return false;
  const wisdom_file file = load_wisdom(s.path);
  if (!file.version_ok) return false;
  for (const auto& entry : file.entries) {
    if (!blas::parse_compute_mode(entry.mode_token)) continue;
    const auto [it, inserted] = s.decisions.emplace(entry.key(), entry);
    if (!inserted && entry.generation > it->second.generation) {
      it->second = entry;
    }
  }
  s.file_generation = file.generation;
  ++s.stats.refreshes;
  return true;
}

blas::auto_tune_choice autotuner::decide(state& s,
                                         const blas::auto_tune_request& req) {
  ++s.stats.resolutions;

  // Plain FP64 has no alternative modes to weigh; don't burn wisdom
  // entries (or calibration time) on a fixed answer.
  if (req.is_fp64 && !req.is_complex) {
    return {compute_mode::standard, blas::auto_provenance::defaulted, 0.0};
  }
  if (req.m <= 0 || req.n <= 0 || req.k <= 0) {
    return {compute_mode::standard, blas::auto_provenance::defaulted, 0.0};
  }

  const double budget = effective_budget(req.ulp_budget);
  const shape_class cls = classify_shape(req.m, req.n, req.k);
  const std::string key = wisdom_key(req.routine, req.call_site, cls, budget);

  if (const auto it = s.decisions.find(key); it != s.decisions.end()) {
    ++s.stats.cache_hits;
    return make_choice(it->second, blas::auto_provenance::cached);
  }

  // Miss.  When a store is attached, enter its cross-process critical
  // section for the whole cold path: refresh from the store (a sibling
  // may have resolved this key while we were busy — if so, adopt its
  // decision with zero calibration GEMMs), and otherwise calibrate while
  // still holding the lock, so no sibling duplicates the work.  This is
  // double-checked locking across processes; lock failure (read-only
  // store) degrades to optimistic calibration.
  std::optional<file_lock> store_lock;
  if (!s.path.empty()) {
    store_lock.emplace(s.path);
    if (refresh_from_store(s)) {
      if (const auto it = s.decisions.find(key); it != s.decisions.end()) {
        ++s.stats.cache_hits;
        ++s.stats.shared_hits;
        return make_choice(it->second, blas::auto_provenance::cached);
      }
    }
  }

  // Calibrate: measure error for every eligible mode, and throughput when
  // the request shape is big enough to time reliably.
  const double nominal_flops = (req.is_complex ? 8.0 : 2.0) *
                               double(req.m) * double(req.n) * double(req.k);
  const bool timed = nominal_flops >= kMinTimedFlops;
  const auto modes = eligible_modes(req.is_complex, req.is_fp64);
  const std::uint64_t seed = fnv1a(key);

  std::vector<mode_measurement> measurements;
  if (req.is_fp64) {
    measurements = calibrate_key<std::complex<double>>(
        modes, req.m, req.n, req.k, timed, budget, seed);
  } else if (req.is_complex) {
    measurements = calibrate_key<std::complex<float>>(
        modes, req.m, req.n, req.k, timed, budget, seed);
  } else {
    measurements = calibrate_key<float>(modes, req.m, req.n, req.k, timed,
                                        budget, seed);
  }

  // Rank the modes that stay inside the budget; standard is the safety
  // net when nothing does (a sub-ULP budget, say).
  const mode_measurement* best = nullptr;
  for (const auto& meas : measurements) {
    if (!meas.within_budget) continue;
    if (best == nullptr) {
      best = &meas;
      continue;
    }
    if (timed) {
      if (meas.gflops > best->gflops) best = &meas;
      continue;
    }
    // Too small to time: rank by the installed cost model (the xehpc
    // roofline when present), else by Table II peak theoretical speedup.
    const auto predict = [&](const mode_measurement& mm) {
      return trace::predicted_gemm_seconds({req.m, req.n, req.k,
                                            req.is_complex, req.is_fp64,
                                            mm.mode_token});
    };
    const double t_new = predict(meas);
    const double t_best = predict(*best);
    if (t_new >= 0.0 && t_best >= 0.0) {
      if (t_new < t_best) best = &meas;
    } else {
      const auto speedup = [](const mode_measurement& mm) {
        const auto mode = blas::parse_compute_mode(mm.mode_token);
        return mode ? blas::info(*mode).peak_theoretical_speedup : 1.0;
      };
      if (speedup(meas) > speedup(*best)) best = &meas;
    }
  }
  if (best == nullptr) best = &measurements.front();  // standard

  wisdom_entry entry;
  entry.routine = std::string(req.routine);
  entry.site = std::string(req.call_site);
  entry.cls = cls;
  entry.ulp_budget = budget;
  entry.mode_token = best->mode_token;
  entry.err_ulp = best->err_ulp;
  entry.gflops = best->gflops;
  entry.provenance = timed ? "calibrated" : "modeled";
  if (timed) {
    ++s.stats.calibrations;
  } else {
    ++s.stats.model_decisions;
  }

  // Cold-path blocking probe: measure per-shape MC/NC for real FP32 GEMMs
  // big enough for blocking to matter, still inside the store lock so the
  // whole fleet probes each key at most once.  Cached entries carry their
  // blocking, so warm stores never re-enter this (blocking_probes == 0).
  if (timed && !req.is_complex && !req.is_fp64 &&
      nominal_flops >= kMinBlockingProbeFlops) {
    const auto best_mode = blas::parse_compute_mode(best->mode_token);
    probe_blocking(entry, req, best_mode.value_or(compute_mode::standard),
                   seed);
    ++s.stats.blocking_probes;
  }

  // The requesting site runs under ABFT: measure (and wisdom-record) the
  // checksum overhead for this shape class so the recorded cost of the
  // decision reflects what the site will actually pay.  Cached entries
  // carry the overhead, so a warm store never re-probes.
  if (timed && !req.is_complex && !req.is_fp64 && req.abft) {
    const auto best_mode = blas::parse_compute_mode(best->mode_token);
    probe_abft_overhead(entry, req,
                        best_mode.value_or(compute_mode::standard), seed);
  }

  s.decisions.emplace(key, entry);
  s.log.push_back({key, entry, std::move(measurements)});

  if (!s.path.empty()) {
    const merge_result merged = merge_wisdom(
        s.path, {entry}, store_lock ? &*store_lock : nullptr);
    if (merged.ok) {
      s.file_generation = merged.generation;
      // Stamp the published generation so a later flush() re-asserts
      // this decision instead of deferring to the stored copy.
      s.decisions[key].generation = merged.generation;
    } else if (!s.persist_warned) {
      s.persist_warned = true;
      std::fprintf(stderr,
                   "dcmesh: cannot write %s file \"%s\"; tuning decisions "
                   "kept in memory only\n",
                   std::string(kTuneCacheEnvVar).c_str(), s.path.c_str());
    }
  }

  return make_choice(entry, timed ? blas::auto_provenance::calibrated
                                  : blas::auto_provenance::modeled);
}

blas::auto_tune_choice autotuner::resolve(
    const blas::auto_tune_request& request) {
  const std::lock_guard<std::mutex> lock(mutex_);
  reload_if_needed(state_);
  return decide(state_, request);
}

std::vector<wisdom_entry> autotuner::decisions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<wisdom_entry> out;
  out.reserve(state_.decisions.size());
  for (const auto& [_, entry] : state_.decisions) out.push_back(entry);
  return out;
}

std::vector<calibration_record> autotuner::calibration_log() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_.log;
}

tuner_stats autotuner::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_.stats;
}

bool autotuner::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (state_.path.empty()) return false;
  std::vector<wisdom_entry> all;
  all.reserve(state_.decisions.size());
  for (const auto& [_, entry] : state_.decisions) all.push_back(entry);
  const merge_result merged = merge_wisdom(state_.path, all);
  if (!merged.ok) return false;
  state_.file_generation = merged.generation;
  return true;
}

void autotuner::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  state fresh;
  fresh.follow_env = state_.follow_env;
  fresh.path = state_.path;
  state_ = std::move(fresh);
}

std::string autotuner::cache_path() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_.path;
}

autotuner& default_tuner() {
  static autotuner tuner;
  return tuner;
}

void install_auto_tuner() {
  blas::set_auto_tune_hook(
      [](const blas::auto_tune_request& request)
          -> std::optional<blas::auto_tune_choice> {
        return default_tuner().resolve(request);
      });
}

}  // namespace dcmesh::tune
