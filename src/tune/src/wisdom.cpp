#include "dcmesh/tune/wisdom.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sys/stat.h>

#include "dcmesh/common/atomic_file.hpp"
#include "dcmesh/trace/tracer.hpp"  // append_json_escaped

namespace dcmesh::tune {
namespace {

/// Extract the string value of `"name":"..."`; nullopt when absent.
std::optional<std::string> json_string_field(std::string_view line,
                                             std::string_view field) {
  const std::string needle = "\"" + std::string(field) + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = pos + needle.size(); i < line.size(); ++i) {
    const char ch = line[i];
    if (ch == '"') return out;
    if (ch == '\\' && i + 1 < line.size()) {
      // The writer only escapes quote/backslash/control; unescape the
      // two that can round-trip through site tags.
      const char next = line[++i];
      out += (next == 'n') ? '\n' : (next == 't') ? '\t' : next;
    } else {
      out += ch;
    }
  }
  return std::nullopt;  // unterminated string
}

/// Extract the numeric value of `"name":<number>`; nullopt when absent.
std::optional<double> json_number_field(std::string_view line,
                                        std::string_view field) {
  const std::string needle = "\"" + std::string(field) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  const std::string rest(line.substr(pos + needle.size()));
  char* end = nullptr;
  const double value = std::strtod(rest.c_str(), &end);
  if (end == rest.c_str()) return std::nullopt;
  return value;
}

std::optional<shape_class> parse_shape_class(std::string_view text) {
  // "m<bits>n<bits>k<bits>"
  int m = 0, n = 0, k = 0;
  if (std::sscanf(std::string(text).c_str(), "m%dn%dk%d", &m, &n, &k) != 3) {
    return std::nullopt;
  }
  if (m < 0 || n < 0 || k < 0) return std::nullopt;
  return shape_class{m, n, k};
}

int bit_width(std::int64_t v) noexcept {
  if (v < 1) v = 1;
  int bits = 0;
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

}  // namespace

std::string shape_class::to_string() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "m%dn%dk%d", m_bits, n_bits,
                k_bits);
  return buffer;
}

shape_class classify_shape(std::int64_t m, std::int64_t n,
                           std::int64_t k) noexcept {
  return {bit_width(m), bit_width(n), bit_width(k)};
}

std::string wisdom_key(std::string_view routine, std::string_view site,
                       shape_class cls, double ulp_budget) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "|%s|%.6g", cls.to_string().c_str(),
                ulp_budget);
  std::string key(routine);
  key += '|';
  key += site;
  key += buffer;
  return key;
}

std::string wisdom_entry::key() const {
  return wisdom_key(routine, site, cls, ulp_budget);
}

std::string wisdom_entry::to_json() const {
  std::string out = "{\"routine\":\"";
  trace::append_json_escaped(out, routine);
  out += "\",\"site\":\"";
  trace::append_json_escaped(out, site);
  out += "\",\"class\":\"";
  out += cls.to_string();
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "\",\"ulp_budget\":%.9g,\"mode\":\"",
                ulp_budget);
  out += buffer;
  out += mode_token;
  std::snprintf(buffer, sizeof(buffer),
                "\",\"err_ulp\":%.9g,\"gflops\":%.9g,\"provenance\":\"",
                err_ulp, gflops);
  out += buffer;
  out += provenance;
  out += "\"}";
  return out;
}

std::string wisdom_header() {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "{\"dcmesh_wisdom\":%d,\"kernel\":\"%s\"}",
                kWisdomFormatVersion,
                std::string(kKernelVersion).c_str());
  return buffer;
}

bool wisdom_header_ok(std::string_view line) {
  const auto version = json_number_field(line, "dcmesh_wisdom");
  if (!version || *version != kWisdomFormatVersion) return false;
  const auto kernel = json_string_field(line, "kernel");
  return kernel && *kernel == kKernelVersion;
}

std::optional<wisdom_entry> parse_wisdom_line(std::string_view line) {
  const auto routine = json_string_field(line, "routine");
  const auto site = json_string_field(line, "site");
  const auto cls_text = json_string_field(line, "class");
  const auto budget = json_number_field(line, "ulp_budget");
  const auto mode = json_string_field(line, "mode");
  const auto err = json_number_field(line, "err_ulp");
  const auto gflops = json_number_field(line, "gflops");
  const auto provenance = json_string_field(line, "provenance");
  if (!routine || !site || !cls_text || !budget || !mode || !err ||
      !gflops || !provenance) {
    return std::nullopt;
  }
  const auto cls = parse_shape_class(*cls_text);
  if (!cls) return std::nullopt;
  wisdom_entry entry;
  entry.routine = *routine;
  entry.site = *site;
  entry.cls = *cls;
  entry.ulp_budget = *budget;
  entry.mode_token = *mode;
  entry.err_ulp = *err;
  entry.gflops = *gflops;
  entry.provenance = *provenance;
  return entry;
}

wisdom_file load_wisdom(const std::string& path) {
  wisdom_file result;
  if (path.empty()) return result;
  std::ifstream in(path);
  if (!in.is_open()) return result;
  result.existed = true;
  std::string line;
  if (!std::getline(in, line) || !wisdom_header_ok(line)) {
    result.version_ok = false;
    return result;
  }
  // First entry per key wins: concurrent appenders may duplicate a key,
  // and every sharer must resolve it to the same decision.
  std::vector<std::string> seen;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto entry = parse_wisdom_line(line);
    if (!entry) {
      ++result.rejected_lines;
      continue;
    }
    const std::string key = entry->key();
    bool duplicate = false;
    for (const auto& k : seen) {
      if (k == key) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    seen.push_back(key);
    result.entries.push_back(std::move(*entry));
  }
  return result;
}

bool save_wisdom(const std::string& path,
                 const std::vector<wisdom_entry>& entries) {
  // Crash-safe rewrite (temp file + fsync + atomic rename): a run killed
  // mid-save must not destroy the wisdom accumulated by earlier runs.
  return atomic_write_file(path, [&](std::ostream& os) {
    os << wisdom_header() << '\n';
    for (const auto& entry : entries) {
      os << entry.to_json() << '\n';
    }
    return static_cast<bool>(os);
  });
}

bool append_wisdom(const std::string& path, const wisdom_entry& entry) {
  if (path.empty()) return false;
  struct stat st {};
  const bool needs_header =
      stat(path.c_str(), &st) != 0 || st.st_size == 0;
  std::ofstream os(path, std::ios::app);
  if (!os) return false;
  if (needs_header) os << wisdom_header() << '\n';
  os << entry.to_json() << '\n';
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace dcmesh::tune
