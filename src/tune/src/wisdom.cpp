#include "dcmesh/tune/wisdom.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "dcmesh/common/atomic_file.hpp"
#include "dcmesh/common/file_lock.hpp"
#include "dcmesh/trace/tracer.hpp"  // append_json_escaped

namespace dcmesh::tune {
namespace {

/// Extract the string value of `"name":"..."`; nullopt when absent.
std::optional<std::string> json_string_field(std::string_view line,
                                             std::string_view field) {
  const std::string needle = "\"" + std::string(field) + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = pos + needle.size(); i < line.size(); ++i) {
    const char ch = line[i];
    if (ch == '"') return out;
    if (ch == '\\' && i + 1 < line.size()) {
      // The writer only escapes quote/backslash/control; unescape the
      // two that can round-trip through site tags.
      const char next = line[++i];
      out += (next == 'n') ? '\n' : (next == 't') ? '\t' : next;
    } else {
      out += ch;
    }
  }
  return std::nullopt;  // unterminated string
}

/// Extract the numeric value of `"name":<number>`; nullopt when absent.
std::optional<double> json_number_field(std::string_view line,
                                        std::string_view field) {
  const std::string needle = "\"" + std::string(field) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  const std::string rest(line.substr(pos + needle.size()));
  char* end = nullptr;
  const double value = std::strtod(rest.c_str(), &end);
  if (end == rest.c_str()) return std::nullopt;
  return value;
}

std::optional<shape_class> parse_shape_class(std::string_view text) {
  // "m<bits>n<bits>k<bits>"
  int m = 0, n = 0, k = 0;
  if (std::sscanf(std::string(text).c_str(), "m%dn%dk%d", &m, &n, &k) != 3) {
    return std::nullopt;
  }
  if (m < 0 || n < 0 || k < 0) return std::nullopt;
  return shape_class{m, n, k};
}

int bit_width(std::int64_t v) noexcept {
  if (v < 1) v = 1;
  int bits = 0;
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

}  // namespace

std::string shape_class::to_string() const {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "m%dn%dk%d", m_bits, n_bits,
                k_bits);
  return buffer;
}

shape_class classify_shape(std::int64_t m, std::int64_t n,
                           std::int64_t k) noexcept {
  return {bit_width(m), bit_width(n), bit_width(k)};
}

std::string wisdom_key(std::string_view routine, std::string_view site,
                       shape_class cls, double ulp_budget) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "|%s|%.6g", cls.to_string().c_str(),
                ulp_budget);
  std::string key(routine);
  key += '|';
  key += site;
  key += buffer;
  return key;
}

std::string wisdom_entry::key() const {
  return wisdom_key(routine, site, cls, ulp_budget);
}

std::string wisdom_entry::to_json() const {
  std::string out = "{\"routine\":\"";
  trace::append_json_escaped(out, routine);
  out += "\",\"site\":\"";
  trace::append_json_escaped(out, site);
  out += "\",\"class\":\"";
  out += cls.to_string();
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "\",\"ulp_budget\":%.9g,\"mode\":\"",
                ulp_budget);
  out += buffer;
  out += mode_token;
  std::snprintf(buffer, sizeof(buffer),
                "\",\"err_ulp\":%.9g,\"gflops\":%.9g,\"provenance\":\"",
                err_ulp, gflops);
  out += buffer;
  out += provenance;
  out += '"';
  // Optional fields (absent = "not set"), mirroring the "gen" pattern so
  // v1-era lines and blocking-free entries stay byte-identical.
  if (block_m > 0) {
    std::snprintf(buffer, sizeof(buffer),
                  ",\"block_m\":%lld,\"block_n\":%lld,\"block_isa\":\"",
                  static_cast<long long>(block_m),
                  static_cast<long long>(block_n));
    out += buffer;
    trace::append_json_escaped(out, block_isa);
    out += '"';
  }
  if (abft_overhead > 0.0) {
    std::snprintf(buffer, sizeof(buffer), ",\"abft_overhead\":%.9g",
                  abft_overhead);
    out += buffer;
  }
  if (generation > 0) {
    std::snprintf(buffer, sizeof(buffer), ",\"gen\":%llu",
                  static_cast<unsigned long long>(generation));
    out += buffer;
  }
  out += '}';
  return out;
}

std::string wisdom_header(std::uint64_t generation) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "{\"dcmesh_wisdom\":%d,\"kernel\":\"%s\",\"gen\":%llu}",
                kWisdomFormatVersion, std::string(kKernelVersion).c_str(),
                static_cast<unsigned long long>(generation));
  return buffer;
}

bool wisdom_header_ok(std::string_view line) {
  const auto version = json_number_field(line, "dcmesh_wisdom");
  if (!version || *version < kWisdomFormatVersionMin ||
      *version > kWisdomFormatVersion) {
    return false;
  }
  const auto kernel = json_string_field(line, "kernel");
  return kernel && *kernel == kKernelVersion;
}

std::optional<wisdom_entry> parse_wisdom_line(std::string_view line) {
  const auto routine = json_string_field(line, "routine");
  const auto site = json_string_field(line, "site");
  const auto cls_text = json_string_field(line, "class");
  const auto budget = json_number_field(line, "ulp_budget");
  const auto mode = json_string_field(line, "mode");
  const auto err = json_number_field(line, "err_ulp");
  const auto gflops = json_number_field(line, "gflops");
  const auto provenance = json_string_field(line, "provenance");
  if (!routine || !site || !cls_text || !budget || !mode || !err ||
      !gflops || !provenance) {
    return std::nullopt;
  }
  const auto cls = parse_shape_class(*cls_text);
  if (!cls) return std::nullopt;
  wisdom_entry entry;
  entry.routine = *routine;
  entry.site = *site;
  entry.cls = *cls;
  entry.ulp_budget = *budget;
  entry.mode_token = *mode;
  entry.err_ulp = *err;
  entry.gflops = *gflops;
  entry.provenance = *provenance;
  // Optional blocking fields (format v2); absent — every v1 line — reads
  // as "no tuned blocking".
  const auto block_m = json_number_field(line, "block_m");
  const auto block_n = json_number_field(line, "block_n");
  if (block_m && block_n && *block_m > 0 && *block_n > 0) {
    entry.block_m = static_cast<std::int64_t>(*block_m);
    entry.block_n = static_cast<std::int64_t>(*block_n);
    entry.block_isa = json_string_field(line, "block_isa").value_or("");
  }
  // Optional ABFT overhead column; absent reads as "never measured".
  if (const auto abft = json_number_field(line, "abft_overhead");
      abft && *abft > 0.0) {
    entry.abft_overhead = *abft;
  }
  // "gen" was added after format v1 shipped; its absence (a pre-merge
  // file, or a hand-written line) reads as generation 0, which merges
  // exactly like a fresh in-memory decision.
  if (const auto gen = json_number_field(line, "gen"); gen && *gen > 0) {
    entry.generation = static_cast<std::uint64_t>(*gen);
  }
  return entry;
}

wisdom_file load_wisdom(const std::string& path) {
  wisdom_file result;
  if (path.empty()) return result;
  std::ifstream in(path);
  if (!in.is_open()) return result;
  result.existed = true;
  std::string line;
  if (!std::getline(in, line) || !wisdom_header_ok(line)) {
    result.version_ok = false;
    return result;
  }
  if (const auto gen = json_number_field(line, "gen"); gen && *gen > 0) {
    result.generation = static_cast<std::uint64_t>(*gen);
  }
  // Highest generation per key wins (ties keep the earlier line): the
  // merge writer keeps at most one line per key, but a file touched by a
  // pre-merge appender may still duplicate keys, and every sharer must
  // resolve each to the same decision.
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto entry = parse_wisdom_line(line);
    if (!entry) {
      ++result.rejected_lines;
      continue;
    }
    const std::string key = entry->key();
    wisdom_entry* existing = nullptr;
    for (auto& e : result.entries) {
      if (e.key() == key) {
        existing = &e;
        break;
      }
    }
    if (existing == nullptr) {
      result.entries.push_back(std::move(*entry));
    } else if (entry->generation > existing->generation) {
      *existing = std::move(*entry);
    }
  }
  return result;
}

bool save_wisdom(const std::string& path,
                 const std::vector<wisdom_entry>& entries,
                 std::uint64_t generation) {
  // Crash-safe rewrite (temp file + fsync + atomic rename): a run killed
  // mid-save must not destroy the wisdom accumulated by earlier runs.
  return atomic_write_file(path, [&](std::ostream& os) {
    os << wisdom_header(generation) << '\n';
    for (const auto& entry : entries) {
      os << entry.to_json() << '\n';
    }
    return static_cast<bool>(os);
  });
}

std::optional<std::uint64_t> peek_wisdom_generation(
    const std::string& path) {
  if (path.empty()) return std::nullopt;
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || !wisdom_header_ok(line)) {
    return std::nullopt;
  }
  const auto gen = json_number_field(line, "gen");
  if (!gen || *gen < 0) return 0;
  return static_cast<std::uint64_t>(*gen);
}

merge_result merge_wisdom(const std::string& path,
                          const std::vector<wisdom_entry>& incoming,
                          const file_lock* held) {
  merge_result result;
  if (path.empty()) return result;
  // Serialize the read-modify-write against sibling processes.  When the
  // caller calibrated under its own lock it passes that lock in; taking
  // a second one here would block forever (flock excludes per open file
  // description, even within one process).
  std::optional<file_lock> own;
  if (held == nullptr || !held->held()) own.emplace(path);

  wisdom_file file = load_wisdom(path);
  // A stale-kernel or corrupt file is rebuilt from scratch — its
  // decisions are not comparable, so nothing in it is worth preserving.
  if (!file.version_ok) {
    file.entries.clear();
    file.generation = 0;
  }
  const std::uint64_t next_gen = file.generation + 1;
  bool changed = false;
  for (const auto& in_entry : incoming) {
    const std::string key = in_entry.key();
    wisdom_entry* existing = nullptr;
    for (auto& e : file.entries) {
      if (e.key() == key) {
        existing = &e;
        break;
      }
    }
    if (existing == nullptr) {
      file.entries.push_back(in_entry);
      file.entries.back().generation = next_gen;
      ++result.added;
      changed = true;
    } else if (in_entry.generation > 0 &&
               in_entry.generation >= existing->generation) {
      // The writer had observed the published entry (its generation is
      // from a real load) and overrides it: last writer wins — except
      // the blocking fields, which are fill-only: a mode rewrite that
      // never probed blocking must not erase a sibling's probe result.
      const std::int64_t kept_block_m = existing->block_m;
      const std::int64_t kept_block_n = existing->block_n;
      std::string kept_block_isa = std::move(existing->block_isa);
      const double kept_abft_overhead = existing->abft_overhead;
      *existing = in_entry;
      if (existing->block_m == 0 && kept_block_m > 0) {
        existing->block_m = kept_block_m;
        existing->block_n = kept_block_n;
        existing->block_isa = std::move(kept_block_isa);
      }
      if (existing->abft_overhead == 0.0 && kept_abft_overhead > 0.0) {
        existing->abft_overhead = kept_abft_overhead;
      }
      existing->generation = next_gen;
      ++result.added;
      changed = true;
    } else {
      // A sibling published this key first; converge on its decision —
      // but still fill an absent blocking from our probe (fill-only in
      // the other direction: the sibling's mode decision stands, our
      // blocking measurement is information it never had).
      if (existing->block_m == 0 && in_entry.block_m > 0) {
        existing->block_m = in_entry.block_m;
        existing->block_n = in_entry.block_n;
        existing->block_isa = in_entry.block_isa;
        existing->generation = next_gen;
        changed = true;
      }
      if (existing->abft_overhead == 0.0 && in_entry.abft_overhead > 0.0) {
        existing->abft_overhead = in_entry.abft_overhead;
        existing->generation = next_gen;
        changed = true;
      }
      ++result.kept;
    }
  }
  if (!changed && file.existed && file.version_ok) {
    // Nothing to write — do not burn a generation (siblings would
    // reload for no reason) and do not touch the file.
    result.ok = true;
    result.generation = file.generation;
    return result;
  }
  result.ok = save_wisdom(path, file.entries, next_gen);
  result.generation = result.ok ? next_gen : file.generation;
  return result;
}

}  // namespace dcmesh::tune
