// capi_tune.cpp — the tune-side slice of the public C API.
//
// dcmesh_install_autotuner() is declared in include/dcmesh/dcmesh_blas.h
// but cannot be defined in src/blas: installing the tuner pulls in
// src/tune, which depends on blas (its calibration GEMMs run through the
// descriptor dispatcher).  Defining it here keeps the dependency arrow
// pointing one way; any consumer that links dcmesh::tune — the in-tree
// driver, the interposition shim, the test binaries — gets the symbol.

#include "dcmesh/dcmesh_blas.h"
#include "dcmesh/tune/autotuner.hpp"

extern "C" int dcmesh_install_autotuner(void) {
  dcmesh::tune::install_auto_tuner();
  return DCMESH_OK;
}
