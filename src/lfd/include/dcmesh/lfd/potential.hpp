#pragma once
// potential.hpp — local (pseudo)potential of the ions on the mesh.
//
// A soft Gaussian-well model potential per ion (depth set by the species'
// effective valence, width by its pseudopotential radius).  This stands in
// for the DFT local potential: it is smooth on the mesh (no Coulomb
// singularity), periodic, and moves with the ions so the SCF refresh has
// real work to do.

#include <span>
#include <vector>

#include "dcmesh/mesh/grid.hpp"
#include "dcmesh/mesh/stencil.hpp"
#include "dcmesh/qxmd/atoms.hpp"

namespace dcmesh::lfd {

/// Evaluate the local potential (Hartree) at every mesh point.
/// `depth_scale` converts species valence to well depth, keeping the
/// spectral radius of H small enough for explicit time stepping.
[[nodiscard]] std::vector<double> build_local_potential(
    const mesh::grid3d& grid, const qxmd::atom_system& atoms,
    double depth_scale = 0.15);

/// Hartree mean-field potential of the electron density: solves the
/// periodic Poisson problem nabla^2 V_H = -4 pi rho (zero-mean, jellium
/// background) and scales by `strength` (1.0 = full Hartree; smaller
/// values soften the mean field to keep explicit stepping stable on
/// coarse meshes).  Updated at SCF boundaries, like the ionic potential.
[[nodiscard]] std::vector<double> build_hartree_potential(
    const mesh::grid3d& grid, mesh::fd_order order,
    std::span<const double> rho, double strength = 1.0);

}  // namespace dcmesh::lfd
