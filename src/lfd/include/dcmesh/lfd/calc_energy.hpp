#pragma once
// calc_energy.hpp — "BLASified" energy evaluation (paper Sec. V-A).
//
// The kinetic energy is computed through a GEMM on the Ngrid x Norb
// wave-function matrix (call 4 of the QD step's 9); the nonlocal energy is
// evaluated in the KS subspace from the overlap G produced by nlp_prop
// (calls 5-6).  The local potential energy is a mesh reduction (not BLAS),
// exactly as in DCMESH where only the nonlocal pieces are BLASified.

#include <complex>
#include <span>

#include "dcmesh/common/matrix.hpp"
#include "dcmesh/lfd/hamiltonian.hpp"

namespace dcmesh::lfd {

/// Energies in Hartree (electronic part only; the driver adds ionic terms).
struct energy_report {
  double ekin = 0.0;   ///< Electronic kinetic energy (BLAS call 4).
  double epot = 0.0;   ///< Local potential energy (mesh reduction).
  double enl = 0.0;    ///< Nonlocal energy in the KS subspace (call 5).
  double eband_rot = 0.0;  ///< Subspace-rotated band energy (call 6).
  [[nodiscard]] double eband() const noexcept { return ekin + epot + enl; }
};

/// Evaluate the electronic energies.
///  * `h` supplies the kinetic stencil and the local potential;
///  * `g` is the KS overlap from this step's nlp_prop;
///  * `lambda_nl` is the nonlocal projector strength (Hartree);
///  * `occ[j]` the occupation of orbital j; `dv` the mesh volume element.
template <typename R>
[[nodiscard]] energy_report calc_energy(const hamiltonian<R>& h,
                                        const matrix<std::complex<R>>& psi,
                                        const matrix<std::complex<R>>& g,
                                        double lambda_nl,
                                        std::span<const double> occ,
                                        double dv);

// --- stage entry points -------------------------------------------------
// calc_energy() composes exactly these four stages.  The task-graph step
// executor runs them as separate DAG nodes (kinetic/local/nonlocal are
// mutually independent; band_rotation needs kinetic's T matrix), sharing
// this one implementation with the serial wrapper.

/// Stencil K*Psi + BLAS call 4 (T = dv * Psi^H K Psi) + diagonal
/// contraction.  `t` must be norb x norb; returns ekin.
template <typename R>
double energy_kinetic(const hamiltonian<R>& h,
                      const matrix<std::complex<R>>& psi,
                      std::span<const double> occ, double dv,
                      matrix<std::complex<R>>& t);

/// Local potential energy (mesh reduction, no BLAS).
template <typename R>
[[nodiscard]] double energy_local(const hamiltonian<R>& h,
                                  const matrix<std::complex<R>>& psi,
                                  std::span<const double> occ, double dv);

/// BLAS call 5 (M = G^H W, W = Lambda G) + diagonal; returns enl.
template <typename R>
[[nodiscard]] double energy_nonlocal(const matrix<std::complex<R>>& g,
                                     double lambda_nl,
                                     std::span<const double> occ);

/// BLAS call 6 (U = T G) + contraction; returns eband_rot.
template <typename R>
[[nodiscard]] double energy_band_rotation(const matrix<std::complex<R>>& t,
                                          const matrix<std::complex<R>>& g,
                                          std::span<const double> occ);

}  // namespace dcmesh::lfd
