#pragma once
// hamiltonian.hpp — the LFD single-particle Hamiltonian.
//
// H = -1/2 nabla^2 + V_loc(r) - i A(t) d/dz + 1/2 A(t)^2
// (velocity-gauge light coupling in the dipole approximation; z is the
// polarization axis).  Applied column-by-column through the mesh stencils;
// templated over the real scalar so FP32 and FP64 LFD share one
// implementation.  The *nonlocal* part of the potential is handled
// separately by nlp_prop (that is the point of the paper).

#include <complex>
#include <span>
#include <vector>

#include "dcmesh/common/matrix.hpp"
#include "dcmesh/mesh/grid.hpp"
#include "dcmesh/mesh/stencil.hpp"

namespace dcmesh::lfd {

/// Local Hamiltonian on the mesh at a fixed field value A.
template <typename R>
class hamiltonian {
 public:
  hamiltonian(mesh::grid3d grid, mesh::fd_order order,
              std::vector<double> v_loc, int polarization_axis = 2);

  /// Set the instantaneous vector potential magnitude A(t).
  void set_field(double a) noexcept { a_field_ = a; }
  [[nodiscard]] double field() const noexcept { return a_field_; }

  /// Replace the local potential (after ions move).
  void set_potential(std::vector<double> v_loc);

  /// out = H * psi for every column (out is overwritten).
  void apply(const_matrix_view<std::complex<R>> psi,
             matrix_view<std::complex<R>> out) const;

  /// out = (-1/2 nabla^2) * psi only (for the kinetic-energy GEMM).
  void apply_kinetic(const_matrix_view<std::complex<R>> psi,
                     matrix_view<std::complex<R>> out) const;

  /// out = (-1/2 nabla^2 - i A d/dz) * psi — the non-diagonal part of H,
  /// used by the Strang propagator (the diagonal part V + A^2/2 is applied
  /// as an exact phase).
  void apply_kinetic_field(const_matrix_view<std::complex<R>> psi,
                           matrix_view<std::complex<R>> out) const;

  /// Upper bound on ||H|| (stability: dt * bound should stay < ~1 for the
  /// 4th-order Taylor propagator).
  [[nodiscard]] double spectral_bound() const noexcept;

  [[nodiscard]] const mesh::grid3d& grid() const noexcept { return grid_; }
  [[nodiscard]] mesh::fd_order order() const noexcept { return order_; }
  [[nodiscard]] int polarization_axis() const noexcept { return axis_; }
  [[nodiscard]] std::span<const R> potential() const noexcept {
    return {v_.data(), v_.size()};
  }

 private:
  mesh::grid3d grid_;
  mesh::fd_order order_;
  std::vector<R> v_;       ///< Local potential cast to the LFD precision.
  double v_min_ = 0.0, v_max_ = 0.0;
  int axis_;
  double a_field_ = 0.0;
};

}  // namespace dcmesh::lfd
