#pragma once
// observables.hpp — additional electronic observables: dipole moment and
// the delta-kick linear-response protocol behind absorption spectra.
//
// The dipole d(t) after an impulsive momentum kick e^{i kappa z} is the
// standard real-time-TDDFT route to the optical absorption spectrum:
// Im[d(omega)] / kappa gives the dipole strength function.  These helpers
// provide the dipole observable; lfd_engine::apply_delta_kick applies the
// kick.

#include <complex>
#include <span>

#include "dcmesh/common/matrix.hpp"
#include "dcmesh/mesh/grid.hpp"

namespace dcmesh::lfd {

/// Electronic dipole moment along `axis` (atomic units), coordinates
/// measured minimum-image from the box centre so the periodic wrap does
/// not produce artificial jumps:
///   d = sum_j f_j Int c(r) |psi_j(r)|^2 dV.
template <typename R>
[[nodiscard]] double dipole_moment(const mesh::grid3d& grid, int axis,
                                   const matrix<std::complex<R>>& psi,
                                   std::span<const double> occ, double dv);

}  // namespace dcmesh::lfd
