#pragma once
// init.hpp — FP64 ground-state initialization (the QXMD SCF entry point).
//
// "The QXMD portion ... can only be run using FP64 precision as this
// represents a critical portion of the simulation wherein the wavefunction
// is initialized by the Self-Consistent Field (SCF) method" (Sec. IV-C).
// This builds the starting orbitals: low-|k| plane waves with a small
// deterministic perturbation, orthonormalized and Rayleigh-Ritz
// diagonalized against the FP64 local Hamiltonian.  Entirely FP64 and
// independent of the BLAS compute mode, so all precision runs start from
// bit-identical states.

#include <vector>

#include "dcmesh/common/matrix.hpp"
#include "dcmesh/mesh/grid.hpp"
#include "dcmesh/mesh/stencil.hpp"
#include "dcmesh/qxmd/atoms.hpp"

namespace dcmesh::lfd {

/// Ground-state initialization result.
struct init_result {
  matrix<cdouble> psi;               ///< Orthonormal KS orbitals (ascending).
  std::vector<double> band_energies; ///< Subspace eigenvalues (Hartree).
  std::vector<double> occupations;   ///< 2.0 for the lowest nocc, else 0.
};

/// Build `norb` starting orbitals for the system on `grid` and diagonalize
/// the FP64 local Hamiltonian in their span.  `seed` controls the
/// deterministic plane-wave perturbation.
[[nodiscard]] init_result initialize_ground_state(
    const mesh::grid3d& grid, const qxmd::atom_system& atoms,
    std::size_t norb, std::size_t nocc, mesh::fd_order order,
    unsigned long long seed = 1234, double potential_depth_scale = 0.15);

}  // namespace dcmesh::lfd
