#pragma once
// remap_occ.hpp — remap wave functions to occupation numbers (Sec. V-A).
//
// nexc, the number of excited electrons, is computed from the overlap of
// the propagated occupied orbitals with the *unoccupied* reference
// manifold.  The paper's Table VII documents the central GEMM here:
// m = Nocc (128 for the 40-atom system), n = Norb - Nocc, k = Ngrid.
// Three BLAS calls (7-9 of the QD step's 9).

#include <complex>
#include <span>
#include <vector>

#include "dcmesh/common/matrix.hpp"

namespace dcmesh::lfd {

/// Outputs of the occupation remap.
struct remap_report {
  /// Number of excited electrons: sum_i f_i (S S^H)_ii, the occupied
  /// population leaked into the unoccupied reference manifold.
  double nexc = 0.0;
  /// Second-order excitation moment sum_i f_i (O^2)_ii — the surface-
  /// hopping normalization correction (>= 0, ~nexc^2/Nocc for weak leak).
  double nexc_second_order = 0.0;
  /// Remapped population per unoccupied reference orbital (size
  /// norb - nocc): n_u = sum_i f_i |S_iu|^2.  Sums to nexc.
  std::vector<double> unocc_population;
};

/// Compute the occupation remap.
/// `psi0` reference orbitals (columns >= nocc form the unoccupied
/// manifold), `psi` propagated orbitals (columns < nocc are occupied),
/// `occ` the occupation numbers, `dv` the mesh volume element.
template <typename R>
[[nodiscard]] remap_report remap_occ(const matrix<std::complex<R>>& psi0,
                                     const matrix<std::complex<R>>& psi,
                                     std::span<const double> occ,
                                     std::size_t nocc, double dv);

}  // namespace dcmesh::lfd
