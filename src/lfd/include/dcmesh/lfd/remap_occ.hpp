#pragma once
// remap_occ.hpp — remap wave functions to occupation numbers (Sec. V-A).
//
// nexc, the number of excited electrons, is computed from the overlap of
// the propagated occupied orbitals with the *unoccupied* reference
// manifold.  The paper's Table VII documents the central GEMM here:
// m = Nocc (128 for the 40-atom system), n = Norb - Nocc, k = Ngrid.
// Three BLAS calls (7-9 of the QD step's 9).

#include <complex>
#include <span>
#include <vector>

#include "dcmesh/common/matrix.hpp"

namespace dcmesh::lfd {

/// Outputs of the occupation remap.
struct remap_report {
  /// Number of excited electrons: sum_i f_i (S S^H)_ii, the occupied
  /// population leaked into the unoccupied reference manifold.
  double nexc = 0.0;
  /// Second-order excitation moment sum_i f_i (O^2)_ii — the surface-
  /// hopping normalization correction (>= 0, ~nexc^2/Nocc for weak leak).
  double nexc_second_order = 0.0;
  /// Remapped population per unoccupied reference orbital (size
  /// norb - nocc): n_u = sum_i f_i |S_iu|^2.  Sums to nexc.
  std::vector<double> unocc_population;
};

/// Compute the occupation remap.
/// `psi0` reference orbitals (columns >= nocc form the unoccupied
/// manifold), `psi` propagated orbitals (columns < nocc are occupied),
/// `occ` the occupation numbers, `dv` the mesh volume element.
template <typename R>
[[nodiscard]] remap_report remap_occ(const matrix<std::complex<R>>& psi0,
                                     const matrix<std::complex<R>>& psi,
                                     std::span<const double> occ,
                                     std::size_t nocc, double dv);

// --- stage entry points -------------------------------------------------
// remap_occ() composes exactly these four stages.  The task-graph step
// executor runs them as separate DAG nodes (moment1/population both fan
// out from overlap; moment2 chains after moment1), sharing this one
// implementation with the serial wrapper.

/// BLAS call 7 (Table VII's GEMM): s = dv * Psi_occ^H(t) * Psi0_unocc.
/// `s` must be nocc x (norb - nocc).
template <typename R>
void remap_overlap(const matrix<std::complex<R>>& psi0,
                   const matrix<std::complex<R>>& psi, std::size_t nocc,
                   double dv, matrix<std::complex<R>>& s);

/// BLAS call 8 (O = S S^H) + diagonal; `o` must be nocc x nocc.
/// Returns nexc.
template <typename R>
double remap_moment1(const matrix<std::complex<R>>& s,
                     std::span<const double> occ,
                     matrix<std::complex<R>>& o);

/// BLAS call 9 (Rmat = S^H O) + contraction; returns the second-order
/// excitation moment.
template <typename R>
[[nodiscard]] double remap_moment2(const matrix<std::complex<R>>& s,
                                   const matrix<std::complex<R>>& o,
                                   std::span<const double> occ);

/// Per-unoccupied-orbital population (level-1 work on S); sums to nexc.
template <typename R>
[[nodiscard]] std::vector<double> remap_population(
    const matrix<std::complex<R>>& s, std::span<const double> occ);

}  // namespace dcmesh::lfd
