#pragma once
// engine.hpp — the LFD quantum-dynamics engine (one QD step = 9 BLAS calls).
//
// Owns the propagated wave-function matrix Psi(t), the reference Psi(0),
// the local Hamiltonian, and the laser pulse; advances one quantum-
// dynamical step at a time.  A step is:
//   1. 4th-order Taylor split-step under the local Hamiltonian at the
//      midpoint field A(t + dt/2) (stencil kernels — the non-BLAS part);
//   2. nonlocal correction nlp_prop           (BLAS calls 1-3);
//   3. calc_energy                            (BLAS calls 4-6);
//   4. remap_occ                              (BLAS calls 7-9);
//   5. current density (stencil reduction).
// Templated over the real scalar: lfd_engine<float> is the paper's FP32 LFD
// whose BLAS precision is steered by MKL_BLAS_COMPUTE_MODE;
// lfd_engine<double> is the FP64 reference build.

#include <complex>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "dcmesh/common/matrix.hpp"
#include "dcmesh/lfd/calc_energy.hpp"
#include "dcmesh/lfd/hamiltonian.hpp"
#include "dcmesh/lfd/nlp_prop.hpp"
#include "dcmesh/lfd/remap_occ.hpp"
#include "dcmesh/mesh/laser.hpp"
#include "dcmesh/qxmd/atoms.hpp"
#include "dcmesh/qxmd/scf.hpp"

namespace dcmesh::sched {
class thread_pool;
}

namespace dcmesh::lfd {

/// Local-propagator family.
enum class propagator_kind {
  taylor,  ///< Plain order-N Taylor expansion of exp(-i H dt).
  strang,  ///< Strang split: exact phase for the diagonal part
           ///< (V + A^2/2), Taylor for the stencil part — exactly unitary
           ///< in the potential and stable regardless of well depth.
};

/// Static configuration of the LFD engine.
struct lfd_options {
  mesh::fd_order order = mesh::fd_order::fourth;
  double dt = 0.02;        ///< QD time step (atomic time units; Table III).
  double v_nl = 0.08;      ///< Nonlocal projector strength (Hartree).
  int taylor_order = 4;    ///< Order of the local-propagator expansion.
  propagator_kind propagator = propagator_kind::taylor;
  mesh::laser_pulse pulse; ///< External laser field.
};

/// One QD step's observables — the output columns the artifact describes:
/// "ekin, epot, etot, eexc, nexc, Aext, and javg".
struct qd_record {
  double t = 0.0;      ///< Simulation time (a.t.u.).
  double ekin = 0.0;   ///< Electronic kinetic energy (Hartree).
  double epot = 0.0;   ///< Local + nonlocal potential energy (Hartree).
  double etot = 0.0;   ///< Electronic band energy (Hartree).
  double eexc = 0.0;   ///< Excitation energy etot(t) - etot(0) (Hartree).
  double nexc = 0.0;   ///< Number of excited electrons.
  double aext = 0.0;   ///< |A(t)| external vector potential (a.u.).
  double javg = 0.0;   ///< Average current density (a.u.).
};

template <typename R>
class lfd_engine {
 public:
  /// `psi_init` is the FP64 ground state from the QXMD SCF (converted to
  /// this engine's precision); `occ` the occupation numbers; `nocc` the
  /// occupied count.  The constructor records the t = 0 energy baseline.
  lfd_engine(mesh::grid3d grid, lfd_options options,
             const matrix<cdouble>& psi_init, std::vector<double> occ,
             std::size_t nocc, std::vector<double> v_loc);

  /// Advance one QD step and return its observables.
  qd_record qd_step();

  /// FP64 SCF refresh (call between series of 500 QD steps): repairs
  /// orthonormality drift accumulated by reduced-precision BLAS.
  qxmd::scf_report refresh_scf();

  /// Impulsive momentum kick exp(i kappa c) along the polarization axis
  /// (c the mesh coordinate) — the standard delta-kick protocol for
  /// linear-response absorption spectra.  Exactly norm-preserving.
  void apply_delta_kick(double kappa);

  /// Replace the local potential after the ions move (QXMD MD step).
  void set_potential(std::vector<double> v_loc);

  [[nodiscard]] double time() const noexcept { return t_; }
  [[nodiscard]] std::size_t qd_steps_taken() const noexcept { return steps_; }
  [[nodiscard]] const matrix<std::complex<R>>& psi() const noexcept {
    return psi_;
  }
  [[nodiscard]] const matrix<std::complex<R>>& psi0() const noexcept {
    return psi0_;
  }
  [[nodiscard]] const hamiltonian<R>& h() const noexcept { return h_; }
  [[nodiscard]] std::size_t nocc() const noexcept { return nocc_; }
  [[nodiscard]] const std::vector<double>& occupations() const noexcept {
    return occ_;
  }
  [[nodiscard]] double dv() const noexcept { return grid_.dv(); }
  /// Norm drift reported by the latest nlp_prop (shadow-ledger metric).
  [[nodiscard]] double last_norm_drift() const noexcept {
    return last_norm_drift_;
  }

  /// Pop the first step-invariant violation observed since the last call
  /// ("" = healthy).  Armed only when DCMESH_HEALTH != off: each qd_step
  /// checks norm conservation against the resil limits and that the
  /// record's observables are finite and bounded.  The driver polls this
  /// at series boundaries to decide rollback (resil/health.hpp).
  [[nodiscard]] std::string take_health_violation() {
    return std::exchange(health_violation_, std::string{});
  }

  /// Serialize the propagation state (t, step count, energy baseline,
  /// Psi(t), Psi(0)) to a binary stream — checkpoint support.
  void save_state(std::ostream& os) const;

  /// Restore state written by save_state.  The engine must have been
  /// constructed with the same grid/norb (sizes are validated); throws
  /// std::runtime_error on mismatch or truncated input.
  void load_state(std::istream& is);

  /// Advance one QD step and return its observables.  qd_step() routes
  /// here when DCMESH_SCHED selects the pool: the step's BLAS stages and
  /// mesh kernels run as a dependency DAG on the persistent pool, with
  /// remap_occ's B panel prepacked concurrently with nlp_prop's compute.
  /// Bit-identical to the serial path (every node writes disjoint
  /// outputs; every edge orders writer before reader).
  qd_record qd_step_pooled(sched::thread_pool& pool);

 private:
  void propagate_local(double a_mid);
  qd_record measure(double a_now);
  void check_step_invariants(const qd_record& rec);

  mesh::grid3d grid_;
  lfd_options opt_;
  hamiltonian<R> h_;
  matrix<std::complex<R>> psi_;
  matrix<std::complex<R>> psi0_;
  matrix<std::complex<R>> scratch_term_;
  matrix<std::complex<R>> scratch_h_;
  matrix<std::complex<R>> g_;  ///< Latest KS overlap from nlp_prop.
  std::vector<double> occ_;
  std::size_t nocc_;
  double t_ = 0.0;
  std::size_t steps_ = 0;
  double eband0_ = 0.0;
  double last_norm_drift_ = 0.0;
  std::string health_violation_;  ///< First unpopped invariant violation.
};

}  // namespace dcmesh::lfd
