#pragma once
// forces.hpp — Ehrenfest (Hellmann-Feynman) back-action of the electrons
// on the ions.
//
// DCMESH is a Maxwell-*Ehrenfest*-surface-hopping framework: the excited
// electron density pushes back on the nuclei.  With the Gaussian-well
// local potential V_a(d) = -D_a exp(-|d|^2 / 2 w_a^2), the exact
// Hellmann-Feynman force on ion a is
//
//   F_a = -d/dR_a  Int rho(r) V_a(r - R_a) dV
//       = -(D_a / w_a^2) Int rho(r) (r - R_a) exp(-|r-R_a|^2/2w_a^2) dV,
//
// evaluated on the mesh with minimum-image displacements.  The driver
// feeds this into the velocity-Verlet integrator through the extra-force
// hook once per MD step (the slow time scale).

#include <array>
#include <span>
#include <vector>

#include "dcmesh/common/matrix.hpp"
#include "dcmesh/mesh/grid.hpp"
#include "dcmesh/qxmd/atoms.hpp"

namespace dcmesh::lfd {

/// Electron density on the mesh: rho(r) = sum_j f_j |psi_j(r)|^2
/// (FP64 accumulation regardless of the LFD precision).
template <typename R>
[[nodiscard]] std::vector<double> electron_density(
    const matrix<std::complex<R>>& psi, std::span<const double> occ);

/// Number of electrons the density integrates to (diagnostic).
[[nodiscard]] double integrate_density(const mesh::grid3d& grid,
                                       std::span<const double> rho);

/// Hellmann-Feynman forces of `rho` on every ion, in Hartree/Bohr.
/// `depth_scale` must match the one used to build the local potential so
/// the force is the exact gradient of the energy the electrons feel.
[[nodiscard]] std::vector<std::array<double, 3>> ehrenfest_forces(
    const mesh::grid3d& grid, const qxmd::atom_system& atoms,
    std::span<const double> rho, double depth_scale = 0.15);

/// Electron-ion interaction energy Int rho V dV for the same model
/// potential (the quantity whose negative gradient ehrenfest_forces is).
[[nodiscard]] double electron_ion_energy(const mesh::grid3d& grid,
                                         const qxmd::atom_system& atoms,
                                         std::span<const double> rho,
                                         double depth_scale = 0.15);

}  // namespace dcmesh::lfd
