#pragma once
// nlp_prop.hpp — nonlocal correction for time propagation (paper Eq. (1)).
//
// "Among the most time-intensive portions of the entire LFD portion of the
// DCMESH codebase is the nonlocal correction for time propagation of
// electronic wave functions" (Sec. IV-D).  The correction is cast into
// matrix form in the Kohn-Sham vector space:
//
//     Psi(t) <- Psi(t) + c * Psi(0) * [Psi^H(0) Psi(t)]
//
// i.e. a first-order propagator for the nonlocal operator v_nl * P0 (P0
// the projector onto the initial KS subspace), with c = -i dt v_nl.
// Three BLAS calls per invocation (calls 1-3 of the 9 per QD step).

#include <complex>
#include <vector>

#include "dcmesh/common/matrix.hpp"

namespace dcmesh::lfd {

/// Outputs of one nonlocal propagation step.
template <typename R>
struct nlp_result {
  /// G = dv * Psi0^H Psi(t): the KS-subspace overlap (reused by
  /// calc_energy's nonlocal-energy GEMMs).
  matrix<std::complex<R>> g;
  /// Per-orbital weight inside the initial subspace, diag(G^H G) — from
  /// BLAS call 3.  Drifts below 1 as population leaves the subspace.
  std::vector<double> subspace_weight;
  /// Max |column norm - 1| after the correction (renormalization applied).
  double norm_drift = 0.0;
};

/// Apply the nonlocal correction in place.  `c` is the complex propagation
/// coefficient (-i dt v_nl); `dv` the mesh volume element making G an
/// orthonormal-basis overlap.  Columns are renormalized afterwards (the
/// Taylor + first-order correction is not exactly unitary).
template <typename R>
[[nodiscard]] nlp_result<R> nlp_prop(const matrix<std::complex<R>>& psi0,
                                     matrix<std::complex<R>>& psi,
                                     std::complex<double> c, double dv);

// --- stage entry points -------------------------------------------------
// nlp_prop() is exactly the composition of these four stages, in order.
// The task-graph step executor runs them as separate DAG nodes (subspace
// may overlap project; renormalize waits on project), so they are exposed
// here; keeping ONE implementation is what makes the pooled schedule
// bit-identical to the serial wrapper.

/// BLAS call 1: g = dv * Psi0^H Psi(t).  `g` must be norb x norb.
template <typename R>
void nlp_overlap(const matrix<std::complex<R>>& psi0,
                 const matrix<std::complex<R>>& psi, double dv,
                 matrix<std::complex<R>>& g);

/// BLAS call 2: Psi += c * Psi0 * g  (in place).
template <typename R>
void nlp_project(const matrix<std::complex<R>>& psi0,
                 const matrix<std::complex<R>>& g, std::complex<double> c,
                 matrix<std::complex<R>>& psi);

/// BLAS call 3 + diagonal extraction: weight_j = (g^H g)_jj.
template <typename R>
[[nodiscard]] std::vector<double> nlp_subspace(
    const matrix<std::complex<R>>& g);

/// Column renormalization (level-1 BLAS); returns max |norm - 1|.
template <typename R>
double nlp_renormalize(matrix<std::complex<R>>& psi, double dv);

}  // namespace dcmesh::lfd
