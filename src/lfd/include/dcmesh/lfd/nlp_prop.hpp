#pragma once
// nlp_prop.hpp — nonlocal correction for time propagation (paper Eq. (1)).
//
// "Among the most time-intensive portions of the entire LFD portion of the
// DCMESH codebase is the nonlocal correction for time propagation of
// electronic wave functions" (Sec. IV-D).  The correction is cast into
// matrix form in the Kohn-Sham vector space:
//
//     Psi(t) <- Psi(t) + c * Psi(0) * [Psi^H(0) Psi(t)]
//
// i.e. a first-order propagator for the nonlocal operator v_nl * P0 (P0
// the projector onto the initial KS subspace), with c = -i dt v_nl.
// Three BLAS calls per invocation (calls 1-3 of the 9 per QD step).

#include <complex>
#include <vector>

#include "dcmesh/common/matrix.hpp"

namespace dcmesh::lfd {

/// Outputs of one nonlocal propagation step.
template <typename R>
struct nlp_result {
  /// G = dv * Psi0^H Psi(t): the KS-subspace overlap (reused by
  /// calc_energy's nonlocal-energy GEMMs).
  matrix<std::complex<R>> g;
  /// Per-orbital weight inside the initial subspace, diag(G^H G) — from
  /// BLAS call 3.  Drifts below 1 as population leaves the subspace.
  std::vector<double> subspace_weight;
  /// Max |column norm - 1| after the correction (renormalization applied).
  double norm_drift = 0.0;
};

/// Apply the nonlocal correction in place.  `c` is the complex propagation
/// coefficient (-i dt v_nl); `dv` the mesh volume element making G an
/// orthonormal-basis overlap.  Columns are renormalized afterwards (the
/// Taylor + first-order correction is not exactly unitary).
template <typename R>
[[nodiscard]] nlp_result<R> nlp_prop(const matrix<std::complex<R>>& psi0,
                                     matrix<std::complex<R>>& psi,
                                     std::complex<double> c, double dv);

}  // namespace dcmesh::lfd
