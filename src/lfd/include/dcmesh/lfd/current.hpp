#pragma once
// current.hpp — average current density javg (paper's third observable).
//
// In the velocity gauge the physical current density averaged over the
// supercell is j = (1/V) sum_j f_j <psi_j| p + A |psi_j>
//             = (1/V) [ sum_j f_j Int Im(psi_j* grad psi_j) dV + N_el A ].
// The paper notes javg is "not directly computed through BLAS, but is still
// influenced by computations within BLAS calls" — the same is true here:
// it is a stencil + mesh reduction over the BLAS-corrected wave functions.

#include <complex>
#include <span>

#include "dcmesh/common/matrix.hpp"
#include "dcmesh/mesh/grid.hpp"
#include "dcmesh/mesh/stencil.hpp"

namespace dcmesh::lfd {

/// Average current density (atomic units) along `axis` at field value `a`.
template <typename R>
[[nodiscard]] double current_density(const mesh::grid3d& grid,
                                     mesh::fd_order order, int axis,
                                     const matrix<std::complex<R>>& psi,
                                     std::span<const double> occ, double a,
                                     double dv);

}  // namespace dcmesh::lfd
