#include "dcmesh/lfd/current.hpp"

#include <vector>

namespace dcmesh::lfd {

template <typename R>
double current_density(const mesh::grid3d& grid, mesh::fd_order order,
                       int axis, const matrix<std::complex<R>>& psi,
                       std::span<const double> occ, double a, double dv) {
  using C = std::complex<R>;
  const std::size_t ngrid = psi.rows();
  const std::size_t norb = psi.cols();

  double paramagnetic = 0.0;
  double electrons = 0.0;
  std::vector<C> grad(ngrid);
  for (std::size_t j = 0; j < norb; ++j) {
    if (occ[j] == 0.0) continue;
    const C* col = psi.data() + j * ngrid;
    std::fill(grad.begin(), grad.end(), C(0));
    mesh::add_gradient<R>(grid, order, axis, {col, ngrid}, C(1),
                          {grad.data(), ngrid});
    double im_sum = 0.0;
    double norm2 = 0.0;
    for (std::size_t g = 0; g < ngrid; ++g) {
      // Im(conj(psi) * dpsi)
      im_sum += static_cast<double>(col[g].real()) * grad[g].imag() -
                static_cast<double>(col[g].imag()) * grad[g].real();
      norm2 += static_cast<double>(col[g].real()) * col[g].real() +
               static_cast<double>(col[g].imag()) * col[g].imag();
    }
    paramagnetic += occ[j] * im_sum * dv;
    electrons += occ[j] * norm2 * dv;
  }
  const double volume = grid.volume();
  return (paramagnetic + electrons * a) / volume;
}

template double current_density<float>(const mesh::grid3d&, mesh::fd_order,
                                       int, const matrix<std::complex<float>>&,
                                       std::span<const double>, double,
                                       double);
template double current_density<double>(const mesh::grid3d&, mesh::fd_order,
                                        int,
                                        const matrix<std::complex<double>>&,
                                        std::span<const double>, double,
                                        double);

}  // namespace dcmesh::lfd
