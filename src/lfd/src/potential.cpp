#include "dcmesh/lfd/potential.hpp"

#include <cmath>
#include <stdexcept>

#include "dcmesh/mesh/poisson.hpp"

namespace dcmesh::lfd {

std::vector<double> build_local_potential(const mesh::grid3d& grid,
                                          const qxmd::atom_system& atoms,
                                          double depth_scale) {
  std::vector<double> v(static_cast<std::size_t>(grid.size()), 0.0);
  // Gaussians decay fast; restricting each atom's contribution to points
  // within 4 widths keeps the build O(ngrid) per atom in practice, but at
  // the scaled sizes used for real runs a direct double loop is plenty.
  for (const qxmd::atom& a : atoms.atoms) {
    const auto& sp = qxmd::info(a.kind);
    const double depth = depth_scale * sp.valence;
    const double inv_2w2 = 1.0 / (2.0 * sp.well_width * sp.well_width);
    for (std::int64_t iz = 0; iz < grid.nz; ++iz) {
      for (std::int64_t iy = 0; iy < grid.ny; ++iy) {
        for (std::int64_t ix = 0; ix < grid.nx; ++ix) {
          const double d2 =
              grid.min_image_dist2(grid.position(ix, iy, iz), a.position);
          v[static_cast<std::size_t>(grid.index(ix, iy, iz))] -=
              depth * std::exp(-d2 * inv_2w2);
        }
      }
    }
  }
  return v;
}

std::vector<double> build_hartree_potential(const mesh::grid3d& grid,
                                            mesh::fd_order order,
                                            std::span<const double> rho,
                                            double strength) {
  const auto result = mesh::solve_poisson(grid, order, rho, 1e-8, 2000);
  if (!result.converged) {
    throw std::runtime_error(
        "build_hartree_potential: Poisson solve did not converge");
  }
  std::vector<double> v = result.phi;
  for (double& x : v) x *= strength;
  return v;
}

}  // namespace dcmesh::lfd
