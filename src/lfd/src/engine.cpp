#include "dcmesh/lfd/engine.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "dcmesh/blas/prepack.hpp"
#include "dcmesh/common/aligned.hpp"
#include "dcmesh/lfd/current.hpp"
#include "dcmesh/mesh/stencil.hpp"
#include "dcmesh/resil/health.hpp"
#include "dcmesh/sched/config.hpp"
#include "dcmesh/sched/pool.hpp"
#include "dcmesh/sched/task_graph.hpp"
#include "dcmesh/trace/tracer.hpp"

namespace dcmesh::lfd {

template <typename R>
lfd_engine<R>::lfd_engine(mesh::grid3d grid, lfd_options options,
                          const matrix<cdouble>& psi_init,
                          std::vector<double> occ, std::size_t nocc,
                          std::vector<double> v_loc)
    : grid_(grid),
      opt_(options),
      h_(grid, options.order, std::move(v_loc), options.pulse.polarization_axis),
      psi_(psi_init.rows(), psi_init.cols()),
      psi0_(psi_init.rows(), psi_init.cols()),
      scratch_term_(psi_init.rows(), psi_init.cols()),
      scratch_h_(psi_init.rows(), psi_init.cols()),
      g_(psi_init.cols(), psi_init.cols()),
      occ_(std::move(occ)),
      nocc_(nocc) {
  if (static_cast<std::int64_t>(psi_init.rows()) != grid.size()) {
    throw std::invalid_argument("lfd_engine: psi rows != grid size");
  }
  if (occ_.size() != psi_init.cols()) {
    throw std::invalid_argument("lfd_engine: occupation count != norb");
  }
  if (nocc_ == 0 || nocc_ >= psi_init.cols()) {
    throw std::invalid_argument("lfd_engine: need 0 < nocc < norb");
  }
  if (opt_.taylor_order < 1 || opt_.taylor_order > 8) {
    throw std::invalid_argument("lfd_engine: taylor_order out of range");
  }

  // Convert the FP64 ground state to this engine's precision.  Every
  // precision configuration starts from bit-identical FP64 data, so runs
  // differ only through the BLAS arithmetic (the paper's methodology).
  for (std::size_t i = 0; i < psi_.size(); ++i) {
    const cdouble v = psi_init.data()[i];
    psi_.data()[i] =
        std::complex<R>(static_cast<R>(v.real()), static_cast<R>(v.imag()));
    psi0_.data()[i] = psi_.data()[i];
  }

  // t = 0 baseline: the KS overlap of the unpropagated state is G ~ 1;
  // evaluate it with the same code path used later (c = 0: no correction).
  auto nlp = nlp_prop<R>(psi0_, psi_, std::complex<double>(0.0, 0.0), dv());
  g_ = std::move(nlp.g);
  h_.set_field(opt_.pulse.a(0.0));
  const energy_report e0 = calc_energy<R>(h_, psi_, g_, opt_.v_nl, occ_, dv());
  eband0_ = e0.eband();
}

template <typename R>
void lfd_engine<R>::propagate_local(double a_mid) {
  using C = std::complex<R>;
  h_.set_field(a_mid);

  // Stability guard: the Taylor expansion diverges if its operator norm
  // times dt is large.  The Strang variant only expands the stencil part,
  // so the potential depth does not enter its radius.
  const double bound =
      opt_.propagator == propagator_kind::strang
          ? mesh::kinetic_spectral_radius(grid_, opt_.order) +
                std::abs(a_mid) * 3.141592653589793 / grid_.spacing
          : h_.spectral_bound();
  if (bound * opt_.dt > 2.0) {
    throw std::runtime_error(
        "lfd_engine: dt too large for the propagator "
        "(||H||*dt > 2); refine dt or coarsen the mesh");
  }

  const auto taylor_with = [&](auto&& apply_op) {
    // psi <- sum_{n=0}^{N} (-i Op dt)^n / n! psi
    for (std::size_t i = 0; i < psi_.size(); ++i) {
      scratch_term_.data()[i] = psi_.data()[i];
    }
    for (int n = 1; n <= opt_.taylor_order; ++n) {
      apply_op(scratch_term_.view(), scratch_h_.view());
      const double scale = opt_.dt / static_cast<double>(n);
      const C coeff(0, static_cast<R>(-scale));  // (-i dt / n)
      for (std::size_t i = 0; i < psi_.size(); ++i) {
        scratch_term_.data()[i] = coeff * scratch_h_.data()[i];
        psi_.data()[i] += scratch_term_.data()[i];
      }
    }
  };

  if (opt_.propagator == propagator_kind::taylor) {
    taylor_with([this](const_matrix_view<C> in, matrix_view<C> out) {
      h_.apply(in, out);
    });
    return;
  }

  // Strang: exp(-i D dt/2) exp(-i T dt) exp(-i D dt/2) with D = V + A^2/2
  // applied as an exact elementwise phase (unitary by construction).
  const std::span<const R> v = h_.potential();
  const std::size_t ngrid = psi_.rows();
  aligned_buffer<C> phase(ngrid);
  const double half_a2 = 0.5 * a_mid * a_mid;
  for (std::size_t g = 0; g < ngrid; ++g) {
    const double angle =
        -0.5 * opt_.dt * (static_cast<double>(v[g]) + half_a2);
    phase[g] = C(static_cast<R>(std::cos(angle)),
                 static_cast<R>(std::sin(angle)));
  }
  const auto apply_phase = [&] {
    for (std::size_t j = 0; j < psi_.cols(); ++j) {
      C* col = psi_.data() + j * ngrid;
      for (std::size_t g = 0; g < ngrid; ++g) col[g] *= phase[g];
    }
  };
  apply_phase();
  taylor_with([this](const_matrix_view<C> in, matrix_view<C> out) {
    h_.apply_kinetic_field(in, out);
  });
  apply_phase();
}

template <typename R>
qd_record lfd_engine<R>::measure(double a_now) {
  h_.set_field(a_now);
  const energy_report e = calc_energy<R>(h_, psi_, g_, opt_.v_nl, occ_, dv());
  const remap_report r = remap_occ<R>(psi0_, psi_, occ_, nocc_, dv());
  const double javg = current_density<R>(
      grid_, opt_.order, h_.polarization_axis(), psi_, occ_, a_now, dv());

  qd_record rec;
  rec.t = t_;
  rec.ekin = e.ekin;
  rec.epot = e.epot + e.enl;
  rec.etot = e.eband();
  rec.eexc = e.eband() - eband0_;
  rec.nexc = r.nexc;
  rec.aext = std::abs(a_now);
  rec.javg = javg;
  return rec;
}

template <typename R>
qd_record lfd_engine<R>::qd_step() {
  if (sched::thread_pool* pool = sched::active_pool()) {
    return qd_step_pooled(*pool);
  }

  // Serial path — the bit-exactness oracle the pooled schedule is locked
  // against.  Every stage below is the same function the graph nodes run.
  const double a_mid = opt_.pulse.a(t_ + 0.5 * opt_.dt);
  propagate_local(a_mid);

  // Nonlocal correction (BLAS calls 1-3); c = -i dt v_nl.
  auto nlp = nlp_prop<R>(psi0_, psi_,
                         std::complex<double>(0.0, -opt_.dt * opt_.v_nl),
                         dv());
  g_ = std::move(nlp.g);
  last_norm_drift_ = nlp.norm_drift;

  t_ += opt_.dt;
  ++steps_;
  qd_record rec = measure(opt_.pulse.a(t_));
  check_step_invariants(rec);
  return rec;
}

template <typename R>
qd_record lfd_engine<R>::qd_step_pooled(sched::thread_pool& pool) {
  using C = std::complex<R>;
  trace::span step_span("lfd/qd_step", "sched");

  // Serial prologue: the local propagation's Taylor iterations are an
  // inherently sequential recurrence (its stencil applications already
  // run on the pool's worker team via team_parallel_for).
  const double a_mid = opt_.pulse.a(t_ + 0.5 * opt_.dt);
  propagate_local(a_mid);

  const double t_next = t_ + opt_.dt;
  const double a_now = opt_.pulse.a(t_next);
  // Legacy order sets the measurement field before calc_energy; no graph
  // node mutates h_, so setting it up front is the identical sequence.
  h_.set_field(a_now);

  const std::size_t ngrid = psi_.rows();
  const std::size_t norb = psi_.cols();
  const std::size_t nunocc = norb - nocc_;
  const std::complex<double> c(0.0, -opt_.dt * opt_.v_nl);

  // Stage outputs (locals so a failed step leaves members untouched
  // except psi_/g_, exactly like the serial path).
  matrix<C> t_mat(norb, norb);
  matrix<C> s(nocc_, nunocc);
  matrix<C> o(nocc_, nocc_);
  double drift = 0.0, ekin = 0.0, epot = 0.0, enl = 0.0;
  double nexc = 0.0, javg = 0.0;

  // One QD step as a dependency DAG.  Edges order every writer before
  // its readers: psi_ is written by project then renorm; g_ by overlap;
  // t_mat by kinetic; s by remap/overlap; o by moment1.  remap_occ's B
  // panel (psi0's unoccupied block — frozen all step) is prepacked
  // concurrently with nlp_prop's compute: pack of call 7 hidden behind
  // calls 1-6.
  sched::task_graph graph("lfd/qd_step");
  const auto prepack = graph.add("remap/prepack_b", [&] {
    blas::prepack_b<C>(blas::transpose::none,
                       static_cast<blas::blas_int>(ngrid),
                       static_cast<blas::blas_int>(nunocc),
                       psi0_.data() + nocc_ * ngrid,
                       static_cast<blas::blas_int>(ngrid));
  });
  const auto overlap = graph.add(
      "nlp/overlap", [&] { nlp_overlap<R>(psi0_, psi_, dv(), g_); });
  const auto project = graph.add(
      "nlp/project", [&] { nlp_project<R>(psi0_, g_, c, psi_); }, {overlap});
  graph.add("nlp/subspace", [&] { (void)nlp_subspace<R>(g_); }, {overlap});
  const auto renorm = graph.add(
      "nlp/renorm", [&] { drift = nlp_renormalize<R>(psi_, dv()); },
      {project});
  const auto kinetic = graph.add(
      "energy/kinetic",
      [&] { ekin = energy_kinetic<R>(h_, psi_, occ_, dv(), t_mat); },
      {renorm});
  graph.add("energy/local",
            [&] { epot = energy_local<R>(h_, psi_, occ_, dv()); }, {renorm});
  graph.add("energy/nonlocal",
            [&] { enl = energy_nonlocal<R>(g_, opt_.v_nl, occ_); },
            {overlap});
  graph.add("energy/band_rot",
            [&] { (void)energy_band_rotation<R>(t_mat, g_, occ_); },
            {kinetic});
  const auto roverlap = graph.add(
      "remap/overlap", [&] { remap_overlap<R>(psi0_, psi_, nocc_, dv(), s); },
      {renorm, prepack});
  const auto moment1 = graph.add(
      "remap/moment1", [&] { nexc = remap_moment1<R>(s, occ_, o); },
      {roverlap});
  graph.add("remap/moment2", [&] { (void)remap_moment2<R>(s, o, occ_); },
            {moment1});
  graph.add("remap/population", [&] { (void)remap_population<R>(s, occ_); },
            {roverlap});
  graph.add("current",
            [&] {
              javg = current_density<R>(grid_, opt_.order,
                                        h_.polarization_axis(), psi_, occ_,
                                        a_now, dv());
            },
            {renorm});

  try {
    graph.run(&pool);
  } catch (...) {
    // Unconsumed panels must not outlive the step: a stale pointer match
    // against a future operand would be silent corruption.
    blas::clear_prepacked();
    throw;
  }
  blas::clear_prepacked();

  last_norm_drift_ = drift;
  t_ += opt_.dt;
  ++steps_;

  qd_record rec;
  rec.t = t_;
  rec.ekin = ekin;
  rec.epot = epot + enl;
  rec.etot = ekin + epot + enl;
  rec.eexc = rec.etot - eband0_;
  rec.nexc = nexc;
  rec.aext = std::abs(a_now);
  rec.javg = javg;
  check_step_invariants(rec);
  return rec;
}

template <typename R>
void lfd_engine<R>::check_step_invariants(const qd_record& rec) {
  // One getenv when the sentinel is off; the first violation wins (the
  // driver rolls the whole series back, so later ones add nothing).
  if (resil::active_health_level() == resil::health_level::off) return;
  if (!health_violation_.empty()) return;
  const resil::invariant_limits limits = resil::active_limits();
  char detail[160];
  detail[0] = '\0';
  if (!std::isfinite(last_norm_drift_) ||
      std::abs(last_norm_drift_) > limits.norm_drift_max) {
    std::snprintf(detail, sizeof(detail),
                  "norm_drift=%.3e max=%.3e t=%.4f", last_norm_drift_,
                  limits.norm_drift_max, t_);
  } else {
    const double values[] = {rec.ekin, rec.epot, rec.etot, rec.nexc,
                             rec.javg};
    static constexpr const char* kNames[] = {"ekin", "epot", "etot",
                                             "nexc", "javg"};
    for (std::size_t i = 0; i < std::size(values); ++i) {
      if (!std::isfinite(values[i]) ||
          std::abs(values[i]) > limits.value_max) {
        std::snprintf(detail, sizeof(detail), "%s=%.6g max=%.3e t=%.4f",
                      kNames[i], values[i], limits.value_max, t_);
        break;
      }
    }
  }
  if (!detail[0]) return;
  health_violation_ = detail;
  resil::record_health_event("step_invariant", "lfd/engine", detail);
}

template <typename R>
qxmd::scf_report lfd_engine<R>::refresh_scf() {
  return qxmd::scf_refresh<R>(psi_, dv());
}

template <typename R>
void lfd_engine<R>::apply_delta_kick(double kappa) {
  using C = std::complex<R>;
  const int axis = h_.polarization_axis();
  const std::int64_t n_axis = axis == 0 ? grid_.nx
                              : axis == 1 ? grid_.ny
                                          : grid_.nz;
  // Phase per axis index: exp(i kappa * c), c the coordinate.
  std::vector<C> phase(static_cast<std::size_t>(n_axis));
  for (std::int64_t i = 0; i < n_axis; ++i) {
    const double angle = kappa * static_cast<double>(i) * grid_.spacing;
    phase[static_cast<std::size_t>(i)] = C(
        static_cast<R>(std::cos(angle)), static_cast<R>(std::sin(angle)));
  }
  for (std::size_t j = 0; j < psi_.cols(); ++j) {
    C* col = psi_.data() + j * psi_.rows();
    for (std::int64_t iz = 0; iz < grid_.nz; ++iz) {
      for (std::int64_t iy = 0; iy < grid_.ny; ++iy) {
        for (std::int64_t ix = 0; ix < grid_.nx; ++ix) {
          const std::int64_t idx_axis = axis == 0 ? ix
                                        : axis == 1 ? iy
                                                    : iz;
          col[grid_.index(ix, iy, iz)] *=
              phase[static_cast<std::size_t>(idx_axis)];
        }
      }
    }
  }
}

template <typename R>
void lfd_engine<R>::set_potential(std::vector<double> v_loc) {
  h_.set_potential(std::move(v_loc));
}

namespace {

// Binary checkpoint layout: magic, scalar header, then the two raw
// wave-function blocks.  Sizes are validated on load.
constexpr std::uint64_t kStateMagic = 0x44434d4553485053ull;  // "DCMESHPS"

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::istream& is, T& value) {
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("lfd_engine: truncated state stream");
}

}  // namespace

template <typename R>
void lfd_engine<R>::save_state(std::ostream& os) const {
  write_pod(os, kStateMagic);
  write_pod(os, static_cast<std::uint64_t>(sizeof(R)));
  write_pod(os, static_cast<std::uint64_t>(psi_.rows()));
  write_pod(os, static_cast<std::uint64_t>(psi_.cols()));
  write_pod(os, t_);
  write_pod(os, static_cast<std::uint64_t>(steps_));
  write_pod(os, eband0_);
  write_pod(os, last_norm_drift_);
  os.write(reinterpret_cast<const char*>(psi_.data()),
           static_cast<std::streamsize>(psi_.size() *
                                        sizeof(std::complex<R>)));
  os.write(reinterpret_cast<const char*>(psi0_.data()),
           static_cast<std::streamsize>(psi0_.size() *
                                        sizeof(std::complex<R>)));
}

template <typename R>
void lfd_engine<R>::load_state(std::istream& is) {
  std::uint64_t magic = 0, scalar = 0, rows = 0, cols = 0, steps = 0;
  read_pod(is, magic);
  if (magic != kStateMagic) {
    throw std::runtime_error("lfd_engine: bad state magic");
  }
  read_pod(is, scalar);
  if (scalar != sizeof(R)) {
    throw std::runtime_error("lfd_engine: state precision mismatch");
  }
  read_pod(is, rows);
  read_pod(is, cols);
  if (rows != psi_.rows() || cols != psi_.cols()) {
    throw std::runtime_error("lfd_engine: state shape mismatch");
  }
  read_pod(is, t_);
  read_pod(is, steps);
  steps_ = static_cast<std::size_t>(steps);
  read_pod(is, eband0_);
  read_pod(is, last_norm_drift_);
  is.read(reinterpret_cast<char*>(psi_.data()),
          static_cast<std::streamsize>(psi_.size() *
                                       sizeof(std::complex<R>)));
  is.read(reinterpret_cast<char*>(psi0_.data()),
          static_cast<std::streamsize>(psi0_.size() *
                                       sizeof(std::complex<R>)));
  if (!is) throw std::runtime_error("lfd_engine: truncated state stream");
  // A restore (rollback included) starts from a healthy state; a stale
  // violation must not re-trip the driver after replay.
  health_violation_.clear();
}

template class lfd_engine<float>;
template class lfd_engine<double>;

}  // namespace dcmesh::lfd
