#include "dcmesh/lfd/forces.hpp"

#include <cmath>
#include <stdexcept>

namespace dcmesh::lfd {
namespace {

/// Minimum-image displacement r - R in the periodic box.
std::array<double, 3> min_image_disp(const std::array<double, 3>& r,
                                     const std::array<double, 3>& center,
                                     const std::array<double, 3>& box) {
  std::array<double, 3> d{};
  for (int axis = 0; axis < 3; ++axis) {
    const std::size_t i = static_cast<std::size_t>(axis);
    double delta = r[i] - center[i];
    delta -= box[i] * std::nearbyint(delta / box[i]);
    d[i] = delta;
  }
  return d;
}

}  // namespace

template <typename R>
std::vector<double> electron_density(const matrix<std::complex<R>>& psi,
                                     std::span<const double> occ) {
  if (occ.size() != psi.cols()) {
    throw std::invalid_argument("electron_density: occ size != norb");
  }
  std::vector<double> rho(psi.rows(), 0.0);
  for (std::size_t j = 0; j < psi.cols(); ++j) {
    if (occ[j] == 0.0) continue;
    const std::complex<R>* col = psi.data() + j * psi.rows();
    for (std::size_t g = 0; g < psi.rows(); ++g) {
      rho[g] += occ[j] *
                (static_cast<double>(col[g].real()) * col[g].real() +
                 static_cast<double>(col[g].imag()) * col[g].imag());
    }
  }
  return rho;
}

double integrate_density(const mesh::grid3d& grid,
                         std::span<const double> rho) {
  double sum = 0.0;
  for (double v : rho) sum += v;
  return sum * grid.dv();
}

std::vector<std::array<double, 3>> ehrenfest_forces(
    const mesh::grid3d& grid, const qxmd::atom_system& atoms,
    std::span<const double> rho, double depth_scale) {
  if (static_cast<std::int64_t>(rho.size()) != grid.size()) {
    throw std::invalid_argument("ehrenfest_forces: rho size != grid size");
  }
  std::vector<std::array<double, 3>> forces(atoms.size(),
                                            {0.0, 0.0, 0.0});
  const double dv = grid.dv();

#if defined(DCMESH_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (std::size_t a = 0; a < atoms.size(); ++a) {
    const qxmd::atom& atom = atoms.atoms[a];
    const auto& sp = qxmd::info(atom.kind);
    const double depth = depth_scale * sp.valence;
    const double w2 = sp.well_width * sp.well_width;
    const double inv_2w2 = 1.0 / (2.0 * w2);
    std::array<double, 3> f{0.0, 0.0, 0.0};
    for (std::int64_t iz = 0; iz < grid.nz; ++iz) {
      for (std::int64_t iy = 0; iy < grid.ny; ++iy) {
        for (std::int64_t ix = 0; ix < grid.nx; ++ix) {
          const auto d = min_image_disp(grid.position(ix, iy, iz),
                                        atom.position, atoms.box);
          const double d2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
          const double weight =
              rho[static_cast<std::size_t>(grid.index(ix, iy, iz))] *
              std::exp(-d2 * inv_2w2);
          // dV/dR_alpha = -(D/w^2) d_alpha exp(...), so
          // F_alpha = -Int rho dV/dR_alpha dV = +(D/w^2) Int rho d_alpha
          // exp(...) dV: density off-centre along +d pulls the ion +d.
          for (int axis = 0; axis < 3; ++axis) {
            f[static_cast<std::size_t>(axis)] +=
                (depth / w2) * weight * d[static_cast<std::size_t>(axis)];
          }
        }
      }
    }
    for (int axis = 0; axis < 3; ++axis) {
      forces[a][static_cast<std::size_t>(axis)] =
          f[static_cast<std::size_t>(axis)] * dv;
    }
  }
  return forces;
}

double electron_ion_energy(const mesh::grid3d& grid,
                           const qxmd::atom_system& atoms,
                           std::span<const double> rho, double depth_scale) {
  if (static_cast<std::int64_t>(rho.size()) != grid.size()) {
    throw std::invalid_argument("electron_ion_energy: rho size mismatch");
  }
  double energy = 0.0;
  for (const qxmd::atom& atom : atoms.atoms) {
    const auto& sp = qxmd::info(atom.kind);
    const double depth = depth_scale * sp.valence;
    const double inv_2w2 = 1.0 / (2.0 * sp.well_width * sp.well_width);
    for (std::int64_t iz = 0; iz < grid.nz; ++iz) {
      for (std::int64_t iy = 0; iy < grid.ny; ++iy) {
        for (std::int64_t ix = 0; ix < grid.nx; ++ix) {
          const auto d = min_image_disp(grid.position(ix, iy, iz),
                                        atom.position, atoms.box);
          const double d2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
          energy -= depth *
                    rho[static_cast<std::size_t>(grid.index(ix, iy, iz))] *
                    std::exp(-d2 * inv_2w2);
        }
      }
    }
  }
  return energy * grid.dv();
}

template std::vector<double> electron_density<float>(
    const matrix<std::complex<float>>&, std::span<const double>);
template std::vector<double> electron_density<double>(
    const matrix<std::complex<double>>&, std::span<const double>);

}  // namespace dcmesh::lfd
