#include "dcmesh/lfd/remap_occ.hpp"

#include <stdexcept>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/trace/tracer.hpp"

namespace dcmesh::lfd {

template <typename R>
void remap_overlap(const matrix<std::complex<R>>& psi0,
                   const matrix<std::complex<R>>& psi, std::size_t nocc,
                   double dv, matrix<std::complex<R>>& s) {
  using C = std::complex<R>;
  const std::size_t ngrid = psi.rows();
  const std::size_t norb = psi.cols();
  if (nocc == 0 || nocc >= norb) {
    throw std::invalid_argument("remap_occ: need 0 < nocc < norb");
  }
  const std::size_t nunocc = norb - nocc;

  // Column-range views: occupied propagated orbitals, unoccupied reference.
  const const_matrix_view<C> psi_occ{psi.data(), ngrid, nocc, ngrid};
  const const_matrix_view<C> psi0_unocc{psi0.data() + nocc * ngrid, ngrid,
                                        nunocc, ngrid};

  // BLAS call 7 (Table VII's GEMM): S = dv * Psi_occ^H(t) * Psi0_unocc
  // (m = nocc, n = norb - nocc, k = ngrid).
  blas::gemm<C>(blas::transpose::conj_trans, blas::transpose::none,
                C(static_cast<R>(dv)), psi_occ, psi0_unocc, C(0), s.view(),
                "lfd/remap_occ/overlap");
}

template <typename R>
double remap_moment1(const matrix<std::complex<R>>& s,
                     std::span<const double> occ,
                     matrix<std::complex<R>>& o) {
  using C = std::complex<R>;
  const std::size_t nocc = s.rows();
  // BLAS call 8: O = S * S^H (nocc x nocc, k = norb - nocc);
  // nexc = sum_i f_i O_ii.
  blas::gemm<C>(blas::transpose::none, blas::transpose::conj_trans, C(1),
                s.view(), s.view(), C(0), o.view(),
                "lfd/remap_occ/moment1");
  double nexc = 0.0;
  for (std::size_t i = 0; i < nocc; ++i) {
    nexc += occ[i] * static_cast<double>(o(i, i).real());
  }
  return nexc;
}

template <typename R>
double remap_moment2(const matrix<std::complex<R>>& s,
                     const matrix<std::complex<R>>& o,
                     std::span<const double> occ) {
  using C = std::complex<R>;
  const std::size_t nocc = s.rows();
  const std::size_t nunocc = s.cols();
  // BLAS call 9: Rmat = S^H * O (nunocc x nocc, k = nocc); the
  // second-order moment sum_i f_i (O^2)_ii = sum_{u,i} f_i Re[S_iu Rmat_ui].
  matrix<C> rmat(nunocc, nocc);
  blas::gemm<C>(blas::transpose::conj_trans, blas::transpose::none, C(1),
                s.view(), o.view(), C(0), rmat.view(),
                "lfd/remap_occ/moment2");
  double second = 0.0;
  for (std::size_t i = 0; i < nocc; ++i) {
    double acc = 0.0;
    for (std::size_t u = 0; u < nunocc; ++u) {
      const C siu = s(i, u);
      const C rui = rmat(u, i);
      // Re[S_iu * R_ui] with R = S^H O: recovers (O^2)_ii when summed.
      acc += static_cast<double>(siu.real()) * rui.real() -
             static_cast<double>(siu.imag()) * rui.imag();
    }
    second += occ[i] * acc;
  }
  return second;
}

template <typename R>
std::vector<double> remap_population(const matrix<std::complex<R>>& s,
                                     std::span<const double> occ) {
  using C = std::complex<R>;
  const std::size_t nocc = s.rows();
  const std::size_t nunocc = s.cols();
  // Per-unoccupied-orbital population (level-1 work on S).
  std::vector<double> population(nunocc, 0.0);
  for (std::size_t u = 0; u < nunocc; ++u) {
    double pop = 0.0;
    for (std::size_t i = 0; i < nocc; ++i) {
      const C siu = s(i, u);
      pop += occ[i] * (static_cast<double>(siu.real()) * siu.real() +
                       static_cast<double>(siu.imag()) * siu.imag());
    }
    population[u] = pop;
  }
  return population;
}

template <typename R>
remap_report remap_occ(const matrix<std::complex<R>>& psi0,
                       const matrix<std::complex<R>>& psi,
                       std::span<const double> occ, std::size_t nocc,
                       double dv) {
  trace::span span("lfd/remap_occ", "lfd");
  using C = std::complex<R>;
  const std::size_t norb = psi.cols();
  if (nocc == 0 || nocc >= norb) {
    throw std::invalid_argument("remap_occ: need 0 < nocc < norb");
  }
  const std::size_t nunocc = norb - nocc;

  matrix<C> s(nocc, nunocc);
  remap_overlap<R>(psi0, psi, nocc, dv, s);

  remap_report report;
  matrix<C> o(nocc, nocc);
  report.nexc = remap_moment1<R>(s, occ, o);
  report.nexc_second_order = remap_moment2<R>(s, o, occ);
  report.unocc_population = remap_population<R>(s, occ);
  return report;
}

template void remap_overlap<float>(const matrix<std::complex<float>>&,
                                   const matrix<std::complex<float>>&,
                                   std::size_t, double,
                                   matrix<std::complex<float>>&);
template void remap_overlap<double>(const matrix<std::complex<double>>&,
                                    const matrix<std::complex<double>>&,
                                    std::size_t, double,
                                    matrix<std::complex<double>>&);
template double remap_moment1<float>(const matrix<std::complex<float>>&,
                                     std::span<const double>,
                                     matrix<std::complex<float>>&);
template double remap_moment1<double>(const matrix<std::complex<double>>&,
                                      std::span<const double>,
                                      matrix<std::complex<double>>&);
template double remap_moment2<float>(const matrix<std::complex<float>>&,
                                     const matrix<std::complex<float>>&,
                                     std::span<const double>);
template double remap_moment2<double>(const matrix<std::complex<double>>&,
                                      const matrix<std::complex<double>>&,
                                      std::span<const double>);
template std::vector<double> remap_population<float>(
    const matrix<std::complex<float>>&, std::span<const double>);
template std::vector<double> remap_population<double>(
    const matrix<std::complex<double>>&, std::span<const double>);
template remap_report remap_occ<float>(const matrix<std::complex<float>>&,
                                       const matrix<std::complex<float>>&,
                                       std::span<const double>, std::size_t,
                                       double);
template remap_report remap_occ<double>(const matrix<std::complex<double>>&,
                                        const matrix<std::complex<double>>&,
                                        std::span<const double>, std::size_t,
                                        double);

}  // namespace dcmesh::lfd
