#include "dcmesh/lfd/calc_energy.hpp"

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/trace/tracer.hpp"

namespace dcmesh::lfd {

template <typename R>
energy_report calc_energy(const hamiltonian<R>& h,
                          const matrix<std::complex<R>>& psi,
                          const matrix<std::complex<R>>& g, double lambda_nl,
                          std::span<const double> occ, double dv) {
  trace::span span("lfd/calc_energy", "lfd");
  using C = std::complex<R>;
  const std::size_t ngrid = psi.rows();
  const std::size_t norb = psi.cols();

  energy_report report;

  // K Psi via the stencil, then BLAS call 4:
  // T = dv * Psi^H (K Psi)   (norb x norb, k = ngrid)
  matrix<C> kpsi(ngrid, norb);
  h.apply_kinetic(psi.view(), kpsi.view());
  matrix<C> t(norb, norb);
  blas::gemm<C>(blas::transpose::conj_trans, blas::transpose::none,
                C(static_cast<R>(dv)), psi.view(), kpsi.view(), C(0),
                t.view(), "lfd/calc_energy/kinetic");
  for (std::size_t j = 0; j < norb; ++j) {
    report.ekin += occ[j] * static_cast<double>(t(j, j).real());
  }

  // Local potential energy: mesh reduction (not BLASified in DCMESH).
  const std::span<const R> v = h.potential();
  for (std::size_t j = 0; j < norb; ++j) {
    if (occ[j] == 0.0) continue;
    const C* col = psi.data() + j * ngrid;
    double e = 0.0;
    for (std::size_t gidx = 0; gidx < ngrid; ++gidx) {
      const double density =
          static_cast<double>(col[gidx].real()) * col[gidx].real() +
          static_cast<double>(col[gidx].imag()) * col[gidx].imag();
      e += static_cast<double>(v[gidx]) * density;
    }
    report.epot += occ[j] * e * dv;
  }

  // BLAS call 5: M = G^H * W with W = Lambda G (projector-strength row
  // scaling); E_nl = lambda_nl * sum_j f_j Re M_jj.  W's row scaling is a
  // level-1 operation; the contraction is the level-3 call.
  matrix<C> w(norb, norb);
  for (std::size_t j = 0; j < norb; ++j) {
    for (std::size_t i = 0; i < norb; ++i) {
      // Deeper projectors for lower orbitals: lambda_i = 1/(1+i).
      const R scale = static_cast<R>(1.0 / (1.0 + static_cast<double>(i)));
      w(i, j) = scale * g(i, j);
    }
  }
  matrix<C> m(norb, norb);
  blas::gemm<C>(blas::transpose::conj_trans, blas::transpose::none, C(1),
                g.view(), w.view(), C(0), m.view(),
                "lfd/calc_energy/nonlocal");
  for (std::size_t j = 0; j < norb; ++j) {
    report.enl += lambda_nl * occ[j] * static_cast<double>(m(j, j).real());
  }

  // BLAS call 6: U = T * G; rotated band energy sum_j f_j Re[(G^H U)_jj]
  // evaluated as an element-wise contraction of G and U.
  matrix<C> u(norb, norb);
  blas::gemm<C>(blas::transpose::none, blas::transpose::none, C(1), t.view(),
                g.view(), C(0), u.view(), "lfd/calc_energy/band_rot");
  for (std::size_t j = 0; j < norb; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < norb; ++i) {
      const C gij = g(i, j);
      const C uij = u(i, j);
      acc += static_cast<double>(gij.real()) * uij.real() +
             static_cast<double>(gij.imag()) * uij.imag();
    }
    report.eband_rot += occ[j] * acc;
  }
  return report;
}

template energy_report calc_energy<float>(const hamiltonian<float>&,
                                          const matrix<std::complex<float>>&,
                                          const matrix<std::complex<float>>&,
                                          double, std::span<const double>,
                                          double);
template energy_report calc_energy<double>(
    const hamiltonian<double>&, const matrix<std::complex<double>>&,
    const matrix<std::complex<double>>&, double, std::span<const double>,
    double);

}  // namespace dcmesh::lfd
