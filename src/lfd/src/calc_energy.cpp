#include "dcmesh/lfd/calc_energy.hpp"

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/trace/tracer.hpp"

namespace dcmesh::lfd {

template <typename R>
double energy_kinetic(const hamiltonian<R>& h,
                      const matrix<std::complex<R>>& psi,
                      std::span<const double> occ, double dv,
                      matrix<std::complex<R>>& t) {
  using C = std::complex<R>;
  const std::size_t ngrid = psi.rows();
  const std::size_t norb = psi.cols();
  // K Psi via the stencil, then BLAS call 4:
  // T = dv * Psi^H (K Psi)   (norb x norb, k = ngrid)
  matrix<C> kpsi(ngrid, norb);
  h.apply_kinetic(psi.view(), kpsi.view());
  blas::gemm<C>(blas::transpose::conj_trans, blas::transpose::none,
                C(static_cast<R>(dv)), psi.view(), kpsi.view(), C(0),
                t.view(), "lfd/calc_energy/kinetic");
  double ekin = 0.0;
  for (std::size_t j = 0; j < norb; ++j) {
    ekin += occ[j] * static_cast<double>(t(j, j).real());
  }
  return ekin;
}

template <typename R>
double energy_local(const hamiltonian<R>& h,
                    const matrix<std::complex<R>>& psi,
                    std::span<const double> occ, double dv) {
  using C = std::complex<R>;
  const std::size_t ngrid = psi.rows();
  const std::size_t norb = psi.cols();
  // Local potential energy: mesh reduction (not BLASified in DCMESH).
  const std::span<const R> v = h.potential();
  double epot = 0.0;
  for (std::size_t j = 0; j < norb; ++j) {
    if (occ[j] == 0.0) continue;
    const C* col = psi.data() + j * ngrid;
    double e = 0.0;
    for (std::size_t gidx = 0; gidx < ngrid; ++gidx) {
      const double density =
          static_cast<double>(col[gidx].real()) * col[gidx].real() +
          static_cast<double>(col[gidx].imag()) * col[gidx].imag();
      e += static_cast<double>(v[gidx]) * density;
    }
    epot += occ[j] * e * dv;
  }
  return epot;
}

template <typename R>
double energy_nonlocal(const matrix<std::complex<R>>& g, double lambda_nl,
                       std::span<const double> occ) {
  using C = std::complex<R>;
  const std::size_t norb = g.cols();
  // BLAS call 5: M = G^H * W with W = Lambda G (projector-strength row
  // scaling); E_nl = lambda_nl * sum_j f_j Re M_jj.  W's row scaling is a
  // level-1 operation; the contraction is the level-3 call.
  matrix<C> w(norb, norb);
  for (std::size_t j = 0; j < norb; ++j) {
    for (std::size_t i = 0; i < norb; ++i) {
      // Deeper projectors for lower orbitals: lambda_i = 1/(1+i).
      const R scale = static_cast<R>(1.0 / (1.0 + static_cast<double>(i)));
      w(i, j) = scale * g(i, j);
    }
  }
  matrix<C> m(norb, norb);
  blas::gemm<C>(blas::transpose::conj_trans, blas::transpose::none, C(1),
                g.view(), w.view(), C(0), m.view(),
                "lfd/calc_energy/nonlocal");
  double enl = 0.0;
  for (std::size_t j = 0; j < norb; ++j) {
    enl += lambda_nl * occ[j] * static_cast<double>(m(j, j).real());
  }
  return enl;
}

template <typename R>
double energy_band_rotation(const matrix<std::complex<R>>& t,
                            const matrix<std::complex<R>>& g,
                            std::span<const double> occ) {
  using C = std::complex<R>;
  const std::size_t norb = g.cols();
  // BLAS call 6: U = T * G; rotated band energy sum_j f_j Re[(G^H U)_jj]
  // evaluated as an element-wise contraction of G and U.
  matrix<C> u(norb, norb);
  blas::gemm<C>(blas::transpose::none, blas::transpose::none, C(1), t.view(),
                g.view(), C(0), u.view(), "lfd/calc_energy/band_rot");
  double eband_rot = 0.0;
  for (std::size_t j = 0; j < norb; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < norb; ++i) {
      const C gij = g(i, j);
      const C uij = u(i, j);
      acc += static_cast<double>(gij.real()) * uij.real() +
             static_cast<double>(gij.imag()) * uij.imag();
    }
    eband_rot += occ[j] * acc;
  }
  return eband_rot;
}

template <typename R>
energy_report calc_energy(const hamiltonian<R>& h,
                          const matrix<std::complex<R>>& psi,
                          const matrix<std::complex<R>>& g, double lambda_nl,
                          std::span<const double> occ, double dv) {
  trace::span span("lfd/calc_energy", "lfd");
  using C = std::complex<R>;
  const std::size_t norb = psi.cols();

  energy_report report;
  matrix<C> t(norb, norb);
  report.ekin = energy_kinetic<R>(h, psi, occ, dv, t);
  report.epot = energy_local<R>(h, psi, occ, dv);
  report.enl = energy_nonlocal<R>(g, lambda_nl, occ);
  report.eband_rot = energy_band_rotation<R>(t, g, occ);
  return report;
}

template double energy_kinetic<float>(const hamiltonian<float>&,
                                      const matrix<std::complex<float>>&,
                                      std::span<const double>, double,
                                      matrix<std::complex<float>>&);
template double energy_kinetic<double>(const hamiltonian<double>&,
                                       const matrix<std::complex<double>>&,
                                       std::span<const double>, double,
                                       matrix<std::complex<double>>&);
template double energy_local<float>(const hamiltonian<float>&,
                                    const matrix<std::complex<float>>&,
                                    std::span<const double>, double);
template double energy_local<double>(const hamiltonian<double>&,
                                     const matrix<std::complex<double>>&,
                                     std::span<const double>, double);
template double energy_nonlocal<float>(const matrix<std::complex<float>>&,
                                       double, std::span<const double>);
template double energy_nonlocal<double>(const matrix<std::complex<double>>&,
                                        double, std::span<const double>);
template double energy_band_rotation<float>(
    const matrix<std::complex<float>>&, const matrix<std::complex<float>>&,
    std::span<const double>);
template double energy_band_rotation<double>(
    const matrix<std::complex<double>>&, const matrix<std::complex<double>>&,
    std::span<const double>);
template energy_report calc_energy<float>(const hamiltonian<float>&,
                                          const matrix<std::complex<float>>&,
                                          const matrix<std::complex<float>>&,
                                          double, std::span<const double>,
                                          double);
template energy_report calc_energy<double>(
    const hamiltonian<double>&, const matrix<std::complex<double>>&,
    const matrix<std::complex<double>>&, double, std::span<const double>,
    double);

}  // namespace dcmesh::lfd
