#include "dcmesh/lfd/nlp_prop.hpp"

#include <cmath>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/level1.hpp"
#include "dcmesh/trace/tracer.hpp"

namespace dcmesh::lfd {

template <typename R>
void nlp_overlap(const matrix<std::complex<R>>& psi0,
                 const matrix<std::complex<R>>& psi, double dv,
                 matrix<std::complex<R>>& g) {
  using C = std::complex<R>;
  // BLAS call 1: G = dv * Psi0^H * Psi(t)   (norb x norb, k = ngrid)
  blas::gemm<C>(blas::transpose::conj_trans, blas::transpose::none,
                C(static_cast<R>(dv)), psi0.view(), psi.view(), C(0),
                g.view(), "lfd/nlp_prop/overlap");
}

template <typename R>
void nlp_project(const matrix<std::complex<R>>& psi0,
                 const matrix<std::complex<R>>& g, std::complex<double> c,
                 matrix<std::complex<R>>& psi) {
  using C = std::complex<R>;
  // BLAS call 2: Psi += c * Psi0 * G        (ngrid x norb, k = norb)
  const C cc(static_cast<R>(c.real()), static_cast<R>(c.imag()));
  blas::gemm<C>(blas::transpose::none, blas::transpose::none, cc,
                psi0.view(), g.view(), C(1), psi.view(),
                "lfd/nlp_prop/project");
}

template <typename R>
std::vector<double> nlp_subspace(const matrix<std::complex<R>>& g) {
  using C = std::complex<R>;
  const std::size_t norb = g.cols();
  // BLAS call 3: O = G^H * G                (norb x norb, k = norb)
  matrix<C> o(norb, norb);
  blas::gemm<C>(blas::transpose::conj_trans, blas::transpose::none, C(1),
                g.view(), g.view(), C(0), o.view(),
                "lfd/nlp_prop/subspace");
  std::vector<double> weight(norb);
  for (std::size_t j = 0; j < norb; ++j) {
    weight[j] = static_cast<double>(o(j, j).real());
  }
  return weight;
}

template <typename R>
double nlp_renormalize(matrix<std::complex<R>>& psi, double dv) {
  using C = std::complex<R>;
  const std::size_t ngrid = psi.rows();
  const std::size_t norb = psi.cols();
  // Renormalize columns via level-1 BLAS (nrm2 accumulates in double, so
  // the norm itself is mode- and precision-robust).
  const double sqrt_dv = std::sqrt(dv);
  double worst = 0.0;
  for (std::size_t j = 0; j < norb; ++j) {
    C* col = psi.data() + j * ngrid;
    const double norm =
        blas::nrm2<C>(static_cast<blas::blas_int>(ngrid), col, 1) * sqrt_dv;
    worst = std::max(worst, std::abs(norm - 1.0));
    if (norm > 0.0) {
      blas::scal_real<R>(static_cast<blas::blas_int>(ngrid),
                         static_cast<R>(1.0 / norm), col, 1);
    }
  }
  return worst;
}

template <typename R>
nlp_result<R> nlp_prop(const matrix<std::complex<R>>& psi0,
                       matrix<std::complex<R>>& psi, std::complex<double> c,
                       double dv) {
  trace::span span("lfd/nlp_prop", "lfd");
  using C = std::complex<R>;
  const std::size_t norb = psi.cols();

  nlp_result<R> result;
  result.g = matrix<C>(norb, norb);
  nlp_overlap<R>(psi0, psi, dv, result.g);
  nlp_project<R>(psi0, result.g, c, psi);
  result.subspace_weight = nlp_subspace<R>(result.g);
  result.norm_drift = nlp_renormalize<R>(psi, dv);
  return result;
}

template void nlp_overlap<float>(const matrix<std::complex<float>>&,
                                 const matrix<std::complex<float>>&, double,
                                 matrix<std::complex<float>>&);
template void nlp_overlap<double>(const matrix<std::complex<double>>&,
                                  const matrix<std::complex<double>>&, double,
                                  matrix<std::complex<double>>&);
template void nlp_project<float>(const matrix<std::complex<float>>&,
                                 const matrix<std::complex<float>>&,
                                 std::complex<double>,
                                 matrix<std::complex<float>>&);
template void nlp_project<double>(const matrix<std::complex<double>>&,
                                  const matrix<std::complex<double>>&,
                                  std::complex<double>,
                                  matrix<std::complex<double>>&);
template std::vector<double> nlp_subspace<float>(
    const matrix<std::complex<float>>&);
template std::vector<double> nlp_subspace<double>(
    const matrix<std::complex<double>>&);
template double nlp_renormalize<float>(matrix<std::complex<float>>&, double);
template double nlp_renormalize<double>(matrix<std::complex<double>>&,
                                        double);
template nlp_result<float> nlp_prop<float>(
    const matrix<std::complex<float>>&, matrix<std::complex<float>>&,
    std::complex<double>, double);
template nlp_result<double> nlp_prop<double>(
    const matrix<std::complex<double>>&, matrix<std::complex<double>>&,
    std::complex<double>, double);

}  // namespace dcmesh::lfd
