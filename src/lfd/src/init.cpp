#include "dcmesh/lfd/init.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "dcmesh/common/rng.hpp"
#include "dcmesh/lfd/hamiltonian.hpp"
#include "dcmesh/lfd/potential.hpp"
#include "dcmesh/qxmd/scf.hpp"

namespace dcmesh::lfd {
namespace {

/// Reciprocal-lattice vectors sorted by |k|^2 (then lexicographically for
/// determinism) — one per starting orbital.
std::vector<std::array<int, 3>> lowest_k_vectors(std::size_t count) {
  std::vector<std::array<int, 3>> ks;
  int shell = 0;
  while (ks.size() < count) {
    ++shell;
    ks.clear();
    for (int kz = -shell; kz <= shell; ++kz) {
      for (int ky = -shell; ky <= shell; ++ky) {
        for (int kx = -shell; kx <= shell; ++kx) {
          ks.push_back({kx, ky, kz});
        }
      }
    }
  }
  std::sort(ks.begin(), ks.end(), [](const auto& a, const auto& b) {
    const int na = a[0] * a[0] + a[1] * a[1] + a[2] * a[2];
    const int nb = b[0] * b[0] + b[1] * b[1] + b[2] * b[2];
    if (na != nb) return na < nb;
    return a < b;
  });
  ks.resize(count);
  return ks;
}

}  // namespace

init_result initialize_ground_state(const mesh::grid3d& grid,
                                    const qxmd::atom_system& atoms,
                                    std::size_t norb, std::size_t nocc,
                                    mesh::fd_order order,
                                    unsigned long long seed,
                                    double potential_depth_scale) {
  if (norb == 0 || nocc == 0 || nocc >= norb) {
    throw std::invalid_argument(
        "initialize_ground_state: need 0 < nocc < norb");
  }
  const std::size_t ngrid = static_cast<std::size_t>(grid.size());
  if (ngrid == 0) {
    throw std::invalid_argument("initialize_ground_state: empty grid");
  }

  init_result result;
  result.psi = matrix<cdouble>(ngrid, norb);

  // Plane-wave seeds e^{i k.r} + deterministic noise.
  const auto ks = lowest_k_vectors(norb);
  xoshiro256 rng(seed);
  const double two_pi = 2.0 * std::numbers::pi;
  for (std::size_t j = 0; j < norb; ++j) {
    cdouble* col = result.psi.data() + j * ngrid;
    const auto& k = ks[j];
    for (std::int64_t iz = 0; iz < grid.nz; ++iz) {
      for (std::int64_t iy = 0; iy < grid.ny; ++iy) {
        for (std::int64_t ix = 0; ix < grid.nx; ++ix) {
          const double phase =
              two_pi * (k[0] * static_cast<double>(ix) / grid.nx +
                        k[1] * static_cast<double>(iy) / grid.ny +
                        k[2] * static_cast<double>(iz) / grid.nz);
          col[grid.index(ix, iy, iz)] =
              cdouble(std::cos(phase), std::sin(phase));
        }
      }
    }
    // Small symmetry-breaking noise so degenerate shells split cleanly.
    for (std::size_t g = 0; g < ngrid; ++g) {
      col[g] += cdouble(0.02 * rng.normal(), 0.02 * rng.normal());
    }
  }

  // FP64 local Hamiltonian (field-free) and Rayleigh-Ritz.
  hamiltonian<double> h(grid, order,
                        build_local_potential(grid, atoms,
                                              potential_depth_scale));
  h.set_field(0.0);
  const qxmd::apply_h_fn apply = [&h](const_matrix_view<cdouble> in,
                                      matrix_view<cdouble> out) {
    h.apply(in, out);
  };
  result.band_energies = qxmd::rayleigh_ritz(result.psi, apply, grid.dv());

  result.occupations.assign(norb, 0.0);
  for (std::size_t j = 0; j < nocc; ++j) result.occupations[j] = 2.0;
  return result;
}

}  // namespace dcmesh::lfd
