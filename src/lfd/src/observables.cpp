#include "dcmesh/lfd/observables.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace dcmesh::lfd {

template <typename R>
double dipole_moment(const mesh::grid3d& grid, int axis,
                     const matrix<std::complex<R>>& psi,
                     std::span<const double> occ, double dv) {
  if (axis < 0 || axis > 2) {
    throw std::invalid_argument("dipole_moment: bad axis");
  }
  if (occ.size() != psi.cols()) {
    throw std::invalid_argument("dipole_moment: occ size != norb");
  }
  const std::int64_t n_axis = axis == 0 ? grid.nx : axis == 1 ? grid.ny
                                                              : grid.nz;
  const double edge = static_cast<double>(n_axis) * grid.spacing;
  // Centre on the mesh mean (n-1)/2 * h rather than the geometric box
  // centre: the coordinate set is then exactly symmetric, so a uniform
  // density has an exactly zero dipole (no half-box min-image artifact).
  const double centre = 0.5 * static_cast<double>(n_axis - 1) *
                        grid.spacing;

  std::vector<double> coord(static_cast<std::size_t>(n_axis));
  for (std::int64_t i = 0; i < n_axis; ++i) {
    double c = static_cast<double>(i) * grid.spacing - centre;
    c -= edge * std::nearbyint(c / edge);
    coord[static_cast<std::size_t>(i)] = c;
  }

  double dipole = 0.0;
  for (std::size_t j = 0; j < psi.cols(); ++j) {
    if (occ[j] == 0.0) continue;
    const std::complex<R>* col = psi.data() + j * psi.rows();
    double orbital = 0.0;
    for (std::int64_t iz = 0; iz < grid.nz; ++iz) {
      for (std::int64_t iy = 0; iy < grid.ny; ++iy) {
        for (std::int64_t ix = 0; ix < grid.nx; ++ix) {
          const std::int64_t idx_axis = axis == 0 ? ix : axis == 1 ? iy : iz;
          const auto g = static_cast<std::size_t>(grid.index(ix, iy, iz));
          const double density =
              static_cast<double>(col[g].real()) * col[g].real() +
              static_cast<double>(col[g].imag()) * col[g].imag();
          orbital += coord[static_cast<std::size_t>(idx_axis)] * density;
        }
      }
    }
    dipole += occ[j] * orbital;
  }
  return dipole * dv;
}

template double dipole_moment<float>(const mesh::grid3d&, int,
                                     const matrix<std::complex<float>>&,
                                     std::span<const double>, double);
template double dipole_moment<double>(const mesh::grid3d&, int,
                                      const matrix<std::complex<double>>&,
                                      std::span<const double>, double);

}  // namespace dcmesh::lfd
