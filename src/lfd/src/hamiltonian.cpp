#include "dcmesh/lfd/hamiltonian.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dcmesh/sched/config.hpp"

namespace dcmesh::lfd {

template <typename R>
hamiltonian<R>::hamiltonian(mesh::grid3d grid, mesh::fd_order order,
                            std::vector<double> v_loc, int polarization_axis)
    : grid_(grid), order_(order), axis_(polarization_axis) {
  if (static_cast<std::int64_t>(v_loc.size()) != grid.size()) {
    throw std::invalid_argument("hamiltonian: potential size != grid size");
  }
  if (axis_ < 0 || axis_ > 2) {
    throw std::invalid_argument("hamiltonian: bad polarization axis");
  }
  set_potential(std::move(v_loc));
}

template <typename R>
void hamiltonian<R>::set_potential(std::vector<double> v_loc) {
  if (static_cast<std::int64_t>(v_loc.size()) != grid_.size()) {
    throw std::invalid_argument("hamiltonian: potential size != grid size");
  }
  v_.resize(v_loc.size());
  v_min_ = v_max_ = v_loc.empty() ? 0.0 : v_loc[0];
  for (std::size_t i = 0; i < v_loc.size(); ++i) {
    v_[i] = static_cast<R>(v_loc[i]);
    v_min_ = std::min(v_min_, v_loc[i]);
    v_max_ = std::max(v_max_, v_loc[i]);
  }
}

template <typename R>
void hamiltonian<R>::apply(const_matrix_view<std::complex<R>> psi,
                           matrix_view<std::complex<R>> out) const {
  using C = std::complex<R>;
  const std::size_t ngrid = psi.rows;
  const std::size_t norb = psi.cols;
  const R a = static_cast<R>(a_field_);
  const R half_a2 = static_cast<R>(0.5 * a_field_ * a_field_);
  const C grad_coeff{0, -a};  // -i A d/dz

  // Columns are independent; the sweep runs on the scheduler's worker
  // team (the shared pool under DCMESH_SCHED=pool, OpenMP otherwise).
  sched::team_parallel_for(
      static_cast<long>(norb), /*dynamic_chunks=*/false, [&](long j) {
        const C* in_col = psi.col(static_cast<std::size_t>(j));
        C* out_col = out.col(static_cast<std::size_t>(j));
        // Local potential + diamagnetic term first (overwrites out).
        for (std::size_t g = 0; g < ngrid; ++g) {
          out_col[g] = (v_[g] + half_a2) * in_col[g];
        }
        std::span<const C> in_span{in_col, ngrid};
        std::span<C> out_span{out_col, ngrid};
        mesh::add_kinetic<R>(grid_, order_, in_span, C(1), out_span);
        if (a != R(0)) {
          mesh::add_gradient<R>(grid_, order_, axis_, in_span, grad_coeff,
                                out_span);
        }
      });
}

template <typename R>
void hamiltonian<R>::apply_kinetic(const_matrix_view<std::complex<R>> psi,
                                   matrix_view<std::complex<R>> out) const {
  using C = std::complex<R>;
  const std::size_t ngrid = psi.rows;
  const std::size_t norb = psi.cols;
  sched::team_parallel_for(
      static_cast<long>(norb), /*dynamic_chunks=*/false, [&](long j) {
        const C* in_col = psi.col(static_cast<std::size_t>(j));
        C* out_col = out.col(static_cast<std::size_t>(j));
        std::fill_n(out_col, ngrid, C(0));
        mesh::add_kinetic<R>(grid_, order_, {in_col, ngrid}, C(1),
                             {out_col, ngrid});
      });
}

template <typename R>
void hamiltonian<R>::apply_kinetic_field(
    const_matrix_view<std::complex<R>> psi,
    matrix_view<std::complex<R>> out) const {
  using C = std::complex<R>;
  const std::size_t ngrid = psi.rows;
  const std::size_t norb = psi.cols;
  const R a = static_cast<R>(a_field_);
  const C grad_coeff{0, -a};
  sched::team_parallel_for(
      static_cast<long>(norb), /*dynamic_chunks=*/false, [&](long j) {
        const C* in_col = psi.col(static_cast<std::size_t>(j));
        C* out_col = out.col(static_cast<std::size_t>(j));
        std::fill_n(out_col, ngrid, C(0));
        mesh::add_kinetic<R>(grid_, order_, {in_col, ngrid}, C(1),
                             {out_col, ngrid});
        if (a != R(0)) {
          mesh::add_gradient<R>(grid_, order_, axis_, {in_col, ngrid},
                                grad_coeff, {out_col, ngrid});
        }
      });
}

template <typename R>
double hamiltonian<R>::spectral_bound() const noexcept {
  const double kinetic = mesh::kinetic_spectral_radius(grid_, order_);
  const double field = std::abs(a_field_);
  // |A p| <= A * pi/h per axis (discrete gradient bound), plus A^2/2.
  const double field_term =
      field * 3.141592653589793 / grid_.spacing + 0.5 * field * field;
  return kinetic + std::max(std::abs(v_min_), std::abs(v_max_)) + field_term;
}

template class hamiltonian<float>;
template class hamiltonian<double>;

}  // namespace dcmesh::lfd
