#include "dcmesh/qxmd/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dcmesh::qxmd {
namespace {

/// Frobenius norm of the strict upper triangle.
double offdiag_norm(const matrix<cdouble>& a) {
  double sum = 0.0;
  for (std::size_t q = 1; q < a.cols(); ++q) {
    for (std::size_t p = 0; p < q; ++p) {
      sum += std::norm(a(p, q));
    }
  }
  return std::sqrt(sum);
}

}  // namespace

eigen_result hermitian_eigen(const matrix<cdouble>& h, double tol,
                             int max_sweeps) {
  if (h.rows() != h.cols()) {
    throw std::invalid_argument("hermitian_eigen: matrix not square");
  }
  const std::size_t n = h.rows();

  // Work on a symmetrized copy: a <- (h + h^H)/2.
  matrix<cdouble> a(n, n);
  for (std::size_t q = 0; q < n; ++q) {
    for (std::size_t p = 0; p < n; ++p) {
      a(p, q) = 0.5 * (h(p, q) + std::conj(h(q, p)));
    }
  }
  matrix<cdouble> v(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  eigen_result result;
  const double scale = std::max(1.0, offdiag_norm(a));
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    result.sweeps = sweep + 1;
    if (offdiag_norm(a) <= tol * scale) break;
    for (std::size_t q = 1; q < n; ++q) {
      for (std::size_t p = 0; p < q; ++p) {
        const cdouble apq = a(p, q);
        const double abs_apq = std::abs(apq);
        if (abs_apq < 1e-300) continue;
        // Complex Jacobi rotation zeroing a(p,q):
        //   [p'] = [ c        s*e^{i*phi}] [p]
        //   [q']   [-s*e^{-i*phi}  c      ] [q]
        const double app = a(p, p).real();
        const double aqq = a(q, q).real();
        const double phi = std::arg(apq);
        const double tau = (aqq - app) / (2.0 * abs_apq);
        // t = sign(tau) / (|tau| + sqrt(1 + tau^2)) — the stable root.
        const double t =
            (tau >= 0 ? 1.0 : -1.0) /
            (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        const cdouble e_phi = std::polar(1.0, phi);
        const cdouble sp = s * e_phi;          // applied to column p updates
        const cdouble sm = s * std::conj(e_phi);

        // Rotate columns p and q of a (acting on the right), then rows
        // (acting on the left with the conjugate transpose), exploiting
        // hermiticity by updating full columns and restoring symmetry.
        for (std::size_t i = 0; i < n; ++i) {
          const cdouble aip = a(i, p);
          const cdouble aiq = a(i, q);
          a(i, p) = c * aip - sm * aiq;
          a(i, q) = sp * aip + c * aiq;
        }
        for (std::size_t j = 0; j < n; ++j) {
          const cdouble apj = a(p, j);
          const cdouble aqj = a(q, j);
          a(p, j) = c * apj - sp * aqj;
          a(q, j) = sm * apj + c * aqj;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const cdouble vip = v(i, p);
          const cdouble viq = v(i, q);
          v(i, p) = c * vip - sm * viq;
          v(i, q) = sp * vip + c * viq;
        }
      }
    }
  }
  result.off_norm = offdiag_norm(a);

  // Extract eigenvalues and sort ascending with matching vectors.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> raw(n);
  for (std::size_t i = 0; i < n; ++i) raw[i] = a(i, i).real();
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return raw[x] < raw[y]; });

  result.values.resize(n);
  result.vectors = matrix<cdouble>(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.values[j] = raw[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      result.vectors(i, j) = v(i, order[j]);
    }
  }
  return result;
}

}  // namespace dcmesh::qxmd
