#include "dcmesh/qxmd/shadow.hpp"

namespace dcmesh::qxmd {

void shadow_ledger::register_quantity(const std::string& name,
                                      std::uint64_t bytes, double tolerance) {
  entries_[name] = entry{bytes, tolerance, 0.0};
}

const shadow_ledger::entry& shadow_ledger::find(
    const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("shadow_ledger: unknown quantity " + name);
  }
  return it->second;
}

void shadow_ledger::record_gpu_update(const std::string& name, double drift) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("shadow_ledger: unknown quantity " + name);
  }
  it->second.drift += drift;
}

bool shadow_ledger::needs_transfer(const std::string& name) const {
  const entry& e = find(name);
  return e.drift > e.tolerance;
}

bool shadow_ledger::sync(const std::string& name, bool force) {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("shadow_ledger: unknown quantity " + name);
  }
  entry& e = it->second;
  if (force || e.drift > e.tolerance) {
    ++transfers_;
    bytes_moved_ += e.bytes;
    e.drift = 0.0;
    return true;
  }
  ++avoided_;
  return false;
}

double shadow_ledger::drift(const std::string& name) const {
  return find(name).drift;
}

}  // namespace dcmesh::qxmd
