#include "dcmesh/qxmd/xyz.hpp"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "dcmesh/common/units.hpp"

namespace dcmesh::qxmd {
namespace {

species species_from_symbol(const std::string& symbol) {
  if (symbol == "Pb") return species::pb;
  if (symbol == "Ti") return species::ti;
  if (symbol == "O") return species::o;
  throw std::runtime_error("xyz: unknown species symbol '" + symbol + "'");
}

}  // namespace

void write_xyz_frame(std::ostream& os, const atom_system& system,
                     double time_atu) {
  const double to_ang = units::bohr_in_angstrom;
  os << system.size() << '\n';
  os << std::setprecision(12)
     << "Lattice=\"" << system.box[0] * to_ang << " 0 0 0 "
     << system.box[1] * to_ang << " 0 0 0 " << system.box[2] * to_ang
     << "\" Properties=species:S:1:pos:R:3:vel:R:3 Time=" << time_atu
     << '\n';
  for (const atom& a : system.atoms) {
    os << info(a.kind).symbol;
    for (int axis = 0; axis < 3; ++axis) {
      os << ' ' << a.position[static_cast<std::size_t>(axis)] * to_ang;
    }
    for (int axis = 0; axis < 3; ++axis) {
      os << ' ' << a.velocity[static_cast<std::size_t>(axis)] * to_ang;
    }
    os << '\n';
  }
}

bool read_xyz_frame(std::istream& is, atom_system& system,
                    double& time_atu) {
  std::string line;
  // Skip blank separators; clean EOF before a frame is a normal end.
  do {
    if (!std::getline(is, line)) return false;
  } while (line.empty());

  std::size_t count = 0;
  try {
    count = static_cast<std::size_t>(std::stoull(line));
  } catch (const std::exception&) {
    throw std::runtime_error("xyz: bad atom count line: " + line);
  }

  if (!std::getline(is, line)) {
    throw std::runtime_error("xyz: missing comment line");
  }
  // Extract the lattice (first three diagonal entries) and time.
  const double from_ang = 1.0 / units::bohr_in_angstrom;
  {
    const auto lat = line.find("Lattice=\"");
    if (lat == std::string::npos) {
      throw std::runtime_error("xyz: missing Lattice in comment");
    }
    std::istringstream fields(line.substr(lat + 9));
    double a = 0, z1 = 0, z2 = 0, z3 = 0, b = 0, z4 = 0, z5 = 0, z6 = 0,
           c = 0;
    fields >> a >> z1 >> z2 >> z3 >> b >> z4 >> z5 >> z6 >> c;
    if (!fields) throw std::runtime_error("xyz: bad Lattice");
    system.box = {a * from_ang, b * from_ang, c * from_ang};
  }
  {
    const auto t = line.find("Time=");
    time_atu = 0.0;
    if (t != std::string::npos) {
      time_atu = std::strtod(line.c_str() + t + 5, nullptr);
    }
  }

  system.atoms.clear();
  system.atoms.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::getline(is, line)) {
      throw std::runtime_error("xyz: truncated frame");
    }
    std::istringstream fields(line);
    std::string symbol;
    atom a;
    fields >> symbol;
    for (int axis = 0; axis < 3; ++axis) {
      fields >> a.position[static_cast<std::size_t>(axis)];
    }
    for (int axis = 0; axis < 3; ++axis) {
      fields >> a.velocity[static_cast<std::size_t>(axis)];
    }
    if (!fields) throw std::runtime_error("xyz: bad atom line: " + line);
    a.kind = species_from_symbol(symbol);
    for (int axis = 0; axis < 3; ++axis) {
      a.position[static_cast<std::size_t>(axis)] *= from_ang;
      a.velocity[static_cast<std::size_t>(axis)] *= from_ang;
    }
    system.atoms.push_back(a);
  }
  return true;
}

}  // namespace dcmesh::qxmd
