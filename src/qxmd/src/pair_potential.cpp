#include "dcmesh/qxmd/pair_potential.hpp"

#include <cmath>

namespace dcmesh::qxmd {
namespace {

/// Effective ionic charges for the screened-Coulomb term (formal charges
/// scaled down, as usual for rigid-ion oxide models).
double ionic_charge(species s) noexcept {
  switch (s) {
    case species::pb: return +1.2;
    case species::ti: return +2.4;
    case species::o: return -1.2;
  }
  return 0.0;
}

}  // namespace

pair_potential::pair_potential(double cutoff) : cutoff_(cutoff) {
  // Buckingham parameters of roughly the right stiffness for a perovskite
  // oxide, in Hartree / Bohr units (magnitudes converted loosely from
  // published eV/Angstrom oxide force fields; A must dominate -C/r^6 well
  // inside the bond length or the potential suffers the classic Buckingham
  // collapse).  Cation-cation pairs keep only the repulsive core — their
  // interaction is dominated by the screened Coulomb term.
  set_params(species::pb, species::o, {80.0, 0.59, 8.0});
  set_params(species::ti, species::o, {90.0, 0.55, 5.0});
  set_params(species::o, species::o, {150.0, 0.45, 10.0});
  set_params(species::pb, species::pb, {60.0, 0.62, 0.0});
  set_params(species::ti, species::ti, {60.0, 0.58, 0.0});
  set_params(species::pb, species::ti, {60.0, 0.60, 0.0});
}

int pair_potential::pair_index(species s1, species s2) noexcept {
  int i = static_cast<int>(s1);
  int j = static_cast<int>(s2);
  if (i > j) std::swap(i, j);
  // (0,0)->0 (0,1)->1 (0,2)->2 (1,1)->3 (1,2)->4 (2,2)->5
  return i * 3 - i * (i - 1) / 2 + (j - i);
}

void pair_potential::set_params(species s1, species s2, pair_params params) {
  table_[pair_index(s1, s2)] = params;
}

const pair_params& pair_potential::params(species s1,
                                          species s2) const noexcept {
  return table_[pair_index(s1, s2)];
}

double pair_potential::pair_energy(species s1, species s2,
                                   double r) const noexcept {
  if (r >= cutoff_) return 0.0;
  const pair_params& p = params(s1, s2);
  const double q1q2 = ionic_charge(s1) * ionic_charge(s2);
  const auto raw = [&](double rr) {
    const double r6 = rr * rr * rr * rr * rr * rr;
    return p.a * std::exp(-rr / p.rho) - p.c / r6 +
           q1q2 * std::exp(-rr / screening_length_) / rr;
  };
  // Shift so V(cutoff) = 0 (no energy jump at the cutoff sphere).
  return raw(r) - raw(cutoff_);
}

double pair_potential::energy(const atom_system& system) const {
  double e = 0.0;
  const std::size_t n = system.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto d = system.min_image(system.atoms[i].position,
                                      system.atoms[j].position);
      const double r =
          std::sqrt(d[0] * d[0] + d[1] * d[1] + d[2] * d[2]);
      if (r < cutoff_ && r > 1e-9) {
        e += pair_energy(system.atoms[i].kind, system.atoms[j].kind, r);
      }
    }
  }
  return e;
}

double pair_potential::compute_forces(atom_system& system) const {
  for (atom& a : system.atoms) a.force = {0.0, 0.0, 0.0};
  double e = 0.0;
  const std::size_t n = system.size();
  const double dr = 1e-6;  // central-difference step for dV/dr
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto d = system.min_image(system.atoms[i].position,
                                      system.atoms[j].position);
      const double r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
      const double r = std::sqrt(r2);
      if (r >= cutoff_ || r < 1e-9) continue;
      const species s1 = system.atoms[i].kind;
      const species s2 = system.atoms[j].kind;
      e += pair_energy(s1, s2, r);
      const double dvdr =
          (pair_energy(s1, s2, r + dr) - pair_energy(s1, s2, r - dr)) /
          (2.0 * dr);
      // d points i -> j: force on i is -dV/dr * (-d/r) = +dvdr * d/r ...
      // derivative of |r_j - r_i| w.r.t. r_i is -d/r.
      for (int axis = 0; axis < 3; ++axis) {
        const std::size_t ax = static_cast<std::size_t>(axis);
        const double f = dvdr * d[ax] / r;
        system.atoms[i].force[ax] += f;
        system.atoms[j].force[ax] -= f;
      }
    }
  }
  return e;
}

}  // namespace dcmesh::qxmd
