#include "dcmesh/qxmd/scf.hpp"

#include <cmath>
#include <stdexcept>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/level1.hpp"
#include "dcmesh/qxmd/cholesky.hpp"
#include "dcmesh/qxmd/eigen.hpp"
#include "dcmesh/trace/tracer.hpp"

namespace dcmesh::qxmd {
namespace {

/// Mesh-weighted inner product of two columns (FP64 dotc).
cdouble dot(const cdouble* a, const cdouble* b, std::size_t n, double dv) {
  return blas::dotc<cdouble>(static_cast<blas::blas_int>(n), a, 1, b, 1) *
         dv;
}

}  // namespace

void orthonormalize(matrix<cdouble>& psi, double dv) {
  // Modified Gram-Schmidt expressed in level-1 BLAS (dotc/axpy/scal), all
  // in FP64 — the QXMD CPU path.
  const auto ngrid = static_cast<blas::blas_int>(psi.rows());
  const std::size_t norb = psi.cols();
  const double sqrt_dv = std::sqrt(dv);
  for (std::size_t j = 0; j < norb; ++j) {
    cdouble* col_j = psi.data() + j * psi.rows();
    for (std::size_t i = 0; i < j; ++i) {
      const cdouble* col_i = psi.data() + i * psi.rows();
      const cdouble overlap = dot(col_i, col_j, psi.rows(), dv);
      blas::axpy<cdouble>(ngrid, -overlap, col_i, 1, col_j, 1);
    }
    const double norm = blas::nrm2<cdouble>(ngrid, col_j, 1) * sqrt_dv;
    if (!(norm > 1e-14)) {
      throw std::runtime_error("orthonormalize: degenerate column");
    }
    blas::scal_real<double>(ngrid, 1.0 / norm, col_j, 1);
  }
}

std::vector<double> rayleigh_ritz(matrix<cdouble>& psi, const apply_h_fn& h,
                                  double dv) {
  trace::span span("qxmd/rayleigh_ritz", "qxmd");
  orthonormalize(psi, dv);
  const std::size_t ngrid = psi.rows();
  const std::size_t norb = psi.cols();

  matrix<cdouble> hpsi(ngrid, norb);
  h(psi.view(), hpsi.view());

  // Hsub = dv * Psi^H (H Psi) — FP64 BLAS (zgemm), the QXMD CPU path.
  matrix<cdouble> hsub(norb, norb);
  blas::gemm<cdouble>(blas::transpose::conj_trans, blas::transpose::none,
                      cdouble(dv), psi.view(), hpsi.view(), cdouble(0),
                      hsub.view(), "qxmd/scf/hsub");

  const eigen_result eig = hermitian_eigen(hsub);

  // Psi <- Psi * V (rotate onto eigenvectors, ascending energies).
  matrix<cdouble> rotated(ngrid, norb);
  blas::gemm<cdouble>(blas::transpose::none, blas::transpose::none,
                      cdouble(1), psi.view(), eig.vectors.view(), cdouble(0),
                      rotated.view(), "qxmd/scf/rotate");
  psi = std::move(rotated);
  return eig.values;
}

template <typename R>
scf_report scf_refresh(matrix<std::complex<R>>& psi, double dv) {
  trace::span span("qxmd/scf_refresh", "qxmd");
  const std::size_t ngrid = psi.rows();
  const std::size_t norb = psi.cols();

  // Promote to FP64.
  matrix<cdouble> work(ngrid, norb);
  for (std::size_t i = 0; i < psi.size(); ++i) {
    work.data()[i] = cdouble(psi.data()[i].real(), psi.data()[i].imag());
  }

  // Measure drift before repairing it.
  scf_report report;
  for (std::size_t j = 0; j < norb; ++j) {
    const cdouble* col_j = work.data() + j * ngrid;
    const double nj = dot(col_j, col_j, ngrid, dv).real();
    report.max_norm_drift = std::max(report.max_norm_drift,
                                     std::abs(nj - 1.0));
    // Sampling the adjacent column keeps the check O(norb) while still
    // catching systematic orthogonality loss.
    if (j + 1 < norb) {
      const cdouble* col_k = work.data() + (j + 1) * ngrid;
      report.max_overlap_offdiag =
          std::max(report.max_overlap_offdiag,
                   std::abs(dot(col_j, col_k, ngrid, dv)));
    }
  }

  // Level-3 Cholesky orthonormalization (herk + potrf + trsm), with the
  // Gram-Schmidt sweep as the fallback for ill-conditioned overlaps.
  if (!orthonormalize_cholesky(work, dv)) {
    orthonormalize(work, dv);
  }

  for (std::size_t i = 0; i < psi.size(); ++i) {
    psi.data()[i] = std::complex<R>(static_cast<R>(work.data()[i].real()),
                                    static_cast<R>(work.data()[i].imag()));
  }
  return report;
}

template scf_report scf_refresh<float>(matrix<std::complex<float>>&, double);
template scf_report scf_refresh<double>(matrix<std::complex<double>>&,
                                        double);

}  // namespace dcmesh::qxmd
