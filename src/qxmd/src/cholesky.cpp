#include "dcmesh/qxmd/cholesky.hpp"

#include <cmath>
#include <stdexcept>

#include "dcmesh/blas/rank_k.hpp"
#include "dcmesh/blas/trsm.hpp"

namespace dcmesh::qxmd {

bool cholesky_lower(matrix<cdouble>& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("cholesky_lower: matrix not square");
  }
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    // Diagonal pivot: a_jj - sum_{p<j} |L_jp|^2 must be positive.
    double pivot = a(j, j).real();
    for (std::size_t p = 0; p < j; ++p) pivot -= std::norm(a(j, p));
    if (!(pivot > 0.0)) return false;
    const double ljj = std::sqrt(pivot);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      cdouble sum = a(i, j);
      for (std::size_t p = 0; p < j; ++p) {
        sum -= a(i, p) * std::conj(a(j, p));
      }
      a(i, j) = sum / ljj;
    }
    for (std::size_t i = 0; i < j; ++i) a(i, j) = 0.0;  // zero upper
  }
  return true;
}

bool orthonormalize_cholesky(matrix<cdouble>& psi, double dv) {
  const std::size_t norb = psi.cols();
  if (norb == 0) return true;

  // S = dv * Psi^H Psi (Hermitian by construction via herk).
  matrix<cdouble> s(norb, norb);
  blas::herk<double>(blas::uplo::lower, blas::transpose::conj_trans,
                     static_cast<blas::blas_int>(norb),
                     static_cast<blas::blas_int>(psi.rows()), dv,
                     psi.data(), static_cast<blas::blas_int>(psi.rows()),
                     0.0, s.data(), static_cast<blas::blas_int>(norb),
                     "qxmd/cholesky/overlap");

  if (!cholesky_lower(s)) return false;

  // Guard against near-singular overlap (linearly dependent orbitals):
  // the trsm would amplify noise catastrophically.
  double min_diag = s(0, 0).real(), max_diag = s(0, 0).real();
  for (std::size_t j = 1; j < norb; ++j) {
    min_diag = std::min(min_diag, s(j, j).real());
    max_diag = std::max(max_diag, s(j, j).real());
  }
  if (min_diag < 1e-7 * max_diag) return false;

  // Psi <- Psi L^-H: right-solve X L^H = Psi with L^H upper.
  blas::trsm<cdouble>(blas::side::right, blas::uplo::lower,
                      blas::transpose::conj_trans, blas::diag::non_unit,
                      static_cast<blas::blas_int>(psi.rows()),
                      static_cast<blas::blas_int>(norb), cdouble(1),
                      s.data(), static_cast<blas::blas_int>(norb),
                      psi.data(), static_cast<blas::blas_int>(psi.rows()),
                      "qxmd/cholesky/solve");
  return true;
}

}  // namespace dcmesh::qxmd
