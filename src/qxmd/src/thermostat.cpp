#include "dcmesh/qxmd/thermostat.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dcmesh/common/units.hpp"

namespace dcmesh::qxmd {

double instantaneous_temperature(const atom_system& system) {
  if (system.size() < 2) return 0.0;
  const double dof = 3.0 * (static_cast<double>(system.size()) - 1.0);
  return 2.0 * system.kinetic_energy() /
         (dof * units::kb_hartree_per_k);
}

berendsen_thermostat::berendsen_thermostat(double target_k, double tau_atu)
    : target_k_(target_k), tau_atu_(tau_atu) {
  if (!(target_k >= 0.0)) {
    throw std::invalid_argument("thermostat: negative temperature");
  }
  if (!(tau_atu > 0.0)) {
    throw std::invalid_argument("thermostat: tau must be positive");
  }
}

void berendsen_thermostat::apply(atom_system& system, double dt_atu) const {
  const double t_now = instantaneous_temperature(system);
  if (t_now <= 0.0) return;  // nothing to rescale (cold or tiny system)
  const double ratio = target_k_ / t_now;
  double lambda =
      std::sqrt(std::max(0.0, 1.0 + (dt_atu / tau_atu_) * (ratio - 1.0)));
  lambda = std::clamp(lambda, 0.8, 1.25);
  for (atom& a : system.atoms) {
    for (int axis = 0; axis < 3; ++axis) {
      a.velocity[static_cast<std::size_t>(axis)] *= lambda;
    }
  }
}

}  // namespace dcmesh::qxmd
