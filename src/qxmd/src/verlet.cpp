#include "dcmesh/qxmd/verlet.hpp"

#include <stdexcept>

namespace dcmesh::qxmd {

double verlet_integrator::evaluate_forces(atom_system& system,
                                          const extra_force_fn& extra) {
  const double e = potential_.compute_forces(system);
  if (extra) extra(system);
  return e;
}

double verlet_integrator::initialize(atom_system& system,
                                     const extra_force_fn& extra) {
  const double e = evaluate_forces(system, extra);
  primed_ = true;
  return e;
}

double verlet_integrator::step(atom_system& system,
                               const extra_force_fn& extra) {
  if (!primed_) {
    throw std::logic_error("verlet_integrator::step before initialize");
  }
  // v(t+dt/2), x(t+dt)
  for (atom& a : system.atoms) {
    const double inv_m = 1.0 / info(a.kind).mass;
    for (int axis = 0; axis < 3; ++axis) {
      const std::size_t ax = static_cast<std::size_t>(axis);
      a.velocity[ax] += 0.5 * dt_ * a.force[ax] * inv_m;
      a.position[ax] += dt_ * a.velocity[ax];
    }
  }
  system.wrap_positions();
  // F(t+dt), v(t+dt)
  const double e = evaluate_forces(system, extra);
  for (atom& a : system.atoms) {
    const double inv_m = 1.0 / info(a.kind).mass;
    for (int axis = 0; axis < 3; ++axis) {
      const std::size_t ax = static_cast<std::size_t>(axis);
      a.velocity[ax] += 0.5 * dt_ * a.force[ax] * inv_m;
    }
  }
  return e;
}

}  // namespace dcmesh::qxmd
