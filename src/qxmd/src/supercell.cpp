#include "dcmesh/qxmd/supercell.hpp"

#include "dcmesh/common/rng.hpp"

namespace dcmesh::qxmd {

atom_system build_pto_supercell(int cells_per_axis, double lattice,
                                double displacement,
                                unsigned long long seed) {
  // Fractional coordinates of the 5-atom perovskite basis.
  struct basis_atom {
    species kind;
    double fx, fy, fz;
  };
  constexpr basis_atom kBasis[] = {
      {species::pb, 0.0, 0.0, 0.0},
      {species::ti, 0.5, 0.5, 0.5},
      {species::o, 0.5, 0.5, 0.0},
      {species::o, 0.5, 0.0, 0.5},
      {species::o, 0.0, 0.5, 0.5},
  };

  atom_system system;
  const double edge = lattice * cells_per_axis;
  system.box = {edge, edge, edge};
  system.atoms.reserve(
      static_cast<std::size_t>(5 * cells_per_axis * cells_per_axis *
                               cells_per_axis));

  xoshiro256 rng(seed);
  for (int cz = 0; cz < cells_per_axis; ++cz) {
    for (int cy = 0; cy < cells_per_axis; ++cy) {
      for (int cx = 0; cx < cells_per_axis; ++cx) {
        for (const basis_atom& b : kBasis) {
          atom a;
          a.kind = b.kind;
          a.position = {(cx + b.fx) * lattice + displacement * rng.normal(),
                        (cy + b.fy) * lattice + displacement * rng.normal(),
                        (cz + b.fz) * lattice + displacement * rng.normal()};
          system.atoms.push_back(a);
        }
      }
    }
  }
  system.wrap_positions();
  return system;
}

double valence_electrons(const atom_system& system) noexcept {
  double total = 0.0;
  for (const atom& a : system.atoms) total += info(a.kind).valence;
  return total;
}

}  // namespace dcmesh::qxmd
