#include "dcmesh/qxmd/davidson.hpp"

#include <cmath>
#include <stdexcept>

#include "dcmesh/blas/blas.hpp"
#include "dcmesh/blas/level1.hpp"
#include "dcmesh/common/rng.hpp"
#include "dcmesh/qxmd/eigen.hpp"

namespace dcmesh::qxmd {
namespace {

/// Copy the first `cols` columns of src into a fresh dim x cols matrix.
matrix<cdouble> take_columns(const matrix<cdouble>& src, std::size_t cols) {
  matrix<cdouble> out(src.rows(), cols);
  for (std::size_t j = 0; j < cols; ++j) {
    blas::copy<cdouble>(static_cast<blas::blas_int>(src.rows()),
                        src.data() + j * src.rows(), 1,
                        out.data() + j * out.rows(), 1);
  }
  return out;
}

}  // namespace

davidson_result davidson(const apply_h_fn& h, std::size_t dim, double dv,
                         std::span<const double> diagonal,
                         davidson_options options,
                         const matrix<cdouble>* initial) {
  if (options.n_eigen == 0 || options.n_eigen > dim) {
    throw std::invalid_argument("davidson: bad n_eigen");
  }
  if (diagonal.size() != dim) {
    throw std::invalid_argument("davidson: diagonal size != dim");
  }
  const std::size_t nev = options.n_eigen;
  const std::size_t max_space =
      options.max_subspace ? options.max_subspace
                           : std::min(dim, 6 * nev);
  if (max_space < 2 * nev) {
    throw std::invalid_argument("davidson: max_subspace < 2 * n_eigen");
  }

  // Search space V (dim x m), grown column by column.
  matrix<cdouble> v(dim, max_space);
  std::size_t m = nev;
  if (initial != nullptr) {
    if (initial->rows() != dim || initial->cols() < nev) {
      throw std::invalid_argument("davidson: bad initial block");
    }
    for (std::size_t j = 0; j < nev; ++j) {
      blas::copy<cdouble>(static_cast<blas::blas_int>(dim),
                          initial->data() + j * dim, 1, v.data() + j * dim,
                          1);
    }
  } else {
    xoshiro256 rng(options.seed);
    for (std::size_t j = 0; j < nev; ++j) {
      cdouble* col = v.data() + j * dim;
      for (std::size_t i = 0; i < dim; ++i) {
        col[i] = {rng.normal(), rng.normal()};
      }
    }
  }
  {
    matrix<cdouble> block = take_columns(v, m);
    orthonormalize(block, dv);
    for (std::size_t j = 0; j < m; ++j) {
      blas::copy<cdouble>(static_cast<blas::blas_int>(dim),
                          block.data() + j * dim, 1, v.data() + j * dim, 1);
    }
  }

  davidson_result result;
  matrix<cdouble> ritz(dim, nev);
  std::vector<double> theta(nev, 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // W = H V_m; Hsub = dv V^H W (m x m).
    const matrix<cdouble> vm = take_columns(v, m);
    matrix<cdouble> w(dim, m);
    h(vm.view(), w.view());
    matrix<cdouble> hsub(m, m);
    blas::gemm<cdouble>(blas::transpose::conj_trans, blas::transpose::none,
                        cdouble(dv), vm.view(), w.view(), cdouble(0),
                        hsub.view(), "qxmd/davidson/hsub");
    const eigen_result eig = hermitian_eigen(hsub);

    // Ritz vectors X = V Y and their images H X = W Y (lowest nev).
    matrix<cdouble> y(m, nev);
    for (std::size_t j = 0; j < nev; ++j) {
      theta[j] = eig.values[j];
      for (std::size_t i = 0; i < m; ++i) y(i, j) = eig.vectors(i, j);
    }
    blas::gemm<cdouble>(blas::transpose::none, blas::transpose::none,
                        cdouble(1), vm.view(), y.view(), cdouble(0),
                        ritz.view(), "qxmd/davidson/ritz");
    matrix<cdouble> hx(dim, nev);
    blas::gemm<cdouble>(blas::transpose::none, blas::transpose::none,
                        cdouble(1), w.view(), y.view(), cdouble(0),
                        hx.view(), "qxmd/davidson/ritz_image");

    // Residuals r_j = H x_j - theta_j x_j.
    result.max_residual = 0.0;
    matrix<cdouble> residuals(dim, nev);
    for (std::size_t j = 0; j < nev; ++j) {
      cdouble* r = residuals.data() + j * dim;
      const cdouble* x = ritz.data() + j * dim;
      const cdouble* hxj = hx.data() + j * dim;
      for (std::size_t i = 0; i < dim; ++i) {
        r[i] = hxj[i] - theta[j] * x[i];
      }
      const double norm =
          blas::nrm2<cdouble>(static_cast<blas::blas_int>(dim), r, 1) *
          std::sqrt(dv);
      result.max_residual = std::max(result.max_residual, norm);
    }
    if (result.max_residual < options.tolerance) {
      result.converged = true;
      break;
    }

    // Restart: collapse to the Ritz block when the space is saturated.
    if (m + nev > max_space) {
      for (std::size_t j = 0; j < nev; ++j) {
        blas::copy<cdouble>(static_cast<blas::blas_int>(dim),
                            ritz.data() + j * dim, 1, v.data() + j * dim,
                            1);
      }
      m = nev;
    }

    // Expand with preconditioned residuals, orthogonalized against V.
    // If the preconditioned direction collapses into span(V) — which
    // happens exactly when H is (near-)diagonal, since then
    // (diag - theta)^-1 r = x — fall back to the raw residual, which for
    // a non-converged pair always has a component outside the subspace.
    const auto orthogonalize_against_v = [&](cdouble* t) {
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t c = 0; c < m; ++c) {
          const cdouble* vc = v.data() + c * dim;
          const cdouble overlap =
              blas::dotc<cdouble>(static_cast<blas::blas_int>(dim), vc, 1,
                                  t, 1) *
              dv;
          blas::axpy<cdouble>(static_cast<blas::blas_int>(dim), -overlap,
                              vc, 1, t, 1);
        }
      }
      return blas::nrm2<cdouble>(static_cast<blas::blas_int>(dim), t, 1) *
             std::sqrt(dv);
    };
    for (std::size_t j = 0; j < nev && m < max_space; ++j) {
      cdouble* t = v.data() + m * dim;
      const cdouble* r = residuals.data() + j * dim;
      for (std::size_t i = 0; i < dim; ++i) {
        double denom = diagonal[i] - theta[j];
        if (std::abs(denom) < 1e-8) denom = denom < 0 ? -1e-8 : 1e-8;
        t[i] = r[i] / denom;
      }
      double norm = orthogonalize_against_v(t);
      if (norm <= 1e-10) {
        blas::copy<cdouble>(static_cast<blas::blas_int>(dim), r, 1, t, 1);
        norm = orthogonalize_against_v(t);
      }
      if (norm > 1e-10) {
        blas::scal_real<double>(static_cast<blas::blas_int>(dim),
                                1.0 / norm, t, 1);
        ++m;
      }
    }
  }

  result.values.assign(theta.begin(), theta.end());
  result.vectors = std::move(ritz);
  return result;
}

}  // namespace dcmesh::qxmd
