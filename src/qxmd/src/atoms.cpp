#include "dcmesh/qxmd/atoms.hpp"

#include <cmath>

#include "dcmesh/common/rng.hpp"
#include "dcmesh/common/units.hpp"

namespace dcmesh::qxmd {
namespace {

// Masses in electron masses (amu * 1822.89); valence/well parameters are
// model-pseudopotential choices, not tabulated physical constants.
constexpr species_info kSpecies[] = {
    {"Pb", 207.2 * units::amu_in_me, 4.0, 1.6},
    {"Ti", 47.867 * units::amu_in_me, 4.0, 1.2},
    {"O", 15.999 * units::amu_in_me, 6.0, 1.0},
};

}  // namespace

const species_info& info(species s) noexcept {
  return kSpecies[static_cast<int>(s)];
}

double atom_system::kinetic_energy() const noexcept {
  double e = 0.0;
  for (const atom& a : atoms) {
    const double m = info(a.kind).mass;
    e += 0.5 * m *
         (a.velocity[0] * a.velocity[0] + a.velocity[1] * a.velocity[1] +
          a.velocity[2] * a.velocity[2]);
  }
  return e;
}

void atom_system::wrap_positions() noexcept {
  for (atom& a : atoms) {
    for (int axis = 0; axis < 3; ++axis) {
      const double edge = box[static_cast<std::size_t>(axis)];
      double& x = a.position[static_cast<std::size_t>(axis)];
      x = std::fmod(x, edge);
      if (x < 0.0) x += edge;
    }
  }
}

std::array<double, 3> atom_system::min_image(
    const std::array<double, 3>& a,
    const std::array<double, 3>& b) const noexcept {
  std::array<double, 3> d{};
  for (int axis = 0; axis < 3; ++axis) {
    const std::size_t i = static_cast<std::size_t>(axis);
    double delta = b[i] - a[i];
    delta -= box[i] * std::nearbyint(delta / box[i]);
    d[i] = delta;
  }
  return d;
}

void seed_velocities(atom_system& system, double temperature_k,
                     unsigned long long seed) {
  xoshiro256 rng(seed);
  std::array<double, 3> momentum{0.0, 0.0, 0.0};
  double total_mass = 0.0;
  for (atom& a : system.atoms) {
    const double m = info(a.kind).mass;
    const double sigma = std::sqrt(units::kb_hartree_per_k * temperature_k / m);
    for (int axis = 0; axis < 3; ++axis) {
      const std::size_t i = static_cast<std::size_t>(axis);
      a.velocity[i] = sigma * rng.normal();
      momentum[i] += m * a.velocity[i];
    }
    total_mass += m;
  }
  if (system.atoms.empty() || total_mass == 0.0) return;
  for (atom& a : system.atoms) {
    for (int axis = 0; axis < 3; ++axis) {
      const std::size_t i = static_cast<std::size_t>(axis);
      a.velocity[i] -= momentum[i] / total_mass;
    }
  }
}

}  // namespace dcmesh::qxmd
