#pragma once
// thermostat.hpp — Berendsen velocity-rescaling thermostat.
//
// Production MD campaigns equilibrate the ions at a target temperature
// before production runs (the paper's systems start from thermalized
// lead titanate).  Berendsen weak coupling rescales velocities toward the
// target with time constant tau — simple, stable, and adequate for
// equilibration (not for sampling exact canonical fluctuations).

#include "dcmesh/qxmd/atoms.hpp"

namespace dcmesh::qxmd {

/// Instantaneous ionic temperature (Kelvin) from the equipartition
/// theorem, using 3(N-1) degrees of freedom (centre of mass removed).
[[nodiscard]] double instantaneous_temperature(const atom_system& system);

/// Berendsen weak-coupling thermostat.
class berendsen_thermostat {
 public:
  /// `target_k` in Kelvin; `tau_atu` the coupling time constant in atomic
  /// time units (larger = gentler).
  berendsen_thermostat(double target_k, double tau_atu);

  /// Rescale velocities after an MD step of length dt_atu.
  /// Scale factor lambda = sqrt(1 + dt/tau (T0/T - 1)), clamped to
  /// [0.8, 1.25] per application for robustness against T ~ 0.
  void apply(atom_system& system, double dt_atu) const;

  [[nodiscard]] double target_kelvin() const noexcept { return target_k_; }
  [[nodiscard]] double tau() const noexcept { return tau_atu_; }

 private:
  double target_k_;
  double tau_atu_;
};

}  // namespace dcmesh::qxmd
