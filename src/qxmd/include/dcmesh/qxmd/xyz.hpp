#pragma once
// xyz.hpp — extended-XYZ trajectory I/O.
//
// The standard interchange format for MD trajectories (readable by OVITO,
// VMD, ASE): one frame = atom count, a comment line carrying the box and
// time, then one line per atom with symbol, position, and velocity.
// Positions are written in Angstrom (the format's convention); velocities
// in Angstrom per atomic time unit.

#include <iosfwd>
#include <string>

#include "dcmesh/qxmd/atoms.hpp"

namespace dcmesh::qxmd {

/// Append one frame to the stream.  `time_atu` is stamped in the comment
/// line together with the orthorhombic lattice.
void write_xyz_frame(std::ostream& os, const atom_system& system,
                     double time_atu);

/// Parse one frame from the stream (the inverse of write_xyz_frame).
/// Returns false cleanly at end-of-stream before a frame starts; throws
/// std::runtime_error on malformed input mid-frame.
bool read_xyz_frame(std::istream& is, atom_system& system,
                    double& time_atu);

}  // namespace dcmesh::qxmd
