#pragma once
// supercell.hpp — lead-titanate (PbTiO3) supercell builder.
//
// The paper's two systems are a 40-atom and a 135-atom PbTiO3 supercell
// (Table V).  PbTiO3 has 5 atoms per (pseudo-cubic) perovskite unit cell,
// so 40 atoms = 2x2x2 cells and 135 atoms = 3x3x3 cells — exactly the
// paper's sizes.  The builder places Pb at the cell corner, Ti at the body
// centre, and the three O at the face centres, with an optional small
// deterministic displacement to break perfect symmetry (a ferroelectric
// material is not perfectly cubic).

#include <cstdint>

#include "dcmesh/qxmd/atoms.hpp"

namespace dcmesh::qxmd {

/// Pseudo-cubic PbTiO3 lattice constant (Bohr; ~3.90 Angstrom).
inline constexpr double kPtoLatticeBohr = 7.37;

/// Build an n x n x n PbTiO3 supercell (5*n^3 atoms).
/// `displacement` is the amplitude (Bohr) of a deterministic symmetry-
/// breaking displacement applied to every atom (seeded by `seed`).
[[nodiscard]] atom_system build_pto_supercell(int cells_per_axis,
                                              double lattice = kPtoLatticeBohr,
                                              double displacement = 0.05,
                                              unsigned long long seed = 7);

/// Number of valence electrons in the system (sum of species valences) —
/// determines the occupied-orbital count Nocc = electrons / 2.
[[nodiscard]] double valence_electrons(const atom_system& system) noexcept;

}  // namespace dcmesh::qxmd
