#pragma once
// eigen.hpp — Hermitian eigensolver (cyclic Jacobi) for the SCF substrate.
//
// The Self-Consistent Field step diagonalizes the subspace Hamiltonian
// Psi^H H Psi (Norb x Norb, Hermitian, complex FP64).  No LAPACK is
// assumed offline, so a from-scratch cyclic Jacobi solver with complex
// plane rotations is provided.  O(n^3) per sweep with quadratic
// convergence — entirely adequate for the subspace sizes the SCF handles.

#include <complex>
#include <vector>

#include "dcmesh/common/matrix.hpp"

namespace dcmesh::qxmd {

/// Eigendecomposition result: ascending eigenvalues and the matching
/// orthonormal eigenvector columns.
struct eigen_result {
  std::vector<double> values;
  matrix<cdouble> vectors;
  int sweeps = 0;       ///< Jacobi sweeps performed.
  double off_norm = 0;  ///< Final off-diagonal Frobenius norm.
};

/// Diagonalize a Hermitian matrix (only the stored values are used; the
/// routine symmetrizes internally to guard against round-off asymmetry).
/// Throws std::invalid_argument for non-square input.
[[nodiscard]] eigen_result hermitian_eigen(const matrix<cdouble>& h,
                                           double tol = 1e-12,
                                           int max_sweeps = 64);

}  // namespace dcmesh::qxmd
