#pragma once
// atoms.hpp — ionic degrees of freedom for the QXMD (CPU) portion.
//
// QXMD holds the atoms: positions, velocities, forces, and species data for
// the lead-titanate supercells the paper simulates.  All ionic state is
// FP64 — the paper's QXMD portion "can only be run using FP64 precision".

#include <array>
#include <cstddef>
#include <string_view>
#include <vector>

namespace dcmesh::qxmd {

/// Chemical species present in lead titanate (PbTiO3).
enum class species : int { pb = 0, ti = 1, o = 2 };

/// Static per-species data (masses in electron masses, effective valence
/// charge used by the model pseudopotential well).
struct species_info {
  std::string_view symbol;
  double mass;       ///< Atomic mass (electron masses).
  double valence;    ///< Effective valence charge (model potential depth).
  double well_width; ///< Gaussian pseudopotential width (Bohr).
};

/// Lookup table for the three species.
[[nodiscard]] const species_info& info(species s) noexcept;

/// One ion.
struct atom {
  species kind = species::o;
  std::array<double, 3> position{};  ///< Bohr.
  std::array<double, 3> velocity{};  ///< Bohr per atomic time unit.
  std::array<double, 3> force{};     ///< Hartree per Bohr.
};

/// A periodic collection of atoms in an orthorhombic box.
struct atom_system {
  std::vector<atom> atoms;
  std::array<double, 3> box{};  ///< Edge lengths (Bohr).

  [[nodiscard]] std::size_t size() const noexcept { return atoms.size(); }

  /// Total ionic kinetic energy (Hartree).
  [[nodiscard]] double kinetic_energy() const noexcept;

  /// Wrap all positions back into the periodic box.
  void wrap_positions() noexcept;

  /// Minimum-image displacement from a to b.
  [[nodiscard]] std::array<double, 3> min_image(
      const std::array<double, 3>& a,
      const std::array<double, 3>& b) const noexcept;
};

/// Deterministically seed Maxwell-Boltzmann velocities at temperature_k
/// (Kelvin) and remove the centre-of-mass drift.
void seed_velocities(atom_system& system, double temperature_k,
                     unsigned long long seed);

}  // namespace dcmesh::qxmd
