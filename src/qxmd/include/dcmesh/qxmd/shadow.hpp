#pragma once
// shadow.hpp — shadow-dynamics CPU<->GPU transfer ledger.
//
// DCMESH minimizes CPU-GPU data transfers "through the use of shadow
// dynamics" (paper Sec. II-C): the CPU keeps approximate shadow copies of
// slowly-varying GPU quantities and only synchronizes when the accumulated
// drift exceeds a tolerance (in practice: at SCF boundaries).  This ledger
// implements that policy as explicit bookkeeping — which transfers happened,
// which were avoided, and how many bytes crossed the (simulated) PCIe link —
// so the driver can report transfer statistics like the real code.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace dcmesh::qxmd {

/// Tracks one named quantity shared between host and device.
class shadow_ledger {
 public:
  /// Register a quantity of `bytes` size with a drift tolerance.  The CPU
  /// shadow starts synchronized (drift 0).
  void register_quantity(const std::string& name, std::uint64_t bytes,
                         double tolerance);

  /// Record that the GPU updated the quantity, accumulating `drift`
  /// (any monotone error metric: steps taken, norm change, ...).
  void record_gpu_update(const std::string& name, double drift);

  /// Whether the accumulated drift exceeds the tolerance.
  [[nodiscard]] bool needs_transfer(const std::string& name) const;

  /// Synchronize the CPU shadow if (and only if) drift exceeds tolerance;
  /// returns true when a transfer happened.  `force` transfers regardless.
  bool sync(const std::string& name, bool force = false);

  /// Accumulated drift of a quantity.
  [[nodiscard]] double drift(const std::string& name) const;

  // --- global statistics ---
  [[nodiscard]] std::uint64_t transfers_performed() const noexcept {
    return transfers_;
  }
  [[nodiscard]] std::uint64_t transfers_avoided() const noexcept {
    return avoided_;
  }
  [[nodiscard]] std::uint64_t bytes_transferred() const noexcept {
    return bytes_moved_;
  }

 private:
  struct entry {
    std::uint64_t bytes = 0;
    double tolerance = 0.0;
    double drift = 0.0;
  };
  [[nodiscard]] const entry& find(const std::string& name) const;

  std::unordered_map<std::string, entry> entries_;
  std::uint64_t transfers_ = 0;
  std::uint64_t avoided_ = 0;
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace dcmesh::qxmd
