#pragma once
// verlet.hpp — velocity-Verlet ionic integrator.
//
// QXMD advances the ions on the slow MD time scale (one MD step per series
// of 500 electronic QD steps — the paper's multiple time-scale splitting).
// Standard velocity Verlet with forces from the pair potential plus an
// optional Ehrenfest-like electronic back-action force supplied by the
// caller.

#include <functional>

#include "dcmesh/qxmd/atoms.hpp"
#include "dcmesh/qxmd/pair_potential.hpp"

namespace dcmesh::qxmd {

/// Callback adding extra (electronic back-action) forces after the pair
/// forces are computed.  May be empty.
using extra_force_fn = std::function<void(atom_system&)>;

/// Velocity-Verlet integrator over an atom_system.
class verlet_integrator {
 public:
  verlet_integrator(pair_potential potential, double dt_atu)
      : potential_(std::move(potential)), dt_(dt_atu) {}

  /// Prime the integrator (initial force evaluation).  Must be called once
  /// before step(); returns the potential energy.
  double initialize(atom_system& system, const extra_force_fn& extra = {});

  /// Advance one MD step; returns the new potential energy.
  double step(atom_system& system, const extra_force_fn& extra = {});

  [[nodiscard]] double dt() const noexcept { return dt_; }
  [[nodiscard]] const pair_potential& potential() const noexcept {
    return potential_;
  }

 private:
  double evaluate_forces(atom_system& system, const extra_force_fn& extra);

  pair_potential potential_;
  double dt_;
  bool primed_ = false;
};

}  // namespace dcmesh::qxmd
