#pragma once
// cholesky.hpp — Hermitian positive-definite factorization and the
// level-3 ("BLASified") orthonormalization built on it.
//
// Production SCF codes orthonormalize a tall orbital block as
//   S = dv * Psi^H Psi   (herk)
//   S = L L^H            (Cholesky)
//   Psi <- Psi L^-H      (trsm)
// — three level-3 operations instead of the O(norb^2) level-1 sweeps of
// modified Gram-Schmidt.  The FP64 SCF refresh uses this path, falling
// back to MGS when S is numerically indefinite.

#include "dcmesh/common/matrix.hpp"

namespace dcmesh::qxmd {

/// In-place lower Cholesky factorization A = L L^H of a Hermitian
/// positive-definite matrix (only the lower triangle of A is referenced;
/// on return the lower triangle holds L and the strict upper triangle is
/// zeroed).  Returns false (leaving A partially modified) if a pivot is
/// not strictly positive — the caller should fall back to a safer path.
[[nodiscard]] bool cholesky_lower(matrix<cdouble>& a);

/// Level-3 orthonormalization of the columns of psi under the
/// dv-weighted inner product.  Returns false when the overlap is too
/// ill-conditioned for Cholesky (caller falls back to Gram-Schmidt).
[[nodiscard]] bool orthonormalize_cholesky(matrix<cdouble>& psi, double dv);

}  // namespace dcmesh::qxmd
