#pragma once
// pair_potential.hpp — Buckingham-type ionic pair potential.
//
// The ion-ion interaction in the QXMD portion: a Buckingham repulsion-plus-
// dispersion form V(r) = A exp(-r/rho) - C/r^6 with a short-range Coulomb
// term between effective valence charges, smoothly truncated at a cutoff.
// This replaces the paper's (private) DCMESH force field with a standard
// oxide-perovskite functional form; the MD substrate only needs physically
// reasonable, energy-conserving ionic motion.

#include "dcmesh/qxmd/atoms.hpp"

namespace dcmesh::qxmd {

/// Parameters of one species-pair interaction.
struct pair_params {
  double a = 0.0;    ///< Repulsion prefactor (Hartree).
  double rho = 1.0;  ///< Repulsion range (Bohr).
  double c = 0.0;    ///< Dispersion coefficient (Hartree * Bohr^6).
};

/// Buckingham + screened-Coulomb pair potential over an atom_system.
class pair_potential {
 public:
  /// Construct with default PbTiO3-like parameters and a cutoff in Bohr.
  explicit pair_potential(double cutoff = 12.0);

  /// Override the parameters for a species pair (symmetric).
  void set_params(species s1, species s2, pair_params params);

  /// Parameters for a species pair.
  [[nodiscard]] const pair_params& params(species s1,
                                          species s2) const noexcept;

  /// Pair energy + screened Coulomb at separation r for a species pair
  /// (shifted so the energy is zero at the cutoff).
  [[nodiscard]] double pair_energy(species s1, species s2,
                                   double r) const noexcept;

  /// Total potential energy (Hartree), minimum-image convention.
  [[nodiscard]] double energy(const atom_system& system) const;

  /// Fill `system.atoms[i].force` with -dV/dr_i and return the energy.
  double compute_forces(atom_system& system) const;

  [[nodiscard]] double cutoff() const noexcept { return cutoff_; }

 private:
  [[nodiscard]] static int pair_index(species s1, species s2) noexcept;

  double cutoff_;
  double screening_length_ = 4.0;  ///< Yukawa screening (Bohr).
  pair_params table_[6];           ///< Symmetric 3x3 species table.
};

}  // namespace dcmesh::qxmd
