#pragma once
// davidson.hpp — block Davidson iterative eigensolver.
//
// The Rayleigh-Ritz initializer diagonalizes H in a fixed plane-wave span;
// production SCF codes (including the frameworks the paper surveys —
// Quantum Espresso, VASP) refine the lowest states iteratively instead.
// This is a from-scratch block Davidson: expand the search space with
// diagonally-preconditioned residuals, Rayleigh-Ritz in the subspace
// (reusing the Jacobi solver), restart when the subspace saturates.
// FP64 throughout, matvecs via the caller's H and projections via zgemm.

#include <functional>
#include <span>
#include <vector>

#include "dcmesh/common/matrix.hpp"
#include "dcmesh/qxmd/scf.hpp"

namespace dcmesh::qxmd {

/// Options for the Davidson iteration.
struct davidson_options {
  std::size_t n_eigen = 4;       ///< Lowest eigenpairs wanted.
  int max_iterations = 200;      ///< Expansion steps before giving up.
  double tolerance = 1e-8;       ///< Residual 2-norm per eigenpair.
  std::size_t max_subspace = 0;  ///< 0 = 6 * n_eigen.
  unsigned long long seed = 77;  ///< Seed for the random starting block.
};

/// Result: ascending eigenvalues, matching orthonormal (dv-weighted)
/// eigenvector columns, convergence diagnostics.
struct davidson_result {
  std::vector<double> values;
  matrix<cdouble> vectors;  ///< dim x n_eigen.
  int iterations = 0;
  bool converged = false;
  double max_residual = 0.0;
};

/// Find the lowest eigenpairs of the Hermitian operator applied by `h`
/// (same signature as the SCF's apply_h_fn) on vectors of length `dim`,
/// under the mesh-weighted inner product <a|b> = dv sum conj(a) b.
/// `diagonal` is H's diagonal (size dim), used as the preconditioner
/// t = r / (diag - theta); pass the potential plus the stencil's center
/// coefficient for mesh Hamiltonians.
/// `initial` (optional) seeds the first n_eigen columns.
[[nodiscard]] davidson_result davidson(const apply_h_fn& h, std::size_t dim,
                                       double dv,
                                       std::span<const double> diagonal,
                                       davidson_options options,
                                       const matrix<cdouble>* initial =
                                           nullptr);

}  // namespace dcmesh::qxmd
