#pragma once
// scf.hpp — FP64 Self-Consistent Field substrate.
//
// DCMESH's QXMD portion runs exclusively in FP64 on the CPU: it initializes
// the Kohn-Sham wave functions by SCF, and — crucially for the paper — an
// FP64 SCF update runs after every series of 500 QD steps, which "prevents
// the buildup of truncation errors" and is the reason the LFD BLAS calls
// can run at reduced precision at all (paper Sec. V).
//
// Provided here:
//  * FP64 modified Gram-Schmidt orthonormalization (mesh-weighted);
//  * Rayleigh-Ritz subspace diagonalization (initial wave functions);
//  * the periodic scf_refresh applied to FP32 or FP64 LFD wave functions.

#include <complex>
#include <functional>
#include <vector>

#include "dcmesh/common/matrix.hpp"

namespace dcmesh::qxmd {

/// Applies the FP64 Hamiltonian to every column: out = H * psi.
/// Shapes: psi and out are (ngrid x norb) views.
using apply_h_fn =
    std::function<void(const_matrix_view<cdouble>, matrix_view<cdouble>)>;

/// Mesh-weighted modified Gram-Schmidt: columns of psi become orthonormal
/// under <a|b> = dv * sum conj(a_i) b_i.  Throws if a column collapses to
/// (numerical) zero.
void orthonormalize(matrix<cdouble>& psi, double dv);

/// Rayleigh-Ritz step: orthonormalize, build Hsub = Psi^H (H Psi) dv with
/// FP64 BLAS, diagonalize, rotate Psi onto the eigenvector basis.  Returns
/// the subspace eigenvalues (ascending) — the Kohn-Sham band energies.
std::vector<double> rayleigh_ritz(matrix<cdouble>& psi, const apply_h_fn& h,
                                  double dv);

/// Diagnostics of one periodic SCF refresh.
struct scf_report {
  double max_norm_drift = 0.0;     ///< max |<j|j> - 1| before the refresh.
  double max_overlap_offdiag = 0.0;///< max |<i|j>|, i != j, before.
  int iterations = 1;
};

/// The every-500-QD-steps FP64 refresh: promote the (possibly FP32) wave
/// functions to double, re-orthonormalize in FP64, and write them back.
/// Returns drift diagnostics measured before the refresh.
template <typename R>
scf_report scf_refresh(matrix<std::complex<R>>& psi, double dv);

}  // namespace dcmesh::qxmd
