#include "dcmesh/mesh/poisson.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace dcmesh::mesh {
namespace {

double mean(std::span<const double> v) {
  double sum = 0.0;
  for (double x : v) sum += x;
  return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
}

void subtract_mean(std::span<double> v) {
  const double m = mean(v);
  for (double& x : v) x -= m;
}

double dot(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace

void add_laplacian(const grid3d& grid, fd_order order,
                   std::span<const double> f, double coeff,
                   std::span<double> out) {
  // Laplacian tap weights per axis (see stencil.cpp): 2nd order
  // (1, -2, 1)/h^2; 4th order (-1/12, 4/3, -5/2, 4/3, -1/12)/h^2.
  const int radius = order == fd_order::second ? 1 : 2;
  const double inv_h2 = 1.0 / (grid.spacing * grid.spacing);
  const double center =
      (order == fd_order::second ? -2.0 : -5.0 / 2.0) * inv_h2;
  const double off1 =
      (order == fd_order::second ? 1.0 : 4.0 / 3.0) * inv_h2;
  const double off2 = (order == fd_order::second ? 0.0 : -1.0 / 12.0) *
                      inv_h2;

  const std::int64_t nx = grid.nx, ny = grid.ny, nz = grid.nz;
  for (std::int64_t iz = 0; iz < nz; ++iz) {
    for (std::int64_t iy = 0; iy < ny; ++iy) {
      const std::int64_t row = grid.index(0, iy, iz);
      for (std::int64_t ix = 0; ix < nx; ++ix) {
        const std::int64_t idx = row + ix;
        double acc = 3.0 * center * f[static_cast<std::size_t>(idx)];
        for (int d = 1; d <= radius; ++d) {
          const double w = d == 1 ? off1 : off2;
          const std::int64_t xm = row + grid3d::wrap(ix - d, nx);
          const std::int64_t xp = row + grid3d::wrap(ix + d, nx);
          const std::int64_t ym =
              grid.index(0, grid3d::wrap(iy - d, ny), iz) + ix;
          const std::int64_t yp =
              grid.index(0, grid3d::wrap(iy + d, ny), iz) + ix;
          const std::int64_t zm =
              grid.index(0, iy, grid3d::wrap(iz - d, nz)) + ix;
          const std::int64_t zp =
              grid.index(0, iy, grid3d::wrap(iz + d, nz)) + ix;
          acc += w * (f[static_cast<std::size_t>(xm)] +
                      f[static_cast<std::size_t>(xp)] +
                      f[static_cast<std::size_t>(ym)] +
                      f[static_cast<std::size_t>(yp)] +
                      f[static_cast<std::size_t>(zm)] +
                      f[static_cast<std::size_t>(zp)]);
        }
        out[static_cast<std::size_t>(idx)] += coeff * acc;
      }
    }
  }
}

poisson_result solve_poisson(const grid3d& grid, fd_order order,
                             std::span<const double> rho, double tolerance,
                             int max_iterations) {
  const auto n = static_cast<std::size_t>(grid.size());
  if (rho.size() != n) {
    throw std::invalid_argument("solve_poisson: rho size != grid size");
  }

  // b = 4 pi rho, projected onto zero mean (neutralizing background);
  // solve A phi = b with A = -nabla^2 (SPD on the zero-mean subspace).
  std::vector<double> b(rho.begin(), rho.end());
  for (double& v : b) v *= 4.0 * std::numbers::pi;
  const double raw_norm = std::sqrt(dot(b, b));
  subtract_mean(b);

  poisson_result result;
  result.phi.assign(n, 0.0);
  std::vector<double> r = b;  // r = b - A*0
  std::vector<double> p = r;
  std::vector<double> ap(n);

  const double b_norm = std::sqrt(dot(b, b));
  // A projected rhs at round-off level means rho was (numerically) pure
  // background: phi = 0 is the solution.
  if (b_norm <= 1e-13 * raw_norm || b_norm == 0.0) {
    result.converged = true;
    return result;
  }
  double rr = dot(r, r);
  for (int it = 0; it < max_iterations; ++it) {
    result.iterations = it + 1;
    std::fill(ap.begin(), ap.end(), 0.0);
    add_laplacian(grid, order, p, -1.0, ap);  // A p = -lap p
    const double p_ap = dot(p, ap);
    if (!(p_ap > 0.0)) break;  // round-off stall in the null space
    const double alpha = rr / p_ap;
    for (std::size_t i = 0; i < n; ++i) {
      result.phi[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_new = dot(r, r);
    result.residual = std::sqrt(rr_new) / b_norm;
    if (result.residual < tolerance) {
      result.converged = true;
      break;
    }
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }
  subtract_mean(result.phi);  // fix the null-space component
  return result;
}

}  // namespace dcmesh::mesh
