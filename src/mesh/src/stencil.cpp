#include "dcmesh/mesh/stencil.hpp"

#include <array>
#include <cmath>

namespace dcmesh::mesh {
namespace {

// Central-difference coefficients.
// 2nd order Laplacian: (1, -2, 1) / h^2 per axis.
// 4th order Laplacian: (-1/12, 4/3, -5/2, 4/3, -1/12) / h^2 per axis.
// 2nd order gradient:  (-1/2, 0, 1/2) / h.
// 4th order gradient:  (1/12, -2/3, 0, 2/3, -1/12) / h.

struct stencil_taps {
  int radius;
  std::array<double, 2> off;  ///< off[d-1] = coefficient at distance d.
  double center;
};

constexpr stencil_taps lap_taps(fd_order order) noexcept {
  if (order == fd_order::second) return {1, {1.0, 0.0}, -2.0};
  return {2, {4.0 / 3.0, -1.0 / 12.0}, -5.0 / 2.0};
}

constexpr stencil_taps grad_taps(fd_order order) noexcept {
  if (order == fd_order::second) return {1, {0.5, 0.0}, 0.0};
  return {2, {2.0 / 3.0, -1.0 / 12.0}, 0.0};
}

/// Neighbour linear-index offsets with periodic wrap along one axis.
struct axis_geometry {
  std::int64_t n;       ///< Points along the axis.
  std::int64_t stride;  ///< Linear-index stride along the axis.
};

constexpr axis_geometry axis_geom(const grid3d& g, int axis) noexcept {
  switch (axis) {
    case 0: return {g.nx, 1};
    case 1: return {g.ny, g.nx};
    default: return {g.nz, g.nx * g.ny};
  }
}

}  // namespace

template <typename R>
void add_kinetic(const grid3d& grid, fd_order order,
                 std::span<const std::complex<R>> psi, std::complex<R> coeff,
                 std::span<std::complex<R>> out) {
  const stencil_taps taps = lap_taps(order);
  const double inv_h2 = 1.0 / (grid.spacing * grid.spacing);
  // -1/2 nabla^2 folded into the tap weights.
  const std::complex<R> w_center =
      coeff * static_cast<R>(-0.5 * 3.0 * taps.center * inv_h2);
  std::array<std::complex<R>, 2> w_off;
  for (int d = 1; d <= taps.radius; ++d) {
    w_off[static_cast<std::size_t>(d - 1)] =
        coeff * static_cast<R>(-0.5 * taps.off[static_cast<std::size_t>(d - 1)] * inv_h2);
  }

  const std::int64_t nx = grid.nx, ny = grid.ny, nz = grid.nz;
  for (std::int64_t iz = 0; iz < nz; ++iz) {
    for (std::int64_t iy = 0; iy < ny; ++iy) {
      const std::int64_t row = grid.index(0, iy, iz);
      for (std::int64_t ix = 0; ix < nx; ++ix) {
        const std::int64_t idx = row + ix;
        std::complex<R> acc = w_center * psi[static_cast<std::size_t>(idx)];
        for (int d = 1; d <= taps.radius; ++d) {
          const auto w = w_off[static_cast<std::size_t>(d - 1)];
          // x neighbours
          const std::int64_t xm = row + grid3d::wrap(ix - d, nx);
          const std::int64_t xp = row + grid3d::wrap(ix + d, nx);
          // y neighbours
          const std::int64_t ym =
              grid.index(0, grid3d::wrap(iy - d, ny), iz) + ix;
          const std::int64_t yp =
              grid.index(0, grid3d::wrap(iy + d, ny), iz) + ix;
          // z neighbours
          const std::int64_t zm =
              grid.index(0, iy, grid3d::wrap(iz - d, nz)) + ix;
          const std::int64_t zp =
              grid.index(0, iy, grid3d::wrap(iz + d, nz)) + ix;
          acc += w * (psi[static_cast<std::size_t>(xm)] +
                      psi[static_cast<std::size_t>(xp)] +
                      psi[static_cast<std::size_t>(ym)] +
                      psi[static_cast<std::size_t>(yp)] +
                      psi[static_cast<std::size_t>(zm)] +
                      psi[static_cast<std::size_t>(zp)]);
        }
        out[static_cast<std::size_t>(idx)] += acc;
      }
    }
  }
}

template <typename R>
void add_gradient(const grid3d& grid, fd_order order, int axis,
                  std::span<const std::complex<R>> psi, std::complex<R> coeff,
                  std::span<std::complex<R>> out) {
  const stencil_taps taps = grad_taps(order);
  const double inv_h = 1.0 / grid.spacing;
  const axis_geometry geom = axis_geom(grid, axis);
  std::array<std::complex<R>, 2> w_off;
  for (int d = 1; d <= taps.radius; ++d) {
    w_off[static_cast<std::size_t>(d - 1)] =
        coeff *
        static_cast<R>(taps.off[static_cast<std::size_t>(d - 1)] * inv_h);
  }

  const std::int64_t total = grid.size();
  for (std::int64_t idx = 0; idx < total; ++idx) {
    // Coordinate along the differentiated axis.
    const std::int64_t coord = (idx / geom.stride) % geom.n;
    std::complex<R> acc{};
    for (int d = 1; d <= taps.radius; ++d) {
      const auto w = w_off[static_cast<std::size_t>(d - 1)];
      const std::int64_t cm = grid3d::wrap(coord - d, geom.n);
      const std::int64_t cp = grid3d::wrap(coord + d, geom.n);
      const std::int64_t base = idx - coord * geom.stride;
      acc += w * (psi[static_cast<std::size_t>(base + cp * geom.stride)] -
                  psi[static_cast<std::size_t>(base + cm * geom.stride)]);
    }
    out[static_cast<std::size_t>(idx)] += acc;
  }
}

double kinetic_spectral_radius(const grid3d& grid, fd_order order) noexcept {
  // Max over the axis of the 1-D symbol; for a cubic grid all axes equal.
  // 2nd order: max of (2 - 2cos(k)) = 4; 4th order: 16/3 at k = pi
  // (coefficients -1/12, 4/3, -5/2: symbol 5/2 + ... evaluates to 16/3).
  const double axis_max = order == fd_order::second ? 4.0 : 16.0 / 3.0;
  const double inv_h2 = 1.0 / (grid.spacing * grid.spacing);
  return 0.5 * 3.0 * axis_max * inv_h2;
}

template void add_kinetic<float>(const grid3d&, fd_order,
                                 std::span<const std::complex<float>>,
                                 std::complex<float>,
                                 std::span<std::complex<float>>);
template void add_kinetic<double>(const grid3d&, fd_order,
                                  std::span<const std::complex<double>>,
                                  std::complex<double>,
                                  std::span<std::complex<double>>);
template void add_gradient<float>(const grid3d&, fd_order, int,
                                  std::span<const std::complex<float>>,
                                  std::complex<float>,
                                  std::span<std::complex<float>>);
template void add_gradient<double>(const grid3d&, fd_order, int,
                                   std::span<const std::complex<double>>,
                                   std::complex<double>,
                                   std::span<std::complex<double>>);

}  // namespace dcmesh::mesh
