#pragma once
// stencil.hpp — finite-difference operators on the periodic mesh.
//
// The LFD propagator applies the kinetic operator -1/2 nabla^2 and the
// velocity-gauge field coupling A.grad through central-difference stencils.
// Both 2nd- and 4th-order variants are provided; DCMESH-like accuracy runs
// use 4th order.  Operators act on one orbital (a column of the
// wave-function matrix) at a time and are templated over the scalar so the
// FP32 and FP64 LFD variants share code.

#include <complex>
#include <span>

#include "dcmesh/mesh/grid.hpp"

namespace dcmesh::mesh {

/// Finite-difference order of accuracy.
enum class fd_order { second, fourth };

/// out += coeff * (-1/2) nabla^2 psi on the periodic grid.
/// `psi` and `out` hold grid.size() complex values.
template <typename R>
void add_kinetic(const grid3d& grid, fd_order order,
                 std::span<const std::complex<R>> psi, std::complex<R> coeff,
                 std::span<std::complex<R>> out);

/// out += coeff * d(psi)/d(axis) (central difference, periodic).
/// axis: 0 = x, 1 = y, 2 = z.
template <typename R>
void add_gradient(const grid3d& grid, fd_order order, int axis,
                  std::span<const std::complex<R>> psi, std::complex<R> coeff,
                  std::span<std::complex<R>> out);

/// Largest eigenvalue of the discrete kinetic operator (stability bound
/// for explicit time stepping: need dt * lambda_max well below the Taylor
/// stability radius).
[[nodiscard]] double kinetic_spectral_radius(const grid3d& grid,
                                             fd_order order) noexcept;

}  // namespace dcmesh::mesh
