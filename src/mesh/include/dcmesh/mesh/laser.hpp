#pragma once
// laser.hpp — laser pulse vector potential (the "light" of light-matter).
//
// DCMESH studies laser-induced excitation dynamics (e.g. lead titanate
// towards super-capacitors, paper Sec. IV-E).  LFD couples the electrons to
// the external field in the velocity gauge through a spatially uniform
// vector potential A(t) (dipole approximation): a Gaussian-enveloped
// sinusoidal pulse polarized along one axis.  The per-QD-step output column
// "Aext" is |A(t)|.

#include <array>
#include <cmath>

namespace dcmesh::mesh {

/// Gaussian-enveloped laser pulse in Hartree atomic units.
struct laser_pulse {
  double e0 = 0.02;        ///< Peak electric field (a.u.).
  double omega = 0.057;    ///< Carrier angular frequency (Ha; ~800 nm).
  double t_center = 100.0; ///< Envelope centre (atomic time units).
  double sigma = 40.0;     ///< Envelope standard deviation (a.t.u.).
  int polarization_axis = 2;  ///< 0 = x, 1 = y, 2 = z.

  /// Vector potential magnitude A(t) = -(E0/omega) g(t) sin(omega (t-t0)),
  /// g the Gaussian envelope.  Zero-valued long before/after the pulse.
  [[nodiscard]] double a(double t) const noexcept {
    const double u = (t - t_center) / sigma;
    const double envelope = std::exp(-0.5 * u * u);
    return -(e0 / omega) * envelope * std::sin(omega * (t - t_center));
  }

  /// Electric field E(t) = -dA/dt (analytic derivative).
  [[nodiscard]] double e(double t) const noexcept {
    const double u = (t - t_center) / sigma;
    const double envelope = std::exp(-0.5 * u * u);
    const double phase = omega * (t - t_center);
    return (e0 / omega) * envelope *
           (omega * std::cos(phase) - (u / sigma) * std::sin(phase));
  }

  /// A(t) as a 3-vector along the polarization axis.
  [[nodiscard]] std::array<double, 3> a_vec(double t) const noexcept {
    std::array<double, 3> v{0.0, 0.0, 0.0};
    v[static_cast<std::size_t>(polarization_axis)] = a(t);
    return v;
  }
};

}  // namespace dcmesh::mesh
