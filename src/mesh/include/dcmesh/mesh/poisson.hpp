#pragma once
// poisson.hpp — periodic Poisson solver (conjugate gradients on the FD
// Laplacian).
//
// The Hartree mean field needs phi with nabla^2 phi = -4 pi rho on the
// periodic supercell.  On a periodic box the problem is solvable only for
// a zero-mean right-hand side (the jellium convention: a uniform
// neutralizing background is implied), and the solution is fixed by
// requiring zero mean.  The operator -nabla^2 is symmetric positive
// semidefinite with the constants as its null space, so projected CG
// converges cleanly.

#include <span>
#include <vector>

#include "dcmesh/mesh/grid.hpp"
#include "dcmesh/mesh/stencil.hpp"

namespace dcmesh::mesh {

/// out += coeff * nabla^2 f for a real field on the periodic grid.
void add_laplacian(const grid3d& grid, fd_order order,
                   std::span<const double> f, double coeff,
                   std::span<double> out);

/// Result of a Poisson solve.
struct poisson_result {
  std::vector<double> phi;  ///< Zero-mean potential (Hartree units).
  int iterations = 0;
  double residual = 0.0;    ///< Final ||A phi - b|| / ||b||.
  bool converged = false;
};

/// Solve nabla^2 phi = -4 pi rho with periodic boundary conditions.
/// `rho`'s mean is projected out before solving (neutralizing background).
[[nodiscard]] poisson_result solve_poisson(const grid3d& grid,
                                           fd_order order,
                                           std::span<const double> rho,
                                           double tolerance = 1e-10,
                                           int max_iterations = 1000);

}  // namespace dcmesh::mesh
